# Empty dependencies file for bench_ablation_aggify.
# This may be replaced when dependencies are built.
