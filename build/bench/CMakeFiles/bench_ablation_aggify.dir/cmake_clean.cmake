file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_aggify.dir/bench_ablation_aggify.cc.o"
  "CMakeFiles/bench_ablation_aggify.dir/bench_ablation_aggify.cc.o.d"
  "bench_ablation_aggify"
  "bench_ablation_aggify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_aggify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
