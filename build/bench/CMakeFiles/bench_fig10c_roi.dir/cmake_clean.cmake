file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10c_roi.dir/bench_fig10c_roi.cc.o"
  "CMakeFiles/bench_fig10c_roi.dir/bench_fig10c_roi.cc.o.d"
  "bench_fig10c_roi"
  "bench_fig10c_roi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10c_roi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
