# Empty compiler generated dependencies file for bench_fig10c_roi.
# This may be replaced when dependencies are built.
