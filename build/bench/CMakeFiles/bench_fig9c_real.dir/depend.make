# Empty dependencies file for bench_fig9c_real.
# This may be replaced when dependencies are built.
