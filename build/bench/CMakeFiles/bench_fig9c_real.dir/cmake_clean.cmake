file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9c_real.dir/bench_fig9c_real.cc.o"
  "CMakeFiles/bench_fig9c_real.dir/bench_fig9c_real.cc.o.d"
  "bench_fig9c_real"
  "bench_fig9c_real.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9c_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
