
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9c_real.cc" "bench/CMakeFiles/bench_fig9c_real.dir/bench_fig9c_real.cc.o" "gcc" "bench/CMakeFiles/bench_fig9c_real.dir/bench_fig9c_real.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/aggify_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/aggify/CMakeFiles/aggify_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/aggify_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/froid/CMakeFiles/aggify_froid.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/aggify_client.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/aggify_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/procedural/CMakeFiles/aggify_procedural.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/aggify_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/aggify_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/aggify_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aggify_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/aggregates/CMakeFiles/aggify_aggregates.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/aggify_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aggify_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
