# Empty dependencies file for bench_table2_reads.
# This may be replaced when dependencies are built.
