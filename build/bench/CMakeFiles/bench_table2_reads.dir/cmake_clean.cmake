file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_reads.dir/bench_table2_reads.cc.o"
  "CMakeFiles/bench_table2_reads.dir/bench_table2_reads.cc.o.d"
  "bench_table2_reads"
  "bench_table2_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
