# Empty dependencies file for bench_fig10b_mincost.
# This may be replaced when dependencies are built.
