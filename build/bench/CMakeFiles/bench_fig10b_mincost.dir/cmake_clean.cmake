file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10b_mincost.dir/bench_fig10b_mincost.cc.o"
  "CMakeFiles/bench_fig10b_mincost.dir/bench_fig10b_mincost.cc.o.d"
  "bench_fig10b_mincost"
  "bench_fig10b_mincost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b_mincost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
