file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_applicability.dir/bench_table1_applicability.cc.o"
  "CMakeFiles/bench_table1_applicability.dir/bench_table1_applicability.cc.o.d"
  "bench_table1_applicability"
  "bench_table1_applicability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_applicability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
