file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_l1_scale.dir/bench_fig11_l1_scale.cc.o"
  "CMakeFiles/bench_fig11_l1_scale.dir/bench_fig11_l1_scale.cc.o.d"
  "bench_fig11_l1_scale"
  "bench_fig11_l1_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_l1_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
