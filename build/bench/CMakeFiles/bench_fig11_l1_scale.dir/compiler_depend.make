# Empty compiler generated dependencies file for bench_fig11_l1_scale.
# This may be replaced when dependencies are built.
