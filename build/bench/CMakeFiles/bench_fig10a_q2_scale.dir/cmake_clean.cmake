file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10a_q2_scale.dir/bench_fig10a_q2_scale.cc.o"
  "CMakeFiles/bench_fig10a_q2_scale.dir/bench_fig10a_q2_scale.cc.o.d"
  "bench_fig10a_q2_scale"
  "bench_fig10a_q2_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10a_q2_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
