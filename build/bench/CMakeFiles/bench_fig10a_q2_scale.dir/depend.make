# Empty dependencies file for bench_fig10a_q2_scale.
# This may be replaced when dependencies are built.
