# Empty dependencies file for bench_fig9a_tpch.
# This may be replaced when dependencies are built.
