# Empty dependencies file for bench_fig9b_rubis.
# This may be replaced when dependencies are built.
