file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9b_rubis.dir/bench_fig9b_rubis.cc.o"
  "CMakeFiles/bench_fig9b_rubis.dir/bench_fig9b_rubis.cc.o.d"
  "bench_fig9b_rubis"
  "bench_fig9b_rubis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9b_rubis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
