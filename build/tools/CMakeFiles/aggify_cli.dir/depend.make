# Empty dependencies file for aggify_cli.
# This may be replaced when dependencies are built.
