file(REMOVE_RECURSE
  "CMakeFiles/aggify_cli.dir/aggify_cli.cc.o"
  "CMakeFiles/aggify_cli.dir/aggify_cli.cc.o.d"
  "aggify_cli"
  "aggify_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggify_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
