# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/engine_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/aggify_core_test[1]_include.cmake")
include("/root/repo/build/tests/froid_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/value_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_property_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_contract_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_edge_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/client_network_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_agg_test[1]_include.cmake")
include("/root/repo/build/tests/froid_edge_test[1]_include.cmake")
include("/root/repo/build/tests/plan_invariance_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/query_engine_test[1]_include.cmake")
