# Empty dependencies file for froid_edge_test.
# This may be replaced when dependencies are built.
