file(REMOVE_RECURSE
  "CMakeFiles/froid_edge_test.dir/froid_edge_test.cc.o"
  "CMakeFiles/froid_edge_test.dir/froid_edge_test.cc.o.d"
  "froid_edge_test"
  "froid_edge_test.pdb"
  "froid_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/froid_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
