# Empty compiler generated dependencies file for aggregate_contract_test.
# This may be replaced when dependencies are built.
