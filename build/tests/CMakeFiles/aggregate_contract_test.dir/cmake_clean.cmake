file(REMOVE_RECURSE
  "CMakeFiles/aggregate_contract_test.dir/aggregate_contract_test.cc.o"
  "CMakeFiles/aggregate_contract_test.dir/aggregate_contract_test.cc.o.d"
  "aggregate_contract_test"
  "aggregate_contract_test.pdb"
  "aggregate_contract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
