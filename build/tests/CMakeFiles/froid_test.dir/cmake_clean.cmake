file(REMOVE_RECURSE
  "CMakeFiles/froid_test.dir/froid_test.cc.o"
  "CMakeFiles/froid_test.dir/froid_test.cc.o.d"
  "froid_test"
  "froid_test.pdb"
  "froid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/froid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
