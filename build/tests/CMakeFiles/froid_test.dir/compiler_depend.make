# Empty compiler generated dependencies file for froid_test.
# This may be replaced when dependencies are built.
