# Empty dependencies file for plan_invariance_test.
# This may be replaced when dependencies are built.
