file(REMOVE_RECURSE
  "CMakeFiles/plan_invariance_test.dir/plan_invariance_test.cc.o"
  "CMakeFiles/plan_invariance_test.dir/plan_invariance_test.cc.o.d"
  "plan_invariance_test"
  "plan_invariance_test.pdb"
  "plan_invariance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_invariance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
