# Empty dependencies file for aggify_core_test.
# This may be replaced when dependencies are built.
