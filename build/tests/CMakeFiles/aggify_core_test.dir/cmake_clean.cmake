file(REMOVE_RECURSE
  "CMakeFiles/aggify_core_test.dir/aggify_core_test.cc.o"
  "CMakeFiles/aggify_core_test.dir/aggify_core_test.cc.o.d"
  "aggify_core_test"
  "aggify_core_test.pdb"
  "aggify_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggify_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
