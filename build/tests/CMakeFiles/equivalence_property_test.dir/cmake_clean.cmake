file(REMOVE_RECURSE
  "CMakeFiles/equivalence_property_test.dir/equivalence_property_test.cc.o"
  "CMakeFiles/equivalence_property_test.dir/equivalence_property_test.cc.o.d"
  "equivalence_property_test"
  "equivalence_property_test.pdb"
  "equivalence_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equivalence_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
