file(REMOVE_RECURSE
  "CMakeFiles/client_network_test.dir/client_network_test.cc.o"
  "CMakeFiles/client_network_test.dir/client_network_test.cc.o.d"
  "client_network_test"
  "client_network_test.pdb"
  "client_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
