# Empty dependencies file for client_network_test.
# This may be replaced when dependencies are built.
