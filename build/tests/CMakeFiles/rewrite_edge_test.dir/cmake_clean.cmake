file(REMOVE_RECURSE
  "CMakeFiles/rewrite_edge_test.dir/rewrite_edge_test.cc.o"
  "CMakeFiles/rewrite_edge_test.dir/rewrite_edge_test.cc.o.d"
  "rewrite_edge_test"
  "rewrite_edge_test.pdb"
  "rewrite_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
