# Empty compiler generated dependencies file for rewrite_edge_test.
# This may be replaced when dependencies are built.
