file(REMOVE_RECURSE
  "CMakeFiles/parallel_agg_test.dir/parallel_agg_test.cc.o"
  "CMakeFiles/parallel_agg_test.dir/parallel_agg_test.cc.o.d"
  "parallel_agg_test"
  "parallel_agg_test.pdb"
  "parallel_agg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_agg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
