file(REMOVE_RECURSE
  "CMakeFiles/engine_smoke_test.dir/engine_smoke_test.cc.o"
  "CMakeFiles/engine_smoke_test.dir/engine_smoke_test.cc.o.d"
  "engine_smoke_test"
  "engine_smoke_test.pdb"
  "engine_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
