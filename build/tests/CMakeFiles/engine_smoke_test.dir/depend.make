# Empty dependencies file for engine_smoke_test.
# This may be replaced when dependencies are built.
