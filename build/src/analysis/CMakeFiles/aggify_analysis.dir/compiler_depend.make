# Empty compiler generated dependencies file for aggify_analysis.
# This may be replaced when dependencies are built.
