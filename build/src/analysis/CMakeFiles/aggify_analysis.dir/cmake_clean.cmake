file(REMOVE_RECURSE
  "CMakeFiles/aggify_analysis.dir/cfg.cc.o"
  "CMakeFiles/aggify_analysis.dir/cfg.cc.o.d"
  "CMakeFiles/aggify_analysis.dir/dataflow.cc.o"
  "CMakeFiles/aggify_analysis.dir/dataflow.cc.o.d"
  "libaggify_analysis.a"
  "libaggify_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggify_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
