file(REMOVE_RECURSE
  "libaggify_analysis.a"
)
