file(REMOVE_RECURSE
  "libaggify_aggregates.a"
)
