# Empty compiler generated dependencies file for aggify_aggregates.
# This may be replaced when dependencies are built.
