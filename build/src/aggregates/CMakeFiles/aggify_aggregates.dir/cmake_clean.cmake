file(REMOVE_RECURSE
  "CMakeFiles/aggify_aggregates.dir/builtin_aggregates.cc.o"
  "CMakeFiles/aggify_aggregates.dir/builtin_aggregates.cc.o.d"
  "libaggify_aggregates.a"
  "libaggify_aggregates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggify_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
