# Empty compiler generated dependencies file for aggify_tpch.
# This may be replaced when dependencies are built.
