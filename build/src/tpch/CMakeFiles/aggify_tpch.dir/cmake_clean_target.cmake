file(REMOVE_RECURSE
  "libaggify_tpch.a"
)
