file(REMOVE_RECURSE
  "CMakeFiles/aggify_tpch.dir/cursor_workload.cc.o"
  "CMakeFiles/aggify_tpch.dir/cursor_workload.cc.o.d"
  "CMakeFiles/aggify_tpch.dir/tpch_gen.cc.o"
  "CMakeFiles/aggify_tpch.dir/tpch_gen.cc.o.d"
  "libaggify_tpch.a"
  "libaggify_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggify_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
