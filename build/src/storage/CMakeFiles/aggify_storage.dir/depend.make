# Empty dependencies file for aggify_storage.
# This may be replaced when dependencies are built.
