file(REMOVE_RECURSE
  "CMakeFiles/aggify_storage.dir/catalog.cc.o"
  "CMakeFiles/aggify_storage.dir/catalog.cc.o.d"
  "CMakeFiles/aggify_storage.dir/io_stats.cc.o"
  "CMakeFiles/aggify_storage.dir/io_stats.cc.o.d"
  "CMakeFiles/aggify_storage.dir/table.cc.o"
  "CMakeFiles/aggify_storage.dir/table.cc.o.d"
  "libaggify_storage.a"
  "libaggify_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggify_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
