file(REMOVE_RECURSE
  "libaggify_storage.a"
)
