file(REMOVE_RECURSE
  "libaggify_parser.a"
)
