# Empty dependencies file for aggify_parser.
# This may be replaced when dependencies are built.
