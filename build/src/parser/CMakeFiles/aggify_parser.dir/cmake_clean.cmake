file(REMOVE_RECURSE
  "CMakeFiles/aggify_parser.dir/expr.cc.o"
  "CMakeFiles/aggify_parser.dir/expr.cc.o.d"
  "CMakeFiles/aggify_parser.dir/lexer.cc.o"
  "CMakeFiles/aggify_parser.dir/lexer.cc.o.d"
  "CMakeFiles/aggify_parser.dir/parser.cc.o"
  "CMakeFiles/aggify_parser.dir/parser.cc.o.d"
  "CMakeFiles/aggify_parser.dir/query_ast.cc.o"
  "CMakeFiles/aggify_parser.dir/query_ast.cc.o.d"
  "CMakeFiles/aggify_parser.dir/statement.cc.o"
  "CMakeFiles/aggify_parser.dir/statement.cc.o.d"
  "libaggify_parser.a"
  "libaggify_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggify_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
