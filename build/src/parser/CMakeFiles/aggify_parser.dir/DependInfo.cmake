
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parser/expr.cc" "src/parser/CMakeFiles/aggify_parser.dir/expr.cc.o" "gcc" "src/parser/CMakeFiles/aggify_parser.dir/expr.cc.o.d"
  "/root/repo/src/parser/lexer.cc" "src/parser/CMakeFiles/aggify_parser.dir/lexer.cc.o" "gcc" "src/parser/CMakeFiles/aggify_parser.dir/lexer.cc.o.d"
  "/root/repo/src/parser/parser.cc" "src/parser/CMakeFiles/aggify_parser.dir/parser.cc.o" "gcc" "src/parser/CMakeFiles/aggify_parser.dir/parser.cc.o.d"
  "/root/repo/src/parser/query_ast.cc" "src/parser/CMakeFiles/aggify_parser.dir/query_ast.cc.o" "gcc" "src/parser/CMakeFiles/aggify_parser.dir/query_ast.cc.o.d"
  "/root/repo/src/parser/statement.cc" "src/parser/CMakeFiles/aggify_parser.dir/statement.cc.o" "gcc" "src/parser/CMakeFiles/aggify_parser.dir/statement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/types/CMakeFiles/aggify_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aggify_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
