file(REMOVE_RECURSE
  "CMakeFiles/aggify_froid.dir/froid.cc.o"
  "CMakeFiles/aggify_froid.dir/froid.cc.o.d"
  "libaggify_froid.a"
  "libaggify_froid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggify_froid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
