file(REMOVE_RECURSE
  "libaggify_froid.a"
)
