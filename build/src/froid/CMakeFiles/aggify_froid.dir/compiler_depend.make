# Empty compiler generated dependencies file for aggify_froid.
# This may be replaced when dependencies are built.
