# Empty compiler generated dependencies file for aggify_workloads.
# This may be replaced when dependencies are built.
