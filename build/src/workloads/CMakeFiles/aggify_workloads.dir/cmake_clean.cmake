file(REMOVE_RECURSE
  "CMakeFiles/aggify_workloads.dir/client_harness.cc.o"
  "CMakeFiles/aggify_workloads.dir/client_harness.cc.o.d"
  "CMakeFiles/aggify_workloads.dir/client_programs.cc.o"
  "CMakeFiles/aggify_workloads.dir/client_programs.cc.o.d"
  "CMakeFiles/aggify_workloads.dir/corpus.cc.o"
  "CMakeFiles/aggify_workloads.dir/corpus.cc.o.d"
  "CMakeFiles/aggify_workloads.dir/harness.cc.o"
  "CMakeFiles/aggify_workloads.dir/harness.cc.o.d"
  "CMakeFiles/aggify_workloads.dir/real_workloads.cc.o"
  "CMakeFiles/aggify_workloads.dir/real_workloads.cc.o.d"
  "CMakeFiles/aggify_workloads.dir/rubis.cc.o"
  "CMakeFiles/aggify_workloads.dir/rubis.cc.o.d"
  "libaggify_workloads.a"
  "libaggify_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggify_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
