file(REMOVE_RECURSE
  "libaggify_workloads.a"
)
