file(REMOVE_RECURSE
  "libaggify_types.a"
)
