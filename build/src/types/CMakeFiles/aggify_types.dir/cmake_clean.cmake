file(REMOVE_RECURSE
  "CMakeFiles/aggify_types.dir/data_type.cc.o"
  "CMakeFiles/aggify_types.dir/data_type.cc.o.d"
  "CMakeFiles/aggify_types.dir/schema.cc.o"
  "CMakeFiles/aggify_types.dir/schema.cc.o.d"
  "CMakeFiles/aggify_types.dir/value.cc.o"
  "CMakeFiles/aggify_types.dir/value.cc.o.d"
  "libaggify_types.a"
  "libaggify_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggify_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
