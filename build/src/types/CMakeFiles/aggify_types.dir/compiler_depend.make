# Empty compiler generated dependencies file for aggify_types.
# This may be replaced when dependencies are built.
