file(REMOVE_RECURSE
  "CMakeFiles/aggify_client.dir/client_app.cc.o"
  "CMakeFiles/aggify_client.dir/client_app.cc.o.d"
  "libaggify_client.a"
  "libaggify_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggify_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
