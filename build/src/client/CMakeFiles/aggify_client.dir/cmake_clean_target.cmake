file(REMOVE_RECURSE
  "libaggify_client.a"
)
