# Empty compiler generated dependencies file for aggify_client.
# This may be replaced when dependencies are built.
