# Empty compiler generated dependencies file for aggify_core.
# This may be replaced when dependencies are built.
