file(REMOVE_RECURSE
  "CMakeFiles/aggify_core.dir/analysis_sets.cc.o"
  "CMakeFiles/aggify_core.dir/analysis_sets.cc.o.d"
  "CMakeFiles/aggify_core.dir/cursor_loop.cc.o"
  "CMakeFiles/aggify_core.dir/cursor_loop.cc.o.d"
  "CMakeFiles/aggify_core.dir/loop_aggregate.cc.o"
  "CMakeFiles/aggify_core.dir/loop_aggregate.cc.o.d"
  "CMakeFiles/aggify_core.dir/rewriter.cc.o"
  "CMakeFiles/aggify_core.dir/rewriter.cc.o.d"
  "libaggify_core.a"
  "libaggify_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggify_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
