file(REMOVE_RECURSE
  "libaggify_core.a"
)
