file(REMOVE_RECURSE
  "libaggify_common.a"
)
