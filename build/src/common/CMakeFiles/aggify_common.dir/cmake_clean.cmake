file(REMOVE_RECURSE
  "CMakeFiles/aggify_common.dir/status.cc.o"
  "CMakeFiles/aggify_common.dir/status.cc.o.d"
  "CMakeFiles/aggify_common.dir/string_util.cc.o"
  "CMakeFiles/aggify_common.dir/string_util.cc.o.d"
  "libaggify_common.a"
  "libaggify_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggify_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
