# Empty compiler generated dependencies file for aggify_common.
# This may be replaced when dependencies are built.
