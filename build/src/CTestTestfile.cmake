# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("types")
subdirs("storage")
subdirs("parser")
subdirs("analysis")
subdirs("aggregates")
subdirs("plan")
subdirs("exec")
subdirs("procedural")
subdirs("aggify")
subdirs("froid")
subdirs("client")
subdirs("tpch")
subdirs("workloads")
