file(REMOVE_RECURSE
  "CMakeFiles/aggify_procedural.dir/interpreter.cc.o"
  "CMakeFiles/aggify_procedural.dir/interpreter.cc.o.d"
  "CMakeFiles/aggify_procedural.dir/session.cc.o"
  "CMakeFiles/aggify_procedural.dir/session.cc.o.d"
  "libaggify_procedural.a"
  "libaggify_procedural.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggify_procedural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
