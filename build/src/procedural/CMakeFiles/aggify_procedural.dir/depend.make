# Empty dependencies file for aggify_procedural.
# This may be replaced when dependencies are built.
