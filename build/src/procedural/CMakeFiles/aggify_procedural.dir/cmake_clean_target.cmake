file(REMOVE_RECURSE
  "libaggify_procedural.a"
)
