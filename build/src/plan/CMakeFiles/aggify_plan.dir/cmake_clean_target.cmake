file(REMOVE_RECURSE
  "libaggify_plan.a"
)
