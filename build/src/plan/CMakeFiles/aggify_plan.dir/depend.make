# Empty dependencies file for aggify_plan.
# This may be replaced when dependencies are built.
