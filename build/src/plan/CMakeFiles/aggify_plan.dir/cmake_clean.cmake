file(REMOVE_RECURSE
  "CMakeFiles/aggify_plan.dir/planner.cc.o"
  "CMakeFiles/aggify_plan.dir/planner.cc.o.d"
  "CMakeFiles/aggify_plan.dir/query_engine.cc.o"
  "CMakeFiles/aggify_plan.dir/query_engine.cc.o.d"
  "libaggify_plan.a"
  "libaggify_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggify_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
