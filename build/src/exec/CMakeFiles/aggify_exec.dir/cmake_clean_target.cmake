file(REMOVE_RECURSE
  "libaggify_exec.a"
)
