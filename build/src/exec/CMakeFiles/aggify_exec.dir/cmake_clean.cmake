file(REMOVE_RECURSE
  "CMakeFiles/aggify_exec.dir/eval.cc.o"
  "CMakeFiles/aggify_exec.dir/eval.cc.o.d"
  "CMakeFiles/aggify_exec.dir/exec_context.cc.o"
  "CMakeFiles/aggify_exec.dir/exec_context.cc.o.d"
  "CMakeFiles/aggify_exec.dir/operators_agg.cc.o"
  "CMakeFiles/aggify_exec.dir/operators_agg.cc.o.d"
  "CMakeFiles/aggify_exec.dir/operators_join.cc.o"
  "CMakeFiles/aggify_exec.dir/operators_join.cc.o.d"
  "CMakeFiles/aggify_exec.dir/operators_misc.cc.o"
  "CMakeFiles/aggify_exec.dir/operators_misc.cc.o.d"
  "CMakeFiles/aggify_exec.dir/operators_scan.cc.o"
  "CMakeFiles/aggify_exec.dir/operators_scan.cc.o.d"
  "libaggify_exec.a"
  "libaggify_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggify_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
