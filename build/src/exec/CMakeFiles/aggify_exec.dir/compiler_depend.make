# Empty compiler generated dependencies file for aggify_exec.
# This may be replaced when dependencies are built.
