
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/eval.cc" "src/exec/CMakeFiles/aggify_exec.dir/eval.cc.o" "gcc" "src/exec/CMakeFiles/aggify_exec.dir/eval.cc.o.d"
  "/root/repo/src/exec/exec_context.cc" "src/exec/CMakeFiles/aggify_exec.dir/exec_context.cc.o" "gcc" "src/exec/CMakeFiles/aggify_exec.dir/exec_context.cc.o.d"
  "/root/repo/src/exec/operators_agg.cc" "src/exec/CMakeFiles/aggify_exec.dir/operators_agg.cc.o" "gcc" "src/exec/CMakeFiles/aggify_exec.dir/operators_agg.cc.o.d"
  "/root/repo/src/exec/operators_join.cc" "src/exec/CMakeFiles/aggify_exec.dir/operators_join.cc.o" "gcc" "src/exec/CMakeFiles/aggify_exec.dir/operators_join.cc.o.d"
  "/root/repo/src/exec/operators_misc.cc" "src/exec/CMakeFiles/aggify_exec.dir/operators_misc.cc.o" "gcc" "src/exec/CMakeFiles/aggify_exec.dir/operators_misc.cc.o.d"
  "/root/repo/src/exec/operators_scan.cc" "src/exec/CMakeFiles/aggify_exec.dir/operators_scan.cc.o" "gcc" "src/exec/CMakeFiles/aggify_exec.dir/operators_scan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parser/CMakeFiles/aggify_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aggify_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/aggregates/CMakeFiles/aggify_aggregates.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/aggify_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aggify_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
