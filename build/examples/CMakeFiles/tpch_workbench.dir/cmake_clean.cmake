file(REMOVE_RECURSE
  "CMakeFiles/tpch_workbench.dir/tpch_workbench.cpp.o"
  "CMakeFiles/tpch_workbench.dir/tpch_workbench.cpp.o.d"
  "tpch_workbench"
  "tpch_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
