# Empty dependencies file for tpch_workbench.
# This may be replaced when dependencies are built.
