# Empty dependencies file for for_loop_rewrite.
# This may be replaced when dependencies are built.
