file(REMOVE_RECURSE
  "CMakeFiles/for_loop_rewrite.dir/for_loop_rewrite.cpp.o"
  "CMakeFiles/for_loop_rewrite.dir/for_loop_rewrite.cpp.o.d"
  "for_loop_rewrite"
  "for_loop_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/for_loop_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
