# Empty compiler generated dependencies file for client_application.
# This may be replaced when dependencies are built.
