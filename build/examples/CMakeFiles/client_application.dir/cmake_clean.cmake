file(REMOVE_RECURSE
  "CMakeFiles/client_application.dir/client_application.cpp.o"
  "CMakeFiles/client_application.dir/client_application.cpp.o.d"
  "client_application"
  "client_application.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_application.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
