-- A genuinely order-sensitive body: last value along the cursor's ORDER BY
-- wins. Aggify still rewrites it, but the lint report carries AGG204 — the
-- Eq. 6 sort is retained and the aggregate streams in cursor order.
CREATE TABLE status_log (acct INT, at_day INT, status VARCHAR(8));
INSERT INTO status_log VALUES
  (7, 1, 'new'), (7, 5, 'active'), (7, 9, 'closed'),
  (8, 2, 'new'), (8, 3, 'active');

CREATE FUNCTION latest_status(@acct INT) RETURNS VARCHAR(8) AS
BEGIN
  DECLARE @s VARCHAR(8);
  DECLARE @latest VARCHAR(8);
  DECLARE log_cur CURSOR FOR
    SELECT status FROM status_log WHERE acct = @acct ORDER BY at_day;
  OPEN log_cur;
  FETCH NEXT FROM log_cur INTO @s;
  WHILE @@FETCH_STATUS = 0
  BEGIN
    SET @latest = @s;
    FETCH NEXT FROM log_cur INTO @s;
  END
  CLOSE log_cur;
  DEALLOCATE log_cur;
  RETURN @latest;
END
