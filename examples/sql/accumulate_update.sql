-- Family b of the table-effect rewrite (docs/ANALYSIS.md §6): a cursor
-- loop whose body folds each row into a persistent accumulator column via
-- a key-equality UPDATE. Iterations touching different keys commute and
-- same-key iterations reassociate (the column is integer-typed, so the
-- regrouped addition is exact); the loop becomes ONE set-oriented UPDATE
-- with a grouped correlated subquery (AGG402 note). A NULL amount poisons
-- the balance exactly like the sequential loop would.
CREATE TABLE balances (acct INT, bal INT);
CREATE TABLE deposits (acct INT, amount INT);
INSERT INTO balances VALUES (1, 1000), (2, 2000), (3, 500);
INSERT INTO deposits VALUES
  (1, 250), (2, 125), (1, 40), (3, 0), (1, 5), (9, 777);

CREATE FUNCTION apply_deposits() RETURNS INT AS
BEGIN
  DECLARE @acct INT;
  DECLARE @amt INT;
  DECLARE dep_cur CURSOR FOR SELECT acct, amount FROM deposits;
  OPEN dep_cur;
  FETCH NEXT FROM dep_cur INTO @acct, @amt;
  WHILE @@FETCH_STATUS = 0
  BEGIN
    UPDATE balances SET bal = bal + @amt WHERE acct = @acct;
    FETCH NEXT FROM dep_cur INTO @acct, @amt;
  END
  CLOSE dep_cur;
  DEALLOCATE dep_cur;
  RETURN 0;
END
