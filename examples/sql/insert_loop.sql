-- Family a of the table-effect rewrite (docs/ANALYSIS.md §6): a cursor
-- loop whose body is a single append-only INSERT ... VALUES. The
-- interprocedural table-effect analysis proves the written table (order_log)
-- disjoint from everything the cursor query reads (orders), so the whole
-- loop collapses into one set-oriented INSERT ... SELECT (AGG401 note).
-- The ORDER BY is kept so the inserted row order is bit-identical.
CREATE TABLE orders (id INT, qty INT, price INT);
CREATE TABLE order_log (order_id INT, total INT);
INSERT INTO orders VALUES
  (1, 3, 100), (2, 1, 250), (3, 7, 40), (4, 2, 99), (5, 5, 12);

CREATE FUNCTION log_order_totals() RETURNS INT AS
BEGIN
  DECLARE @id INT;
  DECLARE @q INT;
  DECLARE @p INT;
  DECLARE order_cur CURSOR FOR
    SELECT id, qty, price FROM orders ORDER BY id;
  OPEN order_cur;
  FETCH NEXT FROM order_cur INTO @id, @q, @p;
  WHILE @@FETCH_STATUS = 0
  BEGIN
    INSERT INTO order_log VALUES (@id, @q * @p);
    FETCH NEXT FROM order_cur INTO @id, @q, @p;
  END
  CLOSE order_cur;
  DEALLOCATE order_cur;
  RETURN 0;
END
