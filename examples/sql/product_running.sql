-- Running product: multiplication has an identity but no total inverse, so
-- the merge is NOT @l * @r / @c (a zero baseline would divide by zero).
-- The calculus augments the state with a factor image and a zero count
-- (AGG206 rule "product-augmented") and merges by multiplying the local
-- factor image into the other side's result; the shuffle sweep certifies
-- the plan across zero and NULL baselines (AGG207).
CREATE TABLE growth_factors (fund INT, factor INT);
INSERT INTO growth_factors VALUES
  (1, 2), (1, 3), (1, 1), (2, 5), (2, 0), (2, 4);

CREATE FUNCTION compound_growth(@fund INT) RETURNS INT AS
BEGIN
  DECLARE @f INT;
  DECLARE @acc INT = 1;
  DECLARE factor_cur CURSOR FOR
    SELECT factor FROM growth_factors WHERE fund = @fund;
  OPEN factor_cur;
  FETCH NEXT FROM factor_cur INTO @f;
  WHILE @@FETCH_STATUS = 0
  BEGIN
    SET @acc = @acc * @f;
    FETCH NEXT FROM factor_cur INTO @f;
  END
  CLOSE factor_cur;
  DEALLOCATE factor_cur;
  RETURN @acc;
END
