-- Fetch-column pruning demo: the cursor fetches both qty and note, but the
-- loop body only ever reads @qty. `aggify_cli --lint` reports the dead
-- column as AGG302 (unused-fetch-column) and the rewritten query's derived
-- projection drops it, so the engine never materializes `note` at all.
CREATE TABLE shipments (ship_id INT, qty INT, note STRING);
INSERT INTO shipments VALUES
  (1, 4, 'fragile'), (1, 9, 'bulk'), (2, 2, 'cold chain'), (1, 1, 'bulk');

CREATE FUNCTION shipped_units(@sid INT) RETURNS INT AS
BEGIN
  DECLARE @qty INT;
  DECLARE @note STRING;
  DECLARE @units INT = 0;
  DECLARE ship_cur CURSOR FOR
    SELECT qty, note FROM shipments WHERE ship_id = @sid;
  OPEN ship_cur;
  FETCH NEXT FROM ship_cur INTO @qty, @note;
  WHILE @@FETCH_STATUS = 0
  BEGIN
    SET @units = @units + @qty;
    FETCH NEXT FROM ship_cur INTO @qty, @note;
  END
  CLOSE ship_cur;
  DEALLOCATE ship_cur;
  RETURN @units;
END
