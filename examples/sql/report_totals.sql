-- Canonical Aggify target: an ordered cursor whose body is a pure sum fold.
-- `aggify_cli --lint` proves the body order-insensitive (AGG202: the Eq. 6
-- sort is elided) and decomposable (AGG203: a Merge is derived).
CREATE TABLE order_lines (order_id INT, qty INT, price FLOAT);
INSERT INTO order_lines VALUES
  (1, 3, 9.50), (1, 1, 2.25), (2, 7, 1.10), (2, 2, 30.00), (3, 5, 4.40);

CREATE FUNCTION order_total(@oid INT) RETURNS FLOAT AS
BEGIN
  DECLARE @qty INT;
  DECLARE @price FLOAT;
  DECLARE @total FLOAT = 0.0;
  DECLARE line_cur CURSOR FOR
    SELECT qty, price FROM order_lines WHERE order_id = @oid ORDER BY price;
  OPEN line_cur;
  FETCH NEXT FROM line_cur INTO @qty, @price;
  WHILE @@FETCH_STATUS = 0
  BEGIN
    SET @total = @total + @qty * @price;
    FETCH NEXT FROM line_cur INTO @qty, @price;
  END
  CLOSE line_cur;
  DEALLOCATE line_cur;
  RETURN @total;
END
