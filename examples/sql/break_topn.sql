-- Early-exit bounding (docs/ANALYSIS.md §6, AGG403): the loop BREAKs after
-- three iterations through a monotone counter. The rewrite keeps the BREAK
-- inside the synthesized aggregate (its exit latch already makes trailing
-- rows no-ops) and ADDITIONALLY proves the counter/limit/step shape, so a
-- TOP-N prefix bound is attached to the derived cursor query — the
-- rewritten plan reads ~3 rows instead of the whole table.
CREATE TABLE scores (player INT, score INT);
INSERT INTO scores VALUES
  (1, 82), (2, 97), (3, 54), (4, 91), (5, 67), (6, 88), (7, 73), (8, 99);

CREATE FUNCTION top3_total() RETURNS INT AS
BEGIN
  DECLARE @s INT;
  DECLARE @sum INT = 0;
  DECLARE @n INT = 0;
  DECLARE score_cur CURSOR FOR SELECT score FROM scores ORDER BY score DESC;
  OPEN score_cur;
  FETCH NEXT FROM score_cur INTO @s;
  WHILE @@FETCH_STATUS = 0
  BEGIN
    SET @sum = @sum + @s;
    SET @n = @n + 1;
    IF @n >= 3
      BREAK;
    FETCH NEXT FROM score_cur INTO @s;
  END
  CLOSE score_cur;
  DEALLOCATE score_cur;
  RETURN @sum;
END
