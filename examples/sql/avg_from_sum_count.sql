-- Multi-accumulator fold with a derived field: the body keeps a running
-- sum and count and recomputes the average every iteration. The fold
-- algebra rejects the division, but the homomorphism calculus merges the
-- bases (@total, @n) field-wise and recomputes @avg over the merged state
-- (AGG206 rule "derived"); the plan ships with a shuffle-sweep certificate
-- (AGG207) and the loop becomes parallel-eligible (AGG205).
CREATE TABLE readings (sensor INT, temp INT);
INSERT INTO readings VALUES
  (1, 18), (1, 22), (1, 20), (2, 31), (2, 29), (2, 30), (2, 34);

CREATE FUNCTION avg_temp(@sensor INT) RETURNS INT AS
BEGIN
  DECLARE @t INT;
  DECLARE @n INT = 0;
  DECLARE @total INT = 0;
  DECLARE @avg INT = 0;
  DECLARE temp_cur CURSOR FOR
    SELECT temp FROM readings WHERE sensor = @sensor;
  OPEN temp_cur;
  FETCH NEXT FROM temp_cur INTO @t;
  WHILE @@FETCH_STATUS = 0
  BEGIN
    SET @total = @total + @t;
    SET @n = @n + 1;
    SET @avg = @total / @n;
    FETCH NEXT FROM temp_cur INTO @t;
  END
  CLOSE temp_cur;
  DEALLOCATE temp_cur;
  RETURN @avg;
END
