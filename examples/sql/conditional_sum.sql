-- Guarded sum through branch-scoped scratch: the addend is staged in a
-- local declared inside the IF. The fold algebra does not decompose the
-- two-statement branch, but the calculus inlines the row-pure scratch in
-- place and derives a guarded-sum Merge (AGG206 rule "guarded-sum"),
-- certified by the shuffle sweep (AGG207) — the loop is parallel-eligible.
CREATE TABLE line_items (invoice INT, amount INT);
INSERT INTO line_items VALUES
  (1, 5), (1, 1), (1, 9), (2, 2), (2, 40), (2, 3), (2, 11);

CREATE FUNCTION big_item_total(@invoice INT) RETURNS INT AS
BEGIN
  DECLARE @amt INT;
  DECLARE @total INT = 0;
  DECLARE item_cur CURSOR FOR
    SELECT amount FROM line_items WHERE invoice = @invoice;
  OPEN item_cur;
  FETCH NEXT FROM item_cur INTO @amt;
  WHILE @@FETCH_STATUS = 0
  BEGIN
    IF (@amt > 4)
    BEGIN
      DECLARE @taxed INT;
      SET @taxed = @amt * 2;
      SET @total = @total + @taxed;
    END
    FETCH NEXT FROM item_cur INTO @amt;
  END
  CLOSE item_cur;
  DEALLOCATE item_cur;
  RETURN @total;
END
