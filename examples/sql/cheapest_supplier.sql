-- Figure 1's shape: a guarded-minimum scan (cheapest offer per part). The
-- classifier recognizes the NULL-guarded compare-and-keep as a min fold, so
-- the loop is order-insensitive and mergeable even without an ORDER BY.
CREATE TABLE offers (part_id INT, supplier VARCHAR(16), cost FLOAT);
INSERT INTO offers VALUES
  (10, 'acme', 4.75), (10, 'globex', 3.20), (10, 'initech', 5.10),
  (20, 'acme', 0.99), (20, 'globex', 1.10);

CREATE FUNCTION min_cost(@pid INT) RETURNS FLOAT AS
BEGIN
  DECLARE @cost FLOAT;
  DECLARE @best FLOAT;
  DECLARE offer_cur CURSOR FOR
    SELECT cost FROM offers WHERE part_id = @pid;
  OPEN offer_cur;
  FETCH NEXT FROM offer_cur INTO @cost;
  WHILE @@FETCH_STATUS = 0
  BEGIN
    IF (@best IS NULL OR @cost < @best)
      SET @best = @cost;
    FETCH NEXT FROM offer_cur INTO @cost;
  END
  CLOSE offer_cur;
  DEALLOCATE offer_cur;
  RETURN @best;
END
