// §8.1 demo: an iterative FOR loop becomes a cursor loop over a
// recursive-CTE iteration space, and then a custom aggregate.
//
// Usage:  ./build/examples/for_loop_rewrite
#include <cstdio>

#include "aggify/rewriter.h"
#include "procedural/session.h"

using namespace aggify;

namespace {
void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  Database db;
  Session session(&db);

  Check(session.RunSql(R"(
    CREATE FUNCTION harmonic(@n INT) RETURNS FLOAT AS
    BEGIN
      DECLARE @h FLOAT = 0.0;
      FOR @i = 1 TO @n
      BEGIN
        SET @h = @h + 1.0 / @i;
      END
      RETURN @h;
    END
  )").status(), "create function");

  auto before = session.Call("harmonic", {Value::Int(1000)});
  Check(before.status(), "call");
  std::printf("Interpreted FOR loop:  harmonic(1000) = %s\n",
              before->ToString().c_str());

  EngineOptions options;
  options.rewrite.convert_for_loops = true;  // §8.1
  Aggify aggify(&db, options);
  auto report = aggify.RewriteFunction("harmonic");
  Check(report.status(), "rewrite");
  std::printf("\nFOR loop -> cursor over a recursive CTE -> aggregate.\n");
  std::printf("Rewritten statement:\n  %s\n",
              report->rewrites[0].rewritten_statement.c_str());

  auto after = session.Call("harmonic", {Value::Int(1000)});
  Check(after.status(), "call rewritten");
  std::printf("Aggregate over the iteration space: harmonic(1000) = %s\n",
              after->ToString().c_str());
  std::printf("\n%s\n", before->StructurallyEquals(*after)
                            ? "Results agree."
                            : "MISMATCH!");
  return before->StructurallyEquals(*after) ? 0 : 1;
}
