// TPC-H workbench: pick one workload query and watch the full Aggify+
// pipeline transform it — original cursor UDF, Aggify rewrite, Froid
// inlining, decorrelated plan — with EXPLAIN output at each step.
//
// Usage:  ./build/examples/tpch_workbench [Q2|Q13|Q14|Q18|Q19|Q21]
#include <cstdio>
#include <cstring>

#include "froid/froid.h"
#include "tpch/tpch_gen.h"
#include "workloads/tpch_adapter.h"

using namespace aggify;

namespace {
void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main(int argc, char** argv) {
  const char* query_id = argc > 1 ? argv[1] : "Q2";

  Database db;
  TpchConfig config;
  config.scale_factor = 0.002;
  Check(PopulateTpch(&db, config), "PopulateTpch");

  auto query = GetTpchCursorQuery(query_id);
  Check(query.status(), "GetTpchCursorQuery");
  std::printf("=== %s: %s ===\n\n", query->id.c_str(),
              query->description.c_str());

  Session session(&db);
  Check(session.RunSql(query->udf_sql).status(), "register UDF");

  // Original.
  WorkloadQuery w = ToWorkloadQuery(*query);
  auto original = RunWorkloadQuery(&db, w, RunMode::kOriginal);
  Check(original.status(), "original run");
  std::printf("[Original] %zu rows, wall %.2f ms, cursors=%lld fetches=%lld "
              "worktable_pages=%lld\n",
              original->result.rows.size(), original->seconds * 1e3,
              static_cast<long long>(original->cursors_opened),
              static_cast<long long>(original->cursor_fetches),
              static_cast<long long>(original->worktable_pages_written));

  // Aggify: show the synthesized artifacts.
  Aggify aggify(&db);
  for (const auto& name : query->udf_names) {
    auto report = aggify.RewriteFunction(name);
    Check(report.status(), "aggify");
    for (const auto& rewrite : report->rewrites) {
      std::printf("\n[Aggify] synthesized aggregate for %s:\n%s\n",
                  name.c_str(), rewrite.aggregate_source.c_str());
      std::printf("[Aggify] rewritten loop:\n  %s\n",
                  rewrite.rewritten_statement.c_str());
    }
  }
  auto aggified = RunWorkloadQuery(&db, w, RunMode::kAggify);
  Check(aggified.status(), "aggify run");
  std::printf("[Aggify] %zu rows, wall %.2f ms, cursors=%lld (gone)\n",
              aggified->result.rows.size(), aggified->seconds * 1e3,
              static_cast<long long>(aggified->cursors_opened));

  // Aggify+: Froid inlining + decorrelation, with the final plan.
  if (query->froid_applicable) {
    auto driver = ParseSelect(query->driver_sql);
    Check(driver.status(), "parse driver");
    Froid froid(&db);
    auto rewrites = froid.RewriteQuery(driver->get());
    Check(rewrites.status(), "froid");
    std::printf("\n[Aggify+] Froid performed %d rewrite(s). Final query:\n  %s\n",
                *rewrites, (*driver)->ToString().c_str());
    ExecContext ctx = session.MakeContext();
    VariableEnv env;
    ctx.set_vars(&env);
    auto explain = session.engine().Explain(**driver, ctx);
    Check(explain.status(), "explain");
    std::printf("\n[Aggify+] physical plan:\n%s", explain->c_str());
  } else {
    std::printf("\n[Aggify+] Froid is not applicable to %s "
                "(multi-variable V_term loop).\n",
                query->id.c_str());
  }
  auto plus = RunWorkloadQuery(&db, w, RunMode::kAggifyPlus);
  Check(plus.status(), "aggify+ run");
  std::printf("\n[Aggify+] %zu rows, wall %.2f ms, nested queries executed: "
              "%lld\n",
              plus->result.rows.size(), plus->seconds * 1e3,
              static_cast<long long>(plus->queries_executed));
  return 0;
}
