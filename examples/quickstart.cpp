// Quickstart: the paper's Figure 1 end-to-end.
//
//   1. create a tiny PARTSUPP/SUPPLIER schema
//   2. register the minCostSupp UDF containing a cursor loop
//   3. call it (the slow way), watching the cursor counters
//   4. run Aggify: the loop becomes a custom aggregate + Eq. 5 query
//   5. call it again — same answers, no cursor, no worktable
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "aggify/rewriter.h"
#include "procedural/session.h"

using namespace aggify;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  Database db;
  Session session(&db);

  // (1) Schema + data.
  Check(session.RunSql(R"(
    CREATE TABLE partsupp (ps_partkey INT, ps_suppkey INT,
                           ps_supplycost DECIMAL(15,2));
    CREATE TABLE supplier (s_suppkey INT, s_name CHAR(25));
    INSERT INTO partsupp VALUES (1, 10, 50.0), (1, 11, 30.0), (1, 12, 70.0),
                                (2, 10, 5.0), (2, 12, 8.0);
    INSERT INTO supplier VALUES (10, 'Supplier#10'), (11, 'Supplier#11'),
                                (12, 'Supplier#12');
    CREATE INDEX idx_ps ON partsupp (ps_partkey);
  )").status(), "schema setup");

  // (2) The Figure 1 UDF: a cursor loop computing the min-cost supplier.
  Check(session.RunSql(R"(
    CREATE FUNCTION mincostsupp(@pkey INT, @lb INT = -1) RETURNS CHAR(25) AS
    BEGIN
      DECLARE @pcost DECIMAL(15,2);
      DECLARE @sname CHAR(25);
      DECLARE @mincost DECIMAL(15,2) = 100000;
      DECLARE @suppname CHAR(25);
      IF (@lb = -1)
        SET @lb = 0;
      DECLARE c CURSOR FOR
        SELECT ps_supplycost, s_name FROM partsupp, supplier
        WHERE ps_partkey = @pkey AND ps_suppkey = s_suppkey;
      OPEN c;
      FETCH NEXT FROM c INTO @pcost, @sname;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        IF (@pcost < @mincost AND @pcost >= @lb)
        BEGIN
          SET @mincost = @pcost;
          SET @suppname = @sname;
        END
        FETCH NEXT FROM c INTO @pcost, @sname;
      END
      CLOSE c;
      DEALLOCATE c;
      RETURN @suppname;
    END
  )").status(), "create function");

  // (3) Call it with the cursor loop in place.
  db.stats().Reset();
  auto before = session.Call("mincostsupp", {Value::Int(1)});
  Check(before.status(), "call (original)");
  std::printf("Original cursor loop:   mincostsupp(1) = %s\n",
              before->ToString().c_str());
  std::printf("  ... but it cost: %s\n\n", db.stats().ToString().c_str());

  // (4) Aggify.
  Aggify aggify(&db);
  auto report = aggify.RewriteFunction("mincostsupp");
  Check(report.status(), "aggify");
  std::printf("Aggify rewrote %d loop(s). Synthesized aggregate (Figure 5):\n\n%s\n",
              report->loops_rewritten,
              report->rewrites[0].aggregate_source.c_str());
  std::printf("Rewritten statement (Figure 7):\n  %s\n",
              report->rewrites[0].rewritten_statement.c_str());

  // (5) Same answers, zero cursor traffic.
  db.stats().Reset();
  auto after = session.Call("mincostsupp", {Value::Int(1)});
  Check(after.status(), "call (rewritten)");
  std::printf("Rewritten aggregate:    mincostsupp(1) = %s\n",
              after->ToString().c_str());
  std::printf("  ... and it cost: %s\n", db.stats().ToString().c_str());

  if (!before->StructurallyEquals(*after)) {
    std::fprintf(stderr, "MISMATCH! The rewrite changed the answer.\n");
    return 1;
  }
  std::printf("\nAnswers match; the cursor is gone. "
              "(Theorem 4.2 in action.)\n");
  return 0;
}
