// Client application demo (the paper's Figure 2 / §10.6 scenario): a
// "remote" program iterates over query results across the network; Aggify
// pushes the loop into the DBMS and ships back one row.
//
// Usage:  ./build/examples/client_application [num_rows]
#include <cstdio>
#include <cstdlib>

#include "workloads/client_harness.h"
#include "workloads/client_programs.h"

using namespace aggify;

namespace {
void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main(int argc, char** argv) {
  int64_t rows = argc > 1 ? std::atoll(argv[1]) : 2000;

  Database db;
  Check(PopulateInvestments(&db, rows), "PopulateInvestments");

  std::printf("CumulativeROI client program: %lld rows x %d ROI columns over "
              "a simulated LAN\n\n",
              static_cast<long long>(rows), kRoiColumns);

  std::string program = MakeCumulativeRoiProgram(rows);
  auto cmp = CompareClientProgram(&db, program);
  Check(cmp.status(), "CompareClientProgram");

  std::printf("Original (row-by-row over the network):\n");
  std::printf("  total %.2f ms (compute %.2f ms + network %.2f ms)\n",
              cmp->original.TotalSeconds() * 1e3,
              cmp->original.compute_seconds * 1e3,
              cmp->original.network_seconds * 1e3);
  std::printf("  %s\n\n", cmp->original.network.ToString().c_str());

  std::printf("Aggify (loop pushed into the DBMS, %d loop(s) rewritten):\n",
              cmp->report.loops_rewritten);
  std::printf("  total %.2f ms (compute %.2f ms + network %.2f ms)\n",
              cmp->aggified.TotalSeconds() * 1e3,
              cmp->aggified.compute_seconds * 1e3,
              cmp->aggified.network_seconds * 1e3);
  std::printf("  %s\n\n", cmp->aggified.network.ToString().c_str());

  std::printf("Speedup: %.1fx, data-to-client reduction: %.1fx\n",
              cmp->SpeedupTotal(), cmp->DataReduction());

  // Show one of the 50 accumulators to prove equivalence.
  auto a = cmp->original.env->Get("@cum1");
  auto b = cmp->aggified.env->Get("@cum1");
  Check(a.status(), "get @cum1");
  Check(b.status(), "get @cum1");
  std::printf("@cum1: original=%s rewritten=%s\n", a->ToString().c_str(),
              b->ToString().c_str());
  return 0;
}
