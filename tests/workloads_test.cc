// Integration tests over the full workload suites: every experiment's
// Original / Aggify / Aggify+ configurations must produce identical results,
// and the mechanism claims (no materialization, fewer reads, less data
// moved) must hold.
#include <gtest/gtest.h>

#include "test_util.h"
#include "tpch/tpch_gen.h"
#include "workloads/client_harness.h"
#include "workloads/client_programs.h"
#include "workloads/corpus.h"
#include "workloads/real_workloads.h"
#include "workloads/rubis.h"
#include "workloads/tpch_adapter.h"

namespace aggify {
namespace {

class TpchWorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    TpchConfig config;
    config.scale_factor = 0.002;
    ASSERT_OK(PopulateTpch(db_, config));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* TpchWorkloadTest::db_ = nullptr;

TEST_F(TpchWorkloadTest, AllQueriesAgreeAcrossModes) {
  for (const auto& q : TpchCursorQueries()) {
    SCOPED_TRACE(q.id);
    ASSERT_OK_AND_ASSIGN(int64_t rows,
                         VerifyModesAgree(db_, ToWorkloadQuery(q)));
    EXPECT_GT(rows, 0) << q.id << " produced no rows";
  }
}

TEST_F(TpchWorkloadTest, AggifyEliminatesCursorTraffic) {
  for (const auto& q : TpchCursorQueries()) {
    SCOPED_TRACE(q.id);
    ASSERT_OK_AND_ASSIGN(
        RunMetrics original,
        RunWorkloadQuery(db_, ToWorkloadQuery(q), RunMode::kOriginal));
    ASSERT_OK_AND_ASSIGN(
        RunMetrics aggified,
        RunWorkloadQuery(db_, ToWorkloadQuery(q), RunMode::kAggify));
    EXPECT_GT(original.cursors_opened, 0);
    EXPECT_GT(original.worktable_pages_written, 0);
    EXPECT_EQ(aggified.cursors_opened, 0);
    EXPECT_EQ(aggified.worktable_pages_written, 0);
    EXPECT_EQ(aggified.cursor_fetches, 0);
    // Table 2's direction: strictly fewer total logical reads.
    EXPECT_LT(aggified.TotalLogicalReads(), original.TotalLogicalReads());
  }
}

TEST_F(TpchWorkloadTest, AggifyPlusCollapsesQueryCount) {
  // Q2's Aggify+ configuration decorrelates: a handful of query executions
  // instead of one per part.
  ASSERT_OK_AND_ASSIGN(auto q2, GetTpchCursorQuery("Q2"));
  ASSERT_OK_AND_ASSIGN(RunMetrics aggified,
                       RunWorkloadQuery(db_, ToWorkloadQuery(q2),
                                        RunMode::kAggify));
  ASSERT_OK_AND_ASSIGN(RunMetrics plus,
                       RunWorkloadQuery(db_, ToWorkloadQuery(q2),
                                        RunMode::kAggifyPlus));
  EXPECT_GT(aggified.queries_executed, 100);  // one per part
  EXPECT_LE(plus.queries_executed, 5);        // set-oriented plan
}

class RubisWorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_OK(PopulateRubis(&db_)); }
  Database db_;
};

TEST_F(RubisWorkloadTest, AllScenariosRewriteAndAgree) {
  for (const auto& scenario : RubisScenarios()) {
    SCOPED_TRACE(scenario.id);
    std::string program = InstantiateRubisScenario(scenario, 3);
    ASSERT_OK_AND_ASSIGN(ClientComparison cmp,
                         CompareClientProgram(&db_, program));
    EXPECT_EQ(cmp.report.loops_found, 1);
    EXPECT_EQ(cmp.report.loops_rewritten, 1);
    // Fig. 9(b)'s mechanism: the rewritten client moves less data and makes
    // fewer round trips.
    EXPECT_LT(cmp.aggified.network.bytes_to_client,
              cmp.original.network.bytes_to_client);
    EXPECT_LT(cmp.aggified.network.round_trips,
              cmp.original.network.round_trips);
  }
}

class RealWorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    RealWorkloadConfig config;
    config.base_rows = 400;
    ASSERT_OK(PopulateRealWorkloads(db_, config));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* RealWorkloadTest::db_ = nullptr;

TEST_F(RealWorkloadTest, AllLoopsAgreeAcrossModes) {
  for (const auto& loop : RealWorkloadLoops()) {
    SCOPED_TRACE(loop.query.id);
    ASSERT_OK(VerifyModesAgree(db_, loop.query).status());
  }
}

TEST_F(RealWorkloadTest, NestedLoopL8RewritesBothLevels) {
  Session session(db_);
  const RealLoop* l8 = nullptr;
  for (const auto& loop : RealWorkloadLoops()) {
    if (loop.query.id == "L8") l8 = &loop;
  }
  ASSERT_NE(l8, nullptr);
  ASSERT_TRUE(l8->nested);
  ASSERT_OK(session.RunSql(l8->query.udf_sql).status());
  Aggify aggify(db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report,
                       aggify.RewriteFunction(l8->query.udf_names[0]));
  EXPECT_EQ(report.loops_found, 2);
  EXPECT_EQ(report.loops_rewritten, 2);
}

class ClientProgramsTest : public ::testing::Test {};

TEST_F(ClientProgramsTest, MinCostSupplierProgramAgrees) {
  Database db;
  TpchConfig config;
  config.scale_factor = 0.002;
  ASSERT_OK(PopulateTpch(&db, config));
  std::string program = MakeMinCostSupplierProgram(50);
  ASSERT_OK_AND_ASSIGN(ClientComparison cmp, CompareClientProgram(&db, program));
  EXPECT_EQ(cmp.report.loops_rewritten, 2);  // nested: inner + outer
  ASSERT_OK_AND_ASSIGN(Value orig_sum, cmp.original.env->Get("@checksum"));
  ASSERT_OK_AND_ASSIGN(Value new_sum, cmp.aggified.env->Get("@checksum"));
  EXPECT_NEAR(orig_sum.AsDouble(), new_sum.AsDouble(), 1e-6);
  ASSERT_OK_AND_ASSIGN(Value orig_n, cmp.original.env->Get("@processed"));
  ASSERT_OK_AND_ASSIGN(Value new_n, cmp.aggified.env->Get("@processed"));
  EXPECT_EQ(orig_n.int_value(), new_n.int_value());
  EXPECT_EQ(new_n.int_value(), 50);
  // §10.6: data movement collapses to O(1).
  EXPECT_GT(cmp.original.network.bytes_to_client,
            10 * cmp.aggified.network.bytes_to_client);
}

TEST_F(ClientProgramsTest, CumulativeRoi50ColumnsAgrees) {
  Database db;
  ASSERT_OK(PopulateInvestments(&db, 200));
  std::string program = MakeCumulativeRoiProgram(150);
  ASSERT_OK_AND_ASSIGN(ClientComparison cmp, CompareClientProgram(&db, program));
  EXPECT_EQ(cmp.report.loops_rewritten, 1);
  // All 50 accumulators must match (the V_term record has 50 attributes).
  for (int i = 1; i <= kRoiColumns; ++i) {
    std::string name = "@cum" + std::to_string(i);
    ASSERT_OK_AND_ASSIGN(Value orig, cmp.original.env->Get(name));
    ASSERT_OK_AND_ASSIGN(Value rewritten, cmp.aggified.env->Get(name));
    EXPECT_NEAR(orig.AsDouble(), rewritten.AsDouble(), 1e-9) << name;
  }
  // Original ships ~200 bytes per iteration; rewritten ships one row.
  EXPECT_GT(cmp.original.network.bytes_to_client,
            50 * cmp.aggified.network.bytes_to_client);
}

TEST(CorpusTest, Table1CountsMatchThePaper) {
  const auto& corpora = ApplicabilityCorpora();
  ASSERT_EQ(corpora.size(), 3u);

  ASSERT_OK_AND_ASSIGN(CorpusStats rubis, AnalyzeCorpus(corpora[0]));
  EXPECT_EQ(rubis.total_while_loops, 16);
  EXPECT_EQ(rubis.cursor_loops, 14);
  EXPECT_EQ(rubis.aggifyable, 14);
  EXPECT_EQ(rubis.dml_insert_recovered, 1);
  EXPECT_EQ(rubis.dml_update_recovered, 0);
  EXPECT_EQ(rubis.early_exit_bounded, 1);

  ASSERT_OK_AND_ASSIGN(CorpusStats rubbos, AnalyzeCorpus(corpora[1]));
  EXPECT_EQ(rubbos.total_while_loops, 41);
  EXPECT_EQ(rubbos.cursor_loops, 14);
  EXPECT_EQ(rubbos.aggifyable, 14);
  EXPECT_EQ(rubbos.dml_insert_recovered, 0);
  EXPECT_EQ(rubbos.dml_update_recovered, 1);
  EXPECT_EQ(rubbos.early_exit_bounded, 1);

  ASSERT_OK_AND_ASSIGN(CorpusStats adempiere, AnalyzeCorpus(corpora[2]));
  EXPECT_EQ(adempiere.total_while_loops, 127);
  EXPECT_EQ(adempiere.cursor_loops, 109);
  EXPECT_GT(adempiere.aggifyable, 80);
  EXPECT_EQ(adempiere.aggifyable, 96);
  EXPECT_EQ(adempiere.dml_insert_recovered, 2);
  EXPECT_EQ(adempiere.dml_update_recovered, 2);
  EXPECT_EQ(adempiere.early_exit_bounded, 2);
  // The 13 refused loops insert into their own scan table: the primary skip
  // is the persistent-insert check, and DML recovery must NOT reclaim them
  // (self-read-after-write breaks both rewrite families).
  ASSERT_EQ(adempiere.skip_codes.size(), 1u);
  EXPECT_EQ(adempiere.skip_codes.at(DiagCode::kPersistentInsert), 13);
  // Ladder + recovery accounting: every bucket covers `aggifyable`, and the
  // recovered loops are a subset of the serial-only rewrites.
  EXPECT_EQ(adempiere.recognized_fold + adempiere.merge_synthesized +
                adempiere.serial_only,
            adempiere.aggifyable);
  EXPECT_LE(adempiere.dml_insert_recovered + adempiere.dml_update_recovered +
                adempiere.early_exit_bounded,
            adempiere.serial_only);
}

TEST(CorpusTest, AzureCensusScale) {
  int64_t cursors = SimulateAzureCensus(5720);
  // The paper reports "more than 77,294 cursors" across 5,720 databases.
  EXPECT_GT(cursors, 70000);
  EXPECT_LT(cursors, 85000);
}

}  // namespace
}  // namespace aggify
