// Failpoint framework tests: trigger-policy determinism, spec/env parsing,
// disarm hygiene, status-code routing, and the query engine's transient
// retry over injected retryable faults.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/failpoint.h"
#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::Instance().DisarmAll(); }
};

TEST_F(FailPointTest, UnarmedCheckIsFree) {
  EXPECT_FALSE(FailPoints::AnyArmed());
  EXPECT_OK(FailPoints::Check("no.such.site"));
}

TEST_F(FailPointTest, AlwaysPolicyFiresEveryCheck) {
  ASSERT_OK(FailPoints::Instance().Arm("t.always", FailPointSpec{}));
  EXPECT_TRUE(FailPoints::AnyArmed());
  for (int i = 0; i < 5; ++i) {
    Status st = FailPoints::Check("t.always");
    ASSERT_FALSE(st.ok());
    EXPECT_TRUE(FailPoints::IsInjected(st));
  }
  EXPECT_EQ(FailPoints::Instance().CheckCount("t.always"), 5);
  EXPECT_EQ(FailPoints::Instance().TriggerCount("t.always"), 5);
  // Other sites are unaffected.
  EXPECT_OK(FailPoints::Check("t.other"));
}

TEST_F(FailPointTest, OffPolicyNeverFires) {
  FailPointSpec spec;
  spec.policy = FailPointPolicy::kOff;
  ASSERT_OK(FailPoints::Instance().Arm("t.off", spec));
  for (int i = 0; i < 10; ++i) EXPECT_OK(FailPoints::Check("t.off"));
  EXPECT_EQ(FailPoints::Instance().CheckCount("t.off"), 10);
  EXPECT_EQ(FailPoints::Instance().TriggerCount("t.off"), 0);
}

TEST_F(FailPointTest, EveryNthFiresOnMultiples) {
  ASSERT_OK(FailPoints::Instance().ArmFromString("t.every=every(3)"));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(!FailPoints::Check("t.every").ok());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
}

TEST_F(FailPointTest, AfterNPassesThenAlwaysFires) {
  ASSERT_OK(FailPoints::Instance().ArmFromString("t.after=after(2)"));
  EXPECT_OK(FailPoints::Check("t.after"));
  EXPECT_OK(FailPoints::Check("t.after"));
  for (int i = 0; i < 4; ++i) ASSERT_FALSE(FailPoints::Check("t.after").ok());
}

TEST_F(FailPointTest, TimesFiresFirstKThenPasses) {
  ASSERT_OK(FailPoints::Instance().ArmFromString("t.times=times(2):timeout"));
  ASSERT_FALSE(FailPoints::Check("t.times").ok());
  ASSERT_FALSE(FailPoints::Check("t.times").ok());
  for (int i = 0; i < 4; ++i) EXPECT_OK(FailPoints::Check("t.times"));
}

TEST_F(FailPointTest, ProbabilityIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    FailPointSpec spec;
    spec.policy = FailPointPolicy::kProbability;
    spec.probability = 0.5;
    spec.seed = seed;
    EXPECT_OK(FailPoints::Instance().Arm("t.prob", spec));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!FailPoints::Check("t.prob").ok());
    FailPoints::Instance().Disarm("t.prob");
    return fired;
  };
  std::vector<bool> a = run(42);
  std::vector<bool> b = run(42);
  std::vector<bool> c = run(43);
  EXPECT_EQ(a, b);       // same seed replays exactly
  EXPECT_NE(a, c);       // different seed diverges
  int hits = 0;
  for (bool f : a) hits += f ? 1 : 0;
  EXPECT_GT(hits, 8);    // p=0.5 over 64 draws is nowhere near 0 or 64
  EXPECT_LT(hits, 56);
}

TEST_F(FailPointTest, SpecStringParsesPoliciesAndCodes) {
  ASSERT_OK(FailPoints::Instance().ArmFromString(
      "a.x=always;b.y=prob(0.5,42):timeout, c.z=after(10):unavailable"));
  EXPECT_EQ(FailPoints::Instance().ArmedSites(),
            (std::vector<std::string>{"a.x", "b.y", "c.z"}));
  Status st = FailPoints::Check("a.x");
  EXPECT_EQ(st.code(), StatusCode::kExecutionError);  // default code
  // after(10) lets the first checks through.
  EXPECT_OK(FailPoints::Check("c.z"));
}

TEST_F(FailPointTest, InjectedCodesRouteThroughStatusPredicates) {
  ASSERT_OK(FailPoints::Instance().ArmFromString(
      "t.to=always:timeout;t.un=always:unavailable;t.nf=always:notfound"));
  Status to = FailPoints::Check("t.to");
  EXPECT_TRUE(to.IsTimeout());
  EXPECT_TRUE(to.IsRetryable());
  Status un = FailPoints::Check("t.un");
  EXPECT_TRUE(un.IsUnavailable());
  EXPECT_TRUE(un.IsRetryable());
  Status nf = FailPoints::Check("t.nf");
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_FALSE(nf.IsRetryable());
  EXPECT_TRUE(FailPoints::IsInjected(to));
  EXPECT_FALSE(FailPoints::IsInjected(Status::Timeout("organic")));
}

TEST_F(FailPointTest, MalformedSpecArmsNothing) {
  // Second entry is malformed (empty site name): the whole list is
  // rejected atomically.
  Status st = FailPoints::Instance().ArmFromString("good.site=always;=always");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(FailPoints::AnyArmed());
  ASSERT_FALSE(FailPoints::Instance().ArmFromString("s=every(0)").ok());
  ASSERT_FALSE(FailPoints::Instance().ArmFromString("s=prob(1.5)").ok());
  ASSERT_FALSE(FailPoints::Instance().ArmFromString("s=always:nocode").ok());
  ASSERT_FALSE(FailPoints::Instance().ArmFromString("s=always:sleep(x)").ok());
  EXPECT_FALSE(FailPoints::AnyArmed());
}

TEST_F(FailPointTest, BareSiteArmsAsAlways) {
  // `AGGIFY_FAILPOINTS=exec.slow_operator` (no '=') must work verbatim:
  // a bare name arms the site with the `always` policy.
  ASSERT_OK(FailPoints::Instance().ArmFromString("bare.site"));
  EXPECT_TRUE(FailPoints::Instance().IsArmed("bare.site"));
  EXPECT_FALSE(FailPoints::Check("bare.site").ok());
  EXPECT_FALSE(FailPoints::Check("bare.site").ok());
}

TEST_F(FailPointTest, SleepSuffixDelaysInsteadOfFailing) {
  ASSERT_OK(FailPoints::Instance().ArmFromString("slow.site=every(2):sleep(1)"));
  // Fires on the 2nd and 4th checks only; the off checks cost no delay.
  EXPECT_EQ(FailPoints::Instance().SleepIfFired("slow.site"), 0);
  EXPECT_EQ(FailPoints::Instance().SleepIfFired("slow.site"), 1);
  EXPECT_EQ(FailPoints::Instance().SleepIfFired("slow.site"), 0);
  EXPECT_EQ(FailPoints::Instance().SleepIfFired("slow.site"), 1);
  EXPECT_EQ(FailPoints::Instance().CheckCount("slow.site"), 4);
  EXPECT_EQ(FailPoints::Instance().TriggerCount("slow.site"), 2);
}

TEST_F(FailPointTest, ArmFromEnvReadsVariable) {
  ::setenv("AGGIFY_FAILPOINTS_TEST", "env.site=times(1)", 1);
  ASSERT_OK(FailPoints::Instance().ArmFromEnv("AGGIFY_FAILPOINTS_TEST"));
  EXPECT_TRUE(FailPoints::Instance().IsArmed("env.site"));
  ASSERT_FALSE(FailPoints::Check("env.site").ok());
  EXPECT_OK(FailPoints::Check("env.site"));
  ::unsetenv("AGGIFY_FAILPOINTS_TEST");
  // Unset variable is a no-op, not an error.
  FailPoints::Instance().DisarmAll();
  ASSERT_OK(FailPoints::Instance().ArmFromEnv("AGGIFY_FAILPOINTS_TEST"));
  EXPECT_FALSE(FailPoints::AnyArmed());
}

TEST_F(FailPointTest, DisarmRestoresCleanBehavior) {
  ASSERT_OK(FailPoints::Instance().ArmFromString("t.a=always;t.b=always"));
  ASSERT_FALSE(FailPoints::Check("t.a").ok());
  FailPoints::Instance().Disarm("t.a");
  EXPECT_OK(FailPoints::Check("t.a"));
  EXPECT_TRUE(FailPoints::AnyArmed());  // t.b still armed
  FailPoints::Instance().DisarmAll();
  EXPECT_FALSE(FailPoints::AnyArmed());
  EXPECT_OK(FailPoints::Check("t.b"));
  // Re-arming resets counters.
  ASSERT_OK(FailPoints::Instance().ArmFromString("t.a=always"));
  EXPECT_EQ(FailPoints::Instance().CheckCount("t.a"), 0);
}

TEST_F(FailPointTest, ScopedFailPointDisarmsOnExit) {
  {
    ScopedFailPoint fp("t.scoped");
    EXPECT_TRUE(FailPoints::Instance().IsArmed("t.scoped"));
    ASSERT_FALSE(FailPoints::Check("t.scoped").ok());
  }
  EXPECT_FALSE(FailPoints::Instance().IsArmed("t.scoped"));
  EXPECT_OK(FailPoints::Check("t.scoped"));
}

// ---- End-to-end: injected faults surface through the engine ----

class FailPointEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(&db_);
    ASSERT_OK(session_->RunSql(
        "CREATE TABLE nums (v INT); "
        "INSERT INTO nums VALUES (3), (1), (2);"));
    db_.robustness().Reset();
  }
  void TearDown() override { FailPoints::Instance().DisarmAll(); }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(FailPointEngineTest, StorageInsertFaultSurfaces) {
  ScopedFailPoint fp("storage.table.insert");
  Status st = session_->RunSql("INSERT INTO nums VALUES (9);").status();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(FailPoints::IsInjected(st));
  FailPoints::Instance().Disarm("storage.table.insert");
  ASSERT_OK(session_->RunSql("INSERT INTO nums VALUES (9);").status());
}

TEST_F(FailPointEngineTest, EngineRetriesTransientScanFault) {
  // First scan check fails with a retryable code; the engine re-runs the
  // plan and the query succeeds without the caller seeing the fault.
  ASSERT_OK(FailPoints::Instance().ArmFromString(
      "exec.scan.next=times(1):unavailable"));
  ASSERT_OK_AND_ASSIGN(QueryResult r,
                       session_->Query("SELECT SUM(v) FROM nums"));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int_value(), 6);
  EXPECT_EQ(db_.robustness().transient_retries, 1);
}

TEST_F(FailPointEngineTest, EngineGivesUpOnPersistentFault) {
  ASSERT_OK(FailPoints::Instance().ArmFromString(
      "exec.scan.next=always:unavailable"));
  Status st = session_->Query("SELECT SUM(v) FROM nums").status();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsUnavailable());
  // Initial run + the full configured retry budget, all spent.
  EXPECT_EQ(db_.robustness().transient_retries,
            EngineOptions{}.retry.transient_retries);
}

TEST_F(FailPointEngineTest, NonRetryableFaultIsNotRetried) {
  ASSERT_OK(FailPoints::Instance().ArmFromString("exec.scan.next=always"));
  Status st = session_->Query("SELECT SUM(v) FROM nums").status();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(db_.robustness().transient_retries, 0);
}

}  // namespace
}  // namespace aggify
