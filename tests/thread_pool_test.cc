// ThreadPool unit tests, plus the worker-failure contract of the parallel
// aggregation path: a failpoint firing on a worker thread must surface as a
// clean injected Status at the query root, and a guarded rewrite must then
// restore loop-entry state and fall back to the interpreted loop.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "aggify/rewriter.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([&ran]() {
      ++ran;
      return Status::OK();
    }));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  // One worker, a slow head-of-line task, and a backlog: Shutdown must run
  // every queued task to completion before joining, not drop the queue.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  std::vector<std::future<Status>> futures;
  futures.push_back(pool.Submit([&ran]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ++ran;
    return Status::OK();
  }));
  for (int i = 0; i < 10; ++i) {
    futures.push_back(pool.Submit([&ran]() {
      ++ran;
      return Status::OK();
    }));
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 11);
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
}

TEST(ThreadPoolTest, SubmitAfterShutdownFailsCleanly) {
  ThreadPool pool(2);
  pool.Shutdown();
  auto f = pool.Submit([]() { return Status::OK(); });
  Status st = f.get();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
}

TEST(ThreadPoolTest, ErrorStatusPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit(
      []() { return Status::ExecutionError("worker-side failure"); });
  Status st = f.get();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("worker-side failure"), std::string::npos);
}

TEST(ThreadPoolTest, ThrownExceptionBecomesInternalStatus) {
  // A task that throws must not take down the worker thread (or the
  // process): the exception is captured into Status::Internal and the pool
  // keeps serving later tasks.
  ThreadPool pool(1);
  auto bad = pool.Submit(
      []() -> Status { throw std::runtime_error("boom in worker"); });
  Status st = bad.get();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.ToString().find("boom in worker"), std::string::npos);
  auto good = pool.Submit([]() { return Status::OK(); });
  EXPECT_TRUE(good.get().ok());
}

TEST(ThreadPoolTest, DestructorImpliesShutdown) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&ran]() {
        ++ran;
        return Status::OK();
      });
    }
  }
  EXPECT_EQ(ran.load(), 8);
}

class ParallelFailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(&db_, EngineOptions::WithDop(4));
    ASSERT_OK(session_->RunSql(R"(
      CREATE TABLE nums (v INT);
      INSERT INTO nums VALUES (3), (1), (4), (1), (5), (9), (2), (6);
      CREATE FUNCTION sum_all() RETURNS INT AS
      BEGIN
        DECLARE @x INT;
        DECLARE @s INT = 0;
        DECLARE c CURSOR FOR SELECT v FROM nums;
        OPEN c;
        FETCH NEXT FROM c INTO @x;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          SET @s = @s + @x;
          FETCH NEXT FROM c INTO @x;
        END
        CLOSE c; DEALLOCATE c;
        RETURN @s;
      END
    )"));
    db_.robustness().Reset();
  }
  void TearDown() override { FailPoints::Instance().DisarmAll(); }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(ParallelFailureTest, WorkerFailpointSurfacesAsInjectedStatus) {
  // Unguarded rewrite at dop=4: the failpoint fires on a worker thread
  // inside ParallelPartialAgg, and the error must come back through the
  // exchange as the same clean injected Status a serial plan produces.
  EngineOptions options = EngineOptions::WithDop(4);
  options.rewrite.guard_rewrites = false;
  Aggify aggify(&db_, options);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("sum_all"));
  ASSERT_EQ(report.loops_rewritten, 1);
  EXPECT_TRUE(report.rewrites[0].parallel_eligible);

  ScopedFailPoint fp("exec.agg.accumulate");
  Status st = session_->Call("sum_all", {}).status();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(FailPoints::IsInjected(st));
}

TEST_F(ParallelFailureTest, GuardedRewriteFallsBackAfterWorkerFault) {
  // Guarded rewrite: a worker-side fault fails the parallel query, the
  // guard restores loop-entry state, and the interpreted loop re-runs to
  // the correct answer. times(1) injects exactly one fault, so the fallback
  // loop's own scan passes.
  Aggify aggify(&db_, EngineOptions::WithDop(4));
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("sum_all"));
  ASSERT_EQ(report.loops_rewritten, 1);

  FailPointSpec spec;
  spec.policy = FailPointPolicy::kFirstK;
  spec.n = 1;
  ScopedFailPoint fp("exec.agg.accumulate", spec);
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("sum_all", {}));
  EXPECT_EQ(v.int_value(), 3 + 1 + 4 + 1 + 5 + 9 + 2 + 6);
  EXPECT_GE(db_.robustness().fallbacks_taken, 1);
  EXPECT_GE(db_.robustness().fallback_successes, 1);
}

}  // namespace
}  // namespace aggify
