// End-to-end smoke tests for the engine substrate: parse -> plan -> execute,
// plus the procedural interpreter and cursor runtime.
#include <gtest/gtest.h>

#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

class EngineSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(&db_);
    auto r = session_->RunSql(R"(
      CREATE TABLE t (a INT, b INT, s VARCHAR(16));
      INSERT INTO t VALUES (1, 10, 'one'), (2, 20, 'two'), (3, 30, 'three'),
                           (2, 25, 'deux');
    )");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(EngineSmokeTest, SimpleSelect) {
  ASSERT_OK_AND_ASSIGN(QueryResult r,
                       session_->Query("SELECT a, b FROM t WHERE a = 2"));
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].int_value(), 2);
}

TEST_F(EngineSmokeTest, AggregateQuery) {
  ASSERT_OK_AND_ASSIGN(
      QueryResult r,
      session_->Query("SELECT a, SUM(b) AS total FROM t GROUP BY a "
                      "ORDER BY a"));
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[1][0].int_value(), 2);
  EXPECT_EQ(r.rows[1][1].int_value(), 45);
}

TEST_F(EngineSmokeTest, JoinQuery) {
  ASSERT_OK(session_->RunSql(
      "CREATE TABLE u (a INT, label VARCHAR(8));"
      "INSERT INTO u VALUES (1, 'x'), (2, 'y');"));
  ASSERT_OK_AND_ASSIGN(
      QueryResult r,
      session_->Query(
          "SELECT t.b, u.label FROM t, u WHERE t.a = u.a ORDER BY t.b"));
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].string_value(), "x");
}

TEST_F(EngineSmokeTest, ScalarSubquery) {
  ASSERT_OK_AND_ASSIGN(
      QueryResult r,
      session_->Query("SELECT (SELECT MAX(b) FROM t) AS mx FROM t WHERE a = 1"));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int_value(), 30);
}

TEST_F(EngineSmokeTest, OrderByDescAndTop) {
  ASSERT_OK_AND_ASSIGN(QueryResult r,
                       session_->Query("SELECT TOP 2 b FROM t ORDER BY b DESC"));
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].int_value(), 30);
  EXPECT_EQ(r.rows[1][0].int_value(), 25);
}

TEST_F(EngineSmokeTest, RecursiveCte) {
  ASSERT_OK_AND_ASSIGN(QueryResult r, session_->Query(R"(
      WITH cte (i) AS (
        SELECT 0 AS i
        UNION ALL
        SELECT i + 1 FROM cte WHERE i < 9
      )
      SELECT COUNT(*) AS n, SUM(i) AS s FROM cte)"));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int_value(), 10);
  EXPECT_EQ(r.rows[0][1].int_value(), 45);
}

TEST_F(EngineSmokeTest, UdfWithCursorLoop) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION sum_b(@key INT) RETURNS INT AS
    BEGIN
      DECLARE @total INT = 0;
      DECLARE @b INT;
      DECLARE c CURSOR FOR SELECT b FROM t WHERE a = @key;
      OPEN c;
      FETCH NEXT FROM c INTO @b;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @total = @total + @b;
        FETCH NEXT FROM c INTO @b;
      END
      CLOSE c;
      DEALLOCATE c;
      RETURN @total;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("sum_b", {Value::Int(2)}));
  EXPECT_EQ(v.int_value(), 45);
  // Cursor accounting: one cursor opened, worktable written and read.
  EXPECT_EQ(db_.stats().cursors_opened, 1);
  EXPECT_GT(db_.stats().worktable_pages_written, 0);
  EXPECT_GT(db_.stats().cursor_fetches, 0);
}

TEST_F(EngineSmokeTest, UdfCalledFromQuery) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION double_it(@x INT) RETURNS INT AS
    BEGIN
      RETURN @x * 2;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(QueryResult r,
                       session_->Query("SELECT double_it(b) AS d FROM t "
                                       "WHERE a = 1"));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int_value(), 20);
}

TEST_F(EngineSmokeTest, AnonymousBlockWithTempTable) {
  ASSERT_OK_AND_ASSIGN(auto env, session_->RunBlock(R"(
    DECLARE @acc INT = 0;
    DECLARE @t TABLE (x INT);
    INSERT INTO @t VALUES (1), (2), (3);
    SET @acc = (SELECT SUM(x) FROM @t);
  )"));
  ASSERT_OK_AND_ASSIGN(Value v, env->Get("@acc"));
  EXPECT_EQ(v.int_value(), 6);
}

TEST_F(EngineSmokeTest, ForLoopInterpretation) {
  ASSERT_OK_AND_ASSIGN(auto env, session_->RunBlock(R"(
    DECLARE @sum INT = 0;
    FOR @i = 1 TO 100
    BEGIN
      SET @sum = @sum + @i;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(Value v, env->Get("@sum"));
  EXPECT_EQ(v.int_value(), 5050);
}

TEST_F(EngineSmokeTest, IndexSeekUsed) {
  ASSERT_OK(session_->RunSql("CREATE INDEX idx_a ON t (a);"));
  int64_t before = db_.stats().logical_reads;
  ASSERT_OK_AND_ASSIGN(QueryResult r,
                       session_->Query("SELECT b FROM t WHERE a = 2"));
  ASSERT_EQ(r.rows.size(), 2u);
  // Index probe + at most one data page, not a full scan per row.
  EXPECT_LE(db_.stats().logical_reads - before, 3);
}

}  // namespace
}  // namespace aggify
