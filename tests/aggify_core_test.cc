// Tests for the Aggify core: the paper's worked examples (§5 illustrations),
// the Eq. 5/6 rewrites, and semantic equivalence of original vs rewritten
// programs.
#include <gtest/gtest.h>

#include "aggify/rewriter.h"
#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

// The minCostSupp UDF of Figure 1, on a miniature PARTSUPP/SUPPLIER schema.
constexpr const char* kMinCostSuppSchema = R"(
  CREATE TABLE partsupp (ps_partkey INT, ps_suppkey INT,
                         ps_supplycost DECIMAL(15,2));
  CREATE TABLE supplier (s_suppkey INT, s_name CHAR(25));
  INSERT INTO partsupp VALUES (1, 10, 50.0), (1, 11, 30.0), (1, 12, 70.0),
                              (2, 10, 5.0), (2, 12, 8.0), (3, 11, 99.0);
  INSERT INTO supplier VALUES (10, 'supp_ten'), (11, 'supp_eleven'),
                              (12, 'supp_twelve');
)";

constexpr const char* kMinCostSuppUdf = R"(
  CREATE FUNCTION mincostsupp(@pkey INT, @lb INT = -1) RETURNS CHAR(25) AS
  BEGIN
    DECLARE @pcost DECIMAL(15,2);
    DECLARE @scname CHAR(25);
    DECLARE @mincost DECIMAL(15,2) = 100000;
    DECLARE @suppname CHAR(25);
    IF (@lb = -1)
      SET @lb = 0;
    DECLARE c CURSOR FOR
      SELECT ps_supplycost, s_name FROM partsupp, supplier
      WHERE ps_partkey = @pkey AND ps_suppkey = s_suppkey;
    OPEN c;
    FETCH NEXT FROM c INTO @pcost, @scname;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      IF (@pcost < @mincost AND @pcost >= @lb)
      BEGIN
        SET @mincost = @pcost;
        SET @suppname = @scname;
      END
      FETCH NEXT FROM c INTO @pcost, @scname;
    END
    CLOSE c;
    DEALLOCATE c;
    RETURN @suppname;
  END
)";

class AggifyCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(&db_);
    ASSERT_OK(session_->RunSql(kMinCostSuppSchema));
    ASSERT_OK(session_->RunSql(kMinCostSuppUdf));
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(AggifyCoreTest, PaperWorkedExampleSets) {
  // §5 illustrations for Figure 1's loop:
  //   V_F    = {minCost, lb, suppName}  (+ isInitialized)
  //   P_accum = {pCost, sName, minCost, lb}
  //   V_init = {minCost, lb}
  //   V_term = {suppName}
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report,
                       aggify.RewriteFunction("mincostsupp"));
  ASSERT_EQ(report.loops_found, 1);
  ASSERT_EQ(report.loops_rewritten, 1);
  const LoopSets& sets = report.rewrites[0].sets;

  EXPECT_EQ(sets.v_fetch, (std::vector<std::string>{"@pcost", "@scname"}));
  EXPECT_EQ(sets.v_fields,
            (std::vector<std::string>{"@lb", "@mincost", "@suppname"}));
  // Fetch vars first, then the rest (sorted).
  EXPECT_EQ(sets.p_accum, (std::vector<std::string>{"@pcost", "@scname",
                                                    "@lb", "@mincost"}));
  EXPECT_EQ(sets.v_init, (std::vector<std::string>{"@lb", "@mincost"}));
  EXPECT_EQ(sets.v_term, (std::vector<std::string>{"@suppname"}));
  EXPECT_FALSE(sets.ordered);
}

TEST_F(AggifyCoreTest, RewrittenFunctionIsEquivalent) {
  // Results before rewriting...
  std::vector<Value> before;
  for (int key : {1, 2, 3, 4}) {
    ASSERT_OK_AND_ASSIGN(Value v,
                         session_->Call("mincostsupp", {Value::Int(key)}));
    before.push_back(v);
  }
  EXPECT_EQ(before[0].string_value(), "supp_eleven");  // cost 30 for part 1
  EXPECT_EQ(before[1].string_value(), "supp_ten");     // cost 5 for part 2
  EXPECT_TRUE(before[3].is_null());                    // part 4 has no rows

  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report,
                       aggify.RewriteFunction("mincostsupp"));
  ASSERT_EQ(report.loops_rewritten, 1);

  // ...match results after rewriting, including the zero-row part.
  for (size_t i = 0; i < before.size(); ++i) {
    ASSERT_OK_AND_ASSIGN(
        Value v, session_->Call("mincostsupp",
                                {Value::Int(static_cast<int64_t>(i) + 1)}));
    EXPECT_TRUE(v.StructurallyEquals(before[i]))
        << "key " << i + 1 << ": " << v.ToString() << " vs "
        << before[i].ToString();
  }

  // The rewrite eliminated the cursor: no worktable traffic.
  db_.stats().Reset();
  ASSERT_OK(session_->Call("mincostsupp", {Value::Int(1)}).status());
  EXPECT_EQ(db_.stats().cursors_opened, 0);
  EXPECT_EQ(db_.stats().worktable_pages_written, 0);
  EXPECT_EQ(db_.stats().cursor_fetches, 0);
}

TEST_F(AggifyCoreTest, DefaultArgumentPathStillWorks) {
  Aggify aggify(&db_);
  ASSERT_OK(aggify.RewriteFunction("mincostsupp").status());
  // Explicit lower bound above the minimum changes the winner.
  ASSERT_OK_AND_ASSIGN(
      Value v, session_->Call("mincostsupp", {Value::Int(1), Value::Int(40)}));
  EXPECT_EQ(v.string_value(), "supp_ten");  // 30 is below lb=40; 50 wins
}

TEST_F(AggifyCoreTest, CumulativeRoiExample) {
  // Figure 2's loop: cumulativeROI ∈ V_F and P_accum; monthlyROI ∈ V_fetch.
  ASSERT_OK(session_->RunSql(R"(
    CREATE TABLE monthly_investments (investor_id INT, start_date DATE,
                                      roi FLOAT);
    INSERT INTO monthly_investments VALUES
      (7, '2020-01-01', 0.10), (7, '2020-01-01', 0.20),
      (7, '2020-01-01', -0.05), (8, '2020-01-01', 0.01);
    CREATE FUNCTION cumulative_roi(@id INT, @from DATE) RETURNS FLOAT AS
    BEGIN
      DECLARE @cumulativeroi FLOAT = 1.0;
      DECLARE @monthlyroi FLOAT;
      DECLARE c CURSOR FOR
        SELECT roi FROM monthly_investments
        WHERE investor_id = @id AND start_date = @from;
      OPEN c;
      FETCH NEXT FROM c INTO @monthlyroi;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @cumulativeroi = @cumulativeroi * (@monthlyroi + 1);
        FETCH NEXT FROM c INTO @monthlyroi;
      END
      CLOSE c;
      DEALLOCATE c;
      SET @cumulativeroi = @cumulativeroi - 1;
      RETURN @cumulativeroi;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(
      Value original,
      session_->Call("cumulative_roi",
                     {Value::Int(7), Value::String("2020-01-01")}));

  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report,
                       aggify.RewriteFunction("cumulative_roi"));
  ASSERT_EQ(report.loops_rewritten, 1);
  const LoopSets& sets = report.rewrites[0].sets;
  EXPECT_EQ(sets.p_accum,
            (std::vector<std::string>{"@monthlyroi", "@cumulativeroi"}));
  EXPECT_EQ(sets.v_init, (std::vector<std::string>{"@cumulativeroi"}));
  EXPECT_EQ(sets.v_term, (std::vector<std::string>{"@cumulativeroi"}));

  ASSERT_OK_AND_ASSIGN(
      Value rewritten,
      session_->Call("cumulative_roi",
                     {Value::Int(7), Value::String("2020-01-01")}));
  EXPECT_NEAR(rewritten.AsDouble(), original.AsDouble(), 1e-12);
  EXPECT_NEAR(rewritten.AsDouble(), 1.1 * 1.2 * 0.95 - 1.0, 1e-12);
}

TEST_F(AggifyCoreTest, OrderByForcesStreamingAggregate) {
  // An order-sensitive loop: keeps the *last* supplier name in cursor order.
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION last_supp(@pkey INT) RETURNS CHAR(25) AS
    BEGIN
      DECLARE @name CHAR(25);
      DECLARE @last CHAR(25);
      DECLARE c CURSOR FOR
        SELECT s_name FROM partsupp, supplier
        WHERE ps_partkey = @pkey AND ps_suppkey = s_suppkey
        ORDER BY ps_supplycost DESC;
      OPEN c;
      FETCH NEXT FROM c INTO @name;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @last = @name;
        FETCH NEXT FROM c INTO @name;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @last;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(Value original,
                       session_->Call("last_supp", {Value::Int(1)}));
  EXPECT_EQ(original.string_value(), "supp_eleven");  // lowest cost last

  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("last_supp"));
  ASSERT_EQ(report.loops_rewritten, 1);
  EXPECT_TRUE(report.rewrites[0].sets.ordered);

  ASSERT_OK_AND_ASSIGN(Value rewritten,
                       session_->Call("last_supp", {Value::Int(1)}));
  EXPECT_EQ(rewritten.string_value(), "supp_eleven");
}

TEST_F(AggifyCoreTest, PersistentDmlIsRejected) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE TABLE audit_log (k INT);
    CREATE FUNCTION bad_loop(@pkey INT) RETURNS INT AS
    BEGIN
      DECLARE @cost DECIMAL(15,2);
      DECLARE @n INT = 0;
      DECLARE c CURSOR FOR SELECT ps_supplycost FROM partsupp
                           WHERE ps_partkey = @pkey;
      OPEN c;
      FETCH NEXT FROM c INTO @cost;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        INSERT INTO audit_log VALUES (1);
        SET @n = @n + 1;
        FETCH NEXT FROM c INTO @cost;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @n;
    END
  )"));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("bad_loop"));
  EXPECT_EQ(report.loops_found, 1);
  EXPECT_EQ(report.loops_rewritten, 0);
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(report.skipped[0].code, DiagCode::kPersistentInsert);
  EXPECT_NE(report.skipped[0].message.find("persistent"), std::string::npos);
}

TEST_F(AggifyCoreTest, TempTableDmlIsAccepted) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION collect_costs(@pkey INT) RETURNS FLOAT AS
    BEGIN
      DECLARE @cost DECIMAL(15,2);
      DECLARE @t TABLE (c FLOAT);
      DECLARE cur CURSOR FOR SELECT ps_supplycost FROM partsupp
                             WHERE ps_partkey = @pkey;
      OPEN cur;
      FETCH NEXT FROM cur INTO @cost;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        INSERT INTO @t VALUES (@cost);
        FETCH NEXT FROM cur INTO @cost;
      END
      CLOSE cur; DEALLOCATE cur;
      RETURN (SELECT SUM(c) FROM @t);
    END
  )"));
  ASSERT_OK_AND_ASSIGN(Value original,
                       session_->Call("collect_costs", {Value::Int(1)}));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report,
                       aggify.RewriteFunction("collect_costs"));
  EXPECT_EQ(report.loops_rewritten, 1);
  ASSERT_OK_AND_ASSIGN(Value rewritten,
                       session_->Call("collect_costs", {Value::Int(1)}));
  EXPECT_NEAR(rewritten.AsDouble(), original.AsDouble(), 1e-9);
  EXPECT_NEAR(rewritten.AsDouble(), 150.0, 1e-9);
}

TEST_F(AggifyCoreTest, BreakStopsAccumulation) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION sum_until(@pkey INT, @limit FLOAT) RETURNS FLOAT AS
    BEGIN
      DECLARE @cost DECIMAL(15,2);
      DECLARE @total FLOAT = 0.0;
      DECLARE c CURSOR FOR SELECT ps_supplycost FROM partsupp
                           WHERE ps_partkey = @pkey ORDER BY ps_supplycost;
      OPEN c;
      FETCH NEXT FROM c INTO @cost;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @total = @total + @cost;
        IF (@total > @limit)
          BREAK;
        FETCH NEXT FROM c INTO @cost;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @total;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(
      Value original,
      session_->Call("sum_until", {Value::Int(1), Value::Double(75.0)}));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report,
                       aggify.RewriteFunction("sum_until"));
  ASSERT_EQ(report.loops_rewritten, 1);
  ASSERT_OK_AND_ASSIGN(
      Value rewritten,
      session_->Call("sum_until", {Value::Int(1), Value::Double(75.0)}));
  EXPECT_NEAR(rewritten.AsDouble(), original.AsDouble(), 1e-9);
  EXPECT_NEAR(rewritten.AsDouble(), 80.0, 1e-9);  // 30 + 50 crosses 75
}

TEST_F(AggifyCoreTest, ForLoopConversion) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION triangle(@n INT) RETURNS INT AS
    BEGIN
      DECLARE @sum INT = 0;
      FOR @i = 1 TO @n
      BEGIN
        SET @sum = @sum + @i;
      END
      RETURN @sum;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(Value original,
                       session_->Call("triangle", {Value::Int(100)}));
  EXPECT_EQ(original.int_value(), 5050);

  EngineOptions options;
  options.rewrite.convert_for_loops = true;
  Aggify aggify(&db_, options);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("triangle"));
  EXPECT_EQ(report.loops_found, 1);
  EXPECT_EQ(report.loops_rewritten, 1);

  ASSERT_OK_AND_ASSIGN(Value rewritten,
                       session_->Call("triangle", {Value::Int(100)}));
  EXPECT_EQ(rewritten.int_value(), 5050);
}

TEST_F(AggifyCoreTest, NestedCursorLoops) {
  // Outer loop over parts; inner loop over that part's suppliers.
  ASSERT_OK(session_->RunSql(R"(
    CREATE TABLE parts (p_partkey INT);
    INSERT INTO parts VALUES (1), (2), (3);
    CREATE FUNCTION total_min_cost() RETURNS FLOAT AS
    BEGIN
      DECLARE @pk INT;
      DECLARE @total FLOAT = 0.0;
      DECLARE outer_c CURSOR FOR SELECT p_partkey FROM parts;
      OPEN outer_c;
      FETCH NEXT FROM outer_c INTO @pk;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        DECLARE @cost FLOAT;
        DECLARE @mincost FLOAT = 1000000.0;
        DECLARE inner_c CURSOR FOR SELECT ps_supplycost FROM partsupp
                                   WHERE ps_partkey = @pk;
        OPEN inner_c;
        FETCH NEXT FROM inner_c INTO @cost;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          IF (@cost < @mincost)
            SET @mincost = @cost;
          FETCH NEXT FROM inner_c INTO @cost;
        END
        CLOSE inner_c; DEALLOCATE inner_c;
        SET @total = @total + @mincost;
        FETCH NEXT FROM outer_c INTO @pk;
      END
      CLOSE outer_c; DEALLOCATE outer_c;
      RETURN @total;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(Value original, session_->Call("total_min_cost", {}));
  EXPECT_NEAR(original.AsDouble(), 30.0 + 5.0 + 99.0, 1e-9);

  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report,
                       aggify.RewriteFunction("total_min_cost"));
  EXPECT_EQ(report.loops_found, 2);
  EXPECT_EQ(report.loops_rewritten, 2);

  ASSERT_OK_AND_ASSIGN(Value rewritten, session_->Call("total_min_cost", {}));
  EXPECT_NEAR(rewritten.AsDouble(), original.AsDouble(), 1e-9);
}

TEST_F(AggifyCoreTest, GeneratedArtifactsLookRight) {
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report,
                       aggify.RewriteFunction("mincostsupp"));
  ASSERT_EQ(report.rewrites.size(), 1u);
  const LoopRewrite& r = report.rewrites[0];
  // The rewritten statement is an Eq. 5 aggregate-over-derived-table query.
  EXPECT_NE(r.rewritten_statement.find("SET @suppname ="), std::string::npos)
      << r.rewritten_statement;
  EXPECT_NE(r.rewritten_statement.find(r.aggregate_name), std::string::npos);
  EXPECT_NE(r.rewritten_statement.find("FROM (SELECT"), std::string::npos);
  // The aggregate source shows the Figure 4 template structure.
  EXPECT_NE(r.aggregate_source.find("Init()"), std::string::npos);
  EXPECT_NE(r.aggregate_source.find("Accumulate("), std::string::npos);
  EXPECT_NE(r.aggregate_source.find("Terminate()"), std::string::npos);
}

}  // namespace
}  // namespace aggify
