// Tests for the TPC-H generator: cardinalities, key integrity, value
// distributions the workload queries depend on, determinism, and the
// paper-specified indexes.
#include <gtest/gtest.h>

#include "procedural/session.h"
#include "test_util.h"
#include "tpch/cursor_workload.h"
#include "tpch/tpch_gen.h"

namespace aggify {
namespace {

class TpchGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    TpchConfig config;
    config.scale_factor = 0.002;
    ASSERT_OK(PopulateTpch(db_, config));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  int64_t Count(const std::string& table) {
    auto t = db_->catalog().GetTable(table);
    EXPECT_TRUE(t.ok());
    return t.ok() ? (*t)->num_rows() : -1;
  }

  static Database* db_;
};

Database* TpchGenTest::db_ = nullptr;

TEST_F(TpchGenTest, CardinalitiesScale) {
  TpchConfig config;
  config.scale_factor = 0.002;
  EXPECT_EQ(Count("region"), 5);
  EXPECT_EQ(Count("nation"), 25);
  EXPECT_EQ(Count("supplier"), config.num_suppliers());
  EXPECT_EQ(Count("part"), config.num_parts());
  EXPECT_EQ(Count("partsupp"), config.num_parts() * 4);
  EXPECT_EQ(Count("customer"), config.num_customers());
  EXPECT_EQ(Count("orders"), config.num_orders());
  // Lineitem: 1..7 lines per order.
  EXPECT_GE(Count("lineitem"), config.num_orders());
  EXPECT_LE(Count("lineitem"), config.num_orders() * 7);
}

TEST_F(TpchGenTest, ReferentialIntegrity) {
  Session session(db_);
  // Every partsupp supplier exists.
  ASSERT_OK_AND_ASSIGN(
      QueryResult orphans,
      session.Query("SELECT COUNT(*) FROM partsupp WHERE ps_suppkey NOT IN "
                    "(SELECT s_suppkey FROM supplier)"));
  EXPECT_EQ(orphans.rows[0][0].int_value(), 0);
  // Every order's customer exists.
  ASSERT_OK_AND_ASSIGN(
      QueryResult orders,
      session.Query("SELECT COUNT(*) FROM orders WHERE o_custkey NOT IN "
                    "(SELECT c_custkey FROM customer)"));
  EXPECT_EQ(orders.rows[0][0].int_value(), 0);
}

TEST_F(TpchGenTest, DistributionsTheWorkloadNeeds) {
  Session session(db_);
  // Q13 needs some (not all) comments to mention special requests.
  ASSERT_OK_AND_ASSIGN(
      QueryResult special,
      session.Query("SELECT COUNT(*) FROM orders "
                    "WHERE charindex('special', o_comment) > 0"));
  int64_t with_special = special.rows[0][0].int_value();
  EXPECT_GT(with_special, 0);
  EXPECT_LT(with_special, Count("orders"));

  // Q14 needs PROMO part types.
  ASSERT_OK_AND_ASSIGN(
      QueryResult promo,
      session.Query("SELECT COUNT(*) FROM part "
                    "WHERE charindex('PROMO', p_type) = 1"));
  EXPECT_GT(promo.rows[0][0].int_value(), 0);

  // Q21 needs late receipts.
  ASSERT_OK_AND_ASSIGN(
      QueryResult late,
      session.Query("SELECT COUNT(*) FROM lineitem "
                    "WHERE l_receiptdate > l_commitdate"));
  EXPECT_GT(late.rows[0][0].int_value(), 0);

  // Each part has exactly 4 suppliers.
  ASSERT_OK_AND_ASSIGN(
      QueryResult per_part,
      session.Query("SELECT MIN(c) AS lo, MAX(c) AS hi FROM "
                    "(SELECT ps_partkey, COUNT(*) AS c FROM partsupp "
                    " GROUP BY ps_partkey) q"));
  EXPECT_EQ(per_part.rows[0][0].int_value(), 4);
  EXPECT_EQ(per_part.rows[0][1].int_value(), 4);
}

TEST_F(TpchGenTest, PaperIndexesExist) {
  for (auto [table, column] :
       std::vector<std::pair<const char*, const char*>>{
           {"lineitem", "l_orderkey"},
           {"lineitem", "l_suppkey"},
           {"orders", "o_custkey"},
           {"partsupp", "ps_partkey"}}) {
    ASSERT_OK_AND_ASSIGN(Table * t, db_->catalog().GetTable(table));
    EXPECT_NE(t->FindIndex(column), nullptr) << table << "." << column;
  }
}

TEST(TpchGenDeterminismTest, SameSeedSameData) {
  TpchConfig config;
  config.scale_factor = 0.001;
  Database a;
  Database b;
  ASSERT_OK(PopulateTpch(&a, config));
  ASSERT_OK(PopulateTpch(&b, config));
  ASSERT_OK_AND_ASSIGN(Table * ta, a.catalog().GetTable("lineitem"));
  ASSERT_OK_AND_ASSIGN(Table * tb, b.catalog().GetTable("lineitem"));
  ASSERT_EQ(ta->num_rows(), tb->num_rows());
  for (int64_t i = 0; i < std::min<int64_t>(ta->num_rows(), 50); ++i) {
    EXPECT_TRUE(RowsEqual(ta->RowAt(i), tb->RowAt(i))) << "row " << i;
  }
}

TEST(TpchWorkloadDefsTest, AllSixQueriesRegisterAndParse) {
  Database db;
  TpchConfig config;
  config.scale_factor = 0.001;
  ASSERT_OK(PopulateTpch(&db, config));
  Session session(&db);
  ASSERT_OK(RegisterTpchCursorWorkload(&session));
  EXPECT_EQ(TpchCursorQueries().size(), 6u);
  for (const auto& q : TpchCursorQueries()) {
    SCOPED_TRACE(q.id);
    for (const auto& udf : q.udf_names) {
      EXPECT_TRUE(db.catalog().HasFunction(udf));
    }
    ASSERT_OK(ParseSelect(q.driver_sql).status());
  }
  EXPECT_FALSE(GetTpchCursorQuery("Q99").ok());
}

}  // namespace
}  // namespace aggify
