// Tests of morsel-driven parallel partial aggregation (§3.1 Merge across
// worker threads, Gather/ParallelPartialAgg plan shapes) and the LIKE
// operator.
#include <gtest/gtest.h>

#include "aggify/rewriter.h"
#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

class ParallelAggTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(&db_, EngineOptions::WithDop(4));
    serial_ = std::make_unique<Session>(&db_);
    ASSERT_OK(serial_->RunSql(R"(
      CREATE TABLE m (g INT, v INT);
      INSERT INTO m VALUES (1, 5), (1, 7), (1, NULL), (2, 3), (2, 4),
                           (2, 5), (2, 6), (3, 100);
    )"));
  }

  /// EXPLAIN through a given session's engine (no variables bound).
  std::string Plan(Session& session, const std::string& sql) {
    auto stmt = ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    if (!stmt.ok()) return "";
    ExecContext ctx = session.MakeContext();
    auto tree = session.engine().Explain(**stmt, ctx);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    return tree.ok() ? *tree : "";
  }

  Database db_;
  std::unique_ptr<Session> session_;  // degree_of_parallelism = 4
  std::unique_ptr<Session> serial_;   // degree_of_parallelism = 1
};

TEST_F(ParallelAggTest, PlanShapeGatherOverParallelPartialAgg) {
  // Merge-eligible builtin aggregation at dop=4 plans as an exchange:
  // Gather(dop=4) over ParallelPartialAgg. The serial engine keeps the
  // plain HashAggregate for the very same statement.
  const char* sql = "SELECT g, SUM(v) AS s FROM m GROUP BY g";
  std::string parallel = Plan(*session_, sql);
  EXPECT_NE(parallel.find("Gather(dop=4)"), std::string::npos) << parallel;
  EXPECT_NE(parallel.find("ParallelPartialAgg"), std::string::npos)
      << parallel;
  std::string serial = Plan(*serial_, sql);
  EXPECT_EQ(serial.find("Gather"), std::string::npos) << serial;
  EXPECT_NE(serial.find("HashAggregate"), std::string::npos) << serial;
}

TEST_F(ParallelAggTest, PerQueryOverrideControlsParallelism) {
  // A serial engine plans parallel under a per-query override, and vice
  // versa — without perturbing either engine's own configuration.
  ASSERT_OK_AND_ASSIGN(auto stmt,
                       ParseSelect("SELECT g, SUM(v) FROM m GROUP BY g"));
  ExecContext ctx = serial_->MakeContext();
  EngineOptions dop4 = EngineOptions::WithDop(4);
  ASSERT_OK_AND_ASSIGN(std::string plan,
                       serial_->engine().Explain(*stmt, ctx, &dop4));
  EXPECT_NE(plan.find("Gather(dop=4)"), std::string::npos) << plan;

  ExecContext pctx = session_->MakeContext();
  EngineOptions dop1;  // defaults: serial
  ASSERT_OK_AND_ASSIGN(std::string serial_plan,
                       session_->engine().Explain(*stmt, pctx, &dop1));
  EXPECT_EQ(serial_plan.find("Gather"), std::string::npos) << serial_plan;

  // Overridden execution must agree with the engine-default one.
  ASSERT_OK_AND_ASSIGN(QueryResult overridden,
                       serial_->engine().Execute(*stmt, ctx, &dop4));
  ASSERT_OK_AND_ASSIGN(QueryResult plain, serial_->engine().Execute(*stmt, ctx));
  ASSERT_EQ(overridden.rows.size(), plain.rows.size());
  for (size_t i = 0; i < plain.rows.size(); ++i) {
    EXPECT_TRUE(RowsEqual(overridden.rows[i], plain.rows[i]));
  }
}

TEST_F(ParallelAggTest, OrderEnforcedPlansStaySerial) {
  // An order-sensitive body keeps the Eq. 6 Sort + StreamAggregate; the
  // dop=4 engine must not slip an exchange into an order-enforced plan.
  ASSERT_OK(serial_->RunSql(R"(
    CREATE FUNCTION last_v() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @last INT;
      DECLARE c CURSOR FOR SELECT v FROM m WHERE v IS NOT NULL ORDER BY v;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @last = @x;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @last;
    END
  )"));
  Aggify aggify(&db_, EngineOptions::WithDop(4));
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("last_v"));
  ASSERT_EQ(report.loops_rewritten, 1);
  EXPECT_FALSE(report.rewrites[0].sort_elided);
  EXPECT_FALSE(report.rewrites[0].parallel_eligible);

  ASSERT_OK_AND_ASSIGN(auto stmt,
                       ParseSelect(report.rewrites[0].rewritten_query_sql));
  ExecContext ctx = session_->MakeContext();
  VariableEnv env;
  env.Declare("@last", Value::Null());
  ctx.set_vars(&env);
  ASSERT_OK_AND_ASSIGN(std::string plan,
                       session_->engine().Explain(*stmt, ctx));
  EXPECT_NE(plan.find("StreamAggregate"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Sort"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("Gather"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("ParallelPartialAgg"), std::string::npos) << plan;
}

TEST_F(ParallelAggTest, PartitionedEqualsSerialForAllBuiltins) {
  const char* sql =
      "SELECT g, COUNT(*) AS c, COUNT(v) AS cv, SUM(v) AS s, MIN(v) AS lo, "
      "MAX(v) AS hi, AVG(v) AS a FROM m GROUP BY g ORDER BY g";
  ASSERT_OK_AND_ASSIGN(QueryResult parallel, session_->Query(sql));
  ASSERT_OK_AND_ASSIGN(QueryResult serial, serial_->Query(sql));
  ASSERT_EQ(parallel.rows.size(), serial.rows.size());
  for (size_t i = 0; i < serial.rows.size(); ++i) {
    EXPECT_TRUE(RowsEqual(parallel.rows[i], serial.rows[i]))
        << RowToString(parallel.rows[i]) << " vs "
        << RowToString(serial.rows[i]);
  }
}

TEST_F(ParallelAggTest, ScalarAggregateOverEmptyInputStillOneRow) {
  ASSERT_OK_AND_ASSIGN(QueryResult r,
                       session_->Query("SELECT COUNT(*), SUM(v) FROM m "
                                       "WHERE g = 42"));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int_value(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(ParallelAggTest, ProvenMergeRunsPartitionedWithSerialResults) {
  // A sum + guarded-min body passes the decomposability proof, so the
  // synthesized aggregate carries a derived Merge and the planner may run it
  // partitioned. Results must match the serial session exactly (including
  // the NULL row in group 1, which no guarded-min ever fires on).
  ASSERT_OK(serial_->RunSql(R"(
    CREATE FUNCTION sum_min(@g INT) RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @s INT = 1000;
      DECLARE @mn INT;
      DECLARE c CURSOR FOR SELECT v FROM m WHERE g = @g;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @s = @s + @x;
        IF (@mn IS NULL OR @x < @mn)
          SET @mn = @x;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @s * 1000 + ISNULL(@mn, -1);
    END
  )"));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("sum_min"));
  ASSERT_EQ(report.loops_rewritten, 1);
  EXPECT_TRUE(report.rewrites[0].merge_supported);
  EXPECT_TRUE(report.rewrites[0].parallel_eligible);
  ASSERT_OK_AND_ASSIGN(auto agg, db_.catalog().GetAggregate(
                                     report.rewrites[0].aggregate_name));
  EXPECT_TRUE(agg->SupportsMerge());
  EXPECT_TRUE(agg->ParallelSafe());
  EXPECT_NE(report.rewrites[0].aggregate_source.find("Merge("),
            std::string::npos);

  for (int g : {1, 2, 3, 42}) {
    ASSERT_OK_AND_ASSIGN(Value parallel,
                         session_->Call("sum_min", {Value::Int(g)}));
    ASSERT_OK_AND_ASSIGN(Value serial,
                         serial_->Call("sum_min", {Value::Int(g)}));
    EXPECT_TRUE(parallel.StructurallyEquals(serial))
        << "g=" << g << ": parallel=" << parallel.ToString()
        << " serial=" << serial.ToString();
  }
  // Spot-check the actual values: group 2 sums 3+4+5+6 with min 3.
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("sum_min", {Value::Int(2)}));
  EXPECT_EQ(v.int_value(), (1000 + 18) * 1000 + 3);
}

TEST_F(ParallelAggTest, SynthesizedAggregatesStaySerial) {
  // A product fold is order-insensitive but fails the decomposability proof
  // (no safe inverse), so the aggregate does not SupportsMerge: the planner
  // must fall back to one partition, and results must still be correct under
  // the parallel session.
  ASSERT_OK(serial_->RunSql(R"(
    CREATE FUNCTION prod(@g INT) RETURNS FLOAT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @p FLOAT = 1.0;
      DECLARE c CURSOR FOR SELECT v FROM m WHERE g = @g AND v IS NOT NULL;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @p = @p * @x;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @p;
    END
  )"));
  Aggify aggify(&db_);
  ASSERT_OK(aggify.RewriteFunction("prod").status());
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("prod", {Value::Int(2)}));
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.0 * 4 * 5 * 6);
}

TEST(LikeTest, PatternSemantics) {
  Database db;
  Session session(&db);
  ASSERT_OK(session.RunSql(R"(
    CREATE TABLE words (w VARCHAR(32));
    INSERT INTO words VALUES ('promo pack'), ('PROMO'), ('prom'),
                             ('a promo b'), ('xx'), ('axb');
  )"));
  auto count = [&](const std::string& pred) -> int64_t {
    auto r = session.Query("SELECT COUNT(*) FROM words WHERE " + pred);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->rows[0][0].int_value() : -1;
  };
  EXPECT_EQ(count("w LIKE 'promo%'"), 1);    // case-sensitive prefix
  EXPECT_EQ(count("w LIKE '%promo%'"), 2);   // contains
  EXPECT_EQ(count("w LIKE 'a%b'"), 2);       // 'a promo b' and 'axb'
  EXPECT_EQ(count("w LIKE 'a_b'"), 1);       // single-char wildcard
  EXPECT_EQ(count("w LIKE '__'"), 1);        // exactly two chars
  EXPECT_EQ(count("w NOT LIKE '%promo%'"), 4);
  EXPECT_EQ(count("w LIKE 'prom'"), 1);      // exact match, no wildcards
  EXPECT_EQ(count("w LIKE '%'"), 6);         // matches everything
}

TEST(LikeTest, NullPropagates) {
  Database db;
  Session session(&db);
  ASSERT_OK(session.RunSql(
      "CREATE TABLE w2 (w VARCHAR(8)); INSERT INTO w2 VALUES (NULL), ('x');"));
  ASSERT_OK_AND_ASSIGN(QueryResult r,
                       session.Query("SELECT COUNT(*) FROM w2 "
                                     "WHERE w LIKE '%'"));
  EXPECT_EQ(r.rows[0][0].int_value(), 1);  // NULL LIKE anything is unknown
}

TEST(LikeTest, UsableInsideCursorLoopBodies) {
  Database db;
  Session session(&db);
  ASSERT_OK(session.RunSql(R"(
    CREATE TABLE msgs (txt VARCHAR(64));
    INSERT INTO msgs VALUES ('special requests here'), ('plain order'),
                            ('another special one'), ('ordinary');
    CREATE FUNCTION count_special() RETURNS INT AS
    BEGIN
      DECLARE @t VARCHAR(64);
      DECLARE @n INT = 0;
      DECLARE c CURSOR FOR SELECT txt FROM msgs;
      OPEN c;
      FETCH NEXT FROM c INTO @t;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        IF (@t LIKE '%special%')
          SET @n = @n + 1;
        FETCH NEXT FROM c INTO @t;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @n;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(Value before, session.Call("count_special", {}));
  EXPECT_EQ(before.int_value(), 2);
  Aggify aggify(&db);
  ASSERT_OK_AND_ASSIGN(AggifyReport report,
                       aggify.RewriteFunction("count_special"));
  EXPECT_EQ(report.loops_rewritten, 1);
  ASSERT_OK_AND_ASSIGN(Value after, session.Call("count_special", {}));
  EXPECT_EQ(after.int_value(), 2);
}

}  // namespace
}  // namespace aggify
