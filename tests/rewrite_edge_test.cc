// Edge cases of the Aggify rewrite: applicability refusals with reasons,
// multiple loops per function, idempotence, dead-declaration cleanup (§6.2),
// order preservation (§6.1), and plan-shape checks for Eq. 6.
#include <gtest/gtest.h>

#include "aggify/rewriter.h"
#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

class RewriteEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(&db_);
    ASSERT_OK(session_->RunSql(R"(
      CREATE TABLE nums (v INT, grp INT);
      INSERT INTO nums VALUES (3, 1), (1, 1), (2, 1), (9, 2), (7, 2);
    )"));
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(RewriteEdgeTest, DeadDeclarationsRemovedAfterRewrite) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION total() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @s INT = 0;
      DECLARE c CURSOR FOR SELECT v FROM nums;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @s = @s + @x;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @s;
    END
  )"));
  Aggify aggify(&db_);
  ASSERT_OK(aggify.RewriteFunction("total").status());
  ASSERT_OK_AND_ASSIGN(auto def, db_.catalog().GetFunction("total"));
  std::string text = def->ToString();
  // The fetch variable @x is dead after the rewrite (Figure 7's observation
  // about @pCost/@sName) and its declaration is gone; @s survives.
  EXPECT_EQ(text.find("DECLARE @x"), std::string::npos) << text;
  EXPECT_NE(text.find("@s"), std::string::npos);
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("total", {}));
  EXPECT_EQ(v.int_value(), 22);
}

TEST_F(RewriteEdgeTest, RewriteIsIdempotent) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION once() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @n INT = 0;
      DECLARE c CURSOR FOR SELECT v FROM nums;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @n = @n + 1;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @n;
    END
  )"));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport first, aggify.RewriteFunction("once"));
  EXPECT_EQ(first.loops_rewritten, 1);
  ASSERT_OK_AND_ASSIGN(AggifyReport second, aggify.RewriteFunction("once"));
  EXPECT_EQ(second.loops_found, 0);
  EXPECT_EQ(second.loops_rewritten, 0);
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("once", {}));
  EXPECT_EQ(v.int_value(), 5);
}

TEST_F(RewriteEdgeTest, TwoSequentialLoopsBothRewritten) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION two_loops() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @sum INT = 0;
      DECLARE @mx INT = -1000;
      DECLARE c1 CURSOR FOR SELECT v FROM nums WHERE grp = 1;
      OPEN c1;
      FETCH NEXT FROM c1 INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @sum = @sum + @x;
        FETCH NEXT FROM c1 INTO @x;
      END
      CLOSE c1; DEALLOCATE c1;
      DECLARE c2 CURSOR FOR SELECT v FROM nums WHERE grp = 2;
      OPEN c2;
      FETCH NEXT FROM c2 INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        IF (@x > @mx)
          SET @mx = @x;
        FETCH NEXT FROM c2 INTO @x;
      END
      CLOSE c2; DEALLOCATE c2;
      RETURN @sum * 100 + @mx;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(Value before, session_->Call("two_loops", {}));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("two_loops"));
  EXPECT_EQ(report.loops_found, 2);
  EXPECT_EQ(report.loops_rewritten, 2);
  ASSERT_OK_AND_ASSIGN(Value after, session_->Call("two_loops", {}));
  EXPECT_TRUE(before.StructurallyEquals(after));
  EXPECT_EQ(after.int_value(), 609);  // (3+1+2)*100 + 9
}

TEST_F(RewriteEdgeTest, ReturnInsideLoopIsSkippedWithReason) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION find_first(@t INT) RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE c CURSOR FOR SELECT v FROM nums;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        IF (@x = @t)
          RETURN @x;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN -1;
    END
  )"));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("find_first"));
  EXPECT_EQ(report.loops_rewritten, 0);
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(report.skipped[0].code, DiagCode::kReturnInLoop);
  EXPECT_EQ(report.skipped[0].severity, DiagSeverity::kWarning);
  EXPECT_NE(report.skipped[0].message.find("RETURN"), std::string::npos);
  EXPECT_EQ(report.skipped[0].loc, "find_first:c");
  // The function still works (untouched).
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("find_first", {Value::Int(2)}));
  EXPECT_EQ(v.int_value(), 2);
}

TEST_F(RewriteEdgeTest, FetchVarLiveAfterLoopIsSkipped) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION last_val() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE c CURSOR FOR SELECT v FROM nums;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @x;
    END
  )"));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("last_val"));
  EXPECT_EQ(report.loops_rewritten, 0);
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(report.skipped[0].code, DiagCode::kFetchVarLiveAfterLoop);
  EXPECT_NE(report.skipped[0].message.find("live after the loop"),
            std::string::npos);
}

TEST_F(RewriteEdgeTest, SelectStarCursorIsSkipped) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION star() RETURNS INT AS
    BEGIN
      DECLARE @a INT;
      DECLARE @b INT;
      DECLARE @n INT = 0;
      DECLARE c CURSOR FOR SELECT * FROM nums;
      OPEN c;
      FETCH NEXT FROM c INTO @a, @b;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @n = @n + 1;
        FETCH NEXT FROM c INTO @a, @b;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @n;
    END
  )"));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("star"));
  EXPECT_EQ(report.loops_rewritten, 0);
  EXPECT_EQ(report.skipped[0].code, DiagCode::kSelectStarCursor);
  EXPECT_NE(report.skipped[0].message.find("SELECT *"), std::string::npos);
}

TEST_F(RewriteEdgeTest, ConditionalFetchIsSkipped) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION weird() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @n INT = 0;
      DECLARE c CURSOR FOR SELECT v FROM nums;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @n = @n + 1;
        IF (@n < 3)
          FETCH NEXT FROM c INTO @x;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @n;
    END
  )"));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("weird"));
  EXPECT_EQ(report.loops_rewritten, 0);
  EXPECT_EQ(report.skipped[0].code, DiagCode::kNonCanonicalFetch);
  EXPECT_NE(report.skipped[0].message.find("FETCH"), std::string::npos);
}

TEST_F(RewriteEdgeTest, OrderPreservationAscVsDesc) {
  // "Last value wins" loops distinguish cursor order; both directions must
  // survive the rewrite (Eq. 6 streaming).
  for (const char* dir : {"", " DESC"}) {
    std::string fn = std::string("last_in_order") + (dir[0] ? "_desc" : "_asc");
    ASSERT_OK(session_->RunSql(
        "CREATE FUNCTION " + fn + R"(() RETURNS INT AS
        BEGIN
          DECLARE @x INT;
          DECLARE @last INT;
          DECLARE c CURSOR FOR SELECT v FROM nums ORDER BY v)" + dir + R"(;
          OPEN c;
          FETCH NEXT FROM c INTO @x;
          WHILE @@FETCH_STATUS = 0
          BEGIN
            SET @last = @x;
            FETCH NEXT FROM c INTO @x;
          END
          CLOSE c; DEALLOCATE c;
          RETURN @last;
        END)").status());
    ASSERT_OK_AND_ASSIGN(Value before, session_->Call(fn, {}));
    Aggify aggify(&db_);
    ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction(fn));
    ASSERT_EQ(report.loops_rewritten, 1);
    ASSERT_OK_AND_ASSIGN(Value after, session_->Call(fn, {}));
    EXPECT_TRUE(before.StructurallyEquals(after)) << fn;
  }
  ASSERT_OK_AND_ASSIGN(Value asc, session_->Call("last_in_order_asc", {}));
  ASSERT_OK_AND_ASSIGN(Value desc, session_->Call("last_in_order_desc", {}));
  EXPECT_EQ(asc.int_value(), 9);
  EXPECT_EQ(desc.int_value(), 1);
}

// Finds the rewritten Eq. 5/6 statement inside a rewritten function body.
const MultiAssignStmt* FindRewrittenAssign(const FunctionDef& def) {
  const MultiAssignStmt* ma = nullptr;
  for (const auto& s : def.body->statements) {
    if (s->kind == StmtKind::kMultiAssign) {
      ma = static_cast<const MultiAssignStmt*>(s.get());
    } else if (s->kind == StmtKind::kGuardedRewrite) {
      ma = static_cast<const GuardedRewriteStmt*>(s.get())->rewritten.get();
    }
  }
  return ma;
}

TEST_F(RewriteEdgeTest, OrderedRewritePlansAStreamAggregate) {
  // "Last value wins" is genuinely order-sensitive: the classifier cannot
  // discharge Eq. 6's obligation and the forced Sort + StreamAggregate stay.
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION ordered_last() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @last INT;
      DECLARE c CURSOR FOR SELECT v FROM nums ORDER BY v;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @last = @x;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @last;
    END
  )"));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report,
                       aggify.RewriteFunction("ordered_last"));
  ASSERT_EQ(report.loops_rewritten, 1);
  EXPECT_FALSE(report.rewrites[0].sort_elided);
  EXPECT_FALSE(report.rewrites[0].classification.order_insensitive);
  bool order_enforced_note = false;
  for (const auto& n : report.notes) {
    if (n.code == DiagCode::kOrderEnforced) order_enforced_note = true;
  }
  EXPECT_TRUE(order_enforced_note);

  // Plan the rewritten query text and require the Eq. 6 operators.
  ASSERT_OK_AND_ASSIGN(auto def, db_.catalog().GetFunction("ordered_last"));
  const MultiAssignStmt* ma = FindRewrittenAssign(*def);
  ASSERT_NE(ma, nullptr);
  ExecContext ctx = session_->MakeContext();
  VariableEnv env;
  env.Declare("@last", Value::Null());
  ctx.set_vars(&env);
  ASSERT_OK_AND_ASSIGN(std::string plan,
                       session_->engine().Explain(*ma->query, ctx));
  EXPECT_NE(plan.find("StreamAggregate"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Sort"), std::string::npos) << plan;
}

TEST_F(RewriteEdgeTest, OrderInsensitiveBodyElidesEq6Sort) {
  // A sum fold over an ORDER BY cursor: the classifier proves the order
  // irrelevant, so the rewrite drops the derived ORDER BY and the planner is
  // free to hash-aggregate — no Sort, no StreamAggregate.
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION ordered_sum() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @s INT = 0;
      DECLARE c CURSOR FOR SELECT v FROM nums ORDER BY v;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @s = @s + @x;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @s;
    END
  )"));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report,
                       aggify.RewriteFunction("ordered_sum"));
  ASSERT_EQ(report.loops_rewritten, 1);
  EXPECT_TRUE(report.rewrites[0].sets.ordered);
  EXPECT_TRUE(report.rewrites[0].classification.order_insensitive);
  EXPECT_TRUE(report.rewrites[0].sort_elided);
  EXPECT_TRUE(report.rewrites[0].merge_supported);
  bool elided_note = false;
  for (const auto& n : report.notes) {
    if (n.code == DiagCode::kSortElided) elided_note = true;
  }
  EXPECT_TRUE(elided_note);

  ASSERT_OK_AND_ASSIGN(auto def, db_.catalog().GetFunction("ordered_sum"));
  const MultiAssignStmt* ma = FindRewrittenAssign(*def);
  ASSERT_NE(ma, nullptr);
  ExecContext ctx = session_->MakeContext();
  VariableEnv env;
  env.Declare("@s", Value::Int(0));
  ctx.set_vars(&env);
  ASSERT_OK_AND_ASSIGN(std::string plan,
                       session_->engine().Explain(*ma->query, ctx));
  EXPECT_NE(plan.find("HashAggregate"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("Sort"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("StreamAggregate"), std::string::npos) << plan;

  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("ordered_sum", {}));
  EXPECT_EQ(v.int_value(), 22);
}

TEST_F(RewriteEdgeTest, SortElisionCanBeDisabled) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION ordered_sum2() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @s INT = 0;
      DECLARE c CURSOR FOR SELECT v FROM nums ORDER BY v;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @s = @s + @x;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @s;
    END
  )"));
  EngineOptions opts;
  opts.rewrite.elide_order_insensitive_sort = false;
  Aggify aggify(&db_, opts);
  ASSERT_OK_AND_ASSIGN(AggifyReport report,
                       aggify.RewriteFunction("ordered_sum2"));
  ASSERT_EQ(report.loops_rewritten, 1);
  EXPECT_FALSE(report.rewrites[0].sort_elided);
  ASSERT_OK_AND_ASSIGN(auto def, db_.catalog().GetFunction("ordered_sum2"));
  const MultiAssignStmt* ma = FindRewrittenAssign(*def);
  ASSERT_NE(ma, nullptr);
  EXPECT_TRUE(ma->query->force_stream_aggregate);
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("ordered_sum2", {}));
  EXPECT_EQ(v.int_value(), 22);
}

TEST_F(RewriteEdgeTest, ImpureUdfCallInBodyIsRejected) {
  // Satellite regression: a loop body calling a UDF that performs persistent
  // DML must be rejected even though the body itself contains no DML.
  ASSERT_OK(session_->RunSql(R"(
    CREATE TABLE audit (v INT);
    CREATE FUNCTION log_it(@v INT) RETURNS INT AS
    BEGIN
      INSERT INTO audit VALUES (@v);
      RETURN @v;
    END
  )"));
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION audited_sum() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @s INT = 0;
      DECLARE c CURSOR FOR SELECT v FROM nums;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @s = @s + log_it(@x);
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @s;
    END
  )"));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report,
                       aggify.RewriteFunction("audited_sum"));
  EXPECT_EQ(report.loops_rewritten, 0);
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(report.skipped[0].code, DiagCode::kImpureUdfCall);
  EXPECT_EQ(report.skipped[0].severity, DiagSeverity::kError);
}

TEST_F(RewriteEdgeTest, TransitivelyImpureUdfCallIsRejected) {
  // The purity analysis is interprocedural: impurity two calls away still
  // blocks the rewrite.
  ASSERT_OK(session_->RunSql(R"(
    CREATE TABLE audit2 (v INT);
    CREATE FUNCTION deep_log(@v INT) RETURNS INT AS
    BEGIN
      INSERT INTO audit2 VALUES (@v);
      RETURN @v;
    END
  )"));
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION wrapper(@v INT) RETURNS INT AS
    BEGIN
      RETURN deep_log(@v) + 0;
    END
  )"));
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION deep_sum() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @s INT = 0;
      DECLARE c CURSOR FOR SELECT v FROM nums;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @s = @s + wrapper(@x);
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @s;
    END
  )"));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("deep_sum"));
  EXPECT_EQ(report.loops_rewritten, 0);
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(report.skipped[0].code, DiagCode::kImpureUdfCall);
}

TEST_F(RewriteEdgeTest, ProvenPureUdfCallIsAccepted) {
  // A UDF proven pure by the interprocedural analysis does not block the
  // rewrite, and because the call is row-pure the sum fold still proves
  // order-insensitive (sort elided on an ordered cursor).
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION twice(@v INT) RETURNS INT AS
    BEGIN
      RETURN @v * 2;
    END
  )"));
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION doubled_sum() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @s INT = 0;
      DECLARE c CURSOR FOR SELECT v FROM nums ORDER BY v;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @s = @s + twice(@x);
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @s;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(Value before, session_->Call("doubled_sum", {}));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report,
                       aggify.RewriteFunction("doubled_sum"));
  ASSERT_EQ(report.loops_rewritten, 1);
  EXPECT_TRUE(report.rewrites[0].sort_elided);
  ASSERT_OK_AND_ASSIGN(Value after, session_->Call("doubled_sum", {}));
  EXPECT_TRUE(before.StructurallyEquals(after));
  EXPECT_EQ(after.int_value(), 44);
}

TEST_F(RewriteEdgeTest, GroupWithOnlyFilteredRowsKeepsPriorValues) {
  // Regression for the v_extra_init soundness extension: the loop runs but
  // never assigns @found; the original keeps 0 and so must the rewrite.
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION flag(@needle INT) RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @found INT = 0;
      DECLARE c CURSOR FOR SELECT v FROM nums;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        IF (@x = @needle)
          SET @found = @x * 10;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @found;
    END
  )"));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("flag"));
  ASSERT_EQ(report.loops_rewritten, 1);
  EXPECT_FALSE(report.rewrites[0].sets.v_extra_init.empty());
  ASSERT_OK_AND_ASSIGN(Value miss, session_->Call("flag", {Value::Int(555)}));
  EXPECT_EQ(miss.int_value(), 0);  // never assigned: pre-loop value survives
  ASSERT_OK_AND_ASSIGN(Value hit, session_->Call("flag", {Value::Int(9)}));
  EXPECT_EQ(hit.int_value(), 90);
}

TEST_F(RewriteEdgeTest, TryCatchInsideLoopBodyIsSupported) {
  // §4.2: "Exception handling code (TRY...CATCH) can also be supported."
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION safe_inverse_sum() RETURNS FLOAT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @s FLOAT = 0.0;
      DECLARE @errors INT = 0;
      DECLARE c CURSOR FOR SELECT v - 2 FROM nums;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        BEGIN TRY
          SET @s = @s + 10.0 / @x;
        END TRY
        BEGIN CATCH
          SET @errors = @errors + 1;
        END CATCH
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @s * 1000 + @errors;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(Value before, session_->Call("safe_inverse_sum", {}));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report,
                       aggify.RewriteFunction("safe_inverse_sum"));
  ASSERT_EQ(report.loops_rewritten, 1);
  ASSERT_OK_AND_ASSIGN(Value after, session_->Call("safe_inverse_sum", {}));
  EXPECT_TRUE(before.StructurallyEquals(after))
      << before.ToString() << " vs " << after.ToString();
  // One row has v = 2 -> division by zero caught.
  EXPECT_EQ(static_cast<int64_t>(after.AsDouble()) % 1000 >= 1, true);
}

TEST_F(RewriteEdgeTest, NestedNonCursorWhileInsideLoopBody) {
  // §4.2's grammar includes nested (non-cursor) while loops in Δ.
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION digit_sum_total() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @total INT = 0;
      DECLARE c CURSOR FOR SELECT v * 37 FROM nums;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        DECLARE @n INT = @x;
        WHILE @n > 0
        BEGIN
          SET @total = @total + @n % 10;
          SET @n = @n / 10;
        END
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @total;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(Value before, session_->Call("digit_sum_total", {}));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report,
                       aggify.RewriteFunction("digit_sum_total"));
  ASSERT_EQ(report.loops_rewritten, 1);
  ASSERT_OK_AND_ASSIGN(Value after, session_->Call("digit_sum_total", {}));
  EXPECT_TRUE(before.StructurallyEquals(after));
}

TEST_F(RewriteEdgeTest, QueryInsideLoopBodyIsSupported) {
  // §4.2: "SQL SELECT queries inside the loop are fully supported."
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION rank_sum() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @r INT = 0;
      DECLARE c CURSOR FOR SELECT v FROM nums WHERE grp = 1;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        DECLARE @below INT;
        SET @below = (SELECT COUNT(*) FROM nums WHERE v < @x);
        SET @r = @r + @below;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @r;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(Value before, session_->Call("rank_sum", {}));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("rank_sum"));
  ASSERT_EQ(report.loops_rewritten, 1);
  ASSERT_OK_AND_ASSIGN(Value after, session_->Call("rank_sum", {}));
  EXPECT_TRUE(before.StructurallyEquals(after));
  EXPECT_EQ(after.int_value(), 2 + 0 + 1);  // ranks of 3,1,2 among all
}

TEST_F(RewriteEdgeTest, BlockRewriteKeepsObservableDeclarations) {
  // Client programs keep all top-level declarations (the environment is the
  // program's output), unlike UDF rewrites which prune dead ones.
  ASSERT_OK_AND_ASSIGN(StmtPtr parsed, ParseStatements(R"(
    DECLARE @x INT;
    DECLARE @n INT = 0;
    DECLARE c CURSOR FOR SELECT v FROM nums;
    OPEN c;
    FETCH NEXT FROM c INTO @x;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      SET @n = @n + 1;
      FETCH NEXT FROM c INTO @x;
    END
    CLOSE c; DEALLOCATE c;
  )"));
  auto* block = static_cast<BlockStmt*>(parsed.get());
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteBlock(block));
  EXPECT_EQ(report.loops_rewritten, 1);
  std::string text = block->ToString(0);
  EXPECT_NE(text.find("DECLARE @x"), std::string::npos) << text;
}

}  // namespace
}  // namespace aggify
