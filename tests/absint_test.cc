// Unit + property tests for the abstract-interpretation layer (absint.h):
// lattice algebra (join commutativity / monotonicity / idempotence),
// widening termination on a randomized CFG sweep, abstract evaluation
// against the concrete operator kernel, and the DataflowResult lifetime
// guard.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "analysis/absint.h"
#include "analysis/dataflow.h"
#include "parser/parser.h"
#include "test_util.h"

namespace aggify {
namespace {

const BlockStmt& AsBlock(const StmtPtr& s) {
  return static_cast<const BlockStmt&>(*s);
}

AbsValue EvalText(const std::string& text, const AbsEnv& env = {}) {
  auto e = ParseExpression(text);
  EXPECT_TRUE(e.ok()) << text;
  return EvalAbstract(**e, env);
}

// ---- lattice algebra ----

/// Deterministic sampler over every lattice shape: bottom, top, const
/// (NULL / bool / int / string), and intervals incl. half-open rays.
AbsValue RandomAbsValue(std::mt19937* rng) {
  std::uniform_int_distribution<int> shape(0, 7);
  std::uniform_int_distribution<int64_t> small(-20, 20);
  switch (shape(*rng)) {
    case 0: return AbsValue::Bottom();
    case 1: return AbsValue::Top();
    case 2: return AbsValue::Const(Value::Null());
    case 3: return AbsValue::Const(Value::Bool(small(*rng) > 0));
    case 4: return AbsValue::Const(Value::Int(small(*rng)));
    case 5: return AbsValue::Const(Value::String("s"));
    case 6: {
      int64_t a = small(*rng), b = small(*rng);
      return AbsValue::Interval(true, std::min(a, b), true, std::max(a, b));
    }
    default: {
      int64_t a = small(*rng);
      return shape(*rng) % 2 == 0 ? AbsValue::Interval(true, a, false, 0)
                                  : AbsValue::Interval(false, 0, true, a);
    }
  }
}

TEST(AbsLatticeProperty, JoinIsCommutativeIdempotentAndUpperBound) {
  std::mt19937 rng(20260806);
  for (int trial = 0; trial < 2000; ++trial) {
    AbsValue a = RandomAbsValue(&rng);
    AbsValue b = RandomAbsValue(&rng);
    AbsValue ab = Join(a, b);
    EXPECT_EQ(ab, Join(b, a)) << a.ToString() << " vs " << b.ToString();
    EXPECT_EQ(Join(a, a), a) << a.ToString();
    // Join is an upper bound of both operands.
    EXPECT_TRUE(AbsLeq(a, ab)) << a.ToString() << " !<= " << ab.ToString();
    EXPECT_TRUE(AbsLeq(b, ab)) << b.ToString() << " !<= " << ab.ToString();
  }
}

TEST(AbsLatticeProperty, JoinIsMonotone) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 2000; ++trial) {
    AbsValue a = RandomAbsValue(&rng);
    AbsValue b = RandomAbsValue(&rng);
    AbsValue c = RandomAbsValue(&rng);
    // a <= b  ==>  a v c <= b v c.
    if (AbsLeq(a, b)) {
      EXPECT_TRUE(AbsLeq(Join(a, c), Join(b, c)))
          << a.ToString() << " <= " << b.ToString() << " but join with "
          << c.ToString() << " is not monotone";
    }
  }
}

TEST(AbsLatticeProperty, WidenIsAnUpperBoundOfJoin) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    AbsValue prev = RandomAbsValue(&rng);
    AbsValue next = RandomAbsValue(&rng);
    AbsValue w = Widen(prev, next);
    EXPECT_TRUE(AbsLeq(Join(prev, next), w))
        << "widen(" << prev.ToString() << ", " << next.ToString()
        << ") = " << w.ToString() << " not above the join";
  }
}

TEST(AbsLatticeProperty, WideningChainsStabilize) {
  // Any ascending chain driven through Widen must stabilize after a small
  // constant number of strict increases (bounded lattice height once moved
  // bounds jump to infinity): bottom < const < {half-open rays} < top.
  std::mt19937 rng(123);
  for (int trial = 0; trial < 500; ++trial) {
    AbsValue w = AbsValue::Bottom();
    int strict_increases = 0;
    for (int step = 0; step < 64; ++step) {
      AbsValue next = Join(w, RandomAbsValue(&rng));
      AbsValue widened = Widen(w, next);
      if (widened != w) {
        ++strict_increases;
        EXPECT_TRUE(AbsLeq(w, widened));
        w = widened;
      }
    }
    EXPECT_LE(strict_increases, 5) << "chain did not stabilize";
  }
}

// ---- abstract evaluation vs the concrete kernel ----

TEST(AbsEvalTest, FoldsConstantArithmetic) {
  AbsValue v = EvalText("1 + 2 * 3");
  ASSERT_TRUE(v.IsConst());
  EXPECT_EQ(v.constant.int_value(), 7);
}

TEST(AbsEvalTest, PropagatesEnvironmentConstants) {
  AbsEnv env;
  env["@x"] = AbsValue::Const(Value::Int(4));
  AbsValue v = EvalText("@x + 1", env);
  ASSERT_TRUE(v.IsConst());
  EXPECT_EQ(v.constant.int_value(), 5);
}

TEST(AbsEvalTest, OperatorErrorsAbstractToTopNeverFold) {
  // Division by zero errors concretely; the abstract result must be Top so
  // the simplifier never folds (and so never swallows) the runtime error.
  EXPECT_TRUE(EvalText("1 / 0").IsTop());
  EXPECT_TRUE(EvalText("1 % 0").IsTop());
}

TEST(AbsEvalTest, UnknownVariablesAreTop) {
  EXPECT_TRUE(EvalText("@unknown + 1").IsTop());
}

TEST(AbsEvalTest, IntervalComparisonDecides) {
  AbsEnv env;
  env["@i"] = AbsValue::Interval(true, 1, true, 10);
  AbsValue v = EvalText("@i > 0", env);
  ASSERT_TRUE(v.IsConst());
  EXPECT_TRUE(v.constant.bool_value());
  // Overlapping ranges stay undecided.
  env["@j"] = AbsValue::Interval(true, 0, true, 5);
  EXPECT_FALSE(EvalText("@i > @j", env).IsConst());
}

TEST(AbsEvalTest, IsNullDecidesOverIntervals) {
  AbsEnv env;
  env["@i"] = AbsValue::Interval(true, 1, true, 10);  // provably non-NULL
  AbsValue v = EvalText("@i IS NULL", env);
  ASSERT_TRUE(v.IsConst());
  EXPECT_FALSE(v.constant.bool_value());
}

TEST(AbsEvalTest, DeterministicBuiltinsFoldOnConstants) {
  AbsValue v = EvalText("abs(-3)");
  ASSERT_TRUE(v.IsConst());
  EXPECT_EQ(v.constant.int_value(), 3);
}

TEST(AbsTruthTest, NullConditionIsFalse) {
  AbsEnv env;
  env["@x"] = AbsValue::Const(Value::Null());
  EXPECT_EQ(AbstractTruth(**ParseExpression("@x"), env), AbsTruth::kFalse);
  EXPECT_EQ(AbstractTruth(**ParseExpression("1 = 1"), env), AbsTruth::kTrue);
  EXPECT_EQ(AbstractTruth(**ParseExpression("@y"), env), AbsTruth::kUnknown);
}

// ---- fixpoint over real CFGs ----

TEST(AbsInterpTest, LoopCounterWidensButExitStaysReachable) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, ParseStatements(R"(
    DECLARE @i INT = 0;
    DECLARE @s INT = 0;
    WHILE @i < 10
    BEGIN
      SET @s = @s + @i;
      SET @i = @i + 1;
    END
    SET @s = @s + 1;
  )"));
  ASSERT_OK_AND_ASSIGN(auto cfg, Cfg::Build(AsBlock(prog), {}));
  AbstractInterpretation ai = AbstractInterpretation::Run(*cfg);
  EXPECT_TRUE(ai.Reachable(cfg->exit()));
  EXPECT_LT(ai.iterations(), 64 * cfg->size() + 1024);
}

/// Randomized structured-program generator: nested WHILE / IF with counter
/// increments, exercising join points and widening at every loop head.
std::string RandomProgram(std::mt19937* rng, int depth = 0) {
  std::uniform_int_distribution<int> pick(0, 5);
  std::uniform_int_distribution<int> lit(0, 9);
  std::string out;
  int stmts = 1 + pick(*rng) % 3;
  for (int i = 0; i < stmts; ++i) {
    switch (depth >= 3 ? pick(*rng) % 2 : pick(*rng)) {
      case 0:
        out += "SET @a = @a + " + std::to_string(lit(*rng)) + ";\n";
        break;
      case 1:
        out += "SET @b = @a * " + std::to_string(lit(*rng)) + ";\n";
        break;
      case 2:
      case 3:
        out += "IF @a < " + std::to_string(lit(*rng)) + "\nBEGIN\n" +
               RandomProgram(rng, depth + 1) + "END\nELSE\nBEGIN\n" +
               RandomProgram(rng, depth + 1) + "END\n";
        break;
      default:
        out += "WHILE @b < " + std::to_string(lit(*rng)) + "\nBEGIN\n" +
               RandomProgram(rng, depth + 1) + "SET @b = @b + 1;\nEND\n";
        break;
    }
  }
  return out;
}

TEST(AbsInterpProperty, WideningTerminatesOnRandomizedCfgSweep) {
  std::mt19937 rng(987654);
  for (int trial = 0; trial < 100; ++trial) {
    std::string text = "DECLARE @a INT = 0;\nDECLARE @b INT = 0;\n" +
                       RandomProgram(&rng);
    ASSERT_OK_AND_ASSIGN(StmtPtr prog, ParseStatements(text));
    ASSERT_OK_AND_ASSIGN(auto cfg, Cfg::Build(AsBlock(prog), {}));
    AbstractInterpretation ai = AbstractInterpretation::Run(*cfg);
    // Strictly below the defensive cap: the worklist reached a true
    // fixpoint instead of being cut off.
    EXPECT_LT(ai.iterations(), 64 * cfg->size() + 1024) << text;
    EXPECT_TRUE(ai.Reachable(cfg->exit())) << text;
  }
}

// ---- DataflowResult lifetime guard (debug builds) ----

TEST(DataflowLifetimeGuardTest, UseAfterCfgDestructionAsserts) {
#ifdef NDEBUG
  GTEST_SKIP() << "lifetime guard is assert-based; release build";
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, ParseStatements(R"(
    DECLARE @a INT = 1;
    SET @a = @a + 1;
  )"));
  DataflowResult dangling;
  {
    ASSERT_OK_AND_ASSIGN(auto cfg, Cfg::Build(AsBlock(prog), {}));
    dangling = DataflowResult::Run(*cfg);
    // In-scope use is fine.
    (void)dangling.cfg();
  }
  // The Cfg is gone: any cfg()-dependent accessor must trip the guard.
  EXPECT_DEATH((void)dangling.cfg(),
               "DataflowResult used after its Cfg was destroyed");
#endif
}

}  // namespace
}  // namespace aggify
