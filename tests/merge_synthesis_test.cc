// Tests of the homomorphism-calculus Merge synthesis pass
// (analysis/merge_synthesis.h), the shuffle-sweep certificate
// (aggify/merge_certificate.h), and the end-to-end rewriter integration:
// loops beyond the fold classifier's algebra become parallel-eligible with a
// synthesized, certified Merge, and run bit-identically at DOP 4 and DOP 1.
#include <gtest/gtest.h>

#include "aggify/merge_certificate.h"
#include "aggify/rewriter.h"
#include "analysis/merge_synthesis.h"
#include "exec/eval.h"
#include "parser/parser.h"
#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

// ---- calculus unit tests -------------------------------------------------

class SynthTest : public ::testing::Test {
 protected:
  std::shared_ptr<const MergePlan> Synthesize(
      const std::string& body_text, std::set<std::string> fields = {"@s"},
      std::set<std::string> row_vars = {"@x"}) {
    auto parsed = ParseStatements(body_text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    body_ = std::move(parsed).ValueOrDie();
    return SynthesizeMerge(static_cast<const BlockStmt&>(*body_), fields,
                           row_vars, IsScalarBuiltinName);
  }

  static bool HasBlocker(const MergePlan& plan, DiagCode code) {
    for (const auto& d : plan.blockers) {
      if (d.code == code) return true;
    }
    return false;
  }

  StmtPtr body_;
};

TEST_F(SynthTest, AffineRearrangementIsASumHomomorphism) {
  // The classifier's strict `acc = acc + e` surface does not match, but the
  // affine decomposition folds the accumulator coefficient to 1.
  auto plan = Synthesize("SET @s = @x + @s + 1;");
  ASSERT_TRUE(plan->mergeable) << plan->blockers.size();
  const FieldMergePlan* f = plan->PlanFor("@s");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->rule, MergeRuleKind::kAffineSum);
  ASSERT_NE(f->merge_expr, nullptr);
  std::string m = f->merge_expr->ToString();
  EXPECT_NE(m.find("@l"), std::string::npos) << m;
  EXPECT_NE(m.find("@r"), std::string::npos) << m;
  EXPECT_NE(m.find("@c"), std::string::npos) << m;
  ASSERT_NE(f->row_term, nullptr);
  EXPECT_NE(f->row_term->ToString().find("@x"), std::string::npos);
}

TEST_F(SynthTest, CoefficientFoldsAcrossSubtraction) {
  // 2*@s - @s + @x: the coefficient algebra must fold 2 - 1 to 1.
  auto plan = Synthesize("SET @s = 2 * @s - @s + @x;");
  ASSERT_TRUE(plan->mergeable);
  EXPECT_EQ(plan->PlanFor("@s")->rule, MergeRuleKind::kAffineSum);
}

TEST_F(SynthTest, LetInlinedScratchNormalizesToDirectFold) {
  auto plan = Synthesize(
      "DECLARE @d INT;\n"
      "SET @d = @x * 2;\n"
      "SET @s = @s + @d;");
  ASSERT_TRUE(plan->mergeable);
  const FieldMergePlan* f = plan->PlanFor("@s");
  ASSERT_NE(f, nullptr);
  ASSERT_NE(f->row_term, nullptr);
  // The scratch local was substituted away: the row term reads @x directly.
  EXPECT_NE(f->row_term->ToString().find("@x"), std::string::npos);
}

TEST_F(SynthTest, BranchScopedScratchIsInlinedInPlace) {
  // A local declared, assigned, and consumed inside one branch never
  // carries state across rows: the calculus inlines it under the guard.
  auto plan = Synthesize(
      "IF (@x > 2)\n"
      "BEGIN\n"
      "  DECLARE @d INT;\n"
      "  SET @d = @x * 2;\n"
      "  SET @s = @s + @d;\n"
      "END");
  ASSERT_TRUE(plan->mergeable);
  const FieldMergePlan* f = plan->PlanFor("@s");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->rule, MergeRuleKind::kGuardedSum);
  EXPECT_TRUE(f->guarded);
}

TEST_F(SynthTest, ScratchEscapingItsBranchIsTainted) {
  // @d's value after the IF depends on whether the guard fired: reading it
  // outside the branch is path-dependent state.
  auto plan = Synthesize(
      "DECLARE @d INT;\n"
      "IF (@x > 2) SET @d = @x;\n"
      "SET @s = @s + @d;");
  EXPECT_FALSE(plan->mergeable);
  EXPECT_TRUE(HasBlocker(*plan, DiagCode::kStatefulGuard));
}

TEST_F(SynthTest, GuardedSumIsMergeable) {
  auto plan = Synthesize("IF (@x > 0) SET @s = @s + @x;");
  ASSERT_TRUE(plan->mergeable);
  const FieldMergePlan* f = plan->PlanFor("@s");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->rule, MergeRuleKind::kGuardedSum);
  EXPECT_TRUE(f->guarded);
}

TEST_F(SynthTest, ElseBranchSumMergesWithNegatedGuard) {
  // ELSE fires on false OR NULL; the plan must still be a sum homomorphism
  // (two guarded unit-coefficient updates on the same field).
  auto plan = Synthesize(
      "IF (@x > 0)\n"
      "  SET @s = @s + @x;\n"
      "ELSE\n"
      "  SET @s = @s - 1;");
  ASSERT_TRUE(plan->mergeable);
  const FieldMergePlan* f = plan->PlanFor("@s");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->rule, MergeRuleKind::kGuardedSum);
}

TEST_F(SynthTest, NullSeedExtremumFormIsRecognized) {
  // The IF/ELSE NULL-seed min the fold classifier rejects.
  auto plan = Synthesize(
      "IF (@s IS NULL)\n"
      "  SET @s = @x;\n"
      "ELSE IF (@x < @s)\n"
      "  SET @s = @x;");
  ASSERT_TRUE(plan->mergeable);
  const FieldMergePlan* f = plan->PlanFor("@s");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->rule, MergeRuleKind::kExtremum);
  EXPECT_TRUE(f->is_min);
}

TEST_F(SynthTest, ClassicCompareAndKeepMax) {
  auto plan = Synthesize("IF (@x > @s) SET @s = @x;");
  ASSERT_TRUE(plan->mergeable);
  const FieldMergePlan* f = plan->PlanFor("@s");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->rule, MergeRuleKind::kExtremum);
  EXPECT_FALSE(f->is_min);
}

TEST_F(SynthTest, ProductMergesViaFactorImageAndZeroCount) {
  auto plan = Synthesize("SET @s = @s * @x;");
  ASSERT_TRUE(plan->mergeable);
  const FieldMergePlan* f = plan->PlanFor("@s");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->rule, MergeRuleKind::kProductAugmented);
  // Factor image + zero count: the augmentation that avoids the division
  // inverse entirely.
  ASSERT_EQ(f->aux.size(), 2u);
  EXPECT_EQ(f->aux[0].kind, AuxUpdate::Kind::kFactorImage);
  EXPECT_EQ(f->aux[1].kind, AuxUpdate::Kind::kZeroCount);
  ASSERT_NE(f->merge_expr, nullptr);
  EXPECT_NE(f->merge_expr->ToString().find("@__img"), std::string::npos);
}

TEST_F(SynthTest, GuardedProductIsMergeable) {
  auto plan = Synthesize("IF (@x > 0) SET @s = @s * @x;");
  ASSERT_TRUE(plan->mergeable);
  const FieldMergePlan* f = plan->PlanFor("@s");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->rule, MergeRuleKind::kProductAugmented);
  EXPECT_TRUE(f->guarded);
}

TEST_F(SynthTest, SumCountAvgIsDerivedRecompute) {
  auto plan = Synthesize(
      "SET @sum = @sum + @x;\n"
      "SET @n = @n + 1;\n"
      "SET @avg = @sum / @n;",
      {"@sum", "@n", "@avg"});
  ASSERT_TRUE(plan->mergeable);
  const FieldMergePlan* f = plan->PlanFor("@avg");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->rule, MergeRuleKind::kDerived);
  EXPECT_EQ(f->merge_expr, nullptr);
  ASSERT_NE(f->recompute, nullptr);
  // Bases merge before the derived field recomputes: @avg is planned last.
  EXPECT_EQ(plan->fields.back().field, "@avg");
}

TEST_F(SynthTest, DerivedBeforeItsDependenciesIsBlocked) {
  // @avg reads @sum/@n values from the *previous* iteration: not a pure
  // function of the final bases.
  auto plan = Synthesize(
      "SET @avg = @sum / @n;\n"
      "SET @sum = @sum + @x;\n"
      "SET @n = @n + 1;",
      {"@sum", "@n", "@avg"});
  EXPECT_FALSE(plan->mergeable);
  EXPECT_TRUE(HasBlocker(*plan, DiagCode::kCrossAccumulatorDep));
}

TEST_F(SynthTest, UnusedFieldPlansAsInvariantPassThrough) {
  auto plan = Synthesize("SET @s = @s + @x;", {"@s", "@k"});
  ASSERT_TRUE(plan->mergeable);
  const FieldMergePlan* k = plan->PlanFor("@k");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->rule, MergeRuleKind::kInvariant);
}

// ---- adversarial cases ---------------------------------------------------

TEST_F(SynthTest, NonUnitConstantCoefficientIsBlocked) {
  // acc = 2*acc + x is affine but NOT commutative under interleaved
  // partitioning: the coefficient compounds per row.
  auto plan = Synthesize("SET @s = 2 * @s + @x;");
  EXPECT_FALSE(plan->mergeable);
  EXPECT_TRUE(HasBlocker(*plan, DiagCode::kNonCommutativeUpdate));
}

TEST_F(SynthTest, RowDependentCoefficientWithAddendIsBlocked) {
  // Looks affine (acc = x*acc + x) but is not a homomorphism.
  auto plan = Synthesize("SET @s = @s * @x + @x;");
  EXPECT_FALSE(plan->mergeable);
  EXPECT_TRUE(HasBlocker(*plan, DiagCode::kNonCommutativeUpdate));
}

TEST_F(SynthTest, CancelledCoefficientIsAnOverwriteNotASum) {
  // @s - @s + @x folds the coefficient to 0: last-value in disguise.
  auto plan = Synthesize("SET @s = @s - @s + @x;");
  EXPECT_FALSE(plan->mergeable);
  EXPECT_TRUE(HasBlocker(*plan, DiagCode::kNonCommutativeUpdate));
}

TEST_F(SynthTest, LastValueIsBlocked) {
  auto plan = Synthesize("SET @s = @x;");
  EXPECT_FALSE(plan->mergeable);
  EXPECT_TRUE(HasBlocker(*plan, DiagCode::kNonCommutativeUpdate));
}

TEST_F(SynthTest, GuardReadingTwoAccumulatorsIsStateful) {
  auto plan = Synthesize("IF (@a > @b) SET @a = @a + @x;", {"@a", "@b"});
  EXPECT_FALSE(plan->mergeable);
  EXPECT_TRUE(HasBlocker(*plan, DiagCode::kStatefulGuard));
}

TEST_F(SynthTest, BreakDefeatsTheCalculus) {
  auto plan = Synthesize("SET @s = @s + @x;\nIF (@s > 100) BREAK;");
  EXPECT_FALSE(plan->mergeable);
  EXPECT_TRUE(HasBlocker(*plan, DiagCode::kUnrecognizedUpdate));
}

TEST_F(SynthTest, MixedShapesOnOneFieldAreBlocked) {
  auto plan = Synthesize("SET @s = @s + @x;\nSET @s = @s * @x;");
  EXPECT_FALSE(plan->mergeable);
  EXPECT_TRUE(HasBlocker(*plan, DiagCode::kNonCommutativeUpdate));
}

TEST_F(SynthTest, MutatedRowVariableDefeatsProductFactorStability) {
  // The factor is re-evaluated after the body ran: a mutated @x would read
  // the wrong value, so the plan must refuse.
  auto plan = Synthesize("SET @s = @s * @x;\nSET @x = @x + 1;");
  EXPECT_FALSE(plan->mergeable);
}

TEST_F(SynthTest, EveryBlockerIsReportedInOnePass) {
  // One last-value field and one stateful guard: lint must see both.
  auto plan = Synthesize(
      "SET @s = @x;\n"
      "IF (@s > 0) SET @t = @t + @x;",
      {"@s", "@t"});
  EXPECT_FALSE(plan->mergeable);
  EXPECT_GE(plan->blockers.size(), 2u);
  EXPECT_TRUE(HasBlocker(*plan, DiagCode::kNonCommutativeUpdate));
  EXPECT_TRUE(HasBlocker(*plan, DiagCode::kStatefulGuard));
}

TEST_F(SynthTest, DescribeRulesNamesEveryField) {
  auto plan = Synthesize(
      "SET @sum = @sum + @x;\n"
      "SET @n = @n + 1;\n"
      "SET @avg = @sum / @n;",
      {"@sum", "@n", "@avg"});
  ASSERT_TRUE(plan->mergeable);
  std::vector<std::string> rules = plan->DescribeRules();
  ASSERT_EQ(rules.size(), 3u);
  std::string joined;
  for (const auto& r : rules) joined += r + "\n";
  EXPECT_NE(joined.find("@avg"), std::string::npos) << joined;
  EXPECT_NE(joined.find("derived"), std::string::npos) << joined;
}

// ---- shuffle-sweep certificate -------------------------------------------

class CertificateTest : public ::testing::Test {
 protected:
  /// Builds a LoopAggregate over a synthetic loop: fields + row vars with a
  /// certified classification carrying the synthesized plan — exactly what
  /// the rewriter constructs before running the sweep.
  std::unique_ptr<LoopAggregate> MakeAggregate(
      const std::string& body_text, std::vector<std::string> fields,
      std::vector<std::string> row_vars,
      std::shared_ptr<const MergePlan> plan = nullptr) {
    auto parsed = ParseStatements(body_text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    if (!parsed.ok()) return nullptr;
    std::shared_ptr<const BlockStmt> body(
        static_cast<const BlockStmt*>(std::move(parsed).ValueOrDie().release()));

    std::set<std::string> field_set(fields.begin(), fields.end());
    std::set<std::string> row_set(row_vars.begin(), row_vars.end());
    if (plan == nullptr) {
      plan = SynthesizeMerge(*body, field_set, row_set, IsScalarBuiltinName);
      EXPECT_TRUE(plan->mergeable);
    }

    BodyClassification c =
        ClassifyLoopBody(*body, field_set, row_set, IsScalarBuiltinName);
    c.merge_plan = plan;
    c.decomposable = true;
    c.order_insensitive = true;

    LoopSets sets;
    sets.v_fetch = row_vars;
    sets.v_fields = fields;
    sets.p_accum = row_vars;
    sets.p_accum.insert(sets.p_accum.end(), fields.begin(), fields.end());
    sets.v_init = fields;
    sets.v_term = fields;
    sets.ordered = false;
    return std::make_unique<LoopAggregate>("cert_test_agg", std::move(body),
                                           std::move(sets), std::move(c));
  }

  Database db_;
};

TEST_F(CertificateTest, SumPlanPassesTheSweep) {
  auto agg = MakeAggregate("SET @s = @x + @s + 1;", {"@s"}, {"@x"});
  ASSERT_NE(agg, nullptr);
  ASSERT_OK_AND_ASSIGN(std::string cert,
                       RunShuffleSweepCertificate(*agg, &db_));
  EXPECT_NE(cert.find("shuffle-sweep certificate"), std::string::npos);
}

TEST_F(CertificateTest, ProductPlanSurvivesZeroAndNullBaselines) {
  // The sweep's baselines include 0 and NULL: the division-inverse merge
  // would diverge; the factor-image augmentation must not.
  auto agg = MakeAggregate("SET @p = @p * @x;", {"@p"}, {"@x"});
  ASSERT_NE(agg, nullptr);
  EXPECT_OK(RunShuffleSweepCertificate(*agg, &db_).status());
}

TEST_F(CertificateTest, GuardedSumAndDerivedAvgPass) {
  auto guarded =
      MakeAggregate("IF (@x > 0) SET @s = @s + @x;", {"@s"}, {"@x"});
  ASSERT_NE(guarded, nullptr);
  EXPECT_OK(RunShuffleSweepCertificate(*guarded, &db_).status());

  auto avg = MakeAggregate(
      "SET @sum = @sum + @x;\n"
      "SET @n = @n + 1;\n"
      "SET @avg = @sum / @n;",
      {"@avg", "@n", "@sum"}, {"@x"});
  ASSERT_NE(avg, nullptr);
  EXPECT_OK(RunShuffleSweepCertificate(*avg, &db_).status());
}

TEST_F(CertificateTest, SweepCatchesABaselineDoubleCount) {
  // Hand-craft a WRONG plan: merged = @l + @r double-counts the shared
  // loop-entry baseline. The sweep must reject it — this is the property
  // that makes invariant 11 more than a syntactic promise.
  auto bad = std::make_shared<MergePlan>();
  bad->mergeable = true;
  FieldMergePlan f;
  f.field = "@s";
  f.rule = MergeRuleKind::kAffineSum;
  f.merge_expr =
      MakeBinary(BinaryOp::kAdd, MakeVarRef("@l"), MakeVarRef("@r"));
  bad->fields.push_back(std::move(f));

  auto agg = MakeAggregate("SET @s = @s + @x;", {"@s"}, {"@x"}, bad);
  ASSERT_NE(agg, nullptr);
  Status st = RunShuffleSweepCertificate(*agg, &db_).status();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("divergence"), std::string::npos)
      << st.ToString();
}

// ---- end-to-end: rewriter + parallel execution ---------------------------

class MergeSynthesisE2ETest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(&db_, EngineOptions::WithDop(4));
    serial_ = std::make_unique<Session>(&db_);
    ASSERT_OK(serial_->RunSql(R"(
      CREATE TABLE m (g INT, v INT);
      INSERT INTO m VALUES (1, 5), (1, 7), (1, NULL), (2, 3), (2, 0),
                           (2, 4), (2, 6), (3, 2), (3, 100);
    )"));
  }

  /// Rewrites `fn` at dop=4 and asserts the loop gained a synthesized,
  /// certified Merge and parallel eligibility.
  LoopRewrite RewriteExpectSynthesized(const std::string& fn) {
    Aggify aggify(&db_, EngineOptions::WithDop(4));
    auto report = aggify.RewriteFunction(fn);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    if (!report.ok()) return {};
    EXPECT_EQ(report->loops_rewritten, 1) << fn;
    if (report->rewrites.empty()) return {};
    const LoopRewrite& rw = report->rewrites[0];
    EXPECT_TRUE(rw.merge_synthesized) << fn;
    EXPECT_TRUE(rw.parallel_eligible) << fn;
    EXPECT_FALSE(rw.merge_rules.empty()) << fn;
    EXPECT_NE(rw.merge_certificate.find("shuffle-sweep"), std::string::npos)
        << fn << ": " << rw.merge_certificate;
    return rw;
  }

  /// Calls `fn` through the dop=4 and serial sessions; results must be
  /// bit-identical (DOP 4 ≡ DOP 1).
  void ExpectDop4EqualsDop1(const std::string& fn) {
    auto parallel = session_->Call(fn, {});
    auto serial = serial_->Call(fn, {});
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    EXPECT_TRUE(parallel->StructurallyEquals(*serial))
        << fn << ": dop4=" << parallel->ToString()
        << " dop1=" << serial->ToString();
  }

  Database db_;
  std::unique_ptr<Session> session_;  // degree_of_parallelism = 4
  std::unique_ptr<Session> serial_;   // degree_of_parallelism = 1
};

TEST_F(MergeSynthesisE2ETest, AffineUpdateBecomesParallelEligible) {
  // `@s = @x + @s + 1` — rejected by the strict fold algebra, derived by the
  // calculus, and narrow enough to lower natively (SUM over the row term).
  ASSERT_OK(serial_->RunSql(R"(
    CREATE FUNCTION affine_total() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @s INT;
      SET @s = 0;
      DECLARE c CURSOR FOR SELECT v FROM m WHERE v IS NOT NULL;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @s = @x + @s + 1;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @s;
    END
  )"));
  LoopRewrite rw = RewriteExpectSynthesized("affine_total");
  EXPECT_TRUE(rw.lowered_to_builtin) << rw.aggregate_name;
  ExpectDop4EqualsDop1("affine_total");
  // 5+7+3+0+4+6+2+100 = 127, plus 1 per row (8 rows).
  ASSERT_OK_AND_ASSIGN(Value v, serial_->Call("affine_total", {}));
  EXPECT_EQ(v.int_value(), 135);
}

TEST_F(MergeSynthesisE2ETest, ConditionalSumRunsPartitioned) {
  // Conditional sum through branch-scoped scratch: the fold classifier's
  // algebra rejects the local, the calculus let-inlines it.
  ASSERT_OK(serial_->RunSql(R"(
    CREATE FUNCTION cond_sum() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @s INT;
      SET @s = 0;
      DECLARE c CURSOR FOR SELECT v FROM m;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        IF (@x > 2)
        BEGIN
          DECLARE @d INT;
          SET @d = @x * 2;
          SET @s = @s + @d;
        END
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @s;
    END
  )"));
  LoopRewrite rw = RewriteExpectSynthesized("cond_sum");
  EXPECT_FALSE(rw.lowered_to_builtin);  // guarded: interpreted aggregate

  // The rewritten query actually plans as a partitioned aggregation.
  ASSERT_OK_AND_ASSIGN(auto stmt, ParseSelect(rw.rewritten_query_sql));
  ExecContext ctx = session_->MakeContext();
  VariableEnv env;
  for (const auto& name : rw.sets.v_fields) env.Declare(name, Value::Int(0));
  ctx.set_vars(&env);
  ASSERT_OK_AND_ASSIGN(std::string plan,
                       session_->engine().Explain(*stmt, ctx));
  EXPECT_NE(plan.find("ParallelPartialAgg"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Gather"), std::string::npos) << plan;

  ExpectDop4EqualsDop1("cond_sum");
  // 2 * (5+7+3+4+6+100); the NULL, 0 and 2 rows fail the guard.
  ASSERT_OK_AND_ASSIGN(Value v, serial_->Call("cond_sum", {}));
  EXPECT_EQ(v.int_value(), 250);
}

TEST_F(MergeSynthesisE2ETest, ProductWithZeroTrackingRunsPartitioned) {
  // Includes a 0 row and a NULL row: exactly the cases the division-inverse
  // merge cannot survive and the NULL-poisoning semantics the interpreted
  // aggregate must reproduce.
  ASSERT_OK(serial_->RunSql(R"(
    CREATE FUNCTION product_run() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @p INT;
      SET @p = 1;
      DECLARE c CURSOR FOR SELECT v FROM m WHERE v IS NOT NULL AND g = 2;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @p = @p * @x;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @p;
    END
  )"));
  LoopRewrite rw = RewriteExpectSynthesized("product_run");
  EXPECT_FALSE(rw.lowered_to_builtin);
  ExpectDop4EqualsDop1("product_run");
  ASSERT_OK_AND_ASSIGN(Value v, serial_->Call("product_run", {}));
  EXPECT_EQ(v.int_value(), 0);  // 3 * 0 * 4 * 6
}

TEST_F(MergeSynthesisE2ETest, SumCountAvgMultiFoldRunsPartitioned) {
  ASSERT_OK(serial_->RunSql(R"(
    CREATE FUNCTION avg_v() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @sum INT;
      DECLARE @n INT;
      DECLARE @avg INT;
      SET @sum = 0;
      SET @n = 0;
      DECLARE c CURSOR FOR SELECT v FROM m WHERE v IS NOT NULL;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @sum = @sum + @x;
        SET @n = @n + 1;
        SET @avg = @sum / @n;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @avg;
    END
  )"));
  LoopRewrite rw = RewriteExpectSynthesized("avg_v");
  // The derived rule must be named in the report.
  std::string joined;
  for (const auto& r : rw.merge_rules) joined += r + "\n";
  EXPECT_NE(joined.find("derived"), std::string::npos) << joined;
  EXPECT_NE(rw.aggregate_source.find("Merge"), std::string::npos);

  ExpectDop4EqualsDop1("avg_v");
  ASSERT_OK_AND_ASSIGN(Value v, serial_->Call("avg_v", {}));
  EXPECT_EQ(v.int_value(), 127 / 8);
}

TEST_F(MergeSynthesisE2ETest, ReportCarriesCalculusNotes) {
  ASSERT_OK(serial_->RunSql(R"(
    CREATE FUNCTION noted_sum() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @s INT;
      SET @s = 0;
      DECLARE c CURSOR FOR SELECT v FROM m;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        IF (@x > 0)
        BEGIN
          DECLARE @d INT;
          SET @d = @x + 1;
          SET @s = @s + @d;
        END
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @s;
    END
  )"));
  Aggify aggify(&db_, EngineOptions::WithDop(4));
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("noted_sum"));
  ASSERT_EQ(report.loops_rewritten, 1);
  bool saw_rule = false, saw_cert = false;
  for (const auto& note : report.notes) {
    if (note.code == DiagCode::kMergeRule) saw_rule = true;
    if (note.code == DiagCode::kMergeCertified) saw_cert = true;
  }
  EXPECT_TRUE(saw_rule);
  EXPECT_TRUE(saw_cert);
}

TEST_F(MergeSynthesisE2ETest, UncertifiableBodyStaysSerialWithTypedBlockers) {
  // Last-value body: synthesis reports AGG2xx blockers, the loop is still
  // rewritten (serial aggregate), and nothing claims parallel eligibility.
  ASSERT_OK(serial_->RunSql(R"(
    CREATE FUNCTION last_one() RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @s INT;
      DECLARE c CURSOR FOR SELECT v FROM m WHERE v IS NOT NULL;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @s = @x;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @s;
    END
  )"));
  Aggify aggify(&db_, EngineOptions::WithDop(4));
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("last_one"));
  ASSERT_EQ(report.loops_rewritten, 1);
  EXPECT_FALSE(report.rewrites[0].merge_synthesized);
  EXPECT_FALSE(report.rewrites[0].parallel_eligible);
  bool saw_blocker = false;
  for (const auto& note : report.notes) {
    if (note.code == DiagCode::kNonCommutativeUpdate) saw_blocker = true;
  }
  EXPECT_TRUE(saw_blocker);
}

}  // namespace
}  // namespace aggify
