// Native-fold lowering (AGG304), fetch-column pruning (AGG302) and the
// static-trip-count FOR fast path (AGG306): the rewriter-visible payoffs of
// the simplification pipeline. The plan-shape tests re-parse the rewritten
// query and assert it aggregates through the built-in — no interpreted
// Agg_Δ is registered at all.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "aggify/rewriter.h"
#include "aggregates/aggregate_function.h"
#include "parser/parser.h"
#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

bool HasDiagnostic(const std::vector<Diagnostic>& diags, DiagCode code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return true;
  }
  return false;
}

/// Every aggregate call mentioned anywhere in the SELECT's item list.
std::vector<std::string> AggregateCallNames(const SelectStmt& select) {
  std::vector<std::string> names;
  for (const SelectItem& item : select.items) {
    item.expr->Walk([&](const Expr& e) {
      if (e.kind == ExprKind::kAggregateCall) {
        names.push_back(static_cast<const AggregateCallExpr&>(e).name);
      }
    });
  }
  return names;
}

class NativeLoweringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(&db_);
    ASSERT_OK(session_->RunSql(R"(
      CREATE TABLE data (k INT, v INT);
      INSERT INTO data VALUES (1, 5), (1, 7), (2, 11), (1, 3);
    )"));
  }

  /// Registers `source`, rewrites `name` with default options, and returns
  /// the report. Fails the test if the single loop was not rewritten.
  AggifyReport Rewrite(const std::string& source, const std::string& name) {
    EXPECT_TRUE(session_->RunSql(source).ok());
    Aggify aggify(&db_);
    auto report = aggify.RewriteFunction(name);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->loops_rewritten, 1);
    return *std::move(report);
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

// ---- plan shape: the builtin replaces the interpreted Agg_Δ ----

TEST_F(NativeLoweringTest, SumFoldLowersToBuiltinWithNoCustomAggregate) {
  size_t aggregates_before = db_.catalog().AggregateNames().size();
  AggifyReport report = Rewrite(R"(
    CREATE FUNCTION sum_v(@k INT) RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @s INT = 0;
      DECLARE c CURSOR FOR SELECT v FROM data WHERE k = @k;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @s = @s + @x;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @s;
    END
  )", "sum_v");

  const LoopRewrite& record = report.rewrites[0];
  EXPECT_TRUE(record.lowered_to_builtin);
  EXPECT_EQ(record.aggregate_name, "sum");
  EXPECT_TRUE(record.aggregate_source.empty());
  EXPECT_TRUE(HasDiagnostic(report.notes, DiagCode::kLoweredToBuiltin));
  // No interpreted Agg_Δ was registered anywhere.
  EXPECT_EQ(db_.catalog().AggregateNames().size(), aggregates_before);

  // The rewritten query aggregates exclusively through builtins.
  ASSERT_OK_AND_ASSIGN(auto select, ParseSelect(record.rewritten_query_sql));
  std::vector<std::string> names = AggregateCallNames(*select);
  ASSERT_FALSE(names.empty());
  for (const std::string& n : names) {
    EXPECT_TRUE(IsBuiltinAggregateName(n)) << n;
  }

  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("sum_v", {Value::Int(1)}));
  EXPECT_EQ(v.int_value(), 15);
  // Zero rows: the lowered query's NULL marker keeps the prior value (0).
  ASSERT_OK_AND_ASSIGN(Value z, session_->Call("sum_v", {Value::Int(999)}));
  EXPECT_EQ(z.int_value(), 0);
}

TEST_F(NativeLoweringTest, CounterLowersToCountStar) {
  AggifyReport report = Rewrite(R"(
    CREATE FUNCTION count_v(@k INT) RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @n INT = 0;
      DECLARE c CURSOR FOR SELECT v FROM data WHERE k = @k;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @n = @n + 1;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @n;
    END
  )", "count_v");
  EXPECT_TRUE(report.rewrites[0].lowered_to_builtin);
  EXPECT_EQ(report.rewrites[0].aggregate_name, "count");
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("count_v", {Value::Int(1)}));
  EXPECT_EQ(v.int_value(), 3);
  ASSERT_OK_AND_ASSIGN(Value z, session_->Call("count_v", {Value::Int(999)}));
  EXPECT_EQ(z.int_value(), 0);
}

TEST_F(NativeLoweringTest, GuardedMinWithNullPeelLowersToMin) {
  AggifyReport report = Rewrite(R"(
    CREATE FUNCTION min_v(@k INT) RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @m INT;
      DECLARE c CURSOR FOR SELECT v FROM data WHERE k = @k;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        IF @m IS NULL OR @x < @m
        BEGIN
          SET @m = @x;
        END
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @m;
    END
  )", "min_v");
  EXPECT_TRUE(report.rewrites[0].lowered_to_builtin);
  EXPECT_EQ(report.rewrites[0].aggregate_name, "min");
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("min_v", {Value::Int(1)}));
  EXPECT_EQ(v.int_value(), 3);
  ASSERT_OK_AND_ASSIGN(Value z, session_->Call("min_v", {Value::Int(999)}));
  EXPECT_TRUE(z.is_null());
}

TEST_F(NativeLoweringTest, GuardedMaxWithoutPeelKeepsSeededBaseline) {
  // No IS NULL peel: a seeded @m only updates when a row beats it, and the
  // lowered CASE must preserve that (baseline wins over smaller maxima).
  AggifyReport report = Rewrite(R"(
    CREATE FUNCTION max_v(@k INT) RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @m INT = 6;
      DECLARE c CURSOR FOR SELECT v FROM data WHERE k = @k;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        IF @x > @m
        BEGIN
          SET @m = @x;
        END
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @m;
    END
  )", "max_v");
  EXPECT_TRUE(report.rewrites[0].lowered_to_builtin);
  EXPECT_EQ(report.rewrites[0].aggregate_name, "max");
  ASSERT_OK_AND_ASSIGN(Value v1, session_->Call("max_v", {Value::Int(1)}));
  EXPECT_EQ(v1.int_value(), 7);  // 7 > 6: a row beat the baseline
  ASSERT_OK_AND_ASSIGN(Value v2, session_->Call("max_v", {Value::Int(2)}));
  EXPECT_EQ(v2.int_value(), 11);
  // Group {1,...} vs a higher baseline: re-register with baseline 50.
  AggifyReport high = Rewrite(R"(
    CREATE FUNCTION max_v50(@k INT) RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @m INT = 50;
      DECLARE c CURSOR FOR SELECT v FROM data WHERE k = @k;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        IF @x > @m
        BEGIN
          SET @m = @x;
        END
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @m;
    END
  )", "max_v50");
  EXPECT_TRUE(high.rewrites[0].lowered_to_builtin);
  ASSERT_OK_AND_ASSIGN(Value v3, session_->Call("max_v50", {Value::Int(1)}));
  EXPECT_EQ(v3.int_value(), 50);  // no row beats the baseline
}

TEST_F(NativeLoweringTest, MultiVariableBodyIsNotLowered) {
  // Two live accumulators: not a single native fold, so the interpreted
  // Agg_Δ path must kick in and register a custom aggregate.
  size_t aggregates_before = db_.catalog().AggregateNames().size();
  AggifyReport report = Rewrite(R"(
    CREATE FUNCTION sum_and_count(@k INT) RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @s INT = 0;
      DECLARE @n INT = 0;
      DECLARE c CURSOR FOR SELECT v FROM data WHERE k = @k;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @s = @s + @x;
        SET @n = @n + 1;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @s * 100 + @n;
    END
  )", "sum_and_count");
  EXPECT_FALSE(report.rewrites[0].lowered_to_builtin);
  EXPECT_FALSE(report.rewrites[0].aggregate_source.empty());
  EXPECT_GT(db_.catalog().AggregateNames().size(), aggregates_before);
  ASSERT_OK_AND_ASSIGN(Value v,
                       session_->Call("sum_and_count", {Value::Int(1)}));
  EXPECT_EQ(v.int_value(), 1503);
}

TEST_F(NativeLoweringTest, NullInputPoisonsSumExactlyLikeInterpretedAgg) {
  // A NULL row poisons the accumulator (@s + NULL = NULL). The lowered CASE
  // detects it via COUNT(e') < COUNT(*) and emits the NULL result marker —
  // which under the MultiAssign convention keeps the prior value, exactly
  // what the interpreted Agg_Δ's Terminate produces on the same input. The
  // invariant under test: lowering is indistinguishable from the Agg_Δ path.
  ASSERT_OK(session_->RunSql(
      "INSERT INTO data VALUES (3, 4), (3, NULL), (3, 9);"));
  const char* def = R"(
    CREATE FUNCTION sum_null%s(@k INT) RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @s INT = 42;
      DECLARE c CURSOR FOR SELECT v FROM data WHERE k = @k;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @s = @s + @x;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @s;
    END
  )";
  char lowered_def[512], interp_def[512];
  std::snprintf(lowered_def, sizeof(lowered_def), def, "_lo");
  std::snprintf(interp_def, sizeof(interp_def), def, "_agg");
  AggifyReport lowered = Rewrite(lowered_def, "sum_null_lo");
  EXPECT_TRUE(lowered.rewrites[0].lowered_to_builtin);

  EXPECT_TRUE(session_->RunSql(interp_def).ok());
  EngineOptions opts;
  opts.rewrite.lower_native_folds = false;
  Aggify interp(&db_, opts);
  ASSERT_OK_AND_ASSIGN(AggifyReport r2, interp.RewriteFunction("sum_null_agg"));
  EXPECT_FALSE(r2.rewrites[0].lowered_to_builtin);

  for (int64_t k : {1, 2, 3, 999}) {
    ASSERT_OK_AND_ASSIGN(Value lo,
                         session_->Call("sum_null_lo", {Value::Int(k)}));
    ASSERT_OK_AND_ASSIGN(Value ag,
                         session_->Call("sum_null_agg", {Value::Int(k)}));
    EXPECT_TRUE(lo.StructurallyEquals(ag))
        << "k=" << k << ": lowered=" << lo.ToString()
        << " interpreted=" << ag.ToString();
  }
  ASSERT_OK_AND_ASSIGN(Value ok, session_->Call("sum_null_lo", {Value::Int(1)}));
  EXPECT_EQ(ok.int_value(), 57);  // 42 + 15: no NULL in group 1
}

// ---- fetch-column pruning (AGG302) ----

TEST_F(NativeLoweringTest, UnusedFetchColumnsArePrunedFromProjection) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE TABLE wide (k INT, a INT, b STRING, c INT);
    INSERT INTO wide VALUES (1, 2, 'x', 30), (1, 4, 'y', 50);
  )"));
  AggifyReport report = Rewrite(R"(
    CREATE FUNCTION sum_a(@k INT) RETURNS INT AS
    BEGIN
      DECLARE @a INT;
      DECLARE @b STRING;
      DECLARE @c INT;
      DECLARE @s INT = 0;
      DECLARE cur CURSOR FOR SELECT a, b, c FROM wide WHERE k = @k;
      OPEN cur;
      FETCH NEXT FROM cur INTO @a, @b, @c;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @s = @s + @a;
        FETCH NEXT FROM cur INTO @a, @b, @c;
      END
      CLOSE cur; DEALLOCATE cur;
      RETURN @s;
    END
  )", "sum_a");
  const LoopRewrite& record = report.rewrites[0];
  // @b and @c are never read: their cursor columns c1 and c2 are dropped.
  EXPECT_EQ(record.pruned_fetch_columns,
            (std::vector<std::string>{"c1", "c2"}));
  EXPECT_TRUE(HasDiagnostic(report.notes, DiagCode::kUnusedFetchColumn));
  EXPECT_EQ(record.rewritten_query_sql.find("c1"), std::string::npos)
      << record.rewritten_query_sql;
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("sum_a", {Value::Int(1)}));
  EXPECT_EQ(v.int_value(), 6);
}

TEST_F(NativeLoweringTest, DistinctCursorProjectionIsNotPruned) {
  // DISTINCT over (a, b): dropping b would change the row multiset, so the
  // projection is load-bearing and pruning must stand down.
  ASSERT_OK(session_->RunSql(R"(
    CREATE TABLE pairs (k INT, a INT, b INT);
    INSERT INTO pairs VALUES (1, 2, 1), (1, 2, 2), (1, 2, 2);
  )"));
  AggifyReport report = Rewrite(R"(
    CREATE FUNCTION sum_distinct(@k INT) RETURNS INT AS
    BEGIN
      DECLARE @a INT;
      DECLARE @b INT;
      DECLARE @s INT = 0;
      DECLARE c CURSOR FOR SELECT DISTINCT a, b FROM pairs WHERE k = @k;
      OPEN c;
      FETCH NEXT FROM c INTO @a, @b;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @s = @s + @a;
        FETCH NEXT FROM c INTO @a, @b;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @s;
    END
  )", "sum_distinct");
  EXPECT_TRUE(report.rewrites[0].pruned_fetch_columns.empty());
  // DISTINCT (2,1) + (2,2): two rows survive, so the sum of a is 4.
  ASSERT_OK_AND_ASSIGN(Value v,
                       session_->Call("sum_distinct", {Value::Int(1)}));
  EXPECT_EQ(v.int_value(), 4);
}

// ---- static trip counts (AGG306) ----

TEST_F(NativeLoweringTest, ConstantBoundForLoopUsesStaticTripSpace) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION triangle() RETURNS INT AS
    BEGIN
      DECLARE @s INT = 0;
      FOR @i = 1 TO 10
      BEGIN
        SET @s = @s + @i;
      END
      RETURN @s;
    END
  )"));
  EngineOptions options;
  options.rewrite.convert_for_loops = true;  // static_trip_values defaults on
  Aggify aggify(&db_, options);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("triangle"));
  EXPECT_EQ(report.loops_rewritten, 1);
  EXPECT_TRUE(HasDiagnostic(report.notes, DiagCode::kStaticTripCount));
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("triangle", {}));
  EXPECT_EQ(v.int_value(), 55);
}

TEST_F(NativeLoweringTest, StaticTripMatchesRecursiveCteSpace) {
  const char* def = R"(
    CREATE FUNCTION steps%s() RETURNS INT AS
    BEGIN
      DECLARE @s INT = 0;
      FOR @i = 3 TO 12 STEP 4
      BEGIN
        SET @s = @s + @i;
      END
      RETURN @s;
    END
  )";
  char with_static[512], without_static[512];
  std::snprintf(with_static, sizeof(with_static), def, "_fast");
  std::snprintf(without_static, sizeof(without_static), def, "_slow");
  ASSERT_OK(session_->RunSql(with_static));
  ASSERT_OK(session_->RunSql(without_static));

  EngineOptions fast;
  fast.rewrite.convert_for_loops = true;
  Aggify a1(&db_, fast);
  ASSERT_OK_AND_ASSIGN(AggifyReport r1, a1.RewriteFunction("steps_fast"));
  EXPECT_TRUE(HasDiagnostic(r1.notes, DiagCode::kStaticTripCount));

  EngineOptions slow;
  slow.rewrite.convert_for_loops = true;
  slow.rewrite.static_trip_values = false;
  Aggify a2(&db_, slow);
  ASSERT_OK_AND_ASSIGN(AggifyReport r2, a2.RewriteFunction("steps_slow"));
  EXPECT_FALSE(HasDiagnostic(r2.notes, DiagCode::kStaticTripCount));

  // 3 + 7 + 11 = 21 either way.
  ASSERT_OK_AND_ASSIGN(Value fast_v, session_->Call("steps_fast", {}));
  ASSERT_OK_AND_ASSIGN(Value slow_v, session_->Call("steps_slow", {}));
  EXPECT_EQ(fast_v.int_value(), 21);
  EXPECT_TRUE(fast_v.StructurallyEquals(slow_v));
}

TEST_F(NativeLoweringTest, OversizedTripCountFallsBackToRecursiveCte) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION big() RETURNS INT AS
    BEGIN
      DECLARE @s INT = 0;
      FOR @i = 1 TO 100
      BEGIN
        SET @s = @s + 1;
      END
      RETURN @s;
    END
  )"));
  EngineOptions options;
  options.rewrite.convert_for_loops = true;
  options.rewrite.max_static_trips = 8;  // 100 trips exceed the materialization cap
  Aggify aggify(&db_, options);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("big"));
  EXPECT_EQ(report.loops_rewritten, 1);
  EXPECT_FALSE(HasDiagnostic(report.notes, DiagCode::kStaticTripCount));
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("big", {}));
  EXPECT_EQ(v.int_value(), 100);
}

}  // namespace
}  // namespace aggify
