// Shared gtest helpers for Status/Result assertions.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "common/result.h"
#include "procedural/session.h"

namespace aggify {
namespace testing_internal {

inline Status GetStatus(const Status& s) { return s; }

template <typename T>
Status GetStatus(const Result<T>& r) {
  return r.status();
}

}  // namespace testing_internal

/// \brief TEST-ONLY convenience: parse and execute one SELECT through the
/// session. This replaces the removed QueryEngine::ExecuteSql — that
/// fresh-context shortcut silently skipped the session's UDF invoker and
/// invocation limits, so production callers must go through
/// Session/ClientSession; tests that just want "run this SQL" use this.
inline Result<QueryResult> TestOnlyExecuteSql(Session* session,
                                              const std::string& sql) {
  return session->Query(sql);
}

}  // namespace aggify

#define ASSERT_OK(expr)                                        \
  do {                                                         \
    auto _st = ::aggify::testing_internal::GetStatus((expr));  \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (0)

#define EXPECT_OK(expr)                                        \
  do {                                                         \
    auto _st = ::aggify::testing_internal::GetStatus((expr));  \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (0)

#define ASSERT_NOT_OK(expr)                                    \
  do {                                                         \
    auto _st = ::aggify::testing_internal::GetStatus((expr));  \
    ASSERT_FALSE(_st.ok()) << "expected an error";             \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                       \
  auto AGGIFY_CONCAT(_res_, __LINE__) = (rexpr);               \
  ASSERT_TRUE(AGGIFY_CONCAT(_res_, __LINE__).ok())             \
      << AGGIFY_CONCAT(_res_, __LINE__).status().ToString();   \
  lhs = std::move(AGGIFY_CONCAT(_res_, __LINE__)).ValueOrDie();
