// Table-effect & early-exit dataflow (analysis/table_effects.h,
// analysis/early_exit.h) and the DML-body / BREAK-bound rewrite families
// they unlock (AGG401–407).
//
// Adversarial cases: Δ inserting into a table Q reads (Halloween
// self-dependence), a UDF that transitively reads the write target, a UDF
// with persistent writes (full skip_details list, nothing dropped), a BREAK
// on a non-monotone predicate, and a nested cursor loop with DML in the
// inner body. Equivalence sweeps run one loop per family — append INSERT,
// accumulating UPDATE, counted early exit — interpreted vs. rewritten, and
// require bit-identical results (environment, row counts, and full target-
// table contents) across {batch on/off} x {DOP 1/4}.
#include <gtest/gtest.h>

#include "aggify/rewriter.h"
#include "analysis/early_exit.h"
#include "analysis/table_effects.h"
#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

struct Axis {
  bool batch;
  int dop;
};

const Axis kAxes[] = {{false, 1}, {true, 1}, {false, 4}, {true, 4}};

EngineOptions OptionsFor(const Axis& axis) {
  EngineOptions options;
  options.execution.enable_batch = axis.batch;
  options.execution.degree_of_parallelism = axis.dop;
  return options;
}

std::string AxisName(const Axis& axis) {
  return std::string("batch=") + (axis.batch ? "on" : "off") +
         " dop=" + std::to_string(axis.dop);
}

/// AggifyReport's no-drop invariant: the full per-loop rejection lists are
/// parallel to `skipped` and lead with the primary diagnostic.
void AssertNoDroppedDiagnostics(const AggifyReport& report) {
  ASSERT_EQ(report.skip_details.size(), report.skipped.size());
  for (size_t i = 0; i < report.skipped.size(); ++i) {
    ASSERT_FALSE(report.skip_details[i].empty());
    EXPECT_EQ(report.skip_details[i].front().code, report.skipped[i].code);
    EXPECT_EQ(report.skip_details[i].front().message,
              report.skipped[i].message);
  }
}

bool HasNote(const AggifyReport& report, DiagCode code) {
  for (const auto& d : report.notes) {
    if (d.code == code) return true;
  }
  return false;
}

bool DetailHas(const std::vector<Diagnostic>& detail, DiagCode code) {
  for (const auto& d : detail) {
    if (d.code == code) return true;
  }
  return false;
}

Result<std::shared_ptr<VariableEnv>> RunBlockStmt(Session* session,
                                                  const BlockStmt& block) {
  auto env = std::make_shared<VariableEnv>();
  ExecContext ctx = session->MakeContext();
  ctx.set_vars(env.get());
  Interpreter interp(&session->engine());
  RETURN_NOT_OK(interp.ExecuteBlock(block, env.get(), ctx).status());
  return env;
}

std::vector<Row> RowsOf(Database* db, const std::string& table) {
  auto t = db->catalog().GetTable(table);
  EXPECT_TRUE(t.ok()) << table;
  return t.ok() ? (*t)->SnapshotRows() : std::vector<Row>{};
}

void ExpectSameRows(const std::vector<Row>& expected,
                    const std::vector<Row>& actual, const std::string& what) {
  ASSERT_EQ(expected.size(), actual.size()) << what << ": row count differs";
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].size(), actual[i].size()) << what << " row " << i;
    for (size_t j = 0; j < expected[i].size(); ++j) {
      EXPECT_TRUE(expected[i][j].StructurallyEquals(actual[i][j]))
          << what << " row " << i << " col " << j << ": "
          << expected[i][j].ToString() << " vs " << actual[i][j].ToString();
    }
  }
}

void ExpectSameEnv(const VariableEnv& expected, VariableEnv& actual,
                   const std::set<std::string>& dead_fetch_vars) {
  for (const std::string& name : expected.LocalNames()) {
    // Fetch variables are dead after the loop by the applicability contract
    // (AGG109) — the rewrite does not reproduce their final values, exactly
    // as in the scalar-aggregate path.
    if (name.rfind("@@", 0) == 0 || dead_fetch_vars.count(name) != 0) {
      continue;
    }
    auto before = expected.Get(name);
    ASSERT_OK(before.status());
    ASSERT_TRUE(actual.Has(name)) << name;
    auto after = actual.Get(name);
    ASSERT_OK(after.status());
    EXPECT_TRUE(before->StructurallyEquals(*after))
        << name << ": " << before->ToString() << " vs " << after->ToString();
  }
}

/// One interpreted-vs-rewritten equivalence run: seeds a fresh database with
/// `setup`, runs `program` as-is, restores every table in `tables` to its
/// seeded contents, rewrites the block, runs the rewritten copy, and
/// requires bit-identical environment and table contents. Returns the
/// rewrite report for family/note assertions.
AggifyReport RunEquivalence(const Axis& axis, const std::string& setup,
                            const std::string& program,
                            const std::vector<std::string>& tables,
                            const std::set<std::string>& fetch_vars) {
  SCOPED_TRACE(AxisName(axis));
  EngineOptions options = OptionsFor(axis);
  Database db;
  Session session(&db, options);
  EXPECT_OK(session.RunSql(setup).status());

  std::vector<std::vector<Row>> seeded;
  for (const auto& t : tables) seeded.push_back(RowsOf(&db, t));

  auto parsed = ParseStatements(program);
  EXPECT_OK(parsed.status());
  auto* block = static_cast<BlockStmt*>(parsed->get());
  StmtPtr rewritten_owner = block->Clone();
  auto* rewritten = static_cast<BlockStmt*>(rewritten_owner.get());

  auto original_env = RunBlockStmt(&session, *block);
  EXPECT_OK(original_env.status());
  std::vector<std::vector<Row>> original_rows;
  for (const auto& t : tables) original_rows.push_back(RowsOf(&db, t));

  // Reset persistent state to loop-entry contents before the rewritten run.
  for (size_t i = 0; i < tables.size(); ++i) {
    auto t = db.catalog().GetTable(tables[i]);
    EXPECT_OK(t.status());
    (*t)->RestoreRows(seeded[i]);
  }

  Aggify aggify(&db, options);
  auto report = aggify.RewriteBlock(rewritten);
  EXPECT_OK(report.status());
  AssertNoDroppedDiagnostics(*report);

  auto rewritten_env = RunBlockStmt(&session, *rewritten);
  EXPECT_OK(rewritten_env.status());
  for (size_t i = 0; i < tables.size(); ++i) {
    ExpectSameRows(original_rows[i], RowsOf(&db, tables[i]), tables[i]);
  }
  ExpectSameEnv(**original_env, **rewritten_env, fetch_vars);
  return *report;
}

// ---------------------------------------------------------------------------
// Family a: append-only INSERT body -> INSERT ... SELECT.
// ---------------------------------------------------------------------------

constexpr char kInsertSetup[] = R"(
  CREATE TABLE src (k INT, v INT);
  CREATE TABLE sink (a INT, b INT);
  INSERT INTO src VALUES (1, 10), (2, -3), (3, 25), (4, 0), (5, 25), (6, 7);
  INSERT INTO sink VALUES (99, 99);
)";

constexpr char kInsertLoop[] = R"(
  DECLARE @k INT;
  DECLARE @v INT;
  DECLARE c CURSOR FOR SELECT k, v FROM src WHERE v >= 0 ORDER BY k;
  OPEN c;
  FETCH NEXT FROM c INTO @k, @v;
  WHILE @@FETCH_STATUS = 0
  BEGIN
    INSERT INTO sink VALUES (@k, @v * 2 + 1);
    FETCH NEXT FROM c INTO @k, @v;
  END
  CLOSE c;
  DEALLOCATE c;
)";

TEST(TableEffectsRewrite, InsertLoopBitIdenticalAcrossAxes) {
  for (const Axis& axis : kAxes) {
    AggifyReport report =
        RunEquivalence(axis, kInsertSetup, kInsertLoop, {"src", "sink"},
                       {"@k", "@v"});
    ASSERT_EQ(report.loops_rewritten, 1)
        << (report.skipped.empty() ? "no skip recorded"
                                   : report.skipped[0].ToString());
    EXPECT_EQ(report.rewrites[0].family, RewriteFamily::kDmlInsert);
    EXPECT_EQ(report.rewrites[0].dml_table, "sink");
    EXPECT_TRUE(HasNote(report, DiagCode::kDmlInsertRewritten));
  }
}

TEST(TableEffectsRewrite, GuardedInsertLoopBitIdentical) {
  // The IF guard becomes a WHERE predicate on the rewritten SELECT.
  std::string program = R"(
    DECLARE @k INT;
    DECLARE @v INT;
    DECLARE c CURSOR FOR SELECT k, v FROM src ORDER BY k;
    OPEN c;
    FETCH NEXT FROM c INTO @k, @v;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      IF @v > 5
        INSERT INTO sink VALUES (@k, @v - @k);
      FETCH NEXT FROM c INTO @k, @v;
    END
    CLOSE c;
    DEALLOCATE c;
  )";
  for (const Axis& axis : kAxes) {
    AggifyReport report =
        RunEquivalence(axis, kInsertSetup, program, {"src", "sink"},
                       {"@k", "@v"});
    ASSERT_EQ(report.loops_rewritten, 1);
    EXPECT_EQ(report.rewrites[0].family, RewriteFamily::kDmlInsert);
    EXPECT_TRUE(HasNote(report, DiagCode::kDmlInsertRewritten));
  }
}

// ---------------------------------------------------------------------------
// Family b: key-equality accumulating UPDATE -> one set-oriented UPDATE.
// ---------------------------------------------------------------------------

constexpr char kUpdateSetup[] = R"(
  CREATE TABLE acct (id INT, bal INT);
  CREATE TABLE txn (acct_id INT, amt INT);
  INSERT INTO acct VALUES (1, 100), (2, 200), (3, 300), (4, 400);
  INSERT INTO txn VALUES (1, 10), (2, -5), (1, 7), (3, 0), (1, 2),
                         (7, 999), (2, NULL);
)";

constexpr char kUpdateLoop[] = R"(
  DECLARE @i INT;
  DECLARE @a INT;
  DECLARE c CURSOR FOR SELECT acct_id, amt FROM txn;
  OPEN c;
  FETCH NEXT FROM c INTO @i, @a;
  WHILE @@FETCH_STATUS = 0
  BEGIN
    UPDATE acct SET bal = bal + @a WHERE id = @i;
    FETCH NEXT FROM c INTO @i, @a;
  END
  CLOSE c;
  DEALLOCATE c;
)";

TEST(TableEffectsRewrite, UpdateLoopBitIdenticalAcrossAxes) {
  // Exercises repeated keys (accumulation over id 1), an unmatched key
  // (id 7 updates nothing), and a NULL delta (id 2's balance is poisoned to
  // NULL exactly as the sequential loop leaves it).
  for (const Axis& axis : kAxes) {
    AggifyReport report =
        RunEquivalence(axis, kUpdateSetup, kUpdateLoop, {"acct", "txn"},
                       {"@i", "@a"});
    ASSERT_EQ(report.loops_rewritten, 1)
        << (report.skipped.empty() ? "no skip recorded"
                                   : report.skipped[0].ToString());
    EXPECT_EQ(report.rewrites[0].family, RewriteFamily::kDmlUpdate);
    EXPECT_EQ(report.rewrites[0].dml_table, "acct");
    EXPECT_TRUE(HasNote(report, DiagCode::kDmlUpdateRewritten));
  }
}

TEST(TableEffectsRewrite, SubtractingUpdateLoopBitIdentical) {
  std::string program = R"(
    DECLARE @i INT;
    DECLARE @a INT;
    DECLARE c CURSOR FOR SELECT acct_id, amt FROM txn WHERE amt IS NOT NULL;
    OPEN c;
    FETCH NEXT FROM c INTO @i, @a;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      UPDATE acct SET bal = bal - @a WHERE id = @i;
      FETCH NEXT FROM c INTO @i, @a;
    END
    CLOSE c;
    DEALLOCATE c;
  )";
  for (const Axis& axis : kAxes) {
    AggifyReport report =
        RunEquivalence(axis, kUpdateSetup, program, {"acct", "txn"},
                       {"@i", "@a"});
    ASSERT_EQ(report.loops_rewritten, 1);
    EXPECT_EQ(report.rewrites[0].family, RewriteFamily::kDmlUpdate);
  }
}

// ---------------------------------------------------------------------------
// Early exit: counted BREAK -> TOP-N prefix bound on the derived query.
// ---------------------------------------------------------------------------

constexpr char kEarlyExitSetup[] = R"(
  CREATE TABLE data (k INT, v INT);
  INSERT INTO data VALUES (1, 50), (2, 40), (3, 60), (4, 10), (5, 70),
                          (6, 20), (7, 30), (8, 80);
)";

constexpr char kEarlyExitLoop[] = R"(
  DECLARE @s INT = 0;
  DECLARE @n INT = 0;
  DECLARE @v INT;
  DECLARE c CURSOR FOR SELECT v FROM data ORDER BY v DESC;
  OPEN c;
  FETCH NEXT FROM c INTO @v;
  WHILE @@FETCH_STATUS = 0
  BEGIN
    SET @s = @s + @v;
    SET @n = @n + 1;
    IF @n >= 3
      BREAK;
    FETCH NEXT FROM c INTO @v;
  END
  CLOSE c;
  DEALLOCATE c;
)";

TEST(EarlyExitRewrite, CountedBreakBoundedAndBitIdentical) {
  for (const Axis& axis : kAxes) {
    AggifyReport report =
        RunEquivalence(axis, kEarlyExitSetup, kEarlyExitLoop, {"data"}, {"@v"});
    ASSERT_EQ(report.loops_rewritten, 1)
        << (report.skipped.empty() ? "no skip recorded"
                                   : report.skipped[0].ToString());
    EXPECT_EQ(report.rewrites[0].family, RewriteFamily::kScalarAggregate);
    EXPECT_TRUE(report.rewrites[0].early_exit_bounded);
    // A prefix-bounded scan is inherently serial.
    EXPECT_FALSE(report.rewrites[0].parallel_eligible);
    EXPECT_TRUE(HasNote(report, DiagCode::kEarlyExitBounded));
  }
}

TEST(EarlyExitRewrite, BoundCanBeDisabledByOption) {
  EngineOptions options;
  options.rewrite.bound_early_exit = false;
  Database db;
  Session session(&db, options);
  ASSERT_OK(session.RunSql(kEarlyExitSetup).status());
  ASSERT_OK_AND_ASSIGN(StmtPtr parsed, ParseStatements(kEarlyExitLoop));
  auto* block = static_cast<BlockStmt*>(parsed.get());
  Aggify aggify(&db, options);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteBlock(block));
  ASSERT_EQ(report.loops_rewritten, 1);
  EXPECT_FALSE(report.rewrites[0].early_exit_bounded);
  EXPECT_FALSE(HasNote(report, DiagCode::kEarlyExitBounded));
}

TEST(EarlyExitRewrite, NonMonotoneBreakStaysUnboundedButRewritten) {
  // Equality exit: a NULL or skipped-over counter value would never fire
  // under TOP truncation, so the proof refuses (AGG406) and the loop is
  // rewritten without a bound — still bit-identical, the aggregate's exit
  // latch handles the BREAK.
  std::string program = R"(
    DECLARE @s INT = 0;
    DECLARE @v INT;
    DECLARE c CURSOR FOR SELECT v FROM data ORDER BY v;
    OPEN c;
    FETCH NEXT FROM c INTO @v;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      SET @s = @s + 1;
      IF @s = 3
        BREAK;
      FETCH NEXT FROM c INTO @v;
    END
    CLOSE c;
    DEALLOCATE c;
  )";
  for (const Axis& axis : kAxes) {
    AggifyReport report =
        RunEquivalence(axis, kEarlyExitSetup, program, {"data"}, {"@v"});
    ASSERT_EQ(report.loops_rewritten, 1);
    EXPECT_FALSE(report.rewrites[0].early_exit_bounded);
    EXPECT_TRUE(HasNote(report, DiagCode::kNonMonotoneExit));
    EXPECT_FALSE(HasNote(report, DiagCode::kEarlyExitBounded));
  }
}

TEST(EarlyExitRewrite, ConditionalIncrementRefusesBound) {
  // The counter only grows on some iterations: the per-iteration step is
  // not a provable lower bound, so no prefix length is sound.
  std::string program = R"(
    DECLARE @s INT = 0;
    DECLARE @n INT = 0;
    DECLARE @v INT;
    DECLARE c CURSOR FOR SELECT v FROM data ORDER BY v;
    OPEN c;
    FETCH NEXT FROM c INTO @v;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      SET @s = @s + @v;
      IF @v > 30
        SET @n = @n + 1;
      IF @n >= 2
        BREAK;
      FETCH NEXT FROM c INTO @v;
    END
    CLOSE c;
    DEALLOCATE c;
  )";
  for (const Axis& axis : kAxes) {
    AggifyReport report =
        RunEquivalence(axis, kEarlyExitSetup, program, {"data"}, {"@v"});
    ASSERT_EQ(report.loops_rewritten, 1);
    EXPECT_FALSE(report.rewrites[0].early_exit_bounded);
    EXPECT_TRUE(HasNote(report, DiagCode::kNonMonotoneExit));
  }
}

// ---------------------------------------------------------------------------
// Adversarial refusals: the analysis must prove, not pattern-match.
// ---------------------------------------------------------------------------

TEST(TableEffectsRefusal, InsertIntoScannedTableRefusedAsSelfRead) {
  // Halloween self-dependence: Δ writes the table Q reads. Re-executing Q
  // set-orientedly would observe the loop's own inserts.
  Database db;
  Session session(&db);
  ASSERT_OK(session
                .RunSql("CREATE TABLE t (k INT, v INT);"
                        "INSERT INTO t VALUES (1, 10), (2, 20);")
                .status());
  std::string program = R"(
    DECLARE @k INT;
    DECLARE @v INT;
    DECLARE c CURSOR FOR SELECT k, v FROM t;
    OPEN c;
    FETCH NEXT FROM c INTO @k, @v;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      INSERT INTO t VALUES (@k + 100, @v);
      FETCH NEXT FROM c INTO @k, @v;
    END
    CLOSE c;
    DEALLOCATE c;
  )";
  ASSERT_OK_AND_ASSIGN(StmtPtr parsed, ParseStatements(program));
  auto* block = static_cast<BlockStmt*>(parsed.get());
  Aggify aggify(&db);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteBlock(block));
  EXPECT_EQ(report.loops_rewritten, 0);
  ASSERT_EQ(report.skipped.size(), 1u);
  AssertNoDroppedDiagnostics(report);
  EXPECT_EQ(report.skipped[0].code, DiagCode::kPersistentInsert);
  EXPECT_TRUE(DetailHas(report.skip_details[0], DiagCode::kSelfReadAfterWrite))
      << "recovery refusal missing from skip_details";
}

TEST(TableEffectsRefusal, UdfTransitivelyReadingTargetRefused) {
  // The INSERT's value calls a read-only UDF; purity admits it, but its
  // read set (resolved through the call-graph fixpoint) includes the write
  // target — the set-oriented rewrite would observe its own inserts.
  Database db;
  Session session(&db);
  ASSERT_OK(session
                .RunSql("CREATE TABLE src (k INT, v INT);"
                        "CREATE TABLE sink (a INT, b INT);"
                        "INSERT INTO src VALUES (1, 10), (2, 20);"
                        "CREATE FUNCTION sink_count(@x INT) RETURNS INT AS "
                        "BEGIN RETURN (SELECT COUNT(*) FROM sink WHERE a < "
                        "@x); END")
                .status());
  std::string program = R"(
    DECLARE @k INT;
    DECLARE @v INT;
    DECLARE c CURSOR FOR SELECT k, v FROM src;
    OPEN c;
    FETCH NEXT FROM c INTO @k, @v;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      INSERT INTO sink VALUES (@k, sink_count(@v));
      FETCH NEXT FROM c INTO @k, @v;
    END
    CLOSE c;
    DEALLOCATE c;
  )";
  ASSERT_OK_AND_ASSIGN(StmtPtr parsed, ParseStatements(program));
  auto* block = static_cast<BlockStmt*>(parsed.get());
  Aggify aggify(&db);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteBlock(block));
  EXPECT_EQ(report.loops_rewritten, 0);
  ASSERT_EQ(report.skipped.size(), 1u);
  AssertNoDroppedDiagnostics(report);
  EXPECT_EQ(report.skipped[0].code, DiagCode::kPersistentInsert);
  EXPECT_TRUE(DetailHas(report.skip_details[0], DiagCode::kSelfReadAfterWrite))
      << "transitive self-read through the UDF was not detected";
}

TEST(TableEffectsRefusal, WritingUdfKeepsFullRejectionList) {
  // A UDF with (transitive) persistent DML fails the purity gate, so the
  // loop is not DML-only and recovery never runs — but skip_details must
  // still carry BOTH violations in source order.
  Database db;
  Session session(&db);
  ASSERT_OK(session
                .RunSql("CREATE TABLE src (k INT, v INT);"
                        "CREATE TABLE sink (a INT, b INT);"
                        "CREATE TABLE audit (x INT);"
                        "INSERT INTO src VALUES (1, 10);"
                        "CREATE FUNCTION log_it(@x INT) RETURNS INT AS BEGIN "
                        "INSERT INTO audit VALUES (@x); RETURN @x; END "
                        "CREATE FUNCTION wrap(@x INT) RETURNS INT AS BEGIN "
                        "RETURN log_it(@x) + 1; END")
                .status());
  std::string program = R"(
    DECLARE @k INT;
    DECLARE @v INT;
    DECLARE c CURSOR FOR SELECT k, v FROM src;
    OPEN c;
    FETCH NEXT FROM c INTO @k, @v;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      INSERT INTO sink VALUES (@k, wrap(@v));
      FETCH NEXT FROM c INTO @k, @v;
    END
    CLOSE c;
    DEALLOCATE c;
  )";
  ASSERT_OK_AND_ASSIGN(StmtPtr parsed, ParseStatements(program));
  auto* block = static_cast<BlockStmt*>(parsed.get());
  Aggify aggify(&db);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteBlock(block));
  EXPECT_EQ(report.loops_rewritten, 0);
  ASSERT_EQ(report.skipped.size(), 1u);
  AssertNoDroppedDiagnostics(report);
  EXPECT_EQ(report.skipped[0].code, DiagCode::kPersistentInsert);
  EXPECT_TRUE(DetailHas(report.skip_details[0], DiagCode::kImpureUdfCall))
      << "the impure-call violation was dropped from skip_details";
  EXPECT_GE(report.skip_details[0].size(), 2u);
}

TEST(TableEffectsRefusal, DeleteBodyRefusedWithTypedShape) {
  Database db;
  Session session(&db);
  ASSERT_OK(session
                .RunSql("CREATE TABLE src (k INT);"
                        "CREATE TABLE sink (a INT);"
                        "INSERT INTO src VALUES (1), (2);"
                        "INSERT INTO sink VALUES (1), (2), (3);")
                .status());
  std::string program = R"(
    DECLARE @k INT;
    DECLARE c CURSOR FOR SELECT k FROM src;
    OPEN c;
    FETCH NEXT FROM c INTO @k;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      DELETE FROM sink WHERE a = @k;
      FETCH NEXT FROM c INTO @k;
    END
    CLOSE c;
    DEALLOCATE c;
  )";
  ASSERT_OK_AND_ASSIGN(StmtPtr parsed, ParseStatements(program));
  auto* block = static_cast<BlockStmt*>(parsed.get());
  Aggify aggify(&db);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteBlock(block));
  EXPECT_EQ(report.loops_rewritten, 0);
  ASSERT_EQ(report.skipped.size(), 1u);
  AssertNoDroppedDiagnostics(report);
  EXPECT_EQ(report.skipped[0].code, DiagCode::kPersistentDelete);
  EXPECT_TRUE(DetailHas(report.skip_details[0], DiagCode::kDmlShapeUnsupported))
      << "DELETE bodies are outside both rewrite families";
}

TEST(TableEffectsRefusal, NonAccumulatingUpdateRefusedKeyDisjoint) {
  // Overwrite (bal = @a) rather than fold (bal = bal + @a): last-writer-wins
  // depends on iteration order, which the grouped rewrite cannot reproduce.
  Database db;
  Session session(&db);
  ASSERT_OK(session
                .RunSql("CREATE TABLE acct (id INT, bal INT);"
                        "CREATE TABLE txn (acct_id INT, amt INT);"
                        "INSERT INTO acct VALUES (1, 100);"
                        "INSERT INTO txn VALUES (1, 10), (1, 20);")
                .status());
  std::string program = R"(
    DECLARE @i INT;
    DECLARE @a INT;
    DECLARE c CURSOR FOR SELECT acct_id, amt FROM txn;
    OPEN c;
    FETCH NEXT FROM c INTO @i, @a;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      UPDATE acct SET bal = @a WHERE id = @i;
      FETCH NEXT FROM c INTO @i, @a;
    END
    CLOSE c;
    DEALLOCATE c;
  )";
  ASSERT_OK_AND_ASSIGN(StmtPtr parsed, ParseStatements(program));
  auto* block = static_cast<BlockStmt*>(parsed.get());
  Aggify aggify(&db);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteBlock(block));
  EXPECT_EQ(report.loops_rewritten, 0);
  ASSERT_EQ(report.skipped.size(), 1u);
  AssertNoDroppedDiagnostics(report);
  EXPECT_EQ(report.skipped[0].code, DiagCode::kPersistentUpdate);
  EXPECT_TRUE(
      DetailHas(report.skip_details[0], DiagCode::kNonKeyDisjointUpdate));
}

TEST(TableEffectsRefusal, NestedDmlLoopInnerRecoveredOuterRefused) {
  // Innermost-first: the inner INSERT loop is recovered (family a); the
  // outer loop's body then holds a guarded persistent write, which the
  // applicability check must still see (it is not an aggregate body), and
  // the recovery pass refuses the non-DML shape. End-to-end results stay
  // bit-identical because the inner rewrite is executed per outer row.
  for (const Axis& axis : kAxes) {
    std::string setup = R"(
      CREATE TABLE outer_t (g INT);
      CREATE TABLE inner_t (k INT, v INT);
      CREATE TABLE sink (a INT, b INT);
      INSERT INTO outer_t VALUES (1), (2), (3);
      INSERT INTO inner_t VALUES (10, 1), (20, 2);
    )";
    std::string program = R"(
      DECLARE @g INT;
      DECLARE @k INT;
      DECLARE @v INT;
      DECLARE oc CURSOR FOR SELECT g FROM outer_t;
      OPEN oc;
      FETCH NEXT FROM oc INTO @g;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        DECLARE ic CURSOR FOR SELECT k, v FROM inner_t;
        OPEN ic;
        FETCH NEXT FROM ic INTO @k, @v;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          INSERT INTO sink VALUES (@k * @g, @v + @g);
          FETCH NEXT FROM ic INTO @k, @v;
        END
        CLOSE ic;
        DEALLOCATE ic;
        FETCH NEXT FROM oc INTO @g;
      END
      CLOSE oc;
      DEALLOCATE oc;
    )";
    AggifyReport report = RunEquivalence(
        axis, setup, program, {"outer_t", "inner_t", "sink"}, {"@k", "@v"});
    ASSERT_EQ(report.loops_rewritten, 1);
    EXPECT_EQ(report.rewrites[0].family, RewriteFamily::kDmlInsert);
    EXPECT_EQ(report.rewrites[0].dml_table, "sink");
    ASSERT_EQ(report.skipped.size(), 1u);
    EXPECT_EQ(report.skipped[0].code, DiagCode::kPersistentInsert)
        << "outer loop must still be flagged for the guarded inner write";
    EXPECT_TRUE(
        DetailHas(report.skip_details[0], DiagCode::kDmlShapeUnsupported));
  }
}

TEST(TableEffectsRefusal, MultiStatementDmlBodyRefused) {
  Database db;
  Session session(&db);
  ASSERT_OK(session
                .RunSql("CREATE TABLE src (k INT);"
                        "CREATE TABLE sink (a INT);"
                        "INSERT INTO src VALUES (1), (2);")
                .status());
  std::string program = R"(
    DECLARE @k INT;
    DECLARE c CURSOR FOR SELECT k FROM src;
    OPEN c;
    FETCH NEXT FROM c INTO @k;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      INSERT INTO sink VALUES (@k);
      INSERT INTO sink VALUES (@k + 1);
      FETCH NEXT FROM c INTO @k;
    END
    CLOSE c;
    DEALLOCATE c;
  )";
  ASSERT_OK_AND_ASSIGN(StmtPtr parsed, ParseStatements(program));
  auto* block = static_cast<BlockStmt*>(parsed.get());
  Aggify aggify(&db);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteBlock(block));
  EXPECT_EQ(report.loops_rewritten, 0);
  ASSERT_EQ(report.skipped.size(), 1u);
  AssertNoDroppedDiagnostics(report);
  EXPECT_TRUE(
      DetailHas(report.skip_details[0], DiagCode::kDmlShapeUnsupported));
}

TEST(TableEffectsRefusal, RecoveryDisabledByOption) {
  Database db;
  EngineOptions options;
  options.rewrite.rewrite_dml_bodies = false;
  Session session(&db, options);
  ASSERT_OK(session
                .RunSql("CREATE TABLE src (k INT);"
                        "CREATE TABLE sink (a INT);"
                        "INSERT INTO src VALUES (1), (2);")
                .status());
  std::string program = R"(
    DECLARE @k INT;
    DECLARE c CURSOR FOR SELECT k FROM src;
    OPEN c;
    FETCH NEXT FROM c INTO @k;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      INSERT INTO sink VALUES (@k);
      FETCH NEXT FROM c INTO @k;
    END
    CLOSE c;
    DEALLOCATE c;
  )";
  ASSERT_OK_AND_ASSIGN(StmtPtr parsed, ParseStatements(program));
  auto* block = static_cast<BlockStmt*>(parsed.get());
  Aggify aggify(&db, options);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteBlock(block));
  EXPECT_EQ(report.loops_rewritten, 0);
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(report.skipped[0].code, DiagCode::kPersistentInsert);
  AssertNoDroppedDiagnostics(report);
}

// ---------------------------------------------------------------------------
// TableEffectAnalysis unit behavior: call-graph fixpoint and opacity.
// ---------------------------------------------------------------------------

TEST(TableEffectAnalysis, TransitiveEffectsReachFixpoint) {
  Database db;
  Session session(&db);
  ASSERT_OK(session
                .RunSql("CREATE TABLE audit (x INT);"
                        "CREATE TABLE base (y INT);"
                        "CREATE FUNCTION leaf(@x INT) RETURNS INT AS BEGIN "
                        "INSERT INTO audit VALUES (@x); RETURN @x; END "
                        "CREATE FUNCTION mid(@x INT) RETURNS INT AS BEGIN "
                        "RETURN leaf(@x) + (SELECT COUNT(*) FROM base); END "
                        "CREATE FUNCTION top_fn(@x INT) RETURNS INT AS BEGIN "
                        "RETURN mid(@x); END")
                .status());
  TableEffectAnalysis fx = TableEffectAnalysis::Build(&db.catalog(), nullptr);
  TableEffectSet leaf = fx.OfFunction("leaf");
  EXPECT_EQ(leaf.writes.count("audit"), 1u);
  TableEffectSet top = fx.OfFunction("top_fn");
  EXPECT_EQ(top.writes.count("audit"), 1u)
      << "writes must propagate through two call levels";
  EXPECT_EQ(top.reads.count("base"), 1u);
  EXPECT_FALSE(top.opaque);
}

TEST(TableEffectAnalysis, UnknownFunctionIsOpaque) {
  Database db;
  TableEffectAnalysis fx = TableEffectAnalysis::Build(&db.catalog(), nullptr);
  TableEffectSet unknown = fx.OfFunction("mystery");
  EXPECT_TRUE(unknown.opaque);
}

TEST(TableEffectAnalysis, RecursiveFunctionsTerminate) {
  Database db;
  Session session(&db);
  ASSERT_OK(session
                .RunSql("CREATE TABLE t (x INT);"
                        "CREATE FUNCTION ping(@x INT) RETURNS INT AS BEGIN "
                        "IF @x <= 0 RETURN (SELECT COUNT(*) FROM t); "
                        "RETURN pong(@x - 1); END "
                        "CREATE FUNCTION pong(@x INT) RETURNS INT AS BEGIN "
                        "RETURN ping(@x); END")
                .status());
  TableEffectAnalysis fx = TableEffectAnalysis::Build(&db.catalog(), nullptr);
  TableEffectSet ping = fx.OfFunction("ping");
  EXPECT_EQ(ping.reads.count("t"), 1u);
  EXPECT_TRUE(ping.writes.empty());
}

// ---------------------------------------------------------------------------
// AnalyzeEarlyExit unit behavior on parsed bodies.
// ---------------------------------------------------------------------------

Result<const BlockStmt*> LoopBodyOf(const StmtPtr& parsed) {
  const auto* block = static_cast<const BlockStmt*>(parsed.get());
  for (const auto& s : block->statements) {
    if (s->kind == StmtKind::kWhile) {
      return static_cast<const BlockStmt*>(
          static_cast<const WhileStmt&>(*s).body.get());
    }
  }
  return Status::NotFound("no WHILE in parsed program");
}

TEST(AnalyzeEarlyExitUnit, CanonicalCountedExitIsBounded) {
  ASSERT_OK_AND_ASSIGN(
      StmtPtr parsed,
      ParseStatements("WHILE 1 = 1 BEGIN SET @n = @n + 2; "
                      "IF @n >= 10 BREAK; END"));
  ASSERT_OK_AND_ASSIGN(const BlockStmt* body, LoopBodyOf(parsed));
  EarlyExitInfo info = AnalyzeEarlyExit(*body, {});
  EXPECT_TRUE(info.has_break);
  EXPECT_TRUE(info.bounded) << info.reason;
  EXPECT_EQ(info.counter, "@n");
  EXPECT_EQ(info.limit, 10);
  EXPECT_EQ(info.step, 2);
}

TEST(AnalyzeEarlyExitUnit, FetchVarCounterRefused) {
  ASSERT_OK_AND_ASSIGN(
      StmtPtr parsed,
      ParseStatements("WHILE 1 = 1 BEGIN SET @n = @n + 1; "
                      "IF @n >= 10 BREAK; END"));
  ASSERT_OK_AND_ASSIGN(const BlockStmt* body, LoopBodyOf(parsed));
  EarlyExitInfo info = AnalyzeEarlyExit(*body, {"@n"});
  EXPECT_TRUE(info.has_break);
  EXPECT_FALSE(info.bounded)
      << "a FETCH-overwritten counter is not monotone";
}

TEST(AnalyzeEarlyExitUnit, EqualityExitRefused) {
  ASSERT_OK_AND_ASSIGN(
      StmtPtr parsed,
      ParseStatements("WHILE 1 = 1 BEGIN SET @n = @n + 1; "
                      "IF @n = 10 BREAK; END"));
  ASSERT_OK_AND_ASSIGN(const BlockStmt* body, LoopBodyOf(parsed));
  EarlyExitInfo info = AnalyzeEarlyExit(*body, {});
  EXPECT_TRUE(info.has_break);
  EXPECT_FALSE(info.bounded);
  EXPECT_FALSE(info.reason.empty());
}

}  // namespace
}  // namespace aggify
