// Cursor-session lifecycle tests over the server stack (PR 10): incremental
// FETCH vs one-shot bit-identity across the batch and DOP axes, TTL
// eviction under an injected clock, bounded-capacity rejection, mid-fetch
// cancellation and deadlines, session teardown (invariant 13: a cursor
// never outlives its session), and cross-session plan-cache reuse.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "server/server.h"
#include "test_util.h"

namespace aggify {
namespace {

/// 120 rows with repeating groups — enough for multi-page fetches and
/// non-trivial aggregation.
std::string DataScript() {
  std::string script = "CREATE TABLE t (k INT, v INT, s VARCHAR);\n";
  for (int i = 0; i < 120; ++i) {
    script += "INSERT INTO t VALUES (" + std::to_string(i % 7) + ", " +
              std::to_string(i * 3 + 1) + ", 'r" + std::to_string(i % 11) +
              "');\n";
  }
  return script;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<EngineService>(&db_);
    ASSERT_OK(service_->RunSql(DataScript()));
  }

  /// A server over the shared service whose clock is `now_ms_` (advanced by
  /// tests to trigger TTL sweeps deterministically).
  Server MakeServer(Server::Config config = Server::Config()) {
    config.clock_ms = [this] { return now_ms_; };
    return Server(service_.get(), config);
  }

  Database db_;
  std::unique_ptr<EngineService> service_;
  int64_t now_ms_ = 0;
};

void ExpectSameResult(const QueryResult& a, const QueryResult& b) {
  ASSERT_EQ(a.rows.size(), b.rows.size());
  ASSERT_EQ(a.schema.num_columns(), b.schema.num_columns());
  for (size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_TRUE(RowsEqual(a.rows[i], b.rows[i]))
        << "row " << i << ": " << RowToString(a.rows[i]) << " vs "
        << RowToString(b.rows[i]);
  }
}

// ---- incremental fetch == one-shot, across the batch and DOP axes ----

TEST_F(ServerTest, FetchAllIsBitIdenticalToOneShot) {
  const char* queries[] = {
      "SELECT k, v, s FROM t WHERE v > 40",
      "SELECT k, SUM(v), COUNT(*) FROM t GROUP BY k ORDER BY k",
      "SELECT s, MAX(v) FROM t WHERE k < 5 GROUP BY s ORDER BY s",
  };
  for (bool batch : {false, true}) {
    for (int dop : {1, 4}) {
      EngineOptions options;
      options.execution.enable_batch = batch;
      options.execution.degree_of_parallelism = dop;
      ClientSession oneshot(service_.get(), options);
      ClientSession paged(service_.get(), options);
      for (const char* sql : queries) {
        SCOPED_TRACE(std::string(sql) + " batch=" + std::to_string(batch) +
                     " dop=" + std::to_string(dop));
        ASSERT_OK_AND_ASSIGN(QueryResult direct, oneshot.Query(sql));
        ASSERT_OK_AND_ASSIGN(auto cursor, paged.Declare(sql));
        // Tiny pages force many FETCH increments.
        ASSERT_OK_AND_ASSIGN(QueryResult drained, cursor->Drain(7));
        ExpectSameResult(direct, drained);
      }
    }
  }
}

TEST_F(ServerTest, FetchPagesArriveInOrderWithExactCounts) {
  ClientSession session(service_.get(), EngineOptions());
  ASSERT_OK_AND_ASSIGN(auto cursor,
                       session.Declare("SELECT v FROM t ORDER BY v"));
  int64_t seen = 0;
  int64_t last = -1;
  while (!cursor->done()) {
    ASSERT_OK_AND_ASSIGN(QueryPage page, cursor->Fetch(13));
    EXPECT_EQ(page.first_row_index, seen);
    for (const Row& row : page.rows) {
      EXPECT_GT(row[0].int_value(), last);
      last = row[0].int_value();
    }
    seen += static_cast<int64_t>(page.rows.size());
  }
  EXPECT_EQ(seen, 120);
  EXPECT_EQ(cursor->rows_fetched(), 120);
  // The exhausted cursor reports a sticky done page.
  ASSERT_OK_AND_ASSIGN(QueryPage after, cursor->Fetch(5));
  EXPECT_TRUE(after.done);
  EXPECT_TRUE(after.rows.empty());
}

// ---- TTL eviction under the injected clock ----

TEST_F(ServerTest, IdleCursorIsEvictedAfterTtl) {
  Server::Config config;
  config.cursors.idle_ttl_ms = 1000;
  Server server = MakeServer(config);

  ASSERT_EQ(server.Handle("OPEN"), "OK 1\n");
  std::string reply = server.Handle("DECLARE 1 SELECT v FROM t");
  ASSERT_EQ(reply, "CURSOR 1\n");

  // Keep the cursor warm past one TTL: FETCHes re-arm the idle clock.
  now_ms_ += 900;
  EXPECT_EQ(server.Handle("FETCH 1 1 4").substr(0, 4), "ROW\t");
  now_ms_ += 900;
  EXPECT_EQ(server.Handle("FETCH 1 1 4").substr(0, 4), "ROW\t");

  // Now let it expire; the next request's sweep evicts it.
  now_ms_ += 1001;
  reply = server.Handle("FETCH 1 1 4");
  EXPECT_EQ(reply.substr(0, 14), "ERR not_found ") << reply;
  EXPECT_EQ(server.cursors().counters().evicted, 1);
  EXPECT_EQ(server.cursors().open_cursors(), 0);
}

TEST_F(ServerTest, IdleSessionEvictionTearsDownItsCursors) {
  Server::Config config;
  config.sessions.idle_ttl_ms = 1000;
  config.cursors.idle_ttl_ms = 0;  // only the session TTL is in play
  Server server = MakeServer(config);

  ASSERT_EQ(server.Handle("OPEN"), "OK 1\n");
  ASSERT_EQ(server.Handle("DECLARE 1 SELECT v FROM t"), "CURSOR 1\n");
  ASSERT_EQ(server.sessions().open_sessions(), 1);
  ASSERT_EQ(server.cursors().open_cursors(), 1);

  // Invariant 13: evicting the session destroys its cursor too.
  now_ms_ += 1001;
  std::string reply = server.Handle("STATS");
  EXPECT_EQ(server.sessions().open_sessions(), 0);
  EXPECT_EQ(server.cursors().open_cursors(), 0);
  EXPECT_EQ(server.Handle("FETCH 1 1 4").substr(0, 14), "ERR not_found ");
}

// ---- bounded capacity ----

TEST_F(ServerTest, CursorRegistryRejectsBeyondCapacityUntilClose) {
  Server::Config config;
  config.cursors.max_cursors = 2;
  Server server = MakeServer(config);

  ASSERT_EQ(server.Handle("OPEN"), "OK 1\n");
  ASSERT_EQ(server.Handle("DECLARE 1 SELECT v FROM t"), "CURSOR 1\n");
  ASSERT_EQ(server.Handle("DECLARE 1 SELECT k FROM t"), "CURSOR 2\n");
  std::string reply = server.Handle("DECLARE 1 SELECT s FROM t");
  EXPECT_EQ(reply.substr(0, 23), "ERR resource_exhausted ") << reply;
  EXPECT_EQ(server.cursors().counters().rejected, 1);

  ASSERT_EQ(server.Handle("CLOSE 1 1"), "OK\n");
  EXPECT_EQ(server.Handle("DECLARE 1 SELECT s FROM t"), "CURSOR 3\n");
}

TEST_F(ServerTest, SessionTableRejectsBeyondCapacity) {
  Server::Config config;
  config.sessions.max_sessions = 1;
  Server server = MakeServer(config);

  ASSERT_EQ(server.Handle("OPEN"), "OK 1\n");
  std::string reply = server.Handle("OPEN");
  EXPECT_EQ(reply.substr(0, 23), "ERR resource_exhausted ") << reply;
  EXPECT_EQ(server.sessions().counters().rejected, 1);
  ASSERT_EQ(server.Handle("CLOSE 1"), "OK\n");
  EXPECT_EQ(server.Handle("OPEN"), "OK 2\n");
}

// ---- cancellation and deadlines mid-fetch ----

TEST_F(ServerTest, CancelBetweenFetchesStopsTheCursor) {
  ClientSession session(service_.get(), EngineOptions());
  ASSERT_OK_AND_ASSIGN(auto cursor, session.Declare("SELECT v FROM t"));
  ASSERT_OK_AND_ASSIGN(QueryPage first, cursor->Fetch(10));
  EXPECT_EQ(first.rows.size(), 10u);

  cursor->query_context()->Cancel();
  auto page = cursor->Fetch(10);
  ASSERT_FALSE(page.ok());
  EXPECT_TRUE(page.status().IsCancelled()) << page.status().ToString();
  // The failed fetch closed the cursor; it stays done.
  EXPECT_TRUE(cursor->done());
}

TEST_F(ServerTest, CursorDeadlineExpiresMidFetch) {
  ClientSession session(service_.get(), EngineOptions());
  ASSERT_OK_AND_ASSIGN(auto cursor,
                       session.Declare("SELECT v FROM t", /*deadline_ms=*/5));
  ASSERT_OK_AND_ASSIGN(QueryPage first, cursor->Fetch(10));
  EXPECT_FALSE(first.done);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auto page = cursor->Fetch(10);
  ASSERT_FALSE(page.ok());
  EXPECT_TRUE(page.status().IsTimeout()) << page.status().ToString();
}

TEST_F(ServerTest, ClosingABusyCursorDoomsItWithoutDestroying) {
  Server::Config config;
  Server server = MakeServer(config);
  ASSERT_EQ(server.Handle("OPEN"), "OK 1\n");
  ASSERT_EQ(server.Handle("DECLARE 1 SELECT v FROM t"), "CURSOR 1\n");

  // Simulate the mid-fetch state directly on the registry.
  ASSERT_OK_AND_ASSIGN(auto lease, server.cursors().Checkout(1, 1, now_ms_));
  // A second checkout of a busy cursor is refused.
  ASSERT_NOT_OK(server.cursors().Checkout(1, 1, now_ms_));
  // CLOSE while busy dooms it (and cancels its governance token).
  ASSERT_OK(server.cursors().Close(1, 1));
  EXPECT_TRUE(lease->query_context()->cancelled());
  EXPECT_EQ(server.cursors().open_cursors(), 1);  // still alive while leased
  lease = CursorRegistry::Lease();                // check-in destroys it
  EXPECT_EQ(server.cursors().open_cursors(), 0);
}

// ---- cross-session plan-cache reuse ----

TEST_F(ServerTest, SessionsWithSameOptionsShareCachedPlans) {
  Server server = MakeServer();
  ASSERT_EQ(server.Handle("OPEN dop=2 batch=1"), "OK 1\n");
  ASSERT_EQ(server.Handle("OPEN dop=2 batch=1"), "OK 2\n");

  const std::string sql = "SELECT k, SUM(v) FROM t GROUP BY k ORDER BY k";
  int64_t hits_before = service_->engine().plan_cache().hits();
  std::string first = server.Handle("QUERY 1 " + sql);
  std::string second = server.Handle("QUERY 2 " + sql);
  EXPECT_EQ(first, second);  // including byte-identical row rendering
  EXPECT_GT(service_->engine().plan_cache().hits(), hits_before);

  // A plan-affecting option difference must NOT share (Limits are excluded
  // from the fingerprint, so dop matters and timeout does not).
  ASSERT_EQ(server.Handle("OPEN dop=4 batch=1 timeout_ms=5000"), "OK 3\n");
  int64_t misses_before = service_->engine().plan_cache().misses();
  server.Handle("QUERY 3 " + sql);
  EXPECT_GT(service_->engine().plan_cache().misses(), misses_before);
}

// ---- protocol surface ----

TEST_F(ServerTest, ProtocolErrorsAreTyped) {
  Server server = MakeServer();
  EXPECT_EQ(server.Handle("FROB").substr(0, 21), "ERR invalid_argument ");
  EXPECT_EQ(server.Handle("QUERY 99 SELECT 1").substr(0, 14),
            "ERR not_found ");
  ASSERT_EQ(server.Handle("OPEN"), "OK 1\n");
  EXPECT_EQ(server.Handle("QUERY 1 SELEKT 1").substr(0, 16),
            "ERR parse_error ");
  EXPECT_EQ(server.Handle("FETCH 1 7 4").substr(0, 14), "ERR not_found ");
  EXPECT_EQ(server.Handle("OPEN frobs=1").substr(0, 21),
            "ERR invalid_argument ");
  // One client's parse error never kills the session.
  EXPECT_EQ(server.Handle("QUERY 1 SELECT COUNT(*) FROM t").substr(0, 6),
            "SCHEMA");
}

TEST_F(ServerTest, StatsRenderBothFormsWithSameCounters) {
  Server server = MakeServer();
  ASSERT_EQ(server.Handle("OPEN"), "OK 1\n");
  server.Handle("QUERY 1 SELECT COUNT(*) FROM t");
  std::string text = server.Handle("STATS");
  std::string json = server.Handle("STATS json");
  EXPECT_NE(text.find("sessions_open=1"), std::string::npos) << text;
  EXPECT_NE(json.find("\"sessions_open\": 1"), std::string::npos) << json;
  ServerStatsSnapshot snapshot = server.Stats();
  EXPECT_EQ(snapshot.sessions_open, 1);
  EXPECT_EQ(snapshot.sessions_opened, 1);
}

// ---- session memory budget ----

TEST_F(ServerTest, SessionMemoryBudgetBoundsConcurrentCursors) {
  EngineOptions options;
  options.limits.session_memory_limit_bytes = 1;  // absurdly small
  ClientSession session(service_.get(), options);
  // The cursor's plan state (scan batches, sort buffers) must charge the
  // session accountant and trip the budget.
  auto cursor = session.Declare("SELECT v FROM t ORDER BY v");
  Status st;
  if (cursor.ok()) {
    auto page = (*cursor)->Fetch(10);
    st = page.status();
  } else {
    st = cursor.status();
  }
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  // And the failure released everything it charged.
  EXPECT_EQ(session.accountant().used(), 0);
}

}  // namespace
}  // namespace aggify
