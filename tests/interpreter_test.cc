// Interpreter tests: control flow, cursors, temp tables, UDF invocation,
// error paths, and failure injection.
#include <gtest/gtest.h>

#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

class InterpreterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(&db_);
    ASSERT_OK(session_->RunSql(
        "CREATE TABLE t (v INT); INSERT INTO t VALUES (1), (2), (3);"));
  }
  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(InterpreterTest, WhileWithBreakAndContinue) {
  ASSERT_OK_AND_ASSIGN(auto env, session_->RunBlock(R"(
    DECLARE @i INT = 0;
    DECLARE @sum INT = 0;
    WHILE @i < 100
    BEGIN
      SET @i = @i + 1;
      IF @i % 2 = 0
        CONTINUE;
      IF @i > 7
        BREAK;
      SET @sum = @sum + @i;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(Value sum, env->Get("@sum"));
  EXPECT_EQ(sum.int_value(), 1 + 3 + 5 + 7);
}

TEST_F(InterpreterTest, NestedFunctionCalls) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION inner_fn(@x INT) RETURNS INT AS
    BEGIN
      RETURN @x * 2;
    END
    CREATE FUNCTION outer_fn(@x INT) RETURNS INT AS
    BEGIN
      RETURN inner_fn(@x) + inner_fn(@x + 1);
    END
  )"));
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("outer_fn", {Value::Int(5)}));
  EXPECT_EQ(v.int_value(), 22);
}

TEST_F(InterpreterTest, InfiniteRecursionIsBounded) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION rec(@x INT) RETURNS INT AS
    BEGIN
      RETURN rec(@x + 1);
    END
  )"));
  auto r = session_->Call("rec", {Value::Int(0)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
}

TEST_F(InterpreterTest, ReturnValueCoercedToDeclaredType) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION as_int() RETURNS INT AS
    BEGIN
      RETURN 3.9;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("as_int", {}));
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.int_value(), 3);
}

TEST_F(InterpreterTest, DefaultParameterEvaluation) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION with_default(@a INT, @b INT = 7) RETURNS INT AS
    BEGIN
      RETURN @a + @b;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(Value both,
                       session_->Call("with_default", {Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(both.int_value(), 3);
  ASSERT_OK_AND_ASSIGN(Value defaulted,
                       session_->Call("with_default", {Value::Int(1)}));
  EXPECT_EQ(defaulted.int_value(), 8);
  EXPECT_FALSE(session_->Call("with_default", {}).ok());  // @a required
}

TEST_F(InterpreterTest, CursorErrorPaths) {
  auto fetch_unopened = session_->RunBlock(R"(
    DECLARE @x INT;
    DECLARE c CURSOR FOR SELECT v FROM t;
    FETCH NEXT FROM c INTO @x;
  )");
  ASSERT_FALSE(fetch_unopened.ok());
  EXPECT_NE(fetch_unopened.status().message().find("closed cursor"),
            std::string::npos);

  auto double_open = session_->RunBlock(R"(
    DECLARE c CURSOR FOR SELECT v FROM t;
    OPEN c;
    OPEN c;
  )");
  ASSERT_FALSE(double_open.ok());

  auto open_undeclared = session_->RunBlock("OPEN nope;");
  ASSERT_FALSE(open_undeclared.ok());
}

TEST_F(InterpreterTest, CursorReopenAfterClose) {
  ASSERT_OK_AND_ASSIGN(auto env, session_->RunBlock(R"(
    DECLARE @x INT;
    DECLARE @n INT = 0;
    DECLARE c CURSOR FOR SELECT v FROM t;
    OPEN c;
    FETCH NEXT FROM c INTO @x;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      SET @n = @n + 1;
      FETCH NEXT FROM c INTO @x;
    END
    CLOSE c;
    OPEN c;
    FETCH NEXT FROM c INTO @x;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      SET @n = @n + 1;
      FETCH NEXT FROM c INTO @x;
    END
    CLOSE c;
    DEALLOCATE c;
  )"));
  ASSERT_OK_AND_ASSIGN(Value n, env->Get("@n"));
  EXPECT_EQ(n.int_value(), 6);  // two full passes
}

TEST_F(InterpreterTest, SetOfUndeclaredVariableFails) {
  auto r = session_->RunBlock("SET @nope = 1;");
  ASSERT_FALSE(r.ok());
}

TEST_F(InterpreterTest, TempTableUpdateAndDelete) {
  ASSERT_OK_AND_ASSIGN(auto env, session_->RunBlock(R"(
    DECLARE @t TABLE (k INT, v INT);
    INSERT INTO @t VALUES (1, 10), (2, 20), (3, 30);
    UPDATE @t SET v = v + 1 WHERE k >= 2;
    DELETE FROM @t WHERE k = 1;
    DECLARE @sum INT;
    SET @sum = (SELECT SUM(v) FROM @t);
  )"));
  ASSERT_OK_AND_ASSIGN(Value sum, env->Get("@sum"));
  EXPECT_EQ(sum.int_value(), 21 + 31);
}

TEST_F(InterpreterTest, TempTablesDroppedAtFunctionExit) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION uses_temp() RETURNS INT AS
    BEGIN
      DECLARE @t TABLE (x INT);
      INSERT INTO @t VALUES (1);
      RETURN (SELECT COUNT(*) FROM @t);
    END
  )"));
  ASSERT_OK(session_->Call("uses_temp", {}).status());
  EXPECT_FALSE(db_.catalog().HasTable("@t"));
  // Call again: re-creation must not collide.
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("uses_temp", {}));
  EXPECT_EQ(v.int_value(), 1);
}

TEST_F(InterpreterTest, ErrorInsideLoopBodyPropagates) {
  auto r = session_->RunBlock(R"(
    DECLARE @x INT;
    DECLARE @d INT = 0;
    DECLARE c CURSOR FOR SELECT v FROM t;
    OPEN c;
    FETCH NEXT FROM c INTO @x;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      SET @x = @x / @d;
      FETCH NEXT FROM c INTO @x;
    END
    CLOSE c; DEALLOCATE c;
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("division by zero"), std::string::npos);
}

TEST_F(InterpreterTest, FetchStatusIsMinusOneBeforeAnyFetch) {
  ASSERT_OK_AND_ASSIGN(auto env, session_->RunBlock(R"(
    DECLARE @s INT;
    SET @s = @@FETCH_STATUS;
  )"));
  ASSERT_OK_AND_ASSIGN(Value s, env->Get("@s"));
  EXPECT_EQ(s.int_value(), -1);
}

TEST_F(InterpreterTest, FunctionsCannotModifyPersistentState) {
  // §4.1: UDFs cannot modify persistent state — which is exactly why every
  // UDF cursor loop is in Theorem 4.2's class.
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION naughty_insert() RETURNS INT AS
    BEGIN
      INSERT INTO t VALUES (99);
      RETURN 1;
    END
    CREATE FUNCTION naughty_update() RETURNS INT AS
    BEGIN
      UPDATE t SET v = 0;
      RETURN 1;
    END
    CREATE FUNCTION fine_temp() RETURNS INT AS
    BEGIN
      DECLARE @w TABLE (x INT);
      INSERT INTO @w VALUES (1);
      UPDATE @w SET x = 2;
      DELETE FROM @w WHERE x = 2;
      RETURN 1;
    END
  )"));
  auto ins = session_->Call("naughty_insert", {});
  ASSERT_FALSE(ins.ok());
  EXPECT_NE(ins.status().message().find("not allowed inside a function"),
            std::string::npos);
  ASSERT_FALSE(session_->Call("naughty_update", {}).ok());
  ASSERT_OK(session_->Call("fine_temp", {}).status());
  // Anonymous blocks may modify persistent tables.
  ASSERT_OK(session_->RunBlock("INSERT INTO t VALUES (42);").status());
}

TEST_F(InterpreterTest, ScalarSubqueryInDeclareInitializer) {
  ASSERT_OK_AND_ASSIGN(auto env, session_->RunBlock(R"(
    DECLARE @m INT = (SELECT MAX(v) FROM t);
  )"));
  ASSERT_OK_AND_ASSIGN(Value m, env->Get("@m"));
  EXPECT_EQ(m.int_value(), 3);
}

TEST_F(InterpreterTest, InsertSelectIntoTempTable) {
  ASSERT_OK_AND_ASSIGN(auto env, session_->RunBlock(R"(
    DECLARE @copy TABLE (v INT);
    INSERT INTO @copy SELECT v FROM t WHERE v >= 2;
    DECLARE @n INT;
    SET @n = (SELECT COUNT(*) FROM @copy);
  )"));
  ASSERT_OK_AND_ASSIGN(Value n, env->Get("@n"));
  EXPECT_EQ(n.int_value(), 2);
}

}  // namespace
}  // namespace aggify
