// Tests for the common module: the Status/Result error model and the
// deterministic PRNG.
#include <gtest/gtest.h>

#include "common/random.h"
#include "common/result.h"
#include "test_util.h"

namespace aggify {
namespace {

TEST(StatusTest, OkIsCheapAndEmpty) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.message(), "");
  EXPECT_EQ(ok.ToString(), "OK");
}

TEST(StatusTest, CodesRoundTripThroughToString) {
  EXPECT_EQ(Status::ParseError("x").ToString(), "parse error: x");
  EXPECT_EQ(Status::NotApplicable("y").ToString(), "not applicable: y");
  EXPECT_TRUE(Status::NotApplicable("").IsNotApplicable());
  EXPECT_TRUE(Status::NotSupported("").IsNotSupported());
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_FALSE(Status::Internal("").IsNotFound());
}

TEST(ResultTest, ValueAndErrorStates) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err(Status::NotFound("gone"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusIntoResultIsAnInternalBug) {
  Result<int> bad{Status::OK()};
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ConvertingConstructorForDerivedPointers) {
  struct Base {
    virtual ~Base() = default;
  };
  struct Derived : Base {};
  auto make = []() -> Result<std::unique_ptr<Base>> {
    return std::make_unique<Derived>();
  };
  ASSERT_OK_AND_ASSIGN(auto p, make());
  EXPECT_NE(p, nullptr);
}

Status UsePropagationMacros(bool fail) {
  RETURN_NOT_OK(fail ? Status::TypeError("boom") : Status::OK());
  Result<int> r = fail ? Result<int>(Status::TypeError("boom"))
                       : Result<int>(7);
  ASSIGN_OR_RETURN(int v, std::move(r));
  return v == 7 ? Status::OK() : Status::Internal("wrong value");
}

TEST(MacroTest, PropagationBehavior) {
  EXPECT_OK(UsePropagationMacros(false));
  EXPECT_FALSE(UsePropagationMacros(true).ok());
}

TEST(RandomTest, DeterministicAndWellDistributed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
  // Nearby seeds diverge immediately (warm-up).
  Random c(124);
  Random d(125);
  EXPECT_NE(c.Next64(), d.Next64());
  // UniformRange stays in bounds inclusive.
  Random e(9);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = e.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  // NextDouble in [0, 1).
  for (int i = 0; i < 1000; ++i) {
    double x = e.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

}  // namespace
}  // namespace aggify
