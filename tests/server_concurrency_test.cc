// Concurrent-session stress over the server stack: N client threads drive
// one Server through the text protocol (MultiClientHarness), mixing
// one-shot QUERYs with DECLARE/FETCH/CLOSE cursor conversations, with and
// without injected network faults. Asserts the acceptance invariants of
// PR 10: every client completes, no request errors under a fault-free
// network, and zero leaked cursors/sessions afterwards (the registry
// returns to empty). CI additionally runs this binary under TSan — the
// interesting assertions there are the ones the tool makes.
#include <gtest/gtest.h>

#include <thread>

#include "test_util.h"
#include "workloads/multi_client_harness.h"

namespace aggify {
namespace {

std::string DataScript() {
  std::string script = "CREATE TABLE t (k INT, v INT);\n";
  for (int i = 0; i < 200; ++i) {
    script += "INSERT INTO t VALUES (" + std::to_string(i % 13) + ", " +
              std::to_string(i * 7 + 3) + ");\n";
  }
  return script;
}

MultiClientConfig BaseConfig() {
  MultiClientConfig config;
  config.requests_per_client = 6;
  config.declare_every = 2;
  config.fetch_rows = 16;
  config.statements = {
      "SELECT COUNT(*) FROM t WHERE v > 100",
      "SELECT k, SUM(v) FROM t GROUP BY k ORDER BY k",
      "SELECT v FROM t WHERE k = 3 ORDER BY v",
      "SELECT MAX(v), MIN(v) FROM t",
  };
  config.open_options = "dop=2 batch=1";
  return config;
}

/// Threads beyond the hardware make the stress slower without finding more
/// interleavings; still, the acceptance floor is 64 concurrent clients.
int StressClients() { return 64; }

TEST(ServerConcurrencyTest, ManyClientsCompleteWithZeroLeaks) {
  Database db;
  EngineService service(&db);
  ASSERT_OK(service.RunSql(DataScript()));

  Server::Config server_config;
  server_config.sessions.max_sessions = 128;
  server_config.cursors.max_cursors = 256;
  Server server(&service, server_config);

  MultiClientConfig config = BaseConfig();
  config.clients = StressClients();
  MultiClientHarness harness(&server, config);
  ASSERT_OK_AND_ASSIGN(MultiClientReport report, harness.Run());

  EXPECT_EQ(report.clients_completed, config.clients);
  EXPECT_EQ(report.errors, 0) << report.ToString();
  EXPECT_EQ(report.undelivered, 0) << report.ToString();
  EXPECT_GT(report.rows_received, 0);
  EXPECT_GT(report.cursors_opened, 0);

  // The registry returned to empty: nothing leaked.
  EXPECT_EQ(server.cursors().open_cursors(), 0);
  EXPECT_EQ(server.sessions().open_sessions(), 0);

  // Cross-session plan reuse happened (identical OPEN options).
  ServerStatsSnapshot stats = server.Stats();
  EXPECT_GT(stats.plan_cache_hits, 0);
  EXPECT_EQ(stats.cursors_opened,
            stats.cursors_closed + stats.cursors_evicted);
}

TEST(ServerConcurrencyTest, SurvivesInjectedNetworkFaults) {
  Database db;
  EngineService service(&db);
  ASSERT_OK(service.RunSql(DataScript()));

  Server::Config server_config;
  server_config.sessions.max_sessions = 64;
  server_config.cursors.max_cursors = 128;
  Server server(&service, server_config);

  MultiClientConfig config = BaseConfig();
  config.clients = 16;
  // Lossy wire: 20% of requests are dropped in flight and re-sent under
  // the retry policy. Seeded, so the run replays identically; with 10
  // attempts the chance of abandoning a conversation is (0.2)^10.
  config.network.drop_probability = 0.2;
  config.retry.max_attempts = 10;
  config.seed = 0xFA017;
  MultiClientHarness harness(&server, config);
  ASSERT_OK_AND_ASSIGN(MultiClientReport report, harness.Run());

  EXPECT_EQ(report.clients_completed, config.clients);
  EXPECT_GT(report.network.drops, 0) << "faults never fired";
  EXPECT_GT(report.network.retries, 0);
  EXPECT_EQ(report.undelivered, 0) << report.ToString();
  EXPECT_EQ(report.errors, 0) << report.ToString();
  EXPECT_EQ(server.cursors().open_cursors(), 0);
  EXPECT_EQ(server.sessions().open_sessions(), 0);
}

TEST(ServerConcurrencyTest, AdmissionGateUnderConcurrencyRejectsNotCorrupts) {
  Database db;
  EngineOptions options;
  options.limits.max_concurrent_queries = 2;
  options.limits.admission_timeout_ms = 0;  // reject a full gate immediately
  EngineService service(&db, options);
  ASSERT_OK(service.RunSql(DataScript()));

  Server server(&service);
  MultiClientConfig config = BaseConfig();
  config.clients = 16;
  config.declare_every = 0;  // one-shot only: every request hits the gate
  MultiClientHarness harness(&server, config);
  ASSERT_OK_AND_ASSIGN(MultiClientReport report, harness.Run());

  EXPECT_EQ(report.clients_completed, config.clients);
  // Rejections are typed protocol errors, not crashes or leaks.
  ServerStatsSnapshot stats = server.Stats();
  EXPECT_EQ(report.errors, stats.admission_rejections) << report.ToString();
  EXPECT_EQ(server.cursors().open_cursors(), 0);
  EXPECT_EQ(server.sessions().open_sessions(), 0);
}

/// Same shared service, many servers: sessions on different Server fronts
/// still share the plan cache and admission machinery safely.
TEST(ServerConcurrencyTest, ConcurrentDirectClientSessionsStayIsolated) {
  Database db;
  EngineService service(&db);
  ASSERT_OK(service.RunSql(DataScript()));

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &failures, t] {
      EngineOptions options;
      options.execution.degree_of_parallelism = 1 + t % 2;
      ClientSession session(&service, options, /*id=*/t + 1);
      for (int i = 0; i < 8; ++i) {
        auto one_shot =
            session.Query("SELECT k, SUM(v) FROM t GROUP BY k ORDER BY k");
        auto cursor = session.Declare("SELECT v FROM t ORDER BY v");
        if (!one_shot.ok() || !cursor.ok()) {
          ++failures;
          continue;
        }
        auto drained = (*cursor)->Drain(9);
        if (!drained.ok() || drained->rows.size() != 200) ++failures;
      }
      if (session.io_stats().queries_executed == 0) ++failures;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures, 0);
}

}  // namespace
}  // namespace aggify
