// Parser unit tests: lexing, expression precedence, SELECT clauses,
// procedural statements, scripts, and error reporting.
#include <gtest/gtest.h>

#include "parser/parser.h"
#include "test_util.h"

namespace aggify {
namespace {

// ---------- lexer ----------

TEST(LexerTest, TokenKinds) {
  ASSERT_OK_AND_ASSIGN(auto tokens,
                       Tokenize("SELECT @x, 42, 3.5, 'it''s' FROM t -- c"));
  // SELECT @x , 42 , 3.5 , 'it's' FROM t EOF
  ASSERT_EQ(tokens.size(), 11u);
  EXPECT_EQ(tokens[1].kind, TokenKind::kVariable);
  EXPECT_EQ(tokens[1].text, "@x");
  EXPECT_EQ(tokens[3].int_value, 42);
  EXPECT_DOUBLE_EQ(tokens[5].double_value, 3.5);
  EXPECT_EQ(tokens[7].text, "it's");
}

TEST(LexerTest, BlockCommentsAndOperators) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("a /* hi \n there */ <> b <= c"));
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[1].kind, TokenKind::kNe);
  EXPECT_EQ(tokens[3].kind, TokenKind::kLe);
}

TEST(LexerTest, FetchStatusVariable) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("@@FETCH_STATUS"));
  EXPECT_EQ(tokens[0].text, "@@fetch_status");  // lowercased
}

TEST(LexerTest, UnterminatedStringIsAnError) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
  EXPECT_FALSE(Tokenize("a /* unclosed").ok());
}

// ---------- expressions ----------

TEST(ParserTest, ArithmeticPrecedence) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("1 + 2 * 3 - 4 / 2"));
  EXPECT_EQ(e->ToString(), "((1 + (2 * 3)) - (4 / 2))");
}

TEST(ParserTest, BooleanPrecedence) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("a = 1 OR b = 2 AND c = 3"));
  EXPECT_EQ(e->ToString(), "((a = 1) OR ((b = 2) AND (c = 3)))");
}

TEST(ParserTest, NotAndComparisons) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("NOT a >= 5"));
  EXPECT_EQ(e->ToString(), "(NOT (a >= 5))");
}

TEST(ParserTest, BetweenDesugarsToRange) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("x BETWEEN 1 AND 10"));
  EXPECT_EQ(e->ToString(), "((x >= 1) AND (x <= 10))");
}

TEST(ParserTest, InListAndIsNull) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e1, ParseExpression("x IN (1, 2, 3)"));
  EXPECT_EQ(e1->kind, ExprKind::kInList);
  ASSERT_OK_AND_ASSIGN(ExprPtr e2, ParseExpression("x IS NOT NULL"));
  EXPECT_EQ(e2->kind, ExprKind::kIsNull);
  EXPECT_TRUE(static_cast<IsNullExpr&>(*e2).negated);
}

TEST(ParserTest, CaseWhenAndCast) {
  ASSERT_OK_AND_ASSIGN(
      ExprPtr e,
      ParseExpression("CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END"));
  EXPECT_EQ(e->kind, ExprKind::kCaseWhen);
  ASSERT_OK_AND_ASSIGN(ExprPtr c, ParseExpression("CAST(x AS INT)"));
  EXPECT_EQ(c->kind, ExprKind::kCast);
}

TEST(ParserTest, BuiltinAggregatesRecognized) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e, ParseExpression("MIN(ps_supplycost)"));
  EXPECT_EQ(e->kind, ExprKind::kAggregateCall);
  ASSERT_OK_AND_ASSIGN(ExprPtr star, ParseExpression("COUNT(*)"));
  EXPECT_TRUE(static_cast<AggregateCallExpr&>(*star).is_star);
  // Unknown names stay scalar calls (the binder promotes catalog aggregates).
  ASSERT_OK_AND_ASSIGN(ExprPtr udf, ParseExpression("myfunc(1, 2)"));
  EXPECT_EQ(udf->kind, ExprKind::kFunctionCall);
}

TEST(ParserTest, QualifiedColumnsAndSubqueries) {
  ASSERT_OK_AND_ASSIGN(ExprPtr e,
                       ParseExpression("t.a + (SELECT MAX(b) FROM u)"));
  auto& bin = static_cast<BinaryExpr&>(*e);
  EXPECT_EQ(bin.left->ToString(), "t.a");
  EXPECT_EQ(bin.right->kind, ExprKind::kScalarSubquery);
}

// ---------- SELECT ----------

TEST(ParserTest, SelectClausesRoundTrip) {
  const char* sql =
      "SELECT a, SUM(b) AS total FROM t WHERE a > 0 GROUP BY a "
      "HAVING SUM(b) > 10 ORDER BY total DESC";
  ASSERT_OK_AND_ASSIGN(auto q, ParseSelect(sql));
  EXPECT_EQ(q->items.size(), 2u);
  EXPECT_EQ(q->items[1].alias, "total");
  EXPECT_TRUE(q->HasGroupBy());
  ASSERT_NE(q->having, nullptr);
  ASSERT_EQ(q->order_by.size(), 1u);
  EXPECT_TRUE(q->order_by[0].descending);
  // Re-parse the rendering (ToString emits parseable dialect SQL).
  ASSERT_OK(ParseSelect(q->ToString()).status());
}

TEST(ParserTest, JoinsAndDerivedTables) {
  ASSERT_OK_AND_ASSIGN(
      auto q, ParseSelect("SELECT x FROM a JOIN b ON a.k = b.k "
                          "LEFT JOIN (SELECT k FROM c) d ON b.k = d.k"));
  ASSERT_EQ(q->from.size(), 1u);
  EXPECT_EQ(q->from[0]->kind, TableRef::Kind::kJoin);
  EXPECT_EQ(q->from[0]->join_type, JoinType::kLeft);
  EXPECT_EQ(q->from[0]->right->kind, TableRef::Kind::kSubquery);
}

TEST(ParserTest, TopVariants) {
  ASSERT_OK_AND_ASSIGN(auto q1, ParseSelect("SELECT TOP 5 a FROM t"));
  ASSERT_NE(q1->top_n, nullptr);
  ASSERT_OK_AND_ASSIGN(auto q2, ParseSelect("SELECT TOP (@n) a FROM t"));
  EXPECT_EQ(q2->top_n->kind, ExprKind::kVarRef);
}

TEST(ParserTest, WithRecursiveCte) {
  ASSERT_OK_AND_ASSIGN(auto q, ParseSelect(R"(
      WITH c (i) AS (SELECT 0 AS i UNION ALL SELECT i + 1 FROM c WHERE i < 5)
      SELECT * FROM c)"));
  ASSERT_EQ(q->ctes.size(), 1u);
  EXPECT_TRUE(q->ctes[0].recursive);
  EXPECT_EQ(q->ctes[0].column_names, std::vector<std::string>{"i"});
}

// ---------- procedural ----------

TEST(ParserTest, CursorLoopStatements) {
  ASSERT_OK_AND_ASSIGN(StmtPtr block, ParseStatements(R"(
    DECLARE @x INT;
    DECLARE c CURSOR FOR SELECT v FROM t;
    OPEN c;
    FETCH NEXT FROM c INTO @x;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      SET @x = @x + 1;
      FETCH NEXT FROM c INTO @x;
    END
    CLOSE c;
    DEALLOCATE c;
  )"));
  const auto& b = static_cast<const BlockStmt&>(*block);
  ASSERT_EQ(b.statements.size(), 7u);
  EXPECT_EQ(b.statements[1]->kind, StmtKind::kDeclareCursor);
  EXPECT_EQ(b.statements[4]->kind, StmtKind::kWhile);
}

TEST(ParserTest, MultiDeclareAndTableVariable) {
  ASSERT_OK_AND_ASSIGN(StmtPtr block, ParseStatements(R"(
    DECLARE @a INT = 1, @b FLOAT;
    DECLARE @t TABLE (x INT, y VARCHAR(8));
    INSERT INTO @t VALUES (1, 'one');
  )"));
  const auto& b = static_cast<const BlockStmt&>(*block);
  // Multi-declare expands into a nested block of two declares.
  ASSERT_GE(b.statements.size(), 3u);
  EXPECT_EQ(b.statements[1]->kind, StmtKind::kDeclareTempTable);
}

TEST(ParserTest, TryCatchAndControlFlow) {
  ASSERT_OK_AND_ASSIGN(StmtPtr block, ParseStatements(R"(
    BEGIN TRY
      SET @x = 1 / 0;
    END TRY
    BEGIN CATCH
      SET @x = -1;
    END CATCH
    WHILE @x < 3
    BEGIN
      IF @x = 2
        BREAK;
      ELSE
        CONTINUE;
    END
  )"));
  const auto& b = static_cast<const BlockStmt&>(*block);
  ASSERT_EQ(b.statements.size(), 2u);
  EXPECT_EQ(b.statements[0]->kind, StmtKind::kTryCatch);
}

TEST(ParserTest, FunctionDefinitionWithDefaults) {
  ASSERT_OK_AND_ASSIGN(auto def, ParseFunction(R"(
    CREATE FUNCTION f(@a INT, @b INT = -1) RETURNS CHAR(25) AS
    BEGIN
      RETURN 'x';
    END
  )"));
  EXPECT_EQ(def->name, "f");
  ASSERT_EQ(def->params.size(), 2u);
  EXPECT_EQ(def->params[0].default_value, nullptr);
  ASSERT_NE(def->params[1].default_value, nullptr);
  EXPECT_EQ(def->return_type.id, TypeId::kString);
}

TEST(ParserTest, ScriptMixesCommands) {
  ASSERT_OK_AND_ASSIGN(Script script, ParseScript(R"(
    CREATE TABLE t (a INT);
    CREATE INDEX idx ON t (a);
    INSERT INTO t VALUES (1), (2);
    CREATE FUNCTION g() RETURNS INT AS BEGIN RETURN 1; END
    SELECT a FROM t;
  )"));
  ASSERT_EQ(script.commands.size(), 5u);
  EXPECT_EQ(script.commands[0].kind, ScriptCommand::Kind::kCreateTable);
  EXPECT_EQ(script.commands[1].kind, ScriptCommand::Kind::kCreateIndex);
  EXPECT_EQ(script.commands[2].kind, ScriptCommand::Kind::kInsert);
  EXPECT_EQ(script.commands[3].kind, ScriptCommand::Kind::kCreateFunction);
  EXPECT_EQ(script.commands[4].kind, ScriptCommand::Kind::kSelect);
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto r = ParseSelect("SELECT a\nFROM\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line"), std::string::npos);
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseExpression("1 + 2 garbage more").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t SELECT b").ok());
}

// Clone must deep-copy: mutating the clone leaves the original untouched.
TEST(ParserTest, CloneIsDeep) {
  ASSERT_OK_AND_ASSIGN(auto q, ParseSelect("SELECT a FROM t WHERE a > 1"));
  auto clone = q->Clone();
  clone->items[0].alias = "renamed";
  clone->where = nullptr;
  EXPECT_TRUE(q->items[0].alias.empty());
  ASSERT_NE(q->where, nullptr);
}

// ToString renders parseable SQL for every workload UDF (round-trip sweep).
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, FunctionToStringReparses) {
  ASSERT_OK_AND_ASSIGN(auto def, ParseFunction(GetParam()));
  std::string rendered = def->ToString();
  ASSERT_OK_AND_ASSIGN(auto def2, ParseFunction(rendered));
  EXPECT_EQ(def2->ToString(), rendered);  // fixpoint after one round
}

INSTANTIATE_TEST_SUITE_P(
    Udfs, RoundTripTest,
    ::testing::Values(
        R"(CREATE FUNCTION a(@x INT) RETURNS INT AS BEGIN
             IF (@x > 0) RETURN @x; ELSE RETURN -@x; END)",
        R"(CREATE FUNCTION b() RETURNS FLOAT AS BEGIN
             DECLARE @s FLOAT = 0.0;
             DECLARE c CURSOR FOR SELECT v FROM t ORDER BY v DESC;
             DECLARE @v FLOAT;
             OPEN c; FETCH NEXT FROM c INTO @v;
             WHILE @@FETCH_STATUS = 0
             BEGIN SET @s = @s + @v; FETCH NEXT FROM c INTO @v; END
             CLOSE c; DEALLOCATE c;
             RETURN @s; END)",
        R"(CREATE FUNCTION c(@n INT) RETURNS INT AS BEGIN
             DECLARE @t TABLE (x INT);
             FOR @i = 1 TO @n BEGIN INSERT INTO @t VALUES (@i); END
             RETURN (SELECT COUNT(*) FROM @t); END)"));

}  // namespace
}  // namespace aggify
