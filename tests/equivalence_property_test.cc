// Property-based test of Theorem 4.2: for randomly generated cursor loops
// in the supported language model (§4.2 grammar), executing the original
// interpreted loop and executing the Aggify-rewritten aggregate query yield
// identical final program states.
//
// The generator draws loop bodies over the grammar
//   Stmt := SET acc = exp | IF exp THEN Stmt* [ELSE Stmt*] | BREAK-guard
//   exp  := const | fetchvar | acc | param | exp op exp
// with and without ORDER BY on the cursor query (exercising both Eq. 5 and
// the Eq. 6 streaming-order path).
#include <gtest/gtest.h>

#include "aggify/rewriter.h"
#include "common/random.h"
#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

class ProgramGenerator {
 public:
  explicit ProgramGenerator(uint64_t seed) : rng_(seed) {}

  /// Generates a complete CREATE FUNCTION with one canonical cursor loop.
  std::string Generate() {
    // Accumulators with random integer initializers.
    std::string body;
    int num_accs = static_cast<int>(rng_.UniformRange(1, 3));
    for (int i = 0; i < num_accs; ++i) {
      accs_.push_back("@acc" + std::to_string(i));
      body += "  DECLARE " + accs_.back() + " INT = " +
              std::to_string(rng_.UniformRange(-5, 5)) + ";\n";
    }
    body += "  DECLARE @fv INT;\n  DECLARE @fw INT;\n";

    // Cursor query: optional filter and optional ORDER BY.
    std::string query = "SELECT k, v FROM data";
    if (rng_.OneIn(2)) query += " WHERE v > @p";
    if (rng_.OneIn(2)) {
      query += " ORDER BY v";
      if (rng_.OneIn(2)) query += " DESC";
      ordered_ = true;
    }
    body += "  DECLARE cur CURSOR FOR " + query + ";\n";
    body += "  OPEN cur;\n  FETCH NEXT FROM cur INTO @fv, @fw;\n";
    body += "  WHILE @@FETCH_STATUS = 0\n  BEGIN\n";
    int num_stmts = static_cast<int>(rng_.UniformRange(1, 4));
    for (int i = 0; i < num_stmts; ++i) body += GenStatement(2);
    if (rng_.OneIn(4)) {
      body += "    IF (" + GenExpr(2) + " > " +
              std::to_string(rng_.UniformRange(50, 200)) + ")\n      BREAK;\n";
    }
    body += "    FETCH NEXT FROM cur INTO @fv, @fw;\n";
    body += "  END\n  CLOSE cur;\n  DEALLOCATE cur;\n";

    // Make every accumulator observable.
    std::string ret = accs_[0];
    for (size_t i = 1; i < accs_.size(); ++i) {
      ret += " + " + std::to_string(i + 2) + " * " + accs_[i];
    }
    return "CREATE FUNCTION gen_fn(@p INT) RETURNS INT AS\nBEGIN\n" + body +
           "  RETURN " + ret + ";\nEND\n";
  }

  bool ordered() const { return ordered_; }

 private:
  std::string GenExpr(int depth) {
    if (depth <= 0 || rng_.OneIn(3)) {
      switch (rng_.Uniform(4)) {
        case 0: return "@fv";
        case 1: return "@fw";
        case 2: return accs_[rng_.Uniform(accs_.size())];
        default: return std::to_string(rng_.UniformRange(-3, 9));
      }
    }
    static const char* kOps[] = {" + ", " - ", " * "};
    return "(" + GenExpr(depth - 1) + kOps[rng_.Uniform(3)] +
           GenExpr(depth - 1) + ")";
  }

  std::string GenCond(int depth) {
    static const char* kCmps[] = {" < ", " <= ", " = ", " > ", " >= ", " <> "};
    std::string cond = GenExpr(depth) + kCmps[rng_.Uniform(6)] + GenExpr(depth);
    if (rng_.OneIn(3)) {
      cond = "(" + cond + (rng_.OneIn(2) ? " AND " : " OR ") + GenCond(0) + ")";
    }
    return cond;
  }

  std::string GenStatement(int depth) {
    std::string indent(static_cast<size_t>(depth) * 2, ' ');
    if (depth < 4 && rng_.OneIn(3)) {
      std::string out = indent + "IF (" + GenCond(1) + ")\n" + indent +
                        "BEGIN\n" + GenStatement(depth + 1);
      if (rng_.OneIn(2)) out += GenStatement(depth + 1);
      out += indent + "END\n";
      if (rng_.OneIn(2)) {
        out += indent + "ELSE\n" + indent + "BEGIN\n" +
               GenStatement(depth + 1) + indent + "END\n";
      }
      return out;
    }
    const std::string& acc = accs_[rng_.Uniform(accs_.size())];
    return indent + "SET " + acc + " = " + GenExpr(2) + ";\n";
  }

  Random rng_;
  std::vector<std::string> accs_;
  bool ordered_ = false;
};

class EquivalenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(EquivalenceProperty, RewrittenLoopMatchesInterpretedLoop) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Database db;
  Session session(&db);

  // Data with duplicates and negatives; ORDER BY v ties are broken stably
  // by both execution paths (same Sort operator).
  Random rng(seed * 7919 + 13);
  std::string inserts;
  int rows = static_cast<int>(rng.UniformRange(0, 40));  // 0 tests empty loops
  for (int i = 0; i < rows; ++i) {
    if (i > 0) inserts += ", ";
    inserts += "(" + std::to_string(rng.UniformRange(-5, 30)) + ", " +
               std::to_string(rng.UniformRange(-10, 100)) + ")";
  }
  ASSERT_OK(session.RunSql("CREATE TABLE data (k INT, v INT);").status());
  if (rows > 0) {
    ASSERT_OK(session.RunSql("INSERT INTO data VALUES " + inserts + ";")
                  .status());
  }

  ProgramGenerator generator(seed);
  std::string program = generator.Generate();
  SCOPED_TRACE(program);
  ASSERT_OK(session.RunSql(program).status());
  // A second identical copy so the plain rewrite and the fully simplified
  // rewrite can coexist (RewriteFunction replaces its target in place).
  std::string full_copy = program;
  full_copy.replace(full_copy.find("gen_fn"), 6, "gen_fn_full");
  ASSERT_OK(session.RunSql(full_copy).status());

  // Original (interpreted) results for a few parameter values.
  std::vector<Value> before;
  for (int p : {-100, 0, 50}) {
    ASSERT_OK_AND_ASSIGN(Value v, session.Call("gen_fn", {Value::Int(p)}));
    before.push_back(v);
  }

  // Configuration 2: rewritten with the simplification pipeline and its
  // payoffs (fetch pruning, native-fold lowering) all OFF.
  EngineOptions plain_options;
  plain_options.rewrite.simplify = false;
  plain_options.rewrite.prune_fetch_columns = false;
  plain_options.rewrite.lower_native_folds = false;
  Aggify plain(&db, plain_options);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, plain.RewriteFunction("gen_fn"));
  ASSERT_EQ(report.loops_rewritten, 1)
      << (report.skipped.empty() ? std::string("not rewritten")
                                 : report.skipped[0].ToString());
  EXPECT_EQ(report.rewrites[0].sets.ordered, generator.ordered());

  // Configuration 3: rewritten with everything ON (the defaults).
  Aggify full(&db);
  ASSERT_OK_AND_ASSIGN(AggifyReport full_report,
                       full.RewriteFunction("gen_fn_full"));
  ASSERT_EQ(full_report.loops_rewritten, 1)
      << (full_report.skipped.empty()
              ? std::string("not rewritten")
              : full_report.skipped[0].ToString());

  // All three configurations agree on every parameter value, and a dop=4
  // session over the same rewritten functions is bit-identical to dop=1 —
  // for parallel-eligible rewrites the plan really runs Gather over
  // ParallelPartialAgg, and parallel execution must be invisible.
  Session dop4(&db, EngineOptions::WithDop(4));
  // Batch-off sessions at both dops complete the four-configuration sweep
  // {enable_batch on/off} x {dop 1/4}: the vectorized pipeline
  // (docs/VECTORIZATION.md) must be observationally invisible too.
  EngineOptions nobatch1_options;
  nobatch1_options.execution.enable_batch = false;
  EngineOptions nobatch4_options = EngineOptions::WithDop(4);
  nobatch4_options.execution.enable_batch = false;
  Session nobatch1(&db, nobatch1_options);
  Session nobatch4(&db, nobatch4_options);
  size_t i = 0;
  for (int p : {-100, 0, 50}) {
    ASSERT_OK_AND_ASSIGN(Value v, session.Call("gen_fn", {Value::Int(p)}));
    EXPECT_TRUE(v.StructurallyEquals(before[i]))
        << "param " << p << ": rewritten=" << v.ToString()
        << " original=" << before[i].ToString();
    ASSERT_OK_AND_ASSIGN(Value vf,
                         session.Call("gen_fn_full", {Value::Int(p)}));
    EXPECT_TRUE(vf.StructurallyEquals(before[i]))
        << "param " << p << ": simplified rewrite=" << vf.ToString()
        << " original=" << before[i].ToString()
        << (full_report.rewrites[0].lowered_to_builtin ? " (lowered to "
              + full_report.rewrites[0].aggregate_name + ")" : "");
    ASSERT_OK_AND_ASSIGN(Value vp, dop4.Call("gen_fn", {Value::Int(p)}));
    EXPECT_TRUE(vp.StructurallyEquals(before[i]))
        << "param " << p << ": dop4=" << vp.ToString()
        << " original=" << before[i].ToString()
        << (report.rewrites[0].parallel_eligible ? " (parallel-eligible)"
                                                 : " (serial)");
    ASSERT_OK_AND_ASSIGN(Value vpf, dop4.Call("gen_fn_full", {Value::Int(p)}));
    EXPECT_TRUE(vpf.StructurallyEquals(before[i]))
        << "param " << p << ": dop4 simplified=" << vpf.ToString()
        << " original=" << before[i].ToString();
    for (Session* nb : {&nobatch1, &nobatch4}) {
      const char* label = nb == &nobatch1 ? "nobatch dop1" : "nobatch dop4";
      ASSERT_OK_AND_ASSIGN(Value vn, nb->Call("gen_fn", {Value::Int(p)}));
      EXPECT_TRUE(vn.StructurallyEquals(before[i]))
          << "param " << p << ": " << label << "=" << vn.ToString()
          << " original=" << before[i].ToString();
      ASSERT_OK_AND_ASSIGN(Value vnf,
                           nb->Call("gen_fn_full", {Value::Int(p)}));
      EXPECT_TRUE(vnf.StructurallyEquals(before[i]))
          << "param " << p << ": " << label
          << " simplified=" << vnf.ToString()
          << " original=" << before[i].ToString();
    }
    ++i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceProperty, ::testing::Range(1, 61));

// The same property over anonymous client programs (RewriteBlock path):
// every top-level variable is observable and must match after the rewrite
// (fetch variables excepted — they are dead by the applicability check).
class BlockEquivalenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(BlockEquivalenceProperty, RewrittenBlockPreservesEnvironment) {
  uint64_t seed = static_cast<uint64_t>(GetParam()) + 1000;
  Database db;
  Session session(&db);
  Random rng(seed * 104729 + 7);
  std::string inserts;
  int rows = static_cast<int>(rng.UniformRange(0, 30));
  for (int i = 0; i < rows; ++i) {
    if (i > 0) inserts += ", ";
    inserts += "(" + std::to_string(rng.UniformRange(-5, 30)) + ", " +
               std::to_string(rng.UniformRange(-10, 100)) + ")";
  }
  ASSERT_OK(session.RunSql("CREATE TABLE data (k INT, v INT);").status());
  if (rows > 0) {
    ASSERT_OK(session.RunSql("INSERT INTO data VALUES " + inserts + ";")
                  .status());
  }

  // Strip the CREATE FUNCTION wrapper off the generated program and replace
  // the parameter with a literal to obtain a client block.
  ProgramGenerator generator(seed);
  std::string fn = generator.Generate();
  size_t begin = fn.find("BEGIN");
  size_t ret = fn.rfind("  RETURN");
  ASSERT_NE(begin, std::string::npos);
  ASSERT_NE(ret, std::string::npos);
  std::string body = fn.substr(begin + 5, ret - begin - 5);
  std::string program = "DECLARE @p INT = " +
                        std::to_string(rng.UniformRange(-50, 50)) + ";\n" +
                        body;

  ASSERT_OK_AND_ASSIGN(StmtPtr parsed, ParseStatements(program));
  auto* block = static_cast<BlockStmt*>(parsed.get());
  StmtPtr rewritten_owner = block->Clone();
  auto* rewritten = static_cast<BlockStmt*>(rewritten_owner.get());

  // Run the original.
  auto run = [&](const BlockStmt& b) -> Result<std::shared_ptr<VariableEnv>> {
    auto env = std::make_shared<VariableEnv>();
    ExecContext ctx = session.MakeContext();
    ctx.set_vars(env.get());
    Interpreter interp(&session.engine());
    RETURN_NOT_OK(interp.ExecuteBlock(b, env.get(), ctx).status());
    return env;
  };
  ASSERT_OK_AND_ASSIGN(auto original_env, run(*block));

  Aggify aggify(&db);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteBlock(rewritten));
  ASSERT_EQ(report.loops_rewritten, 1)
      << (report.skipped.empty() ? std::string("not rewritten")
                                 : report.skipped[0].ToString());
  ASSERT_OK_AND_ASSIGN(auto rewritten_env, run(*rewritten));

  // All accumulators (observable top-level vars except the fetch vars @fv,
  // @fw) must match exactly.
  for (const std::string& name : original_env->LocalNames()) {
    if (name.rfind("@@", 0) == 0 || name == "@fv" || name == "@fw") continue;
    ASSERT_OK_AND_ASSIGN(Value before, original_env->Get(name));
    ASSERT_TRUE(rewritten_env->Has(name)) << name;
    ASSERT_OK_AND_ASSIGN(Value after, rewritten_env->Get(name));
    EXPECT_TRUE(before.StructurallyEquals(after))
        << name << ": " << before.ToString() << " vs " << after.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockEquivalenceProperty,
                         ::testing::Range(1, 31));

// ---- classifier soundness sweep ----
//
// Property: whenever the fold classifier proves a loop body order-
// insensitive, interpreting the ORIGINAL loop over the same multiset of rows
// in two different physical orders yields identical results. Bodies mix
// commutative folds (sum/product/guarded extrema/filtered folds) with
// order-sensitive shapes (last-value, accumulator-dependent guards), so both
// classifier verdicts occur across the seed range.
class OrderInsensitivityProperty : public ::testing::TestWithParam<int> {};

TEST_P(OrderInsensitivityProperty, ProvenInsensitiveBodiesShuffleFreely) {
  uint64_t seed = static_cast<uint64_t>(GetParam()) + 5000;
  Random rng(seed * 2654435761u + 3);
  Database db;
  Session session(&db);

  // Same multiset of rows in forward and shuffled insertion order. Unordered
  // cursors scan in insertion order, so the two tables present the two
  // physical orders.
  int rows = static_cast<int>(rng.UniformRange(1, 30));
  std::vector<int> vals;
  for (int i = 0; i < rows; ++i) {
    vals.push_back(static_cast<int>(rng.UniformRange(-10, 50)));
  }
  std::vector<int> shuffled = vals;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.Uniform(i)]);
  }
  auto insert = [&](const std::string& table, const std::vector<int>& v) {
    std::string sql = "CREATE TABLE " + table + " (v INT);";
    for (int x : v) {
      sql += " INSERT INTO " + table + " VALUES (" + std::to_string(x) + ");";
    }
    return session.RunSql(sql).status();
  };
  ASSERT_OK(insert("fwd", vals));
  ASSERT_OK(insert("shuf", shuffled));

  // Random body over fold-shaped and order-sensitive statement templates.
  std::string body;
  int num_stmts = static_cast<int>(rng.UniformRange(1, 4));
  for (int i = 0; i < num_stmts; ++i) {
    switch (rng.Uniform(8)) {
      case 0: body += "    SET @a = @a + @x;\n"; break;
      case 1: body += "    SET @a = @a - @x * 2;\n"; break;
      case 2: body += "    SET @b = @b * @x;\n"; break;
      case 3: body += "    IF (@x < @c) SET @c = @x;\n"; break;
      case 4: body += "    IF (@c IS NULL OR @x > @c) SET @c = @x;\n"; break;
      case 5: body += "    IF (@x > 7) SET @a = @a + 1;\n"; break;
      case 6: body += "    SET @b = @x;\n"; break;  // last value: sensitive
      default: body += "    IF (@a > 10) SET @b = @b + @x;\n"; break;
    }
  }

  auto make_fn = [&](const std::string& name, const std::string& table) {
    return "CREATE FUNCTION " + name + R"(() RETURNS INT AS
      BEGIN
        DECLARE @x INT;
        DECLARE @a INT = 3;
        DECLARE @b INT = 1;
        DECLARE @c INT;
        DECLARE cur CURSOR FOR SELECT v FROM )" + table + R"(;
        OPEN cur;
        FETCH NEXT FROM cur INTO @x;
        WHILE @@FETCH_STATUS = 0
        BEGIN
)" + body + R"(
          FETCH NEXT FROM cur INTO @x;
        END
        CLOSE cur; DEALLOCATE cur;
        RETURN @a * 1000003 + @b * 101 + ISNULL(@c, -77);
      END)";
  };
  SCOPED_TRACE(body);
  ASSERT_OK(session.RunSql(make_fn("fn_fwd", "fwd")).status());
  ASSERT_OK(session.RunSql(make_fn("fn_shuf", "shuf")).status());

  // Interpreted results over both physical orders, before any rewrite.
  ASSERT_OK_AND_ASSIGN(Value fwd_val, session.Call("fn_fwd", {}));
  ASSERT_OK_AND_ASSIGN(Value shuf_val, session.Call("fn_shuf", {}));

  Aggify aggify(&db);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("fn_fwd"));
  ASSERT_EQ(report.loops_rewritten, 1)
      << (report.skipped.empty() ? std::string("not rewritten")
                                 : report.skipped[0].ToString());
  const BodyClassification& cls = report.rewrites[0].classification;

  if (cls.order_insensitive) {
    // Soundness: the proof must hold on this input pair.
    EXPECT_TRUE(fwd_val.StructurallyEquals(shuf_val))
        << "classifier claimed order-insensitive but fwd="
        << fwd_val.ToString() << " shuf=" << shuf_val.ToString();
  }

  // And the rewrite itself must preserve the original order's result.
  ASSERT_OK_AND_ASSIGN(Value rewritten_val, session.Call("fn_fwd", {}));
  EXPECT_TRUE(rewritten_val.StructurallyEquals(fwd_val))
      << "rewritten=" << rewritten_val.ToString()
      << " original=" << fwd_val.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderInsensitivityProperty,
                         ::testing::Range(1, 41));

}  // namespace
}  // namespace aggify
