// Vectorized execution tests (docs/VECTORIZATION.md): type-specialized fold
// kernels vs. the row-at-a-time Accumulate reference, batch-vs-row query
// bit-identity, EXPLAIN pipeline markers, and ReadBatch page accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "aggregates/aggregate_function.h"
#include "exec/batch.h"
#include "procedural/session.h"
#include "storage/table.h"
#include "test_util.h"

namespace aggify {
namespace {

constexpr const char* kAggNames[] = {"min", "max", "sum", "count", "avg"};

/// Folds `col` through AccumulateBatch (the kernel under test).
Result<Value> FoldBatch(const AggregateFunction& agg, const ColumnVector& col,
                        const std::vector<int32_t>* sel) {
  ASSIGN_OR_RETURN(auto state, agg.Init());
  std::vector<const ColumnVector*> args{&col};
  const int32_t* sel_data = sel != nullptr ? sel->data() : nullptr;
  const int64_t count =
      sel != nullptr ? static_cast<int64_t>(sel->size()) : col.size();
  RETURN_NOT_OK(agg.AccumulateBatch(state.get(), args, sel_data, count,
                                    nullptr));
  return agg.Terminate(state.get(), nullptr);
}

/// The reference: one Accumulate per selected row, in order.
Result<Value> FoldRows(const AggregateFunction& agg,
                       const std::vector<Value>& values,
                       const std::vector<int32_t>* sel) {
  ASSIGN_OR_RETURN(auto state, agg.Init());
  if (sel != nullptr) {
    for (int32_t i : *sel) {
      RETURN_NOT_OK(
          agg.Accumulate(state.get(), {values[static_cast<size_t>(i)]},
                         nullptr));
    }
  } else {
    for (const Value& v : values) {
      RETURN_NOT_OK(agg.Accumulate(state.get(), {v}, nullptr));
    }
  }
  return agg.Terminate(state.get(), nullptr);
}

/// Asserts kernel == reference for every built-in over the given input.
void ExpectKernelParity(const std::vector<Value>& values,
                        const std::vector<int32_t>* sel) {
  const ColumnVector col = ColumnVector::FromValues(values);
  for (const char* name : kAggNames) {
    ASSERT_OK_AND_ASSIGN(auto agg, MakeBuiltinAggregate(name));
    ASSERT_OK_AND_ASSIGN(Value batched, FoldBatch(*agg, col, sel));
    ASSERT_OK_AND_ASSIGN(Value rowed, FoldRows(*agg, values, sel));
    EXPECT_TRUE(batched.StructurallyEquals(rowed))
        << name << ": batch=" << batched.ToString()
        << " row=" << rowed.ToString();
    EXPECT_EQ(batched.ToString(), rowed.ToString()) << name;
  }
}

TEST(FoldKernelTest, Int64ExtremesMatchRowFold) {
  const int64_t lo = std::numeric_limits<int64_t>::min();
  const int64_t hi = std::numeric_limits<int64_t>::max();
  const std::vector<Value> values = {Value::Int(hi),  Value::Null(),
                                     Value::Int(lo),  Value::Int(0),
                                     Value::Int(-1),  Value::Int(hi),
                                     Value::Int(lo),  Value::Int(42)};
  ASSERT_EQ(ColumnVector::FromValues(values).tag(),
            ColumnVector::Tag::kInt64);
  ExpectKernelParity(values, nullptr);

  // The extremum kernels must find the exact INT64 boundaries.
  ASSERT_OK_AND_ASSIGN(auto min_agg, MakeBuiltinAggregate("min"));
  ASSERT_OK_AND_ASSIGN(auto max_agg, MakeBuiltinAggregate("max"));
  const ColumnVector col = ColumnVector::FromValues(values);
  ASSERT_OK_AND_ASSIGN(Value mn, FoldBatch(*min_agg, col, nullptr));
  ASSERT_OK_AND_ASSIGN(Value mx, FoldBatch(*max_agg, col, nullptr));
  EXPECT_EQ(mn.int_value(), lo);
  EXPECT_EQ(mx.int_value(), hi);
}

TEST(FoldKernelTest, SumOfPureIntColumnStaysInt) {
  const std::vector<Value> values = {Value::Int(1), Value::Int(2),
                                     Value::Null(), Value::Int(3)};
  ASSERT_OK_AND_ASSIGN(auto agg, MakeBuiltinAggregate("sum"));
  ASSERT_OK_AND_ASSIGN(Value v,
                       FoldBatch(*agg, ColumnVector::FromValues(values),
                                 nullptr));
  EXPECT_TRUE(v.is_int()) << v.ToString();  // not silently widened to double
  EXPECT_EQ(v.int_value(), 6);
}

TEST(FoldKernelTest, AllNullColumnMatchesRowFold) {
  const std::vector<Value> values(100, Value::Null());
  const ColumnVector col = ColumnVector::FromValues(values);
  ASSERT_EQ(col.tag(), ColumnVector::Tag::kInt64);  // all-NULL unboxes
  EXPECT_EQ(col.validity().CountValid(), 0);
  ExpectKernelParity(values, nullptr);
  ASSERT_OK_AND_ASSIGN(auto min_agg, MakeBuiltinAggregate("min"));
  ASSERT_OK_AND_ASSIGN(auto count_agg, MakeBuiltinAggregate("count"));
  ASSERT_OK_AND_ASSIGN(Value mn, FoldBatch(*min_agg, col, nullptr));
  ASSERT_OK_AND_ASSIGN(Value cnt, FoldBatch(*count_agg, col, nullptr));
  EXPECT_TRUE(mn.is_null());
  EXPECT_EQ(cnt.int_value(), 0);
}

TEST(FoldKernelTest, SelectionSubsetsAndUnalignedTails) {
  std::vector<Value> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(i % 7 == 0 ? Value::Null()
                                : Value::Double(i * 0.5 - 17.25));
  }
  ASSERT_EQ(ColumnVector::FromValues(values).tag(),
            ColumnVector::Tag::kDouble);

  std::vector<int32_t> strided;
  for (int32_t i = 0; i < 1000; i += 3) strided.push_back(i);
  const std::vector<int32_t> tail = {997, 998, 999};
  const std::vector<int32_t> word_boundary = {60, 61, 62, 63, 64, 65, 70};
  const std::vector<int32_t> single = {511};
  const std::vector<int32_t> empty;

  ExpectKernelParity(values, nullptr);
  ExpectKernelParity(values, &strided);
  ExpectKernelParity(values, &tail);
  ExpectKernelParity(values, &word_boundary);
  ExpectKernelParity(values, &single);
  ExpectKernelParity(values, &empty);
}

TEST(FoldKernelTest, MixedNumericColumnFallsBackGenerically) {
  // Int+double mix must stay boxed so sum_is_int demotion matches the row
  // path exactly.
  const std::vector<Value> values = {Value::Int(1), Value::Double(2.5),
                                     Value::Null(), Value::Int(3)};
  const ColumnVector col = ColumnVector::FromValues(values);
  ASSERT_EQ(col.tag(), ColumnVector::Tag::kGeneric);
  ExpectKernelParity(values, nullptr);
  ASSERT_OK_AND_ASSIGN(auto agg, MakeBuiltinAggregate("sum"));
  ASSERT_OK_AND_ASSIGN(Value v, FoldBatch(*agg, col, nullptr));
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.double_value(), 6.5);
}

TEST(FoldKernelTest, FloatAccumulationOrderIsPreserved) {
  // Catastrophic-cancellation pattern: any reordering or pairwise summation
  // in the kernel shows up as a different bit pattern than the sequential
  // reference.
  std::vector<Value> values;
  for (int i = 0; i < 256; ++i) {
    values.push_back(Value::Double(i % 2 == 0 ? 1e16 : -1e16 + 1.0));
  }
  ExpectKernelParity(values, nullptr);
}

// --- query-level batch-vs-row bit-identity ---------------------------------

class BatchQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineOptions row_opts;
    row_opts.execution.enable_batch = false;
    batch_session_ = std::make_unique<Session>(&batch_db_);
    row_session_ = std::make_unique<Session>(&row_db_, row_opts);
    const std::string ddl =
        "CREATE TABLE t (g INT, v INT); "
        "INSERT INTO t VALUES (1, 10), (2, NULL), (1, -5), (3, 7), (2, 2), "
        "(1, NULL), (3, 40), (2, 0), (3, NULL), (1, 10);";
    ASSERT_OK(batch_session_->RunSql(ddl));
    ASSERT_OK(row_session_->RunSql(ddl));
  }

  /// Runs `sql` through both sessions and asserts bit-identical results —
  /// values, NULLs, and row (group emission) order.
  void ExpectSameResults(const std::string& sql) {
    ASSERT_OK_AND_ASSIGN(QueryResult batched, batch_session_->Query(sql));
    ASSERT_OK_AND_ASSIGN(QueryResult rowed, row_session_->Query(sql));
    ASSERT_EQ(batched.rows.size(), rowed.rows.size()) << sql;
    for (size_t r = 0; r < batched.rows.size(); ++r) {
      ASSERT_EQ(batched.rows[r].size(), rowed.rows[r].size()) << sql;
      for (size_t c = 0; c < batched.rows[r].size(); ++c) {
        EXPECT_TRUE(batched.rows[r][c].StructurallyEquals(rowed.rows[r][c]))
            << sql << " row " << r << " col " << c << ": "
            << batched.rows[r][c].ToString() << " vs "
            << rowed.rows[r][c].ToString();
      }
    }
  }

  Database batch_db_;
  Database row_db_;
  std::unique_ptr<Session> batch_session_;
  std::unique_ptr<Session> row_session_;
};

TEST_F(BatchQueryTest, ScalarAggregatesAreBitIdentical) {
  ExpectSameResults(
      "SELECT COUNT(*) AS a, COUNT(v) AS b, SUM(v) AS c, MIN(v) AS d, "
      "MAX(v) AS e, AVG(v) AS f FROM t");
}

TEST_F(BatchQueryTest, GroupedAggregatesPreserveEmissionOrder) {
  ExpectSameResults("SELECT g, SUM(v), COUNT(*), MIN(v), MAX(v) FROM t "
                    "GROUP BY g");
}

TEST_F(BatchQueryTest, CompiledPredicateShapesMatchRowFilter) {
  // col-op-const, const-op-col (mirrored), and col-op-col all hit the
  // compiled selection kernel; each must narrow exactly like EvalPredicate.
  ExpectSameResults("SELECT g, COUNT(*), SUM(v) FROM t WHERE v > 0 GROUP BY g");
  ExpectSameResults("SELECT g, COUNT(*), SUM(v) FROM t WHERE 0 < v GROUP BY g");
  ExpectSameResults("SELECT COUNT(*), MIN(v) FROM t WHERE g < v");
  ExpectSameResults(
      "SELECT g, COUNT(*) FROM t WHERE v >= -5 AND v <= 10 GROUP BY g");
}

TEST_F(BatchQueryTest, NonKernelPredicatesFallBackRowwise) {
  // String comparison and arithmetic predicates compile to no kernel; the
  // batch filter must replay them row-at-a-time with identical results.
  ExpectSameResults(
      "SELECT COUNT(*) FROM t WHERE 'WITH c AS (x)' <> 'other'");
  ExpectSameResults("SELECT SUM(v) FROM t WHERE v + g > 8");
}

TEST_F(BatchQueryTest, NullComparisonPoisonsSelectionIdentically) {
  // v > NULL is NULL for every row: the compiled kernel short-circuits to an
  // empty selection; the row path rejects each row. Same empty aggregate.
  ExpectSameResults("SELECT COUNT(*), SUM(v), MIN(v) FROM t WHERE v > NULL");
}

TEST_F(BatchQueryTest, MorselUnalignedTableMatchesAcrossDop) {
  // 5000 rows of (g INT, v INT): 1024 rows/page, 2048-row batches -> the
  // last batch (and the last morsel at dop 4) are partial. Exercises tail
  // handling in the scan, the kernels, and the parallel batch workers.
  std::string insert = "INSERT INTO big VALUES ";
  for (int i = 0; i < 5000; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i % 13) + ", ";
    insert += i % 11 == 0 ? "NULL" : std::to_string(i - 2500);
    insert += ")";
  }
  insert += ";";
  for (Session* s : {batch_session_.get(), row_session_.get()}) {
    ASSERT_OK(s->RunSql("CREATE TABLE big (g INT, v INT);"));
    ASSERT_OK(s->RunSql(insert));
  }
  ExpectSameResults("SELECT COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) "
                    "FROM big");
  ExpectSameResults("SELECT g, COUNT(*), SUM(v) FROM big WHERE v > -1000 "
                    "GROUP BY g");

  // Same statement at dop 4 in both sessions: parallel batch workers vs
  // parallel row workers.
  ASSERT_OK_AND_ASSIGN(auto stmt, ParseSelect(
      "SELECT g, COUNT(*), SUM(v), MIN(v) FROM big GROUP BY g"));
  EngineOptions batch4 = EngineOptions::WithDop(4);
  EngineOptions row4 = EngineOptions::WithDop(4);
  row4.execution.enable_batch = false;
  ExecContext bctx = batch_session_->MakeContext();
  ExecContext rctx = row_session_->MakeContext();
  VariableEnv benv, renv;
  bctx.set_vars(&benv);
  rctx.set_vars(&renv);
  ASSERT_OK_AND_ASSIGN(QueryResult pb,
                       batch_session_->engine().Execute(*stmt, bctx, &batch4));
  ASSERT_OK_AND_ASSIGN(QueryResult pr,
                       row_session_->engine().Execute(*stmt, rctx, &row4));
  ASSERT_EQ(pb.rows.size(), pr.rows.size());
  for (size_t r = 0; r < pb.rows.size(); ++r) {
    for (size_t c = 0; c < pb.rows[r].size(); ++c) {
      EXPECT_TRUE(pb.rows[r][c].StructurallyEquals(pr.rows[r][c]))
          << "dop4 row " << r << " col " << c;
    }
  }
}

TEST_F(BatchQueryTest, IoStatsMatchRowPipeline) {
  // The batch scan must charge exactly the pages and rows the row scan does
  // (paper metric: logical reads must be a property of the plan, not the
  // execution strategy).
  const std::string sql =
      "SELECT g, SUM(v) FROM t WHERE v >= -100 GROUP BY g";
  batch_db_.stats().Reset();
  ASSERT_OK(batch_session_->Query(sql).status());
  row_db_.stats().Reset();
  ASSERT_OK(row_session_->Query(sql).status());
  EXPECT_EQ(batch_db_.stats().logical_reads, row_db_.stats().logical_reads);
  EXPECT_EQ(batch_db_.stats().rows_produced, row_db_.stats().rows_produced);
}

TEST_F(BatchQueryTest, ExplainMarksBatchPipelines) {
  ASSERT_OK_AND_ASSIGN(auto stmt,
                       ParseSelect("SELECT g, SUM(v) FROM t GROUP BY g"));
  ExecContext ctx = batch_session_->MakeContext();
  VariableEnv env;
  ctx.set_vars(&env);
  ASSERT_OK_AND_ASSIGN(std::string plan,
                       batch_session_->engine().Explain(*stmt, ctx));
  EXPECT_NE(plan.find("[batch]"), std::string::npos) << plan;

  EngineOptions off;
  off.execution.enable_batch = false;
  ASSERT_OK_AND_ASSIGN(std::string row_plan,
                       batch_session_->engine().Explain(*stmt, ctx, &off));
  EXPECT_EQ(row_plan.find("[batch]"), std::string::npos) << row_plan;
}

// --- ReadBatch page accounting ---------------------------------------------

TEST(TableReadBatchTest, ChargesPagesLikeAReadRowLoop) {
  Table t("t",
          Schema({Column("a", DataType::Int()), Column("b", DataType::Int())}));
  for (int i = 0; i < 3000; ++i) {  // 1024 rows/page -> 3 pages, last partial
    ASSERT_OK(t.Insert({Value::Int(i), Value::Int(i * 2)}, nullptr));
  }

  auto row_loop_reads = [&t](int64_t window) {
    IoStats stats;
    int64_t last_page = -1;
    for (int64_t b = 0; b < t.num_rows(); b += window) {
      const int64_t n = std::min(window, t.num_rows() - b);
      for (int64_t i = b; i < b + n; ++i) t.ReadRow(i, &last_page, &stats);
    }
    return stats.logical_reads;
  };
  auto batch_reads = [&t](int64_t window) {
    IoStats stats;
    int64_t last_page = -1;
    for (int64_t b = 0; b < t.num_rows(); b += window) {
      const int64_t n = std::min(window, t.num_rows() - b);
      const Row* rows = t.ReadBatch(b, n, &last_page, &stats);
      EXPECT_EQ(rows[0][0].int_value(), b);  // contiguous window starts at b
    }
    return stats.logical_reads;
  };

  // Page-aligned, sub-page, page-straddling, and whole-table windows — all
  // unaligned sizes must charge exactly what the row loop charges.
  for (int64_t window : {int64_t{1}, int64_t{7}, int64_t{1000}, int64_t{1024},
                         int64_t{1025}, int64_t{2048}, int64_t{2999},
                         int64_t{3000}}) {
    EXPECT_EQ(batch_reads(window), row_loop_reads(window))
        << "window " << window;
  }
  EXPECT_EQ(batch_reads(2048), t.num_pages());  // sequential scan: 1 per page
}

}  // namespace
}  // namespace aggify
