// Tests for Froid inlining and decorrelation — the "Aggify+" pipeline:
// cursor loop -> custom aggregate (Aggify) -> inlined correlated subquery
// (Froid) -> GROUP BY + LEFT JOIN (decorrelation).
#include <gtest/gtest.h>

#include "aggify/rewriter.h"
#include "froid/froid.h"
#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

class FroidTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(&db_);
    ASSERT_OK(session_->RunSql(R"(
      CREATE TABLE part (p_partkey INT, p_name CHAR(25));
      CREATE TABLE partsupp (ps_partkey INT, ps_suppkey INT,
                             ps_supplycost DECIMAL(15,2));
      CREATE TABLE supplier (s_suppkey INT, s_name CHAR(25));
      INSERT INTO part VALUES (1, 'p1'), (2, 'p2'), (3, 'p3'), (4, 'p4');
      INSERT INTO partsupp VALUES (1, 10, 50.0), (1, 11, 30.0), (1, 12, 70.0),
                                  (2, 10, 5.0), (2, 12, 8.0), (3, 11, 99.0);
      INSERT INTO supplier VALUES (10, 'supp_ten'), (11, 'supp_eleven'),
                                  (12, 'supp_twelve');
      CREATE FUNCTION mincostsupp(@pkey INT, @lb INT = -1) RETURNS CHAR(25) AS
      BEGIN
        DECLARE @pcost DECIMAL(15,2);
        DECLARE @scname CHAR(25);
        DECLARE @mincost DECIMAL(15,2) = 100000;
        DECLARE @suppname CHAR(25);
        IF (@lb = -1)
          SET @lb = 0;
        DECLARE c CURSOR FOR
          SELECT ps_supplycost, s_name FROM partsupp, supplier
          WHERE ps_partkey = @pkey AND ps_suppkey = s_suppkey;
        OPEN c;
        FETCH NEXT FROM c INTO @pcost, @scname;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          IF (@pcost < @mincost AND @pcost >= @lb)
          BEGIN
            SET @mincost = @pcost;
            SET @suppname = @scname;
          END
          FETCH NEXT FROM c INTO @pcost, @scname;
        END
        CLOSE c;
        DEALLOCATE c;
        RETURN @suppname;
      END
    )"));
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(FroidTest, CursorUdfIsNotInlinableUntilAggified) {
  Froid froid(&db_);
  ASSERT_OK_AND_ASSIGN(auto def, db_.catalog().GetFunction("mincostsupp"));
  auto tmpl = froid.BuildInlineTemplate(*def);
  ASSERT_FALSE(tmpl.ok());
  EXPECT_TRUE(tmpl.status().IsNotApplicable());

  Aggify aggify(&db_);
  ASSERT_OK(aggify.RewriteFunction("mincostsupp").status());
  ASSERT_OK_AND_ASSIGN(auto def2, db_.catalog().GetFunction("mincostsupp"));
  ASSERT_OK(froid.BuildInlineTemplate(*def2).status());
}

TEST_F(FroidTest, InlinedQueryMatchesUdfResults) {
  // Reference: per-row UDF invocation on the original cursor program.
  ASSERT_OK_AND_ASSIGN(
      QueryResult reference,
      session_->Query("SELECT p_partkey, mincostsupp(p_partkey) AS s "
                      "FROM part ORDER BY p_partkey"));

  Aggify aggify(&db_);
  ASSERT_OK(aggify.RewriteFunction("mincostsupp").status());

  ASSERT_OK_AND_ASSIGN(auto stmt,
                       ParseSelect("SELECT p_partkey, mincostsupp(p_partkey) "
                                   "AS s FROM part ORDER BY p_partkey"));
  Froid froid(&db_);
  ASSERT_OK_AND_ASSIGN(int rewrites, froid.RewriteQuery(stmt.get()));
  EXPECT_GE(rewrites, 2);  // one inline + one decorrelation

  // The rewritten statement no longer calls the UDF.
  std::string text = stmt->ToString();
  EXPECT_EQ(text.find("mincostsupp("), std::string::npos) << text;
  EXPECT_NE(text.find("LEFT JOIN"), std::string::npos) << text;

  ExecContext ctx = session_->MakeContext();
  VariableEnv env;
  ctx.set_vars(&env);
  ASSERT_OK_AND_ASSIGN(QueryResult rewritten,
                       session_->engine().Execute(*stmt, ctx));
  ASSERT_EQ(rewritten.rows.size(), reference.rows.size());
  for (size_t i = 0; i < reference.rows.size(); ++i) {
    EXPECT_TRUE(RowsEqual(rewritten.rows[i], reference.rows[i]))
        << "row " << i << ": " << RowToString(rewritten.rows[i]) << " vs "
        << RowToString(reference.rows[i]);
  }
}

TEST_F(FroidTest, DecorrelationExecutesOneQueryNotPerRow) {
  Aggify aggify(&db_);
  ASSERT_OK(aggify.RewriteFunction("mincostsupp").status());
  Froid froid(&db_);

  ASSERT_OK_AND_ASSIGN(auto stmt,
                       ParseSelect("SELECT p_partkey, mincostsupp(p_partkey) "
                                   "AS s FROM part"));
  ASSERT_OK(froid.RewriteQuery(stmt.get()).status());

  db_.stats().Reset();
  ExecContext ctx = session_->MakeContext();
  VariableEnv env;
  ctx.set_vars(&env);
  ASSERT_OK(session_->engine().Execute(*stmt, ctx).status());
  // Set-oriented plan: a small constant number of nested query executions
  // (outer + derived tables), not one per part.
  EXPECT_LE(db_.stats().queries_executed, 4);
}

TEST_F(FroidTest, PlainBuiltinAggregateSubqueryDecorrelates) {
  ASSERT_OK_AND_ASSIGN(
      QueryResult reference,
      session_->Query("SELECT p_partkey, (SELECT MIN(ps_supplycost) "
                      "FROM partsupp WHERE ps_partkey = p_partkey) AS m "
                      "FROM part ORDER BY p_partkey"));
  ASSERT_OK_AND_ASSIGN(
      auto stmt,
      ParseSelect("SELECT p_partkey, (SELECT MIN(ps_supplycost) "
                  "FROM partsupp WHERE ps_partkey = p_partkey) AS m "
                  "FROM part ORDER BY p_partkey"));
  Froid froid(&db_);
  ASSERT_OK_AND_ASSIGN(int n, froid.DecorrelateScalarSubqueries(stmt.get()));
  EXPECT_EQ(n, 1);

  ExecContext ctx = session_->MakeContext();
  VariableEnv env;
  ctx.set_vars(&env);
  ASSERT_OK_AND_ASSIGN(QueryResult rewritten,
                       session_->engine().Execute(*stmt, ctx));
  ASSERT_EQ(rewritten.rows.size(), reference.rows.size());
  for (size_t i = 0; i < reference.rows.size(); ++i) {
    EXPECT_TRUE(RowsEqual(rewritten.rows[i], reference.rows[i]))
        << RowToString(rewritten.rows[i]) << " vs "
        << RowToString(reference.rows[i]);
  }
}

TEST_F(FroidTest, CountSubqueryIsNotDecorrelated) {
  // COUNT over an empty group must stay 0; the LEFT JOIN rewrite would make
  // it NULL, so Froid must refuse.
  ASSERT_OK_AND_ASSIGN(
      auto stmt,
      ParseSelect("SELECT p_partkey, (SELECT COUNT(ps_suppkey) FROM partsupp "
                  "WHERE ps_partkey = p_partkey) AS c FROM part"));
  Froid froid(&db_);
  ASSERT_OK_AND_ASSIGN(int n, froid.DecorrelateScalarSubqueries(stmt.get()));
  EXPECT_EQ(n, 0);
}

TEST_F(FroidTest, StraightLineUdfInlinesIntoExpression) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION clamp(@x INT, @lo INT, @hi INT) RETURNS INT AS
    BEGIN
      DECLARE @r INT = @x;
      IF (@x < @lo)
        SET @r = @lo;
      IF (@x > @hi)
        SET @r = @hi;
      RETURN @r;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(auto def, db_.catalog().GetFunction("clamp"));
  Froid froid(&db_);
  ASSERT_OK_AND_ASSIGN(ExprPtr tmpl, froid.BuildInlineTemplate(*def));
  // CASE WHEN structure with all three parameters present.
  std::string text = tmpl->ToString();
  EXPECT_NE(text.find("CASE"), std::string::npos) << text;

  ASSERT_OK_AND_ASSIGN(
      auto stmt, ParseSelect("SELECT clamp(p_partkey, 2, 3) AS c FROM part"));
  ASSERT_OK_AND_ASSIGN(int n, froid.InlineUdfCalls(stmt.get()));
  EXPECT_EQ(n, 1);
  ExecContext ctx = session_->MakeContext();
  VariableEnv env;
  ctx.set_vars(&env);
  ASSERT_OK_AND_ASSIGN(QueryResult r, session_->engine().Execute(*stmt, ctx));
  std::vector<int64_t> got;
  for (const auto& row : r.rows) got.push_back(row[0].int_value());
  EXPECT_EQ(got, (std::vector<int64_t>{2, 2, 3, 3}));
}

}  // namespace
}  // namespace aggify
