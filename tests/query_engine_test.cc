// QueryEngine-level tests: CTE semantics, recursion guards, plan-cache
// behavior, and EXPLAIN.
#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(&db_);
    ASSERT_OK(session_->RunSql(
        "CREATE TABLE base (x INT); INSERT INTO base VALUES (1), (2), (3);"));
  }
  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(QueryEngineTest, LaterCtesSeeEarlierOnes) {
  ASSERT_OK_AND_ASSIGN(QueryResult r, session_->Query(R"(
      WITH doubled AS (SELECT x * 2 AS y FROM base),
           shifted AS (SELECT y + 1 AS z FROM doubled)
      SELECT SUM(z) AS total FROM shifted)"));
  EXPECT_EQ(r.rows[0][0].int_value(), 3 + 5 + 7);
}

TEST_F(QueryEngineTest, CteColumnCountMismatchIsBindError) {
  auto r = session_->Query(
      "WITH c (a, b) AS (SELECT x FROM base) SELECT * FROM c");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST_F(QueryEngineTest, RunawayRecursiveCteIsBounded) {
  ASSERT_OK_AND_ASSIGN(auto stmt, ParseSelect(R"(
      WITH c (i) AS (SELECT 0 AS i UNION ALL SELECT i + 1 FROM c WHERE i >= 0)
      SELECT COUNT(*) FROM c)"));
  ExecContext ctx = session_->MakeContext();
  VariableEnv env;
  ctx.set_vars(&env);
  ctx.max_recursion = 1000;  // tighten the guard for the test
  auto r = session_->engine().Execute(*stmt, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("max recursion"), std::string::npos);
}

TEST_F(QueryEngineTest, RecursiveCteSemiNaiveTermination) {
  // A diamond-ish recursion that converges because the delta empties.
  ASSERT_OK_AND_ASSIGN(QueryResult r, session_->Query(R"(
      WITH c (i) AS (SELECT x AS i FROM base
                     UNION ALL SELECT i + 10 FROM c WHERE i < 25)
      SELECT COUNT(*) AS n, MAX(i) AS m FROM c)"));
  // 1,2,3 -> 11,12,13 -> 21,22,23 -> 31,32,33 (stop: 21..23 < 25 produce).
  EXPECT_EQ(r.rows[0][0].int_value(), 12);
  EXPECT_EQ(r.rows[0][1].int_value(), 33);
}

TEST_F(QueryEngineTest, PlanCacheDoesNotServeStaleDataAcrossInserts) {
  ASSERT_OK_AND_ASSIGN(QueryResult before,
                       session_->Query("SELECT COUNT(*) FROM base"));
  EXPECT_EQ(before.rows[0][0].int_value(), 3);
  // Insert through the same session; cached plans must see the new row —
  // plans reference live tables, so appends are immediately visible.
  ASSERT_OK(session_->RunSql("INSERT INTO base VALUES (4);").status());
  ASSERT_OK_AND_ASSIGN(QueryResult after,
                       session_->Query("SELECT COUNT(*) FROM base"));
  EXPECT_EQ(after.rows[0][0].int_value(), 4);
}

TEST_F(QueryEngineTest, PlanCacheCapEvictsWithoutBreaking) {
  // Blow through the 512-entry cap with distinct statements; everything
  // must keep answering correctly.
  for (int i = 0; i < 600; ++i) {
    ASSERT_OK_AND_ASSIGN(
        QueryResult r,
        session_->Query("SELECT COUNT(*) FROM base WHERE x > " +
                        std::to_string(i % 3)));
    EXPECT_EQ(r.rows[0][0].int_value(), 3 - i % 3);
  }
  EXPECT_LE(session_->engine().plan_cache().size(), 512u);
}

TEST_F(QueryEngineTest, PlanCacheServesAndKeysPerQueryOverrides) {
  // Overridden executions cache under an options-fingerprinted key: the
  // same override hits its own entry, and the engine-default configuration
  // never shares a plan with it (a dop=4 plan must not serve dop=1).
  ASSERT_OK_AND_ASSIGN(auto stmt, ParseSelect("SELECT COUNT(*) FROM base"));
  ExecContext ctx = session_->MakeContext();
  VariableEnv env;
  ctx.set_vars(&env);
  EngineOptions dop4 = EngineOptions::WithDop(4);
  const PlanCache& cache = session_->engine().plan_cache();

  int64_t h0 = cache.hits();
  ASSERT_OK_AND_ASSIGN(QueryResult first,
                       session_->engine().Execute(*stmt, ctx, &dop4));
  EXPECT_EQ(cache.hits(), h0);  // cold: miss + insert
  ASSERT_OK_AND_ASSIGN(QueryResult second,
                       session_->engine().Execute(*stmt, ctx, &dop4));
  EXPECT_EQ(cache.hits(), h0 + 1);  // same override: served from cache
  EXPECT_EQ(second.rows[0][0].int_value(), first.rows[0][0].int_value());

  // Engine defaults key separately: first run misses, second hits.
  ASSERT_OK(session_->engine().Execute(*stmt, ctx).status());
  EXPECT_EQ(cache.hits(), h0 + 1);
  ASSERT_OK(session_->engine().Execute(*stmt, ctx).status());
  EXPECT_EQ(cache.hits(), h0 + 2);
}

TEST_F(QueryEngineTest, StringLiteralContainingWithIsCacheable) {
  // The old nested-CTE check scanned the statement text for "WITH " and
  // refused to cache any statement whose string literals contained it.
  const std::string sql =
      "SELECT COUNT(*) FROM base WHERE 'WITH c AS (x)' <> 'other'";
  const PlanCache& cache = session_->engine().plan_cache();
  ASSERT_OK_AND_ASSIGN(QueryResult first, session_->Query(sql));
  EXPECT_EQ(first.rows[0][0].int_value(), 3);
  int64_t h0 = cache.hits();
  ASSERT_OK_AND_ASSIGN(QueryResult second, session_->Query(sql));
  EXPECT_EQ(cache.hits(), h0 + 1) << "literal 'WITH ' defeated the cache";
  EXPECT_EQ(second.rows[0][0].int_value(), 3);
}

TEST_F(QueryEngineTest, DerivedTableWithNestedCtesIsNotCached) {
  // A derived table carrying its own WITH clause materializes CTE rows at
  // plan time; caching such a plan would freeze the data.
  const std::string sql =
      "SELECT s FROM (WITH c AS (SELECT x FROM base) "
      "SELECT SUM(x) AS s FROM c) q";
  const PlanCache& cache = session_->engine().plan_cache();
  size_t s0 = cache.size();
  ASSERT_OK_AND_ASSIGN(QueryResult before, session_->Query(sql));
  EXPECT_EQ(before.rows[0][0].int_value(), 6);
  // Only the inner CTE body ("SELECT x FROM base") may cache; neither the
  // outer statement nor the CTE-scoped subquery gets an entry.
  EXPECT_EQ(cache.size(), s0 + 1);
  ASSERT_OK(session_->RunSql("INSERT INTO base VALUES (10);").status());
  ASSERT_OK_AND_ASSIGN(QueryResult after, session_->Query(sql));
  EXPECT_EQ(after.rows[0][0].int_value(), 16) << "served stale CTE rows";
  EXPECT_EQ(cache.size(), s0 + 1);
}

TEST_F(QueryEngineTest, FailedExecutionReleasesCachedPlanEntry) {
  // A failing execution over a cached plan must release the entry's in-use
  // flag (scoped lease); otherwise the statement silently stops caching.
  const std::string sql = "SELECT COUNT(*) FROM base";
  ASSERT_OK(session_->Query(sql).status());  // populate the cache
  const PlanCache& cache = session_->engine().plan_cache();
  int64_t h0 = cache.hits();
  {
    ScopedFailPoint fp("exec.scan.next");
    ASSERT_FALSE(session_->Query(sql).ok());
  }
  EXPECT_EQ(cache.hits(), h0 + 1);  // the failing run acquired the entry
  ASSERT_OK_AND_ASSIGN(QueryResult r, session_->Query(sql));
  EXPECT_EQ(cache.hits(), h0 + 2) << "entry left pinned by the failed run";
  EXPECT_EQ(r.rows[0][0].int_value(), 3);
}

TEST_F(QueryEngineTest, ExplainRendersATree) {
  ASSERT_OK_AND_ASSIGN(auto stmt,
                       ParseSelect("SELECT x, COUNT(*) FROM base GROUP BY x"));
  ExecContext ctx = session_->MakeContext();
  VariableEnv env;
  ctx.set_vars(&env);
  ASSERT_OK_AND_ASSIGN(std::string plan, session_->engine().Explain(*stmt, ctx));
  EXPECT_NE(plan.find("HashAggregate"), std::string::npos) << plan;
  EXPECT_NE(plan.find("SeqScan(base)"), std::string::npos) << plan;
}

TEST_F(QueryEngineTest, SelectWithoutFromEvaluatesExpressions) {
  ASSERT_OK_AND_ASSIGN(QueryResult r,
                       session_->Query("SELECT 1 + 2 AS a, 'x' || 'y' AS b"));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int_value(), 3);
  EXPECT_EQ(r.rows[0][1].string_value(), "xy");
}

TEST_F(QueryEngineTest, DeepNestingGuard) {
  // Self-referential UDF through a query triggers the depth guard rather
  // than a stack overflow.
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION deep(@x INT) RETURNS INT AS
    BEGIN
      RETURN (SELECT MAX(x) FROM base WHERE x > deep(@x));
    END
  )"));
  auto r = session_->Call("deep", {Value::Int(0)});
  ASSERT_FALSE(r.ok());
}

}  // namespace
}  // namespace aggify
