// Randomized classifier ↔ synthesizer agreement fuzzing (ISSUE 8 satellite).
//
// A deterministic generator assembles loop bodies from fold / affine /
// guard / product / derived / scratch templates over two accumulators and
// two row variables. For every seeded case:
//
//   1. Agreement: if the fold classifier proves the body decomposable, the
//      homomorphism calculus must also derive a plan (it subsumes the
//      four-shape algebra).
//   2. Soundness: ANY plan the calculus accepts must pass the shuffle-sweep
//      certificate — partitioned execution at DOP 2/3/4, random
//      permutations, and random splits all Terminate bit-identically to the
//      serial fold. There is no "probably commutative": accepted means
//      certified.
//
// The generator deliberately mixes accepted shapes with adversarial ones
// (non-unit coefficients, last-value overwrites, stateful guards, mutated
// row variables) so both verdict paths stay exercised.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "aggify/merge_certificate.h"
#include "analysis/fold_classifier.h"
#include "analysis/merge_synthesis.h"
#include "exec/eval.h"
#include "parser/parser.h"
#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

/// Deterministic xorshift64* — mirrors the certificate harness RNG so the
/// suite reproduces identically everywhere.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ULL) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

 private:
  uint64_t state_;
};

const char* const kFields[] = {"@a", "@b"};
const char* const kRowExprs[] = {"@x", "@y", "@x + 1", "@x * 2", "2",
                                 "@x + @y", "0 - @x"};
const char* const kGuards[] = {"@x > 0", "@y < 3", "@x + @y > 1"};

std::string RowExpr(Rng* rng) {
  return kRowExprs[rng->Below(sizeof(kRowExprs) / sizeof(kRowExprs[0]))];
}

std::string Guard(Rng* rng) {
  return kGuards[rng->Below(sizeof(kGuards) / sizeof(kGuards[0]))];
}

/// One random statement. Templates 0–4 are (usually) homomorphic; 5–9 are
/// adversarial. `scratch_declared` threads the one scratch local through
/// multi-statement bodies.
std::string RandomStmt(Rng* rng, bool* scratch_declared) {
  const std::string f = kFields[rng->Below(2)];
  switch (rng->Below(10)) {
    case 0:
      return "SET " + f + " = " + f + " + " + RowExpr(rng) + ";";
    case 1:  // affine arrangement: row term on the left
      return "SET " + f + " = " + RowExpr(rng) + " + " + f + ";";
    case 2:
      return "IF (" + Guard(rng) + ") SET " + f + " = " + f + " + " +
             RowExpr(rng) + ";";
    case 3:
      return "SET " + f + " = " + f + " * " + RowExpr(rng) + ";";
    case 4:
      return "IF (@x < " + f + ") SET " + f + " = @x;";
    case 5:  // last value — rejected
      return "SET " + f + " = " + RowExpr(rng) + ";";
    case 6:  // non-unit coefficient — rejected
      return "SET " + f + " = 2 * " + f + " + " + RowExpr(rng) + ";";
    case 7: {  // row-pure scratch, then a fold through it — accepted
      if (*scratch_declared) {
        return "SET " + f + " = " + f + " + @d;";
      }
      *scratch_declared = true;
      return "DECLARE @d INT;\nSET @d = " + RowExpr(rng) + ";\nSET " + f +
             " = " + f + " + @d;";
    }
    case 8:  // guard reads both accumulators — rejected (stateful)
      return "IF (@a > @b) SET " + f + " = " + f + " + " + RowExpr(rng) +
             ";";
    default:  // derived-shaped: @b from @a; accepted iff ordered after
              // every @a update, rejected otherwise
      return "SET @b = @a + @a;";
  }
}

std::string RandomBody(Rng* rng) {
  const int n = 1 + static_cast<int>(rng->Below(3));
  bool scratch_declared = false;
  std::string body;
  for (int i = 0; i < n; ++i) {
    if (!body.empty()) body += "\n";
    body += RandomStmt(rng, &scratch_declared);
  }
  return body;
}

TEST(MergeFuzzTest, ClassifierSynthesizerAgreementAndCertifiedSoundness) {
  const std::set<std::string> fields = {"@a", "@b"};
  const std::set<std::string> row_vars = {"@x", "@y"};
  Database db;

  constexpr int kCases = 500;
  int accepted = 0, rejected = 0, classifier_decomposable = 0;

  for (int seed = 1; seed <= kCases; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 0x9E3779B97F4A7C15ULL);
    const std::string text = RandomBody(&rng);
    SCOPED_TRACE("seed " + std::to_string(seed) + ":\n" + text);

    auto parsed = ParseStatements(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    std::shared_ptr<const BlockStmt> body(
        static_cast<const BlockStmt*>(std::move(parsed).ValueOrDie().release()));

    BodyClassification c =
        ClassifyLoopBody(*body, fields, row_vars, IsScalarBuiltinName);
    auto plan = SynthesizeMerge(*body, fields, row_vars, IsScalarBuiltinName);

    // (1) The calculus subsumes the fold algebra.
    if (c.decomposable) {
      ++classifier_decomposable;
      EXPECT_TRUE(plan->mergeable)
          << "classifier proved decomposable but synthesis refused: "
          << c.reason();
    }

    if (!plan->mergeable) {
      ++rejected;
      // A refusal must say why, with a typed code.
      EXPECT_FALSE(plan->blockers.empty());
      continue;
    }
    ++accepted;

    // (2) Accepted means certified: run the very sweep the rewriter runs.
    BodyClassification certified = c;
    certified.merge_plan = plan;
    certified.decomposable = true;
    certified.order_insensitive = true;

    LoopSets sets;
    sets.v_fetch = {"@x", "@y"};
    sets.v_fields = {"@a", "@b"};
    sets.p_accum = {"@x", "@y", "@a", "@b"};
    sets.v_init = {"@a", "@b"};
    sets.v_term = {"@a", "@b"};
    sets.ordered = false;
    LoopAggregate agg("fuzz_agg", body, std::move(sets),
                      std::move(certified));

    auto cert =
        RunShuffleSweepCertificate(agg, &db, static_cast<uint64_t>(seed));
    EXPECT_TRUE(cert.ok()) << cert.status().ToString();
  }

  // The generator must keep both verdict paths alive, or the property is
  // vacuous.
  EXPECT_GT(accepted, 50) << "generator starved the accept path";
  EXPECT_GT(rejected, 50) << "generator starved the reject path";
  EXPECT_GT(classifier_decomposable, 10);
  RecordProperty("accepted", accepted);
  RecordProperty("rejected", rejected);
}

// Fixed adversarial regressions: shapes engineered to look homomorphic.
TEST(MergeFuzzTest, AdversarialShapesAreRejectedOrCertified) {
  const std::set<std::string> fields = {"@a", "@b"};
  const std::set<std::string> row_vars = {"@x", "@y"};
  struct Case {
    const char* body;
    bool expect_mergeable;
  };
  const Case kCases[] = {
      // Affine-looking, not a homomorphism: coefficient depends on the row.
      {"SET @a = @a * @x + @x;", false},
      // Coefficient cancels to zero: an overwrite wearing a sum's clothes.
      {"SET @a = @a - @a + @x;", false},
      // Guard reads the other accumulator — but @b is never assigned here,
      // so it is loop-invariant state and the guard is constant: accepted
      // (and certified by the sweep across all @b baselines).
      {"IF (@b > 0) SET @a = @a + @x;", true},
      // Once @b actually accumulates, the same guard is stateful.
      {"SET @b = @b + 1;\nIF (@b > 0) SET @a = @a + @x;", false},
      // Product whose factor is mutated later in the body.
      {"SET @a = @a * @x;\nSET @x = 0;", false},
      // Derived field updated before its base.
      {"SET @b = @a + @a;\nSET @a = @a + @x;", false},
      // Zero-baseline-hostile product: must be accepted (augmentation, not
      // division) and certified against 0/NULL baselines by the sweep.
      {"SET @a = @a * @x;", true},
      // Conditional product under a row-pure guard.
      {"IF (@y > 0) SET @a = @a * @x;", true},
  };
  for (const Case& tc : kCases) {
    SCOPED_TRACE(tc.body);
    auto parsed = ParseStatements(tc.body);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    StmtPtr body = std::move(parsed).ValueOrDie();
    auto plan = SynthesizeMerge(static_cast<const BlockStmt&>(*body), fields,
                                row_vars, IsScalarBuiltinName);
    EXPECT_EQ(plan->mergeable, tc.expect_mergeable);
  }
}

}  // namespace
}  // namespace aggify
