// Unit tests for the storage layer: paged tables, buffer-pool accounting,
// hash indexes, worktables, and the catalog (including plan-cache fencing
// generations).
#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/table.h"
#include "test_util.h"

namespace aggify {
namespace {

Schema TwoIntSchema() {
  return Schema({Column("a", DataType::Int()), Column("b", DataType::Int())});
}

TEST(TableTest, PagingGeometryFollowsRowWidth) {
  // Two 4-byte ints -> 8 bytes wire per row -> 1024 rows per 8 KiB page.
  Table t("t", TwoIntSchema());
  EXPECT_EQ(t.rows_per_page(), 1024);

  Schema wide;
  for (int i = 0; i < 10; ++i) {
    wide.AddColumn(Column("c" + std::to_string(i), DataType::String(100)));
  }
  Table w("w", wide);
  EXPECT_EQ(w.rows_per_page(), 8192 / 1000);
}

TEST(TableTest, SequentialScanChargesOneReadPerPage) {
  Table t("t", TwoIntSchema());
  IoStats stats;
  for (int i = 0; i < 3000; ++i) {
    ASSERT_OK(t.Insert({Value::Int(i), Value::Int(i * 2)}, &stats));
  }
  EXPECT_EQ(t.num_pages(), 3);  // 1024 rows/page
  stats.Reset();
  int64_t last_page = -1;
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    t.ReadRow(i, &last_page, &stats);
  }
  EXPECT_EQ(stats.logical_reads, 3);
}

TEST(TableTest, WorktableAccountingIsSeparate) {
  Table wt("#wt", TwoIntSchema(), /*is_worktable=*/true);
  IoStats stats;
  for (int i = 0; i < 2048; ++i) {
    ASSERT_OK(wt.Insert({Value::Int(i), Value::Int(i)}, &stats));
  }
  EXPECT_EQ(stats.worktable_pages_written, 2);
  EXPECT_EQ(stats.logical_reads, 0);
  int64_t last_page = -1;
  for (int64_t i = 0; i < wt.num_rows(); ++i) wt.ReadRow(i, &last_page, &stats);
  EXPECT_EQ(stats.worktable_pages_read, 2);
  EXPECT_EQ(stats.logical_reads, 0);
  EXPECT_EQ(stats.TotalLogicalReads(), 2);
}

TEST(TableTest, InsertArityMismatchRejected) {
  Table t("t", TwoIntSchema());
  EXPECT_FALSE(t.Insert({Value::Int(1)}, nullptr).ok());
}

TEST(TableTest, HashIndexLookupAndMaintenance) {
  Table t("t", TwoIntSchema());
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(t.Insert({Value::Int(i % 10), Value::Int(i)}, nullptr));
  }
  ASSERT_OK(t.CreateIndex("idx_a", "a"));
  const HashIndex* idx = t.FindIndex("a");
  ASSERT_NE(idx, nullptr);
  const auto* matches = idx->Lookup(Value::Int(3));
  ASSERT_NE(matches, nullptr);
  EXPECT_EQ(matches->size(), 10u);
  // Index stays current for post-creation inserts.
  ASSERT_OK(t.Insert({Value::Int(3), Value::Int(999)}, nullptr));
  EXPECT_EQ(idx->Lookup(Value::Int(3))->size(), 11u);
  EXPECT_EQ(idx->Lookup(Value::Int(42)), nullptr);
  EXPECT_EQ(t.FindIndex("b"), nullptr);
}

TEST(TableTest, DeleteAndUpdateInvalidateIndexes) {
  Table t("t", TwoIntSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(t.Insert({Value::Int(i), Value::Int(i)}, nullptr));
  }
  ASSERT_OK(t.CreateIndex("idx_a", "a"));
  IoStats stats;
  int64_t removed = t.DeleteWhere(
      [](const Row& r) { return r[0].int_value() < 5; }, &stats);
  EXPECT_EQ(removed, 5);
  EXPECT_EQ(t.num_rows(), 5);
  EXPECT_EQ(t.FindIndex("a"), nullptr);  // stale index dropped
}

TEST(TableTest, UpdateWhereAppliesAssignments) {
  Table t("t", TwoIntSchema());
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(t.Insert({Value::Int(i), Value::Int(0)}, nullptr));
  }
  IoStats stats;
  ASSERT_OK(t.UpdateWhere(
      [](const Row& r) { return r[0].int_value() % 2 == 0; },
      [](Row* r) -> Status {
        (*r)[1] = Value::Int(99);
        return Status::OK();
      },
      &stats));
  EXPECT_EQ(t.RowAt(0)[1].int_value(), 99);
  EXPECT_EQ(t.RowAt(1)[1].int_value(), 0);
  EXPECT_EQ(t.RowAt(2)[1].int_value(), 99);
}

TEST(CatalogTest, NamesAreCaseInsensitive) {
  Catalog catalog;
  ASSERT_OK(catalog.CreateTable("Orders", TwoIntSchema()).status());
  EXPECT_TRUE(catalog.HasTable("ORDERS"));
  EXPECT_TRUE(catalog.HasTable("orders"));
  EXPECT_FALSE(catalog.CreateTable("ORDERS", TwoIntSchema()).ok());
}

TEST(CatalogTest, TempTablesLiveInTheirOwnNamespace) {
  Catalog catalog;
  ASSERT_OK(catalog.CreateTable("t", TwoIntSchema()).status());
  ASSERT_OK_AND_ASSIGN(Table * temp, catalog.CreateTempTable("#t", TwoIntSchema()));
  EXPECT_TRUE(temp->is_worktable());
  ASSERT_OK_AND_ASSIGN(Table * persistent, catalog.GetTable("t"));
  EXPECT_FALSE(persistent->is_worktable());
  catalog.DropTempTable("#t");
  EXPECT_FALSE(catalog.HasTable("#t"));
  EXPECT_TRUE(catalog.HasTable("t"));
}

TEST(CatalogTest, GenerationsFencePlanCaches) {
  Catalog catalog;
  int64_t p0 = catalog.persistent_generation();
  int64_t t0 = catalog.temp_generation();
  ASSERT_OK(catalog.CreateTable("t", TwoIntSchema()).status());
  EXPECT_GT(catalog.persistent_generation(), p0);
  EXPECT_EQ(catalog.temp_generation(), t0);
  ASSERT_OK(catalog.CreateTempTable("#w", TwoIntSchema()).status());
  EXPECT_GT(catalog.temp_generation(), t0);
  int64_t t1 = catalog.temp_generation();
  catalog.DropTempTable("#w");
  EXPECT_GT(catalog.temp_generation(), t1);
  // Dropping a non-existent temp table does not bump.
  int64_t t2 = catalog.temp_generation();
  catalog.DropTempTable("#nope");
  EXPECT_EQ(catalog.temp_generation(), t2);
}

TEST(SchemaTest, QualifiedLookupAndAmbiguity) {
  Schema s;
  s.AddColumn(Column("k", DataType::Int(), "a"));
  s.AddColumn(Column("k", DataType::Int(), "b"));
  s.AddColumn(Column("x", DataType::Int(), "a"));
  ASSERT_OK_AND_ASSIGN(size_t ak, s.IndexOf("a.k"));
  EXPECT_EQ(ak, 0u);
  ASSERT_OK_AND_ASSIGN(size_t bk, s.IndexOf("b.k"));
  EXPECT_EQ(bk, 1u);
  auto ambiguous = s.IndexOf("k");
  ASSERT_FALSE(ambiguous.ok());
  EXPECT_EQ(ambiguous.status().code(), StatusCode::kBindError);
  ASSERT_OK_AND_ASSIGN(size_t x, s.IndexOf("x"));  // unique: qualifier optional
  EXPECT_EQ(x, 2u);
  EXPECT_FALSE(s.IndexOf("missing").ok());
}

TEST(SchemaTest, WireSizeMatchesPaperAccounting) {
  // §10.6: 4-byte ints, 9-byte decimals, 25-byte chars.
  Schema s({Column("p_partkey", DataType::Int()),
            Column("ps_supplycost", DataType::Decimal(15, 2)),
            Column("s_name", DataType::String(25))});
  EXPECT_EQ(s.RowWireSize(), 4 + 9 + 25);
}

}  // namespace
}  // namespace aggify
