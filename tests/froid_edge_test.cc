// Froid symbolic-execution and inlining edge cases.
#include <gtest/gtest.h>

#include "froid/froid.h"
#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

class FroidEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(&db_);
    ASSERT_OK(session_->RunSql(
        "CREATE TABLE t (a INT, b INT); "
        "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30), (4, 40);"));
  }

  Result<ExprPtr> TemplateOf(const std::string& create_sql,
                             const std::string& name) {
    RETURN_NOT_OK(session_->RunSql(create_sql).status());
    ASSIGN_OR_RETURN(auto def, db_.catalog().GetFunction(name));
    Froid froid(&db_);
    return froid.BuildInlineTemplate(*def);
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(FroidEdgeTest, IfWithoutElseMergesWithEntryValue) {
  ASSERT_OK_AND_ASSIGN(ExprPtr tmpl, TemplateOf(R"(
    CREATE FUNCTION f1(@x INT) RETURNS INT AS
    BEGIN
      DECLARE @r INT = 0;
      IF (@x > 10)
        SET @r = 1;
      RETURN @r;
    END)", "f1"));
  // CASE WHEN @x > 10 THEN 1 ELSE 0 END
  std::string text = tmpl->ToString();
  EXPECT_NE(text.find("CASE WHEN"), std::string::npos) << text;
  EXPECT_NE(text.find("ELSE 0"), std::string::npos) << text;
}

TEST_F(FroidEdgeTest, NestedIfsBecomeNestedCases) {
  ASSERT_OK_AND_ASSIGN(ExprPtr tmpl, TemplateOf(R"(
    CREATE FUNCTION f2(@x INT) RETURNS INT AS
    BEGIN
      DECLARE @r INT = 0;
      IF (@x > 0)
      BEGIN
        IF (@x > 100)
          SET @r = 2;
        ELSE
          SET @r = 1;
      END
      RETURN @r;
    END)", "f2"));
  std::string text = tmpl->ToString();
  // Two CASE levels.
  size_t first = text.find("CASE WHEN");
  ASSERT_NE(first, std::string::npos) << text;
  EXPECT_NE(text.find("CASE WHEN", first + 1), std::string::npos) << text;
}

TEST_F(FroidEdgeTest, UnchangedVariablesDontGrowCases) {
  ASSERT_OK_AND_ASSIGN(ExprPtr tmpl, TemplateOf(R"(
    CREATE FUNCTION f3(@x INT) RETURNS INT AS
    BEGIN
      DECLARE @keep INT = 7;
      DECLARE @r INT = 0;
      IF (@x > 0)
        SET @r = @keep;
      RETURN @keep + @r;
    END)", "f3"));
  std::string text = tmpl->ToString();
  // @keep is branch-invariant: it must appear as the literal 7, not a CASE.
  EXPECT_NE(text.find("(7 + "), std::string::npos) << text;
}

TEST_F(FroidEdgeTest, WhileLoopIsNotInlinable) {
  auto tmpl = TemplateOf(R"(
    CREATE FUNCTION f4(@x INT) RETURNS INT AS
    BEGIN
      DECLARE @r INT = 0;
      WHILE @r < @x
        SET @r = @r + 1;
      RETURN @r;
    END)", "f4");
  ASSERT_FALSE(tmpl.ok());
  EXPECT_TRUE(tmpl.status().IsNotApplicable());
}

TEST_F(FroidEdgeTest, MissingReturnIsNotInlinable) {
  auto tmpl = TemplateOf(R"(
    CREATE PROCEDURE p1(@x INT) AS
    BEGIN
      DECLARE @r INT = @x;
    END)", "p1");
  ASSERT_FALSE(tmpl.ok());
}

TEST_F(FroidEdgeTest, InlineInWhereClause) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION is_big(@v INT) RETURNS INT AS
    BEGIN
      DECLARE @r INT = 0;
      IF (@v >= 30)
        SET @r = 1;
      RETURN @r;
    END)"));
  ASSERT_OK_AND_ASSIGN(auto stmt,
                       ParseSelect("SELECT a FROM t WHERE is_big(b) = 1 "
                                   "ORDER BY a"));
  Froid froid(&db_);
  ASSERT_OK_AND_ASSIGN(int n, froid.InlineUdfCalls(stmt.get()));
  EXPECT_EQ(n, 1);
  EXPECT_EQ(stmt->ToString().find("is_big"), std::string::npos);
  ExecContext ctx = session_->MakeContext();
  VariableEnv env;
  ctx.set_vars(&env);
  ASSERT_OK_AND_ASSIGN(QueryResult r, session_->engine().Execute(*stmt, ctx));
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].int_value(), 3);
}

TEST_F(FroidEdgeTest, InlinedUdfCallingInlinableUdf) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION base(@v INT) RETURNS INT AS
    BEGIN
      RETURN @v * 2;
    END
    CREATE FUNCTION outer_f(@v INT) RETURNS INT AS
    BEGIN
      RETURN base(@v) + 1;
    END)"));
  ASSERT_OK_AND_ASSIGN(auto stmt,
                       ParseSelect("SELECT outer_f(a) AS x FROM t WHERE a = 2"));
  Froid froid(&db_);
  ASSERT_OK_AND_ASSIGN(int n, froid.InlineUdfCalls(stmt.get()));
  EXPECT_GE(n, 2);  // outer_f, then the exposed base call
  std::string text = stmt->ToString();
  EXPECT_EQ(text.find("outer_f"), std::string::npos) << text;
  EXPECT_EQ(text.find("base("), std::string::npos) << text;
  ExecContext ctx = session_->MakeContext();
  VariableEnv env;
  ctx.set_vars(&env);
  ASSERT_OK_AND_ASSIGN(QueryResult r, session_->engine().Execute(*stmt, ctx));
  EXPECT_EQ(r.rows[0][0].int_value(), 5);
}

TEST_F(FroidEdgeTest, DefaultArgumentsInlinedAtCallSite) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION scaled(@v INT, @k INT = 100) RETURNS INT AS
    BEGIN
      RETURN @v * @k;
    END)"));
  ASSERT_OK_AND_ASSIGN(auto stmt,
                       ParseSelect("SELECT scaled(a) AS x FROM t WHERE a = 3"));
  Froid froid(&db_);
  ASSERT_OK_AND_ASSIGN(int n, froid.InlineUdfCalls(stmt.get()));
  EXPECT_EQ(n, 1);
  ExecContext ctx = session_->MakeContext();
  VariableEnv env;
  ctx.set_vars(&env);
  ASSERT_OK_AND_ASSIGN(QueryResult r, session_->engine().Execute(*stmt, ctx));
  EXPECT_EQ(r.rows[0][0].int_value(), 300);
}

TEST_F(FroidEdgeTest, SubstitutionIsCaptureSafe) {
  // The argument expression mentions a column whose name also appears
  // inside the template; substitution must not confuse them.
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION addone(@a INT) RETURNS INT AS
    BEGIN
      RETURN @a + 1;
    END)"));
  ASSERT_OK_AND_ASSIGN(auto stmt,
                       ParseSelect("SELECT addone(a + b) AS x FROM t "
                                   "WHERE a = 1"));
  Froid froid(&db_);
  ASSERT_OK(froid.InlineUdfCalls(stmt.get()).status());
  ExecContext ctx = session_->MakeContext();
  VariableEnv env;
  ctx.set_vars(&env);
  ASSERT_OK_AND_ASSIGN(QueryResult r, session_->engine().Execute(*stmt, ctx));
  EXPECT_EQ(r.rows[0][0].int_value(), 12);
}

}  // namespace
}  // namespace aggify
