// Tests for the pre-inference simplification pipeline (analysis/simplify.h):
// constant folding, constant-branch pruning (AGG303), dead-store elimination
// (AGG301) with observable-variable protection, loop-invariant guard notes
// (AGG305), and the end-to-end regression that a simplified + rewritten
// cursor loop preserves zero-iteration semantics (the Terminate NULL marker
// leaves MultiAssign targets untouched).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "aggify/rewriter.h"
#include "analysis/simplify.h"
#include "parser/parser.h"
#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

BlockStmt* AsBlock(StmtPtr& s) { return static_cast<BlockStmt*>(s.get()); }

/// First SET targeting `name` anywhere in the tree, or nullptr.
const SetStmt* FindSet(const Stmt& stmt, const std::string& name) {
  switch (stmt.kind) {
    case StmtKind::kSet: {
      const auto& set = static_cast<const SetStmt&>(stmt);
      return set.name == name ? &set : nullptr;
    }
    case StmtKind::kBlock:
      for (const auto& s : static_cast<const BlockStmt&>(stmt).statements) {
        if (const SetStmt* found = FindSet(*s, name)) return found;
      }
      return nullptr;
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(stmt);
      if (const SetStmt* found = FindSet(*i.then_branch, name)) return found;
      return i.else_branch != nullptr ? FindSet(*i.else_branch, name)
                                      : nullptr;
    }
    case StmtKind::kWhile:
      return FindSet(*static_cast<const WhileStmt&>(stmt).body, name);
    case StmtKind::kFor:
      return FindSet(*static_cast<const ForStmt&>(stmt).body, name);
    default:
      return nullptr;
  }
}

int CountKind(const Stmt& stmt, StmtKind kind) {
  int n = stmt.kind == kind ? 1 : 0;
  switch (stmt.kind) {
    case StmtKind::kBlock:
      for (const auto& s : static_cast<const BlockStmt&>(stmt).statements) {
        n += CountKind(*s, kind);
      }
      break;
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(stmt);
      n += CountKind(*i.then_branch, kind);
      if (i.else_branch != nullptr) n += CountKind(*i.else_branch, kind);
      break;
    }
    case StmtKind::kWhile:
      n += CountKind(*static_cast<const WhileStmt&>(stmt).body, kind);
      break;
    case StmtKind::kFor:
      n += CountKind(*static_cast<const ForStmt&>(stmt).body, kind);
      break;
    default:
      break;
  }
  return n;
}

bool HasDiagnostic(const std::vector<Diagnostic>& diags, DiagCode code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return true;
  }
  return false;
}

// ---- constant propagation / folding ----

TEST(SimplifyFoldTest, PropagatesConstantsIntoExpressions) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, ParseStatements(R"(
    DECLARE @x INT = 2;
    DECLARE @y INT = 0;
    SET @y = @x + 3;
    RETURN @y;
  )"));
  SimplifyOptions options;
  options.eliminate_dead_stores = false;  // keep the SET inspectable
  ASSERT_OK_AND_ASSIGN(
      SimplifyStats stats,
      SimplifyBlock(AsBlock(prog), {}, nullptr, "test", options));
  EXPECT_GE(stats.constants_folded, 1);
  const SetStmt* set = FindSet(*prog, "@y");
  ASSERT_NE(set, nullptr);
  ASSERT_EQ(set->value->kind, ExprKind::kLiteral);
  EXPECT_EQ(static_cast<const LiteralExpr&>(*set->value).value.int_value(), 5);
}

TEST(SimplifyFoldTest, UnknownParametersDoNotFold) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, ParseStatements(R"(
    DECLARE @y INT = 0;
    SET @y = @p + 3;
    RETURN @y;
  )"));
  SimplifyOptions options;
  options.eliminate_dead_stores = false;
  ASSERT_OK_AND_ASSIGN(
      SimplifyStats stats,
      SimplifyBlock(AsBlock(prog), {"@p"}, nullptr, "test", options));
  const SetStmt* set = FindSet(*prog, "@y");
  ASSERT_NE(set, nullptr);
  EXPECT_NE(set->value->kind, ExprKind::kLiteral);
}

TEST(SimplifyFoldTest, DivisionByZeroNeverFolds) {
  // 1/0 errors at runtime; folding it would swallow the error.
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, ParseStatements(R"(
    DECLARE @y INT = 0;
    SET @y = 1 / 0;
    RETURN @y;
  )"));
  SimplifyOptions options;
  options.eliminate_dead_stores = false;
  ASSERT_OK_AND_ASSIGN(
      SimplifyStats stats,
      SimplifyBlock(AsBlock(prog), {}, nullptr, "test", options));
  const SetStmt* set = FindSet(*prog, "@y");
  ASSERT_NE(set, nullptr);
  EXPECT_NE(set->value->kind, ExprKind::kLiteral);
}

// ---- constant-branch pruning (AGG303) ----

TEST(SimplifyPruneTest, ConstantFalseIfHoistsElseBranch) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, ParseStatements(R"(
    DECLARE @r INT = 0;
    IF 1 = 2
    BEGIN
      SET @r = 1;
    END
    ELSE
    BEGIN
      SET @r = 5;
    END
    RETURN @r;
  )"));
  ASSERT_OK_AND_ASSIGN(SimplifyStats stats,
                       SimplifyBlock(AsBlock(prog), {}, nullptr, "test"));
  EXPECT_GE(stats.branches_pruned, 1);
  EXPECT_EQ(CountKind(*prog, StmtKind::kIf), 0);
  // The then-branch store is gone with the branch; the hoisted else store
  // either survives as SET @r = 5 or cascades away entirely once the RETURN
  // folds to the constant.
  const SetStmt* set = FindSet(*prog, "@r");
  if (set != nullptr) {
    ASSERT_EQ(set->value->kind, ExprKind::kLiteral);
    EXPECT_EQ(static_cast<const LiteralExpr&>(*set->value).value.int_value(),
              5);
  }
  EXPECT_TRUE(HasDiagnostic(stats.diagnostics, DiagCode::kConstantFalseBranch));
}

TEST(SimplifyPruneTest, ConstantFalseWhileIsRemoved) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, ParseStatements(R"(
    DECLARE @r INT = 3;
    WHILE 0 > 1
    BEGIN
      SET @r = 9;
    END
    RETURN @r;
  )"));
  ASSERT_OK_AND_ASSIGN(SimplifyStats stats,
                       SimplifyBlock(AsBlock(prog), {}, nullptr, "test"));
  EXPECT_GE(stats.branches_pruned, 1);
  EXPECT_EQ(CountKind(*prog, StmtKind::kWhile), 0);
}

TEST(SimplifyPruneTest, UnknownConditionIsLeftAlone) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, ParseStatements(R"(
    DECLARE @r INT = 0;
    IF @p > 0
    BEGIN
      SET @r = 1;
    END
    RETURN @r;
  )"));
  ASSERT_OK_AND_ASSIGN(
      SimplifyStats stats,
      SimplifyBlock(AsBlock(prog), {"@p"}, nullptr, "test"));
  EXPECT_EQ(stats.branches_pruned, 0);
  EXPECT_EQ(CountKind(*prog, StmtKind::kIf), 1);
}

// ---- dead-store elimination (AGG301) ----

TEST(SimplifyDeadStoreTest, RemovesStoreThatIsNeverRead) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, ParseStatements(R"(
    DECLARE @keep INT = 0;
    DECLARE @dead INT = 0;
    SET @dead = @keep + 1;
    SET @keep = 2;
    RETURN @keep;
  )"));
  ASSERT_OK_AND_ASSIGN(SimplifyStats stats,
                       SimplifyBlock(AsBlock(prog), {}, nullptr, "test"));
  EXPECT_GE(stats.dead_stores_removed, 1);
  EXPECT_EQ(FindSet(*prog, "@dead"), nullptr);
  EXPECT_TRUE(HasDiagnostic(stats.diagnostics, DiagCode::kDeadStore));
}

TEST(SimplifyDeadStoreTest, ObservableVariablesAreProtected) {
  // Anonymous client blocks: the environment is the output, so a store to
  // an observable variable survives even though nothing reads it.
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, ParseStatements(R"(
    DECLARE @keep INT = 0;
    DECLARE @dead INT = 0;
    SET @dead = @keep + 1;
    SET @keep = 2;
    RETURN @keep;
  )"));
  std::set<std::string> observable = {"@dead"};
  SimplifyOptions options;
  options.fold_constants = false;  // isolate the DSE pass: otherwise the
  options.prune_branches = false;  // RETURN folds and @keep's store dies too
  ASSERT_OK_AND_ASSIGN(
      SimplifyStats stats,
      SimplifyBlock(AsBlock(prog), {}, &observable, "test", options));
  EXPECT_EQ(stats.dead_stores_removed, 0);
  EXPECT_NE(FindSet(*prog, "@dead"), nullptr);
}

TEST(SimplifyDeadStoreTest, ValueDependentErrorsAreNeverRemoved) {
  // @dead is never read, but 1/@keep can error at runtime depending on
  // @keep's value — removing the store would change observable behavior.
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, ParseStatements(R"(
    DECLARE @keep INT = 0;
    DECLARE @dead INT = 0;
    SET @dead = 1 / @keep;
    SET @keep = 2;
    RETURN @keep;
  )"));
  SimplifyOptions options;
  options.fold_constants = false;  // keep 1/@keep symbolic
  options.prune_branches = false;
  ASSERT_OK_AND_ASSIGN(
      SimplifyStats stats,
      SimplifyBlock(AsBlock(prog), {}, nullptr, "test", options));
  EXPECT_NE(FindSet(*prog, "@dead"), nullptr);
}

// ---- loop-invariant guards (AGG305, advisory) ----

TEST(SimplifyInvariantGuardTest, FlagsGuardOnLoopInvariantState) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, ParseStatements(R"(
    DECLARE @i INT = 0;
    DECLARE @s INT = 0;
    WHILE @i < 3
    BEGIN
      IF @flag > 0
      BEGIN
        SET @s = @s + 1;
      END
      SET @i = @i + 1;
    END
    RETURN @s;
  )"));
  ASSERT_OK_AND_ASSIGN(
      SimplifyStats stats,
      SimplifyBlock(AsBlock(prog), {"@flag"}, nullptr, "test"));
  EXPECT_GE(stats.invariant_guards, 1);
  EXPECT_TRUE(HasDiagnostic(stats.diagnostics, DiagCode::kLoopInvariantGuard));
}

TEST(SimplifyInvariantGuardTest, GuardOnLoopVariantStateIsNotFlagged) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, ParseStatements(R"(
    DECLARE @i INT = 0;
    DECLARE @s INT = 0;
    WHILE @i < 3
    BEGIN
      IF @i > 1
      BEGIN
        SET @s = @s + 1;
      END
      SET @i = @i + 1;
    END
    RETURN @s;
  )"));
  ASSERT_OK_AND_ASSIGN(SimplifyStats stats,
                       SimplifyBlock(AsBlock(prog), {}, nullptr, "test"));
  EXPECT_EQ(stats.invariant_guards, 0);
}

// ---- cursor loops are structural, never pruned ----

TEST(SimplifyCursorTest, CursorLoopSurvivesSimplification) {
  // @@fetch_status is unknown to the domain, but even a decided-looking
  // cursor-loop condition must stay: the loop is the rewriter's input.
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, ParseStatements(R"(
    DECLARE @x INT;
    DECLARE @s INT = 0;
    DECLARE c CURSOR FOR SELECT v FROM data;
    OPEN c;
    FETCH NEXT FROM c INTO @x;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      SET @s = @s + @x;
      FETCH NEXT FROM c INTO @x;
    END
    CLOSE c;
    DEALLOCATE c;
    RETURN @s;
  )"));
  ASSERT_OK_AND_ASSIGN(SimplifyStats stats,
                       SimplifyBlock(AsBlock(prog), {}, nullptr, "test"));
  EXPECT_EQ(CountKind(*prog, StmtKind::kWhile), 1);
  EXPECT_NE(FindSet(*prog, "@s"), nullptr);
}

// ---- end-to-end: simplified + rewritten loops keep loop semantics ----

class SimplifiedRewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(&db_);
    ASSERT_OK(session_->RunSql(R"(
      CREATE TABLE data (k INT, v INT);
      INSERT INTO data VALUES (1, 5), (1, 7), (2, 11);
      CREATE FUNCTION sum_v(@k INT) RETURNS INT AS
      BEGIN
        DECLARE @x INT;
        DECLARE @junk INT = 0;
        DECLARE @s INT = 100;
        DECLARE c CURSOR FOR SELECT v FROM data WHERE k = @k;
        OPEN c;
        FETCH NEXT FROM c INTO @x;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          SET @junk = @x;
          IF 1 = 2
          BEGIN
            SET @s = 0;
          END
          SET @s = @s + @x;
          FETCH NEXT FROM c INTO @x;
        END
        CLOSE c; DEALLOCATE c;
        RETURN @s;
      END
    )"));
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(SimplifiedRewriteTest, SimplificationCleansBodyBeforeInference) {
  Aggify aggify(&db_);  // defaults: simplify + pruning + lowering all on
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("sum_v"));
  ASSERT_EQ(report.loops_rewritten, 1);
  EXPECT_GE(report.simplify.dead_stores_removed, 1);
  EXPECT_GE(report.simplify.branches_pruned, 1);
  // With the noise gone, Δ is a bare sum fold and lowers to the builtin.
  EXPECT_TRUE(report.rewrites[0].lowered_to_builtin);
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("sum_v", {Value::Int(1)}));
  EXPECT_EQ(v.int_value(), 112);
}

TEST_F(SimplifiedRewriteTest, ZeroIterationLoopKeepsPriorValueWhenLowered) {
  // sum_v(999) matches no rows: the lowered query's NULL marker must leave
  // the MultiAssign target untouched, exactly like the never-entered loop.
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("sum_v"));
  ASSERT_EQ(report.loops_rewritten, 1);
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("sum_v", {Value::Int(999)}));
  EXPECT_EQ(v.int_value(), 100);
}

TEST_F(SimplifiedRewriteTest, ZeroIterationLoopKeepsPriorValueInterpreted) {
  // Same regression through the interpreted Agg_Δ path (lowering off): the
  // synthesized Terminate's NULL marker and MultiAssign's keep-prior rule.
  EngineOptions opts;
  opts.rewrite.lower_native_folds = false;
  Aggify aggify(&db_, opts);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("sum_v"));
  ASSERT_EQ(report.loops_rewritten, 1);
  EXPECT_FALSE(report.rewrites[0].lowered_to_builtin);
  ASSERT_OK_AND_ASSIGN(Value zero, session_->Call("sum_v", {Value::Int(999)}));
  EXPECT_EQ(zero.int_value(), 100);
  ASSERT_OK_AND_ASSIGN(Value ran, session_->Call("sum_v", {Value::Int(1)}));
  EXPECT_EQ(ran.int_value(), 112);
}

TEST_F(SimplifiedRewriteTest, SimplifyOffMatchesSimplifyOn) {
  // The pipeline is semantics-preserving: both configurations agree with
  // the interpreted original on every group, including the empty one.
  ASSERT_OK_AND_ASSIGN(Value original1,
                       session_->Call("sum_v", {Value::Int(1)}));
  ASSERT_OK_AND_ASSIGN(Value original999,
                       session_->Call("sum_v", {Value::Int(999)}));

  EngineOptions off;
  off.rewrite.simplify = false;
  off.rewrite.prune_fetch_columns = false;
  off.rewrite.lower_native_folds = false;
  Aggify plain(&db_, off);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, plain.RewriteFunction("sum_v"));
  ASSERT_EQ(report.loops_rewritten, 1);
  ASSERT_OK_AND_ASSIGN(Value off1, session_->Call("sum_v", {Value::Int(1)}));
  ASSERT_OK_AND_ASSIGN(Value off999,
                       session_->Call("sum_v", {Value::Int(999)}));
  EXPECT_TRUE(original1.StructurallyEquals(off1));
  EXPECT_TRUE(original999.StructurallyEquals(off999));
}

}  // namespace
}  // namespace aggify
