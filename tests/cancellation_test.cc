// Tests of deadline propagation, cooperative cancellation, memory-budgeted
// execution with graceful degradation, and the admission gate.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/query_context.h"
#include "procedural/session.h"
#include "test_util.h"
#include "tpch/tpch_gen.h"

namespace aggify {
namespace {

// ---- QueryContext unit behavior ----

TEST(QueryContextTest, NoLimitsMeansNoChecksFire) {
  RobustnessStats stats;
  QueryContext qc(/*timeout_ms=*/0, /*memory_limit_bytes=*/0, &stats);
  EXPECT_FALSE(qc.has_deadline());
  EXPECT_EQ(qc.accountant(), nullptr);
  EXPECT_OK(qc.Check());
  EXPECT_EQ(stats.deadline_timeouts, 0);
}

TEST(QueryContextTest, CancellationWinsOverDeadlineAndCountsOnce) {
  RobustnessStats stats;
  QueryContext qc(/*timeout_ms=*/1, /*memory_limit_bytes=*/0, &stats);
  qc.Cancel();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));  // deadline past
  Status st = qc.Check();
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  // Repeated observations by many operators count a single cancellation.
  EXPECT_TRUE(qc.Check().IsCancelled());
  EXPECT_TRUE(qc.Check().IsCancelled());
  EXPECT_EQ(stats.cancellations, 1);
  EXPECT_EQ(stats.deadline_timeouts, 0);
}

TEST(QueryContextTest, ExpiredDeadlineReturnsTimeout) {
  RobustnessStats stats;
  QueryContext qc(/*timeout_ms=*/1, /*memory_limit_bytes=*/0, &stats);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  Status st = qc.Check();
  EXPECT_TRUE(st.IsTimeout()) << st.ToString();
  EXPECT_TRUE(st.IsRetryable());  // composes with RetryPolicy upstream
  EXPECT_EQ(qc.remaining_ms(), 0);
  EXPECT_EQ(stats.deadline_timeouts, 1);
}

// ---- MemoryAccountant unit behavior ----

TEST(MemoryAccountantTest, ChargesAgainstLimitAndRollsBack) {
  MemoryAccountant acc(/*limit_bytes=*/100);
  ASSERT_OK(acc.TryCharge(60));
  Status st = acc.TryCharge(50);
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_EQ(acc.used(), 60);  // failed charge left no residue
  ASSERT_OK(acc.TryCharge(40));
  EXPECT_EQ(acc.peak(), 100);
  acc.ReleaseTo(60);
  EXPECT_EQ(acc.used(), 60);
  acc.Release(60);
  EXPECT_EQ(acc.used(), 0);
  EXPECT_EQ(acc.peak(), 100);
}

TEST(MemoryAccountantTest, ParentChainChargesBothAndUndoesOnParentFailure) {
  MemoryAccountant parent(/*limit_bytes=*/100);
  MemoryAccountant child(/*limit_bytes=*/0, &parent);  // child unlimited
  ASSERT_OK(child.TryCharge(80));
  EXPECT_EQ(parent.used(), 80);
  Status st = child.TryCharge(30);  // parent rejects
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_EQ(child.used(), 80);  // child's own ledger undone
  EXPECT_EQ(parent.used(), 80);
  child.Release(80);
  EXPECT_EQ(parent.used(), 0);
}

// ---- Engine-level deadline / cancellation / degradation ----

class CancellationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    TpchConfig config;
    config.scale_factor = 0.002;
    ASSERT_OK(PopulateTpch(db_, config));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  void SetUp() override { db_->robustness().Reset(); }
  void TearDown() override { FailPoints::Instance().DisarmAll(); }

  static constexpr const char* kGroupBy =
      "SELECT l_returnflag, SUM(l_quantity) FROM lineitem "
      "GROUP BY l_returnflag ORDER BY l_returnflag";

  static Database* db_;
};

Database* CancellationTest::db_ = nullptr;

TEST_F(CancellationTest, DeadlineExpiryAtDop8ReturnsTimeoutWithWorkersJoined) {
  // Every morsel sleeps 5ms; a 1ms budget is spent by the first check after
  // the first sleep. All eight workers observe the shared context and stop;
  // Session::Query returns only after the coordinator joined every future
  // (run under TSan in CI to prove quiescence).
  ASSERT_OK(FailPoints::Instance().ArmFromString(
      "exec.slow_operator=always:sleep(5)"));
  EngineOptions options = EngineOptions::WithDop(8);
  options.limits.timeout_ms = 1;
  Session session(db_, options);
  Status st = session.Query(kGroupBy).status();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsTimeout()) << st.ToString();
  EXPECT_EQ(db_->robustness().deadline_timeouts, 1);
  // A real expired deadline must not burn the transient-retry budget:
  // every re-attempt would die at its first interrupt check.
  EXPECT_EQ(db_->robustness().transient_retries, 0);
}

TEST_F(CancellationTest, PreCancelledContextStopsBeforeAnyWork) {
  Session session(db_, EngineOptions::WithDop(8));
  ASSERT_OK_AND_ASSIGN(auto stmt, ParseSelect(kGroupBy));
  ExecContext ctx = session.MakeContext();
  QueryContext qc(/*timeout_ms=*/0, /*memory_limit_bytes=*/0,
                  &db_->robustness());
  qc.Cancel();
  ctx.set_query_context(&qc);
  Status st = session.engine().Execute(*stmt, ctx).status();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  EXPECT_EQ(db_->robustness().cancellations, 1);
  // Cancellation is not retryable and must not be retried.
  EXPECT_EQ(db_->robustness().transient_retries, 0);
}

TEST_F(CancellationTest, ConcurrentCancelStopsWorkersAndEngineStaysUsable) {
  // Slow every morsel down, cancel from another thread mid-flight. The
  // result is either a clean completion (the race is legal) or kCancelled —
  // never a crash, a hang, or a poisoned engine.
  ASSERT_OK(FailPoints::Instance().ArmFromString(
      "exec.slow_operator=always:sleep(2)"));
  Session session(db_, EngineOptions::WithDop(8));
  ASSERT_OK_AND_ASSIGN(auto stmt, ParseSelect(kGroupBy));
  ExecContext ctx = session.MakeContext();
  QueryContext qc(/*timeout_ms=*/0, /*memory_limit_bytes=*/0,
                  &db_->robustness());
  ctx.set_query_context(&qc);
  Status status = Status::OK();
  std::thread runner([&] {
    status = session.engine().Execute(*stmt, ctx).status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  qc.Cancel();
  runner.join();
  if (!status.ok()) {
    EXPECT_TRUE(status.IsCancelled()) << status.ToString();
  }
  // The engine (and its plan cache) survives a cancelled execution.
  FailPoints::Instance().DisarmAll();
  ASSERT_OK_AND_ASSIGN(QueryResult again, session.Query(kGroupBy));
  EXPECT_EQ(again.rows.size(), 3u);
}

TEST_F(CancellationTest, ProceduralLoopHonorsDeadline) {
  // A pure-arithmetic WHILE loop never executes a query; the interpreter's
  // per-iteration check is the only thing that can stop it.
  EngineOptions options;
  options.limits.timeout_ms = 5;
  Session session(db_, options);
  Status st = session
                  .RunBlock("BEGIN DECLARE @i INT; SET @i = 0; "
                            "WHILE 1 = 1 SET @i = @i + 1; END")
                  .status();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsTimeout()) << st.ToString();
}

TEST_F(CancellationTest, InjectedChargeFailureDegradesBatchToRow) {
  // First accountant charge (the batch scan's morsel buffer) fails; the
  // ladder replans row-at-a-time and the query completes. Serial engine, so
  // the times(1) budget cannot be raced away by sibling workers.
  EngineOptions unlimited;  // serial, batch on, no budget: reference run
  Session reference(db_, unlimited);
  ASSERT_OK_AND_ASSIGN(QueryResult expected, reference.Query(kGroupBy));

  ASSERT_OK(FailPoints::Instance().ArmFromString("mem.charge_fail=times(1)"));
  EngineOptions options;
  options.limits.memory_limit_bytes = 1LL << 30;  // accountant present, ample
  Session session(db_, options);
  ASSERT_OK_AND_ASSIGN(QueryResult degraded, session.Query(kGroupBy));
  EXPECT_EQ(db_->robustness().degraded_batch_to_row, 1);
  EXPECT_EQ(db_->robustness().degraded_parallel_to_serial, 0);
  EXPECT_EQ(db_->robustness().resource_exhausted_failures, 0);
  ASSERT_EQ(degraded.rows.size(), expected.rows.size());
  for (size_t i = 0; i < expected.rows.size(); ++i) {
    EXPECT_TRUE(RowsEqual(degraded.rows[i], expected.rows[i]));
  }
}

TEST_F(CancellationTest, TightBudgetWalksFullLadderToSerialRowMode) {
  // ~2KB fits the three serial hash-aggregate groups (~0.5KB) but neither
  // the vectorized scan's morsel buffer (hundreds of KB) nor eight workers'
  // partial-aggregation states. Both rungs fire; results are bit-identical
  // to an unconstrained serial run.
  EngineOptions unlimited;
  Session reference(db_, unlimited);
  ASSERT_OK_AND_ASSIGN(QueryResult expected, reference.Query(kGroupBy));

  EngineOptions options = EngineOptions::WithDop(8);
  options.limits.memory_limit_bytes = 2048;
  Session session(db_, options);
  ASSERT_OK_AND_ASSIGN(QueryResult degraded, session.Query(kGroupBy));
  EXPECT_EQ(db_->robustness().degraded_batch_to_row, 1);
  EXPECT_EQ(db_->robustness().degraded_parallel_to_serial, 1);
  EXPECT_EQ(db_->robustness().resource_exhausted_failures, 0);
  ASSERT_EQ(degraded.rows.size(), expected.rows.size());
  for (size_t i = 0; i < expected.rows.size(); ++i) {
    EXPECT_TRUE(RowsEqual(degraded.rows[i], expected.rows[i]));
  }
}

TEST_F(CancellationTest, ImpossibleBudgetSurrendersWithResourceExhausted) {
  EngineOptions options = EngineOptions::WithDop(8);
  options.limits.memory_limit_bytes = 16;  // not even one group state
  Session session(db_, options);
  Status st = session.Query(kGroupBy).status();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_EQ(db_->robustness().degraded_batch_to_row, 1);
  EXPECT_EQ(db_->robustness().degraded_parallel_to_serial, 1);
  EXPECT_EQ(db_->robustness().resource_exhausted_failures, 1);
  // kResourceExhausted is not retryable: degradation replans, never re-runs.
  EXPECT_EQ(db_->robustness().transient_retries, 0);
}

// ---- Admission gate ----

TEST(AdmissionGateTest, RejectsImmediatelyWhenFullAndNoWaitAllowed) {
  RobustnessStats stats;
  AdmissionGate gate;
  ASSERT_OK(gate.Acquire(/*limit=*/1, /*wait_ms=*/0, &stats));
  Status st = gate.Acquire(1, 0, &stats);
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_EQ(stats.admission_rejections, 1);
  EXPECT_EQ(stats.admission_waits, 0);
  gate.Release();
  EXPECT_OK(gate.Acquire(1, 0, &stats));
  gate.Release();
}

TEST(AdmissionGateTest, QueuedArrivalIsAdmittedWhenSlotFrees) {
  RobustnessStats stats;
  AdmissionGate gate;
  ASSERT_OK(gate.Acquire(/*limit=*/1, /*wait_ms=*/0, &stats));
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    Status st = gate.Acquire(1, /*wait_ms=*/10000, &stats);
    EXPECT_OK(st);
    admitted.store(true);
    gate.Release();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(admitted.load());
  gate.Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(stats.admission_waits, 1);
  EXPECT_EQ(stats.admission_rejections, 0);
}

class AdmissionStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    Session seed(db_.get());
    ASSERT_OK(seed.RunSql(R"(
      CREATE TABLE nums (v INT);
      INSERT INTO nums VALUES (1), (2), (3), (4), (5), (6), (7), (8);
    )"));
    db_->robustness().Reset();
  }
  void TearDown() override { FailPoints::Instance().DisarmAll(); }

  std::unique_ptr<Database> db_;
};

TEST_F(AdmissionStressTest, AdmissionStressEightConcurrentQueries) {
  // Eight threads hammer a gate of two. Arming exec.slow_operator (1ms
  // default delay) keeps the gate contended; CI also runs this binary with
  // AGGIFY_FAILPOINTS=exec.slow_operator from the environment. Every query
  // must eventually be admitted and succeed — the wait budget is generous —
  // and shared state (plan cache, robustness counters) must stay coherent
  // under TSan.
  ASSERT_OK(FailPoints::Instance().ArmFromString("exec.slow_operator"));
  EngineOptions options;
  options.limits.max_concurrent_queries = 2;
  options.limits.admission_timeout_ms = 10000;
  Session session(db_.get(), options);
  ASSERT_OK_AND_ASSIGN(auto stmt, ParseSelect("SELECT SUM(v) FROM nums"));

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 4;
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      // Private I/O stats: IoStats is not atomic; the shared Database copy
      // must not be written from worker threads.
      IoStats local_stats;
      for (int q = 0; q < kQueriesPerThread; ++q) {
        ExecContext ctx = session.MakeContext();
        ctx.set_stats_override(&local_stats);
        auto result = session.engine().Execute(*stmt, ctx);
        EXPECT_OK(result.status());
        if (result.ok() && result->rows.size() == 1 &&
            result->rows[0][0].int_value() == 36) {
          ++successes;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(successes.load(), kThreads * kQueriesPerThread);
  EXPECT_EQ(db_->robustness().admission_rejections, 0);
}

}  // namespace
}  // namespace aggify
