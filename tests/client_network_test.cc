// Tests for the client/network layer: the cost model arithmetic, the remote
// interpreter's accounting, and batching behavior.
#include <gtest/gtest.h>

#include "procedural/session.h"
#include "test_util.h"
#include "workloads/client_harness.h"

namespace aggify {
namespace {

TEST(NetworkModelTest, SimulatedTimeArithmetic) {
  NetworkModel model;
  model.rtt_ms = 1.0;
  model.bandwidth_mbps = 8.0;  // 1 MB/s
  NetworkStats stats;
  stats.round_trips = 10;
  stats.bytes_to_client = 500000;
  stats.bytes_to_server = 500000;
  // 10ms latency + 1e6 bytes at 1 MB/s = 1s.
  EXPECT_NEAR(stats.SimulatedSeconds(model), 0.010 + 1.0, 1e-9);
}

class ClientNetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(Status::OK());
    Session setup(&db_);
    ASSERT_OK(setup.RunSql(
        "CREATE TABLE items (v INT); "
        "INSERT INTO items VALUES (1), (2), (3), (4), (5), (6);"));
  }
  Database db_;
};

TEST_F(ClientNetworkTest, CursorIterationPaysPerRow) {
  ClientApp app(&db_);
  auto result = app.RunSql(R"(
    DECLARE @x INT;
    DECLARE @s INT = 0;
    DECLARE c CURSOR FOR SELECT v FROM items;
    OPEN c;
    FETCH NEXT FROM c INTO @x;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      SET @s = @s + @x;
      FETCH NEXT FROM c INTO @x;
    END
    CLOSE c; DEALLOCATE c;
  )");
  ASSERT_OK(result.status());
  // 1 statement round trip + 6 fetch round trips (batch=1).
  EXPECT_EQ(result->network.round_trips, 7);
  EXPECT_EQ(result->network.rows_transferred, 6);
  EXPECT_GT(result->network.bytes_to_client, 6 * 4);
  ASSERT_OK_AND_ASSIGN(Value s, result->env->Get("@s"));
  EXPECT_EQ(s.int_value(), 21);
}

TEST_F(ClientNetworkTest, BatchingReducesRoundTripsNotBytes) {
  std::string program = R"(
    DECLARE @x INT;
    DECLARE @n INT = 0;
    DECLARE c CURSOR FOR SELECT v FROM items;
    OPEN c;
    FETCH NEXT FROM c INTO @x;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      SET @n = @n + 1;
      FETCH NEXT FROM c INTO @x;
    END
    CLOSE c; DEALLOCATE c;
  )";
  NetworkModel row_at_a_time;
  NetworkModel batched;
  batched.rows_per_fetch = 3;
  ClientApp app1(&db_, row_at_a_time);
  ClientApp app2(&db_, batched);
  ASSERT_OK_AND_ASSIGN(auto r1, app1.RunSql(program));
  ASSERT_OK_AND_ASSIGN(auto r2, app2.RunSql(program));
  EXPECT_GT(r1.network.round_trips, r2.network.round_trips);
  EXPECT_EQ(r1.network.rows_transferred, r2.network.rows_transferred);
}

TEST_F(ClientNetworkTest, StandaloneQueryShipsAllRowsOnce) {
  ClientApp app(&db_);
  ASSERT_OK_AND_ASSIGN(auto r, app.RunSql("SELECT v FROM items;"));
  EXPECT_EQ(r.network.statements_sent, 1);
  EXPECT_EQ(r.network.round_trips, 1);
  EXPECT_EQ(r.network.rows_transferred, 6);
}

TEST_F(ClientNetworkTest, ServerSideUdfCallsDoNotPayNetwork) {
  Session setup(&db_);
  ASSERT_OK(setup.RunSql(R"(
    CREATE FUNCTION double_v(@x INT) RETURNS INT AS
    BEGIN
      RETURN @x * 2;
    END
  )"));
  ClientApp app(&db_);
  ASSERT_OK_AND_ASSIGN(auto r, app.RunSql("SELECT double_v(v) FROM items;"));
  // One statement; the per-row UDF invocations happen inside the DBMS.
  EXPECT_EQ(r.network.round_trips, 1);
  EXPECT_EQ(r.network.rows_transferred, 6);
}

TEST_F(ClientNetworkTest, ComparisonRejectsBrokenRewrites) {
  // A program whose loop cannot be rewritten: CompareClientProgram still
  // works, reporting zero rewrites, and both runs agree trivially.
  std::string program = R"(
    DECLARE @x INT;
    DECLARE @n INT = 0;
    DECLARE c CURSOR FOR SELECT v FROM items;
    OPEN c;
    FETCH NEXT FROM c INTO @x;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      INSERT INTO items VALUES (100);
      FETCH NEXT FROM c INTO @x;
    END
    CLOSE c; DEALLOCATE c;
  )";
  AGGIFY_UNUSED(program);
  // Persistent DML in the loop: the rewrite refuses it (loops_rewritten=0),
  // so the "rewritten" program equals the original. (We don't actually run
  // this one to keep the table clean — applicability is asserted directly.)
  ASSERT_OK_AND_ASSIGN(StmtPtr parsed, ParseStatements(program));
  auto* block = static_cast<BlockStmt*>(parsed.get());
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteBlock(block));
  EXPECT_EQ(report.loops_found, 1);
  EXPECT_EQ(report.loops_rewritten, 0);
}

}  // namespace
}  // namespace aggify
