// Executor/planner tests: operator semantics through SQL, plan shape via
// EXPLAIN, subquery forms, aggregation variants, and the plan cache.
#include <gtest/gtest.h>

#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(&db_);
    ASSERT_OK(session_->RunSql(R"(
      CREATE TABLE r (a INT, b INT);
      CREATE TABLE s (a INT, label VARCHAR(8));
      INSERT INTO r VALUES (1, 10), (2, 20), (2, 21), (3, 30), (4, NULL);
      INSERT INTO s VALUES (1, 'one'), (2, 'two'), (9, 'nine');
    )"));
  }

  std::vector<Row> Rows(const std::string& sql) {
    auto result = session_->Query(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->rows : std::vector<Row>{};
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(ExecTest, LeftJoinEmitsNullPaddedRows) {
  auto rows = Rows(
      "SELECT r.a, s.label FROM r LEFT JOIN s ON r.a = s.a ORDER BY r.a, r.b");
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0][1].string_value(), "one");
  EXPECT_EQ(rows[3][0].int_value(), 3);
  EXPECT_TRUE(rows[3][1].is_null());  // no match for a=3
  EXPECT_TRUE(rows[4][1].is_null());  // no match for a=4
}

TEST_F(ExecTest, NullsNeverJoin) {
  ASSERT_OK(session_->RunSql(
      "CREATE TABLE n1 (x INT); CREATE TABLE n2 (x INT);"
      "INSERT INTO n1 VALUES (NULL), (1); INSERT INTO n2 VALUES (NULL), (1);"));
  auto rows = Rows("SELECT n1.x FROM n1, n2 WHERE n1.x = n2.x");
  EXPECT_EQ(rows.size(), 1u);  // only 1 = 1; NULL = NULL is unknown
}

TEST_F(ExecTest, ExistsAndNotExists) {
  auto rows = Rows(
      "SELECT a FROM r WHERE EXISTS (SELECT a FROM s WHERE s.a = r.a) "
      "ORDER BY a, b");
  ASSERT_EQ(rows.size(), 3u);  // a=1, a=2 twice
  auto none = Rows(
      "SELECT a FROM r WHERE NOT EXISTS (SELECT a FROM s WHERE s.a = r.a) "
      "ORDER BY a");
  ASSERT_EQ(none.size(), 2u);  // a=3, a=4
  EXPECT_EQ(none[0][0].int_value(), 3);
}

TEST_F(ExecTest, InSubqueryWithNullSemantics) {
  auto rows = Rows("SELECT a FROM r WHERE b IN (SELECT b FROM r WHERE a = 2)");
  EXPECT_EQ(rows.size(), 2u);  // b=20, b=21
  // NOT IN over a list containing NULL is never true.
  auto empty = Rows("SELECT a FROM r WHERE b NOT IN (10, NULL)");
  EXPECT_EQ(empty.size(), 0u);
}

TEST_F(ExecTest, GroupByWithHavingAndNullGroup) {
  auto rows = Rows(
      "SELECT a, COUNT(*) AS n, SUM(b) AS total FROM r GROUP BY a "
      "HAVING COUNT(*) >= 1 ORDER BY a");
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[1][1].int_value(), 2);   // a=2 has two rows
  EXPECT_EQ(rows[1][2].int_value(), 41);  // 20 + 21
  EXPECT_TRUE(rows[3][2].is_null());      // SUM over only-NULL is NULL
}

TEST_F(ExecTest, ScalarAggregatesOverEmptyInput) {
  auto rows = Rows("SELECT COUNT(*) AS c, MIN(b) AS m, AVG(b) AS a FROM r "
                   "WHERE a > 100");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int_value(), 0);
  EXPECT_TRUE(rows[0][1].is_null());
  EXPECT_TRUE(rows[0][2].is_null());
}

TEST_F(ExecTest, ScalarSubqueryCardinalityError) {
  auto result = session_->Query("SELECT (SELECT b FROM r WHERE a = 2) AS x");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("more than one row"),
            std::string::npos);
}

TEST_F(ExecTest, UnionAllConcatenates) {
  auto rows = Rows("SELECT a FROM r WHERE a = 1 UNION ALL "
                   "SELECT a FROM s WHERE a = 9");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(ExecTest, DistinctRemovesDuplicates) {
  auto rows = Rows("SELECT DISTINCT a FROM r ORDER BY a");
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(ExecTest, OrderByNonProjectedColumn) {
  auto rows = Rows("SELECT b FROM r WHERE b IS NOT NULL ORDER BY a DESC, b");
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0].int_value(), 30);  // a=3 first under DESC
}

TEST_F(ExecTest, CaseWhenInProjection) {
  auto rows = Rows(
      "SELECT CASE WHEN b >= 21 THEN 'big' WHEN b >= 10 THEN 'mid' "
      "ELSE 'small' END AS bucket FROM r WHERE a <= 2 ORDER BY b");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0].string_value(), "mid");
  EXPECT_EQ(rows[2][0].string_value(), "big");
}

TEST_F(ExecTest, ExplainShowsHashJoinAndIndexSeek) {
  ASSERT_OK(session_->RunSql("CREATE INDEX idx_ra ON r (a);"));
  ExecContext ctx = session_->MakeContext();
  VariableEnv env;
  ctx.set_vars(&env);
  ASSERT_OK_AND_ASSIGN(auto join_stmt,
                       ParseSelect("SELECT r.b FROM r, s WHERE r.a = s.a"));
  ASSERT_OK_AND_ASSIGN(std::string join_plan,
                       session_->engine().Explain(*join_stmt, ctx));
  EXPECT_NE(join_plan.find("HashJoin"), std::string::npos) << join_plan;

  ASSERT_OK_AND_ASSIGN(auto seek_stmt,
                       ParseSelect("SELECT b FROM r WHERE a = 2"));
  ASSERT_OK_AND_ASSIGN(std::string seek_plan,
                       session_->engine().Explain(*seek_stmt, ctx));
  EXPECT_NE(seek_plan.find("IndexSeek"), std::string::npos) << seek_plan;
}

TEST_F(ExecTest, DerivedTablesArePipelined) {
  ExecContext ctx = session_->MakeContext();
  VariableEnv env;
  ctx.set_vars(&env);
  ASSERT_OK_AND_ASSIGN(
      auto stmt, ParseSelect("SELECT SUM(q.b) AS t FROM "
                             "(SELECT b FROM r WHERE b IS NOT NULL) q"));
  ASSERT_OK_AND_ASSIGN(std::string plan, session_->engine().Explain(*stmt, ctx));
  EXPECT_NE(plan.find("Rename"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("RowsScan"), std::string::npos) << plan;  // no spool
}

TEST_F(ExecTest, StreamAndHashAggregateAgree) {
  // Force the streaming operator via the Eq. 6 flag and compare.
  ASSERT_OK_AND_ASSIGN(auto stmt,
                       ParseSelect("SELECT a, SUM(b) AS t FROM r GROUP BY a"));
  ExecContext ctx = session_->MakeContext();
  VariableEnv env;
  ctx.set_vars(&env);
  ASSERT_OK_AND_ASSIGN(QueryResult hashed, session_->engine().Execute(*stmt, ctx));
  stmt->force_stream_aggregate = true;
  ASSERT_OK_AND_ASSIGN(QueryResult streamed,
                       session_->engine().Execute(*stmt, ctx));
  ASSERT_EQ(hashed.rows.size(), streamed.rows.size());
  // Stream output is sorted by group key; sort hash output for comparison.
  auto key_sorted = [](std::vector<Row> rows) {
    std::sort(rows.begin(), rows.end(), [](const Row& x, const Row& y) {
      return TotalOrderCompare(x[0], y[0]) < 0;
    });
    return rows;
  };
  auto h = key_sorted(hashed.rows);
  auto s = key_sorted(streamed.rows);
  for (size_t i = 0; i < h.size(); ++i) {
    EXPECT_TRUE(RowsEqual(h[i], s[i]));
  }
}

TEST_F(ExecTest, PlanCacheHitsOnRepeatedStatements) {
  ASSERT_OK(session_->Query("SELECT b FROM r WHERE a = 1").status());
  int64_t h0 = session_->engine().plan_cache().hits();
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(session_->Query("SELECT b FROM r WHERE a = 1").status());
  }
  EXPECT_GE(session_->engine().plan_cache().hits() - h0, 5);
}

TEST_F(ExecTest, PlanCacheInvalidatedByTempTableChurn) {
  ASSERT_OK_AND_ASSIGN(auto env, session_->RunBlock(R"(
    DECLARE @t TABLE (x INT);
    INSERT INTO @t VALUES (1), (2);
    DECLARE @n INT;
    SET @n = (SELECT COUNT(*) FROM @t);
    DELETE FROM @t WHERE x = 1;
    SET @n = @n + (SELECT COUNT(*) FROM @t);
  )"));
  ASSERT_OK_AND_ASSIGN(Value n, env->Get("@n"));
  EXPECT_EQ(n.int_value(), 3);  // 2 + 1; stale plans would double-count
}

TEST_F(ExecTest, VariablesParameterizeCachedPlans) {
  ASSERT_OK_AND_ASSIGN(auto env, session_->RunBlock(R"(
    DECLARE @total INT = 0;
    DECLARE @k INT = 1;
    WHILE @k <= 3
    BEGIN
      SET @total = @total + (SELECT COUNT(*) FROM r WHERE a = @k);
      SET @k = @k + 1;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(Value total, env->Get("@total"));
  EXPECT_EQ(total.int_value(), 4);  // 1 + 2 + 1
}

TEST_F(ExecTest, TopWithVariableCount) {
  ASSERT_OK_AND_ASSIGN(auto env, session_->RunBlock(R"(
    DECLARE @n INT = 2;
    DECLARE @c INT;
    SET @c = (SELECT COUNT(*) FROM (SELECT TOP (@n) a FROM r) q);
  )"));
  ASSERT_OK_AND_ASSIGN(Value c, env->Get("@c"));
  EXPECT_EQ(c.int_value(), 2);
}

TEST_F(ExecTest, CrossJoinViaCommaWithoutPredicate) {
  auto rows = Rows("SELECT r.a FROM r, s");
  EXPECT_EQ(rows.size(), 15u);  // 5 x 3
}

TEST_F(ExecTest, InterpreterTryCatchSwallowsRuntimeErrors) {
  ASSERT_OK_AND_ASSIGN(auto env, session_->RunBlock(R"(
    DECLARE @x INT = 0;
    BEGIN TRY
      SET @x = 1 / 0;
      SET @x = 111;
    END TRY
    BEGIN CATCH
      SET @x = -1;
    END CATCH
  )"));
  ASSERT_OK_AND_ASSIGN(Value x, env->Get("@x"));
  EXPECT_EQ(x.int_value(), -1);
}

}  // namespace
}  // namespace aggify
