// Guarded-rewrite fallback tests: an Aggify-rewritten query that fails at
// runtime (injected fault) transparently re-executes the original cursor
// loop with identical results; opt-in verify mode runs both paths and counts
// mismatches; the client retry path absorbs transient faults and surfaces
// kUnavailable when exhausted.
#include <gtest/gtest.h>

#include "aggify/rewriter.h"
#include "aggregates/aggregate_function.h"
#include "client/client_app.h"
#include "common/failpoint.h"
#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

// ---- Fallback equivalence corpus ----

struct CorpusProgram {
  const char* name;
  const char* create_sql;
};

const CorpusProgram kCorpus[] = {
    {"sum_all", R"(
      CREATE FUNCTION sum_all() RETURNS INT AS
      BEGIN
        DECLARE @x INT;
        DECLARE @s INT = 0;
        DECLARE c CURSOR FOR SELECT v FROM nums;
        OPEN c;
        FETCH NEXT FROM c INTO @x;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          SET @s = @s + @x;
          FETCH NEXT FROM c INTO @x;
        END
        CLOSE c; DEALLOCATE c;
        RETURN @s;
      END
    )"},
    {"last_ordered", R"(
      CREATE FUNCTION last_ordered() RETURNS INT AS
      BEGIN
        DECLARE @x INT;
        DECLARE @last INT = -1;
        DECLARE c CURSOR FOR SELECT v FROM nums ORDER BY v;
        OPEN c;
        FETCH NEXT FROM c INTO @x;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          SET @last = @x;
          FETCH NEXT FROM c INTO @x;
        END
        CLOSE c; DEALLOCATE c;
        RETURN @last;
      END
    )"},
    {"cond_count", R"(
      CREATE FUNCTION cond_count() RETURNS INT AS
      BEGIN
        DECLARE @x INT;
        DECLARE @n INT = 0;
        DECLARE c CURSOR FOR SELECT v FROM nums;
        OPEN c;
        FETCH NEXT FROM c INTO @x;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          IF (@x > 2)
            SET @n = @n + 1;
          FETCH NEXT FROM c INTO @x;
        END
        CLOSE c; DEALLOCATE c;
        RETURN @n;
      END
    )"},
    {"min_val", R"(
      CREATE FUNCTION min_val() RETURNS INT AS
      BEGIN
        DECLARE @x INT;
        DECLARE @m INT = 999999;
        DECLARE c CURSOR FOR SELECT v FROM nums;
        OPEN c;
        FETCH NEXT FROM c INTO @x;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          IF (@x < @m)
            SET @m = @x;
          FETCH NEXT FROM c INTO @x;
        END
        CLOSE c; DEALLOCATE c;
        RETURN @m;
      END
    )"},
};

class FallbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(&db_);
    ASSERT_OK(session_->RunSql(
        "CREATE TABLE nums (v INT, grp INT); "
        "INSERT INTO nums VALUES (3, 1), (1, 1), (2, 1), (9, 2), (7, 2);"));
    db_.robustness().Reset();
  }
  void TearDown() override { FailPoints::Instance().DisarmAll(); }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(FallbackTest, InjectedAggregateFaultFallsBackWithIdenticalResults) {
  // Baselines from the un-rewritten loops.
  std::vector<int64_t> expected;
  for (const auto& p : kCorpus) {
    ASSERT_OK(session_->RunSql(p.create_sql));
    ASSERT_OK_AND_ASSIGN(Value v, session_->Call(p.name, {}));
    expected.push_back(v.int_value());
  }
  Aggify aggify(&db_);
  for (const auto& p : kCorpus) {
    ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction(p.name));
    ASSERT_EQ(report.loops_rewritten, 1) << p.name;
  }
  // Every Accumulate fails: the rewritten query can never finish, so every
  // call must degrade to the original loop and still agree with baseline.
  ScopedFailPoint fp("exec.agg.accumulate");
  for (size_t i = 0; i < std::size(kCorpus); ++i) {
    ASSERT_OK_AND_ASSIGN(Value v, session_->Call(kCorpus[i].name, {}));
    EXPECT_EQ(v.int_value(), expected[i]) << kCorpus[i].name;
  }
  const RobustnessStats& rs = db_.robustness();
  EXPECT_EQ(rs.fallbacks_taken, static_cast<int64_t>(std::size(kCorpus)));
  EXPECT_EQ(rs.fallback_successes, rs.fallbacks_taken);
  EXPECT_GE(rs.rewrite_exec_failures, rs.fallbacks_taken);
}

TEST_F(FallbackTest, NoFaultMeansNoFallback) {
  ASSERT_OK(session_->RunSql(kCorpus[0].create_sql));
  ASSERT_OK_AND_ASSIGN(Value before, session_->Call("sum_all", {}));
  Aggify aggify(&db_);
  ASSERT_OK(aggify.RewriteFunction("sum_all").status());
  ASSERT_OK_AND_ASSIGN(Value after, session_->Call("sum_all", {}));
  EXPECT_EQ(after.int_value(), before.int_value());
  EXPECT_EQ(db_.robustness().fallbacks_taken, 0);
  EXPECT_EQ(db_.robustness().rewrite_exec_failures, 0);
}

TEST_F(FallbackTest, UnguardedRewriteStillSurfacesFault) {
  ASSERT_OK(session_->RunSql(kCorpus[0].create_sql));
  EngineOptions options;
  options.rewrite.guard_rewrites = false;
  Aggify aggify(&db_, options);
  ASSERT_OK(aggify.RewriteFunction("sum_all").status());
  ScopedFailPoint fp("exec.agg.accumulate");
  Status st = session_->Call("sum_all", {}).status();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(FailPoints::IsInjected(st));
  EXPECT_EQ(db_.robustness().fallbacks_taken, 0);
}

// A deliberately wrong aggregate used to sabotage a synthesized one.
class BrokenAggregate : public AggregateFunction {
 public:
  explicit BrokenAggregate(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  int arity() const override { return -1; }
  Result<std::unique_ptr<AggregateState>> Init() const override {
    return std::make_unique<AggregateState>();
  }
  Status Accumulate(AggregateState*, const std::vector<Value>&,
                    ExecContext*) const override {
    return Status::OK();
  }
  Result<Value> Terminate(AggregateState*, ExecContext*) const override {
    return Value::Int(-12345);
  }

 private:
  std::string name_;
};

TEST_F(FallbackTest, VerifyModeDetectsMismatchAndKeepsLoopResults) {
  ASSERT_OK(session_->RunSql(kCorpus[0].create_sql));
  ASSERT_OK_AND_ASSIGN(Value baseline, session_->Call("sum_all", {}));
  EngineOptions options;
  options.rewrite.verify_rewrite = true;
  Aggify aggify(&db_, options);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("sum_all"));
  ASSERT_EQ(report.loops_rewritten, 1);
  // Sanity: with a correct aggregate, verify finds no mismatch.
  ASSERT_OK_AND_ASSIGN(Value ok_v, session_->Call("sum_all", {}));
  EXPECT_EQ(ok_v.int_value(), baseline.int_value());
  EXPECT_GE(db_.robustness().verify_runs, 1);
  EXPECT_EQ(db_.robustness().verify_mismatches, 0);
  // Sabotage the synthesized aggregate: verify must flag the mismatch and
  // the function must still return the loop's (correct) answer.
  const std::string& agg_name = report.rewrites[0].aggregate_name;
  db_.catalog().RegisterAggregate(agg_name,
                                  std::make_shared<BrokenAggregate>(agg_name));
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("sum_all", {}));
  EXPECT_EQ(v.int_value(), baseline.int_value());
  EXPECT_GE(db_.robustness().verify_mismatches, 1);
}

// ---- Client retry path ----

class ClientRetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Session setup(&db_);
    ASSERT_OK(setup.RunSql(
        "CREATE TABLE items (v INT); "
        "INSERT INTO items VALUES (1), (2), (3), (4), (5), (6);"));
  }
  void TearDown() override { FailPoints::Instance().DisarmAll(); }

  Database db_;
};

TEST_F(ClientRetryTest, TransientFaultsAreAbsorbedByRetries) {
  // The first two sends of the statement time out; the retry loop absorbs
  // them and the program still completes with the right answer.
  ASSERT_OK(FailPoints::Instance().ArmFromString(
      "client.statement=times(2):timeout"));
  ClientApp app(&db_);
  ASSERT_OK_AND_ASSIGN(auto r, app.RunSql("SELECT v FROM items;"));
  EXPECT_EQ(r.network.rows_transferred, 6);
  EXPECT_EQ(r.network.retries, 2);
  EXPECT_EQ(r.network.timeouts, 2);
  // 1 logical round trip + 2 re-sends.
  EXPECT_EQ(r.network.round_trips, 3);
  EXPECT_GT(r.network.backoff_ms, 0.0);
}

TEST_F(ClientRetryTest, ExhaustedRetriesSurfaceUnavailable) {
  NetworkModel lossy;
  lossy.drop_probability = 1.0;  // every round trip is dropped
  ClientApp app(&db_, lossy);
  Status st = app.RunSql("SELECT v FROM items;").status();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsUnavailable());
  const NetworkStats& stats = app.interpreter().stats();
  EXPECT_EQ(stats.drops, app.interpreter().retry_policy().max_attempts);
  EXPECT_EQ(stats.retries, app.interpreter().retry_policy().max_attempts - 1);
}

TEST_F(ClientRetryTest, LossyFetchPathRetriesPerBatch) {
  // Fail the first fetch send only: the batch is re-sent once and the
  // cursor program completes unchanged.
  ASSERT_OK(FailPoints::Instance().ArmFromString(
      "client.fetch=times(1):unavailable"));
  ClientApp app(&db_);
  ASSERT_OK_AND_ASSIGN(auto r, app.RunSql(R"(
    DECLARE @x INT;
    DECLARE @s INT = 0;
    DECLARE c CURSOR FOR SELECT v FROM items;
    OPEN c;
    FETCH NEXT FROM c INTO @x;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      SET @s = @s + @x;
      FETCH NEXT FROM c INTO @x;
    END
    CLOSE c; DEALLOCATE c;
  )"));
  ASSERT_OK_AND_ASSIGN(Value s, r.env->Get("@s"));
  EXPECT_EQ(s.int_value(), 21);
  EXPECT_EQ(r.network.retries, 1);
  // 7 fault-free round trips (1 statement + 6 fetches) + 1 re-send.
  EXPECT_EQ(r.network.round_trips, 8);
}

TEST_F(ClientRetryTest, DegenerateModelIsClampedNotNegative) {
  NetworkModel broken;
  broken.rows_per_fetch = 0;  // would run the batch counter negative
  broken.rtt_ms = -1.0;
  ASSERT_FALSE(broken.Validate().ok());
  ClientApp app(&db_, broken);
  EXPECT_EQ(app.interpreter().model().rows_per_fetch, 1);
  EXPECT_GT(app.interpreter().model().rtt_ms, 0.0);
  ASSERT_OK_AND_ASSIGN(auto r, app.RunSql(R"(
    DECLARE @x INT;
    DECLARE @n INT = 0;
    DECLARE c CURSOR FOR SELECT v FROM items;
    OPEN c;
    FETCH NEXT FROM c INTO @x;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      SET @n = @n + 1;
      FETCH NEXT FROM c INTO @x;
    END
    CLOSE c; DEALLOCATE c;
  )"));
  ASSERT_OK_AND_ASSIGN(Value n, r.env->Get("@n"));
  EXPECT_EQ(n.int_value(), 6);
}

TEST_F(ClientRetryTest, ValidateAcceptsDefaultsRejectsNonsense) {
  EXPECT_OK(NetworkModel{}.Validate());
  NetworkModel m;
  m.drop_probability = 1.5;
  EXPECT_FALSE(m.Validate().ok());
  EXPECT_EQ(m.Clamped().drop_probability, 1.0);
  m = NetworkModel{};
  m.bandwidth_mbps = 0.0;
  EXPECT_FALSE(m.Validate().ok());
  EXPECT_GT(m.Clamped().bandwidth_mbps, 0.0);
}

}  // namespace
}  // namespace aggify
