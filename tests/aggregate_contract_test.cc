// Tests of the aggregation contract (§3.1): built-in aggregates, the Merge
// method under simulated parallel partial aggregation, and the contract
// behavior of synthesized LoopAggregates (deferred init, zero-row Terminate,
// order sensitivity).
#include <gtest/gtest.h>

#include "aggify/rewriter.h"
#include "aggregates/aggregate_function.h"
#include "common/random.h"
#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

// ---- built-in contract ----

struct MergeCase {
  const char* name;
  std::vector<int64_t> input;
};

class BuiltinMergeProperty
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(BuiltinMergeProperty, ParallelPartialsEqualSerial) {
  const char* name = std::get<0>(GetParam());
  int seed = std::get<1>(GetParam());
  Random rng(static_cast<uint64_t>(seed));
  std::vector<Value> input;
  int n = static_cast<int>(rng.UniformRange(0, 50));
  for (int i = 0; i < n; ++i) {
    input.push_back(rng.OneIn(8) ? Value::Null()
                                 : Value::Int(rng.UniformRange(-100, 100)));
  }

  ASSERT_OK_AND_ASSIGN(auto agg, MakeBuiltinAggregate(name));
  ASSERT_TRUE(agg->SupportsMerge());

  // Serial.
  ASSERT_OK_AND_ASSIGN(auto serial, agg->Init());
  for (const Value& v : input) {
    ASSERT_OK(agg->Accumulate(serial.get(), {v}, nullptr));
  }
  ASSERT_OK_AND_ASSIGN(Value expected, agg->Terminate(serial.get(), nullptr));

  // Parallel: split into 3 partials, merge.
  std::vector<std::unique_ptr<AggregateState>> partials;
  for (int p = 0; p < 3; ++p) {
    ASSERT_OK_AND_ASSIGN(auto state, agg->Init());
    partials.push_back(std::move(state));
  }
  for (size_t i = 0; i < input.size(); ++i) {
    ASSERT_OK(agg->Accumulate(partials[i % 3].get(), {input[i]}, nullptr));
  }
  ASSERT_OK(agg->Merge(partials[0].get(), partials[1].get(), nullptr));
  ASSERT_OK(agg->Merge(partials[0].get(), partials[2].get(), nullptr));
  ASSERT_OK_AND_ASSIGN(Value merged, agg->Terminate(partials[0].get(), nullptr));

  EXPECT_TRUE(expected.StructurallyEquals(merged))
      << name << ": serial=" << expected.ToString()
      << " merged=" << merged.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BuiltinMergeProperty,
    ::testing::Combine(::testing::Values("min", "max", "sum", "count", "avg"),
                       ::testing::Range(0, 8)));

TEST(BuiltinAggregateTest, NullsAreIgnored) {
  ASSERT_OK_AND_ASSIGN(auto agg, MakeBuiltinAggregate("count"));
  ASSERT_OK_AND_ASSIGN(auto state, agg->Init());
  ASSERT_OK(agg->Accumulate(state.get(), {Value::Null()}, nullptr));
  ASSERT_OK(agg->Accumulate(state.get(), {Value::Int(1)}, nullptr));
  ASSERT_OK_AND_ASSIGN(Value v, agg->Terminate(state.get(), nullptr));
  EXPECT_EQ(v.int_value(), 1);  // COUNT(col) skips NULLs
}

TEST(BuiltinAggregateTest, CountStarCountsEverything) {
  ASSERT_OK_AND_ASSIGN(auto agg, MakeCountStarAggregate());
  ASSERT_OK_AND_ASSIGN(auto state, agg->Init());
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(agg->Accumulate(state.get(), {}, nullptr));
  }
  ASSERT_OK_AND_ASSIGN(Value v, agg->Terminate(state.get(), nullptr));
  EXPECT_EQ(v.int_value(), 4);
}

TEST(BuiltinAggregateTest, UnknownNameIsNotFound) {
  EXPECT_FALSE(MakeBuiltinAggregate("median").ok());
  EXPECT_FALSE(IsBuiltinAggregateName("median"));
  EXPECT_TRUE(IsBuiltinAggregateName("MIN"));
}

// ---- synthesized LoopAggregate contract ----

class LoopAggregateContractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(&db_);
    ASSERT_OK(session_->RunSql(R"(
      CREATE TABLE data (k INT, v INT);
      INSERT INTO data VALUES (1, 5), (1, 7), (2, 11);
      CREATE FUNCTION sum_v(@k INT) RETURNS INT AS
      BEGIN
        DECLARE @x INT;
        DECLARE @s INT = 100;
        DECLARE c CURSOR FOR SELECT v FROM data WHERE k = @k;
        OPEN c;
        FETCH NEXT FROM c INTO @x;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          SET @s = @s + @x;
          FETCH NEXT FROM c INTO @x;
        END
        CLOSE c; DEALLOCATE c;
        RETURN @s;
      END
    )"));
    // This suite exercises the synthesized LoopAggregate's contract, so the
    // native-fold lowering (which would skip registering one) is disabled.
    EngineOptions opts;
    opts.rewrite.lower_native_folds = false;
    Aggify aggify(&db_, opts);
    ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("sum_v"));
    ASSERT_EQ(report.loops_rewritten, 1);
    agg_name_ = report.rewrites[0].aggregate_name;
  }

  std::shared_ptr<const AggregateFunction> GetAgg() {
    auto agg = db_.catalog().GetAggregate(agg_name_);
    EXPECT_TRUE(agg.ok());
    return *agg;
  }

  Database db_;
  std::unique_ptr<Session> session_;
  std::string agg_name_;
};

TEST_F(LoopAggregateContractTest, InitDefersFieldInitialization) {
  auto agg = GetAgg();
  ExecContext ctx = session_->MakeContext();
  // Terminate straight after Init (no rows): NULL marker, not 100.
  ASSERT_OK_AND_ASSIGN(auto state, agg->Init());
  ASSERT_OK_AND_ASSIGN(Value v, agg->Terminate(state.get(), &ctx));
  EXPECT_TRUE(v.is_null());
}

TEST_F(LoopAggregateContractTest, AccumulateInitializesFromFirstRowArgs) {
  auto agg = GetAgg();
  ExecContext ctx = session_->MakeContext();
  ASSERT_OK_AND_ASSIGN(auto state, agg->Init());
  // P_accum = [@x (fetch), @s]; the @s argument carries the loop-entry value.
  ASSERT_OK(agg->Accumulate(state.get(), {Value::Int(5), Value::Int(100)},
                            &ctx));
  ASSERT_OK(agg->Accumulate(state.get(), {Value::Int(7), Value::Int(100)},
                            &ctx));
  ASSERT_OK_AND_ASSIGN(Value v, agg->Terminate(state.get(), &ctx));
  EXPECT_EQ(v.int_value(), 112);
}

TEST_F(LoopAggregateContractTest, SumFoldSupportsDerivedMerge) {
  // The decomposability proof holds for a plain sum fold: partial states that
  // both started from the loop-entry baseline (@s = 100) merge as a + b - c.
  auto agg = GetAgg();
  ExecContext ctx = session_->MakeContext();
  ASSERT_OK_AND_ASSIGN(auto a, agg->Init());
  ASSERT_OK_AND_ASSIGN(auto b, agg->Init());
  EXPECT_TRUE(agg->SupportsMerge());
  ASSERT_OK(agg->Accumulate(a.get(), {Value::Int(5), Value::Int(100)}, &ctx));
  ASSERT_OK(agg->Accumulate(b.get(), {Value::Int(7), Value::Int(100)}, &ctx));
  ASSERT_OK(agg->Merge(a.get(), b.get(), &ctx));
  ASSERT_OK_AND_ASSIGN(Value v, agg->Terminate(a.get(), &ctx));
  EXPECT_EQ(v.int_value(), 112);  // not 212: the baseline counts once
}

TEST_F(LoopAggregateContractTest, MergeIsUnsupportedWithoutProof) {
  // An order-sensitive body (last value wins) fails the decomposability
  // proof; the aggregate keeps the base contract's NotSupported Merge.
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION last_v(@g INT) RETURNS INT AS
    BEGIN
      DECLARE @x INT;
      DECLARE @last INT;
      DECLARE c CURSOR FOR SELECT v FROM data WHERE k = @g ORDER BY v;
      OPEN c;
      FETCH NEXT FROM c INTO @x;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @last = @x;
        FETCH NEXT FROM c INTO @x;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @last;
    END
  )"));
  Aggify aggify(&db_);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("last_v"));
  ASSERT_EQ(report.loops_rewritten, 1);
  ASSERT_OK_AND_ASSIGN(auto agg, db_.catalog().GetAggregate(
                                     report.rewrites[0].aggregate_name));
  ExecContext ctx = session_->MakeContext();
  ASSERT_OK_AND_ASSIGN(auto a, agg->Init());
  ASSERT_OK_AND_ASSIGN(auto b, agg->Init());
  EXPECT_FALSE(agg->SupportsMerge());
  Status st = agg->Merge(a.get(), b.get(), &ctx);
  EXPECT_TRUE(st.IsNotSupported());
}

TEST_F(LoopAggregateContractTest, ZeroRowGroupKeepsPriorValue) {
  // sum_v(999): the cursor query is empty, so @s keeps its pre-loop 100.
  ASSERT_OK_AND_ASSIGN(Value v, session_->Call("sum_v", {Value::Int(999)}));
  EXPECT_EQ(v.int_value(), 100);
}

TEST_F(LoopAggregateContractTest, ArityIsEnforced) {
  auto agg = GetAgg();
  ExecContext ctx = session_->MakeContext();
  ASSERT_OK_AND_ASSIGN(auto state, agg->Init());
  EXPECT_FALSE(agg->Accumulate(state.get(), {Value::Int(1)}, &ctx).ok());
}

}  // namespace
}  // namespace aggify
