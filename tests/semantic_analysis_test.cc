// Unit tests for the semantic analysis suite: structured diagnostics,
// interprocedural purity (call-graph fixpoint over the catalog), and the
// order-sensitivity / decomposability fold classifier.
#include <gtest/gtest.h>

#include "analysis/diagnostics.h"
#include "analysis/fold_classifier.h"
#include "analysis/purity.h"
#include "exec/eval.h"
#include "parser/parser.h"
#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

// ---- diagnostics ----

TEST(DiagnosticsTest, StatusRoundTripPreservesCodeAndMessage) {
  Status st = NotApplicableDiag(DiagCode::kPersistentUpdate,
                                "body UPDATEs table orders");
  EXPECT_TRUE(st.IsNotApplicable());
  Diagnostic d = DiagnosticFromStatus(st, "fn:c");
  EXPECT_EQ(d.code, DiagCode::kPersistentUpdate);
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_EQ(d.loc, "fn:c");
  EXPECT_EQ(d.message, "body UPDATEs table orders");
}

TEST(DiagnosticsTest, UnprefixedStatusFallsBackToScriptError) {
  Diagnostic d = DiagnosticFromStatus(Status::NotApplicable("free-form"),
                                      "x.sql");
  EXPECT_EQ(d.code, DiagCode::kScriptError);
  EXPECT_EQ(d.message, "free-form");
}

TEST(DiagnosticsTest, ToStringIsClangTidyShaped) {
  Diagnostic d = MakeDiagnostic(DiagCode::kImpureUdfCall, "report.sql:fn:c",
                                "calls log_row which INSERTs into audit",
                                "inline the call or move it after the loop");
  std::string s = d.ToString();
  EXPECT_EQ(s,
            "report.sql:fn:c: error: calls log_row which INSERTs into audit "
            "[aggify-impure-udf-call]\n"
            "  fix-it: inline the call or move it after the loop");
}

TEST(DiagnosticsTest, SeverityMap) {
  EXPECT_EQ(DiagCodeSeverity(DiagCode::kImpureUdfCall), DiagSeverity::kError);
  EXPECT_EQ(DiagCodeSeverity(DiagCode::kScriptError), DiagSeverity::kError);
  EXPECT_EQ(DiagCodeSeverity(DiagCode::kSelectStarCursor),
            DiagSeverity::kWarning);
  EXPECT_EQ(DiagCodeSeverity(DiagCode::kSortElided), DiagSeverity::kNote);
  EXPECT_EQ(DiagCodeName(DiagCode::kPersistentInsert), "AGG104");
  EXPECT_STREQ(DiagCodeSlug(DiagCode::kPersistentInsert), "persistent-insert");
}

// ---- interprocedural purity ----

class PurityTest : public ::testing::Test {
 protected:
  void SetUp() override { session_ = std::make_unique<Session>(&db_); }

  EffectLevel LevelOf(const std::string& fn) {
    CallGraph graph = CallGraph::Build(db_.catalog(), IsScalarBuiltinName);
    return graph.EffectsOf(fn).level;
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(PurityTest, ArithmeticOnlyFunctionIsPure) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION sq(@x INT) RETURNS INT AS
    BEGIN
      RETURN @x * @x;
    END
  )"));
  EXPECT_EQ(LevelOf("sq"), EffectLevel::kPure);
}

TEST_F(PurityTest, QueryingFunctionReadsDatabase) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE TABLE t (v INT);
    CREATE FUNCTION cnt() RETURNS INT AS
    BEGIN
      DECLARE @n INT;
      SET @n = (SELECT COUNT(*) FROM t);
      RETURN @n;
    END
  )"));
  EXPECT_EQ(LevelOf("cnt"), EffectLevel::kReadsDatabase);
}

TEST_F(PurityTest, TempTableDmlIsTempState) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION scratch(@x INT) RETURNS INT AS
    BEGIN
      DECLARE @tmp TABLE (v INT);
      INSERT INTO @tmp VALUES (@x);
      RETURN (SELECT COUNT(*) FROM @tmp);
    END
  )"));
  EXPECT_EQ(LevelOf("scratch"), EffectLevel::kWritesTempState);
}

TEST_F(PurityTest, PersistentDmlDominatesTransitively) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE TABLE log_t (v INT);
    CREATE FUNCTION writer(@x INT) RETURNS INT AS
    BEGIN
      INSERT INTO log_t VALUES (@x);
      RETURN @x;
    END
  )"));
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION caller(@x INT) RETURNS INT AS
    BEGIN
      RETURN writer(@x) + 1;
    END
  )"));
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION outer_caller(@x INT) RETURNS INT AS
    BEGIN
      RETURN caller(@x) * 2;
    END
  )"));
  EXPECT_EQ(LevelOf("writer"), EffectLevel::kWritesPersistentState);
  EXPECT_EQ(LevelOf("caller"), EffectLevel::kWritesPersistentState);
  EXPECT_EQ(LevelOf("outer_caller"), EffectLevel::kWritesPersistentState);
  CallGraph graph = CallGraph::Build(db_.catalog(), IsScalarBuiltinName);
  // The evidence chain names the callee that introduced the effect.
  EXPECT_NE(graph.EffectsOf("outer_caller").evidence.find("caller"),
            std::string::npos);
}

TEST_F(PurityTest, MutualRecursionConverges) {
  // The fixpoint must terminate on cycles and agree across the SCC.
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION even_fn(@n INT) RETURNS INT AS
    BEGIN
      IF (@n = 0) RETURN 1;
      RETURN odd_fn(@n - 1);
    END
  )"));
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION odd_fn(@n INT) RETURNS INT AS
    BEGIN
      IF (@n = 0) RETURN 0;
      RETURN even_fn(@n - 1);
    END
  )"));
  EXPECT_EQ(LevelOf("even_fn"), EffectLevel::kPure);
  EXPECT_EQ(LevelOf("odd_fn"), EffectLevel::kPure);
}

TEST_F(PurityTest, BuiltinCallsStayPureUnknownCallsDoNot) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION uses_builtin(@x INT) RETURNS INT AS
    BEGIN
      RETURN abs(@x) + floor(1.5);
    END
  )"));
  EXPECT_EQ(LevelOf("uses_builtin"), EffectLevel::kPure);
  // A name neither in the catalog nor a recognized builtin is kUnknown.
  CallGraph graph = CallGraph::Build(db_.catalog(), IsScalarBuiltinName);
  EXPECT_EQ(graph.EffectsOf("no_such_fn").level, EffectLevel::kUnknown);
}

// ---- fold classifier ----

class ClassifierTest : public ::testing::Test {
 protected:
  BodyClassification Classify(const std::string& body_text,
                              std::set<std::string> fields = {"@s"},
                              std::set<std::string> row_vars = {"@x"}) {
    auto parsed = ParseStatements(body_text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    body_ = std::move(parsed).ValueOrDie();
    return ClassifyLoopBody(static_cast<const BlockStmt&>(*body_), fields,
                            row_vars, IsScalarBuiltinName);
  }

  StmtPtr body_;
};

TEST_F(ClassifierTest, SumFoldIsInsensitiveAndDecomposable) {
  BodyClassification c = Classify("SET @s = @s + @x;");
  EXPECT_TRUE(c.order_insensitive);
  EXPECT_TRUE(c.decomposable);
  ASSERT_EQ(c.folds.size(), 1u);
  EXPECT_EQ(c.folds[0].kind, FoldKind::kSum);
}

TEST_F(ClassifierTest, SubtractionOfRowTermIsASumFold) {
  BodyClassification c = Classify("SET @s = @s - @x * 2;");
  EXPECT_TRUE(c.order_insensitive);
  EXPECT_TRUE(c.decomposable);
}

TEST_F(ClassifierTest, ProductIsInsensitiveButNotDecomposable) {
  BodyClassification c = Classify("SET @s = @s * @x;");
  EXPECT_TRUE(c.order_insensitive);
  EXPECT_FALSE(c.decomposable);
  EXPECT_NE(c.merge_reason().find("product"), std::string::npos);
}

TEST_F(ClassifierTest, GuardedMinAllSpellings) {
  for (const char* body : {
           "IF (@x < @s) SET @s = @x;",
           "IF (@s > @x) SET @s = @x;",
           "IF (@s IS NULL OR @x < @s) SET @s = @x;",
           "IF (@x < @s) BEGIN SET @s = @x; END",
       }) {
    BodyClassification c = Classify(body);
    EXPECT_TRUE(c.order_insensitive) << body << ": " << c.reason();
    ASSERT_EQ(c.folds.size(), 1u) << body;
    EXPECT_EQ(c.folds[0].kind, FoldKind::kGuardedMin) << body;
  }
}

TEST_F(ClassifierTest, GuardedMaxDirections) {
  for (const char* body : {
           "IF (@x > @s) SET @s = @x;",
           "IF (@s < @x) SET @s = @x;",
       }) {
    BodyClassification c = Classify(body);
    ASSERT_EQ(c.folds.size(), 1u) << body;
    EXPECT_EQ(c.folds[0].kind, FoldKind::kGuardedMax) << body;
  }
}

TEST_F(ClassifierTest, GuardOnDifferentValueIsNotAnExtremum) {
  // Guard compares @x but assigns @x + 1: ties leak order information.
  BodyClassification c = Classify("IF (@x < @s) SET @s = @x + 1;");
  EXPECT_FALSE(c.order_insensitive);
}

TEST_F(ClassifierTest, LastValueWinsIsOrderSensitive) {
  BodyClassification c = Classify("SET @s = @x;");
  EXPECT_FALSE(c.order_insensitive);
  ASSERT_EQ(c.folds.size(), 1u);
  EXPECT_EQ(c.folds[0].kind, FoldKind::kLastValue);
  EXPECT_NE(c.reason().find("last-value"), std::string::npos);
}

TEST_F(ClassifierTest, BreakIsOrderSensitive) {
  BodyClassification c =
      Classify("SET @s = @s + @x;\nIF (@s > 100) BREAK;");
  EXPECT_FALSE(c.order_insensitive);
}

TEST_F(ClassifierTest, MixedFoldShapesOnOneFieldAreOpaque) {
  BodyClassification c = Classify("SET @s = @s + @x;\nSET @s = @s * @x;");
  EXPECT_FALSE(c.order_insensitive);
}

TEST_F(ClassifierTest, FilteredFoldUnderRowPureGuard) {
  BodyClassification c = Classify("IF (@x > 3) SET @s = @s + 1;");
  EXPECT_TRUE(c.order_insensitive);
  EXPECT_TRUE(c.decomposable);
  ASSERT_EQ(c.folds.size(), 1u);
  EXPECT_EQ(c.folds[0].kind, FoldKind::kSum);
}

TEST_F(ClassifierTest, GuardReadingAccumulatorOutsideExtremumFails) {
  BodyClassification c = Classify("IF (@s > 10) SET @s = @s + @x;");
  EXPECT_FALSE(c.order_insensitive);
}

TEST_F(ClassifierTest, RowPureLocalsCompose) {
  // A scratch local recomputed each row from row-pure inputs keeps folds
  // order-insensitive; two independent fields classify independently.
  BodyClassification c = Classify(
      "DECLARE @d INT = @x * @x;\n"
      "SET @s = @s + @d;\n"
      "IF (@d > @m) SET @m = @d;",
      /*fields=*/{"@s", "@m"});
  EXPECT_TRUE(c.order_insensitive);
  EXPECT_TRUE(c.decomposable);
  EXPECT_EQ(c.folds.size(), 2u);
}

TEST_F(ClassifierTest, ConditionallyAssignedLocalCarriesState) {
  BodyClassification c = Classify(
      "DECLARE @d INT = 0;\n"
      "IF (@x > 0) SET @d = @x;\n"
      "SET @s = @s + @d;");
  EXPECT_FALSE(c.order_insensitive);
}

TEST_F(ClassifierTest, LoopInvariantVariablesAreRowPure) {
  // @p is never assigned in the body: reads are loop-invariant.
  BodyClassification c = Classify("SET @s = @s + @x * @p;");
  EXPECT_TRUE(c.order_insensitive);
}

TEST_F(ClassifierTest, PureBuiltinCallsAreRowPure) {
  BodyClassification c = Classify("SET @s = @s + abs(@x);");
  EXPECT_TRUE(c.order_insensitive);
  EXPECT_TRUE(c.decomposable);
}

TEST_F(ClassifierTest, SubqueryOperandsAreNotRowPure) {
  BodyClassification c =
      Classify("SET @s = @s + (SELECT COUNT(*) FROM t WHERE v < @x);");
  EXPECT_FALSE(c.order_insensitive);
}

}  // namespace
}  // namespace aggify
