// Unit tests for the semantic analysis suite: structured diagnostics,
// interprocedural purity (call-graph fixpoint over the catalog), and the
// order-sensitivity / decomposability fold classifier.
#include <gtest/gtest.h>

#include "aggify/rewriter.h"
#include "analysis/diagnostics.h"
#include "analysis/fold_classifier.h"
#include "analysis/purity.h"
#include "exec/eval.h"
#include "parser/parser.h"
#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

// ---- diagnostics ----

TEST(DiagnosticsTest, StatusRoundTripPreservesCodeAndMessage) {
  Status st = NotApplicableDiag(DiagCode::kPersistentUpdate,
                                "body UPDATEs table orders");
  EXPECT_TRUE(st.IsNotApplicable());
  Diagnostic d = DiagnosticFromStatus(st, "fn:c");
  EXPECT_EQ(d.code, DiagCode::kPersistentUpdate);
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_EQ(d.loc, "fn:c");
  EXPECT_EQ(d.message, "body UPDATEs table orders");
}

TEST(DiagnosticsTest, UnprefixedStatusFallsBackToScriptError) {
  Diagnostic d = DiagnosticFromStatus(Status::NotApplicable("free-form"),
                                      "x.sql");
  EXPECT_EQ(d.code, DiagCode::kScriptError);
  EXPECT_EQ(d.message, "free-form");
}

TEST(DiagnosticsTest, ToStringIsClangTidyShaped) {
  Diagnostic d = MakeDiagnostic(DiagCode::kImpureUdfCall, "report.sql:fn:c",
                                "calls log_row which INSERTs into audit",
                                "inline the call or move it after the loop");
  std::string s = d.ToString();
  EXPECT_EQ(s,
            "report.sql:fn:c: error: calls log_row which INSERTs into audit "
            "[aggify-impure-udf-call]\n"
            "  fix-it: inline the call or move it after the loop");
}

TEST(DiagnosticsTest, SeverityMap) {
  EXPECT_EQ(DiagCodeSeverity(DiagCode::kImpureUdfCall), DiagSeverity::kError);
  EXPECT_EQ(DiagCodeSeverity(DiagCode::kScriptError), DiagSeverity::kError);
  EXPECT_EQ(DiagCodeSeverity(DiagCode::kSelectStarCursor),
            DiagSeverity::kWarning);
  EXPECT_EQ(DiagCodeSeverity(DiagCode::kSortElided), DiagSeverity::kNote);
  EXPECT_EQ(DiagCodeName(DiagCode::kPersistentInsert), "AGG104");
  EXPECT_STREQ(DiagCodeSlug(DiagCode::kPersistentInsert), "persistent-insert");
}

// ---- interprocedural purity ----

class PurityTest : public ::testing::Test {
 protected:
  void SetUp() override { session_ = std::make_unique<Session>(&db_); }

  EffectLevel LevelOf(const std::string& fn) {
    CallGraph graph = CallGraph::Build(db_.catalog(), IsScalarBuiltinName);
    return graph.EffectsOf(fn).level;
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(PurityTest, ArithmeticOnlyFunctionIsPure) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION sq(@x INT) RETURNS INT AS
    BEGIN
      RETURN @x * @x;
    END
  )"));
  EXPECT_EQ(LevelOf("sq"), EffectLevel::kPure);
}

TEST_F(PurityTest, QueryingFunctionReadsDatabase) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE TABLE t (v INT);
    CREATE FUNCTION cnt() RETURNS INT AS
    BEGIN
      DECLARE @n INT;
      SET @n = (SELECT COUNT(*) FROM t);
      RETURN @n;
    END
  )"));
  EXPECT_EQ(LevelOf("cnt"), EffectLevel::kReadsDatabase);
}

TEST_F(PurityTest, TempTableDmlIsTempState) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION scratch(@x INT) RETURNS INT AS
    BEGIN
      DECLARE @tmp TABLE (v INT);
      INSERT INTO @tmp VALUES (@x);
      RETURN (SELECT COUNT(*) FROM @tmp);
    END
  )"));
  EXPECT_EQ(LevelOf("scratch"), EffectLevel::kWritesTempState);
}

TEST_F(PurityTest, PersistentDmlDominatesTransitively) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE TABLE log_t (v INT);
    CREATE FUNCTION writer(@x INT) RETURNS INT AS
    BEGIN
      INSERT INTO log_t VALUES (@x);
      RETURN @x;
    END
  )"));
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION caller(@x INT) RETURNS INT AS
    BEGIN
      RETURN writer(@x) + 1;
    END
  )"));
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION outer_caller(@x INT) RETURNS INT AS
    BEGIN
      RETURN caller(@x) * 2;
    END
  )"));
  EXPECT_EQ(LevelOf("writer"), EffectLevel::kWritesPersistentState);
  EXPECT_EQ(LevelOf("caller"), EffectLevel::kWritesPersistentState);
  EXPECT_EQ(LevelOf("outer_caller"), EffectLevel::kWritesPersistentState);
  CallGraph graph = CallGraph::Build(db_.catalog(), IsScalarBuiltinName);
  // The evidence chain names the callee that introduced the effect.
  EXPECT_NE(graph.EffectsOf("outer_caller").evidence.find("caller"),
            std::string::npos);
}

TEST_F(PurityTest, MutualRecursionConverges) {
  // The fixpoint must terminate on cycles and agree across the SCC.
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION even_fn(@n INT) RETURNS INT AS
    BEGIN
      IF (@n = 0) RETURN 1;
      RETURN odd_fn(@n - 1);
    END
  )"));
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION odd_fn(@n INT) RETURNS INT AS
    BEGIN
      IF (@n = 0) RETURN 0;
      RETURN even_fn(@n - 1);
    END
  )"));
  EXPECT_EQ(LevelOf("even_fn"), EffectLevel::kPure);
  EXPECT_EQ(LevelOf("odd_fn"), EffectLevel::kPure);
}

TEST_F(PurityTest, BuiltinCallsStayPureUnknownCallsDoNot) {
  ASSERT_OK(session_->RunSql(R"(
    CREATE FUNCTION uses_builtin(@x INT) RETURNS INT AS
    BEGIN
      RETURN abs(@x) + floor(1.5);
    END
  )"));
  EXPECT_EQ(LevelOf("uses_builtin"), EffectLevel::kPure);
  // A name neither in the catalog nor a recognized builtin is kUnknown.
  CallGraph graph = CallGraph::Build(db_.catalog(), IsScalarBuiltinName);
  EXPECT_EQ(graph.EffectsOf("no_such_fn").level, EffectLevel::kUnknown);
}

// ---- fold classifier ----

class ClassifierTest : public ::testing::Test {
 protected:
  BodyClassification Classify(const std::string& body_text,
                              std::set<std::string> fields = {"@s"},
                              std::set<std::string> row_vars = {"@x"}) {
    auto parsed = ParseStatements(body_text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    body_ = std::move(parsed).ValueOrDie();
    return ClassifyLoopBody(static_cast<const BlockStmt&>(*body_), fields,
                            row_vars, IsScalarBuiltinName);
  }

  StmtPtr body_;
};

TEST_F(ClassifierTest, SumFoldIsInsensitiveAndDecomposable) {
  BodyClassification c = Classify("SET @s = @s + @x;");
  EXPECT_TRUE(c.order_insensitive);
  EXPECT_TRUE(c.decomposable);
  ASSERT_EQ(c.folds.size(), 1u);
  EXPECT_EQ(c.folds[0].kind, FoldKind::kSum);
}

TEST_F(ClassifierTest, SubtractionOfRowTermIsASumFold) {
  BodyClassification c = Classify("SET @s = @s - @x * 2;");
  EXPECT_TRUE(c.order_insensitive);
  EXPECT_TRUE(c.decomposable);
}

TEST_F(ClassifierTest, ProductIsInsensitiveButNotDecomposable) {
  BodyClassification c = Classify("SET @s = @s * @x;");
  EXPECT_TRUE(c.order_insensitive);
  EXPECT_FALSE(c.decomposable);
  EXPECT_NE(c.merge_reason().find("product"), std::string::npos);
}

TEST_F(ClassifierTest, GuardedMinAllSpellings) {
  for (const char* body : {
           "IF (@x < @s) SET @s = @x;",
           "IF (@s > @x) SET @s = @x;",
           "IF (@s IS NULL OR @x < @s) SET @s = @x;",
           "IF (@x < @s) BEGIN SET @s = @x; END",
       }) {
    BodyClassification c = Classify(body);
    EXPECT_TRUE(c.order_insensitive) << body << ": " << c.reason();
    ASSERT_EQ(c.folds.size(), 1u) << body;
    EXPECT_EQ(c.folds[0].kind, FoldKind::kGuardedMin) << body;
  }
}

TEST_F(ClassifierTest, GuardedMaxDirections) {
  for (const char* body : {
           "IF (@x > @s) SET @s = @x;",
           "IF (@s < @x) SET @s = @x;",
       }) {
    BodyClassification c = Classify(body);
    ASSERT_EQ(c.folds.size(), 1u) << body;
    EXPECT_EQ(c.folds[0].kind, FoldKind::kGuardedMax) << body;
  }
}

TEST_F(ClassifierTest, GuardOnDifferentValueIsNotAnExtremum) {
  // Guard compares @x but assigns @x + 1: ties leak order information.
  BodyClassification c = Classify("IF (@x < @s) SET @s = @x + 1;");
  EXPECT_FALSE(c.order_insensitive);
}

TEST_F(ClassifierTest, LastValueWinsIsOrderSensitive) {
  BodyClassification c = Classify("SET @s = @x;");
  EXPECT_FALSE(c.order_insensitive);
  ASSERT_EQ(c.folds.size(), 1u);
  EXPECT_EQ(c.folds[0].kind, FoldKind::kLastValue);
  EXPECT_NE(c.reason().find("last-value"), std::string::npos);
}

TEST_F(ClassifierTest, BreakIsOrderSensitive) {
  BodyClassification c =
      Classify("SET @s = @s + @x;\nIF (@s > 100) BREAK;");
  EXPECT_FALSE(c.order_insensitive);
}

TEST_F(ClassifierTest, MixedFoldShapesOnOneFieldAreOpaque) {
  BodyClassification c = Classify("SET @s = @s + @x;\nSET @s = @s * @x;");
  EXPECT_FALSE(c.order_insensitive);
}

TEST_F(ClassifierTest, FilteredFoldUnderRowPureGuard) {
  BodyClassification c = Classify("IF (@x > 3) SET @s = @s + 1;");
  EXPECT_TRUE(c.order_insensitive);
  EXPECT_TRUE(c.decomposable);
  ASSERT_EQ(c.folds.size(), 1u);
  EXPECT_EQ(c.folds[0].kind, FoldKind::kSum);
}

TEST_F(ClassifierTest, GuardReadingAccumulatorOutsideExtremumFails) {
  BodyClassification c = Classify("IF (@s > 10) SET @s = @s + @x;");
  EXPECT_FALSE(c.order_insensitive);
}

TEST_F(ClassifierTest, RowPureLocalsCompose) {
  // A scratch local recomputed each row from row-pure inputs keeps folds
  // order-insensitive; two independent fields classify independently.
  BodyClassification c = Classify(
      "DECLARE @d INT = @x * @x;\n"
      "SET @s = @s + @d;\n"
      "IF (@d > @m) SET @m = @d;",
      /*fields=*/{"@s", "@m"});
  EXPECT_TRUE(c.order_insensitive);
  EXPECT_TRUE(c.decomposable);
  EXPECT_EQ(c.folds.size(), 2u);
}

TEST_F(ClassifierTest, ConditionallyAssignedLocalCarriesState) {
  BodyClassification c = Classify(
      "DECLARE @d INT = 0;\n"
      "IF (@x > 0) SET @d = @x;\n"
      "SET @s = @s + @d;");
  EXPECT_FALSE(c.order_insensitive);
}

TEST_F(ClassifierTest, LoopInvariantVariablesAreRowPure) {
  // @p is never assigned in the body: reads are loop-invariant.
  BodyClassification c = Classify("SET @s = @s + @x * @p;");
  EXPECT_TRUE(c.order_insensitive);
}

TEST_F(ClassifierTest, PureBuiltinCallsAreRowPure) {
  BodyClassification c = Classify("SET @s = @s + abs(@x);");
  EXPECT_TRUE(c.order_insensitive);
  EXPECT_TRUE(c.decomposable);
}

TEST_F(ClassifierTest, SubqueryOperandsAreNotRowPure) {
  BodyClassification c =
      Classify("SET @s = @s + (SELECT COUNT(*) FROM t WHERE v < @x);");
  EXPECT_FALSE(c.order_insensitive);
}

// ---- skip_details: the full rejection list is never truncated ----

TEST(SkipDetailsTest, EveryViolationCollectedInSourceOrderNoneDropped) {
  // One loop, four distinct violations: UPDATE, INSERT, RETURN (body
  // traversal order), then the impure-call diagnostic. The report must keep
  // the whole list; `skipped` is exactly its head.
  Database db;
  Session session(&db);
  ASSERT_OK(session
                .RunSql("CREATE TABLE src (k INT, v INT);"
                        "CREATE TABLE orders (id INT, total INT);"
                        "CREATE TABLE audit (x INT);"
                        "CREATE FUNCTION log_row(@x INT) RETURNS INT AS BEGIN "
                        "INSERT INTO audit VALUES (@x); RETURN @x; END "
                        "CREATE FUNCTION victim(@p INT) RETURNS INT AS BEGIN "
                        "  DECLARE @k INT; DECLARE @v INT; DECLARE @s INT = 0;"
                        "  DECLARE c CURSOR FOR SELECT k, v FROM src;"
                        "  OPEN c; FETCH NEXT FROM c INTO @k, @v;"
                        "  WHILE @@FETCH_STATUS = 0 BEGIN"
                        "    UPDATE orders SET total = total + @v WHERE id = @k;"
                        "    INSERT INTO audit VALUES (@k);"
                        "    IF @v < 0 RETURN @s;"
                        "    SET @s = @s + log_row(@v);"
                        "    FETCH NEXT FROM c INTO @k, @v;"
                        "  END CLOSE c; DEALLOCATE c;"
                        "  RETURN @s; END")
                .status());
  Aggify aggify(&db);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("victim"));
  EXPECT_EQ(report.loops_rewritten, 0);
  ASSERT_EQ(report.skipped.size(), 1u);
  ASSERT_EQ(report.skip_details.size(), report.skipped.size());
  const std::vector<Diagnostic>& detail = report.skip_details[0];
  // No violation dropped, and `skipped` is the head of the full list.
  ASSERT_GE(detail.size(), 4u);
  EXPECT_EQ(detail.front().code, report.skipped[0].code);
  EXPECT_EQ(detail.front().message, report.skipped[0].message);
  std::vector<DiagCode> codes;
  for (const auto& d : detail) codes.push_back(d.code);
  EXPECT_EQ(codes[0], DiagCode::kPersistentUpdate);
  EXPECT_EQ(codes[1], DiagCode::kPersistentInsert);
  EXPECT_EQ(codes[2], DiagCode::kReturnInLoop);
  EXPECT_TRUE(std::find(codes.begin(), codes.end(),
                        DiagCode::kImpureUdfCall) != codes.end());
  // Body-anchored diagnostics carry nondecreasing byte offsets (source
  // order), so lint output can be sorted reproducibly.
  EXPECT_GT(detail[0].offset, 0u);
  EXPECT_LE(detail[0].offset, detail[1].offset);
  EXPECT_LE(detail[1].offset, detail[2].offset);
}

// ---- lint ordering: (file, byte offset, code) source order ----

TEST(LintOrderTest, SortIsByFileThenOffsetThenCode) {
  std::vector<Diagnostic> diags;
  Diagnostic d1 = MakeDiagnostic(DiagCode::kPersistentUpdate, "b.sql:f:c",
                                 "late in b");
  d1.offset = 500;
  Diagnostic d2 = MakeDiagnostic(DiagCode::kPersistentInsert, "b.sql:g:c",
                                 "early in b");
  d2.offset = 10;
  Diagnostic d3 = MakeDiagnostic(DiagCode::kReturnInLoop, "a.sql:h:c",
                                 "in a");
  d3.offset = 900;
  // Same position: the lower code wins the tie.
  Diagnostic d4 = MakeDiagnostic(DiagCode::kPersistentDelete, "b.sql:g:c",
                                 "same offset as d2");
  d4.offset = 10;
  diags = {d1, d2, d3, d4};
  SortDiagnosticsBySource(&diags);
  EXPECT_EQ(diags[0].message, "in a");            // a.sql before b.sql
  EXPECT_EQ(diags[1].message, "early in b");      // offset 10, AGG104
  EXPECT_EQ(diags[2].message, "same offset as d2");  // offset 10, AGG106
  EXPECT_EQ(diags[3].message, "late in b");       // offset 500
}

TEST(LintOrderTest, ToStringIncludesByteOffsetWhenKnown) {
  Diagnostic d = MakeDiagnostic(DiagCode::kPersistentInsert, "x.sql:f:c",
                                "body INSERTs into t");
  EXPECT_EQ(d.ToString().rfind("x.sql:f:c: warning:", 0), 0u);
  d.offset = 42;
  EXPECT_EQ(d.ToString().rfind("x.sql:f:c:42: warning:", 0), 0u);
}

TEST(LintOrderTest, ScriptDiagnosticsSortIntoSourceOrder) {
  // Catalog iteration is name-ordered ("alpha_late" before "zulu_early"),
  // the source defines zulu_early FIRST — the lint regression: emission
  // must follow byte offsets, not discovery order.
  Database db;
  Session session(&db);
  ASSERT_OK(
      session
          .RunSql("CREATE TABLE src (k INT, v INT);"
                  "CREATE TABLE t1 (x INT);"
                  "CREATE TABLE t2 (x INT);"
                  "CREATE FUNCTION zulu_early() RETURNS INT AS BEGIN "
                  "  DECLARE @v INT;"
                  "  DECLARE c CURSOR FOR SELECT k FROM src;"
                  "  OPEN c; FETCH NEXT FROM c INTO @v;"
                  "  WHILE @@FETCH_STATUS = 0 BEGIN"
                  "    INSERT INTO t1 VALUES (@v);"
                  "    INSERT INTO t1 VALUES (@v + 1);"
                  "    FETCH NEXT FROM c INTO @v;"
                  "  END CLOSE c; DEALLOCATE c; RETURN 0; END "
                  "CREATE FUNCTION alpha_late() RETURNS INT AS BEGIN "
                  "  DECLARE @v INT;"
                  "  DECLARE c CURSOR FOR SELECT k FROM src;"
                  "  OPEN c; FETCH NEXT FROM c INTO @v;"
                  "  WHILE @@FETCH_STATUS = 0 BEGIN"
                  "    UPDATE t2 SET x = 1 WHERE x = @v;"
                  "    FETCH NEXT FROM c INTO @v;"
                  "  END CLOSE c; DEALLOCATE c; RETURN 0; END")
          .status());
  Aggify aggify(&db);
  // Mirror the CLI's LintScript collection: all skip_details + notes,
  // label-prefixed, then source-sorted.
  std::vector<Diagnostic> collected;
  for (const std::string& name : db.catalog().FunctionNames()) {
    ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction(name));
    for (const auto& detail : report.skip_details) {
      for (Diagnostic d : detail) {
        d.loc = "script.sql:" + d.loc;
        collected.push_back(std::move(d));
      }
    }
  }
  // Discovery order leads with alpha_late (catalog is name-ordered).
  ASSERT_GE(collected.size(), 3u);
  EXPECT_NE(collected[0].loc.find("alpha_late"), std::string::npos);
  SortDiagnosticsBySource(&collected);
  // Source order restores zulu_early's diagnostics (smaller byte offsets)
  // ahead of every alpha_late one, and keeps offsets nondecreasing.
  EXPECT_NE(collected[0].loc.find("zulu_early"), std::string::npos);
  bool seen_alpha = false;
  for (size_t i = 0; i < collected.size(); ++i) {
    if (collected[i].loc.find("alpha_late") != std::string::npos) {
      seen_alpha = true;
    } else {
      EXPECT_FALSE(seen_alpha)
          << "zulu_early diagnostic emitted after alpha_late: "
          << collected[i].ToString();
    }
    if (i > 0) EXPECT_LE(collected[i - 1].offset, collected[i].offset);
  }
  // The two INSERT violations stay in statement order before the UPDATE.
  std::vector<DiagCode> dml_codes;
  for (const auto& d : collected) {
    if (d.code == DiagCode::kPersistentInsert ||
        d.code == DiagCode::kPersistentUpdate) {
      dml_codes.push_back(d.code);
    }
  }
  ASSERT_EQ(dml_codes.size(), 3u);
  EXPECT_EQ(dml_codes[0], DiagCode::kPersistentInsert);
  EXPECT_EQ(dml_codes[1], DiagCode::kPersistentInsert);
  EXPECT_EQ(dml_codes[2], DiagCode::kPersistentUpdate);
}

TEST(SkipDetailsTest, RewrittenLoopsContributeNoSkipEntries) {
  Database db;
  Session session(&db);
  ASSERT_OK(session
                .RunSql("CREATE TABLE src (k INT, v INT);"
                        "INSERT INTO src VALUES (1, 2), (3, 4);"
                        "CREATE FUNCTION total() RETURNS INT AS BEGIN "
                        "  DECLARE @v INT; DECLARE @s INT = 0;"
                        "  DECLARE c CURSOR FOR SELECT v FROM src;"
                        "  OPEN c; FETCH NEXT FROM c INTO @v;"
                        "  WHILE @@FETCH_STATUS = 0 BEGIN"
                        "    SET @s = @s + @v;"
                        "    FETCH NEXT FROM c INTO @v;"
                        "  END CLOSE c; DEALLOCATE c;"
                        "  RETURN @s; END")
                .status());
  Aggify aggify(&db);
  ASSERT_OK_AND_ASSIGN(AggifyReport report, aggify.RewriteFunction("total"));
  EXPECT_EQ(report.loops_rewritten, 1);
  EXPECT_TRUE(report.skipped.empty());
  EXPECT_TRUE(report.skip_details.empty());
}

}  // namespace
}  // namespace aggify
