// Tests of the client retry policy's backoff/jitter math and of which
// status codes are (and are not) retryable.
#include <gtest/gtest.h>

#include "client/network.h"
#include "common/random.h"
#include "common/status.h"
#include "test_util.h"

namespace aggify {
namespace {

TEST(RetryPolicyTest, BackoffDoublesFromBase) {
  RetryPolicy policy;  // base 1ms, max 64ms
  EXPECT_DOUBLE_EQ(RawBackoffMs(policy, 1), 1.0);
  EXPECT_DOUBLE_EQ(RawBackoffMs(policy, 2), 2.0);
  EXPECT_DOUBLE_EQ(RawBackoffMs(policy, 3), 4.0);
  EXPECT_DOUBLE_EQ(RawBackoffMs(policy, 7), 64.0);
}

TEST(RetryPolicyTest, BackoffIsCappedAtPolicyMaximum) {
  RetryPolicy policy;
  policy.base_backoff_ms = 3.0;
  policy.max_backoff_ms = 20.0;
  EXPECT_DOUBLE_EQ(RawBackoffMs(policy, 1), 3.0);
  EXPECT_DOUBLE_EQ(RawBackoffMs(policy, 2), 6.0);
  EXPECT_DOUBLE_EQ(RawBackoffMs(policy, 3), 12.0);
  EXPECT_DOUBLE_EQ(RawBackoffMs(policy, 4), 20.0);  // 24 clamps to 20
  // No overflow for absurd attempt counts: the cap holds.
  EXPECT_DOUBLE_EQ(RawBackoffMs(policy, 500), 20.0);
}

TEST(RetryPolicyTest, JitterStaysWithinHalfOpenBand) {
  // A draw in [0, 1) must land the delay in [raw/2, raw): at least half
  // the backoff is always honored, and the full value is never reached.
  EXPECT_DOUBLE_EQ(JitteredBackoffMs(8.0, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(JitteredBackoffMs(8.0, 0.5), 6.0);
  EXPECT_LT(JitteredBackoffMs(8.0, 0.999999), 8.0);
  RetryPolicy policy;
  Random rng(policy.jitter_seed);
  for (int i = 0; i < 1000; ++i) {
    const double raw = RawBackoffMs(policy, 1 + i % 8);
    const double jittered = JitteredBackoffMs(raw, rng.NextDouble());
    EXPECT_GE(jittered, raw / 2.0);
    EXPECT_LT(jittered, raw);
  }
}

TEST(RetryPolicyTest, SeededJitterReplaysDeterministically) {
  RetryPolicy policy;
  Random a(policy.jitter_seed);
  Random b(policy.jitter_seed);
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const double raw = RawBackoffMs(policy, attempt);
    EXPECT_DOUBLE_EQ(JitteredBackoffMs(raw, a.NextDouble()),
                     JitteredBackoffMs(raw, b.NextDouble()));
  }
}

TEST(RetryPolicyTest, RetryabilityDistinguishesTimeoutFromExhaustion) {
  // Deadline expiry is transient — a retry (or a fallback loop) may beat
  // the clock next time. A blown memory budget or a cancellation is not:
  // the same plan charges the same bytes, and the caller asked to stop.
  EXPECT_TRUE(Status::Timeout("deadline").IsRetryable());
  EXPECT_TRUE(Status::Unavailable("flaky link").IsRetryable());
  EXPECT_FALSE(Status::ResourceExhausted("budget").IsRetryable());
  EXPECT_FALSE(Status::Cancelled("caller").IsRetryable());
  EXPECT_FALSE(Status::Internal("bug").IsRetryable());

  EXPECT_TRUE(Status::ResourceExhausted("budget").IsResourceExhausted());
  EXPECT_TRUE(Status::Cancelled("caller").IsCancelled());
}

}  // namespace
}  // namespace aggify
