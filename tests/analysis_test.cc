// Unit tests for the program analyses (§3.2): CFG construction, reaching
// definitions, live variables, UD/DU chains, and the paper's §3.2.3/§3.2.4
// worked observations about Figure 1.
#include <gtest/gtest.h>

#include "analysis/dataflow.h"
#include "parser/parser.h"
#include "test_util.h"

namespace aggify {
namespace {

Result<StmtPtr> Parse(const std::string& text) { return ParseStatements(text); }

const BlockStmt& AsBlock(const StmtPtr& s) {
  return static_cast<const BlockStmt&>(*s);
}

TEST(CfgTest, StraightLineShape) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, Parse(R"(
    DECLARE @a INT = 1;
    SET @a = @a + 1;
    RETURN @a;
  )"));
  ASSERT_OK_AND_ASSIGN(auto cfg, Cfg::Build(AsBlock(prog), {}));
  // entry, declare, set, return, exit
  EXPECT_EQ(cfg->size(), 5);
  EXPECT_EQ(cfg->node(cfg->entry()).successors.size(), 1u);
  // RETURN jumps straight to exit.
  const CfgNode& ret = cfg->node(3);
  ASSERT_EQ(ret.successors.size(), 1u);
  EXPECT_EQ(ret.successors[0], cfg->exit());
}

TEST(CfgTest, IfElseDiamond) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, Parse(R"(
    DECLARE @a INT = 0;
    IF @a > 0
      SET @a = 1;
    ELSE
      SET @a = 2;
    SET @a = 3;
  )"));
  ASSERT_OK_AND_ASSIGN(auto cfg, Cfg::Build(AsBlock(prog), {}));
  // Find the condition node: two successors.
  int cond_id = -1;
  for (const auto& n : cfg->nodes()) {
    if (n.kind == CfgNodeKind::kCondition) cond_id = n.id;
  }
  ASSERT_GE(cond_id, 0);
  EXPECT_EQ(cfg->node(cond_id).successors.size(), 2u);
}

TEST(CfgTest, WhileLoopBackEdgeAndExit) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, Parse(R"(
    DECLARE @i INT = 0;
    WHILE @i < 10
    BEGIN
      SET @i = @i + 1;
    END
    SET @i = -1;
  )"));
  ASSERT_OK_AND_ASSIGN(auto cfg, Cfg::Build(AsBlock(prog), {}));
  const WhileStmt* loop = nullptr;
  for (const auto& s : AsBlock(prog).statements) {
    if (s->kind == StmtKind::kWhile) loop = static_cast<WhileStmt*>(s.get());
  }
  ASSERT_NE(loop, nullptr);
  ASSERT_OK_AND_ASSIGN(int cond, cfg->NodeFor(*loop));
  ASSERT_OK_AND_ASSIGN(int exit_node, cfg->LoopExitNode(*loop));
  // Back edge: body SET's successor is the condition.
  bool has_back_edge = false;
  for (const auto& n : cfg->nodes()) {
    for (int s : n.successors) {
      if (s == cond && n.id > cond) has_back_edge = true;
    }
  }
  EXPECT_TRUE(has_back_edge);
  // Exit node is the SET @i = -1 statement.
  EXPECT_EQ(cfg->node(exit_node).kind, CfgNodeKind::kStatement);
  EXPECT_EQ(cfg->node(exit_node).defs, std::vector<std::string>{"@i"});
}

TEST(CfgTest, BreakLeavesLoopContinueReenters) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, Parse(R"(
    DECLARE @i INT = 0;
    WHILE @i < 10
    BEGIN
      IF @i = 5
        BREAK;
      IF @i = 3
        CONTINUE;
      SET @i = @i + 1;
    END
  )"));
  ASSERT_OK_AND_ASSIGN(auto cfg, Cfg::Build(AsBlock(prog), {}));
  AGGIFY_UNUSED(cfg);  // construction itself validates break/continue wiring
  EXPECT_GT(cfg->size(), 6);
}

TEST(CfgTest, BreakOutsideLoopIsAnError) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, Parse("BREAK;"));
  EXPECT_FALSE(Cfg::Build(AsBlock(prog), {}).ok());
}

TEST(DefUseTest, FetchDefinesVariablesAndStatus) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, Parse(R"(
    DECLARE @a INT;
    DECLARE @b INT;
    DECLARE c CURSOR FOR SELECT x, y FROM t WHERE x = @a;
    OPEN c;
    FETCH NEXT FROM c INTO @a, @b;
  )"));
  ASSERT_OK_AND_ASSIGN(auto cfg, Cfg::Build(AsBlock(prog), {}));
  // The DECLARE CURSOR node uses @a (query parameter).
  bool declare_uses_a = false;
  bool fetch_defines_status = false;
  for (const auto& n : cfg->nodes()) {
    if (n.stmt != nullptr && n.stmt->kind == StmtKind::kDeclareCursor) {
      for (const auto& u : n.uses) {
        if (u == "@a") declare_uses_a = true;
      }
    }
    if (n.stmt != nullptr && n.stmt->kind == StmtKind::kFetch) {
      for (const auto& d : n.defs) {
        if (d == "@@fetch_status") fetch_defines_status = true;
      }
    }
  }
  EXPECT_TRUE(declare_uses_a);
  EXPECT_TRUE(fetch_defines_status);
}

// §3.2.3's worked example: two definitions of @lb reach its use in the loop.
TEST(DataflowTest, ReachingDefinitionsPaperExample) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, Parse(R"(
    DECLARE @lb INT = -1;
    IF (@lb = -1)
      SET @lb = 0;
    SET @use = @lb;
  )"));
  // @use is undeclared; declare it to keep the program well-formed.
  ASSERT_OK_AND_ASSIGN(StmtPtr prog2, Parse(R"(
    DECLARE @use INT;
    DECLARE @lb INT = -1;
    IF (@lb = -1)
      SET @lb = 0;
    SET @use = @lb;
  )"));
  AGGIFY_UNUSED(prog);
  ASSERT_OK_AND_ASSIGN(auto cfg, Cfg::Build(AsBlock(prog2), {}));
  DataflowResult flow = DataflowResult::Run(*cfg);
  // Find the final SET node and ask which definitions of @lb reach it.
  int set_use = -1;
  for (const auto& n : cfg->nodes()) {
    if (!n.defs.empty() && n.defs[0] == "@use" && !n.uses.empty()) {
      set_use = n.id;
    }
  }
  ASSERT_GE(set_use, 0);
  auto defs = flow.UdChain(set_use, "@lb");
  EXPECT_EQ(defs.size(), 2u);  // the DECLARE and the conditional SET
}

// §3.2.4's worked example: @suppName-like liveness.
TEST(DataflowTest, LivenessAtLoopExit) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, Parse(R"(
    DECLARE @x INT;
    DECLARE @acc INT = 0;
    DECLARE @dead INT = 5;
    DECLARE c CURSOR FOR SELECT v FROM t;
    OPEN c;
    FETCH NEXT FROM c INTO @x;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      SET @acc = @acc + @x;
      SET @dead = @dead + 1;
      FETCH NEXT FROM c INTO @x;
    END
    CLOSE c;
    DEALLOCATE c;
    RETURN @acc;
  )"));
  ASSERT_OK_AND_ASSIGN(auto cfg, Cfg::Build(AsBlock(prog), {}));
  DataflowResult flow = DataflowResult::Run(*cfg);
  const WhileStmt* loop = nullptr;
  for (const auto& s : AsBlock(prog).statements) {
    if (s->kind == StmtKind::kWhile) loop = static_cast<WhileStmt*>(s.get());
  }
  ASSERT_NE(loop, nullptr);
  ASSERT_OK_AND_ASSIGN(int exit_node, cfg->LoopExitNode(*loop));
  // @acc is live after the loop (used by RETURN); @dead and @x are not.
  EXPECT_TRUE(flow.IsLiveAt("@acc", exit_node));
  EXPECT_FALSE(flow.IsLiveAt("@dead", exit_node));
  EXPECT_FALSE(flow.IsLiveAt("@x", exit_node));
}

TEST(DataflowTest, DuChainsInvertUdChains) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, Parse(R"(
    DECLARE @a INT = 1;
    SET @b = @a;
    SET @c = @a;
  )"));
  ASSERT_OK_AND_ASSIGN(StmtPtr prog2, Parse(R"(
    DECLARE @b INT;
    DECLARE @c INT;
    DECLARE @a INT = 1;
    SET @b = @a;
    SET @c = @a;
  )"));
  AGGIFY_UNUSED(prog);
  ASSERT_OK_AND_ASSIGN(auto cfg, Cfg::Build(AsBlock(prog2), {}));
  DataflowResult flow = DataflowResult::Run(*cfg);
  // The single definition of @a reaches both uses.
  int def_node = -1;
  for (const auto& n : cfg->nodes()) {
    if (!n.defs.empty() && n.defs[0] == "@a") def_node = n.id;
  }
  ASSERT_GE(def_node, 0);
  auto uses = flow.DuChain(Definition{def_node, "@a"});
  EXPECT_EQ(uses.size(), 2u);
  for (const Use& u : uses) {
    auto back = flow.UdChain(u.node, "@a");
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].node, def_node);
  }
}

TEST(DataflowTest, ParametersAreEntryDefinitions) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, Parse("SET @out = @p + 1;"));
  ASSERT_OK_AND_ASSIGN(StmtPtr prog2, Parse(R"(
    DECLARE @out INT;
    SET @out = @p + 1;
  )"));
  AGGIFY_UNUSED(prog);
  ASSERT_OK_AND_ASSIGN(auto cfg, Cfg::Build(AsBlock(prog2), {"@p"}));
  DataflowResult flow = DataflowResult::Run(*cfg);
  int set_node = -1;
  for (const auto& n : cfg->nodes()) {
    if (!n.defs.empty() && n.defs[0] == "@out") set_node = n.id;
  }
  ASSERT_GE(set_node, 0);
  auto defs = flow.UdChain(set_node, "@p");
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0].node, cfg->entry());
}

TEST(DataflowTest, ForLoopInductionVariableFlows) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, Parse(R"(
    DECLARE @s INT = 0;
    FOR @i = 1 TO 10
    BEGIN
      SET @s = @s + @i;
    END
    RETURN @s;
  )"));
  ASSERT_OK_AND_ASSIGN(auto cfg, Cfg::Build(AsBlock(prog), {}));
  DataflowResult flow = DataflowResult::Run(*cfg);
  // @i must have >= 2 reaching definitions inside the body (init + incr).
  int body_set = -1;
  for (const auto& n : cfg->nodes()) {
    if (!n.defs.empty() && n.defs[0] == "@s" && !n.uses.empty()) body_set = n.id;
  }
  ASSERT_GE(body_set, 0);
  EXPECT_EQ(flow.UdChain(body_set, "@i").size(), 2u);
}

TEST(CfgTest, DotRenderingIsNonEmpty) {
  ASSERT_OK_AND_ASSIGN(StmtPtr prog, Parse("DECLARE @a INT = 1;"));
  ASSERT_OK_AND_ASSIGN(auto cfg, Cfg::Build(AsBlock(prog), {}));
  std::string dot = cfg->ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("ENTRY"), std::string::npos);
}

}  // namespace
}  // namespace aggify
