// Plan-invariance properties: every optimizer toggle combination must
// produce identical results for a battery of queries — the planner may only
// change *how*, never *what*.
#include <gtest/gtest.h>

#include "procedural/session.h"
#include "test_util.h"

namespace aggify {
namespace {

const char* kSetupSql = R"(
  CREATE TABLE fact (k INT, d INT, m FLOAT);
  CREATE TABLE dim (k INT, name VARCHAR(12));
  CREATE INDEX idx_fact_k ON fact (k);
  INSERT INTO fact VALUES
    (1, 1, 1.5), (1, 2, 2.5), (2, 1, 3.5), (2, 2, NULL),
    (3, 1, 4.5), (3, 3, 5.5), (9, 9, 9.9);
  INSERT INTO dim VALUES (1, 'one'), (2, 'two'), (3, 'three');
)";

const char* kQueries[] = {
    "SELECT fact.k, m FROM fact, dim WHERE fact.k = dim.k ORDER BY fact.k, d",
    "SELECT dim.name, SUM(m) AS s FROM fact, dim WHERE fact.k = dim.k "
    "GROUP BY dim.name ORDER BY dim.name",
    "SELECT k, COUNT(*) AS c FROM fact GROUP BY k HAVING COUNT(*) > 1 "
    "ORDER BY k",
    "SELECT f.k FROM fact f LEFT JOIN dim ON f.k = dim.k "
    "WHERE dim.name IS NULL ORDER BY f.k",
    "SELECT TOP 3 m FROM fact WHERE m IS NOT NULL ORDER BY m DESC",
    "SELECT DISTINCT d FROM fact ORDER BY d",
    "SELECT k FROM fact WHERE k = 2 AND m > 1",
    "SELECT (SELECT MAX(m) FROM fact WHERE fact.k = dim.k) AS mx, name "
    "FROM dim ORDER BY name",
    "SELECT name FROM dim WHERE EXISTS "
    "(SELECT k FROM fact WHERE fact.k = dim.k AND m > 4) ORDER BY name",
};

struct Toggle {
  bool index_seek;
  bool hash_join;
  bool pushdown;
  int dop;
};

class PlanInvariance : public ::testing::TestWithParam<int> {};

TEST_P(PlanInvariance, SameResultsUnderEveryPlannerConfiguration) {
  int bits = GetParam();
  Toggle toggle{(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0,
                (bits & 8) != 0 ? 3 : 1};

  Database db;
  {
    Session setup(&db);
    ASSERT_OK(setup.RunSql(kSetupSql).status());
  }

  EngineOptions reference_options;  // all defaults
  Session reference(&db, reference_options);

  EngineOptions options;
  options.planner.enable_index_seek = toggle.index_seek;
  options.planner.enable_hash_join = toggle.hash_join;
  options.planner.enable_predicate_pushdown = toggle.pushdown;
  options.execution.degree_of_parallelism = toggle.dop;
  Session session(&db, options);

  for (const char* sql : kQueries) {
    SCOPED_TRACE(sql);
    ASSERT_OK_AND_ASSIGN(QueryResult expected, reference.Query(sql));
    ASSERT_OK_AND_ASSIGN(QueryResult actual, session.Query(sql));
    ASSERT_EQ(actual.rows.size(), expected.rows.size());
    for (size_t i = 0; i < expected.rows.size(); ++i) {
      EXPECT_TRUE(RowsEqual(actual.rows[i], expected.rows[i]))
          << "row " << i << ": " << RowToString(actual.rows[i]) << " vs "
          << RowToString(expected.rows[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllToggleCombos, PlanInvariance,
                         ::testing::Range(0, 16));

}  // namespace
}  // namespace aggify
