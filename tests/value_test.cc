// Unit tests for the Value runtime: SQL three-valued logic, arithmetic
// promotion, dates, records, casts, hashing/equality invariants.
#include <gtest/gtest.h>

#include "test_util.h"
#include "types/value.h"

namespace aggify {
namespace {

TEST(ValueTest, NullPropagationThroughArithmetic) {
  Value null = Value::Null();
  Value two = Value::Int(2);
  for (auto op : {Add, Subtract, Multiply, Divide}) {
    ASSERT_OK_AND_ASSIGN(Value a, op(null, two));
    EXPECT_TRUE(a.is_null());
    ASSERT_OK_AND_ASSIGN(Value b, op(two, null));
    EXPECT_TRUE(b.is_null());
  }
}

TEST(ValueTest, IntegerArithmeticStaysIntegral) {
  ASSERT_OK_AND_ASSIGN(Value v, Add(Value::Int(2), Value::Int(3)));
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.int_value(), 5);
  ASSERT_OK_AND_ASSIGN(Value d, Divide(Value::Int(7), Value::Int(2)));
  EXPECT_TRUE(d.is_int());
  EXPECT_EQ(d.int_value(), 3);  // integer division, T-SQL style
}

TEST(ValueTest, MixedArithmeticPromotesToDouble) {
  ASSERT_OK_AND_ASSIGN(Value v, Multiply(Value::Int(2), Value::Double(1.5)));
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.double_value(), 3.0);
}

TEST(ValueTest, DivisionByZeroIsAnError) {
  auto r = Divide(Value::Int(1), Value::Int(0));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
  auto m = Modulo(Value::Int(1), Value::Int(0));
  ASSERT_FALSE(m.ok());
}

TEST(ValueTest, StringArithmeticIsATypeError) {
  auto r = Subtract(Value::String("a"), Value::Int(1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST(ValueTest, AddConcatenatesStrings) {
  ASSERT_OK_AND_ASSIGN(Value v, Add(Value::String("foo"), Value::String("bar")));
  EXPECT_EQ(v.string_value(), "foobar");
}

TEST(ValueTest, KleeneConnectives) {
  Value t = Value::Bool(true);
  Value f = Value::Bool(false);
  Value u = Value::Null();

  ASSERT_OK_AND_ASSIGN(Value v1, And(f, u));
  EXPECT_FALSE(v1.bool_value());  // false AND unknown = false
  ASSERT_OK_AND_ASSIGN(Value v2, And(t, u));
  EXPECT_TRUE(v2.is_null());  // true AND unknown = unknown
  ASSERT_OK_AND_ASSIGN(Value v3, Or(t, u));
  EXPECT_TRUE(v3.bool_value());  // true OR unknown = true
  ASSERT_OK_AND_ASSIGN(Value v4, Or(f, u));
  EXPECT_TRUE(v4.is_null());  // false OR unknown = unknown
  ASSERT_OK_AND_ASSIGN(Value v5, Not(u));
  EXPECT_TRUE(v5.is_null());
}

TEST(ValueTest, ComparisonWithNullIsNull) {
  ASSERT_OK_AND_ASSIGN(Value v, Eq(Value::Null(), Value::Null()));
  EXPECT_TRUE(v.is_null());  // NULL = NULL is unknown, not true
  ASSERT_OK_AND_ASSIGN(Value lt, Lt(Value::Int(1), Value::Null()));
  EXPECT_TRUE(lt.is_null());
}

TEST(ValueTest, CrossTypeNumericComparison) {
  ASSERT_OK_AND_ASSIGN(Value v, Eq(Value::Int(2), Value::Double(2.0)));
  EXPECT_TRUE(v.bool_value());
  ASSERT_OK_AND_ASSIGN(Value lt, Lt(Value::Int(2), Value::Double(2.5)));
  EXPECT_TRUE(lt.bool_value());
}

TEST(ValueTest, DateRoundTrip) {
  for (const char* s : {"1970-01-01", "1992-02-29", "1998-12-01",
                        "2020-01-01", "2026-07-06"}) {
    ASSERT_OK_AND_ASSIGN(Date d, DateFromString(s));
    EXPECT_EQ(DateToString(d), s);
  }
}

TEST(ValueTest, DateArithmeticAndComparison) {
  ASSERT_OK_AND_ASSIGN(Date a, DateFromString("1995-09-01"));
  ASSERT_OK_AND_ASSIGN(Value plus30, Add(Value::FromDate(a), Value::Int(30)));
  EXPECT_EQ(DateToString(plus30.date_value()), "1995-10-01");
  ASSERT_OK_AND_ASSIGN(Value diff,
                       Subtract(plus30, Value::FromDate(a)));
  EXPECT_EQ(diff.int_value(), 30);
  // String literals compare against dates (the workload queries rely on it).
  ASSERT_OK_AND_ASSIGN(Value cmp,
                       Lt(Value::FromDate(a), Value::String("1995-10-01")));
  EXPECT_TRUE(cmp.bool_value());
}

TEST(ValueTest, LeapYearHandling) {
  EXPECT_EQ(DateToString(MakeDate(2000, 2, 29)), "2000-02-29");
  EXPECT_EQ(DateToString(MakeDate(1900, 3, 1)), "1900-03-01");
  ASSERT_OK_AND_ASSIGN(Value next,
                       Add(Value::FromDate(MakeDate(2000, 2, 29)), Value::Int(1)));
  EXPECT_EQ(DateToString(next.date_value()), "2000-03-01");
}

TEST(ValueTest, RecordEqualityAndHash) {
  Value r1 = Value::Record({Value::Int(1), Value::String("x")});
  Value r2 = Value::Record({Value::Int(1), Value::String("x")});
  Value r3 = Value::Record({Value::Int(1), Value::String("y")});
  EXPECT_TRUE(r1.StructurallyEquals(r2));
  EXPECT_FALSE(r1.StructurallyEquals(r3));
  EXPECT_EQ(r1.Hash(), r2.Hash());
  EXPECT_EQ(r1.ToString(), "(1, x)");
}

TEST(ValueTest, HashConsistentWithEqualsAcrossNumericTypes) {
  Value i = Value::Int(42);
  Value d = Value::Double(42.0);
  EXPECT_TRUE(i.StructurallyEquals(d));
  EXPECT_EQ(i.Hash(), d.Hash());
}

TEST(ValueTest, CastMatrix) {
  ASSERT_OK_AND_ASSIGN(Value i, Value::String("42").CastTo(TypeId::kInt));
  EXPECT_EQ(i.int_value(), 42);
  ASSERT_OK_AND_ASSIGN(Value f, Value::String("2.5").CastTo(TypeId::kDouble));
  EXPECT_DOUBLE_EQ(f.double_value(), 2.5);
  ASSERT_OK_AND_ASSIGN(Value s, Value::Int(7).CastTo(TypeId::kString));
  EXPECT_EQ(s.string_value(), "7");
  ASSERT_OK_AND_ASSIGN(Value d,
                       Value::String("1996-03-13").CastTo(TypeId::kDate));
  EXPECT_EQ(DateToString(d.date_value()), "1996-03-13");
  EXPECT_FALSE(Value::String("nope").CastTo(TypeId::kInt).ok());
  // NULL casts to NULL of any type.
  ASSERT_OK_AND_ASSIGN(Value n, Value::Null().CastTo(TypeId::kInt));
  EXPECT_TRUE(n.is_null());
}

TEST(ValueTest, TotalOrderPutsNullsFirst) {
  EXPECT_LT(TotalOrderCompare(Value::Null(), Value::Int(-100)), 0);
  EXPECT_GT(TotalOrderCompare(Value::Int(-100), Value::Null()), 0);
  EXPECT_EQ(TotalOrderCompare(Value::Null(), Value::Null()), 0);
}

// Property sweep: Compare must be antisymmetric and consistent with Eq.
class ValueCompareProperty : public ::testing::TestWithParam<int> {};

TEST_P(ValueCompareProperty, AntisymmetryAndConsistency) {
  int seed = GetParam();
  auto mk = [&](int salt) -> Value {
    int v = (seed * 31 + salt * 17) % 7;
    switch (v % 3) {
      case 0: return Value::Int(v - 3);
      case 1: return Value::Double(v * 0.5 - 1);
      default: return Value::Int(v * 10);
    }
  };
  Value a = mk(1);
  Value b = mk(2);
  ASSERT_OK_AND_ASSIGN(Value ab, Compare(a, b));
  ASSERT_OK_AND_ASSIGN(Value ba, Compare(b, a));
  EXPECT_EQ(ab.int_value(), -ba.int_value());
  ASSERT_OK_AND_ASSIGN(Value eq, Eq(a, b));
  EXPECT_EQ(eq.bool_value(), ab.int_value() == 0);
  if (eq.bool_value()) {
    EXPECT_EQ(a.Hash(), b.Hash());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ValueCompareProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace aggify
