// Synthetic analogues of the paper's three proprietary customer workloads
// (§10.1): W1 is a CRM application, W2 a configuration-management tool, W3 a
// transportation-services backend. The paper measured eight loops L1–L8
// extracted from them (Fig. 9(c), Fig. 11); these reproduce each loop's
// *pattern*, including the properties the paper calls out:
//   - L2 and L6 iterate over few tuples and do temp-table DML (small gains)
//   - L8 is a nested cursor loop (>2x gains)
#pragma once

#include "workloads/harness.h"

namespace aggify {

struct RealWorkloadConfig {
  /// Row scale for the large tables (L1 iterates ~2x this).
  int64_t base_rows = 2000;
  uint64_t seed = 99;
};

/// Creates and fills the W1/W2/W3 schemas.
Status PopulateRealWorkloads(Database* db, const RealWorkloadConfig& config = {});

/// The eight loops, as harness workload queries. Labels carry the workload
/// and typical iteration count like the paper's x-axis annotations.
struct RealLoop {
  WorkloadQuery query;
  std::string workload;  ///< "W1" | "W2" | "W3"
  std::string label;
  bool nested = false;
};

const std::vector<RealLoop>& RealWorkloadLoops();

/// L1 parameterized by iteration count (Fig. 11's sweep): the driver limits
/// the accounts processed to `iterations`.
WorkloadQuery MakeL1Query(int64_t iterations);

}  // namespace aggify
