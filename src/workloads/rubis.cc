#include "workloads/rubis.h"

#include "types/value.h"

namespace aggify {

Status PopulateRubis(Database* db, const RubisConfig& config) {
  Catalog& catalog = db->catalog();
  Random rng(config.seed);
  IoStats* no_stats = nullptr;

  ASSIGN_OR_RETURN(
      Table * users,
      catalog.CreateTable(
          "users", Schema({Column("u_id", DataType::Int()),
                           Column("u_nickname", DataType::String(20)),
                           Column("u_rating", DataType::Int()),
                           Column("u_region", DataType::Int())})));
  ASSIGN_OR_RETURN(
      Table * items,
      catalog.CreateTable(
          "items", Schema({Column("i_id", DataType::Int()),
                           Column("i_name", DataType::String(32)),
                           Column("i_seller", DataType::Int()),
                           Column("i_category", DataType::Int()),
                           Column("i_initial_price", DataType::Decimal(10, 2)),
                           Column("i_quantity", DataType::Int()),
                           Column("i_end_date", DataType::Date())})));
  ASSIGN_OR_RETURN(
      Table * bids,
      catalog.CreateTable(
          "bids", Schema({Column("b_id", DataType::Int()),
                          Column("b_item", DataType::Int()),
                          Column("b_user", DataType::Int()),
                          Column("b_qty", DataType::Int()),
                          Column("b_bid", DataType::Decimal(10, 2)),
                          Column("b_date", DataType::Date())})));
  ASSIGN_OR_RETURN(
      Table * comments,
      catalog.CreateTable(
          "comments", Schema({Column("c_id", DataType::Int()),
                              Column("c_from", DataType::Int()),
                              Column("c_to", DataType::Int()),
                              Column("c_item", DataType::Int()),
                              Column("c_rating", DataType::Int())})));

  const Date epoch = MakeDate(2009, 1, 1);
  int64_t item_id = 0;
  int64_t bid_id = 0;
  int64_t comment_id = 0;
  for (int64_t u = 1; u <= config.num_users; ++u) {
    RETURN_NOT_OK(users->Insert({Value::Int(u),
                                 Value::String("user" + std::to_string(u)),
                                 Value::Int(rng.UniformRange(-5, 50)),
                                 Value::Int(rng.UniformRange(1, 60))},
                                no_stats));
    for (int64_t i = 0; i < config.items_per_user; ++i) {
      ++item_id;
      RETURN_NOT_OK(items->Insert(
          {Value::Int(item_id),
           Value::String("item " + rng.AlphaString(8)), Value::Int(u),
           Value::Int(rng.UniformRange(1, 20)),
           Value::Double(static_cast<double>(rng.UniformRange(100, 100000)) /
                         100.0),
           Value::Int(rng.UniformRange(0, 10)),
           Value::FromDate(
               Date{epoch.days + static_cast<int32_t>(rng.Uniform(365))})},
          no_stats));
      for (int64_t b = 0; b < config.bids_per_item; ++b) {
        ++bid_id;
        RETURN_NOT_OK(bids->Insert(
            {Value::Int(bid_id), Value::Int(item_id),
             Value::Int(rng.UniformRange(1, config.num_users)),
             Value::Int(rng.UniformRange(1, 3)),
             Value::Double(
                 static_cast<double>(rng.UniformRange(100, 200000)) / 100.0),
             Value::FromDate(
                 Date{epoch.days + static_cast<int32_t>(rng.Uniform(365))})},
            no_stats));
      }
    }
    for (int64_t c = 0; c < config.comments_per_user; ++c) {
      ++comment_id;
      RETURN_NOT_OK(comments->Insert(
          {Value::Int(comment_id),
           Value::Int(rng.UniformRange(1, config.num_users)), Value::Int(u),
           Value::Int(rng.UniformRange(1, item_id)),
           Value::Int(rng.UniformRange(-5, 5))},
          no_stats));
    }
  }
  RETURN_NOT_OK(bids->CreateIndex("idx_b_item", "b_item"));
  RETURN_NOT_OK(items->CreateIndex("idx_i_seller", "i_seller"));
  RETURN_NOT_OK(items->CreateIndex("idx_i_category", "i_category"));
  RETURN_NOT_OK(comments->CreateIndex("idx_c_to", "c_to"));
  return Status::OK();
}

namespace {

std::vector<RubisScenario> BuildScenarios() {
  std::vector<RubisScenario> scenarios;

  scenarios.push_back(RubisScenario{
      "ViewBidHistory", "ViewBidHistory (bids of one item)",
      R"(
        DECLARE @bid FLOAT;
        DECLARE @user INT;
        DECLARE @maxbid FLOAT = 0.0;
        DECLARE @maxbidder INT = 0;
        DECLARE @numbids INT = 0;
        DECLARE c CURSOR FOR
          SELECT b_bid, b_user FROM bids WHERE b_item = {KEY};
        OPEN c;
        FETCH NEXT FROM c INTO @bid, @user;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          SET @numbids = @numbids + 1;
          IF (@bid > @maxbid)
          BEGIN
            SET @maxbid = @bid;
            SET @maxbidder = @user;
          END
          FETCH NEXT FROM c INTO @bid, @user;
        END
        CLOSE c; DEALLOCATE c;
      )"});

  scenarios.push_back(RubisScenario{
      "AboutMe", "AboutMe (items sold by one user)",
      R"(
        DECLARE @price FLOAT;
        DECLARE @qty INT;
        DECLARE @total FLOAT = 0.0;
        DECLARE @listed INT = 0;
        DECLARE c CURSOR FOR
          SELECT i_initial_price, i_quantity FROM items
          WHERE i_seller = {KEY};
        OPEN c;
        FETCH NEXT FROM c INTO @price, @qty;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          SET @listed = @listed + 1;
          SET @total = @total + @price * @qty;
          FETCH NEXT FROM c INTO @price, @qty;
        END
        CLOSE c; DEALLOCATE c;
      )"});

  scenarios.push_back(RubisScenario{
      "ViewUserInfo", "ViewUserInfo (feedback ratings of one user)",
      R"(
        DECLARE @rating INT;
        DECLARE @sum INT = 0;
        DECLARE @count INT = 0;
        DECLARE @avg FLOAT = 0.0;
        DECLARE c CURSOR FOR
          SELECT c_rating FROM comments WHERE c_to = {KEY};
        OPEN c;
        FETCH NEXT FROM c INTO @rating;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          SET @sum = @sum + @rating;
          SET @count = @count + 1;
          FETCH NEXT FROM c INTO @rating;
        END
        CLOSE c; DEALLOCATE c;
        IF (@count > 0)
          SET @avg = 1.0 * @sum / @count;
      )"});

  scenarios.push_back(RubisScenario{
      "SearchItemsByCategory", "SearchItemsByCategory (items in a category)",
      R"(
        DECLARE @price FLOAT;
        DECLARE @qty INT;
        DECLARE @available INT = 0;
        DECLARE @cheapest FLOAT = 1000000.0;
        DECLARE c CURSOR FOR
          SELECT i_initial_price, i_quantity FROM items
          WHERE i_category = {KEY};
        OPEN c;
        FETCH NEXT FROM c INTO @price, @qty;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          IF (@qty > 0)
          BEGIN
            SET @available = @available + 1;
            IF (@price < @cheapest)
              SET @cheapest = @price;
          END
          FETCH NEXT FROM c INTO @price, @qty;
        END
        CLOSE c; DEALLOCATE c;
      )"});

  scenarios.push_back(RubisScenario{
      "ViewItem", "ViewItem (bid summary for one item)",
      R"(
        DECLARE @bid FLOAT;
        DECLARE @qty INT;
        DECLARE @maxbid FLOAT = 0.0;
        DECLARE @demand INT = 0;
        DECLARE c CURSOR FOR
          SELECT b_bid, b_qty FROM bids WHERE b_item = {KEY}
          ORDER BY b_date;
        OPEN c;
        FETCH NEXT FROM c INTO @bid, @qty;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          IF (@bid > @maxbid)
            SET @maxbid = @bid;
          SET @demand = @demand + @qty;
          FETCH NEXT FROM c INTO @bid, @qty;
        END
        CLOSE c; DEALLOCATE c;
      )"});

  return scenarios;
}

}  // namespace

const std::vector<RubisScenario>& RubisScenarios() {
  static const std::vector<RubisScenario>* kScenarios =
      new std::vector<RubisScenario>(BuildScenarios());
  return *kScenarios;
}

std::string InstantiateRubisScenario(const RubisScenario& scenario,
                                     int64_t key) {
  std::string out = scenario.program_template;
  const std::string placeholder = "{KEY}";
  for (size_t pos = out.find(placeholder); pos != std::string::npos;
       pos = out.find(placeholder, pos)) {
    out.replace(pos, placeholder.size(), std::to_string(key));
  }
  return out;
}

}  // namespace aggify
