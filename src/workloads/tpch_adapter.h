// Adapts the TPC-H cursor workload descriptors to the harness's
// WorkloadQuery.
#pragma once

#include "tpch/cursor_workload.h"
#include "workloads/harness.h"

namespace aggify {

inline WorkloadQuery ToWorkloadQuery(const TpchCursorQuery& q) {
  WorkloadQuery w;
  w.id = q.id;
  w.udf_sql = q.udf_sql;
  w.udf_names = q.udf_names;
  w.driver_sql = q.driver_sql;
  w.froid_applicable = q.froid_applicable;
  return w;
}

}  // namespace aggify
