// Experiment harness: runs a cursor workload (UDFs + driver query) in the
// three configurations of the paper's evaluation and collects the metrics
// its tables and figures report.
//
//   kOriginal   — cursor loops interpreted row-by-row (the "curse")
//   kAggify     — loops replaced by synthesized custom aggregates (Eq. 5/6)
//   kAggifyPlus — additionally, Froid inlines the UDFs into the driver query
//                 and correlated subqueries are decorrelated (§8.2)
#pragma once

#include <string>

#include "aggify/rewriter.h"
#include "froid/froid.h"
#include "procedural/session.h"

namespace aggify {

enum class RunMode { kOriginal, kAggify, kAggifyPlus };

std::string RunModeName(RunMode mode);

struct RunMetrics {
  double seconds = 0;
  /// seconds + the CursorCostModel charge for cursor machinery (fetch
  /// dispatch, worktable pages) that the in-memory substrate undercosts.
  /// Zero extra for rewritten plans: they produce no such events.
  double modeled_seconds = 0;
  int64_t logical_reads = 0;          ///< base-table page reads
  int64_t worktable_pages_written = 0;
  int64_t worktable_pages_read = 0;
  int64_t cursor_fetches = 0;
  int64_t cursors_opened = 0;
  int64_t queries_executed = 0;
  QueryResult result;

  /// SQL Server-style total logical reads (Table 2's metric).
  int64_t TotalLogicalReads() const {
    return logical_reads + worktable_pages_read;
  }
};

/// \brief One benchmarkable workload unit: UDF definitions + a driver query.
struct WorkloadQuery {
  std::string id;
  std::string udf_sql;                 ///< CREATE FUNCTION statements
  std::vector<std::string> udf_names;  ///< functions to Aggify
  std::string driver_sql;
  bool froid_applicable = true;
};

/// \brief Runs `query` against `db` in the given mode and returns metrics.
///
/// The UDFs are (re-)registered from source before each run, so modes are
/// independent; rewrites performed for one run do not leak into the next.
/// Stats are reset before the measured region; data load I/O is excluded
/// (warm-cache methodology, §10.3.1).
Result<RunMetrics> RunWorkloadQuery(Database* db, const WorkloadQuery& query,
                                    RunMode mode);

/// \brief Verifies the three modes produce identical driver results
/// (ignoring row order). Returns the common row count. Errors:
/// ExecutionError on mismatch — used by integration tests and by benches in
/// --verify mode.
Result<int64_t> VerifyModesAgree(Database* db, const WorkloadQuery& query);

}  // namespace aggify
