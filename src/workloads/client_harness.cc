#include "workloads/client_harness.h"

#include "parser/parser.h"

namespace aggify {

Result<ClientComparison> CompareClientProgram(Database* db,
                                              const std::string& program_sql,
                                              NetworkModel model, bool verify) {
  ASSIGN_OR_RETURN(StmtPtr parsed, ParseStatements(program_sql));
  auto* block = static_cast<BlockStmt*>(parsed.get());

  ClientComparison out;
  {
    ClientApp app(db, model);
    ASSIGN_OR_RETURN(out.original, app.Run(*block));
  }

  // Rewrite a clone of the program.
  StmtPtr clone = block->Clone();
  auto* rewritten = static_cast<BlockStmt*>(clone.get());
  Aggify aggify(db);
  ASSIGN_OR_RETURN(out.report, aggify.RewriteBlock(rewritten));
  {
    ClientApp app(db, model);
    ASSIGN_OR_RETURN(out.aggified, app.Run(*rewritten));
  }

  if (verify) {
    for (const std::string& name : out.original.env->LocalNames()) {
      if (name.rfind("@@", 0) == 0) continue;
      ASSIGN_OR_RETURN(Value before, out.original.env->Get(name));
      // Variables can disappear only if the rewrite dropped dead
      // declarations; those were dead, so skip.
      if (!out.aggified.env->Has(name)) continue;
      ASSIGN_OR_RETURN(Value after, out.aggified.env->Get(name));
      // Fetch variables are dead after the loop by the applicability check,
      // but still exist with the last-fetched vs NULL value; only compare
      // variables whose original value the program could observe — i.e.
      // everything the rewrite kept assignments for. Conservatively compare
      // and report mismatches for non-null originals only when the rewritten
      // program has a non-null too; full equality for matching non-fetch
      // vars is enforced by the unit tests, here we flag hard mismatches.
      if (!before.StructurallyEquals(after) && !after.is_null()) {
        return Status::ExecutionError(
            "client program rewrite changed variable " + name + ": " +
            before.ToString() + " vs " + after.ToString());
      }
    }
  }
  return out;
}

}  // namespace aggify
