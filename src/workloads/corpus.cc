#include "workloads/corpus.h"

#include "aggify/rewriter.h"
#include "common/macros.h"
#include "common/random.h"
#include "parser/parser.h"
#include "procedural/session.h"

namespace aggify {

namespace {

/// A canonical Aggify-able cursor loop (running aggregate over a table).
std::string AggifyableLoop(int variant) {
  std::string t = "tbl" + std::to_string(variant % 7);
  switch (variant % 3) {
    case 0:
      return R"(
        DECLARE @x INT;
        DECLARE @s INT = 0;
        DECLARE c CURSOR FOR SELECT v FROM )" + t + R"(;
        OPEN c;
        FETCH NEXT FROM c INTO @x;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          SET @s = @s + @x;
          FETCH NEXT FROM c INTO @x;
        END
        CLOSE c; DEALLOCATE c;
      )";
    case 1:
      return R"(
        DECLARE @x INT;
        DECLARE @mx INT = 0;
        DECLARE c CURSOR FOR SELECT v FROM )" + t + R"( WHERE v > 0;
        OPEN c;
        FETCH NEXT FROM c INTO @x;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          IF (@x > @mx)
            SET @mx = @x;
          FETCH NEXT FROM c INTO @x;
        END
        CLOSE c; DEALLOCATE c;
      )";
    default:
      return R"(
        DECLARE @x INT;
        DECLARE @n INT = 0;
        DECLARE @avg FLOAT = 0.0;
        DECLARE @sum FLOAT = 0.0;
        DECLARE c CURSOR FOR SELECT v FROM )" + t + R"( ORDER BY v;
        OPEN c;
        FETCH NEXT FROM c INTO @x;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          SET @n = @n + 1;
          SET @sum = @sum + @x;
          FETCH NEXT FROM c INTO @x;
        END
        CLOSE c; DEALLOCATE c;
        IF (@n > 0)
          SET @avg = @sum / @n;
      )";
  }
}

/// An Aggify-able loop whose Merge only the homomorphism-calculus synthesis
/// pass derives (the fold classifier's algebra rejects each of these
/// shapes): affine update arrangements, products, guarded sums through
/// branch-scoped scratch, and in-loop derived averages.
std::string SynthesizedMergeLoop(int variant) {
  std::string t = "tbl" + std::to_string(variant % 7);
  switch (variant % 4) {
    case 0:  // affine arrangement: row term left of the accumulator
      return R"(
        DECLARE @x INT;
        DECLARE @s INT = 0;
        DECLARE c CURSOR FOR SELECT v FROM )" + t + R"(;
        OPEN c;
        FETCH NEXT FROM c INTO @x;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          SET @s = @x + @s + 1;
          FETCH NEXT FROM c INTO @x;
        END
        CLOSE c; DEALLOCATE c;
      )";
    case 1:  // multiplicative fold (factor-image + zero-count merge)
      return R"(
        DECLARE @x INT;
        DECLARE @p INT = 1;
        DECLARE c CURSOR FOR SELECT v FROM )" + t + R"( WHERE v <> 0;
        OPEN c;
        FETCH NEXT FROM c INTO @x;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          SET @p = @p * @x;
          FETCH NEXT FROM c INTO @x;
        END
        CLOSE c; DEALLOCATE c;
      )";
    case 2:  // conditional sum through branch-scoped scratch
      return R"(
        DECLARE @x INT;
        DECLARE @s INT = 0;
        DECLARE c CURSOR FOR SELECT v FROM )" + t + R"(;
        OPEN c;
        FETCH NEXT FROM c INTO @x;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          IF (@x > 2)
          BEGIN
            DECLARE @d INT;
            SET @d = @x * 2;
            SET @s = @s + @d;
          END
          FETCH NEXT FROM c INTO @x;
        END
        CLOSE c; DEALLOCATE c;
      )";
    default:  // sum + count with the average derived inside the loop
      return R"(
        DECLARE @x INT;
        DECLARE @n INT = 0;
        DECLARE @sum INT = 0;
        DECLARE @avg INT = 0;
        DECLARE c CURSOR FOR SELECT v FROM )" + t + R"(;
        OPEN c;
        FETCH NEXT FROM c INTO @x;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          SET @sum = @sum + @x;
          SET @n = @n + 1;
          SET @avg = @sum / @n;
          FETCH NEXT FROM c INTO @x;
        END
        CLOSE c; DEALLOCATE c;
      )";
  }
}

/// A cursor loop Aggify must refuse even with DML-body recovery enabled:
/// the body inserts into the very table the cursor scans, so the
/// table-effect analysis cannot prove read/write disjointness
/// (self-read-after-write, AGG404 behind the AGG104 skip).
std::string NonAggifyableLoop(int variant) {
  std::string t = "tbl" + std::to_string(variant % 7);
  return R"(
    DECLARE @x INT;
    DECLARE c CURSOR FOR SELECT v FROM )" + t + R"(;
    OPEN c;
    FETCH NEXT FROM c INTO @x;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      INSERT INTO )" + t + R"( VALUES (@x);
      FETCH NEXT FROM c INTO @x;
    END
    CLOSE c; DEALLOCATE c;
  )";
}

/// Family (a) of the table-effect recovery: a persistent append-only
/// INSERT body over a table disjoint from the cursor's read set, which
/// collapses into one INSERT ... SELECT (AGG401).
std::string DmlInsertLoop(int variant) {
  std::string t = "tbl" + std::to_string(variant % 7);
  return R"(
    DECLARE @x INT;
    DECLARE c CURSOR FOR SELECT v FROM )" + t + R"( ORDER BY v;
    OPEN c;
    FETCH NEXT FROM c INTO @x;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      INSERT INTO event_log VALUES (@x * 2);
      FETCH NEXT FROM c INTO @x;
    END
    CLOSE c; DEALLOCATE c;
  )";
}

/// Family (b): a key-equality accumulating UPDATE folded into one
/// set-oriented UPDATE (AGG402). Needs `acct_bal` in the scratch catalog
/// so the integer-accumulator certificate can be checked.
std::string DmlUpdateLoop(int variant) {
  std::string t = "tbl" + std::to_string(variant % 7);
  return R"(
    DECLARE @k INT;
    DECLARE c CURSOR FOR SELECT v FROM )" + t + R"(;
    OPEN c;
    FETCH NEXT FROM c INTO @k;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      UPDATE acct_bal SET bal = bal + @k WHERE acct = @k;
      FETCH NEXT FROM c INTO @k;
    END
    CLOSE c; DEALLOCATE c;
  )";
}

/// A counted BREAK loop: the monotone-counter proof attaches a TOP-N
/// prefix bound to the derived cursor query (AGG403) and the loop still
/// rewrites as a scalar fold.
std::string EarlyExitLoop(int variant) {
  std::string t = "tbl" + std::to_string(variant % 7);
  return R"(
    DECLARE @x INT;
    DECLARE @s INT = 0;
    DECLARE @n INT = 0;
    DECLARE c CURSOR FOR SELECT v FROM )" + t + R"( ORDER BY v DESC;
    OPEN c;
    FETCH NEXT FROM c INTO @x;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      SET @s = @s + @x;
      SET @n = @n + 1;
      IF @n >= 5
        BREAK;
      FETCH NEXT FROM c INTO @x;
    END
    CLOSE c; DEALLOCATE c;
  )";
}

/// A plain (non-cursor) WHILE loop.
std::string PlainLoop(int variant) {
  return R"(
    DECLARE @i INT = 0;
    DECLARE @acc INT = )" + std::to_string(variant) + R"(;
    WHILE @i < 10
    BEGIN
      SET @acc = @acc + @i * )" + std::to_string(1 + variant % 3) + R"(;
      SET @i = @i + 1;
    END
  )";
}

Corpus BuildCorpus(const std::string& name, int aggifyable_cursor,
                   int synthesized_cursor, int dml_insert, int dml_update,
                   int early_exit, int other_cursor, int plain) {
  Corpus corpus;
  corpus.name = name;
  int v = 0;
  for (int i = 0; i < aggifyable_cursor; ++i) {
    corpus.programs.push_back(AggifyableLoop(v++));
  }
  for (int i = 0; i < synthesized_cursor; ++i) {
    corpus.programs.push_back(SynthesizedMergeLoop(v++));
  }
  for (int i = 0; i < dml_insert; ++i) {
    corpus.programs.push_back(DmlInsertLoop(v++));
  }
  for (int i = 0; i < dml_update; ++i) {
    corpus.programs.push_back(DmlUpdateLoop(v++));
  }
  for (int i = 0; i < early_exit; ++i) {
    corpus.programs.push_back(EarlyExitLoop(v++));
  }
  for (int i = 0; i < other_cursor; ++i) {
    corpus.programs.push_back(NonAggifyableLoop(v++));
  }
  for (int i = 0; i < plain; ++i) {
    corpus.programs.push_back(PlainLoop(v++));
  }
  return corpus;
}

int CountWhileLoops(const Stmt& stmt) {
  int count = 0;
  switch (stmt.kind) {
    case StmtKind::kWhile: {
      const auto& w = static_cast<const WhileStmt&>(stmt);
      count = 1 + CountWhileLoops(*w.body);
      break;
    }
    case StmtKind::kBlock:
      for (const auto& s : static_cast<const BlockStmt&>(stmt).statements) {
        count += CountWhileLoops(*s);
      }
      break;
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(stmt);
      count += CountWhileLoops(*i.then_branch);
      if (i.else_branch != nullptr) count += CountWhileLoops(*i.else_branch);
      break;
    }
    case StmtKind::kFor:
      count += CountWhileLoops(*static_cast<const ForStmt&>(stmt).body);
      break;
    case StmtKind::kTryCatch: {
      const auto& tc = static_cast<const TryCatchStmt&>(stmt);
      count += CountWhileLoops(*tc.try_block);
      count += CountWhileLoops(*tc.catch_block);
      break;
    }
    default:
      break;
  }
  return count;
}

}  // namespace

const std::vector<Corpus>& ApplicabilityCorpora() {
  // Proportions from Table 1:
  //   RUBiS     16 while loops, 14 cursor loops, all 14 Aggify-able
  //   RUBBoS    41 while loops, 14 cursor loops, all 14 Aggify-able
  //   Adempiere 127 while loops, 109 cursor loops, >80 Aggify-able (96 here)
  // Within each Aggify-able count, slices exercise shapes only a specific
  // pass admits — Merges the homomorphism calculus synthesizes, persistent
  // DML bodies the table-effect analysis recovers (families a/b), and
  // counted BREAK loops the early-exit proof bounds — so a regression in
  // any one pass shifts the Table 1 totals. The 13 refused Adempiere loops
  // insert into their own scan table (self-read, unrecoverable by design).
  static const std::vector<Corpus>* kCorpora = new std::vector<Corpus>{
      BuildCorpus("RUBiS", 10, 2, 1, 0, 1, 0, 2),
      BuildCorpus("RUBBoS", 10, 2, 0, 1, 1, 0, 27),
      BuildCorpus("Adempiere", 82, 8, 2, 2, 2, 13, 18),
  };
  return *kCorpora;
}

Result<CorpusStats> AnalyzeCorpus(const Corpus& corpus) {
  CorpusStats stats;
  int program_no = 0;
  for (const std::string& program : corpus.programs) {
    ++program_no;
    ASSIGN_OR_RETURN(StmtPtr parsed, ParseStatements(program));
    auto* block = static_cast<BlockStmt*>(parsed.get());
    stats.total_while_loops += CountWhileLoops(*block);
    // Run the real rewriter against a scratch database: loops_found counts
    // cursor loops, loops_rewritten counts the Aggify-able ones. The small
    // shared schema must exist for the table-effect certificates (family b
    // checks the accumulator column's type against the catalog).
    Database scratch;
    Session ddl(&scratch);
    for (int i = 0; i < 7; ++i) {
      RETURN_NOT_OK(
          ddl.RunSql("CREATE TABLE tbl" + std::to_string(i) + " (v INT);")
              .status());
    }
    RETURN_NOT_OK(ddl.RunSql("CREATE TABLE event_log (v INT);").status());
    RETURN_NOT_OK(
        ddl.RunSql("CREATE TABLE acct_bal (acct INT, bal INT);").status());
    Aggify aggify(&scratch);
    ASSIGN_OR_RETURN(AggifyReport report, aggify.RewriteBlock(block));
    stats.cursor_loops += report.loops_found;
    stats.aggifyable += report.loops_rewritten;
    // Eligibility ladder: how each rewritten loop earned (or missed) its
    // Merge. The buckets are mutually exclusive and cover `aggifyable`.
    for (const LoopRewrite& rw : report.rewrites) {
      if (rw.merge_synthesized) {
        ++stats.merge_synthesized;
      } else if (rw.merge_supported || rw.lowered_to_builtin) {
        ++stats.recognized_fold;
      } else {
        ++stats.serial_only;
      }
      if (rw.family == RewriteFamily::kDmlInsert) ++stats.dml_insert_recovered;
      if (rw.family == RewriteFamily::kDmlUpdate) ++stats.dml_update_recovered;
      if (rw.early_exit_bounded) ++stats.early_exit_bounded;
    }
    std::string at = corpus.name + "/program" + std::to_string(program_no);
    for (Diagnostic d : report.skipped) {
      ++stats.skip_codes[d.code];
      d.loc = at + ":" + d.loc;
      stats.diagnostics.push_back(std::move(d));
    }
    for (Diagnostic d : report.notes) {
      d.loc = at + ":" + d.loc;
      stats.diagnostics.push_back(std::move(d));
    }
  }
  return stats;
}

int64_t SimulateAzureCensus(int64_t num_databases, uint64_t seed) {
  // Per-database UDF-cursor counts drawn uniform in [1, 26] (mean 13.5,
  // matching the paper's 77,294 cursors over 5,720 databases).
  Random rng(seed);
  int64_t total = 0;
  for (int64_t i = 0; i < num_databases; ++i) {
    total += rng.UniformRange(1, 26);
  }
  return total;
}

}  // namespace aggify
