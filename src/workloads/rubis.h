// RUBiS-analogue workload (Fig. 9(b)): an auction-site schema and five
// client programs containing the cursor loops the paper measured. The
// original RUBiS servlets iterate over JDBC result sets; these programs do
// the same over the simulated network.
#pragma once

#include "common/random.h"
#include "storage/catalog.h"

namespace aggify {

struct RubisConfig {
  int64_t num_users = 200;
  int64_t items_per_user = 5;
  int64_t bids_per_item = 20;
  int64_t comments_per_user = 8;
  uint64_t seed = 7;
};

/// Creates and fills users / items / bids / comments.
Status PopulateRubis(Database* db, const RubisConfig& config = {});

/// \brief One Fig. 9(b) scenario: a client program template with a `{KEY}`
/// placeholder for the entity id and a human label including the typical
/// iteration count (as the paper annotates its x-axis).
struct RubisScenario {
  std::string id;
  std::string label;
  std::string program_template;
};

const std::vector<RubisScenario>& RubisScenarios();

/// Substitutes `{KEY}` in the template.
std::string InstantiateRubisScenario(const RubisScenario& scenario,
                                     int64_t key);

}  // namespace aggify
