#include "workloads/real_workloads.h"

#include "common/random.h"
#include "types/value.h"

namespace aggify {

Status PopulateRealWorkloads(Database* db, const RealWorkloadConfig& config) {
  Catalog& catalog = db->catalog();
  Random rng(config.seed);
  IoStats* no_stats = nullptr;

  // ---- W1: CRM ----
  const int64_t num_accounts = std::max<int64_t>(10, config.base_rows / 10);
  const int64_t num_interactions = config.base_rows * 2;
  const int64_t num_opportunities = config.base_rows / 2;
  ASSIGN_OR_RETURN(Table * accounts,
                   catalog.CreateTable(
                       "accounts", Schema({Column("a_id", DataType::Int()),
                                           Column("a_region", DataType::Int()),
                                           Column("a_tier", DataType::Int())})));
  for (int64_t a = 1; a <= num_accounts; ++a) {
    RETURN_NOT_OK(accounts->Insert({Value::Int(a),
                                    Value::Int(rng.UniformRange(1, 8)),
                                    Value::Int(rng.UniformRange(1, 3))},
                                   no_stats));
  }
  ASSIGN_OR_RETURN(
      Table * interactions,
      catalog.CreateTable(
          "interactions", Schema({Column("x_account", DataType::Int()),
                                  Column("x_kind", DataType::Int()),
                                  Column("x_score", DataType::Double())})));
  for (int64_t i = 0; i < num_interactions; ++i) {
    RETURN_NOT_OK(interactions->Insert(
        {Value::Int(rng.UniformRange(1, num_accounts)),
         Value::Int(rng.UniformRange(1, 4)),
         Value::Double(static_cast<double>(rng.UniformRange(1, 1000)) / 10.0)},
        no_stats));
  }
  RETURN_NOT_OK(interactions->CreateIndex("idx_x_account", "x_account"));
  ASSIGN_OR_RETURN(
      Table * opportunities,
      catalog.CreateTable(
          "opportunities", Schema({Column("o_account", DataType::Int()),
                                   Column("o_stage", DataType::Int()),
                                   Column("o_value", DataType::Double())})));
  for (int64_t i = 0; i < num_opportunities; ++i) {
    RETURN_NOT_OK(opportunities->Insert(
        {Value::Int(rng.UniformRange(1, num_accounts)),
         Value::Int(rng.UniformRange(1, 6)),
         Value::Double(static_cast<double>(rng.UniformRange(100, 500000)) /
                       100.0)},
        no_stats));
  }

  // ---- W2: configuration management ----
  const int64_t num_hosts = 30;
  const int64_t settings_per_host = 40;
  ASSIGN_OR_RETURN(Table * hosts,
                   catalog.CreateTable(
                       "hosts", Schema({Column("h_id", DataType::Int()),
                                        Column("h_env", DataType::String(8))})));
  ASSIGN_OR_RETURN(
      Table * settings,
      catalog.CreateTable(
          "settings", Schema({Column("s_host", DataType::Int()),
                              Column("s_key", DataType::String(16)),
                              Column("s_value", DataType::Int()),
                              Column("s_critical", DataType::Int())})));
  for (int64_t h = 1; h <= num_hosts; ++h) {
    RETURN_NOT_OK(hosts->Insert(
        {Value::Int(h), Value::String(h % 3 == 0 ? "prod" : "dev")},
        no_stats));
    for (int64_t s = 0; s < settings_per_host; ++s) {
      RETURN_NOT_OK(settings->Insert(
          {Value::Int(h), Value::String("key" + std::to_string(s)),
           Value::Int(rng.UniformRange(0, 100)),
           Value::Int(rng.OneIn(5) ? 1 : 0)},
          no_stats));
    }
  }
  RETURN_NOT_OK(settings->CreateIndex("idx_s_host", "s_host"));

  // ---- W3: transportation services ----
  const int64_t num_routes = std::max<int64_t>(5, config.base_rows / 20);
  const int64_t legs_per_route = 30;
  ASSIGN_OR_RETURN(Table * routes,
                   catalog.CreateTable(
                       "routes", Schema({Column("r_id", DataType::Int()),
                                         Column("r_vehicle", DataType::Int())})));
  ASSIGN_OR_RETURN(
      Table * legs,
      catalog.CreateTable(
          "legs", Schema({Column("l_route", DataType::Int()),
                          Column("l_seq", DataType::Int()),
                          Column("l_distance", DataType::Double()),
                          Column("l_toll", DataType::Double()),
                          Column("l_urban", DataType::Int())})));
  ASSIGN_OR_RETURN(
      Table * fares,
      catalog.CreateTable(
          "fares", Schema({Column("f_route", DataType::Int()),
                           Column("f_passengers", DataType::Int()),
                           Column("f_base", DataType::Double())})));
  for (int64_t r = 1; r <= num_routes; ++r) {
    RETURN_NOT_OK(routes->Insert(
        {Value::Int(r), Value::Int(rng.UniformRange(1, 50))}, no_stats));
    for (int64_t s = 1; s <= legs_per_route; ++s) {
      RETURN_NOT_OK(legs->Insert(
          {Value::Int(r), Value::Int(s),
           Value::Double(static_cast<double>(rng.UniformRange(5, 300)) / 10.0),
           Value::Double(static_cast<double>(rng.UniformRange(0, 80)) / 10.0),
           Value::Int(rng.OneIn(3) ? 1 : 0)},
          no_stats));
    }
    for (int64_t f = 0; f < 4; ++f) {
      RETURN_NOT_OK(fares->Insert(
          {Value::Int(r), Value::Int(rng.UniformRange(1, 6)),
           Value::Double(static_cast<double>(rng.UniformRange(500, 5000)) /
                         100.0)},
          no_stats));
    }
  }
  RETURN_NOT_OK(legs->CreateIndex("idx_l_route", "l_route"));
  return Status::OK();
}

WorkloadQuery MakeL1Query(int64_t iterations) {
  WorkloadQuery q;
  q.id = "L1";
  q.udf_names = {"w1_engagement_score"};
  q.udf_sql = R"(
    CREATE FUNCTION w1_engagement_score(@n INT) RETURNS FLOAT AS
    BEGIN
      DECLARE @kind INT;
      DECLARE @s FLOAT;
      DECLARE @score FLOAT = 0.0;
      DECLARE c CURSOR FOR
        SELECT TOP (@n) x_kind, x_score FROM interactions;
      OPEN c;
      FETCH NEXT FROM c INTO @kind, @s;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        IF (@kind = 1)
          SET @score = @score + @s * 3.0;
        ELSE IF (@kind = 2)
          SET @score = @score + @s * 2.0;
        ELSE
          SET @score = @score + @s;
        FETCH NEXT FROM c INTO @kind, @s;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @score;
    END
  )";
  q.driver_sql = "SELECT w1_engagement_score(" + std::to_string(iterations) +
                 ") AS score";
  return q;
}

namespace {

std::vector<RealLoop> BuildLoops() {
  std::vector<RealLoop> loops;

  // L1 (W1): weighted engagement score over the interactions log.
  {
    RealLoop l;
    l.workload = "W1";
    l.label = "L1 (4000)";
    l.query = MakeL1Query(4000);
    loops.push_back(std::move(l));
  }

  // L2 (W2): few tuples, temp-table DML inside the loop (small gains, §10.3.3).
  {
    RealLoop l;
    l.workload = "W2";
    l.label = "L2 (40)";
    l.query.id = "L2";
    l.query.udf_names = {"w2_critical_settings"};
    l.query.udf_sql = R"(
      CREATE FUNCTION w2_critical_settings(@host INT) RETURNS INT AS
      BEGIN
        DECLARE @key VARCHAR(16);
        DECLARE @val INT;
        DECLARE @crit INT;
        DECLARE @t TABLE (k VARCHAR(16), v INT);
        DECLARE c CURSOR FOR
          SELECT s_key, s_value, s_critical FROM settings WHERE s_host = @host;
        OPEN c;
        FETCH NEXT FROM c INTO @key, @val, @crit;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          IF (@crit = 1)
            INSERT INTO @t VALUES (@key, @val);
          FETCH NEXT FROM c INTO @key, @val, @crit;
        END
        CLOSE c; DEALLOCATE c;
        RETURN (SELECT COUNT(*) FROM @t);
      END
    )";
    l.query.driver_sql =
        "SELECT h_id, w2_critical_settings(h_id) AS crit FROM hosts";
    loops.push_back(std::move(l));
  }

  // L3 (W1): pipeline summary — three live accumulators (Record V_term).
  {
    RealLoop l;
    l.workload = "W1";
    l.label = "L3 (1000)";
    l.query.id = "L3";
    l.query.udf_names = {"w1_pipeline_value"};
    l.query.froid_applicable = false;  // multi-variable V_term
    l.query.udf_sql = R"(
      CREATE FUNCTION w1_pipeline_value(@minstage INT) RETURNS FLOAT AS
      BEGIN
        DECLARE @stage INT;
        DECLARE @value FLOAT;
        DECLARE @total FLOAT = 0.0;
        DECLARE @qualified INT = 0;
        DECLARE @biggest FLOAT = 0.0;
        DECLARE c CURSOR FOR SELECT o_stage, o_value FROM opportunities;
        OPEN c;
        FETCH NEXT FROM c INTO @stage, @value;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          IF (@stage >= @minstage)
          BEGIN
            SET @total = @total + @value;
            SET @qualified = @qualified + 1;
            IF (@value > @biggest)
              SET @biggest = @value;
          END
          FETCH NEXT FROM c INTO @stage, @value;
        END
        CLOSE c; DEALLOCATE c;
        IF (@qualified = 0)
          RETURN 0.0;
        RETURN @total + @biggest / @qualified;
      END
    )";
    l.query.driver_sql = "SELECT w1_pipeline_value(3) AS pipeline";
    loops.push_back(std::move(l));
  }

  // L4 (W3): per-route distance/toll accumulation, invoked per route.
  {
    RealLoop l;
    l.workload = "W3";
    l.label = "L4 (30/route)";
    l.query.id = "L4";
    l.query.udf_names = {"w3_route_cost"};
    l.query.froid_applicable = false;  // multi-variable V_term
    l.query.udf_sql = R"(
      CREATE FUNCTION w3_route_cost(@route INT) RETURNS FLOAT AS
      BEGIN
        DECLARE @dist FLOAT;
        DECLARE @toll FLOAT;
        DECLARE @urban INT;
        DECLARE @cost FLOAT = 0.0;
        DECLARE @urban_km FLOAT = 0.0;
        DECLARE c CURSOR FOR
          SELECT l_distance, l_toll, l_urban FROM legs WHERE l_route = @route;
        OPEN c;
        FETCH NEXT FROM c INTO @dist, @toll, @urban;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          SET @cost = @cost + @dist * 0.6 + @toll;
          IF (@urban = 1)
            SET @urban_km = @urban_km + @dist;
          FETCH NEXT FROM c INTO @dist, @toll, @urban;
        END
        CLOSE c; DEALLOCATE c;
        RETURN @cost + @urban_km * 0.1;
      END
    )";
    l.query.driver_sql = "SELECT r_id, w3_route_cost(r_id) AS cost FROM routes";
    loops.push_back(std::move(l));
  }

  // L5 (W3): fare revenue with passenger surcharge, one big loop.
  {
    RealLoop l;
    l.workload = "W3";
    l.label = "L5 (fares)";
    l.query.id = "L5";
    l.query.udf_names = {"w3_fare_revenue"};
    l.query.udf_sql = R"(
      CREATE FUNCTION w3_fare_revenue() RETURNS FLOAT AS
      BEGIN
        DECLARE @pax INT;
        DECLARE @base FLOAT;
        DECLARE @rev FLOAT = 0.0;
        DECLARE c CURSOR FOR SELECT f_passengers, f_base FROM fares;
        OPEN c;
        FETCH NEXT FROM c INTO @pax, @base;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          IF (@pax > 3)
            SET @rev = @rev + @base * @pax * 1.15;
          ELSE
            SET @rev = @rev + @base * @pax;
          FETCH NEXT FROM c INTO @pax, @base;
        END
        CLOSE c; DEALLOCATE c;
        RETURN @rev;
      END
    )";
    l.query.driver_sql = "SELECT w3_fare_revenue() AS revenue";
    loops.push_back(std::move(l));
  }

  // L6 (W2): few tuples + nested per-row query + temp-table DML.
  {
    RealLoop l;
    l.workload = "W2";
    l.label = "L6 (30)";
    l.query.id = "L6";
    l.query.udf_names = {"w2_env_report"};
    l.query.udf_sql = R"(
      CREATE FUNCTION w2_env_report(@env VARCHAR(8)) RETURNS INT AS
      BEGIN
        DECLARE @host INT;
        DECLARE @t TABLE (host INT, crit INT);
        DECLARE c CURSOR FOR SELECT h_id FROM hosts WHERE h_env = @env;
        OPEN c;
        FETCH NEXT FROM c INTO @host;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          DECLARE @crit INT;
          SET @crit = (SELECT COUNT(*) FROM settings
                       WHERE s_host = @host AND s_critical = 1);
          INSERT INTO @t VALUES (@host, @crit);
          FETCH NEXT FROM c INTO @host;
        END
        CLOSE c; DEALLOCATE c;
        RETURN (SELECT SUM(crit) FROM @t);
      END
    )";
    l.query.driver_sql = "SELECT w2_env_report('prod') AS crit_total";
    loops.push_back(std::move(l));
  }

  // L7 (W1): ORDER BY cursor with BREAK after the first row (argmax).
  {
    RealLoop l;
    l.workload = "W1";
    l.label = "L7 (1000, ordered)";
    l.query.id = "L7";
    l.query.udf_names = {"w1_best_opportunity"};
    l.query.udf_sql = R"(
      CREATE FUNCTION w1_best_opportunity() RETURNS INT AS
      BEGIN
        DECLARE @acct INT;
        DECLARE @value FLOAT;
        DECLARE @best INT = 0;
        DECLARE c CURSOR FOR
          SELECT o_account, o_value FROM opportunities ORDER BY o_value DESC;
        OPEN c;
        FETCH NEXT FROM c INTO @acct, @value;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          SET @best = @acct;
          BREAK;
          FETCH NEXT FROM c INTO @acct, @value;
        END
        CLOSE c; DEALLOCATE c;
        RETURN @best;
      END
    )";
    l.query.driver_sql = "SELECT w1_best_opportunity() AS best_account";
    loops.push_back(std::move(l));
  }

  // L8 (W2): nested cursor loops (outer hosts, inner settings).
  {
    RealLoop l;
    l.workload = "W2";
    l.label = "L8 (30 x 40, nested)";
    l.nested = true;
    l.query.id = "L8";
    l.query.udf_names = {"w2_total_config_value"};
    l.query.udf_sql = R"(
      CREATE FUNCTION w2_total_config_value(@env VARCHAR(8)) RETURNS INT AS
      BEGIN
        DECLARE @host INT;
        DECLARE @grand INT = 0;
        DECLARE hc CURSOR FOR SELECT h_id FROM hosts WHERE h_env = @env;
        OPEN hc;
        FETCH NEXT FROM hc INTO @host;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          DECLARE @val INT;
          DECLARE @hostsum INT = 0;
          DECLARE sc CURSOR FOR SELECT s_value FROM settings
                                WHERE s_host = @host;
          OPEN sc;
          FETCH NEXT FROM sc INTO @val;
          WHILE @@FETCH_STATUS = 0
          BEGIN
            SET @hostsum = @hostsum + @val;
            FETCH NEXT FROM sc INTO @val;
          END
          CLOSE sc; DEALLOCATE sc;
          SET @grand = @grand + @hostsum;
          FETCH NEXT FROM hc INTO @host;
        END
        CLOSE hc; DEALLOCATE hc;
        RETURN @grand;
      END
    )";
    l.query.driver_sql = "SELECT w2_total_config_value('dev') AS total";
    loops.push_back(std::move(l));
  }

  return loops;
}

}  // namespace

const std::vector<RealLoop>& RealWorkloadLoops() {
  static const std::vector<RealLoop>* kLoops =
      new std::vector<RealLoop>(BuildLoops());
  return *kLoops;
}

}  // namespace aggify
