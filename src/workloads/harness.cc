#include "workloads/harness.h"

#include <algorithm>
#include <chrono>

namespace aggify {

std::string RunModeName(RunMode mode) {
  switch (mode) {
    case RunMode::kOriginal: return "Original";
    case RunMode::kAggify: return "Aggify";
    case RunMode::kAggifyPlus: return "Aggify+";
  }
  return "?";
}

Result<RunMetrics> RunWorkloadQuery(Database* db, const WorkloadQuery& query,
                                    RunMode mode) {
  Session session(db);
  // Fresh UDF definitions so a previous mode's rewrite doesn't leak in.
  RETURN_NOT_OK(session.RunSql(query.udf_sql).status());

  if (mode != RunMode::kOriginal) {
    Aggify aggify(db);
    for (const auto& name : query.udf_names) {
      RETURN_NOT_OK(aggify.RewriteFunction(name).status());
    }
  }

  ASSIGN_OR_RETURN(auto driver, ParseSelect(query.driver_sql));
  if (mode == RunMode::kAggifyPlus && query.froid_applicable) {
    Froid froid(db);
    RETURN_NOT_OK(froid.RewriteQuery(driver.get()).status());
  }

  ExecContext ctx = session.MakeContext();
  VariableEnv env;
  ctx.set_vars(&env);

  db->stats().Reset();
  auto start = std::chrono::steady_clock::now();
  ASSIGN_OR_RETURN(QueryResult result, session.engine().Execute(*driver, ctx));
  auto end = std::chrono::steady_clock::now();

  RunMetrics metrics;
  metrics.seconds = std::chrono::duration<double>(end - start).count();
  const IoStats& stats = db->stats();
  metrics.modeled_seconds = metrics.seconds + CursorCostModel{}.Seconds(stats);
  metrics.logical_reads = stats.logical_reads;
  metrics.worktable_pages_written = stats.worktable_pages_written;
  metrics.worktable_pages_read = stats.worktable_pages_read;
  metrics.cursor_fetches = stats.cursor_fetches;
  metrics.cursors_opened = stats.cursors_opened;
  metrics.queries_executed = stats.queries_executed;
  metrics.result = std::move(result);
  return metrics;
}

namespace {

/// Order-insensitive row-multiset comparison.
bool ResultsEqual(const QueryResult& a, const QueryResult& b) {
  if (a.rows.size() != b.rows.size()) return false;
  auto key = [](const Row& r) {
    std::string s;
    for (const Value& v : r) {
      s += v.ToString();
      s += '\x01';
    }
    return s;
  };
  std::vector<std::string> ka, kb;
  for (const Row& r : a.rows) ka.push_back(key(r));
  for (const Row& r : b.rows) kb.push_back(key(r));
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  return ka == kb;
}

}  // namespace

Result<int64_t> VerifyModesAgree(Database* db, const WorkloadQuery& query) {
  ASSIGN_OR_RETURN(RunMetrics original,
                   RunWorkloadQuery(db, query, RunMode::kOriginal));
  ASSIGN_OR_RETURN(RunMetrics aggify,
                   RunWorkloadQuery(db, query, RunMode::kAggify));
  ASSIGN_OR_RETURN(RunMetrics plus,
                   RunWorkloadQuery(db, query, RunMode::kAggifyPlus));
  if (!ResultsEqual(original.result, aggify.result)) {
    return Status::ExecutionError(query.id +
                                  ": Aggify results differ from original");
  }
  if (!ResultsEqual(original.result, plus.result)) {
    return Status::ExecutionError(query.id +
                                  ": Aggify+ results differ from original");
  }
  return static_cast<int64_t>(original.result.rows.size());
}

}  // namespace aggify
