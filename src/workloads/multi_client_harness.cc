#include "workloads/multi_client_harness.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/random.h"

namespace aggify {

namespace {

/// How many "ROW" lines a reply carries.
int64_t CountRows(const std::string& reply) {
  int64_t rows = 0;
  size_t pos = 0;
  while (pos < reply.size()) {
    if (reply.compare(pos, 4, "ROW\t") == 0 ||
        reply.compare(pos, 4, "ROW\n") == 0) {
      ++rows;
    }
    pos = reply.find('\n', pos);
    if (pos == std::string::npos) break;
    ++pos;
  }
  return rows;
}

bool IsErr(const std::string& reply) { return reply.compare(0, 4, "ERR ") == 0; }

/// One client's view of the wire: seeded drop draws, retry with simulated
/// backoff, byte/row accounting. Mirrors RemoteInterpreter's discipline.
class Wire {
 public:
  Wire(Server* server, const NetworkModel& model, const RetryPolicy& retry,
       uint64_t client_salt, MultiClientReport* report)
      : server_(server),
        model_(model.Clamped()),
        retry_(retry),
        fault_rng_(model_.fault_seed ^ client_salt),
        jitter_rng_(retry_.jitter_seed ^ client_salt),
        report_(report) {
    if (retry_.max_attempts < 1) retry_.max_attempts = 1;
  }

  /// Sends one request, retrying dropped sends. Empty optional-style
  /// return: an empty string means the retry budget is exhausted (the
  /// conversation is abandoned and counted as undelivered).
  std::string Send(const std::string& request) {
    NetworkStats& net = report_->network;
    for (int attempt = 0; attempt < retry_.max_attempts; ++attempt) {
      if (attempt > 0) {
        ++net.retries;
        net.backoff_ms += JitteredBackoffMs(RawBackoffMs(retry_, attempt),
                                            jitter_rng_.NextDouble());
      }
      ++report_->requests;
      ++net.round_trips;
      ++net.statements_sent;
      net.bytes_to_server +=
          static_cast<int64_t>(request.size()) + model_.per_message_bytes;
      if (model_.drop_probability > 0.0 &&
          fault_rng_.NextDouble() < model_.drop_probability) {
        // Lost in flight: the server never saw it; re-send is idempotent.
        ++net.drops;
        ++net.timeouts;
        continue;
      }
      std::string reply = server_->Handle(request);
      net.bytes_to_client +=
          static_cast<int64_t>(reply.size()) + model_.per_message_bytes;
      int64_t rows = CountRows(reply);
      net.rows_transferred += rows;
      report_->rows_received += rows;
      if (IsErr(reply)) ++report_->errors;
      return reply;
    }
    ++report_->undelivered;
    return "";
  }

 private:
  Server* server_;
  NetworkModel model_;
  RetryPolicy retry_;
  Random fault_rng_;
  Random jitter_rng_;
  MultiClientReport* report_;
};

/// First line's second token ("OK 3" -> "3", "CURSOR 7" -> "7").
std::string SecondToken(const std::string& reply) {
  size_t sp = reply.find(' ');
  if (sp == std::string::npos) return "";
  size_t end = reply.find_first_of(" \n", sp + 1);
  return reply.substr(sp + 1, end - sp - 1);
}

}  // namespace

std::string MultiClientReport::ToString() const {
  return "clients=" + std::to_string(clients_completed) +
         " requests=" + std::to_string(requests) +
         " queries=" + std::to_string(queries_sent) +
         " cursors=" + std::to_string(cursors_opened) +
         " rows=" + std::to_string(rows_received) +
         " errors=" + std::to_string(errors) +
         " undelivered=" + std::to_string(undelivered) + " " +
         network.ToString();
}

MultiClientReport MultiClientHarness::RunClient(int client_index) {
  MultiClientReport report;
  uint64_t salt = config_.seed + 0x9E3779B9ull * (client_index + 1);
  Wire wire(server_, config_.network, config_.retry, salt, &report);
  Random pick(salt);

  std::string open = "OPEN";
  if (!config_.open_options.empty()) open += " " + config_.open_options;
  std::string reply = wire.Send(open);
  if (reply.empty() || IsErr(reply)) {
    report.clients_completed = 1;  // completed (by failing to connect)
    return report;
  }
  std::string sid = SecondToken(reply);

  for (int i = 0; i < config_.requests_per_client; ++i) {
    const std::string& sql =
        config_.statements[pick.Uniform(config_.statements.size())];
    bool use_cursor =
        config_.declare_every > 0 && i % config_.declare_every == 0;
    if (!use_cursor) {
      ++report.queries_sent;
      wire.Send("QUERY " + sid + " " + sql);
      continue;
    }
    reply = wire.Send("DECLARE " + sid + " " + sql);
    if (reply.empty() || IsErr(reply)) continue;
    ++report.cursors_opened;
    std::string cid = SecondToken(reply);
    std::string fetch = "FETCH " + sid + " " + cid + " " +
                        std::to_string(config_.fetch_rows);
    bool done = false;
    while (!done) {
      reply = wire.Send(fetch);
      if (reply.empty() || IsErr(reply)) {
        // A failed FETCH closed the cursor server-side (or the request
        // never arrived) — CLOSE to be sure, ignoring "no such cursor".
        wire.Send("CLOSE " + sid + " " + cid);
        break;
      }
      done = reply.find("DONE ") != std::string::npos;
    }
  }

  wire.Send("CLOSE " + sid);
  report.clients_completed = 1;
  return report;
}

Result<MultiClientReport> MultiClientHarness::Run() {
  if (config_.clients < 1) {
    return Status::InvalidArgument("clients must be >= 1");
  }
  if (config_.statements.empty()) {
    return Status::InvalidArgument("statement pool is empty");
  }

  std::vector<MultiClientReport> reports(config_.clients);
  auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(config_.clients);
    for (int c = 0; c < config_.clients; ++c) {
      threads.emplace_back(
          [this, c, &reports] { reports[c] = RunClient(c); });
    }
    for (auto& t : threads) t.join();
  }
  auto end = std::chrono::steady_clock::now();

  MultiClientReport total;
  for (const auto& r : reports) {
    total.clients_completed += r.clients_completed;
    total.requests += r.requests;
    total.errors += r.errors;
    total.undelivered += r.undelivered;
    total.rows_received += r.rows_received;
    total.cursors_opened += r.cursors_opened;
    total.queries_sent += r.queries_sent;
    total.network.round_trips += r.network.round_trips;
    total.network.bytes_to_client += r.network.bytes_to_client;
    total.network.bytes_to_server += r.network.bytes_to_server;
    total.network.rows_transferred += r.network.rows_transferred;
    total.network.statements_sent += r.network.statements_sent;
    total.network.retries += r.network.retries;
    total.network.drops += r.network.drops;
    total.network.timeouts += r.network.timeouts;
    total.network.backoff_ms += r.network.backoff_ms;
  }
  total.wall_seconds = std::chrono::duration<double>(end - start).count();
  return total;
}

}  // namespace aggify
