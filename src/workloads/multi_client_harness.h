// MultiClientHarness: N simulated concurrent clients driving one Server
// through its text protocol, each from its own thread — the measurement and
// stress rig behind bench_server_scale and the server concurrency tests.
//
// Each client OPENs a session, then issues a seeded mix of one-shot QUERYs
// and DECLARE / FETCH-until-DONE / CLOSE cursor conversations, and finally
// CLOSEs its session. The simulated network sits between client and server:
// every request is a round trip whose loss is a deterministic seeded draw
// from the NetworkModel's drop_probability; a lost request is re-sent under
// the RetryPolicy (exponential backoff with jitter, accounted into
// NetworkStats like RemoteInterpreter does — simulated, not slept). Drops
// are drawn before the request reaches the server, so a retry is an
// idempotent re-send and cursor positions never skew.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "client/network.h"
#include "server/server.h"

namespace aggify {

struct MultiClientConfig {
  int clients = 4;
  /// Protocol conversations per client (a cursor conversation counts once).
  int requests_per_client = 8;
  /// Every `declare_every`-th conversation is a DECLARE/FETCH loop; the
  /// rest are one-shot QUERYs. 0 = one-shot only.
  int declare_every = 2;
  /// Rows per FETCH in cursor conversations.
  int64_t fetch_rows = 8;
  /// Statement pool each client samples from (seeded, per-client stream).
  /// All clients share the pool so the plan cache sees cross-session hits.
  std::vector<std::string> statements;
  /// OPEN options appended verbatim (e.g. "dop=4 batch=1").
  std::string open_options;
  NetworkModel network;
  RetryPolicy retry;
  uint64_t seed = 0xC11E27;
};

struct MultiClientReport {
  int clients_completed = 0;
  /// Protocol requests sent (including re-sends).
  int64_t requests = 0;
  /// Requests that came back "ERR ..." (admission rejections, registry
  /// bounds, deadlines — protocol-level failures, not harness bugs).
  int64_t errors = 0;
  /// Requests abandoned after the retry budget (all attempts dropped).
  int64_t undelivered = 0;
  int64_t rows_received = 0;
  int64_t cursors_opened = 0;
  int64_t queries_sent = 0;
  NetworkStats network;
  double wall_seconds = 0;

  std::string ToString() const;
};

class MultiClientHarness {
 public:
  MultiClientHarness(Server* server, MultiClientConfig config)
      : server_(server), config_(std::move(config)) {}

  /// Runs all clients to completion (one thread each) and aggregates their
  /// reports. Errors: InvalidArgument on an empty statement pool or a
  /// non-positive client count.
  Result<MultiClientReport> Run();

 private:
  /// One client's whole life; merged into the aggregate report by Run().
  MultiClientReport RunClient(int client_index);

  Server* server_;
  MultiClientConfig config_;
};

}  // namespace aggify
