// Applicability study (Table 1 / §10.2).
//
// The paper manually analyzed RUBiS, RUBBoS, and Adempiere sources and ran
// metadata scripts over 5,720 Azure SQL databases. Those inputs are not
// available; instead, three bundled corpora of dialect programs reproduce
// the paper's loop-category proportions, and the *actual* Aggify analyzer
// (FindCursorLoops + the applicability checks) produces the Table 1 counts.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "common/result.h"

namespace aggify {

struct CorpusStats {
  int total_while_loops = 0;
  int cursor_loops = 0;
  int aggifyable = 0;
  /// Deterministic census buckets: every skipped loop lands under exactly one
  /// diagnostic code (cursor_loops == aggifyable + sum of these counts).
  std::map<DiagCode, int> skip_codes;
  /// Eligibility ladder over the rewritten loops: how each earned (or
  /// missed) a Merge. recognized_fold + merge_synthesized + serial_only
  /// == aggifyable.
  int recognized_fold = 0;    ///< fold classifier's algebra proved the Merge
  int merge_synthesized = 0;  ///< homomorphism calculus derived + certified it
  int serial_only = 0;        ///< rewritten, but runs the serial plan only
  /// Table-effect / early-exit recovery: loops whose bodies are persistent
  /// DML yet still rewritten (families a/b of docs/ANALYSIS.md §6), and
  /// BREAK loops that earned a TOP-N prefix bound. The DML counters slice
  /// `aggifyable` (every such loop is also counted there); the bound
  /// counter is orthogonal to the ladder.
  int dml_insert_recovered = 0;  ///< INSERT body became INSERT...SELECT
  int dml_update_recovered = 0;  ///< UPDATE body became one set UPDATE
  int early_exit_bounded = 0;    ///< monotone BREAK proved a prefix bound
  /// Every diagnostic the analyses emitted (rejections and proof notes),
  /// clang-tidy-renderable — what `aggify_cli --lint workloads-corpus` prints.
  std::vector<Diagnostic> diagnostics;
};

struct Corpus {
  std::string name;
  std::vector<std::string> programs;
};

/// The three application corpora mirroring Table 1's subjects.
const std::vector<Corpus>& ApplicabilityCorpora();

/// \brief Parses every program and counts WHILE loops, cursor loops, and
/// loops passing the Aggify applicability checks.
Result<CorpusStats> AnalyzeCorpus(const Corpus& corpus);

/// §10.2's census analogue: given per-database UDF counts drawn from a
/// deterministic distribution, totals the cursors declared inside UDFs
/// across `num_databases` synthetic databases.
int64_t SimulateAzureCensus(int64_t num_databases, uint64_t seed = 5720);

}  // namespace aggify
