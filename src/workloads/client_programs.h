// Client-program generators for the scalability/data-movement experiments.
//
//   MakeMinCostSupplierProgram — Experiment 2 / Fig. 10(b): a client
//     program that loops over the first N parts and, per part, runs a nested
//     cursor loop computing the minimum-cost supplier (the Java program of
//     §10.5).
//   MakeCumulativeRoiProgram — Experiment 3 / Fig. 10(c): the Figure 2
//     program generalized to 50 ROI columns; the client fetches N wide rows
//     and folds 50 running products.
//   PopulateInvestments — the 50-column monthly_investments_wide table.
#pragma once

#include <cstdint>
#include <string>

#include "storage/catalog.h"

namespace aggify {

/// Client program over the TPC-H tables (PopulateTpch must have run).
std::string MakeMinCostSupplierProgram(int64_t num_parts);

/// Creates monthly_investments_wide with `rows` rows of 50 ROI columns.
Status PopulateInvestments(Database* db, int64_t rows, uint64_t seed = 11);

/// Client program over monthly_investments_wide; iterates `top_n` rows.
std::string MakeCumulativeRoiProgram(int64_t top_n);

/// Number of ROI columns in the wide table (paper: 50).
inline constexpr int kRoiColumns = 50;

}  // namespace aggify
