// Harness for client-application experiments (Figs. 9(b), 10(b), 10(c)):
// runs the same client program in its original cursor-loop form and in its
// Aggify-rewritten form, over the simulated network.
#pragma once

#include "aggify/rewriter.h"
#include "client/client_app.h"

namespace aggify {

struct ClientComparison {
  ClientRunResult original;
  ClientRunResult aggified;
  AggifyReport report;

  double SpeedupTotal() const {
    return aggified.TotalSeconds() > 0
               ? original.TotalSeconds() / aggified.TotalSeconds()
               : 0;
  }
  double DataReduction() const {
    return aggified.network.bytes_to_client > 0
               ? static_cast<double>(original.network.bytes_to_client) /
                     static_cast<double>(aggified.network.bytes_to_client)
               : 0;
  }
};

/// \brief Parses `program_sql`, runs it as-is, Aggify-rewrites the block
/// (registering synthesized aggregates with `db`), runs the rewritten form,
/// and returns both results. `verify` checks that every variable live at
/// program end holds the same value in both runs.
Result<ClientComparison> CompareClientProgram(Database* db,
                                              const std::string& program_sql,
                                              NetworkModel model = {},
                                              bool verify = true);

}  // namespace aggify
