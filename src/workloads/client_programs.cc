#include "workloads/client_programs.h"

#include "common/random.h"
#include "types/value.h"

namespace aggify {

std::string MakeMinCostSupplierProgram(int64_t num_parts) {
  std::string n = std::to_string(num_parts);
  return R"(
    DECLARE @pk INT;
    DECLARE @processed INT = 0;
    DECLARE @checksum FLOAT = 0.0;
    DECLARE pc CURSOR FOR
      SELECT p_partkey FROM part WHERE p_partkey <= )" + n + R"(;
    OPEN pc;
    FETCH NEXT FROM pc INTO @pk;
    WHILE @@FETCH_STATUS = 0
    BEGIN
      DECLARE @cost FLOAT;
      DECLARE @sname CHAR(25);
      DECLARE @mincost FLOAT = 100000000.0;
      DECLARE sc CURSOR FOR
        SELECT ps_supplycost, s_name FROM partsupp, supplier
        WHERE ps_partkey = @pk AND ps_suppkey = s_suppkey;
      OPEN sc;
      FETCH NEXT FROM sc INTO @cost, @sname;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        IF (@cost < @mincost)
          SET @mincost = @cost;
        FETCH NEXT FROM sc INTO @cost, @sname;
      END
      CLOSE sc; DEALLOCATE sc;
      SET @processed = @processed + 1;
      SET @checksum = @checksum + @mincost;
      FETCH NEXT FROM pc INTO @pk;
    END
    CLOSE pc; DEALLOCATE pc;
  )";
}

Status PopulateInvestments(Database* db, int64_t rows, uint64_t seed) {
  Schema schema;
  schema.AddColumn(Column("investor_id", DataType::Int()));
  for (int i = 1; i <= kRoiColumns; ++i) {
    schema.AddColumn(Column("roi" + std::to_string(i), DataType::Double()));
  }
  ASSIGN_OR_RETURN(Table * table, db->catalog().CreateTable(
                                      "monthly_investments_wide", schema));
  Random rng(seed);
  for (int64_t r = 0; r < rows; ++r) {
    Row row;
    row.push_back(Value::Int(r % 100));
    for (int i = 0; i < kRoiColumns; ++i) {
      // Monthly ROI in [-5%, +5%].
      row.push_back(Value::Double(
          static_cast<double>(rng.UniformRange(-500, 500)) / 10000.0));
    }
    RETURN_NOT_OK(table->Insert(std::move(row), nullptr));
  }
  return Status::OK();
}

std::string MakeCumulativeRoiProgram(int64_t top_n) {
  std::string program;
  // Declarations: one fetch variable and one accumulator per column.
  for (int i = 1; i <= kRoiColumns; ++i) {
    program += "DECLARE @m" + std::to_string(i) + " FLOAT;\n";
    program += "DECLARE @cum" + std::to_string(i) + " FLOAT = 1.0;\n";
  }
  program += "DECLARE c CURSOR FOR SELECT TOP " + std::to_string(top_n) + " ";
  for (int i = 1; i <= kRoiColumns; ++i) {
    if (i > 1) program += ", ";
    program += "roi" + std::to_string(i);
  }
  program += " FROM monthly_investments_wide;\n";
  auto fetch = [&] {
    std::string f = "FETCH NEXT FROM c INTO ";
    for (int i = 1; i <= kRoiColumns; ++i) {
      if (i > 1) f += ", ";
      f += "@m" + std::to_string(i);
    }
    return f + ";\n";
  };
  program += "OPEN c;\n";
  program += fetch();
  program += "WHILE @@FETCH_STATUS = 0\nBEGIN\n";
  for (int i = 1; i <= kRoiColumns; ++i) {
    std::string idx = std::to_string(i);
    program += "  SET @cum" + idx + " = @cum" + idx + " * (@m" + idx +
               " + 1);\n";
  }
  program += "  " + fetch();
  program += "END\nCLOSE c;\nDEALLOCATE c;\n";
  for (int i = 1; i <= kRoiColumns; ++i) {
    std::string idx = std::to_string(i);
    program += "SET @cum" + idx + " = @cum" + idx + " - 1;\n";
  }
  return program;
}

}  // namespace aggify
