// QueryEngine: the public query-execution facade.
//
// Owns nothing; executes SELECT statements against a Database, materializing
// WITH-clause CTEs (including recursive ones, the §8.1 iteration spaces)
// before planning the main body, and installing itself as the context's
// subquery executor so nested subqueries recurse through the same path.
#pragma once

#include <condition_variable>
#include <mutex>
#include <unordered_map>

#include "plan/planner.h"

namespace aggify {

/// \brief Session-scoped physical plan cache (SQL Server keeps one too; the
/// paper's workloads re-execute the same parameterized statements thousands
/// of times). Keyed by EngineOptions::PlanFingerprint() + statement text,
/// so the same SQL under different configurations caches separately;
/// entries are fenced by the catalog generations and an in-use flag guards
/// re-entrant executions. Plans over CTE bindings are never cached (they
/// capture materialized rows).
///
/// Thread-safe: the map and counters are mutex-guarded, so concurrently
/// admitted queries (AdmissionGate) share one cache. The in-use flag is what
/// keeps two threads off one stateful plan object — a second Acquire of an
/// in-use entry misses and replans, and Insert/eviction never disturb in-use
/// entries. Entry pointers stay valid across rehashes (unordered_map nodes
/// are stable), so a Lease held outside the mutex remains safe.
class PlanCache {
 public:
  struct Entry {
    OperatorPtr plan;
    int64_t persistent_generation = 0;
    int64_t temp_generation = 0;
    bool touches_worktables = false;
    bool in_use = false;
  };

  /// Returns a usable entry or nullptr. The caller must Release() it —
  /// prefer AcquireLease, which cannot leak the in-use flag on early return.
  Entry* Acquire(const std::string& key, const Catalog& catalog);
  void Release(Entry* entry) {
    std::lock_guard<std::mutex> lock(mu_);
    entry->in_use = false;
  }

  /// \brief Move-only scoped release guard over an acquired entry. Releases
  /// in the destructor, so an execution that errors (or a caller that
  /// returns early) can never leave the entry pinned in_use — which would
  /// silently disable caching of that statement forever.
  class Lease {
   public:
    Lease() = default;
    Lease(PlanCache* cache, Entry* entry) : cache_(cache), entry_(entry) {}
    Lease(Lease&& other) noexcept
        : cache_(other.cache_), entry_(other.entry_) {
      other.entry_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        reset();
        cache_ = other.cache_;
        entry_ = other.entry_;
        other.entry_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { reset(); }

    explicit operator bool() const { return entry_ != nullptr; }
    Operator* plan() const { return entry_->plan.get(); }

   private:
    void reset() {
      if (entry_ != nullptr) cache_->Release(entry_);
      entry_ = nullptr;
    }
    PlanCache* cache_ = nullptr;
    Entry* entry_ = nullptr;
  };

  /// Acquire wrapped in a scoped release guard (false-y lease on miss).
  Lease AcquireLease(const std::string& key, const Catalog& catalog) {
    return Lease(this, Acquire(key, catalog));
  }

  /// Inserts a plan (evicting everything if over capacity).
  void Insert(const std::string& key, OperatorPtr plan, const Catalog& catalog);

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  int64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  int64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

 private:
  static constexpr size_t kMaxEntries = 512;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

/// \brief Counting-semaphore admission gate
/// (EngineOptions::Limits::max_concurrent_queries): at most `limit` root
/// executions run at once; excess arrivals queue up to a wait deadline and
/// are then rejected with kResourceExhausted. Nested executions (subqueries,
/// UDF-invoked statements) run inside their root's admission and never
/// re-enter the gate — so a gated query can always finish.
class AdmissionGate {
 public:
  /// Blocks until a slot frees or `wait_ms` elapses (`wait_ms` <= 0 rejects
  /// a full gate immediately). Counts waits/rejections into `stats`.
  /// Errors: ResourceExhausted when the gate stays full past the deadline.
  Status Acquire(int limit, int64_t wait_ms, RobustnessStats* stats);
  void Release();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int running_ = 0;
};

class QueryEngine {
 public:
  explicit QueryEngine(Database* db, const EngineOptions& options = {})
      : db_(db), options_(options) {}

  Database* db() const { return db_; }
  const EngineOptions& options() const { return options_; }

  /// \brief Creates a context wired to this engine (subquery executor
  /// installed; UDF invoker installed separately by the Session).
  ExecContext MakeContext() const;

  /// \brief Executes a SELECT to completion. `ctx` supplies variables,
  /// correlation frames, and CTE bindings. A non-null `override_options`
  /// replaces the engine's configuration for this one statement; overridden
  /// executions use the plan cache like any other — the cache key carries
  /// the effective options' PlanFingerprint(), so plans shaped by different
  /// configurations never serve each other.
  Result<QueryResult> Execute(const SelectStmt& stmt, ExecContext& ctx,
                              const EngineOptions* override_options =
                                  nullptr) const;

  /// Parses and executes (test/demo convenience; fresh context).
  Result<QueryResult> ExecuteSql(const std::string& sql) const;

  /// \brief Returns the physical plan tree rendering (EXPLAIN), honoring a
  /// per-query options override like Execute.
  Result<std::string> Explain(const SelectStmt& stmt, ExecContext& ctx,
                              const EngineOptions* override_options =
                                  nullptr) const;

  const PlanCache& plan_cache() const { return cache_; }

 private:
  /// One planning+execution attempt at the given effective options: cache
  /// lookup (when `allow_cache`), CTE binding, planning, RunPlanWithRetry.
  /// The degradation ladder in Execute re-invokes this with progressively
  /// cheaper options; those degraded plans are never cached (the user's
  /// configuration should not be shadowed by an emergency replan).
  Result<QueryResult> ExecuteOnce(const SelectStmt& stmt, ExecContext& ctx,
                                  const EngineOptions& options,
                                  bool allow_cache) const;
  /// Runs the plan to completion. Brackets the attempt with the memory
  /// accountant: usage is marked at entry and rolled back on failure, so a
  /// failed attempt (whose operators may never reach Close) cannot poison
  /// the budget of a retry or a degraded replan.
  Result<QueryResult> RunPlan(Operator* root, ExecContext& ctx) const;
  /// RunPlan plus bounded retry on IsRetryable() failures, with the budget
  /// read from the *effective* options of this execution (a per-query
  /// override's retry setting applies to that query). Safe because RunPlan
  /// re-Opens the plan tree from scratch on every attempt.
  Result<QueryResult> RunPlanWithRetry(Operator* root, ExecContext& ctx,
                                       const EngineOptions& options) const;
  /// Materializes the statement's CTEs into `ctx` bindings; fills
  /// `bound_names` with the names to unbind afterwards.
  Status BindCtes(const SelectStmt& stmt, ExecContext& ctx,
                  std::vector<std::string>* bound_names,
                  std::vector<std::shared_ptr<std::vector<Row>>>* keepalive)
      const;

  Database* db_;
  EngineOptions options_;
  mutable PlanCache cache_;
  mutable AdmissionGate admission_;
};

}  // namespace aggify
