// QueryEngine: the public query-execution facade.
//
// Owns nothing; executes SELECT statements against a Database, materializing
// WITH-clause CTEs (including recursive ones, the §8.1 iteration spaces)
// before planning the main body, and installing itself as the context's
// subquery executor so nested subqueries recurse through the same path.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "plan/planner.h"

namespace aggify {

/// \brief Session-scoped physical plan cache (SQL Server keeps one too; the
/// paper's workloads re-execute the same parameterized statements thousands
/// of times). Keyed by EngineOptions::PlanFingerprint() + statement text,
/// so the same SQL under different configurations caches separately;
/// entries are fenced by the catalog generations and an in-use flag guards
/// re-entrant executions. Plans over CTE bindings are never cached (they
/// capture materialized rows).
///
/// Thread-safe: the map and counters are mutex-guarded, so concurrently
/// admitted queries (AdmissionGate) share one cache. The in-use flag is what
/// keeps two threads off one stateful plan object — a second Acquire of an
/// in-use entry misses and replans, and Insert/eviction never disturb in-use
/// entries. Entry pointers stay valid across rehashes (unordered_map nodes
/// are stable), so a Lease held outside the mutex remains safe.
class PlanCache {
 public:
  struct Entry {
    OperatorPtr plan;
    int64_t persistent_generation = 0;
    int64_t temp_generation = 0;
    bool touches_worktables = false;
    bool in_use = false;
  };

  /// Returns a usable entry or nullptr. The caller must Release() it —
  /// prefer AcquireLease, which cannot leak the in-use flag on early return.
  Entry* Acquire(const std::string& key, const Catalog& catalog);
  void Release(Entry* entry) {
    std::lock_guard<std::mutex> lock(mu_);
    entry->in_use = false;
  }

  /// \brief Move-only scoped release guard over an acquired entry. Releases
  /// in the destructor, so an execution that errors (or a caller that
  /// returns early) can never leave the entry pinned in_use — which would
  /// silently disable caching of that statement forever.
  class Lease {
   public:
    Lease() = default;
    Lease(PlanCache* cache, Entry* entry) : cache_(cache), entry_(entry) {}
    Lease(Lease&& other) noexcept
        : cache_(other.cache_), entry_(other.entry_) {
      other.entry_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        reset();
        cache_ = other.cache_;
        entry_ = other.entry_;
        other.entry_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { reset(); }

    explicit operator bool() const { return entry_ != nullptr; }
    Operator* plan() const { return entry_->plan.get(); }

   private:
    void reset() {
      if (entry_ != nullptr) cache_->Release(entry_);
      entry_ = nullptr;
    }
    PlanCache* cache_ = nullptr;
    Entry* entry_ = nullptr;
  };

  /// Acquire wrapped in a scoped release guard (false-y lease on miss).
  Lease AcquireLease(const std::string& key, const Catalog& catalog) {
    return Lease(this, Acquire(key, catalog));
  }

  /// Inserts a plan (evicting everything if over capacity).
  void Insert(const std::string& key, OperatorPtr plan, const Catalog& catalog);

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  int64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  int64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

 private:
  static constexpr size_t kMaxEntries = 512;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

/// \brief Counting-semaphore admission gate
/// (EngineOptions::Limits::max_concurrent_queries): at most `limit` root
/// executions run at once; excess arrivals queue up to a wait deadline and
/// are then rejected with kResourceExhausted. Nested executions (subqueries,
/// UDF-invoked statements) run inside their root's admission and never
/// re-enter the gate — so a gated query can always finish.
class AdmissionGate {
 public:
  /// Blocks until a slot frees or `wait_ms` elapses (`wait_ms` <= 0 rejects
  /// a full gate immediately). Counts waits/rejections into `stats`.
  /// Errors: ResourceExhausted when the gate stays full past the deadline.
  Status Acquire(int limit, int64_t wait_ms, RobustnessStats* stats);
  void Release();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int running_ = 0;
};

class QueryEngine;

/// \brief One increment of a paginated execution: up to `n` rows pulled from
/// a paused plan. `done` is sticky — once true, the producing cursor has
/// closed its plan and every further Fetch returns an empty, done page.
/// `first_row_index` is the 0-based position of rows.front() in the full
/// result, so a client can reassemble (and verify) the one-shot order.
struct QueryPage {
  std::vector<Row> rows;
  bool done = false;
  int64_t first_row_index = 0;
};

/// \brief A paused, incrementally-drained execution of one SELECT — the
/// engine half of the server's cursor protocol (docs/SERVER.md), modeled on
/// RediSearch's coordinator cursors (`aggregate/cursor.c` runCursor): the
/// plan stays open between FETCHes, each Fetch(n) re-enters the engine,
/// pulls up to n rows through the ordinary Volcano Next() path, and pauses
/// again. Because rows come off the very same operator tree a one-shot
/// execution would drain, an incremental drain is bit-identical to
/// QueryEngine::Execute by construction (DESIGN.md invariant 13).
///
/// The cursor owns everything its paused plan needs to stay alive between
/// fetches: a private ExecContext (depth pre-set to 1 so nested subqueries
/// never re-enter the admission gate), an optional governing QueryContext
/// (per-cursor deadline + memory, chained to a session accountant), CTE
/// keepalive rows, and the plan itself. Cursor plans are planned fresh and
/// never enter the shared PlanCache — a cached plan's operator state cannot
/// be pinned across an unbounded client pause.
///
/// Admission: each Fetch (and the Open inside QueryEngine::OpenCursor)
/// acquires the engine's AdmissionGate like a root statement and releases
/// it before pausing, so an idle cursor never holds an execution slot.
///
/// Not thread-safe: one Fetch at a time (the server's CursorRegistry
/// enforces this with a busy checkout).
class QueryCursor {
 public:
  ~QueryCursor() { Close(); }
  QueryCursor(const QueryCursor&) = delete;
  QueryCursor& operator=(const QueryCursor&) = delete;

  /// Pulls up to `n` rows (n >= 1). On exhaustion the final page has
  /// done=true (possibly with rows) and the plan is closed. Errors
  /// (cancellation, deadline expiry, admission rejection, operator
  /// failure) close the cursor permanently and surface the status.
  Result<QueryPage> Fetch(int64_t n);

  /// Drains the remaining pages into one materialized result — what a
  /// one-shot execution would have returned from this point on.
  Result<QueryResult> Drain(int64_t page_rows = 1024);

  /// Closes the plan early and releases any memory the paused execution
  /// still holds. Idempotent; called by the destructor.
  Status Close();

  const Schema& schema() const { return schema_; }
  bool done() const { return done_; }
  /// Rows delivered so far (== first_row_index of the next page).
  int64_t rows_fetched() const { return rows_fetched_; }
  /// The governing context (cancel/deadline token), or nullptr.
  QueryContext* query_context() { return governance_.get(); }

 private:
  friend class QueryEngine;
  QueryCursor() = default;

  const QueryEngine* engine_ = nullptr;
  EngineOptions options_;
  std::unique_ptr<ExecContext> ctx_;
  std::unique_ptr<VariableEnv> vars_;
  std::unique_ptr<QueryContext> governance_;
  std::vector<std::string> bound_ctes_;
  std::vector<std::shared_ptr<std::vector<Row>>> cte_keepalive_;
  OperatorPtr plan_;
  Schema schema_;
  int64_t memory_mark_ = 0;
  int64_t rows_fetched_ = 0;
  bool open_ = false;   ///< plan_->Open succeeded and Close not yet run
  bool done_ = false;   ///< exhausted or failed; every Fetch is a no-op
};

class QueryEngine {
 public:
  explicit QueryEngine(Database* db, const EngineOptions& options = {})
      : db_(db), options_(options) {}

  Database* db() const { return db_; }
  const EngineOptions& options() const { return options_; }

  /// \brief Building block for procedural/context_factory.h — a context
  /// with only the subquery executor wired. A base context has NO UDF
  /// invoker and will fail on the first scalar UDF call; production code
  /// must go through MakeWiredContext (or Session/ClientSession, which do).
  ExecContext MakeBaseContext() const;

  /// \brief Executes a SELECT to completion. `ctx` supplies variables,
  /// correlation frames, and CTE bindings. A non-null `override_options`
  /// replaces the engine's configuration for this one statement; overridden
  /// executions use the plan cache like any other — the cache key carries
  /// the effective options' PlanFingerprint(), so plans shaped by different
  /// configurations never serve each other.
  Result<QueryResult> Execute(const SelectStmt& stmt, ExecContext& ctx,
                              const EngineOptions* override_options =
                                  nullptr) const;

  /// \brief Opens a paused, incrementally-fetchable execution of `stmt` —
  /// the engine primitive behind the server's DECLARE/FETCH protocol.
  /// `base_ctx` supplies the hook wiring (subquery executor, UDF invoker)
  /// and is copied; the cursor's private context outlives this call.
  /// `governance` (may be null) becomes the cursor's deadline/cancel/memory
  /// token for its whole lifetime — pass a QueryContext chained to the
  /// session accountant to charge the paused plan's state to the session.
  /// CTEs are materialized eagerly at open (their rows live in the cursor),
  /// the plan is built fresh (never cached — see QueryCursor), and Open runs
  /// under the admission gate. Errors surface here, not on the first Fetch.
  Result<std::unique_ptr<QueryCursor>> OpenCursor(
      const SelectStmt& stmt, const ExecContext& base_ctx,
      std::unique_ptr<QueryContext> governance = nullptr,
      const EngineOptions* override_options = nullptr) const;

  /// \brief Returns the physical plan tree rendering (EXPLAIN), honoring a
  /// per-query options override like Execute.
  Result<std::string> Explain(const SelectStmt& stmt, ExecContext& ctx,
                              const EngineOptions* override_options =
                                  nullptr) const;

  const PlanCache& plan_cache() const { return cache_; }

 private:
  /// Cursor fetches re-enter the admission gate like root statements.
  friend class QueryCursor;

  /// One planning+execution attempt at the given effective options: cache
  /// lookup (when `allow_cache`), CTE binding, planning, RunPlanWithRetry.
  /// The degradation ladder in Execute re-invokes this with progressively
  /// cheaper options; those degraded plans are never cached (the user's
  /// configuration should not be shadowed by an emergency replan).
  Result<QueryResult> ExecuteOnce(const SelectStmt& stmt, ExecContext& ctx,
                                  const EngineOptions& options,
                                  bool allow_cache) const;
  /// Runs the plan to completion. Brackets the attempt with the memory
  /// accountant: usage is marked at entry and rolled back on failure, so a
  /// failed attempt (whose operators may never reach Close) cannot poison
  /// the budget of a retry or a degraded replan.
  Result<QueryResult> RunPlan(Operator* root, ExecContext& ctx) const;
  /// RunPlan plus bounded retry on IsRetryable() failures, with the budget
  /// read from the *effective* options of this execution (a per-query
  /// override's retry setting applies to that query). Safe because RunPlan
  /// re-Opens the plan tree from scratch on every attempt.
  Result<QueryResult> RunPlanWithRetry(Operator* root, ExecContext& ctx,
                                       const EngineOptions& options) const;
  /// Materializes the statement's CTEs into `ctx` bindings; fills
  /// `bound_names` with the names to unbind afterwards.
  Status BindCtes(const SelectStmt& stmt, ExecContext& ctx,
                  std::vector<std::string>* bound_names,
                  std::vector<std::shared_ptr<std::vector<Row>>>* keepalive)
      const;

  Database* db_;
  EngineOptions options_;
  mutable PlanCache cache_;
  mutable AdmissionGate admission_;
};

}  // namespace aggify
