#include "plan/query_engine.h"

#include <chrono>
#include <iterator>
#include <optional>

#include "parser/parser.h"

namespace aggify {

PlanCache::Entry* PlanCache::Acquire(const std::string& key,
                                     const Catalog& catalog) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  Entry& entry = it->second;
  if (entry.in_use ||
      entry.persistent_generation != catalog.persistent_generation() ||
      (entry.touches_worktables &&
       entry.temp_generation != catalog.temp_generation())) {
    ++misses_;
    if (!entry.in_use) entries_.erase(it);  // stale; rebuild below
    return nullptr;
  }
  ++hits_;
  entry.in_use = true;
  return &entry;
}

void PlanCache::Insert(const std::string& key, OperatorPtr plan,
                       const Catalog& catalog) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  // Never replace an entry some enclosing execution is iterating.
  if (it != entries_.end() && it->second.in_use) return;
  if (entries_.size() >= kMaxEntries) {
    // Coarse eviction; in-use entries must survive.
    for (auto e = entries_.begin(); e != entries_.end();) {
      e = e->second.in_use ? std::next(e) : entries_.erase(e);
    }
  }
  Entry entry;
  entry.touches_worktables = PlanTouchesWorktables(*plan);
  entry.plan = std::move(plan);
  entry.persistent_generation = catalog.persistent_generation();
  entry.temp_generation = catalog.temp_generation();
  entries_[key] = std::move(entry);
}

Status AdmissionGate::Acquire(int limit, int64_t wait_ms,
                              RobustnessStats* stats) {
  std::unique_lock<std::mutex> lock(mu_);
  if (running_ < limit) {
    ++running_;
    return Status::OK();
  }
  if (wait_ms <= 0) {
    if (stats != nullptr) ++stats->admission_rejections;
    return Status::ResourceExhausted(
        "admission gate full (" + std::to_string(limit) +
        " concurrent queries) and admission_timeout_ms allows no wait");
  }
  if (stats != nullptr) ++stats->admission_waits;
  const bool admitted = cv_.wait_for(
      lock, std::chrono::milliseconds(wait_ms),
      [&] { return running_ < limit; });
  if (!admitted) {
    if (stats != nullptr) ++stats->admission_rejections;
    return Status::ResourceExhausted(
        "admission gate full (" + std::to_string(limit) +
        " concurrent queries) after waiting " + std::to_string(wait_ms) +
        "ms");
  }
  ++running_;
  return Status::OK();
}

void AdmissionGate::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  cv_.notify_one();
}

namespace {

bool TableRefHasNestedWith(const TableRef& ref);

/// Structural nested-WITH detection: true if the statement (or any derived
/// table / UNION ALL branch reachable from it) carries its own CTE list.
/// Such plans materialize CTE data at plan time and must not be cached.
/// This replaces a substring scan of the statement text, which
/// false-positived on string literals containing "WITH ".
bool HasNestedWith(const SelectStmt& stmt) {
  for (const auto& ref : stmt.from) {
    if (ref != nullptr && TableRefHasNestedWith(*ref)) return true;
  }
  if (stmt.union_all != nullptr) {
    if (!stmt.union_all->ctes.empty() || HasNestedWith(*stmt.union_all)) {
      return true;
    }
  }
  return false;
}

bool TableRefHasNestedWith(const TableRef& ref) {
  switch (ref.kind) {
    case TableRef::Kind::kBaseTable:
      return false;
    case TableRef::Kind::kSubquery:
      return !ref.subquery->ctes.empty() || HasNestedWith(*ref.subquery);
    case TableRef::Kind::kJoin:
      return (ref.left != nullptr && TableRefHasNestedWith(*ref.left)) ||
             (ref.right != nullptr && TableRefHasNestedWith(*ref.right));
  }
  return false;
}

}  // namespace

ExecContext QueryEngine::MakeBaseContext() const {
  ExecContext ctx(db_);
  ctx.set_subquery_executor(
      [this](const SelectStmt& stmt, ExecContext& inner) {
        return Execute(stmt, inner);
      });
  return ctx;
}

Status QueryEngine::BindCtes(
    const SelectStmt& stmt, ExecContext& ctx,
    std::vector<std::string>* bound_names,
    std::vector<std::shared_ptr<std::vector<Row>>>* keepalive) const {
  for (const auto& cte : stmt.ctes) {
    auto rows = std::make_shared<std::vector<Row>>();
    Schema schema;
    if (!cte.recursive && cte.query->union_all == nullptr) {
      ASSIGN_OR_RETURN(QueryResult result, Execute(*cte.query, ctx));
      schema = result.schema;
      *rows = std::move(result.rows);
    } else {
      // Recursive CTE: base part UNION ALL recursive part. Semi-naive
      // evaluation: feed only the previous delta into the recursive part.
      auto base = cte.query->Clone();
      std::unique_ptr<SelectStmt> recursive = std::move(base->union_all);
      if (recursive == nullptr) {
        return Status::BindError("recursive CTE '" + cte.name +
                                 "' lacks a UNION ALL recursive part");
      }
      ASSIGN_OR_RETURN(QueryResult base_result, Execute(*base, ctx));
      schema = base_result.schema;
      *rows = base_result.rows;
      auto delta = std::make_shared<std::vector<Row>>(
          std::move(base_result.rows));
      int64_t iterations = 0;
      while (!delta->empty()) {
        if (++iterations > ctx.max_recursion) {
          return Status::ExecutionError(
              "recursive CTE '" + cte.name + "' exceeded max recursion (" +
              std::to_string(ctx.max_recursion) + ")");
        }
        ctx.BindCte(cte.name, CteBinding{schema, delta.get()});
        auto step = Execute(*recursive, ctx);
        ctx.UnbindCte(cte.name);
        RETURN_NOT_OK(step.status());
        if (step->rows.empty()) break;
        auto next_delta =
            std::make_shared<std::vector<Row>>(std::move(step->rows));
        rows->insert(rows->end(), next_delta->begin(), next_delta->end());
        delta = std::move(next_delta);
      }
    }
    // Apply explicit column names if given.
    if (!cte.column_names.empty()) {
      if (cte.column_names.size() != schema.num_columns()) {
        return Status::BindError("CTE '" + cte.name + "' declares " +
                                 std::to_string(cte.column_names.size()) +
                                 " columns but produces " +
                                 std::to_string(schema.num_columns()));
      }
      Schema renamed;
      for (size_t i = 0; i < cte.column_names.size(); ++i) {
        renamed.AddColumn(Column(cte.column_names[i],
                                 schema.column(i).type, cte.name));
      }
      schema = std::move(renamed);
    }
    ctx.BindCte(cte.name, CteBinding{schema, rows.get()});
    bound_names->push_back(cte.name);
    keepalive->push_back(std::move(rows));
  }
  return Status::OK();
}

Result<QueryResult> QueryEngine::Execute(
    const SelectStmt& stmt, ExecContext& ctx,
    const EngineOptions* override_options) const {
  const EngineOptions& options =
      override_options != nullptr ? *override_options : options_;
  ++ctx.stats().queries_executed;
  if (ctx.depth > ExecContext::kMaxDepth) {
    return Status::ExecutionError("query nesting too deep");
  }
  ++ctx.depth;
  struct DepthGuard {
    ExecContext* c;
    ~DepthGuard() { --c->depth; }
  } guard{&ctx};

  // Admission gate: root executions only (depth 1 after the increment).
  // Nested executions — subqueries, CTE parts, UDF-invoked statements —
  // run inside their root's admission; re-entering the gate from them
  // would deadlock a fully-admitted engine against itself.
  const bool gated =
      options.limits.max_concurrent_queries > 0 && ctx.depth == 1;
  if (gated) {
    RETURN_NOT_OK(admission_.Acquire(options.limits.max_concurrent_queries,
                                     options.limits.admission_timeout_ms,
                                     &ctx.robustness()));
  }
  struct GateGuard {
    AdmissionGate* gate;
    ~GateGuard() {
      if (gate != nullptr) gate->Release();
    }
  } gate_guard{gated ? &admission_ : nullptr};

  // Install a root QueryContext when limits are configured and no enclosing
  // execution brought one (a Session-scoped deadline, say). It lives on
  // this frame and spans every retry and degraded replan below, so the
  // deadline and memory budget govern the whole statement, not one attempt.
  std::optional<QueryContext> root_qc;
  struct QcGuard {
    ExecContext* c;
    bool active = false;
    ~QcGuard() {
      if (active) c->set_query_context(nullptr);
    }
  } qc_guard{&ctx};
  if (ctx.query_context() == nullptr &&
      (options.limits.timeout_ms > 0 || options.limits.memory_limit_bytes > 0)) {
    root_qc.emplace(options.limits.timeout_ms,
                    options.limits.memory_limit_bytes, &ctx.robustness());
    ctx.set_query_context(&*root_qc);
    qc_guard.active = true;
  }

  auto result = ExecuteOnce(stmt, ctx, options, /*allow_cache=*/true);
  if (result.ok() || !result.status().IsResourceExhausted()) return result;

  // Graceful-degradation ladder (docs/ROBUSTNESS.md): a memory-budget hit
  // is not retryable — the same plan would charge the same bytes — but a
  // cheaper plan may fit. Shed the vectorized batch buffers first, then
  // parallelism (per-worker partial aggregation states multiply footprint
  // by the DOP). Each rung replans from scratch; RunPlan's rollback has
  // already returned the failed attempt's bytes to the shared accountant.
  if (options.execution.enable_batch) {
    EngineOptions degraded = options;
    degraded.execution.enable_batch = false;
    ++ctx.robustness().degraded_batch_to_row;
    result = ExecuteOnce(stmt, ctx, degraded, /*allow_cache=*/false);
    if (result.ok() || !result.status().IsResourceExhausted()) return result;
  }
  if (options.execution.degree_of_parallelism > 1) {
    EngineOptions degraded = options;
    degraded.execution.enable_batch = false;
    degraded.execution.degree_of_parallelism = 1;
    ++ctx.robustness().degraded_parallel_to_serial;
    result = ExecuteOnce(stmt, ctx, degraded, /*allow_cache=*/false);
    if (result.ok() || !result.status().IsResourceExhausted()) return result;
  }
  ++ctx.robustness().resource_exhausted_failures;
  return result;
}

Result<QueryResult> QueryEngine::ExecuteOnce(const SelectStmt& stmt,
                                             ExecContext& ctx,
                                             const EngineOptions& options,
                                             bool allow_cache) const {
  // Plan-cache fast path: statements without CTEs anywhere (top level,
  // derived tables, UNION ALL branches) and outside any CTE binding scope
  // reuse their physical plan across executions, like a real engine's
  // prepared/cached plans. Variables and correlation frames are runtime
  // inputs, so parameterized re-execution is safe. The key carries the
  // effective options' fingerprint, so per-query overrides cache too —
  // a plan shaped by (say) dop=4 never serves the engine-default
  // configuration or vice versa.
  const bool cacheable = allow_cache && stmt.ctes.empty() &&
                         !ctx.HasCteBindings() && !HasNestedWith(stmt);
  std::string cache_key;
  if (cacheable) {
    cache_key = options.PlanFingerprint();
    cache_key += '\n';
    cache_key += stmt.ToString();
    if (PlanCache::Lease lease = cache_.AcquireLease(cache_key,
                                                     ctx.catalog())) {
      return RunPlanWithRetry(lease.plan(), ctx, options);
    }
  }

  std::vector<std::string> bound;
  std::vector<std::shared_ptr<std::vector<Row>>> keepalive;
  Status st = BindCtes(stmt, ctx, &bound, &keepalive);
  auto cleanup = [&] {
    for (const auto& name : bound) ctx.UnbindCte(name);
  };
  if (!st.ok()) {
    cleanup();
    return st;
  }

  Planner planner(&ctx, options);
  auto plan = planner.Plan(stmt);
  if (!plan.ok()) {
    cleanup();
    return plan.status();
  }

  auto result = RunPlanWithRetry(plan->get(), ctx, options);
  cleanup();
  if (result.ok() && cacheable) {
    cache_.Insert(cache_key, std::move(*plan), ctx.catalog());
  }
  return result;
}

Result<QueryResult> QueryEngine::RunPlan(Operator* root,
                                         ExecContext& ctx) const {
  // Attempt-boundary memory bracket: anything this attempt charges and
  // fails to release (operators that error in Open never see Close) is
  // rolled back wholesale, so retries and degraded replans start from the
  // pre-attempt budget. Safe because parallel workers are joined before
  // any error propagates out of the plan tree.
  MemoryAccountant* acc = ctx.accountant();
  const int64_t mark = acc != nullptr ? acc->used() : 0;
  QueryResult result;
  result.schema = root->schema();
  Status st = root->Open(ctx);
  if (st.ok()) {
    Row row;
    for (;;) {
      auto more = root->Next(ctx, &row);
      if (!more.ok()) {
        st = more.status();
        break;
      }
      if (!*more) break;
      result.rows.push_back(std::move(row));
    }
    Status close_st = root->Close(ctx);
    if (st.ok()) st = close_st;
  }
  if (!st.ok()) {
    if (acc != nullptr) acc->ReleaseTo(mark);
    return st;
  }
  return result;
}

Result<QueryResult> QueryEngine::RunPlanWithRetry(
    Operator* root, ExecContext& ctx, const EngineOptions& options) const {
  auto result = RunPlan(root, ctx);
  for (int attempt = 0;
       attempt < options.retry.transient_retries && !result.ok() &&
       result.status().IsRetryable();
       ++attempt) {
    // A real expired deadline (or cancellation) makes retrying pointless:
    // every new attempt would die at its first interrupt check. Injected
    // kTimeout failures with no live deadline still retry as before.
    if (ctx.query_context() != nullptr &&
        !ctx.query_context()->Check().ok()) {
      break;
    }
    ++ctx.robustness().transient_retries;
    result = RunPlan(root, ctx);
  }
  return result;
}

namespace {

/// Scoped admission for one cursor step (open or fetch): acquires the gate
/// when the effective options configure one, releases on scope exit. Cursor
/// steps are root-level work — the cursor's context runs at depth 1, so
/// nested subqueries inside the plan never re-enter the gate.
class ScopedCursorAdmission {
 public:
  ScopedCursorAdmission(AdmissionGate* gate, const EngineOptions& options,
                        RobustnessStats* stats) {
    if (options.limits.max_concurrent_queries > 0) {
      status_ = gate->Acquire(options.limits.max_concurrent_queries,
                              options.limits.admission_timeout_ms, stats);
      gate_ = status_.ok() ? gate : nullptr;
    }
  }
  ~ScopedCursorAdmission() {
    if (gate_ != nullptr) gate_->Release();
  }
  ScopedCursorAdmission(const ScopedCursorAdmission&) = delete;
  ScopedCursorAdmission& operator=(const ScopedCursorAdmission&) = delete;

  const Status& status() const { return status_; }

 private:
  AdmissionGate* gate_ = nullptr;
  Status status_;
};

}  // namespace

Result<std::unique_ptr<QueryCursor>> QueryEngine::OpenCursor(
    const SelectStmt& stmt, const ExecContext& base_ctx,
    std::unique_ptr<QueryContext> governance,
    const EngineOptions* override_options) const {
  const EngineOptions& options =
      override_options != nullptr ? *override_options : options_;
  // The cursor owns its whole execution environment: a context copied from
  // the caller's wiring (hooks, stats override), a private variable scope,
  // and the governance token. new-ed because the paused plan keeps raw
  // pointers into all three across an unbounded number of Fetch calls.
  std::unique_ptr<QueryCursor> cursor(new QueryCursor());
  cursor->engine_ = this;
  cursor->options_ = options;
  cursor->ctx_ = std::make_unique<ExecContext>(base_ctx);
  cursor->vars_ = std::make_unique<VariableEnv>();
  if (cursor->ctx_->vars() == nullptr) {
    cursor->ctx_->set_vars(cursor->vars_.get());
  }
  cursor->governance_ = std::move(governance);
  if (cursor->governance_ != nullptr) {
    cursor->ctx_->set_query_context(cursor->governance_.get());
  }
  // Depth 1 = "inside a root execution": nested subqueries and CTE parts
  // executed through the context see depth >= 2 and skip the admission
  // gate, exactly as they would inside QueryEngine::Execute.
  cursor->ctx_->depth = 1;
  ExecContext& ctx = *cursor->ctx_;
  ++ctx.stats().queries_executed;

  ScopedCursorAdmission admission(&admission_, options, &ctx.robustness());
  RETURN_NOT_OK(admission.status());

  RETURN_NOT_OK(BindCtes(stmt, ctx, &cursor->bound_ctes_,
                         &cursor->cte_keepalive_));
  Planner planner(&ctx, options);
  auto plan = planner.Plan(stmt);
  if (!plan.ok()) {
    for (const auto& name : cursor->bound_ctes_) ctx.UnbindCte(name);
    cursor->bound_ctes_.clear();
    return plan.status();
  }
  cursor->plan_ = std::move(*plan);
  cursor->schema_ = cursor->plan_->schema();

  MemoryAccountant* acc = ctx.accountant();
  cursor->memory_mark_ = acc != nullptr ? acc->used() : 0;
  Status st = cursor->plan_->Open(ctx);
  if (!st.ok()) {
    // Leave teardown (plan Close, CTE unbind, memory rollback) to Close();
    // open_ stays false so Close skips the plan but reclaims the rest.
    if (acc != nullptr) acc->ReleaseTo(cursor->memory_mark_);
    cursor->done_ = true;
    cursor->Close();
    return st;
  }
  cursor->open_ = true;
  return cursor;
}

Result<QueryPage> QueryCursor::Fetch(int64_t n) {
  if (n < 1) return Status::InvalidArgument("FETCH size must be >= 1");
  QueryPage page;
  page.first_row_index = rows_fetched_;
  if (done_) {
    page.done = true;
    return page;
  }
  ExecContext& ctx = *ctx_;
  ScopedCursorAdmission admission(&engine_->admission_, options_,
                                  &ctx.robustness());
  if (!admission.status().ok()) {
    // Admission rejection is a property of this fetch attempt, not of the
    // paused plan — the cursor survives and the client may retry.
    return admission.status();
  }
  Status st = ctx.CheckInterrupts();
  Row row;
  while (st.ok() && static_cast<int64_t>(page.rows.size()) < n) {
    auto more = plan_->Next(ctx, &row);
    if (!more.ok()) {
      st = more.status();
      break;
    }
    if (!*more) {
      page.done = true;
      break;
    }
    page.rows.push_back(std::move(row));
  }
  rows_fetched_ += static_cast<int64_t>(page.rows.size());
  if (!st.ok()) {
    done_ = true;
    Close();
    return st;
  }
  if (page.done) {
    done_ = true;
    RETURN_NOT_OK(Close());
  }
  return page;
}

Result<QueryResult> QueryCursor::Drain(int64_t page_rows) {
  QueryResult result;
  result.schema = schema_;
  for (;;) {
    ASSIGN_OR_RETURN(QueryPage page, Fetch(page_rows));
    for (auto& r : page.rows) result.rows.push_back(std::move(r));
    if (page.done) return result;
  }
}

Status QueryCursor::Close() {
  Status st;
  if (open_) {
    open_ = false;
    st = plan_->Close(*ctx_);
    // Whatever the paused execution still held (group states, sort
    // buffers, batch windows) must return to the session's budget even if
    // an operator's Close under-released.
    MemoryAccountant* acc = ctx_->accountant();
    if (acc != nullptr) acc->ReleaseTo(memory_mark_);
  }
  done_ = true;
  for (const auto& name : bound_ctes_) ctx_->UnbindCte(name);
  bound_ctes_.clear();
  return st;
}

Result<std::string> QueryEngine::Explain(
    const SelectStmt& stmt, ExecContext& ctx,
    const EngineOptions* override_options) const {
  std::vector<std::string> bound;
  std::vector<std::shared_ptr<std::vector<Row>>> keepalive;
  RETURN_NOT_OK(BindCtes(stmt, ctx, &bound, &keepalive));
  Planner planner(&ctx,
                  override_options != nullptr ? *override_options : options_);
  auto plan = planner.Plan(stmt);
  for (const auto& name : bound) ctx.UnbindCte(name);
  RETURN_NOT_OK(plan.status());
  return (*plan)->ExplainTree();
}

}  // namespace aggify
