// Planner: SelectStmt -> physical operator tree.
//
// Optimizations applied (each has an ablation toggle in PlannerOptions):
//  * predicate pushdown: single-relation WHERE conjuncts run at the scans
//  * index selection: `col = <no-column expr>` on an indexed column of a
//    base table becomes an IndexSeek (parameterized by variables, which is
//    what makes repeated cursor-query invocation index-driven)
//  * equi-join detection: cross-relation `a.x = b.y` conjuncts drive greedy
//    left-deep HashJoin ordering; remaining predicates become residual
//    filters or NLJ predicates
//  * aggregate placement: HashAggregate by default; StreamAggregate when the
//    statement carries the Eq. 6 enforcement flag or any aggregate is
//    order-sensitive
#pragma once

#include "exec/operators.h"
#include "parser/query_ast.h"

namespace aggify {

struct PlannerOptions {
  bool enable_index_seek = true;
  bool enable_hash_join = true;
  bool enable_predicate_pushdown = true;
  /// Simulated degree of parallel partial aggregation (§3.1 Merge). Only
  /// applied when every aggregate in the query SupportsMerge() and the plan
  /// is not order-enforced; otherwise aggregation stays serial.
  int aggregate_partitions = 1;
};

class Planner {
 public:
  Planner(ExecContext* ctx, PlannerOptions options = {})
      : ctx_(ctx), options_(options) {}

  /// Plans `stmt` (whose CTEs must already be bound in the context by the
  /// QueryEngine). The statement is not mutated.
  Result<OperatorPtr> Plan(const SelectStmt& stmt);

 private:
  struct FromEntry {
    OperatorPtr op;
    std::string name;  // effective alias for diagnostics
  };

  Result<OperatorPtr> PlanBody(const SelectStmt& stmt);
  Result<OperatorPtr> PlanTableRef(const TableRef& tref);
  Result<OperatorPtr> PlanBaseTable(const std::string& table_name,
                                    const std::string& alias,
                                    std::vector<ExprPtr>* pushdown);
  Result<OperatorPtr> PlanJoinTree(const TableRef& tref);

  /// Joins the comma-list FROM entries using classified WHERE conjuncts.
  Result<OperatorPtr> JoinFromEntries(std::vector<OperatorPtr> inputs,
                                      std::vector<ExprPtr> conjuncts);

  Result<OperatorPtr> PlanAggregation(OperatorPtr input, SelectStmt* stmt);

  ExecContext* ctx_;
  PlannerOptions options_;
};

/// Splits a predicate into its AND-ed conjuncts (clones).
void SplitConjuncts(const Expr& pred, std::vector<ExprPtr>* out);

/// Rebuilds a conjunction from parts (null if empty).
ExprPtr CombineConjuncts(std::vector<ExprPtr> parts);

/// True if `e` (excluding subquery bodies) contains a column reference
/// resolvable in `schema`.
bool ReferencesSchema(const Expr& e, const Schema& schema);

/// True if `e` (excluding subquery bodies) contains any column reference.
bool ContainsAnyColumnRef(const Expr& e);

/// In-place promotion of parsed FunctionCall nodes whose name is registered
/// as an aggregate in `catalog` into AggregateCall nodes. Applied by the
/// QueryEngine to a clone of the statement before planning.
void PromoteAggregateCalls(ExprPtr* e, const Catalog& catalog);

}  // namespace aggify
