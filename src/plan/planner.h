// Planner: SelectStmt -> physical operator tree.
//
// Optimizations applied (each has an ablation toggle in
// EngineOptions::planner / ::execution):
//  * predicate pushdown: single-relation WHERE conjuncts run at the scans
//  * index selection: `col = <no-column expr>` on an indexed column of a
//    base table becomes an IndexSeek (parameterized by variables, which is
//    what makes repeated cursor-query invocation index-driven)
//  * equi-join detection: cross-relation `a.x = b.y` conjuncts drive greedy
//    left-deep HashJoin ordering; remaining predicates become residual
//    filters or NLJ predicates
//  * aggregate placement: HashAggregate by default; StreamAggregate when the
//    statement carries the Eq. 6 enforcement flag or any aggregate is
//    order-sensitive; Gather → ParallelPartialAgg when
//    execution.degree_of_parallelism > 1 and the aggregation is provably
//    safe to partition (every aggregate SupportsMerge() + ParallelSafe(),
//    morselizable input, parallel-safe expressions)
#pragma once

#include "common/engine_options.h"
#include "exec/operators.h"
#include "parser/query_ast.h"

namespace aggify {

class Planner {
 public:
  explicit Planner(ExecContext* ctx, const EngineOptions& options = {})
      : ctx_(ctx), options_(options) {}

  /// Plans `stmt` (whose CTEs must already be bound in the context by the
  /// QueryEngine). The statement is not mutated.
  Result<OperatorPtr> Plan(const SelectStmt& stmt);

 private:
  struct FromEntry {
    OperatorPtr op;
    std::string name;  // effective alias for diagnostics
  };

  Result<OperatorPtr> PlanBody(const SelectStmt& stmt);
  Result<OperatorPtr> PlanTableRef(const TableRef& tref);
  Result<OperatorPtr> PlanBaseTable(const std::string& table_name,
                                    const std::string& alias,
                                    std::vector<ExprPtr>* pushdown);
  Result<OperatorPtr> PlanJoinTree(const TableRef& tref);

  /// Joins the comma-list FROM entries using classified WHERE conjuncts.
  Result<OperatorPtr> JoinFromEntries(std::vector<OperatorPtr> inputs,
                                      std::vector<ExprPtr> conjuncts);

  Result<OperatorPtr> PlanAggregation(OperatorPtr input, SelectStmt* stmt);

  ExecContext* ctx_;
  EngineOptions options_;
};

/// Splits a predicate into its AND-ed conjuncts (clones).
void SplitConjuncts(const Expr& pred, std::vector<ExprPtr>* out);

/// Rebuilds a conjunction from parts (null if empty).
ExprPtr CombineConjuncts(std::vector<ExprPtr> parts);

/// True if `e` (excluding subquery bodies) contains a column reference
/// resolvable in `schema`.
bool ReferencesSchema(const Expr& e, const Schema& schema);

/// True if `e` (excluding subquery bodies) contains any column reference.
bool ContainsAnyColumnRef(const Expr& e);

/// In-place promotion of parsed FunctionCall nodes whose name is registered
/// as an aggregate in `catalog` into AggregateCall nodes. Applied by the
/// QueryEngine to a clone of the statement before planning.
void PromoteAggregateCalls(ExprPtr* e, const Catalog& catalog);

}  // namespace aggify
