#include "plan/planner.h"

#include <algorithm>

#include "common/string_util.h"
#include "exec/eval.h"
#include "storage/table.h"

namespace aggify {

void SplitConjuncts(const Expr& pred, std::vector<ExprPtr>* out) {
  if (pred.kind == ExprKind::kBinary) {
    const auto& bin = static_cast<const BinaryExpr&>(pred);
    if (bin.op == BinaryOp::kAnd) {
      SplitConjuncts(*bin.left, out);
      SplitConjuncts(*bin.right, out);
      return;
    }
  }
  out->push_back(pred.Clone());
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> parts) {
  if (parts.empty()) return nullptr;
  ExprPtr acc = std::move(parts[0]);
  for (size_t i = 1; i < parts.size(); ++i) {
    acc = MakeBinary(BinaryOp::kAnd, std::move(acc), std::move(parts[i]));
  }
  return acc;
}

bool ReferencesSchema(const Expr& e, const Schema& schema) {
  bool found = false;
  e.Walk([&](const Expr& node) {
    if (node.kind == ExprKind::kColumnRef) {
      if (schema.IndexOf(static_cast<const ColumnRefExpr&>(node).name).ok()) {
        found = true;
      }
    }
  });
  return found;
}

bool ContainsAnyColumnRef(const Expr& e) {
  bool found = false;
  e.Walk([&](const Expr& node) {
    if (node.kind == ExprKind::kColumnRef) found = true;
  });
  return found;
}

void PromoteAggregateCalls(ExprPtr* e, const Catalog& catalog) {
  if (*e == nullptr) return;
  if ((*e)->kind == ExprKind::kFunctionCall) {
    auto* call = static_cast<FunctionCallExpr*>(e->get());
    for (auto& a : call->args) PromoteAggregateCalls(&a, catalog);
    if (catalog.HasAggregate(call->name)) {
      auto agg = std::make_unique<AggregateCallExpr>(call->name,
                                                     std::move(call->args));
      *e = std::move(agg);
    }
    return;
  }
  // Generic recursion over owning children.
  switch ((*e)->kind) {
    case ExprKind::kUnary:
      PromoteAggregateCalls(&static_cast<UnaryExpr*>(e->get())->operand,
                            catalog);
      break;
    case ExprKind::kBinary: {
      auto* bin = static_cast<BinaryExpr*>(e->get());
      PromoteAggregateCalls(&bin->left, catalog);
      PromoteAggregateCalls(&bin->right, catalog);
      break;
    }
    case ExprKind::kAggregateCall: {
      auto* agg = static_cast<AggregateCallExpr*>(e->get());
      for (auto& a : agg->args) PromoteAggregateCalls(&a, catalog);
      break;
    }
    case ExprKind::kInList: {
      auto* in = static_cast<InListExpr*>(e->get());
      PromoteAggregateCalls(&in->operand, catalog);
      for (auto& item : in->list) PromoteAggregateCalls(&item, catalog);
      break;
    }
    case ExprKind::kIsNull:
      PromoteAggregateCalls(&static_cast<IsNullExpr*>(e->get())->operand,
                            catalog);
      break;
    case ExprKind::kCaseWhen: {
      auto* cw = static_cast<CaseWhenExpr*>(e->get());
      for (auto& arm : cw->arms) {
        PromoteAggregateCalls(&arm.condition, catalog);
        PromoteAggregateCalls(&arm.result, catalog);
      }
      if (cw->else_result != nullptr) {
        PromoteAggregateCalls(&cw->else_result, catalog);
      }
      break;
    }
    case ExprKind::kCast:
      PromoteAggregateCalls(&static_cast<CastExpr*>(e->get())->operand,
                            catalog);
      break;
    default:
      break;
  }
}

namespace {

/// Collects pointers to every AggregateCallExpr in an owning expression,
/// replacing each with a ColumnRef to its generated output column.
void ExtractAggregates(ExprPtr* e,
                       std::vector<std::unique_ptr<AggregateCallExpr>>* out) {
  if (*e == nullptr) return;
  if ((*e)->kind == ExprKind::kAggregateCall) {
    std::string col_name = "__agg_" + std::to_string(out->size());
    out->emplace_back(static_cast<AggregateCallExpr*>(e->release()));
    *e = MakeColumnRef(col_name);
    return;
  }
  switch ((*e)->kind) {
    case ExprKind::kUnary:
      ExtractAggregates(&static_cast<UnaryExpr*>(e->get())->operand, out);
      break;
    case ExprKind::kBinary: {
      auto* bin = static_cast<BinaryExpr*>(e->get());
      ExtractAggregates(&bin->left, out);
      ExtractAggregates(&bin->right, out);
      break;
    }
    case ExprKind::kInList: {
      auto* in = static_cast<InListExpr*>(e->get());
      ExtractAggregates(&in->operand, out);
      for (auto& item : in->list) ExtractAggregates(&item, out);
      break;
    }
    case ExprKind::kIsNull:
      ExtractAggregates(&static_cast<IsNullExpr*>(e->get())->operand, out);
      break;
    case ExprKind::kCaseWhen: {
      auto* cw = static_cast<CaseWhenExpr*>(e->get());
      for (auto& arm : cw->arms) {
        ExtractAggregates(&arm.condition, out);
        ExtractAggregates(&arm.result, out);
      }
      if (cw->else_result != nullptr) ExtractAggregates(&cw->else_result, out);
      break;
    }
    case ExprKind::kCast:
      ExtractAggregates(&static_cast<CastExpr*>(e->get())->operand, out);
      break;
    case ExprKind::kFunctionCall: {
      auto* call = static_cast<FunctionCallExpr*>(e->get());
      for (auto& a : call->args) ExtractAggregates(&a, out);
      break;
    }
    default:
      break;
  }
}

/// Replaces subexpressions that textually match a GROUP BY expression with a
/// reference to the group output column.
void ReplaceGroupExprs(ExprPtr* e,
                       const std::vector<std::pair<std::string, std::string>>&
                           group_repr_to_col) {
  if (*e == nullptr) return;
  std::string repr = (*e)->ToString();
  for (const auto& [grp_repr, col] : group_repr_to_col) {
    if (repr == grp_repr) {
      *e = MakeColumnRef(col);
      return;
    }
  }
  switch ((*e)->kind) {
    case ExprKind::kUnary:
      ReplaceGroupExprs(&static_cast<UnaryExpr*>(e->get())->operand,
                        group_repr_to_col);
      break;
    case ExprKind::kBinary: {
      auto* bin = static_cast<BinaryExpr*>(e->get());
      ReplaceGroupExprs(&bin->left, group_repr_to_col);
      ReplaceGroupExprs(&bin->right, group_repr_to_col);
      break;
    }
    case ExprKind::kFunctionCall: {
      auto* call = static_cast<FunctionCallExpr*>(e->get());
      for (auto& a : call->args) ReplaceGroupExprs(&a, group_repr_to_col);
      break;
    }
    case ExprKind::kCaseWhen: {
      auto* cw = static_cast<CaseWhenExpr*>(e->get());
      for (auto& arm : cw->arms) {
        ReplaceGroupExprs(&arm.condition, group_repr_to_col);
        ReplaceGroupExprs(&arm.result, group_repr_to_col);
      }
      if (cw->else_result != nullptr) {
        ReplaceGroupExprs(&cw->else_result, group_repr_to_col);
      }
      break;
    }
    case ExprKind::kCast:
      ReplaceGroupExprs(&static_cast<CastExpr*>(e->get())->operand,
                        group_repr_to_col);
      break;
    case ExprKind::kIsNull:
      ReplaceGroupExprs(&static_cast<IsNullExpr*>(e->get())->operand,
                        group_repr_to_col);
      break;
    case ExprKind::kInList: {
      auto* in = static_cast<InListExpr*>(e->get());
      ReplaceGroupExprs(&in->operand, group_repr_to_col);
      for (auto& item : in->list) ReplaceGroupExprs(&item, group_repr_to_col);
      break;
    }
    default:
      break;
  }
}

/// Output column name for a select item.
std::string OutputName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return ToLower(item.alias);
  if (item.expr->kind == ExprKind::kColumnRef) {
    const std::string& n = static_cast<const ColumnRefExpr&>(*item.expr).name;
    auto dot = n.find('.');
    return ToLower(dot == std::string::npos ? n : n.substr(dot + 1));
  }
  return "__col_" + std::to_string(index);
}

bool IsEquality(const Expr& e, const Expr** left, const Expr** right) {
  if (e.kind != ExprKind::kBinary) return false;
  const auto& bin = static_cast<const BinaryExpr&>(e);
  if (bin.op != BinaryOp::kEq) return false;
  *left = bin.left.get();
  *right = bin.right.get();
  return true;
}

}  // namespace

Result<OperatorPtr> Planner::Plan(const SelectStmt& stmt) {
  if (stmt.union_all != nullptr) {
    std::vector<OperatorPtr> branches;
    const SelectStmt* cur = &stmt;
    while (cur != nullptr) {
      // Plan each branch without its union chain.
      auto branch = cur->Clone();
      branch->union_all.reset();
      ASSIGN_OR_RETURN(OperatorPtr op, PlanBody(*branch));
      branches.push_back(std::move(op));
      cur = cur->union_all.get();
    }
    return OperatorPtr(std::make_unique<UnionAllOp>(std::move(branches)));
  }
  return PlanBody(stmt);
}

Result<OperatorPtr> Planner::PlanBody(const SelectStmt& stmt_in) {
  // Work on a clone: aggregate extraction and binding mutate the tree.
  auto stmt_owned = stmt_in.Clone();
  SelectStmt* stmt = stmt_owned.get();
  PromoteAggregateCalls(&stmt->where, ctx_->catalog());
  for (auto& item : stmt->items) PromoteAggregateCalls(&item.expr, ctx_->catalog());
  PromoteAggregateCalls(&stmt->having, ctx_->catalog());

  // ---- FROM ----
  OperatorPtr input;
  std::vector<ExprPtr> conjuncts;
  if (stmt->where != nullptr) SplitConjuncts(*stmt->where, &conjuncts);

  if (stmt->from.empty()) {
    // SELECT without FROM: single empty row.
    auto rows = std::make_shared<std::vector<Row>>();
    rows->push_back(Row{});
    input = std::make_unique<RowsScanOp>(Schema{}, rows, "dual");
  } else {
    std::vector<OperatorPtr> entries;
    for (const auto& tref : stmt->from) {
      ASSIGN_OR_RETURN(OperatorPtr op, PlanTableRef(*tref));
      entries.push_back(std::move(op));
    }
    ASSIGN_OR_RETURN(input,
                     JoinFromEntries(std::move(entries), std::move(conjuncts)));
    conjuncts.clear();
  }
  // Residual WHERE (no-FROM case).
  if (!conjuncts.empty()) {
    ExprPtr pred = CombineConjuncts(std::move(conjuncts));
    BindColumns(pred.get(), input->schema());
    input = std::make_unique<FilterOp>(std::move(input), std::move(pred));
  }

  // ---- aggregation ----
  bool has_aggs = stmt->HasGroupBy();
  if (!has_aggs) {
    for (const auto& item : stmt->items) {
      if (ContainsAggregateCall(*item.expr)) has_aggs = true;
    }
    if (stmt->having != nullptr && ContainsAggregateCall(*stmt->having)) {
      has_aggs = true;
    }
  }
  if (has_aggs) {
    ASSIGN_OR_RETURN(input, PlanAggregation(std::move(input), stmt));
  }

  // ---- HAVING (post-aggregation filter) ----
  if (stmt->having != nullptr) {
    BindColumns(stmt->having.get(), input->schema());
    input = std::make_unique<FilterOp>(std::move(input),
                                       std::move(stmt->having));
  }

  // ---- projection ----
  Schema out_schema;
  bool projected = false;
  if (!stmt->select_star) {
    std::vector<ExprPtr> exprs;
    for (size_t i = 0; i < stmt->items.size(); ++i) {
      out_schema.AddColumn(Column(OutputName(stmt->items[i], i),
                                  DataType(TypeId::kNull)));
      BindColumns(stmt->items[i].expr.get(), input->schema());
      exprs.push_back(std::move(stmt->items[i].expr));
    }
    // Decide ORDER BY placement before consuming the input: if every order
    // expression resolves against the projected schema, sort above; else
    // sort below the projection.
    bool order_above = true;
    for (const auto& o : stmt->order_by) {
      std::vector<std::string> cols;
      CollectColumnRefs(*o.expr, &cols);
      for (const auto& c : cols) {
        if (!out_schema.Contains(c)) order_above = false;
      }
    }
    if (!stmt->order_by.empty() && !order_above) {
      std::vector<SortKey> keys;
      for (auto& o : stmt->order_by) {
        BindColumns(o.expr.get(), input->schema());
        keys.push_back(SortKey{std::move(o.expr), o.descending});
      }
      stmt->order_by.clear();
      input = std::make_unique<SortOp>(std::move(input), std::move(keys));
    }
    input = std::make_unique<ProjectOp>(std::move(input), std::move(exprs),
                                        std::move(out_schema));
    projected = true;
  }
  AGGIFY_UNUSED(projected);

  // ---- DISTINCT ----
  if (stmt->distinct) {
    input = std::make_unique<DistinctOp>(std::move(input));
  }

  // ---- ORDER BY (above projection) ----
  if (!stmt->order_by.empty()) {
    std::vector<SortKey> keys;
    for (auto& o : stmt->order_by) {
      BindColumns(o.expr.get(), input->schema());
      keys.push_back(SortKey{std::move(o.expr), o.descending});
    }
    input = std::make_unique<SortOp>(std::move(input), std::move(keys));
  }

  // ---- TOP ----
  if (stmt->top_n != nullptr) {
    input = std::make_unique<TopNOp>(std::move(input), std::move(stmt->top_n));
  }

  return input;
}

Result<OperatorPtr> Planner::PlanTableRef(const TableRef& tref) {
  switch (tref.kind) {
    case TableRef::Kind::kBaseTable:
      return PlanBaseTable(tref.table_name, tref.EffectiveName(), nullptr);
    case TableRef::Kind::kSubquery: {
      // Derived tables with their own WITH clause need CTE binding, which
      // only the executor performs: evaluate and scan.
      if (!tref.subquery->ctes.empty()) {
        ASSIGN_OR_RETURN(QueryResult sub, ctx_->ExecuteSubquery(*tref.subquery));
        auto rows = std::make_shared<std::vector<Row>>(std::move(sub.rows));
        Schema schema = tref.alias.empty()
                            ? sub.schema
                            : sub.schema.WithQualifier(tref.alias);
        return OperatorPtr(std::make_unique<RowsScanOp>(
            std::move(schema), std::move(rows),
            tref.alias.empty() ? "derived" : tref.alias));
      }
      // Otherwise derived tables are planned inline and stream through a
      // schema rename: `SELECT Agg(...) FROM (Q) q` executes as one pipeline
      // with no intermediate materialization (§6.2's key benefit).
      ASSIGN_OR_RETURN(OperatorPtr sub, Plan(*tref.subquery));
      Schema schema = tref.alias.empty()
                          ? sub->schema()
                          : sub->schema().WithQualifier(tref.alias);
      return OperatorPtr(
          std::make_unique<RenameOp>(std::move(sub), std::move(schema)));
    }
    case TableRef::Kind::kJoin:
      return PlanJoinTree(tref);
  }
  return Status::Internal("unknown TableRef kind");
}

Result<OperatorPtr> Planner::PlanBaseTable(const std::string& table_name,
                                           const std::string& alias,
                                           std::vector<ExprPtr>* pushdown) {
  // CTE binding takes precedence over catalog tables.
  if (const CteBinding* cte = ctx_->FindCte(table_name)) {
    auto rows = std::make_shared<std::vector<Row>>(*cte->rows);
    Schema schema = cte->schema.WithQualifier(alias);
    OperatorPtr op = std::make_unique<RowsScanOp>(std::move(schema),
                                                  std::move(rows), table_name);
    if (pushdown != nullptr && !pushdown->empty()) {
      ExprPtr pred = CombineConjuncts(std::move(*pushdown));
      pushdown->clear();
      BindColumns(pred.get(), op->schema());
      op = std::make_unique<FilterOp>(std::move(op), std::move(pred));
    }
    return op;
  }

  ASSIGN_OR_RETURN(Table * table, ctx_->catalog().GetTable(table_name));

  // Index selection: find a `col = expr-without-columns` conjunct on an
  // indexed column.
  ExprPtr seek_key;
  const HashIndex* seek_index = nullptr;
  if (options_.planner.enable_index_seek && pushdown != nullptr) {
    Schema qualified = table->schema().WithQualifier(alias);
    for (auto& conj : *pushdown) {
      if (conj == nullptr) continue;
      const Expr* l = nullptr;
      const Expr* r = nullptr;
      if (!IsEquality(*conj, &l, &r)) continue;
      auto try_side = [&](const Expr* col_side, const Expr* key_side) -> bool {
        if (col_side->kind != ExprKind::kColumnRef) return false;
        if (ContainsAnyColumnRef(*key_side)) return false;
        const auto& col = static_cast<const ColumnRefExpr&>(*col_side);
        auto idx = qualified.IndexOf(col.name);
        if (!idx.ok()) return false;
        const std::string& base = qualified.column(*idx).name;
        const HashIndex* hi = table->FindIndex(base);
        if (hi == nullptr) return false;
        seek_index = hi;
        seek_key = key_side->Clone();
        return true;
      };
      if (try_side(l, r) || try_side(r, l)) {
        conj.reset();  // consumed
        break;
      }
    }
    pushdown->erase(std::remove(pushdown->begin(), pushdown->end(), nullptr),
                    pushdown->end());
  }

  OperatorPtr op;
  if (seek_index != nullptr) {
    op = std::make_unique<IndexSeekOp>(table, alias, seek_index,
                                       std::move(seek_key));
  } else {
    op = std::make_unique<SeqScanOp>(table, alias);
  }
  if (pushdown != nullptr && !pushdown->empty()) {
    ExprPtr pred = CombineConjuncts(std::move(*pushdown));
    pushdown->clear();
    BindColumns(pred.get(), op->schema());
    op = std::make_unique<FilterOp>(std::move(op), std::move(pred));
  }
  return op;
}

Result<OperatorPtr> Planner::PlanJoinTree(const TableRef& tref) {
  ASSIGN_OR_RETURN(OperatorPtr left, PlanTableRef(*tref.left));
  ASSIGN_OR_RETURN(OperatorPtr right, PlanTableRef(*tref.right));
  bool left_outer = tref.join_type == JoinType::kLeft;

  if (tref.join_condition != nullptr && options_.planner.enable_hash_join) {
    // Split ON into equi keys + residual.
    std::vector<ExprPtr> conjuncts;
    SplitConjuncts(*tref.join_condition, &conjuncts);
    std::vector<ExprPtr> lkeys, rkeys, residual;
    for (auto& c : conjuncts) {
      const Expr* l = nullptr;
      const Expr* r = nullptr;
      bool used = false;
      if (IsEquality(*c, &l, &r)) {
        bool l_left = ReferencesSchema(*l, left->schema());
        bool l_right = ReferencesSchema(*l, right->schema());
        bool r_left = ReferencesSchema(*r, left->schema());
        bool r_right = ReferencesSchema(*r, right->schema());
        if (l_left && !l_right && r_right && !r_left) {
          lkeys.push_back(l->Clone());
          rkeys.push_back(r->Clone());
          used = true;
        } else if (r_left && !r_right && l_right && !l_left) {
          lkeys.push_back(r->Clone());
          rkeys.push_back(l->Clone());
          used = true;
        }
      }
      if (!used) residual.push_back(std::move(c));
    }
    if (!lkeys.empty()) {
      for (auto& k : lkeys) BindColumns(k.get(), left->schema());
      for (auto& k : rkeys) BindColumns(k.get(), right->schema());
      ExprPtr res = CombineConjuncts(std::move(residual));
      Schema joined = Schema::Concat(left->schema(), right->schema());
      if (res != nullptr) BindColumns(res.get(), joined);
      return OperatorPtr(std::make_unique<HashJoinOp>(
          std::move(left), std::move(right), std::move(lkeys),
          std::move(rkeys), left_outer, std::move(res)));
    }
  }
  ExprPtr pred = tref.join_condition != nullptr ? tref.join_condition->Clone()
                                                : nullptr;
  if (pred != nullptr) {
    Schema joined = Schema::Concat(left->schema(), right->schema());
    BindColumns(pred.get(), joined);
  }
  return OperatorPtr(std::make_unique<NestedLoopJoinOp>(
      std::move(left), std::move(right), std::move(pred), left_outer));
}

Result<OperatorPtr> Planner::JoinFromEntries(std::vector<OperatorPtr> inputs,
                                             std::vector<ExprPtr> conjuncts) {
  // Classify conjuncts: for each, which inputs does it reference?
  // Single-input conjuncts are pushed down; cross-input equalities become
  // hash-join keys; the rest are residual filters on top.
  const size_t n = inputs.size();

  if (!options_.planner.enable_predicate_pushdown && n == 1) {
    OperatorPtr op = std::move(inputs[0]);
    if (!conjuncts.empty()) {
      ExprPtr pred = CombineConjuncts(std::move(conjuncts));
      BindColumns(pred.get(), op->schema());
      op = std::make_unique<FilterOp>(std::move(op), std::move(pred));
    }
    return op;
  }

  // Push single-relation conjuncts (and index seeks) into base inputs.
  // Because base tables were already planned, we instead layer filters here
  // unless the input is a SeqScan we can replace. To keep things simple and
  // still index-driven, we re-classify: conjuncts referencing exactly one
  // input become that input's filter.
  std::vector<std::vector<ExprPtr>> per_input(n);
  std::vector<ExprPtr> cross;
  for (auto& c : conjuncts) {
    int owner = -1;
    int count = 0;
    for (size_t i = 0; i < n; ++i) {
      if (ReferencesSchema(*c, inputs[i]->schema())) {
        ++count;
        owner = static_cast<int>(i);
      }
    }
    if (count == 1 && options_.planner.enable_predicate_pushdown) {
      per_input[owner].push_back(std::move(c));
    } else if (count == 0 && options_.planner.enable_predicate_pushdown && n > 0) {
      // References only variables/outer columns: cheapest at the first input.
      per_input[0].push_back(std::move(c));
    } else {
      cross.push_back(std::move(c));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (per_input[i].empty()) continue;
    // Try to convert a SeqScan + eq-conjunct into an IndexSeek.
    ExprPtr pred = CombineConjuncts(std::move(per_input[i]));
    std::vector<ExprPtr> parts;
    SplitConjuncts(*pred, &parts);
    // Index conversion: only when the input is a bare SeqScan.
    auto* seq = dynamic_cast<SeqScanOp*>(inputs[i].get());
    if (seq != nullptr && options_.planner.enable_index_seek) {
      // Rebuild via PlanBaseTable to get seek selection.
      // Recover table name and alias from the scan's schema qualifier.
      const Schema& s = inputs[i]->schema();
      std::string alias = s.num_columns() > 0 ? s.column(0).qualifier : "";
      std::string tname;
      {
        // SeqScan table name from Describe(): "SeqScan(name)".
        std::string d = inputs[i]->Describe();
        tname = d.substr(8, d.size() - 9);
      }
      ASSIGN_OR_RETURN(OperatorPtr rebuilt,
                       PlanBaseTable(tname, alias, &parts));
      inputs[i] = std::move(rebuilt);
    } else {
      ExprPtr combined = CombineConjuncts(std::move(parts));
      BindColumns(combined.get(), inputs[i]->schema());
      inputs[i] = std::make_unique<FilterOp>(std::move(inputs[i]),
                                             std::move(combined));
    }
  }

  // Greedy left-deep join using cross equalities.
  std::vector<bool> joined(n, false);
  OperatorPtr acc = std::move(inputs[0]);
  joined[0] = true;
  size_t remaining = n - 1;
  while (remaining > 0) {
    // Find a candidate connected to `acc` by at least one equi conjunct.
    int pick = -1;
    std::vector<size_t> key_conjuncts;
    for (size_t cand = 0; cand < n && pick < 0; ++cand) {
      if (joined[cand]) continue;
      key_conjuncts.clear();
      for (size_t ci = 0; ci < cross.size(); ++ci) {
        if (cross[ci] == nullptr) continue;
        const Expr* l = nullptr;
        const Expr* r = nullptr;
        if (!IsEquality(*cross[ci], &l, &r)) continue;
        bool l_acc = ReferencesSchema(*l, acc->schema());
        bool l_cand = ReferencesSchema(*l, inputs[cand]->schema());
        bool r_acc = ReferencesSchema(*r, acc->schema());
        bool r_cand = ReferencesSchema(*r, inputs[cand]->schema());
        if ((l_acc && !l_cand && r_cand && !r_acc) ||
            (r_acc && !r_cand && l_cand && !l_acc)) {
          key_conjuncts.push_back(ci);
        }
      }
      if (!key_conjuncts.empty()) pick = static_cast<int>(cand);
    }
    if (pick < 0) {
      // No connectable input: cross join with the first unjoined one.
      for (size_t cand = 0; cand < n; ++cand) {
        if (!joined[cand]) {
          pick = static_cast<int>(cand);
          break;
        }
      }
      acc = std::make_unique<NestedLoopJoinOp>(std::move(acc),
                                               std::move(inputs[pick]),
                                               nullptr, /*left_outer=*/false);
    } else if (options_.planner.enable_hash_join) {
      std::vector<ExprPtr> lkeys, rkeys;
      for (size_t ci : key_conjuncts) {
        const Expr* l = nullptr;
        const Expr* r = nullptr;
        IsEquality(*cross[ci], &l, &r);
        if (ReferencesSchema(*l, acc->schema())) {
          lkeys.push_back(l->Clone());
          rkeys.push_back(r->Clone());
        } else {
          lkeys.push_back(r->Clone());
          rkeys.push_back(l->Clone());
        }
        cross[ci].reset();
      }
      for (auto& k : lkeys) BindColumns(k.get(), acc->schema());
      for (auto& k : rkeys) BindColumns(k.get(), inputs[pick]->schema());
      acc = std::make_unique<HashJoinOp>(std::move(acc),
                                         std::move(inputs[pick]),
                                         std::move(lkeys), std::move(rkeys),
                                         /*left_outer=*/false, nullptr);
    } else {
      std::vector<ExprPtr> preds;
      for (size_t ci : key_conjuncts) {
        preds.push_back(std::move(cross[ci]));
        cross[ci].reset();
      }
      ExprPtr pred = CombineConjuncts(std::move(preds));
      Schema joined_schema =
          Schema::Concat(acc->schema(), inputs[pick]->schema());
      BindColumns(pred.get(), joined_schema);
      acc = std::make_unique<NestedLoopJoinOp>(std::move(acc),
                                               std::move(inputs[pick]),
                                               std::move(pred),
                                               /*left_outer=*/false);
    }
    joined[pick] = true;
    --remaining;
  }

  // Residual cross conjuncts.
  std::vector<ExprPtr> residual;
  for (auto& c : cross) {
    if (c != nullptr) residual.push_back(std::move(c));
  }
  if (!residual.empty()) {
    ExprPtr pred = CombineConjuncts(std::move(residual));
    BindColumns(pred.get(), acc->schema());
    acc = std::make_unique<FilterOp>(std::move(acc), std::move(pred));
  }
  return acc;
}

Result<OperatorPtr> Planner::PlanAggregation(OperatorPtr input,
                                             SelectStmt* stmt) {
  // Extract aggregate calls from the select list and HAVING.
  std::vector<std::unique_ptr<AggregateCallExpr>> agg_calls;
  for (auto& item : stmt->items) ExtractAggregates(&item.expr, &agg_calls);
  if (stmt->having != nullptr) ExtractAggregates(&stmt->having, &agg_calls);

  // Group-by columns: name them; select-list references to the same
  // expression text are rewritten to the group column.
  std::vector<std::pair<std::string, std::string>> group_map;
  Schema out_schema;
  std::vector<ExprPtr> group_exprs;
  for (size_t i = 0; i < stmt->group_by.size(); ++i) {
    std::string col_name;
    if (stmt->group_by[i]->kind == ExprKind::kColumnRef) {
      const std::string& n =
          static_cast<const ColumnRefExpr&>(*stmt->group_by[i]).name;
      auto dot = n.find('.');
      col_name = ToLower(dot == std::string::npos ? n : n.substr(dot + 1));
    } else {
      col_name = "__grp_" + std::to_string(i);
    }
    group_map.emplace_back(stmt->group_by[i]->ToString(), col_name);
    out_schema.AddColumn(Column(col_name, DataType(TypeId::kNull)));
    BindColumns(stmt->group_by[i].get(), input->schema());
    group_exprs.push_back(std::move(stmt->group_by[i]));
  }
  stmt->group_by.clear();
  for (auto& item : stmt->items) ReplaceGroupExprs(&item.expr, group_map);
  if (stmt->having != nullptr) ReplaceGroupExprs(&stmt->having, group_map);
  for (auto& o : stmt->order_by) ReplaceGroupExprs(&o.expr, group_map);

  // Build aggregate specs.
  std::vector<AggregateSpec> specs;
  bool order_sensitive = false;
  for (size_t i = 0; i < agg_calls.size(); ++i) {
    AggregateSpec spec;
    auto& call = agg_calls[i];
    if (call->distinct) {
      return Status::NotSupported("DISTINCT aggregates are not supported");
    }
    if (call->is_star) {
      ASSIGN_OR_RETURN(spec.function, MakeCountStarAggregate());
    } else if (ctx_->catalog().HasAggregate(call->name)) {
      ASSIGN_OR_RETURN(spec.function, ctx_->catalog().GetAggregate(call->name));
    } else {
      ASSIGN_OR_RETURN(spec.function, MakeBuiltinAggregate(call->name));
    }
    order_sensitive = order_sensitive || spec.function->IsOrderSensitive();
    for (auto& a : call->args) {
      BindColumns(a.get(), input->schema());
      spec.args.push_back(std::move(a));
    }
    spec.output_name = "__agg_" + std::to_string(i);
    out_schema.AddColumn(Column(spec.output_name, DataType(TypeId::kNull)));
    specs.push_back(std::move(spec));
  }

  bool use_stream = stmt->force_stream_aggregate || order_sensitive;
  if (use_stream) {
    if (!group_exprs.empty()) {
      // Streamed grouping needs clustered input; enforce with a sort on the
      // group expressions.
      std::vector<SortKey> keys;
      for (const auto& g : group_exprs) {
        keys.push_back(SortKey{g->Clone(), false});
      }
      input = std::make_unique<SortOp>(std::move(input), std::move(keys));
    }
    return OperatorPtr(std::make_unique<StreamAggregateOp>(
        std::move(input), std::move(group_exprs), std::move(specs),
        std::move(out_schema)));
  }
  // Hash aggregation consumes its input unordered, so a Sort feeding it —
  // e.g. a derived table's leftover ORDER BY — does no semantic work and is
  // spliced out (directly or through the derived table's Rename). A TopN
  // between aggregate and Sort depends on the order and blocks the splice.
  if (auto* sort = dynamic_cast<SortOp*>(input.get())) {
    input = sort->TakeChild();
  } else if (auto* rename = dynamic_cast<RenameOp*>(input.get())) {
    if (auto* inner = dynamic_cast<SortOp*>(rename->mutable_child().get())) {
      rename->mutable_child() = inner->TakeChild();
    }
  }
  // Vectorized pipeline opt-in (docs/VECTORIZATION.md): batches are
  // produced by base-table scans, so the input must be a morselizable
  // pipeline, and the fold kernels need every aggregate argument and group
  // expression to be a bound column reference. Anything else keeps the
  // row-at-a-time path; results are bit-identical either way.
  const bool use_batch = [&]() {
    if (!options_.execution.enable_batch) return false;
    auto all_colrefs = [](const std::vector<ExprPtr>& exprs) {
      for (const auto& e : exprs) {
        if (e == nullptr || e->kind != ExprKind::kColumnRef ||
            static_cast<const ColumnRefExpr&>(*e).bound_index < 0) {
          return false;
        }
      }
      return true;
    };
    if (!all_colrefs(group_exprs)) return false;
    for (const auto& spec : specs) {
      if (!all_colrefs(spec.args)) return false;
    }
    MorselPipeline pipeline;
    return ExtractMorselPipeline(*input, &pipeline);
  }();
  // Scan-column pruning for the batch pipeline (docs/VECTORIZATION.md):
  // walk the morsel pipeline top-down collecting the bound column indices
  // each level actually reads — aggregate arguments and group keys at the
  // top, then through projections (a pure shuffle pins only consumed
  // outputs; a row-wise projection evaluates everything) and filters down
  // to the scan. Unreferenced base-table columns then skip the per-batch
  // unboxing copy, which is where wide tables spend their scan time.
  std::vector<bool> batch_scan_columns;
  if (use_batch) {
    MorselPipeline pipeline;
    ExtractMorselPipeline(*input, &pipeline);  // proven extractable above
    auto mark = [](const Expr& e, std::vector<bool>* needed) {
      e.Walk([needed](const Expr& node) {
        if (node.kind == ExprKind::kColumnRef) {
          const int idx = static_cast<const ColumnRefExpr&>(node).bound_index;
          if (idx >= 0 && idx < static_cast<int>(needed->size())) {
            (*needed)[static_cast<size_t>(idx)] = true;
          }
        }
      });
    };
    const Schema* top_schema = pipeline.steps.empty()
                                   ? pipeline.scan_schema
                                   : pipeline.steps.back().out_schema;
    std::vector<bool> needed(top_schema->num_columns(), false);
    for (const auto& g : group_exprs) mark(*g, &needed);
    for (const auto& spec : specs) {
      for (const auto& a : spec.args) mark(*a, &needed);
    }
    for (auto it = pipeline.steps.rbegin(); it != pipeline.steps.rend();
         ++it) {
      if (it->project != nullptr) {
        bool shuffle = true;
        for (const auto& e : *it->project) {
          if (e->kind != ExprKind::kColumnRef ||
              static_cast<const ColumnRefExpr&>(*e).bound_index < 0) {
            shuffle = false;
          }
        }
        std::vector<bool> in_needed(it->in_schema->num_columns(), false);
        for (size_t o = 0; o < it->project->size(); ++o) {
          if (shuffle && (o >= needed.size() || !needed[o])) continue;
          mark(*(*it->project)[o], &in_needed);
        }
        needed = std::move(in_needed);
      } else {
        mark(*it->filter, &needed);  // filters pass their schema through
      }
    }
    batch_scan_columns = std::move(needed);
    // Hand the mask to the scan feeding the serial batch pipeline. The
    // planner owns the tree; children() is const-qualified for consumers.
    for (Operator* cur = input.get(); cur != nullptr;) {
      if (auto* scan = dynamic_cast<SeqScanOp*>(cur)) {
        scan->set_batch_columns(batch_scan_columns);
        break;
      }
      auto kids = cur->children();
      cur = kids.size() == 1 ? const_cast<Operator*>(kids[0]) : nullptr;
    }
  }
  // Parallel fragment selection: split the aggregation into
  // Gather(dop) → ParallelPartialAgg when it is provably safe —
  //  * every aggregate has a proven Merge (§3.1) AND never re-enters the
  //    engine from a worker thread (ParallelSafe),
  //  * every group expression is parallel-safe,
  //  * the input is a morselizable base-table pipeline whose own
  //    expressions are parallel-safe (ExtractMorselPipeline).
  // Order-enforced (Eq. 6) plans never reach this point: they took the
  // StreamAggregate branch above and stay serial.
  const int dop = options_.execution.degree_of_parallelism;
  if (dop > 1) {
    bool safe = true;
    for (const auto& spec : specs) {
      if (!spec.function->SupportsMerge() || !spec.function->ParallelSafe()) {
        safe = false;
      }
      for (const auto& a : spec.args) {
        if (!ExprIsParallelSafe(*a)) safe = false;
      }
    }
    for (const auto& g : group_exprs) {
      if (!ExprIsParallelSafe(*g)) safe = false;
    }
    MorselPipeline pipeline;
    if (safe && ExtractMorselPipeline(*input, &pipeline)) {
      auto partial = std::make_unique<ParallelPartialAggOp>(
          std::move(input), std::move(group_exprs), std::move(specs),
          std::move(out_schema), dop, options_.execution.morsel_rows);
      partial->set_use_batch(use_batch);
      partial->set_batch_columns(batch_scan_columns);
      return OperatorPtr(
          std::make_unique<GatherOp>(std::move(partial), dop));
    }
  }
  auto agg = std::make_unique<HashAggregateOp>(
      std::move(input), std::move(group_exprs), std::move(specs),
      std::move(out_schema));
  agg->set_use_batch(use_batch);
  return OperatorPtr(std::move(agg));
}

}  // namespace aggify
