#include "client/remote_interpreter.h"

#include <algorithm>
#include <string>

#include "common/failpoint.h"

namespace aggify {

RemoteInterpreter::RemoteInterpreter(const QueryEngine* engine,
                                     NetworkModel model, RetryPolicy retry)
    : Interpreter(engine),
      model_(model.Clamped()),
      retry_(retry),
      fault_rng_(model_.fault_seed),
      jitter_rng_(retry_.jitter_seed) {
  if (retry_.max_attempts < 1) retry_.max_attempts = 1;
}

Status RemoteInterpreter::AttemptRoundTrip(const char* site) {
  AGGIFY_FAILPOINT(site);
  if (model_.drop_probability > 0.0 &&
      fault_rng_.NextDouble() < model_.drop_probability) {
    ++stats_.drops;
    return Status::Timeout(std::string("simulated packet drop at ") + site);
  }
  return Status::OK();
}

Status RemoteInterpreter::RoundTripWithRetry(const char* site) {
  Status st = Status::OK();
  for (int attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (attempt > 0) {
      // The re-sent message is a round trip of its own, preceded by backoff.
      ++stats_.retries;
      ++stats_.round_trips;
      stats_.backoff_ms += JitteredBackoffMs(RawBackoffMs(retry_, attempt),
                                             jitter_rng_.NextDouble());
    }
    st = AttemptRoundTrip(site);
    if (st.ok()) return st;
    if (st.IsTimeout()) ++stats_.timeouts;
    if (!st.IsRetryable()) return st;
  }
  return Status::Unavailable(std::string(site) + " failed after " +
                             std::to_string(retry_.max_attempts) +
                             " attempts: " + st.message());
}

Result<QueryResult> RemoteInterpreter::RunCursorQuery(const SelectStmt& query,
                                                      ExecContext& ctx) {
  // Statement send + server execution. Rows stream back per fetch.
  ++stats_.statements_sent;
  ++stats_.round_trips;
  stats_.bytes_to_server += StatementBytes(query);
  RETURN_NOT_OK(RoundTripWithRetry("client.statement"));
  ASSIGN_OR_RETURN(QueryResult result, Interpreter::RunCursorQuery(query, ctx));
  pending_fetch_rows_ = 0;
  return result;
}

Status RemoteInterpreter::OnCursorFetch(const Schema& schema, const Row& row) {
  AGGIFY_UNUSED(row);
  // One round trip per fetch batch. `<=` guards against a batch counter
  // driven negative by a degenerate fetch size (the ctor clamps the model,
  // so rows_per_fetch >= 1 always refills it to a positive value).
  if (pending_fetch_rows_ <= 0) {
    ++stats_.round_trips;
    stats_.bytes_to_client += model_.per_message_bytes;
    RETURN_NOT_OK(RoundTripWithRetry("client.fetch"));
    pending_fetch_rows_ = model_.rows_per_fetch;
  }
  --pending_fetch_rows_;
  ++stats_.rows_transferred;
  stats_.bytes_to_client += schema.RowWireSize();
  return Status::OK();
}

Result<QueryResult> RemoteInterpreter::RunQuery(const SelectStmt& query,
                                                ExecContext& ctx) {
  ++stats_.statements_sent;
  ++stats_.round_trips;
  stats_.bytes_to_server += StatementBytes(query);
  RETURN_NOT_OK(RoundTripWithRetry("client.statement"));
  ASSIGN_OR_RETURN(QueryResult result, Interpreter::RunQuery(query, ctx));
  stats_.bytes_to_client += model_.per_message_bytes;
  stats_.bytes_to_client +=
      static_cast<int64_t>(result.rows.size()) * result.schema.RowWireSize();
  stats_.rows_transferred += static_cast<int64_t>(result.rows.size());
  return result;
}

int64_t RemoteInterpreter::StatementBytes(const SelectStmt& query) const {
  return model_.per_message_bytes +
         static_cast<int64_t>(query.ToString().size());
}

}  // namespace aggify
