// ClientApp: runs a client program (dialect block) against a database over
// the simulated network, reporting wall time, simulated network time, and
// data-movement statistics — the measurement harness behind Figs. 9(b),
// 10(b), 10(c).
#pragma once

#include <chrono>
#include <memory>

#include "client/remote_interpreter.h"
#include "parser/parser.h"
#include "procedural/context_factory.h"

namespace aggify {

struct ClientRunResult {
  /// Variables after the run (program outputs).
  std::shared_ptr<VariableEnv> env;
  NetworkStats network;
  /// Local wall-clock seconds of the run (server + client compute).
  double compute_seconds = 0;
  /// Simulated network seconds for the run.
  double network_seconds = 0;

  double TotalSeconds() const { return compute_seconds + network_seconds; }
};

class ClientApp {
 public:
  ClientApp(Database* db, NetworkModel model = {},
            const EngineOptions& options = {})
      : db_(db),
        model_(model),
        engine_(db, options),
        interpreter_(&engine_, model),
        server_interpreter_(&engine_) {}

  Database* db() const { return db_; }
  const QueryEngine& engine() const { return engine_; }
  RemoteInterpreter& interpreter() { return interpreter_; }

  /// \brief Runs a parsed client program block.
  Result<ClientRunResult> Run(const BlockStmt& program);

  /// \brief Parses and runs a client program.
  Result<ClientRunResult> RunSql(const std::string& program);

 private:
  Database* db_;
  NetworkModel model_;
  QueryEngine engine_;
  RemoteInterpreter interpreter_;
  /// Serves UDF invocations reached from inside queries (server-side).
  Interpreter server_interpreter_;
};

}  // namespace aggify
