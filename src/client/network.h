// Network model for client applications (the paper's Java/JDBC experiments).
//
// The original programs iterate over query results on the client: every row
// crosses the network, and row-at-a-time fetching pays a round trip per
// batch. Aggify pushes the loop into the DBMS, so only the final value
// crosses. §10.6 measures exactly this; the model makes it deterministic.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace aggify {

struct NetworkModel {
  /// Round-trip latency in milliseconds (LAN default).
  double rtt_ms = 0.5;
  /// Bandwidth in megabits/second.
  double bandwidth_mbps = 1000.0;
  /// Rows delivered per fetch round trip (JDBC default fetch size is
  /// row-at-a-time for forward-only cursors; drivers batch more).
  int64_t rows_per_fetch = 1;
  /// Fixed per-message protocol overhead in bytes.
  int64_t per_message_bytes = 32;
  /// Probability that a round trip is dropped and surfaces as a timeout.
  /// 0 keeps the network fault-free (the default for all measurements).
  double drop_probability = 0.0;
  /// Seed for the deterministic fault draw, so lossy-network runs replay.
  uint64_t fault_seed = 0x5EED;

  /// Rejects models that cannot drive the simulation: a non-positive fetch
  /// size would stall (or run the batch counter negative), and non-positive
  /// latency/bandwidth make SimulatedSeconds meaningless.
  Status Validate() const {
    if (rows_per_fetch < 1) {
      return Status::InvalidArgument("rows_per_fetch must be >= 1");
    }
    if (rtt_ms <= 0.0) return Status::InvalidArgument("rtt_ms must be > 0");
    if (bandwidth_mbps <= 0.0) {
      return Status::InvalidArgument("bandwidth_mbps must be > 0");
    }
    if (drop_probability < 0.0 || drop_probability > 1.0) {
      return Status::InvalidArgument("drop_probability must be in [0, 1]");
    }
    return Status::OK();
  }

  /// Copy with every invalid field forced back to its nearest legal value.
  NetworkModel Clamped() const {
    NetworkModel m = *this;
    if (m.rows_per_fetch < 1) m.rows_per_fetch = 1;
    if (m.rtt_ms <= 0.0) m.rtt_ms = 0.5;
    if (m.bandwidth_mbps <= 0.0) m.bandwidth_mbps = 1000.0;
    if (m.drop_probability < 0.0) m.drop_probability = 0.0;
    if (m.drop_probability > 1.0) m.drop_probability = 1.0;
    return m;
  }
};

/// Bounded-retry policy for client round trips (exponential backoff with
/// deterministic jitter). `max_attempts` counts the first try.
struct RetryPolicy {
  int max_attempts = 4;
  double base_backoff_ms = 1.0;
  double max_backoff_ms = 64.0;
  uint64_t jitter_seed = 0xB0FF;
};

/// Raw exponential backoff before attempt `attempt` (1-based count of
/// re-sends): base * 2^(attempt-1), capped at the policy maximum.
inline double RawBackoffMs(const RetryPolicy& policy, int attempt) {
  double backoff = policy.base_backoff_ms;
  for (int i = 1; i < attempt && backoff < policy.max_backoff_ms; ++i) {
    backoff *= 2.0;
  }
  return backoff < policy.max_backoff_ms ? backoff : policy.max_backoff_ms;
}

/// Applies jitter to a raw backoff: a `draw` in [0, 1) maps onto
/// [raw/2, raw) — half the delay is guaranteed (keeps backoff meaningful),
/// the other half decorrelates concurrent clients. Deterministic per draw,
/// so seeded runs replay.
inline double JitteredBackoffMs(double raw_backoff_ms, double draw) {
  return raw_backoff_ms * (0.5 + 0.5 * draw);
}

struct NetworkStats {
  int64_t round_trips = 0;
  int64_t bytes_to_client = 0;
  int64_t bytes_to_server = 0;
  int64_t rows_transferred = 0;
  int64_t statements_sent = 0;
  /// Round trips that failed and were re-sent.
  int64_t retries = 0;
  /// Failures from the model's drop_probability draw.
  int64_t drops = 0;
  /// Failed attempts that surfaced as timeouts (drops + injected timeouts).
  int64_t timeouts = 0;
  /// Total simulated backoff spent between retry attempts.
  double backoff_ms = 0.0;

  void Reset() { *this = NetworkStats{}; }

  int64_t TotalBytes() const { return bytes_to_client + bytes_to_server; }

  /// Simulated network time: latency per round trip + transfer time +
  /// retry backoff.
  double SimulatedSeconds(const NetworkModel& model) const {
    double latency = static_cast<double>(round_trips) * model.rtt_ms / 1e3;
    double transfer = static_cast<double>(TotalBytes()) * 8.0 /
                      (model.bandwidth_mbps * 1e6);
    return latency + transfer + backoff_ms / 1e3;
  }

  std::string ToString() const;
};

}  // namespace aggify
