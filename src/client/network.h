// Network model for client applications (the paper's Java/JDBC experiments).
//
// The original programs iterate over query results on the client: every row
// crosses the network, and row-at-a-time fetching pays a round trip per
// batch. Aggify pushes the loop into the DBMS, so only the final value
// crosses. §10.6 measures exactly this; the model makes it deterministic.
#pragma once

#include <cstdint>
#include <string>

namespace aggify {

struct NetworkModel {
  /// Round-trip latency in milliseconds (LAN default).
  double rtt_ms = 0.5;
  /// Bandwidth in megabits/second.
  double bandwidth_mbps = 1000.0;
  /// Rows delivered per fetch round trip (JDBC default fetch size is
  /// row-at-a-time for forward-only cursors; drivers batch more).
  int64_t rows_per_fetch = 1;
  /// Fixed per-message protocol overhead in bytes.
  int64_t per_message_bytes = 32;
};

struct NetworkStats {
  int64_t round_trips = 0;
  int64_t bytes_to_client = 0;
  int64_t bytes_to_server = 0;
  int64_t rows_transferred = 0;
  int64_t statements_sent = 0;

  void Reset() { *this = NetworkStats{}; }

  int64_t TotalBytes() const { return bytes_to_client + bytes_to_server; }

  /// Simulated network time: latency per round trip + transfer time.
  double SimulatedSeconds(const NetworkModel& model) const {
    double latency = static_cast<double>(round_trips) * model.rtt_ms / 1e3;
    double transfer = static_cast<double>(TotalBytes()) * 8.0 /
                      (model.bandwidth_mbps * 1e6);
    return latency + transfer;
  }

  std::string ToString() const;
};

}  // namespace aggify
