#include "client/client_app.h"

namespace aggify {

std::string NetworkStats::ToString() const {
  std::string out =
      "round_trips=" + std::to_string(round_trips) +
      " bytes_to_client=" + std::to_string(bytes_to_client) +
      " bytes_to_server=" + std::to_string(bytes_to_server) +
      " rows=" + std::to_string(rows_transferred) +
      " statements=" + std::to_string(statements_sent);
  if (retries > 0 || drops > 0 || timeouts > 0) {
    out += " retries=" + std::to_string(retries) +
           " drops=" + std::to_string(drops) +
           " timeouts=" + std::to_string(timeouts) +
           " backoff_ms=" + std::to_string(backoff_ms);
  }
  return out;
}

Result<ClientRunResult> ClientApp::Run(const BlockStmt& program) {
  ClientRunResult result;
  result.env = std::make_shared<VariableEnv>();

  // UDFs invoked from within queries run server-side: plain interpreter
  // semantics, no network accounting — so the wired context routes them
  // through a server-side interpreter, not the remote one.
  ExecContext ctx = MakeWiredContext(engine_, &server_interpreter_);
  ctx.set_vars(result.env.get());

  interpreter_.stats().Reset();
  auto start = std::chrono::steady_clock::now();
  ASSIGN_OR_RETURN(Value v,
                   interpreter_.ExecuteBlock(program, result.env.get(), ctx));
  AGGIFY_UNUSED(v);
  auto end = std::chrono::steady_clock::now();

  result.compute_seconds =
      std::chrono::duration<double>(end - start).count();
  result.network = interpreter_.stats();
  result.network_seconds = result.network.SimulatedSeconds(model_);
  return result;
}

Result<ClientRunResult> ClientApp::RunSql(const std::string& program) {
  ASSIGN_OR_RETURN(StmtPtr block, ParseStatements(program));
  return Run(static_cast<const BlockStmt&>(*block));
}

}  // namespace aggify
