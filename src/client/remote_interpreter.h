// RemoteInterpreter: executes a client program against a "remote" database.
//
// Control flow (loops, variables, arithmetic) runs on the client for free;
// every query is a statement sent to the server (1 round trip), and cursor
// iteration streams the result set to the client one fetch-batch at a time —
// the Figure 2 execution model. Aggify-rewritten programs instead ship one
// query and receive one row.
//
// Round trips can fail: via the model's drop_probability (a deterministic,
// seeded draw per round trip) or via the `client.statement` / `client.fetch`
// failpoints. Failed retryable round trips are re-sent under an exponential
// backoff-with-jitter RetryPolicy; exhausting the policy surfaces
// StatusCode::kUnavailable to the program. See docs/ROBUSTNESS.md.
#pragma once

#include "client/network.h"
#include "common/random.h"
#include "procedural/interpreter.h"

namespace aggify {

class RemoteInterpreter : public Interpreter {
 public:
  /// Invalid models are clamped (see NetworkModel::Clamped); call
  /// model.Validate() first when rejection is preferable to repair.
  RemoteInterpreter(const QueryEngine* engine, NetworkModel model,
                    RetryPolicy retry = RetryPolicy{});

  const NetworkModel& model() const { return model_; }
  const RetryPolicy& retry_policy() const { return retry_; }
  NetworkStats& stats() { return stats_; }
  const NetworkStats& stats() const { return stats_; }

 protected:
  Result<QueryResult> RunCursorQuery(const SelectStmt& query,
                                     ExecContext& ctx) override;

  Status OnCursorFetch(const Schema& schema, const Row& row) override;

  Result<QueryResult> RunQuery(const SelectStmt& query,
                               ExecContext& ctx) override;

 private:
  /// One send attempt at `site`: fires the failpoint, then the model's
  /// drop draw. OK means the message made it.
  Status AttemptRoundTrip(const char* site);

  /// Sends until success or the retry policy is exhausted. Each re-send
  /// costs one extra round trip plus simulated backoff; exhaustion returns
  /// kUnavailable carrying the last failure's message.
  Status RoundTripWithRetry(const char* site);

  int64_t StatementBytes(const SelectStmt& query) const;

  NetworkModel model_;
  RetryPolicy retry_;
  NetworkStats stats_;
  Random fault_rng_;
  Random jitter_rng_;
  int64_t pending_fetch_rows_ = 0;
};

}  // namespace aggify
