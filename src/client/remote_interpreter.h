// RemoteInterpreter: executes a client program against a "remote" database.
//
// Control flow (loops, variables, arithmetic) runs on the client for free;
// every query is a statement sent to the server (1 round trip), and cursor
// iteration streams the result set to the client one fetch-batch at a time —
// the Figure 2 execution model. Aggify-rewritten programs instead ship one
// query and receive one row.
#pragma once

#include "client/network.h"
#include "procedural/interpreter.h"

namespace aggify {

class RemoteInterpreter : public Interpreter {
 public:
  RemoteInterpreter(const QueryEngine* engine, NetworkModel model)
      : Interpreter(engine), model_(model) {}

  const NetworkModel& model() const { return model_; }
  NetworkStats& stats() { return stats_; }
  const NetworkStats& stats() const { return stats_; }

 protected:
  Result<QueryResult> RunCursorQuery(const SelectStmt& query,
                                     ExecContext& ctx) override {
    // Statement send + server execution. Rows stream back per fetch.
    ++stats_.statements_sent;
    ++stats_.round_trips;
    stats_.bytes_to_server += StatementBytes(query);
    ASSIGN_OR_RETURN(QueryResult result, Interpreter::RunCursorQuery(query, ctx));
    pending_fetch_rows_ = 0;
    return result;
  }

  void OnCursorFetch(const Schema& schema, const Row& row) override {
    ++stats_.rows_transferred;
    stats_.bytes_to_client += schema.RowWireSize();
    // One round trip per fetch batch.
    if (pending_fetch_rows_ == 0) {
      ++stats_.round_trips;
      stats_.bytes_to_client += model_.per_message_bytes;
      pending_fetch_rows_ = model_.rows_per_fetch;
    }
    --pending_fetch_rows_;
  }

  Result<QueryResult> RunQuery(const SelectStmt& query,
                               ExecContext& ctx) override {
    ++stats_.statements_sent;
    ++stats_.round_trips;
    stats_.bytes_to_server += StatementBytes(query);
    ASSIGN_OR_RETURN(QueryResult result, Interpreter::RunQuery(query, ctx));
    stats_.bytes_to_client += model_.per_message_bytes;
    stats_.bytes_to_client +=
        static_cast<int64_t>(result.rows.size()) * result.schema.RowWireSize();
    stats_.rows_transferred += static_cast<int64_t>(result.rows.size());
    return result;
  }

 private:
  int64_t StatementBytes(const SelectStmt& query) const {
    return model_.per_message_bytes +
           static_cast<int64_t>(query.ToString().size());
  }

  NetworkModel model_;
  NetworkStats stats_;
  int64_t pending_fetch_rows_ = 0;
};

}  // namespace aggify
