#include "parser/parser.h"

#include <unordered_set>

#include "common/string_util.h"

namespace aggify {

namespace {

// Keywords that terminate an implicit alias or a statement list.
const std::unordered_set<std::string>& ReservedWords() {
  static const std::unordered_set<std::string> kWords = {
      "select", "from",  "where",  "group",  "order",  "having", "top",
      "join",   "inner", "left",   "cross",  "on",     "as",     "and",
      "or",     "not",   "in",     "is",     "null",   "exists", "union",
      "all",    "with",  "distinct", "case", "when",   "then",   "else",
      "end",    "begin", "declare", "set",   "if",     "while",  "for",
      "open",   "fetch", "close",  "deallocate", "return", "break",
      "continue", "insert", "update", "delete", "values", "into",
      "cursor", "try",   "catch",  "create", "table",  "index",  "function",
      "procedure", "returns", "asc", "desc", "by", "between", "recursive",
      "to", "step", "like",
  };
  return kWords;
}

bool IsReserved(const std::string& word) {
  return ReservedWords().count(ToLower(word)) != 0;
}

const std::unordered_set<std::string>& BuiltinAggregateNames() {
  static const std::unordered_set<std::string> kNames = {
      "min", "max", "sum", "count", "avg", "count_big", "stdev", "var"};
  return kNames;
}

class ParserImpl {
 public:
  explicit ParserImpl(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  // --- token helpers ---
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AtEof() const { return Peek().kind == TokenKind::kEof; }

  bool MatchKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  bool MatchKind(TokenKind k) {
    if (Peek().kind == k) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!MatchKeyword(kw)) {
      return Error("expected keyword '" + std::string(kw) + "', got " +
                   Peek().Describe());
    }
    return Status::OK();
  }

  Status ExpectKind(TokenKind k, const char* what) {
    if (!MatchKind(k)) {
      return Error(std::string("expected ") + what + ", got " +
                   Peek().Describe());
    }
    return Status::OK();
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " (line " + std::to_string(Peek().line) +
                              ")");
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != TokenKind::kIdent) {
      return Error(std::string("expected ") + what + ", got " +
                   Peek().Describe());
    }
    return Advance().text;
  }

  // ---------- expressions ----------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (Peek().IsKeyword("or")) {
      Advance();
      ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (Peek().IsKeyword("and")) {
      Advance();
      ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (Peek().IsKeyword("not") && !Peek(1).IsKeyword("exists")) {
      Advance();
      ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return MakeUnary(UnaryOp::kNot, std::move(e));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    for (;;) {
      BinaryOp op;
      switch (Peek().kind) {
        case TokenKind::kEq: op = BinaryOp::kEq; break;
        case TokenKind::kNe: op = BinaryOp::kNe; break;
        case TokenKind::kLt: op = BinaryOp::kLt; break;
        case TokenKind::kLe: op = BinaryOp::kLe; break;
        case TokenKind::kGt: op = BinaryOp::kGt; break;
        case TokenKind::kGe: op = BinaryOp::kGe; break;
        default: {
          // IS [NOT] NULL
          if (Peek().IsKeyword("is")) {
            Advance();
            bool negated = MatchKeyword("not");
            RETURN_NOT_OK(ExpectKeyword("null"));
            left = std::make_unique<IsNullExpr>(std::move(left), negated);
            continue;
          }
          // [NOT] IN (...) / BETWEEN a AND b / LIKE pattern
          bool negated = false;
          if (Peek().IsKeyword("not") &&
              (Peek(1).IsKeyword("in") || Peek(1).IsKeyword("between") ||
               Peek(1).IsKeyword("like"))) {
            Advance();
            negated = true;
          }
          if (Peek().IsKeyword("like")) {
            Advance();
            ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
            // Desugars to the built-in like(subject, pattern).
            std::vector<ExprPtr> args;
            args.push_back(std::move(left));
            args.push_back(std::move(pattern));
            left = std::make_unique<FunctionCallExpr>("like", std::move(args));
            if (negated) left = MakeUnary(UnaryOp::kNot, std::move(left));
            continue;
          }
          if (Peek().IsKeyword("in")) {
            Advance();
            RETURN_NOT_OK(ExpectKind(TokenKind::kLParen, "'('"));
            if (Peek().IsKeyword("select") || Peek().IsKeyword("with")) {
              ASSIGN_OR_RETURN(auto sub, ParseSelectStmt());
              RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
              left = std::make_unique<InListExpr>(std::move(left),
                                                  std::move(sub), negated);
            } else {
              std::vector<ExprPtr> list;
              do {
                ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
                list.push_back(std::move(item));
              } while (MatchKind(TokenKind::kComma));
              RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
              left = std::make_unique<InListExpr>(std::move(left),
                                                  std::move(list), negated);
            }
            continue;
          }
          if (Peek().IsKeyword("between")) {
            Advance();
            ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
            RETURN_NOT_OK(ExpectKeyword("and"));
            ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
            ExprPtr ge = MakeBinary(BinaryOp::kGe, left->Clone(), std::move(lo));
            ExprPtr le = MakeBinary(BinaryOp::kLe, std::move(left), std::move(hi));
            left = MakeBinary(BinaryOp::kAnd, std::move(ge), std::move(le));
            if (negated) left = MakeUnary(UnaryOp::kNot, std::move(left));
            continue;
          }
          return left;
        }
      }
      Advance();
      ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseAdditive() {
    ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    for (;;) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kPlus) {
        op = BinaryOp::kAdd;
      } else if (Peek().kind == TokenKind::kMinus) {
        op = BinaryOp::kSub;
      } else if (Peek().kind == TokenKind::kConcat) {
        op = BinaryOp::kConcat;
      } else {
        return left;
      }
      Advance();
      ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    for (;;) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kStar) {
        op = BinaryOp::kMul;
      } else if (Peek().kind == TokenKind::kSlash) {
        op = BinaryOp::kDiv;
      } else if (Peek().kind == TokenKind::kPercent) {
        op = BinaryOp::kMod;
      } else {
        return left;
      }
      Advance();
      ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (MatchKind(TokenKind::kMinus)) {
      ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return MakeUnary(UnaryOp::kNeg, std::move(e));
    }
    if (MatchKind(TokenKind::kPlus)) {
      return ParseUnary();
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral:
        Advance();
        return MakeLiteral(Value::Int(t.int_value));
      case TokenKind::kFloatLiteral:
        Advance();
        return MakeLiteral(Value::Double(t.double_value));
      case TokenKind::kStringLiteral:
        Advance();
        return MakeLiteral(Value::String(t.text));
      case TokenKind::kVariable:
        Advance();
        return MakeVarRef(t.text);
      case TokenKind::kLParen: {
        Advance();
        if (Peek().IsKeyword("select") || Peek().IsKeyword("with")) {
          ASSIGN_OR_RETURN(auto sub, ParseSelectStmt());
          RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
          return std::make_unique<ScalarSubqueryExpr>(std::move(sub));
        }
        ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
        return e;
      }
      case TokenKind::kIdent:
        return ParseIdentExpr();
      default:
        return Error("unexpected token " + t.Describe() + " in expression");
    }
  }

  Result<ExprPtr> ParseIdentExpr() {
    const Token& t = Peek();
    // NULL literal / TRUE / FALSE.
    if (t.IsKeyword("null")) {
      Advance();
      return MakeLiteral(Value::Null());
    }
    if (t.IsKeyword("true")) {
      Advance();
      return MakeLiteral(Value::Bool(true));
    }
    if (t.IsKeyword("false")) {
      Advance();
      return MakeLiteral(Value::Bool(false));
    }
    // CASE WHEN ... THEN ... [ELSE ...] END.
    if (t.IsKeyword("case")) {
      Advance();
      std::vector<CaseWhenExpr::Arm> arms;
      while (MatchKeyword("when")) {
        CaseWhenExpr::Arm arm;
        ASSIGN_OR_RETURN(arm.condition, ParseExpr());
        RETURN_NOT_OK(ExpectKeyword("then"));
        ASSIGN_OR_RETURN(arm.result, ParseExpr());
        arms.push_back(std::move(arm));
      }
      if (arms.empty()) return Error("CASE requires at least one WHEN arm");
      ExprPtr else_result;
      if (MatchKeyword("else")) {
        ASSIGN_OR_RETURN(else_result, ParseExpr());
      }
      RETURN_NOT_OK(ExpectKeyword("end"));
      return std::make_unique<CaseWhenExpr>(std::move(arms),
                                            std::move(else_result));
    }
    // CAST(expr AS type).
    if (t.IsKeyword("cast")) {
      Advance();
      RETURN_NOT_OK(ExpectKind(TokenKind::kLParen, "'('"));
      ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      RETURN_NOT_OK(ExpectKeyword("as"));
      ASSIGN_OR_RETURN(DataType type, ParseType());
      RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
      return std::make_unique<CastExpr>(std::move(e), type);
    }
    // [NOT] EXISTS (SELECT ...).
    if (t.IsKeyword("exists") ||
        (t.IsKeyword("not") && Peek(1).IsKeyword("exists"))) {
      bool negated = t.IsKeyword("not");
      if (negated) Advance();
      Advance();  // exists
      RETURN_NOT_OK(ExpectKind(TokenKind::kLParen, "'('"));
      ASSIGN_OR_RETURN(auto sub, ParseSelectStmt());
      RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
      return std::make_unique<ExistsExpr>(std::move(sub), negated);
    }
    // Identifier: column ref, qualified column ref, or call.
    std::string name = Advance().text;
    if (Peek().kind == TokenKind::kDot) {
      Advance();
      ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name after '.'"));
      return MakeColumnRef(name + "." + col);
    }
    if (Peek().kind != TokenKind::kLParen) {
      return MakeColumnRef(name);
    }
    // Call.
    Advance();  // '('
    std::string lname = ToLower(name);
    bool is_builtin_agg = BuiltinAggregateNames().count(lname) != 0;
    if (is_builtin_agg && Peek().kind == TokenKind::kStar) {
      Advance();
      RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
      return std::make_unique<AggregateCallExpr>(lname, std::vector<ExprPtr>{},
                                                 /*star=*/true);
    }
    bool distinct = false;
    if (is_builtin_agg && Peek().IsKeyword("distinct")) {
      Advance();
      distinct = true;
    }
    std::vector<ExprPtr> args;
    if (Peek().kind != TokenKind::kRParen) {
      do {
        ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        args.push_back(std::move(arg));
      } while (MatchKind(TokenKind::kComma));
    }
    RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
    if (is_builtin_agg) {
      auto agg = std::make_unique<AggregateCallExpr>(lname, std::move(args));
      agg->distinct = distinct;
      return agg;
    }
    // Non-builtin calls parse as scalar FunctionCall; the binder promotes
    // names registered as aggregates in the catalog to AggregateCall.
    return std::make_unique<FunctionCallExpr>(lname, std::move(args));
  }

  // ---------- types ----------

  Result<DataType> ParseType() {
    ASSIGN_OR_RETURN(std::string name, ExpectIdent("type name"));
    int32_t width = 0, scale = 0;
    if (MatchKind(TokenKind::kLParen)) {
      if (Peek().kind != TokenKind::kIntLiteral) {
        return Error("expected integer width in type");
      }
      width = static_cast<int32_t>(Advance().int_value);
      if (MatchKind(TokenKind::kComma)) {
        if (Peek().kind != TokenKind::kIntLiteral) {
          return Error("expected integer scale in type");
        }
        scale = static_cast<int32_t>(Advance().int_value);
      }
      RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
    }
    return DataTypeFromName(name, width, scale);
  }

  // ---------- SELECT ----------

  Result<std::unique_ptr<SelectStmt>> ParseSelectStmt() {
    auto q = std::make_unique<SelectStmt>();
    // WITH [RECURSIVE] name [(cols)] AS (select) [, ...]
    if (MatchKeyword("with")) {
      bool recursive_kw = MatchKeyword("recursive");
      do {
        CteDef cte;
        cte.recursive = recursive_kw;
        ASSIGN_OR_RETURN(cte.name, ExpectIdent("CTE name"));
        if (MatchKind(TokenKind::kLParen)) {
          do {
            ASSIGN_OR_RETURN(std::string c, ExpectIdent("CTE column name"));
            cte.column_names.push_back(std::move(c));
          } while (MatchKind(TokenKind::kComma));
          RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
        }
        RETURN_NOT_OK(ExpectKeyword("as"));
        RETURN_NOT_OK(ExpectKind(TokenKind::kLParen, "'('"));
        ASSIGN_OR_RETURN(cte.query, ParseSelectStmt());
        RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
        // A CTE whose body references itself via UNION ALL is recursive even
        // without the keyword (T-SQL style).
        if (cte.query->union_all != nullptr) cte.recursive = true;
        q->ctes.push_back(std::move(cte));
      } while (MatchKind(TokenKind::kComma));
    }
    RETURN_NOT_OK(ExpectKeyword("select"));
    if (MatchKeyword("distinct")) q->distinct = true;
    if (MatchKeyword("top")) {
      if (MatchKind(TokenKind::kLParen)) {
        ASSIGN_OR_RETURN(q->top_n, ParseExpr());
        RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
      } else if (Peek().kind == TokenKind::kIntLiteral) {
        q->top_n = MakeLiteral(Value::Int(Advance().int_value));
      } else if (Peek().kind == TokenKind::kVariable) {
        q->top_n = MakeVarRef(Advance().text);
      } else {
        return Error("expected TOP count");
      }
    }
    // Select list.
    if (Peek().kind == TokenKind::kStar) {
      Advance();
      q->select_star = true;
    } else {
      do {
        SelectItem item;
        ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("as")) {
          ASSIGN_OR_RETURN(item.alias, ExpectIdent("alias"));
        } else if (Peek().kind == TokenKind::kIdent && !IsReserved(Peek().text)) {
          item.alias = Advance().text;
        }
        q->items.push_back(std::move(item));
      } while (MatchKind(TokenKind::kComma));
    }
    // FROM.
    if (MatchKeyword("from")) {
      do {
        ASSIGN_OR_RETURN(auto tref, ParseTableRef());
        q->from.push_back(std::move(tref));
      } while (MatchKind(TokenKind::kComma));
    }
    if (MatchKeyword("where")) {
      ASSIGN_OR_RETURN(q->where, ParseExpr());
    }
    if (Peek().IsKeyword("group")) {
      Advance();
      RETURN_NOT_OK(ExpectKeyword("by"));
      do {
        ASSIGN_OR_RETURN(ExprPtr g, ParseExpr());
        q->group_by.push_back(std::move(g));
      } while (MatchKind(TokenKind::kComma));
    }
    if (MatchKeyword("having")) {
      ASSIGN_OR_RETURN(q->having, ParseExpr());
    }
    if (Peek().IsKeyword("order")) {
      Advance();
      RETURN_NOT_OK(ExpectKeyword("by"));
      do {
        OrderItem item;
        ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("desc")) {
          item.descending = true;
        } else {
          MatchKeyword("asc");
        }
        q->order_by.push_back(std::move(item));
      } while (MatchKind(TokenKind::kComma));
    }
    if (Peek().IsKeyword("union")) {
      Advance();
      RETURN_NOT_OK(ExpectKeyword("all"));
      ASSIGN_OR_RETURN(q->union_all, ParseSelectStmt());
    }
    return q;
  }

  Result<std::unique_ptr<TableRef>> ParseTableRef() {
    ASSIGN_OR_RETURN(auto left, ParseTableRefPrimary());
    for (;;) {
      JoinType type;
      if (Peek().IsKeyword("join") || Peek().IsKeyword("inner")) {
        if (MatchKeyword("inner")) {
          RETURN_NOT_OK(ExpectKeyword("join"));
        } else {
          Advance();
        }
        type = JoinType::kInner;
      } else if (Peek().IsKeyword("left")) {
        Advance();
        MatchKeyword("outer");
        RETURN_NOT_OK(ExpectKeyword("join"));
        type = JoinType::kLeft;
      } else if (Peek().IsKeyword("cross")) {
        Advance();
        RETURN_NOT_OK(ExpectKeyword("join"));
        type = JoinType::kCross;
      } else {
        return left;
      }
      ASSIGN_OR_RETURN(auto right, ParseTableRefPrimary());
      ExprPtr on;
      if (type != JoinType::kCross) {
        RETURN_NOT_OK(ExpectKeyword("on"));
        ASSIGN_OR_RETURN(on, ParseExpr());
      }
      left = TableRef::Join(std::move(left), std::move(right), type,
                            std::move(on));
    }
  }

  Result<std::unique_ptr<TableRef>> ParseTableRefPrimary() {
    if (MatchKind(TokenKind::kLParen)) {
      ASSIGN_OR_RETURN(auto sub, ParseSelectStmt());
      RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
      std::string alias;
      MatchKeyword("as");
      if (Peek().kind == TokenKind::kIdent && !IsReserved(Peek().text)) {
        alias = Advance().text;
      }
      return TableRef::Derived(std::move(sub), std::move(alias));
    }
    // Table variables (@t) are valid FROM sources.
    if (Peek().kind == TokenKind::kVariable) {
      std::string name = Advance().text;
      std::string alias;
      if (MatchKeyword("as")) {
        ASSIGN_OR_RETURN(alias, ExpectIdent("alias"));
      } else if (Peek().kind == TokenKind::kIdent && !IsReserved(Peek().text)) {
        alias = Advance().text;
      }
      return TableRef::Base(std::move(name), std::move(alias));
    }
    ASSIGN_OR_RETURN(std::string name, ExpectIdent("table name"));
    std::string alias;
    if (MatchKeyword("as")) {
      ASSIGN_OR_RETURN(alias, ExpectIdent("alias"));
    } else if (Peek().kind == TokenKind::kIdent && !IsReserved(Peek().text)) {
      alias = Advance().text;
    }
    return TableRef::Base(std::move(name), std::move(alias));
  }

  // ---------- procedural statements ----------

  Result<StmtPtr> ParseStatement() {
    const size_t offset = Peek().offset;
    ASSIGN_OR_RETURN(StmtPtr s, ParseStatementImpl());
    s->source_offset = offset;
    return s;
  }

  Result<StmtPtr> ParseStatementImpl() {
    const Token& t = Peek();
    if (t.kind != TokenKind::kIdent) {
      return Error("expected statement, got " + t.Describe());
    }
    if (t.IsKeyword("begin")) {
      if (Peek(1).IsKeyword("try")) return ParseTryCatch();
      return ParseBlock();
    }
    if (t.IsKeyword("declare")) return ParseDeclare();
    if (t.IsKeyword("set")) return ParseSet();
    if (t.IsKeyword("if")) return ParseIf();
    if (t.IsKeyword("while")) return ParseWhile();
    if (t.IsKeyword("for")) return ParseFor();
    if (t.IsKeyword("open")) {
      Advance();
      ASSIGN_OR_RETURN(std::string name, ExpectIdent("cursor name"));
      MatchKind(TokenKind::kSemicolon);
      return std::make_unique<OpenCursorStmt>(ToLower(name));
    }
    if (t.IsKeyword("fetch")) return ParseFetch();
    if (t.IsKeyword("close")) {
      Advance();
      ASSIGN_OR_RETURN(std::string name, ExpectIdent("cursor name"));
      MatchKind(TokenKind::kSemicolon);
      return std::make_unique<CloseCursorStmt>(ToLower(name));
    }
    if (t.IsKeyword("deallocate")) {
      Advance();
      ASSIGN_OR_RETURN(std::string name, ExpectIdent("cursor name"));
      MatchKind(TokenKind::kSemicolon);
      return std::make_unique<DeallocateCursorStmt>(ToLower(name));
    }
    if (t.IsKeyword("return")) {
      Advance();
      ExprPtr value;
      if (Peek().kind != TokenKind::kSemicolon && !AtEof() &&
          !Peek().IsKeyword("end")) {
        ASSIGN_OR_RETURN(value, ParseExpr());
      }
      MatchKind(TokenKind::kSemicolon);
      return std::make_unique<ReturnStmt>(std::move(value));
    }
    if (t.IsKeyword("break")) {
      Advance();
      MatchKind(TokenKind::kSemicolon);
      return std::make_unique<BreakStmt>();
    }
    if (t.IsKeyword("continue")) {
      Advance();
      MatchKind(TokenKind::kSemicolon);
      return std::make_unique<ContinueStmt>();
    }
    if (t.IsKeyword("insert")) return ParseInsert();
    if (t.IsKeyword("update")) return ParseUpdate();
    if (t.IsKeyword("delete")) return ParseDelete();
    if (t.IsKeyword("select") || t.IsKeyword("with")) {
      ASSIGN_OR_RETURN(auto q, ParseSelectStmt());
      MatchKind(TokenKind::kSemicolon);
      return std::make_unique<ExecQueryStmt>(std::move(q));
    }
    return Error("unknown statement starting with " + t.Describe());
  }

  Result<StmtPtr> ParseBlock() {
    RETURN_NOT_OK(ExpectKeyword("begin"));
    auto block = std::make_unique<BlockStmt>();
    while (!Peek().IsKeyword("end")) {
      if (AtEof()) return Error("unterminated BEGIN block");
      ASSIGN_OR_RETURN(StmtPtr s, ParseStatement());
      block->statements.push_back(std::move(s));
    }
    Advance();  // END
    MatchKind(TokenKind::kSemicolon);
    return block;
  }

  Result<StmtPtr> ParseTryCatch() {
    RETURN_NOT_OK(ExpectKeyword("begin"));
    RETURN_NOT_OK(ExpectKeyword("try"));
    auto try_block = std::make_unique<BlockStmt>();
    while (!(Peek().IsKeyword("end") && Peek(1).IsKeyword("try"))) {
      if (AtEof()) return Error("unterminated BEGIN TRY");
      ASSIGN_OR_RETURN(StmtPtr s, ParseStatement());
      try_block->statements.push_back(std::move(s));
    }
    Advance();
    Advance();  // END TRY
    RETURN_NOT_OK(ExpectKeyword("begin"));
    RETURN_NOT_OK(ExpectKeyword("catch"));
    auto catch_block = std::make_unique<BlockStmt>();
    while (!(Peek().IsKeyword("end") && Peek(1).IsKeyword("catch"))) {
      if (AtEof()) return Error("unterminated BEGIN CATCH");
      ASSIGN_OR_RETURN(StmtPtr s, ParseStatement());
      catch_block->statements.push_back(std::move(s));
    }
    Advance();
    Advance();  // END CATCH
    MatchKind(TokenKind::kSemicolon);
    return std::make_unique<TryCatchStmt>(std::move(try_block),
                                          std::move(catch_block));
  }

  Result<StmtPtr> ParseDeclare() {
    RETURN_NOT_OK(ExpectKeyword("declare"));
    if (Peek().kind == TokenKind::kVariable) {
      // DECLARE @t TABLE (...) | DECLARE @x type [= expr][, @y type ...]
      if (Peek(1).IsKeyword("table")) {
        std::string name = Advance().text;
        Advance();  // TABLE
        ASSIGN_OR_RETURN(Schema schema, ParseColumnDefList());
        MatchKind(TokenKind::kSemicolon);
        return std::make_unique<DeclareTempTableStmt>(name, std::move(schema));
      }
      auto block = std::make_unique<BlockStmt>();
      do {
        if (Peek().kind != TokenKind::kVariable) {
          return Error("expected variable name in DECLARE");
        }
        std::string name = Advance().text;
        ASSIGN_OR_RETURN(DataType type, ParseType());
        ExprPtr init;
        if (MatchKind(TokenKind::kEq)) {
          ASSIGN_OR_RETURN(init, ParseExpr());
        }
        block->statements.push_back(
            std::make_unique<DeclareVarStmt>(name, type, std::move(init)));
      } while (MatchKind(TokenKind::kComma));
      MatchKind(TokenKind::kSemicolon);
      if (block->statements.size() == 1) {
        return std::move(block->statements[0]);
      }
      return block;
    }
    // DECLARE name CURSOR FOR select
    ASSIGN_OR_RETURN(std::string name, ExpectIdent("cursor name"));
    RETURN_NOT_OK(ExpectKeyword("cursor"));
    RETURN_NOT_OK(ExpectKeyword("for"));
    ASSIGN_OR_RETURN(auto q, ParseSelectStmt());
    MatchKind(TokenKind::kSemicolon);
    return std::make_unique<DeclareCursorStmt>(ToLower(name), std::move(q));
  }

  Result<Schema> ParseColumnDefList() {
    RETURN_NOT_OK(ExpectKind(TokenKind::kLParen, "'('"));
    Schema schema;
    do {
      ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
      ASSIGN_OR_RETURN(DataType type, ParseType());
      // Ignore column constraints we don't model.
      while (Peek().IsKeyword("primary") || Peek().IsKeyword("key") ||
             Peek().IsKeyword("not") || Peek().IsKeyword("null") ||
             Peek().IsKeyword("unique")) {
        Advance();
      }
      schema.AddColumn(Column(ToLower(col), type));
    } while (MatchKind(TokenKind::kComma));
    RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
    return schema;
  }

  Result<StmtPtr> ParseSet() {
    RETURN_NOT_OK(ExpectKeyword("set"));
    if (Peek().kind != TokenKind::kVariable) {
      return Error("expected variable after SET");
    }
    std::string name = Advance().text;
    RETURN_NOT_OK(ExpectKind(TokenKind::kEq, "'='"));
    ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
    MatchKind(TokenKind::kSemicolon);
    return std::make_unique<SetStmt>(name, std::move(value));
  }

  Result<StmtPtr> ParseIf() {
    RETURN_NOT_OK(ExpectKeyword("if"));
    ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
    ASSIGN_OR_RETURN(StmtPtr then_branch, ParseStatement());
    StmtPtr else_branch;
    if (MatchKeyword("else")) {
      ASSIGN_OR_RETURN(else_branch, ParseStatement());
    }
    return std::make_unique<IfStmt>(std::move(cond), std::move(then_branch),
                                    std::move(else_branch));
  }

  Result<StmtPtr> ParseWhile() {
    RETURN_NOT_OK(ExpectKeyword("while"));
    ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
    ASSIGN_OR_RETURN(StmtPtr body, ParseStatement());
    return std::make_unique<WhileStmt>(std::move(cond), std::move(body));
  }

  Result<StmtPtr> ParseFor() {
    RETURN_NOT_OK(ExpectKeyword("for"));
    if (Peek().kind != TokenKind::kVariable) {
      return Error("expected loop variable after FOR");
    }
    std::string var = Advance().text;
    RETURN_NOT_OK(ExpectKind(TokenKind::kEq, "'='"));
    ASSIGN_OR_RETURN(ExprPtr init, ParseExpr());
    RETURN_NOT_OK(ExpectKeyword("to"));
    ASSIGN_OR_RETURN(ExprPtr bound, ParseExpr());
    ExprPtr step;
    if (MatchKeyword("step")) {
      ASSIGN_OR_RETURN(step, ParseExpr());
    }
    ASSIGN_OR_RETURN(StmtPtr body, ParseStatement());
    return std::make_unique<ForStmt>(var, std::move(init), std::move(bound),
                                     std::move(step), std::move(body));
  }

  Result<StmtPtr> ParseFetch() {
    RETURN_NOT_OK(ExpectKeyword("fetch"));
    MatchKeyword("next");
    RETURN_NOT_OK(ExpectKeyword("from"));
    ASSIGN_OR_RETURN(std::string cursor, ExpectIdent("cursor name"));
    RETURN_NOT_OK(ExpectKeyword("into"));
    std::vector<std::string> vars;
    do {
      if (Peek().kind != TokenKind::kVariable) {
        return Error("expected variable in FETCH INTO");
      }
      vars.push_back(Advance().text);
    } while (MatchKind(TokenKind::kComma));
    MatchKind(TokenKind::kSemicolon);
    return std::make_unique<FetchStmt>(ToLower(cursor), std::move(vars));
  }

  Result<StmtPtr> ParseInsert() {
    RETURN_NOT_OK(ExpectKeyword("insert"));
    MatchKeyword("into");
    auto stmt = std::make_unique<InsertStmt>();
    if (Peek().kind == TokenKind::kVariable) {
      stmt->table = Advance().text;  // table variable @t
    } else {
      ASSIGN_OR_RETURN(stmt->table, ExpectIdent("table name"));
    }
    if (Peek().kind == TokenKind::kLParen &&
        !(Peek(1).IsKeyword("select") || Peek(1).IsKeyword("with"))) {
      Advance();
      do {
        ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
        stmt->columns.push_back(ToLower(col));
      } while (MatchKind(TokenKind::kComma));
      RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
    }
    if (MatchKeyword("values")) {
      do {
        RETURN_NOT_OK(ExpectKind(TokenKind::kLParen, "'('"));
        std::vector<ExprPtr> row;
        do {
          ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          row.push_back(std::move(e));
        } while (MatchKind(TokenKind::kComma));
        RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
        stmt->values_rows.push_back(std::move(row));
      } while (MatchKind(TokenKind::kComma));
    } else {
      ASSIGN_OR_RETURN(stmt->select, ParseSelectStmt());
    }
    MatchKind(TokenKind::kSemicolon);
    return stmt;
  }

  Result<StmtPtr> ParseUpdate() {
    RETURN_NOT_OK(ExpectKeyword("update"));
    auto stmt = std::make_unique<UpdateStmt>();
    if (Peek().kind == TokenKind::kVariable) {
      stmt->table = Advance().text;
    } else {
      ASSIGN_OR_RETURN(stmt->table, ExpectIdent("table name"));
    }
    RETURN_NOT_OK(ExpectKeyword("set"));
    do {
      ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
      RETURN_NOT_OK(ExpectKind(TokenKind::kEq, "'='"));
      ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->assignments.emplace_back(ToLower(col), std::move(e));
    } while (MatchKind(TokenKind::kComma));
    if (MatchKeyword("where")) {
      ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    MatchKind(TokenKind::kSemicolon);
    return stmt;
  }

  Result<StmtPtr> ParseDelete() {
    RETURN_NOT_OK(ExpectKeyword("delete"));
    MatchKeyword("from");
    auto stmt = std::make_unique<DeleteStmt>();
    if (Peek().kind == TokenKind::kVariable) {
      stmt->table = Advance().text;
    } else {
      ASSIGN_OR_RETURN(stmt->table, ExpectIdent("table name"));
    }
    if (MatchKeyword("where")) {
      ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    MatchKind(TokenKind::kSemicolon);
    return stmt;
  }

  // ---------- CREATE FUNCTION / PROCEDURE ----------

  Result<std::shared_ptr<FunctionDef>> ParseFunctionDef() {
    RETURN_NOT_OK(ExpectKeyword("create"));
    MatchKeyword("or");  // CREATE OR ALTER
    MatchKeyword("alter");
    auto def = std::make_shared<FunctionDef>();
    if (MatchKeyword("procedure") || MatchKeyword("proc")) {
      def->is_procedure = true;
    } else {
      RETURN_NOT_OK(ExpectKeyword("function"));
    }
    ASSIGN_OR_RETURN(def->name, ExpectIdent("function name"));
    def->name = ToLower(def->name);
    if (MatchKind(TokenKind::kLParen)) {
      if (Peek().kind != TokenKind::kRParen) {
        do {
          if (Peek().kind != TokenKind::kVariable) {
            return Error("expected parameter name");
          }
          FunctionDef::Param p;
          p.name = Advance().text;
          ASSIGN_OR_RETURN(p.type, ParseType());
          if (MatchKind(TokenKind::kEq)) {
            ASSIGN_OR_RETURN(p.default_value, ParseExpr());
          }
          def->params.push_back(std::move(p));
        } while (MatchKind(TokenKind::kComma));
      }
      RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
    }
    if (!def->is_procedure) {
      RETURN_NOT_OK(ExpectKeyword("returns"));
      ASSIGN_OR_RETURN(def->return_type, ParseType());
    }
    RETURN_NOT_OK(ExpectKeyword("as"));
    ASSIGN_OR_RETURN(StmtPtr body, ParseBlock());
    def->body.reset(static_cast<BlockStmt*>(body.release()));
    return def;
  }

  // ---------- script ----------

  Result<Script> ParseScriptBody() {
    Script script;
    while (!AtEof()) {
      if (MatchKind(TokenKind::kSemicolon)) continue;
      const Token& t = Peek();
      if (t.IsKeyword("create")) {
        const Token& what = Peek(1);
        if (what.IsKeyword("table")) {
          Advance();
          Advance();
          ScriptCommand cmd;
          cmd.kind = ScriptCommand::Kind::kCreateTable;
          ASSIGN_OR_RETURN(std::string name, ExpectIdent("table name"));
          cmd.table_name = ToLower(name);
          ASSIGN_OR_RETURN(cmd.schema, ParseColumnDefList());
          MatchKind(TokenKind::kSemicolon);
          script.commands.push_back(std::move(cmd));
          continue;
        }
        if (what.IsKeyword("index")) {
          Advance();
          Advance();
          ScriptCommand cmd;
          cmd.kind = ScriptCommand::Kind::kCreateIndex;
          ASSIGN_OR_RETURN(cmd.index_name, ExpectIdent("index name"));
          RETURN_NOT_OK(ExpectKeyword("on"));
          ASSIGN_OR_RETURN(std::string table, ExpectIdent("table name"));
          cmd.on_table = ToLower(table);
          RETURN_NOT_OK(ExpectKind(TokenKind::kLParen, "'('"));
          ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
          cmd.on_column = ToLower(col);
          RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
          MatchKind(TokenKind::kSemicolon);
          script.commands.push_back(std::move(cmd));
          continue;
        }
        // CREATE [OR ALTER] FUNCTION/PROCEDURE
        ScriptCommand cmd;
        cmd.kind = ScriptCommand::Kind::kCreateFunction;
        ASSIGN_OR_RETURN(cmd.function, ParseFunctionDef());
        script.commands.push_back(std::move(cmd));
        continue;
      }
      if (t.IsKeyword("insert")) {
        ScriptCommand cmd;
        cmd.kind = ScriptCommand::Kind::kInsert;
        ASSIGN_OR_RETURN(cmd.statement, ParseInsert());
        script.commands.push_back(std::move(cmd));
        continue;
      }
      if (t.IsKeyword("select") || t.IsKeyword("with")) {
        ScriptCommand cmd;
        cmd.kind = ScriptCommand::Kind::kSelect;
        ASSIGN_OR_RETURN(cmd.select, ParseSelectStmt());
        MatchKind(TokenKind::kSemicolon);
        script.commands.push_back(std::move(cmd));
        continue;
      }
      // Anything else is an anonymous procedural block.
      ScriptCommand cmd;
      cmd.kind = ScriptCommand::Kind::kBlock;
      auto block = std::make_unique<BlockStmt>();
      while (!AtEof() && !Peek().IsKeyword("create")) {
        if (MatchKind(TokenKind::kSemicolon)) continue;
        ASSIGN_OR_RETURN(StmtPtr s, ParseStatement());
        block->statements.push_back(std::move(s));
      }
      cmd.statement = std::move(block);
      script.commands.push_back(std::move(cmd));
    }
    return script;
  }

  Status ExpectEof() {
    if (!AtEof()) {
      return Error("unexpected trailing input: " + Peek().Describe());
    }
    return Status::OK();
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> ParseExpression(const std::string& text) {
  ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  ParserImpl p(std::move(tokens));
  ASSIGN_OR_RETURN(ExprPtr e, p.ParseExpr());
  RETURN_NOT_OK(p.ExpectEof());
  return e;
}

Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& text) {
  ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  ParserImpl p(std::move(tokens));
  ASSIGN_OR_RETURN(auto q, p.ParseSelectStmt());
  p.MatchKind(TokenKind::kSemicolon);
  RETURN_NOT_OK(p.ExpectEof());
  return q;
}

Result<StmtPtr> ParseStatements(const std::string& text) {
  ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  ParserImpl p(std::move(tokens));
  auto block = std::make_unique<BlockStmt>();
  while (!p.AtEof()) {
    if (p.MatchKind(TokenKind::kSemicolon)) continue;
    ASSIGN_OR_RETURN(StmtPtr s, p.ParseStatement());
    block->statements.push_back(std::move(s));
  }
  return StmtPtr(std::move(block));
}

Result<std::shared_ptr<FunctionDef>> ParseFunction(const std::string& text) {
  ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  ParserImpl p(std::move(tokens));
  ASSIGN_OR_RETURN(auto def, p.ParseFunctionDef());
  p.MatchKind(TokenKind::kSemicolon);
  RETURN_NOT_OK(p.ExpectEof());
  return def;
}

Result<Script> ParseScript(const std::string& text) {
  ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  ParserImpl p(std::move(tokens));
  return p.ParseScriptBody();
}

}  // namespace aggify
