// Expression AST of the dialect.
//
// Shared by the planner/executor (query expressions), the procedural
// interpreter (UDF bodies), and the Aggify analyses. Nodes are owned via
// unique_ptr and support deep Clone() (rewrites never mutate shared input)
// and ToString() (renders parseable dialect SQL, used when Aggify emits the
// synthesized aggregate and rewritten query as text).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "types/value.h"

namespace aggify {

struct SelectStmt;  // query_ast.h

enum class ExprKind : uint8_t {
  kLiteral,
  kColumnRef,
  kVarRef,
  kUnary,
  kBinary,
  kFunctionCall,
  kAggregateCall,
  kScalarSubquery,
  kExists,
  kInList,
  kIsNull,
  kCaseWhen,
  kCast,
};

enum class BinaryOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kConcat,
};

enum class UnaryOp : uint8_t { kNeg, kNot };

std::string BinaryOpToString(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;

  ExprKind kind;

  virtual ExprPtr Clone() const = 0;
  virtual std::string ToString() const = 0;

  /// Invokes `fn` on this node and every descendant expression (including
  /// expressions nested in subqueries is NOT done here; subquery bodies are
  /// opaque to this walk — the analyses that need them recurse explicitly).
  void Walk(const std::function<void(const Expr&)>& fn) const;

  /// Children of this node (non-owning), excluding subquery bodies.
  virtual std::vector<const Expr*> Children() const { return {}; }
  virtual std::vector<Expr*> MutableChildren() { return {}; }
};

struct LiteralExpr : Expr {
  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral), value(std::move(v)) {}
  Value value;
  ExprPtr Clone() const override;
  std::string ToString() const override;
};

/// A column reference, e.g. `ps_supplycost` or `Q.s_name`.
struct ColumnRefExpr : Expr {
  explicit ColumnRefExpr(std::string n)
      : Expr(ExprKind::kColumnRef), name(std::move(n)) {}
  std::string name;  ///< possibly qualified ("alias.col")
  /// Resolved positional index against the operator's input schema; -1 when
  /// unbound (the evaluator then falls back to name lookup).
  int bound_index = -1;
  ExprPtr Clone() const override;
  std::string ToString() const override { return name; }
};

/// A procedural variable reference, e.g. `@minCost` or `@@FETCH_STATUS`.
struct VarRefExpr : Expr {
  explicit VarRefExpr(std::string n)
      : Expr(ExprKind::kVarRef), name(std::move(n)) {}
  std::string name;  ///< lowercase, includes the leading '@' ("@mincost")
  ExprPtr Clone() const override;
  std::string ToString() const override { return name; }
};

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp o, ExprPtr e)
      : Expr(ExprKind::kUnary), op(o), operand(std::move(e)) {}
  UnaryOp op;
  ExprPtr operand;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  std::vector<const Expr*> Children() const override { return {operand.get()}; }
  std::vector<Expr*> MutableChildren() override { return {operand.get()}; }
};

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kBinary), op(o), left(std::move(l)), right(std::move(r)) {}
  BinaryOp op;
  ExprPtr left;
  ExprPtr right;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  std::vector<const Expr*> Children() const override {
    return {left.get(), right.get()};
  }
  std::vector<Expr*> MutableChildren() override {
    return {left.get(), right.get()};
  }
};

/// Scalar function call: built-in (ABS, UPPER, COALESCE, ...) or catalog UDF.
struct FunctionCallExpr : Expr {
  FunctionCallExpr(std::string n, std::vector<ExprPtr> a)
      : Expr(ExprKind::kFunctionCall), name(std::move(n)), args(std::move(a)) {}
  std::string name;  ///< lowercase
  std::vector<ExprPtr> args;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  std::vector<const Expr*> Children() const override;
  std::vector<Expr*> MutableChildren() override;
};

/// Aggregate invocation in a SELECT list / HAVING: MIN(x), COUNT(*), or a
/// custom aggregate (possibly Aggify-synthesized) with arbitrary arity.
struct AggregateCallExpr : Expr {
  AggregateCallExpr(std::string n, std::vector<ExprPtr> a, bool star = false)
      : Expr(ExprKind::kAggregateCall),
        name(std::move(n)),
        args(std::move(a)),
        is_star(star) {}
  std::string name;  ///< lowercase
  std::vector<ExprPtr> args;
  bool is_star;      ///< COUNT(*)
  bool distinct = false;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  std::vector<const Expr*> Children() const override;
  std::vector<Expr*> MutableChildren() override;
};

struct ScalarSubqueryExpr : Expr {
  explicit ScalarSubqueryExpr(std::unique_ptr<SelectStmt> q);
  ~ScalarSubqueryExpr() override;
  std::unique_ptr<SelectStmt> query;
  ExprPtr Clone() const override;
  std::string ToString() const override;
};

struct ExistsExpr : Expr {
  ExistsExpr(std::unique_ptr<SelectStmt> q, bool neg);
  ~ExistsExpr() override;
  std::unique_ptr<SelectStmt> query;
  bool negated;
  ExprPtr Clone() const override;
  std::string ToString() const override;
};

/// `e IN (v1, v2, ...)` or `e IN (SELECT ...)`.
struct InListExpr : Expr {
  InListExpr(ExprPtr e, std::vector<ExprPtr> l, bool neg);
  InListExpr(ExprPtr e, std::unique_ptr<SelectStmt> q, bool neg);
  ~InListExpr() override;
  ExprPtr operand;
  std::vector<ExprPtr> list;               // empty when subquery form
  std::unique_ptr<SelectStmt> subquery;    // nullptr when list form
  bool negated;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  std::vector<const Expr*> Children() const override;
  std::vector<Expr*> MutableChildren() override;
};

struct IsNullExpr : Expr {
  IsNullExpr(ExprPtr e, bool neg)
      : Expr(ExprKind::kIsNull), operand(std::move(e)), negated(neg) {}
  ExprPtr operand;
  bool negated;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  std::vector<const Expr*> Children() const override { return {operand.get()}; }
  std::vector<Expr*> MutableChildren() override { return {operand.get()}; }
};

struct CaseWhenExpr : Expr {
  struct Arm {
    ExprPtr condition;
    ExprPtr result;
  };
  CaseWhenExpr(std::vector<Arm> a, ExprPtr e)
      : Expr(ExprKind::kCaseWhen), arms(std::move(a)), else_result(std::move(e)) {}
  std::vector<Arm> arms;
  ExprPtr else_result;  // may be null (=> NULL)
  ExprPtr Clone() const override;
  std::string ToString() const override;
  std::vector<const Expr*> Children() const override;
  std::vector<Expr*> MutableChildren() override;
};

struct CastExpr : Expr {
  CastExpr(ExprPtr e, DataType t)
      : Expr(ExprKind::kCast), operand(std::move(e)), target(t) {}
  ExprPtr operand;
  DataType target;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  std::vector<const Expr*> Children() const override { return {operand.get()}; }
  std::vector<Expr*> MutableChildren() override { return {operand.get()}; }
};

// --- Convenience constructors used by rewrites and tests. ---
ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string name);
ExprPtr MakeVarRef(std::string name);
ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeUnary(UnaryOp op, ExprPtr e);

/// Collects the names of all variables (@x) referenced anywhere in `e`,
/// including inside nested subqueries.
void CollectVariableRefs(const Expr& e, std::vector<std::string>* out);

/// Collects the names of all (unresolved) column references in `e`, not
/// descending into subqueries.
void CollectColumnRefs(const Expr& e, std::vector<std::string>* out);

/// True if `e` contains any AggregateCallExpr (not descending into
/// subqueries).
bool ContainsAggregateCall(const Expr& e);

}  // namespace aggify
