// Lexer for the T-SQL-like dialect.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace aggify {

enum class TokenKind : uint8_t {
  kEof,
  kIdent,       ///< bare identifier or keyword (text preserved as written)
  kVariable,    ///< @name or @@name (lowercased, '@' kept)
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,  ///< quotes stripped, '' unescaped
  // Punctuation / operators:
  kLParen, kRParen, kComma, kSemicolon, kDot, kStar,
  kPlus, kMinus, kSlash, kPercent,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kConcat,  ///< ||
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;   ///< raw text (identifiers keep original case)
  int64_t int_value = 0;
  double double_value = 0.0;
  int line = 1;
  size_t offset = 0;  ///< byte offset of the token's first character

  bool IsKeyword(std::string_view kw) const;
  std::string Describe() const;
};

/// Tokenizes `sql`. Handles -- line comments and /* */ block comments.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace aggify
