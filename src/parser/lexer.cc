#include "parser/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace aggify {

bool Token::IsKeyword(std::string_view kw) const {
  return kind == TokenKind::kIdent && EqualsIgnoreCase(text, kw);
}

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kEof:
      return "<eof>";
    case TokenKind::kIdent:
    case TokenKind::kVariable:
      return "'" + text + "'";
    case TokenKind::kIntLiteral:
      return std::to_string(int_value);
    case TokenKind::kFloatLiteral:
      return std::to_string(double_value);
    case TokenKind::kStringLiteral:
      return "'" + text + "'";
    default:
      return "'" + text + "'";
  }
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '#';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '#';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  const size_t n = sql.size();

  size_t tok_start = 0;
  auto push = [&](TokenKind k, std::string text) {
    Token t;
    t.kind = k;
    t.text = std::move(text);
    t.line = line;
    t.offset = tok_start;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = sql[i];
    tok_start = i;
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(sql[i] == '*' && sql[i + 1] == '/')) {
        if (sql[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) {
        return Status::ParseError("unterminated block comment at line " +
                                  std::to_string(line));
      }
      i += 2;
      continue;
    }
    // String literal.
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        if (sql[i] == '\n') ++line;
        text += sql[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at line " +
                                  std::to_string(line));
      }
      push(TokenKind::kStringLiteral, std::move(text));
      continue;
    }
    // Variable: @name or @@name.
    if (c == '@') {
      size_t start = i;
      ++i;
      if (i < n && sql[i] == '@') ++i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      if (i == start + 1 || (sql[start + 1] == '@' && i == start + 2)) {
        return Status::ParseError("bare '@' at line " + std::to_string(line));
      }
      push(TokenKind::kVariable, ToLower(sql.substr(start, i - start)));
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (sql[j] == '+' || sql[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) {
          is_float = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
        }
      }
      std::string text = sql.substr(start, i - start);
      Token t;
      t.line = line;
      t.offset = start;
      t.text = text;
      if (is_float) {
        t.kind = TokenKind::kFloatLiteral;
        t.double_value = std::stod(text);
      } else {
        t.kind = TokenKind::kIntLiteral;
        t.int_value = std::stoll(text);
      }
      tokens.push_back(std::move(t));
      continue;
    }
    // Identifier / keyword. Also [bracketed identifiers].
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      push(TokenKind::kIdent, sql.substr(start, i - start));
      continue;
    }
    if (c == '[') {
      size_t close = sql.find(']', i);
      if (close == std::string::npos) {
        return Status::ParseError("unterminated [identifier] at line " +
                                  std::to_string(line));
      }
      push(TokenKind::kIdent, sql.substr(i + 1, close - i - 1));
      i = close + 1;
      continue;
    }
    // Operators / punctuation.
    switch (c) {
      case '(': push(TokenKind::kLParen, "("); ++i; continue;
      case ')': push(TokenKind::kRParen, ")"); ++i; continue;
      case ',': push(TokenKind::kComma, ","); ++i; continue;
      case ';': push(TokenKind::kSemicolon, ";"); ++i; continue;
      case '.': push(TokenKind::kDot, "."); ++i; continue;
      case '*': push(TokenKind::kStar, "*"); ++i; continue;
      case '+': push(TokenKind::kPlus, "+"); ++i; continue;
      case '-': push(TokenKind::kMinus, "-"); ++i; continue;
      case '/': push(TokenKind::kSlash, "/"); ++i; continue;
      case '%': push(TokenKind::kPercent, "%"); ++i; continue;
      case '=': push(TokenKind::kEq, "="); ++i; continue;
      case '|':
        if (i + 1 < n && sql[i + 1] == '|') {
          push(TokenKind::kConcat, "||");
          i += 2;
          continue;
        }
        return Status::ParseError("unexpected '|' at line " +
                                  std::to_string(line));
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenKind::kLe, "<=");
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          push(TokenKind::kNe, "<>");
          i += 2;
        } else {
          push(TokenKind::kLt, "<");
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenKind::kGe, ">=");
          i += 2;
        } else {
          push(TokenKind::kGt, ">");
          ++i;
        }
        continue;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenKind::kNe, "!=");
          i += 2;
          continue;
        }
        return Status::ParseError("unexpected '!' at line " +
                                  std::to_string(line));
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at line " + std::to_string(line));
    }
  }
  tok_start = n;
  push(TokenKind::kEof, "");
  return tokens;
}

}  // namespace aggify
