// Procedural statement AST: the language model of §4.2.
//
//   Stmt := skip | Stmt;Stmt | var := exp | if | while | try/catch | ...
//
// plus the cursor statements (DECLARE CURSOR / OPEN / FETCH / CLOSE /
// DEALLOCATE), temp-table DML, FOR loops (§8.1), BREAK/CONTINUE, and RETURN.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "parser/query_ast.h"
#include "types/schema.h"

namespace aggify {

enum class StmtKind : uint8_t {
  kBlock,
  kDeclareVar,
  kSet,
  kIf,
  kWhile,
  kFor,
  kDeclareCursor,
  kOpenCursor,
  kFetch,
  kCloseCursor,
  kDeallocateCursor,
  kReturn,
  kBreak,
  kContinue,
  kDeclareTempTable,
  kInsert,
  kUpdate,
  kDelete,
  kTryCatch,
  kExecQuery,   ///< standalone SELECT executed for effect (result discarded
                ///< in UDFs; streamed to the client in app programs)
  kMultiAssign, ///< Aggify rewrite output: run a query returning one row and
                ///< assign its (possibly Record-typed) value to variables
  kGuardedRewrite, ///< Aggify rewrite output with a cursor-loop fallback:
                   ///< runs the MultiAssign; on runtime failure restores the
                   ///< loop-entry state and interprets the original loop
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  explicit Stmt(StmtKind k) : kind(k) {}
  virtual ~Stmt() = default;
  StmtKind kind;
  /// Byte offset of the statement's first token in the originating script
  /// (0 for synthesized statements). Diagnostics key on it so lint output
  /// can be emitted in source order regardless of analysis order.
  size_t source_offset = 0;

  /// Clones the node, preserving `source_offset` (CloneImpl implementations
  /// construct fresh nodes and would otherwise drop it — and rewriter
  /// diagnostics are produced against cloned function bodies).
  StmtPtr Clone() const {
    StmtPtr copy = CloneImpl();
    copy->source_offset = source_offset;
    return copy;
  }
  virtual std::string ToString(int indent = 0) const = 0;

 protected:
  virtual StmtPtr CloneImpl() const = 0;
};

struct BlockStmt : Stmt {
  BlockStmt() : Stmt(StmtKind::kBlock) {}
  explicit BlockStmt(std::vector<StmtPtr> s)
      : Stmt(StmtKind::kBlock), statements(std::move(s)) {}
  std::vector<StmtPtr> statements;
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

/// DECLARE @x INT [= expr];
struct DeclareVarStmt : Stmt {
  DeclareVarStmt(std::string n, DataType t, ExprPtr init)
      : Stmt(StmtKind::kDeclareVar),
        name(std::move(n)),
        type(t),
        initializer(std::move(init)) {}
  std::string name;  ///< lowercase with '@'
  DataType type;
  ExprPtr initializer;  // may be null (=> NULL)
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

/// SET @x = expr;  (expr may contain scalar subqueries)
struct SetStmt : Stmt {
  SetStmt(std::string n, ExprPtr v)
      : Stmt(StmtKind::kSet), name(std::move(n)), value(std::move(v)) {}
  std::string name;
  ExprPtr value;
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

struct IfStmt : Stmt {
  IfStmt(ExprPtr c, StmtPtr t, StmtPtr e)
      : Stmt(StmtKind::kIf),
        condition(std::move(c)),
        then_branch(std::move(t)),
        else_branch(std::move(e)) {}
  ExprPtr condition;
  StmtPtr then_branch;
  StmtPtr else_branch;  // may be null
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

struct WhileStmt : Stmt {
  WhileStmt(ExprPtr c, StmtPtr b)
      : Stmt(StmtKind::kWhile), condition(std::move(c)), body(std::move(b)) {}
  ExprPtr condition;
  StmtPtr body;
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

/// FOR @i = init TO bound [STEP k] BEGIN ... END  (§8.1)
struct ForStmt : Stmt {
  ForStmt(std::string v, ExprPtr i, ExprPtr b, ExprPtr s, StmtPtr body_in)
      : Stmt(StmtKind::kFor),
        var(std::move(v)),
        init(std::move(i)),
        bound(std::move(b)),
        step(std::move(s)),
        body(std::move(body_in)) {}
  std::string var;
  ExprPtr init;
  ExprPtr bound;
  ExprPtr step;  // may be null (=> 1)
  StmtPtr body;
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

/// DECLARE c CURSOR FOR select;
struct DeclareCursorStmt : Stmt {
  DeclareCursorStmt(std::string n, std::unique_ptr<SelectStmt> q)
      : Stmt(StmtKind::kDeclareCursor), name(std::move(n)), query(std::move(q)) {}
  std::string name;
  std::unique_ptr<SelectStmt> query;
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

struct OpenCursorStmt : Stmt {
  explicit OpenCursorStmt(std::string n)
      : Stmt(StmtKind::kOpenCursor), name(std::move(n)) {}
  std::string name;
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

/// FETCH NEXT FROM c INTO @a, @b;
struct FetchStmt : Stmt {
  FetchStmt(std::string c, std::vector<std::string> vars)
      : Stmt(StmtKind::kFetch), cursor(std::move(c)), into(std::move(vars)) {}
  std::string cursor;
  std::vector<std::string> into;
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

struct CloseCursorStmt : Stmt {
  explicit CloseCursorStmt(std::string n)
      : Stmt(StmtKind::kCloseCursor), name(std::move(n)) {}
  std::string name;
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

struct DeallocateCursorStmt : Stmt {
  explicit DeallocateCursorStmt(std::string n)
      : Stmt(StmtKind::kDeallocateCursor), name(std::move(n)) {}
  std::string name;
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

struct ReturnStmt : Stmt {
  explicit ReturnStmt(ExprPtr v)
      : Stmt(StmtKind::kReturn), value(std::move(v)) {}
  ExprPtr value;  // may be null (procedures)
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

struct BreakStmt : Stmt {
  BreakStmt() : Stmt(StmtKind::kBreak) {}
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

struct ContinueStmt : Stmt {
  ContinueStmt() : Stmt(StmtKind::kContinue) {}
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

/// DECLARE @t TABLE (col type, ...);  — a table variable (worktable).
struct DeclareTempTableStmt : Stmt {
  DeclareTempTableStmt(std::string n, Schema s)
      : Stmt(StmtKind::kDeclareTempTable), name(std::move(n)), schema(std::move(s)) {}
  std::string name;  ///< '@t' or '#t'
  Schema schema;
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

/// INSERT INTO t [(cols)] VALUES (...),(...) | SELECT ...
struct InsertStmt : Stmt {
  InsertStmt() : Stmt(StmtKind::kInsert) {}
  std::string table;
  std::vector<std::string> columns;               // optional
  std::vector<std::vector<ExprPtr>> values_rows;  // VALUES form
  std::unique_ptr<SelectStmt> select;             // SELECT form
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

struct UpdateStmt : Stmt {
  UpdateStmt() : Stmt(StmtKind::kUpdate) {}
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // may be null
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

struct DeleteStmt : Stmt {
  DeleteStmt() : Stmt(StmtKind::kDelete) {}
  std::string table;
  ExprPtr where;  // may be null
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

struct TryCatchStmt : Stmt {
  TryCatchStmt(StmtPtr t, StmtPtr c)
      : Stmt(StmtKind::kTryCatch), try_block(std::move(t)), catch_block(std::move(c)) {}
  StmtPtr try_block;
  StmtPtr catch_block;
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

/// A standalone SELECT statement executed as a statement.
struct ExecQueryStmt : Stmt {
  explicit ExecQueryStmt(std::unique_ptr<SelectStmt> q)
      : Stmt(StmtKind::kExecQuery), query(std::move(q)) {}
  std::unique_ptr<SelectStmt> query;
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

/// \brief The statement the Aggify rewrite emits in place of a cursor loop
/// (Eq. 5 / Eq. 6): execute `query` — `SELECT Agg_Δ(P_accum) FROM (Q) Q` —
/// and distribute the resulting V_term tuple into `targets`.
///
/// If the aggregate saw zero rows (loop body never ran), its Terminate
/// returns NULL instead of a Record and the targets keep their prior values,
/// matching the original loop's semantics exactly.
struct MultiAssignStmt : Stmt {
  MultiAssignStmt(std::vector<std::string> t, std::unique_ptr<SelectStmt> q)
      : Stmt(StmtKind::kMultiAssign), targets(std::move(t)), query(std::move(q)) {}
  std::vector<std::string> targets;
  std::unique_ptr<SelectStmt> query;
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

/// \brief A guarded Aggify rewrite: the MultiAssign (Eq. 5 / Eq. 6) plus a
/// self-contained clone of the original cursor-loop region as a fallback.
///
/// Semantically this statement IS the MultiAssign — the fallback only exists
/// so a runtime failure of the rewritten query (or an opt-in verify-mode
/// mismatch) degrades to the original slow-but-correct loop instead of
/// erroring out. Analyses therefore treat it as its MultiAssign: defs are
/// `rewritten->targets`, uses are the rewritten query's variables, and the
/// fallback block is never walked (it would otherwise re-introduce the loop
/// the rewrite just removed, breaking idempotence and liveness pruning).
///
/// Because dead-declaration removal (§6.2) may prune the fetch-variable
/// DECLAREs the loop relied on, the fallback block starts with its own
/// DECLAREs for every variable it writes that the rewritten query does not
/// reference (all provably dead after the loop, so initializing them to NULL
/// is safe).
struct GuardedRewriteStmt : Stmt {
  GuardedRewriteStmt(std::unique_ptr<MultiAssignStmt> r,
                     std::unique_ptr<BlockStmt> f,
                     std::vector<std::string> state, bool v, std::string agg)
      : Stmt(StmtKind::kGuardedRewrite),
        rewritten(std::move(r)),
        fallback(std::move(f)),
        state_vars(std::move(state)),
        verify(v),
        aggregate_name(std::move(agg)) {}
  /// DML-body form (table_effects.h families): the rewrite is a set-oriented
  /// INSERT..SELECT / UPDATE instead of a MultiAssign. Exactly one of
  /// `rewritten` / `rewritten_dml` is non-null.
  GuardedRewriteStmt(StmtPtr dml, std::unique_ptr<BlockStmt> f,
                     std::vector<std::string> state, bool v, std::string agg)
      : Stmt(StmtKind::kGuardedRewrite),
        rewritten_dml(std::move(dml)),
        fallback(std::move(f)),
        state_vars(std::move(state)),
        verify(v),
        aggregate_name(std::move(agg)) {}
  std::unique_ptr<MultiAssignStmt> rewritten;  // scalar-aggregate form
  /// Set-oriented InsertStmt/UpdateStmt for DML-body rewrites; null for the
  /// scalar-aggregate form. Analyses treat the statement as this DML (it
  /// writes a table, not variables).
  StmtPtr rewritten_dml;
  std::unique_ptr<BlockStmt> fallback;
  /// Every variable either path may write (targets, fetch vars, body-local
  /// scratch, @@fetch_status): snapshotted before the rewritten query runs so
  /// fallback / verify can restart from loop-entry state.
  std::vector<std::string> state_vars;
  /// Opt-in verify_rewrite mode: always run both paths and compare targets.
  bool verify = false;
  /// Name of the synthesized aggregate (diagnostics).
  std::string aggregate_name;
  StmtPtr CloneImpl() const override;
  std::string ToString(int indent) const override;
};

/// \brief A UDF / stored procedure definition.
struct FunctionDef {
  struct Param {
    std::string name;  ///< lowercase with '@'
    DataType type;
    ExprPtr default_value;  // may be null

    Param() = default;
    Param(std::string n, DataType t, ExprPtr d = nullptr)
        : name(std::move(n)), type(t), default_value(std::move(d)) {}
    Param(const Param& o)
        : name(o.name),
          type(o.type),
          default_value(o.default_value ? o.default_value->Clone() : nullptr) {}
    Param& operator=(const Param& o) {
      name = o.name;
      type = o.type;
      default_value = o.default_value ? o.default_value->Clone() : nullptr;
      return *this;
    }
    Param(Param&&) = default;
    Param& operator=(Param&&) = default;
  };

  std::string name;
  std::vector<Param> params;
  DataType return_type;     ///< meaningful when !is_procedure
  bool is_procedure = false;
  std::unique_ptr<BlockStmt> body;

  std::shared_ptr<FunctionDef> Clone() const;
  std::string ToString() const;
};

}  // namespace aggify
