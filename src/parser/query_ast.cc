#include "parser/query_ast.h"

namespace aggify {

TableRef::~TableRef() = default;

std::unique_ptr<TableRef> TableRef::Base(std::string name, std::string alias) {
  auto t = std::make_unique<TableRef>();
  t->kind = Kind::kBaseTable;
  t->table_name = std::move(name);
  t->alias = std::move(alias);
  return t;
}

std::unique_ptr<TableRef> TableRef::Derived(std::unique_ptr<SelectStmt> q,
                                            std::string alias) {
  auto t = std::make_unique<TableRef>();
  t->kind = Kind::kSubquery;
  t->subquery = std::move(q);
  t->alias = std::move(alias);
  return t;
}

std::unique_ptr<TableRef> TableRef::Join(std::unique_ptr<TableRef> l,
                                         std::unique_ptr<TableRef> r,
                                         JoinType type, ExprPtr on) {
  auto t = std::make_unique<TableRef>();
  t->kind = Kind::kJoin;
  t->left = std::move(l);
  t->right = std::move(r);
  t->join_type = type;
  t->join_condition = std::move(on);
  return t;
}

std::unique_ptr<TableRef> TableRef::Clone() const {
  auto t = std::make_unique<TableRef>();
  t->kind = kind;
  t->table_name = table_name;
  t->alias = alias;
  if (subquery != nullptr) t->subquery = subquery->Clone();
  if (left != nullptr) t->left = left->Clone();
  if (right != nullptr) t->right = right->Clone();
  t->join_type = join_type;
  if (join_condition != nullptr) t->join_condition = join_condition->Clone();
  return t;
}

std::string TableRef::ToString() const {
  switch (kind) {
    case Kind::kBaseTable:
      return alias.empty() ? table_name : table_name + " " + alias;
    case Kind::kSubquery:
      return "(" + subquery->ToString() + ") " + alias;
    case Kind::kJoin: {
      std::string kw = join_type == JoinType::kLeft
                           ? " LEFT JOIN "
                           : (join_type == JoinType::kCross ? " CROSS JOIN "
                                                            : " JOIN ");
      std::string out = left->ToString() + kw + right->ToString();
      if (join_condition != nullptr) out += " ON " + join_condition->ToString();
      return out;
    }
  }
  return "?";
}

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto q = std::make_unique<SelectStmt>();
  for (const auto& cte : ctes) {
    CteDef c;
    c.name = cte.name;
    c.column_names = cte.column_names;
    c.query = cte.query->Clone();
    c.recursive = cte.recursive;
    q->ctes.push_back(std::move(c));
  }
  q->distinct = distinct;
  if (top_n != nullptr) q->top_n = top_n->Clone();
  for (const auto& item : items) {
    q->items.push_back(SelectItem{item.expr->Clone(), item.alias});
  }
  q->select_star = select_star;
  for (const auto& t : from) q->from.push_back(t->Clone());
  if (where != nullptr) q->where = where->Clone();
  for (const auto& g : group_by) q->group_by.push_back(g->Clone());
  if (having != nullptr) q->having = having->Clone();
  for (const auto& o : order_by) {
    q->order_by.push_back(OrderItem{o.expr->Clone(), o.descending});
  }
  if (union_all != nullptr) q->union_all = union_all->Clone();
  q->force_stream_aggregate = force_stream_aggregate;
  return q;
}

std::string SelectStmt::ToString() const {
  std::string out;
  if (!ctes.empty()) {
    out += "WITH ";
    for (size_t i = 0; i < ctes.size(); ++i) {
      if (i > 0) out += ", ";
      out += ctes[i].name;
      if (!ctes[i].column_names.empty()) {
        out += " (";
        for (size_t j = 0; j < ctes[i].column_names.size(); ++j) {
          if (j > 0) out += ", ";
          out += ctes[i].column_names[j];
        }
        out += ")";
      }
      out += " AS (" + ctes[i].query->ToString() + ")";
    }
    out += " ";
  }
  out += "SELECT ";
  if (distinct) out += "DISTINCT ";
  if (top_n != nullptr) out += "TOP " + top_n->ToString() + " ";
  if (select_star) {
    out += "*";
  } else {
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ", ";
      out += items[i].expr->ToString();
      if (!items[i].alias.empty()) out += " AS " + items[i].alias;
    }
  }
  if (!from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i > 0) out += ", ";
      out += from[i]->ToString();
    }
  }
  if (where != nullptr) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having != nullptr) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (union_all != nullptr) out += " UNION ALL " + union_all->ToString();
  return out;
}

}  // namespace aggify
