// Recursive-descent parser for the T-SQL-like dialect.
//
// Entry points parse: expressions, SELECT statements, procedural statement
// blocks, CREATE FUNCTION/PROCEDURE definitions, and whole scripts (DDL +
// DML + definitions), which is what tests, examples and workloads feed in.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "parser/lexer.h"
#include "parser/statement.h"

namespace aggify {

/// \brief One top-level command of a script.
struct ScriptCommand {
  enum class Kind : uint8_t {
    kCreateTable,
    kCreateIndex,
    kCreateFunction,
    kInsert,
    kSelect,
    kBlock,  ///< anonymous procedural block (client program body)
  };
  Kind kind;

  // kCreateTable
  std::string table_name;
  Schema schema;
  // kCreateIndex
  std::string index_name;
  std::string on_table;
  std::string on_column;
  // kCreateFunction
  std::shared_ptr<FunctionDef> function;
  // kInsert / kBlock
  StmtPtr statement;
  // kSelect
  std::unique_ptr<SelectStmt> select;
};

struct Script {
  std::vector<ScriptCommand> commands;
};

/// Parses a full expression; input must be consumed entirely.
Result<ExprPtr> ParseExpression(const std::string& text);

/// Parses a single SELECT statement (optionally with WITH clause).
Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& text);

/// Parses a sequence of procedural statements into a BlockStmt.
Result<StmtPtr> ParseStatements(const std::string& text);

/// Parses one CREATE FUNCTION / CREATE PROCEDURE definition.
Result<std::shared_ptr<FunctionDef>> ParseFunction(const std::string& text);

/// Parses a script of top-level commands.
Result<Script> ParseScript(const std::string& text);

}  // namespace aggify
