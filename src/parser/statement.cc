#include "parser/statement.h"

namespace aggify {

namespace {
std::string Ind(int n) { return std::string(static_cast<size_t>(n) * 2, ' '); }
}  // namespace

// ---- BlockStmt ----

StmtPtr BlockStmt::CloneImpl() const {
  auto b = std::make_unique<BlockStmt>();
  for (const auto& s : statements) b->statements.push_back(s->Clone());
  return b;
}

std::string BlockStmt::ToString(int indent) const {
  std::string out = Ind(indent) + "BEGIN\n";
  for (const auto& s : statements) out += s->ToString(indent + 1);
  out += Ind(indent) + "END\n";
  return out;
}

// ---- DeclareVarStmt ----

StmtPtr DeclareVarStmt::CloneImpl() const {
  return std::make_unique<DeclareVarStmt>(
      name, type, initializer ? initializer->Clone() : nullptr);
}

std::string DeclareVarStmt::ToString(int indent) const {
  std::string out = Ind(indent) + "DECLARE " + name + " " + type.ToString();
  if (initializer != nullptr) out += " = " + initializer->ToString();
  return out + ";\n";
}

// ---- SetStmt ----

StmtPtr SetStmt::CloneImpl() const {
  return std::make_unique<SetStmt>(name, value->Clone());
}

std::string SetStmt::ToString(int indent) const {
  return Ind(indent) + "SET " + name + " = " + value->ToString() + ";\n";
}

// ---- IfStmt ----

StmtPtr IfStmt::CloneImpl() const {
  return std::make_unique<IfStmt>(condition->Clone(), then_branch->Clone(),
                                  else_branch ? else_branch->Clone() : nullptr);
}

std::string IfStmt::ToString(int indent) const {
  std::string out = Ind(indent) + "IF " + condition->ToString() + "\n";
  out += then_branch->ToString(indent + 1);
  if (else_branch != nullptr) {
    out += Ind(indent) + "ELSE\n" + else_branch->ToString(indent + 1);
  }
  return out;
}

// ---- WhileStmt ----

StmtPtr WhileStmt::CloneImpl() const {
  return std::make_unique<WhileStmt>(condition->Clone(), body->Clone());
}

std::string WhileStmt::ToString(int indent) const {
  return Ind(indent) + "WHILE " + condition->ToString() + "\n" +
         body->ToString(indent + 1);
}

// ---- ForStmt ----

StmtPtr ForStmt::CloneImpl() const {
  return std::make_unique<ForStmt>(var, init->Clone(), bound->Clone(),
                                   step ? step->Clone() : nullptr,
                                   body->Clone());
}

std::string ForStmt::ToString(int indent) const {
  std::string out = Ind(indent) + "FOR " + var + " = " + init->ToString() +
                    " TO " + bound->ToString();
  if (step != nullptr) out += " STEP " + step->ToString();
  return out + "\n" + body->ToString(indent + 1);
}

// ---- Cursor statements ----

StmtPtr DeclareCursorStmt::CloneImpl() const {
  return std::make_unique<DeclareCursorStmt>(name, query->Clone());
}

std::string DeclareCursorStmt::ToString(int indent) const {
  return Ind(indent) + "DECLARE " + name + " CURSOR FOR " + query->ToString() +
         ";\n";
}

StmtPtr OpenCursorStmt::CloneImpl() const {
  return std::make_unique<OpenCursorStmt>(name);
}

std::string OpenCursorStmt::ToString(int indent) const {
  return Ind(indent) + "OPEN " + name + ";\n";
}

StmtPtr FetchStmt::CloneImpl() const {
  return std::make_unique<FetchStmt>(cursor, into);
}

std::string FetchStmt::ToString(int indent) const {
  std::string out = Ind(indent) + "FETCH NEXT FROM " + cursor + " INTO ";
  for (size_t i = 0; i < into.size(); ++i) {
    if (i > 0) out += ", ";
    out += into[i];
  }
  return out + ";\n";
}

StmtPtr CloseCursorStmt::CloneImpl() const {
  return std::make_unique<CloseCursorStmt>(name);
}

std::string CloseCursorStmt::ToString(int indent) const {
  return Ind(indent) + "CLOSE " + name + ";\n";
}

StmtPtr DeallocateCursorStmt::CloneImpl() const {
  return std::make_unique<DeallocateCursorStmt>(name);
}

std::string DeallocateCursorStmt::ToString(int indent) const {
  return Ind(indent) + "DEALLOCATE " + name + ";\n";
}

// ---- ReturnStmt / BreakStmt / ContinueStmt ----

StmtPtr ReturnStmt::CloneImpl() const {
  return std::make_unique<ReturnStmt>(value ? value->Clone() : nullptr);
}

std::string ReturnStmt::ToString(int indent) const {
  std::string out = Ind(indent) + "RETURN";
  if (value != nullptr) out += " " + value->ToString();
  return out + ";\n";
}

StmtPtr BreakStmt::CloneImpl() const { return std::make_unique<BreakStmt>(); }
std::string BreakStmt::ToString(int indent) const {
  return Ind(indent) + "BREAK;\n";
}

StmtPtr ContinueStmt::CloneImpl() const { return std::make_unique<ContinueStmt>(); }
std::string ContinueStmt::ToString(int indent) const {
  return Ind(indent) + "CONTINUE;\n";
}

// ---- DeclareTempTableStmt ----

StmtPtr DeclareTempTableStmt::CloneImpl() const {
  return std::make_unique<DeclareTempTableStmt>(name, schema);
}

std::string DeclareTempTableStmt::ToString(int indent) const {
  std::string out = Ind(indent) + "DECLARE " + name + " TABLE (";
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) out += ", ";
    out += schema.column(i).name + " " + schema.column(i).type.ToString();
  }
  return out + ");\n";
}

// ---- DML statements ----

StmtPtr InsertStmt::CloneImpl() const {
  auto s = std::make_unique<InsertStmt>();
  s->table = table;
  s->columns = columns;
  for (const auto& row : values_rows) {
    std::vector<ExprPtr> cloned;
    for (const auto& e : row) cloned.push_back(e->Clone());
    s->values_rows.push_back(std::move(cloned));
  }
  if (select != nullptr) s->select = select->Clone();
  return s;
}

std::string InsertStmt::ToString(int indent) const {
  std::string out = Ind(indent) + "INSERT INTO " + table;
  if (!columns.empty()) {
    out += " (";
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += columns[i];
    }
    out += ")";
  }
  if (select != nullptr) {
    out += " " + select->ToString();
  } else {
    out += " VALUES ";
    for (size_t i = 0; i < values_rows.size(); ++i) {
      if (i > 0) out += ", ";
      out += "(";
      for (size_t j = 0; j < values_rows[i].size(); ++j) {
        if (j > 0) out += ", ";
        out += values_rows[i][j]->ToString();
      }
      out += ")";
    }
  }
  return out + ";\n";
}

StmtPtr UpdateStmt::CloneImpl() const {
  auto s = std::make_unique<UpdateStmt>();
  s->table = table;
  for (const auto& [col, e] : assignments) {
    s->assignments.emplace_back(col, e->Clone());
  }
  if (where != nullptr) s->where = where->Clone();
  return s;
}

std::string UpdateStmt::ToString(int indent) const {
  std::string out = Ind(indent) + "UPDATE " + table + " SET ";
  for (size_t i = 0; i < assignments.size(); ++i) {
    if (i > 0) out += ", ";
    out += assignments[i].first + " = " + assignments[i].second->ToString();
  }
  if (where != nullptr) out += " WHERE " + where->ToString();
  return out + ";\n";
}

StmtPtr DeleteStmt::CloneImpl() const {
  auto s = std::make_unique<DeleteStmt>();
  s->table = table;
  if (where != nullptr) s->where = where->Clone();
  return s;
}

std::string DeleteStmt::ToString(int indent) const {
  std::string out = Ind(indent) + "DELETE FROM " + table;
  if (where != nullptr) out += " WHERE " + where->ToString();
  return out + ";\n";
}

// ---- TryCatchStmt ----

StmtPtr TryCatchStmt::CloneImpl() const {
  return std::make_unique<TryCatchStmt>(try_block->Clone(),
                                        catch_block->Clone());
}

std::string TryCatchStmt::ToString(int indent) const {
  return Ind(indent) + "BEGIN TRY\n" + try_block->ToString(indent + 1) +
         Ind(indent) + "END TRY\n" + Ind(indent) + "BEGIN CATCH\n" +
         catch_block->ToString(indent + 1) + Ind(indent) + "END CATCH\n";
}

// ---- ExecQueryStmt ----

StmtPtr ExecQueryStmt::CloneImpl() const {
  return std::make_unique<ExecQueryStmt>(query->Clone());
}

std::string ExecQueryStmt::ToString(int indent) const {
  return Ind(indent) + query->ToString() + ";\n";
}

// ---- MultiAssignStmt ----

StmtPtr MultiAssignStmt::CloneImpl() const {
  return std::make_unique<MultiAssignStmt>(targets, query->Clone());
}

std::string MultiAssignStmt::ToString(int indent) const {
  std::string out = Ind(indent) + "SET ";
  if (targets.size() == 1) {
    out += targets[0];
  } else {
    out += "(";
    for (size_t i = 0; i < targets.size(); ++i) {
      if (i > 0) out += ", ";
      out += targets[i];
    }
    out += ")";
  }
  return out + " = (" + query->ToString() + ");\n";
}

StmtPtr GuardedRewriteStmt::CloneImpl() const {
  auto f = std::unique_ptr<BlockStmt>(
      static_cast<BlockStmt*>(fallback->Clone().release()));
  if (rewritten_dml) {
    return std::make_unique<GuardedRewriteStmt>(rewritten_dml->Clone(),
                                                std::move(f), state_vars,
                                                verify, aggregate_name);
  }
  auto r = std::unique_ptr<MultiAssignStmt>(
      static_cast<MultiAssignStmt*>(rewritten->Clone().release()));
  return std::make_unique<GuardedRewriteStmt>(std::move(r), std::move(f),
                                              state_vars, verify,
                                              aggregate_name);
}

std::string GuardedRewriteStmt::ToString(int indent) const {
  // Renders as the statement it stands for (plus a marker comment). The
  // fallback is recovery machinery, not program text: printing it would make
  // the removed loop reappear in every rendering of the rewritten function.
  std::string out =
      rewritten_dml ? rewritten_dml->ToString(indent) : rewritten->ToString(indent);
  if (!out.empty() && out.back() == '\n') out.pop_back();
  out += "  -- guarded: cursor-loop fallback";
  if (verify) out += " (verify)";
  return out + "\n";
}

// ---- FunctionDef ----

std::shared_ptr<FunctionDef> FunctionDef::Clone() const {
  auto f = std::make_shared<FunctionDef>();
  f->name = name;
  f->params = params;  // Param copy ctor deep-clones defaults
  f->return_type = return_type;
  f->is_procedure = is_procedure;
  StmtPtr b = body->Clone();
  f->body.reset(static_cast<BlockStmt*>(b.release()));
  return f;
}

std::string FunctionDef::ToString() const {
  std::string out =
      std::string("CREATE ") + (is_procedure ? "PROCEDURE " : "FUNCTION ") +
      name + "(";
  for (size_t i = 0; i < params.size(); ++i) {
    if (i > 0) out += ", ";
    out += params[i].name + " " + params[i].type.ToString();
    if (params[i].default_value != nullptr) {
      out += " = " + params[i].default_value->ToString();
    }
  }
  out += ")";
  if (!is_procedure) out += " RETURNS " + return_type.ToString();
  out += " AS\n" + body->ToString(0);
  return out;
}

}  // namespace aggify
