// Query AST: SELECT statements, table references, CTEs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "parser/expr.h"

namespace aggify {

struct SelectStmt;

enum class JoinType : uint8_t { kInner, kLeft, kCross };

/// \brief One entry of a FROM clause.
struct TableRef {
  enum class Kind : uint8_t { kBaseTable, kSubquery, kJoin } kind;

  // kBaseTable
  std::string table_name;
  std::string alias;  // also used by kSubquery

  // kSubquery
  std::unique_ptr<SelectStmt> subquery;

  // kJoin
  std::unique_ptr<TableRef> left;
  std::unique_ptr<TableRef> right;
  JoinType join_type = JoinType::kInner;
  ExprPtr join_condition;  // null for CROSS

  TableRef() : kind(Kind::kBaseTable) {}
  ~TableRef();

  static std::unique_ptr<TableRef> Base(std::string name,
                                        std::string alias = "");
  static std::unique_ptr<TableRef> Derived(std::unique_ptr<SelectStmt> q,
                                           std::string alias);
  static std::unique_ptr<TableRef> Join(std::unique_ptr<TableRef> l,
                                        std::unique_ptr<TableRef> r,
                                        JoinType type, ExprPtr on);

  std::unique_ptr<TableRef> Clone() const;
  std::string ToString() const;

  /// Name this relation is visible under (alias if set, else table name).
  const std::string& EffectiveName() const {
    return alias.empty() ? table_name : alias;
  }
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // "" if none
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

/// \brief A WITH-clause CTE. `recursive` marks the
/// `base UNION ALL recursive-part` form used by §8.1 FOR-loop iteration
/// spaces.
struct CteDef {
  std::string name;
  std::vector<std::string> column_names;  // optional explicit column list
  std::unique_ptr<SelectStmt> query;
  bool recursive = false;
};

struct SelectStmt {
  std::vector<CteDef> ctes;
  bool distinct = false;
  ExprPtr top_n;  ///< TOP n (evaluated against variables), null if absent
  std::vector<SelectItem> items;
  bool select_star = false;
  std::vector<std::unique_ptr<TableRef>> from;  ///< comma-joined
  ExprPtr where;                                ///< null if absent
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  /// UNION ALL chain (right operand); used by recursive CTE bodies.
  std::unique_ptr<SelectStmt> union_all;
  /// Eq. 6 enforcement: set by the Aggify rewrite when the cursor query had
  /// ORDER BY. Forces the StreamAggregate physical operator so Accumulate
  /// is invoked in sort order. Not part of the surface syntax.
  bool force_stream_aggregate = false;

  std::unique_ptr<SelectStmt> Clone() const;
  std::string ToString() const;

  bool HasOrderBy() const { return !order_by.empty(); }
  bool HasGroupBy() const { return !group_by.empty(); }
};

}  // namespace aggify
