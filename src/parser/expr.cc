#include "parser/expr.h"

#include "parser/query_ast.h"

namespace aggify {

std::string BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kConcat: return "||";
  }
  return "?";
}

void Expr::Walk(const std::function<void(const Expr&)>& fn) const {
  fn(*this);
  for (const Expr* c : Children()) {
    if (c != nullptr) c->Walk(fn);
  }
}

// ---- LiteralExpr ----

ExprPtr LiteralExpr::Clone() const {
  return std::make_unique<LiteralExpr>(value);
}

std::string LiteralExpr::ToString() const {
  if (value.is_string()) {
    // Escape single quotes SQL-style.
    std::string out = "'";
    for (char c : value.string_value()) {
      out += c;
      if (c == '\'') out += '\'';
    }
    out += "'";
    return out;
  }
  if (value.is_date()) return "'" + DateToString(value.date_value()) + "'";
  return value.ToString();
}

// ---- ColumnRefExpr / VarRefExpr ----

ExprPtr ColumnRefExpr::Clone() const {
  auto c = std::make_unique<ColumnRefExpr>(name);
  c->bound_index = bound_index;
  return c;
}

ExprPtr VarRefExpr::Clone() const {
  return std::make_unique<VarRefExpr>(name);
}

// ---- UnaryExpr / BinaryExpr ----

ExprPtr UnaryExpr::Clone() const {
  return std::make_unique<UnaryExpr>(op, operand->Clone());
}

std::string UnaryExpr::ToString() const {
  if (op == UnaryOp::kNeg) return "(-" + operand->ToString() + ")";
  return "(NOT " + operand->ToString() + ")";
}

ExprPtr BinaryExpr::Clone() const {
  return std::make_unique<BinaryExpr>(op, left->Clone(), right->Clone());
}

std::string BinaryExpr::ToString() const {
  return "(" + left->ToString() + " " + BinaryOpToString(op) + " " +
         right->ToString() + ")";
}

// ---- FunctionCallExpr ----

ExprPtr FunctionCallExpr::Clone() const {
  std::vector<ExprPtr> cloned;
  cloned.reserve(args.size());
  for (const auto& a : args) cloned.push_back(a->Clone());
  return std::make_unique<FunctionCallExpr>(name, std::move(cloned));
}

std::string FunctionCallExpr::ToString() const {
  std::string out = name + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i]->ToString();
  }
  return out + ")";
}

std::vector<const Expr*> FunctionCallExpr::Children() const {
  std::vector<const Expr*> out;
  for (const auto& a : args) out.push_back(a.get());
  return out;
}

std::vector<Expr*> FunctionCallExpr::MutableChildren() {
  std::vector<Expr*> out;
  for (auto& a : args) out.push_back(a.get());
  return out;
}

// ---- AggregateCallExpr ----

ExprPtr AggregateCallExpr::Clone() const {
  std::vector<ExprPtr> cloned;
  cloned.reserve(args.size());
  for (const auto& a : args) cloned.push_back(a->Clone());
  auto agg =
      std::make_unique<AggregateCallExpr>(name, std::move(cloned), is_star);
  agg->distinct = distinct;
  return agg;
}

std::string AggregateCallExpr::ToString() const {
  std::string out = name + "(";
  if (is_star) {
    out += "*";
  } else {
    if (distinct) out += "DISTINCT ";
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) out += ", ";
      out += args[i]->ToString();
    }
  }
  return out + ")";
}

std::vector<const Expr*> AggregateCallExpr::Children() const {
  std::vector<const Expr*> out;
  for (const auto& a : args) out.push_back(a.get());
  return out;
}

std::vector<Expr*> AggregateCallExpr::MutableChildren() {
  std::vector<Expr*> out;
  for (auto& a : args) out.push_back(a.get());
  return out;
}

// ---- Subquery expressions ----

ScalarSubqueryExpr::ScalarSubqueryExpr(std::unique_ptr<SelectStmt> q)
    : Expr(ExprKind::kScalarSubquery), query(std::move(q)) {}
ScalarSubqueryExpr::~ScalarSubqueryExpr() = default;

ExprPtr ScalarSubqueryExpr::Clone() const {
  return std::make_unique<ScalarSubqueryExpr>(query->Clone());
}

std::string ScalarSubqueryExpr::ToString() const {
  return "(" + query->ToString() + ")";
}

ExistsExpr::ExistsExpr(std::unique_ptr<SelectStmt> q, bool neg)
    : Expr(ExprKind::kExists), query(std::move(q)), negated(neg) {}
ExistsExpr::~ExistsExpr() = default;

ExprPtr ExistsExpr::Clone() const {
  return std::make_unique<ExistsExpr>(query->Clone(), negated);
}

std::string ExistsExpr::ToString() const {
  return std::string(negated ? "NOT EXISTS (" : "EXISTS (") +
         query->ToString() + ")";
}

// ---- InListExpr ----

InListExpr::InListExpr(ExprPtr e, std::vector<ExprPtr> l, bool neg)
    : Expr(ExprKind::kInList),
      operand(std::move(e)),
      list(std::move(l)),
      negated(neg) {}

InListExpr::InListExpr(ExprPtr e, std::unique_ptr<SelectStmt> q, bool neg)
    : Expr(ExprKind::kInList),
      operand(std::move(e)),
      subquery(std::move(q)),
      negated(neg) {}
InListExpr::~InListExpr() = default;

ExprPtr InListExpr::Clone() const {
  if (subquery != nullptr) {
    return std::make_unique<InListExpr>(operand->Clone(), subquery->Clone(),
                                        negated);
  }
  std::vector<ExprPtr> cloned;
  cloned.reserve(list.size());
  for (const auto& e : list) cloned.push_back(e->Clone());
  return std::make_unique<InListExpr>(operand->Clone(), std::move(cloned),
                                      negated);
}

std::string InListExpr::ToString() const {
  std::string out = operand->ToString() + (negated ? " NOT IN (" : " IN (");
  if (subquery != nullptr) {
    out += subquery->ToString();
  } else {
    for (size_t i = 0; i < list.size(); ++i) {
      if (i > 0) out += ", ";
      out += list[i]->ToString();
    }
  }
  return out + ")";
}

std::vector<const Expr*> InListExpr::Children() const {
  std::vector<const Expr*> out{operand.get()};
  for (const auto& e : list) out.push_back(e.get());
  return out;
}

std::vector<Expr*> InListExpr::MutableChildren() {
  std::vector<Expr*> out{operand.get()};
  for (auto& e : list) out.push_back(e.get());
  return out;
}

// ---- IsNullExpr ----

ExprPtr IsNullExpr::Clone() const {
  return std::make_unique<IsNullExpr>(operand->Clone(), negated);
}

std::string IsNullExpr::ToString() const {
  return operand->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
}

// ---- CaseWhenExpr ----

ExprPtr CaseWhenExpr::Clone() const {
  std::vector<Arm> cloned;
  cloned.reserve(arms.size());
  for (const auto& a : arms) {
    cloned.push_back(Arm{a.condition->Clone(), a.result->Clone()});
  }
  return std::make_unique<CaseWhenExpr>(
      std::move(cloned), else_result ? else_result->Clone() : nullptr);
}

std::string CaseWhenExpr::ToString() const {
  std::string out = "CASE";
  for (const auto& a : arms) {
    out += " WHEN " + a.condition->ToString() + " THEN " + a.result->ToString();
  }
  if (else_result != nullptr) out += " ELSE " + else_result->ToString();
  return out + " END";
}

std::vector<const Expr*> CaseWhenExpr::Children() const {
  std::vector<const Expr*> out;
  for (const auto& a : arms) {
    out.push_back(a.condition.get());
    out.push_back(a.result.get());
  }
  if (else_result != nullptr) out.push_back(else_result.get());
  return out;
}

std::vector<Expr*> CaseWhenExpr::MutableChildren() {
  std::vector<Expr*> out;
  for (auto& a : arms) {
    out.push_back(a.condition.get());
    out.push_back(a.result.get());
  }
  if (else_result != nullptr) out.push_back(else_result.get());
  return out;
}

// ---- CastExpr ----

ExprPtr CastExpr::Clone() const {
  return std::make_unique<CastExpr>(operand->Clone(), target);
}

std::string CastExpr::ToString() const {
  return "CAST(" + operand->ToString() + " AS " + target.ToString() + ")";
}

// ---- Convenience constructors ----

ExprPtr MakeLiteral(Value v) { return std::make_unique<LiteralExpr>(std::move(v)); }
ExprPtr MakeColumnRef(std::string name) {
  return std::make_unique<ColumnRefExpr>(std::move(name));
}
ExprPtr MakeVarRef(std::string name) {
  return std::make_unique<VarRefExpr>(std::move(name));
}
ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r) {
  return std::make_unique<BinaryExpr>(op, std::move(l), std::move(r));
}
ExprPtr MakeUnary(UnaryOp op, ExprPtr e) {
  return std::make_unique<UnaryExpr>(op, std::move(e));
}

// ---- Collectors ----

namespace {

void CollectVarsFromSelect(const SelectStmt& q, std::vector<std::string>* out);

void CollectVarsFromExpr(const Expr& e, std::vector<std::string>* out) {
  if (e.kind == ExprKind::kVarRef) {
    out->push_back(static_cast<const VarRefExpr&>(e).name);
  } else if (e.kind == ExprKind::kScalarSubquery) {
    CollectVarsFromSelect(*static_cast<const ScalarSubqueryExpr&>(e).query, out);
  } else if (e.kind == ExprKind::kExists) {
    CollectVarsFromSelect(*static_cast<const ExistsExpr&>(e).query, out);
  } else if (e.kind == ExprKind::kInList) {
    const auto& in = static_cast<const InListExpr&>(e);
    if (in.subquery != nullptr) CollectVarsFromSelect(*in.subquery, out);
  }
  for (const Expr* c : e.Children()) {
    if (c != nullptr) CollectVarsFromExpr(*c, out);
  }
}

void CollectVarsFromTableRef(const TableRef& t, std::vector<std::string>* out) {
  switch (t.kind) {
    case TableRef::Kind::kBaseTable:
      break;
    case TableRef::Kind::kSubquery:
      CollectVarsFromSelect(*t.subquery, out);
      break;
    case TableRef::Kind::kJoin:
      CollectVarsFromTableRef(*t.left, out);
      CollectVarsFromTableRef(*t.right, out);
      if (t.join_condition != nullptr) {
        CollectVarsFromExpr(*t.join_condition, out);
      }
      break;
  }
}

void CollectVarsFromSelect(const SelectStmt& q, std::vector<std::string>* out) {
  for (const auto& cte : q.ctes) CollectVarsFromSelect(*cte.query, out);
  if (q.top_n != nullptr) CollectVarsFromExpr(*q.top_n, out);
  for (const auto& item : q.items) CollectVarsFromExpr(*item.expr, out);
  for (const auto& t : q.from) CollectVarsFromTableRef(*t, out);
  if (q.where != nullptr) CollectVarsFromExpr(*q.where, out);
  for (const auto& g : q.group_by) CollectVarsFromExpr(*g, out);
  if (q.having != nullptr) CollectVarsFromExpr(*q.having, out);
  for (const auto& o : q.order_by) CollectVarsFromExpr(*o.expr, out);
  if (q.union_all != nullptr) CollectVarsFromSelect(*q.union_all, out);
}

}  // namespace

void CollectVariableRefs(const Expr& e, std::vector<std::string>* out) {
  CollectVarsFromExpr(e, out);
}

void CollectColumnRefs(const Expr& e, std::vector<std::string>* out) {
  e.Walk([out](const Expr& node) {
    if (node.kind == ExprKind::kColumnRef) {
      out->push_back(static_cast<const ColumnRefExpr&>(node).name);
    }
  });
}

bool ContainsAggregateCall(const Expr& e) {
  bool found = false;
  e.Walk([&found](const Expr& node) {
    if (node.kind == ExprKind::kAggregateCall) found = true;
  });
  return found;
}

}  // namespace aggify
