#include "aggify/analysis_sets.h"

#include <algorithm>
#include <set>

#include "exec/eval.h"

namespace aggify {

namespace {

bool IsTempTableName(const std::string& name) {
  return !name.empty() && (name[0] == '@' || name[0] == '#');
}

/// Appends one diagnostic (anchored at the offending statement's byte
/// offset) per violation, without stopping at the first — the full list is
/// what AggifyReport::skip_details and the DML-body recovery gate need.
void CollectBodyDiags(const Stmt& stmt, std::vector<Diagnostic>* out) {
  auto add = [&](DiagCode code, std::string message) {
    Diagnostic d = MakeDiagnostic(code, "", std::move(message));
    d.offset = stmt.source_offset;
    out->push_back(std::move(d));
  };
  switch (stmt.kind) {
    case StmtKind::kInsert: {
      const auto& s = static_cast<const InsertStmt&>(stmt);
      if (!IsTempTableName(s.table)) {
        add(DiagCode::kPersistentInsert,
            "loop body INSERTs into persistent table '" + s.table + "'");
      }
      break;
    }
    case StmtKind::kUpdate: {
      const auto& s = static_cast<const UpdateStmt&>(stmt);
      if (!IsTempTableName(s.table)) {
        add(DiagCode::kPersistentUpdate,
            "loop body UPDATEs persistent table '" + s.table + "'");
      }
      break;
    }
    case StmtKind::kDelete: {
      const auto& s = static_cast<const DeleteStmt&>(stmt);
      if (!IsTempTableName(s.table)) {
        add(DiagCode::kPersistentDelete,
            "loop body DELETEs from persistent table '" + s.table + "'");
      }
      break;
    }
    case StmtKind::kReturn:
      add(DiagCode::kReturnInLoop,
          "loop body contains RETURN (early function exit)");
      break;
    case StmtKind::kBlock: {
      const auto& b = static_cast<const BlockStmt&>(stmt);
      for (const auto& s : b.statements) CollectBodyDiags(*s, out);
      break;
    }
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(stmt);
      CollectBodyDiags(*i.then_branch, out);
      if (i.else_branch != nullptr) CollectBodyDiags(*i.else_branch, out);
      break;
    }
    case StmtKind::kWhile:
      CollectBodyDiags(*static_cast<const WhileStmt&>(stmt).body, out);
      break;
    case StmtKind::kGuardedRewrite: {
      // A previously rewritten inner DML loop is still a persistent write;
      // an enclosing loop must not capture it into an aggregate body.
      const auto& g = static_cast<const GuardedRewriteStmt&>(stmt);
      if (g.rewritten_dml != nullptr) CollectBodyDiags(*g.rewritten_dml, out);
      break;
    }
    case StmtKind::kFor:
      CollectBodyDiags(*static_cast<const ForStmt&>(stmt).body, out);
      break;
    case StmtKind::kTryCatch: {
      const auto& tc = static_cast<const TryCatchStmt&>(stmt);
      CollectBodyDiags(*tc.try_block, out);
      CollectBodyDiags(*tc.catch_block, out);
      break;
    }
    default:
      break;
  }
}

/// Soundness check the original prototype skipped entirely: a loop body
/// calling a UDF can reach persistent-state DML interprocedurally, which the
/// synthesized aggregate must not execute. The call graph's effect fixpoint
/// decides; anything it cannot resolve is rejected too.
void CollectCallDiags(const BlockStmt& body, const Catalog* catalog,
                      size_t anchor_offset, std::vector<Diagnostic>* out) {
  std::set<std::string> called;
  CollectCalledFunctions(body, &called);
  if (called.empty()) return;

  auto add = [&](DiagCode code, std::string message) {
    Diagnostic d = MakeDiagnostic(code, "", std::move(message));
    d.offset = anchor_offset;
    out->push_back(std::move(d));
  };
  CallGraph graph;
  if (catalog != nullptr) {
    graph = CallGraph::Build(*catalog, IsScalarBuiltinName);
  }
  for (const std::string& name : called) {
    if (IsScalarBuiltinName(name)) continue;
    if (catalog == nullptr) {
      add(DiagCode::kUnknownFunctionCall,
          "loop body calls " + name +
              " and no catalog is available to prove it pure");
      continue;
    }
    FunctionEffects effects = graph.EffectsOf(name);
    if (effects.level == EffectLevel::kWritesPersistentState) {
      add(DiagCode::kImpureUdfCall,
          "loop body calls " + name + ", which writes persistent state (" +
              effects.evidence + ")");
    } else if (effects.level == EffectLevel::kUnknown) {
      add(DiagCode::kUnknownFunctionCall,
          "loop body calls " + name + ", whose effects are unknown (" +
              effects.evidence + ")");
    }
  }
}

}  // namespace

std::vector<Diagnostic> ApplicabilityDiagnostics(const CursorLoopInfo& loop,
                                                 const Catalog* catalog) {
  std::vector<Diagnostic> out;
  auto add = [&](DiagCode code, std::string message, size_t offset) {
    Diagnostic d = MakeDiagnostic(code, "", std::move(message));
    d.offset = offset;
    out.push_back(std::move(d));
  };
  const size_t declare_offset =
      loop.declare != nullptr ? loop.declare->source_offset : 0;
  if (loop.query().select_star) {
    add(DiagCode::kSelectStarCursor,
        "cursor query uses SELECT *; the rewrite needs a named column list",
        declare_offset);
  }
  if (loop.priming_fetch->into.size() > loop.query().items.size()) {
    add(DiagCode::kFetchArityMismatch,
        "FETCH INTO has more variables than the cursor query projects",
        declare_offset);
  }
  // The trailing fetch must assign the same variables as the priming fetch,
  // or the parameter binding would be ambiguous.
  const BlockStmt& body = loop.body();
  for (const auto& s : body.statements) {
    if (s->kind == StmtKind::kFetch) {
      const auto& f = static_cast<const FetchStmt&>(*s);
      if (f.cursor == loop.cursor_name && f.into != loop.priming_fetch->into) {
        add(DiagCode::kInconsistentFetchVars,
            "FETCH statements on the cursor assign different variables",
            s->source_offset);
        break;  // one report per loop, matching the short-circuit check
      }
    }
  }
  CollectBodyDiags(body, &out);
  CollectCallDiags(body, catalog,
                   loop.loop != nullptr ? loop.loop->source_offset : 0, &out);
  return out;
}

Status CheckApplicability(const CursorLoopInfo& loop, const Catalog* catalog) {
  std::vector<Diagnostic> diags = ApplicabilityDiagnostics(loop, catalog);
  if (diags.empty()) return Status::OK();
  return NotApplicableDiag(diags.front().code, diags.front().message);
}

namespace {

void CollectDeclaredVars(const Stmt& stmt, std::set<std::string>* out) {
  switch (stmt.kind) {
    case StmtKind::kDeclareVar:
      out->insert(static_cast<const DeclareVarStmt&>(stmt).name);
      break;
    case StmtKind::kBlock:
      for (const auto& s : static_cast<const BlockStmt&>(stmt).statements) {
        CollectDeclaredVars(*s, out);
      }
      break;
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(stmt);
      CollectDeclaredVars(*i.then_branch, out);
      if (i.else_branch != nullptr) CollectDeclaredVars(*i.else_branch, out);
      break;
    }
    case StmtKind::kWhile:
      CollectDeclaredVars(*static_cast<const WhileStmt&>(stmt).body, out);
      break;
    case StmtKind::kFor: {
      const auto& f = static_cast<const ForStmt&>(stmt);
      out->insert(f.var);
      CollectDeclaredVars(*f.body, out);
      break;
    }
    case StmtKind::kTryCatch: {
      const auto& tc = static_cast<const TryCatchStmt&>(stmt);
      CollectDeclaredVars(*tc.try_block, out);
      CollectDeclaredVars(*tc.catch_block, out);
      break;
    }
    default:
      break;
  }
}

bool IsPseudoVariable(const std::string& v) {
  return v.rfind("@@", 0) == 0;  // @@FETCH_STATUS and friends
}

/// Names of table variables declared anywhere in the program. These are not
/// value variables: the synthesized aggregate reaches them through the
/// session catalog (shared state), so they never become fields or
/// parameters.
void CollectTableVars(const Stmt& stmt, std::set<std::string>* out) {
  switch (stmt.kind) {
    case StmtKind::kDeclareTempTable:
      out->insert(static_cast<const DeclareTempTableStmt&>(stmt).name);
      break;
    case StmtKind::kBlock:
      for (const auto& s : static_cast<const BlockStmt&>(stmt).statements) {
        CollectTableVars(*s, out);
      }
      break;
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(stmt);
      CollectTableVars(*i.then_branch, out);
      if (i.else_branch != nullptr) CollectTableVars(*i.else_branch, out);
      break;
    }
    case StmtKind::kWhile:
      CollectTableVars(*static_cast<const WhileStmt&>(stmt).body, out);
      break;
    case StmtKind::kFor:
      CollectTableVars(*static_cast<const ForStmt&>(stmt).body, out);
      break;
    case StmtKind::kTryCatch: {
      const auto& tc = static_cast<const TryCatchStmt&>(stmt);
      CollectTableVars(*tc.try_block, out);
      CollectTableVars(*tc.catch_block, out);
      break;
    }
    default:
      break;
  }
}

}  // namespace

std::set<std::string> TopLevelVariables(const BlockStmt& block) {
  std::set<std::string> out;
  for (const auto& stmt : block.statements) {
    switch (stmt->kind) {
      case StmtKind::kDeclareVar:
        out.insert(static_cast<const DeclareVarStmt&>(*stmt).name);
        break;
      case StmtKind::kBlock: {
        auto inner = TopLevelVariables(static_cast<const BlockStmt&>(*stmt));
        out.insert(inner.begin(), inner.end());
        break;
      }
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(*stmt);
        if (i.then_branch->kind == StmtKind::kBlock) {
          auto inner =
              TopLevelVariables(static_cast<const BlockStmt&>(*i.then_branch));
          out.insert(inner.begin(), inner.end());
        }
        if (i.else_branch != nullptr &&
            i.else_branch->kind == StmtKind::kBlock) {
          auto inner =
              TopLevelVariables(static_cast<const BlockStmt&>(*i.else_branch));
          out.insert(inner.begin(), inner.end());
        }
        break;
      }
      default:
        break;  // loop bodies are per-iteration scope, not outputs
    }
  }
  return out;
}

Result<LoopSets> ComputeLoopSets(const BlockStmt& program_body,
                                 const std::vector<std::string>& params,
                                 const CursorLoopInfo& loop,
                                 const std::set<std::string>* observable_vars) {
  ASSIGN_OR_RETURN(auto cfg, Cfg::Build(program_body, params));
  DataflowResult flow = DataflowResult::Run(*cfg);

  std::vector<int> loop_nodes = cfg->NodesInSubtree(*loop.loop);
  std::set<int> loop_node_set(loop_nodes.begin(), loop_nodes.end());
  ASSIGN_OR_RETURN(int exit_node, cfg->LoopExitNode(*loop.loop));
  std::set<std::string> live_at_exit = flow.LiveIn(exit_node);
  if (observable_vars != nullptr) {
    std::set<std::string> fetch_vars(loop.priming_fetch->into.begin(),
                                     loop.priming_fetch->into.end());
    for (const auto& v : *observable_vars) {
      if (fetch_vars.count(v) == 0) live_at_exit.insert(v);
    }
  }

  LoopSets sets;
  sets.ordered = loop.query().HasOrderBy();

  std::set<std::string> table_vars;
  CollectTableVars(program_body, &table_vars);
  auto is_value_var = [&](const std::string& v) {
    return !IsPseudoVariable(v) && table_vars.count(v) == 0;
  };

  // V_fetch: FETCH INTO order (priming fetch; applicability guarantees the
  // trailing fetch matches).
  sets.v_fetch = loop.priming_fetch->into;
  std::set<std::string> fetch_set(sets.v_fetch.begin(), sets.v_fetch.end());

  // V_Δ: all variables referenced (defined or used) in the loop subtree.
  std::set<std::string> delta;
  for (int id : loop_nodes) {
    const CfgNode& n = cfg->node(id);
    for (const auto& v : n.defs) {
      if (is_value_var(v)) delta.insert(v);
    }
    for (const auto& v : n.uses) {
      if (is_value_var(v)) delta.insert(v);
    }
  }
  sets.v_delta.assign(delta.begin(), delta.end());

  // V_local: declared inside Δ and dead at loop exit.
  std::set<std::string> declared_in_loop;
  CollectDeclaredVars(*loop.loop->body, &declared_in_loop);
  std::set<std::string> local;
  for (const auto& v : declared_in_loop) {
    if (live_at_exit.count(v) == 0) local.insert(v);
  }
  sets.v_local.assign(local.begin(), local.end());

  // Eq. 1: V_F = (V_Δ − (V_fetch ∪ V_local)).
  std::set<std::string> fields;
  for (const auto& v : delta) {
    if (fetch_set.count(v) == 0 && local.count(v) == 0) fields.insert(v);
  }
  sets.v_fields.assign(fields.begin(), fields.end());

  // Eqs. 2–3: P_accum = vars used in Δ with a reaching definition outside
  // the loop. Ordered: fetch vars first, then the rest sorted.
  std::set<std::string> accum;
  for (const Use& use : flow.UsesIn(loop_nodes)) {
    if (!is_value_var(use.var)) continue;
    for (const Definition& def : flow.UdChain(use.node, use.var)) {
      if (loop_node_set.count(def.node) == 0) {
        accum.insert(use.var);
        break;
      }
    }
  }
  for (const auto& v : sets.v_fetch) {
    if (accum.count(v) != 0) sets.p_accum.push_back(v);
  }
  for (const auto& v : accum) {
    if (fetch_set.count(v) == 0) sets.p_accum.push_back(v);
  }

  // Eq. 4: V_init = P_accum − V_fetch.
  for (const auto& v : sets.p_accum) {
    if (fetch_set.count(v) == 0) sets.v_init.push_back(v);
  }

  // §5.4: V_term = fields live at loop exit.
  for (const auto& v : sets.v_fields) {
    if (live_at_exit.count(v) != 0) sets.v_term.push_back(v);
  }

  // A V_term variable declared inside the loop has no declaration at the
  // rewrite site: the MultiAssign target (and its entry-value argument)
  // would be unresolvable. Such loops keep per-iteration state observable
  // after the loop — outside the model.
  for (const auto& v : sets.v_term) {
    if (declared_in_loop.count(v) != 0) {
      return NotApplicableDiag(
          DiagCode::kLoopLocalObservable,
          "variable " + v +
              " is declared inside the loop but observable after it");
    }
  }

  // Soundness extension (see header): V_term fields whose entry value is not
  // already carried by a V_init parameter.
  {
    std::set<std::string> covered(sets.v_init.begin(), sets.v_init.end());
    for (const auto& v : sets.v_term) {
      if (covered.count(v) == 0) sets.v_extra_init.push_back(v);
    }
  }

  // Soundness check beyond the paper: a fetch variable live after the loop
  // would observe the last fetched value, which the rewrite does not
  // reproduce (fetch vars are not fields by Eq. 1).
  for (const auto& v : sets.v_fetch) {
    if (live_at_exit.count(v) != 0) {
      return NotApplicableDiag(
          DiagCode::kFetchVarLiveAfterLoop,
          "fetch variable " + v + " is live after the loop");
    }
  }
  return sets;
}

}  // namespace aggify
