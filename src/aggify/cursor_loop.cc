#include "aggify/cursor_loop.h"

namespace aggify {

bool IsFetchStatusCondition(const Expr& cond) {
  std::vector<std::string> vars;
  CollectVariableRefs(cond, &vars);
  for (const auto& v : vars) {
    if (v == "@@fetch_status") return true;
  }
  return false;
}

namespace {

/// The trailing FETCH for cursor `name` inside body (last statement of the
/// body block, possibly nested one level under IF? — we require top level).
const FetchStmt* FindTrailingFetch(const BlockStmt& body,
                                   const std::string& name) {
  for (auto it = body.statements.rbegin(); it != body.statements.rend(); ++it) {
    if ((*it)->kind == StmtKind::kFetch) {
      const auto& f = static_cast<const FetchStmt&>(**it);
      if (f.cursor == name) return &f;
    }
  }
  return nullptr;
}

void FindInBlock(BlockStmt* block, std::vector<CursorLoopInfo>* out) {
  // Recurse first so inner loops are emitted before outer ones.
  for (auto& stmt : block->statements) {
    switch (stmt->kind) {
      case StmtKind::kBlock:
        FindInBlock(static_cast<BlockStmt*>(stmt.get()), out);
        break;
      case StmtKind::kIf: {
        auto* i = static_cast<IfStmt*>(stmt.get());
        if (i->then_branch->kind == StmtKind::kBlock) {
          FindInBlock(static_cast<BlockStmt*>(i->then_branch.get()), out);
        }
        if (i->else_branch != nullptr &&
            i->else_branch->kind == StmtKind::kBlock) {
          FindInBlock(static_cast<BlockStmt*>(i->else_branch.get()), out);
        }
        break;
      }
      case StmtKind::kWhile: {
        auto* w = static_cast<WhileStmt*>(stmt.get());
        if (w->body->kind == StmtKind::kBlock) {
          FindInBlock(static_cast<BlockStmt*>(w->body.get()), out);
        }
        break;
      }
      case StmtKind::kFor: {
        auto* f = static_cast<ForStmt*>(stmt.get());
        if (f->body->kind == StmtKind::kBlock) {
          FindInBlock(static_cast<BlockStmt*>(f->body.get()), out);
        }
        break;
      }
      case StmtKind::kTryCatch: {
        auto* tc = static_cast<TryCatchStmt*>(stmt.get());
        if (tc->try_block->kind == StmtKind::kBlock) {
          FindInBlock(static_cast<BlockStmt*>(tc->try_block.get()), out);
        }
        if (tc->catch_block->kind == StmtKind::kBlock) {
          FindInBlock(static_cast<BlockStmt*>(tc->catch_block.get()), out);
        }
        break;
      }
      default:
        break;
    }
  }

  // Pattern-match cursor loops at this level.
  auto& stmts = block->statements;
  for (size_t d = 0; d < stmts.size(); ++d) {
    if (stmts[d]->kind != StmtKind::kDeclareCursor) continue;
    const auto* declare = static_cast<const DeclareCursorStmt*>(stmts[d].get());
    const std::string& name = declare->name;

    CursorLoopInfo info;
    info.container = block;
    info.cursor_name = name;
    info.declare = declare;
    info.declare_index = d;

    // OPEN after DECLARE (intervening statements allowed).
    for (size_t j = d + 1; j < stmts.size(); ++j) {
      if (stmts[j]->kind == StmtKind::kOpenCursor &&
          static_cast<const OpenCursorStmt&>(*stmts[j]).name == name) {
        info.open = static_cast<const OpenCursorStmt*>(stmts[j].get());
        info.open_index = j;
        break;
      }
    }
    if (info.open == nullptr) continue;

    // Priming FETCH immediately after OPEN.
    size_t f = info.open_index + 1;
    if (f >= stmts.size() || stmts[f]->kind != StmtKind::kFetch) continue;
    {
      const auto& fetch = static_cast<const FetchStmt&>(*stmts[f]);
      if (fetch.cursor != name) continue;
      info.priming_fetch = &fetch;
      info.fetch_index = f;
    }

    // WHILE @@FETCH_STATUS loop immediately after the priming fetch.
    size_t w = f + 1;
    if (w >= stmts.size() || stmts[w]->kind != StmtKind::kWhile) continue;
    auto* loop = static_cast<WhileStmt*>(stmts[w].get());
    if (!IsFetchStatusCondition(*loop->condition)) continue;
    if (loop->body->kind != StmtKind::kBlock) continue;
    if (FindTrailingFetch(static_cast<const BlockStmt&>(*loop->body), name) ==
        nullptr) {
      continue;
    }
    info.loop = loop;
    info.while_index = w;

    // CLOSE / DEALLOCATE after the loop (optional, possibly separated).
    for (size_t j = w + 1; j < stmts.size(); ++j) {
      if (stmts[j]->kind == StmtKind::kCloseCursor &&
          static_cast<const CloseCursorStmt&>(*stmts[j]).name == name &&
          info.close == nullptr) {
        info.close = static_cast<const CloseCursorStmt*>(stmts[j].get());
        info.close_index = j;
      }
      if (stmts[j]->kind == StmtKind::kDeallocateCursor &&
          static_cast<const DeallocateCursorStmt&>(*stmts[j]).name == name &&
          info.deallocate == nullptr) {
        info.deallocate =
            static_cast<const DeallocateCursorStmt*>(stmts[j].get());
        info.deallocate_index = j;
      }
    }
    out->push_back(std::move(info));
  }
}

}  // namespace

std::vector<CursorLoopInfo> FindCursorLoops(BlockStmt* root) {
  std::vector<CursorLoopInfo> out;
  FindInBlock(root, &out);
  return out;
}

}  // namespace aggify
