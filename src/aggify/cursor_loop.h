// Cursor-loop detection: finds the Definition 4.1 pattern
//
//   DECLARE c CURSOR FOR Q;
//   ... ;
//   OPEN c;
//   FETCH NEXT FROM c INTO vars;          -- priming fetch
//   WHILE @@FETCH_STATUS = 0
//   BEGIN  Δ  ... FETCH NEXT FROM c INTO vars;  END
//   CLOSE c;  DEALLOCATE c;
//
// in a statement block. Nested loops are reported innermost-first so
// Algorithm 1 can be applied inner loops first (§6.3.1).
#pragma once

#include <vector>

#include "common/result.h"
#include "parser/statement.h"

namespace aggify {

struct CursorLoopInfo {
  /// Block whose statement list contains the pattern.
  BlockStmt* container = nullptr;
  std::string cursor_name;

  const DeclareCursorStmt* declare = nullptr;
  const OpenCursorStmt* open = nullptr;
  const FetchStmt* priming_fetch = nullptr;
  WhileStmt* loop = nullptr;
  const CloseCursorStmt* close = nullptr;           // may be absent
  const DeallocateCursorStmt* deallocate = nullptr;  // may be absent

  /// Indices into container->statements of each matched statement
  /// (for removal during rewrite).
  size_t declare_index = 0;
  size_t open_index = 0;
  size_t fetch_index = 0;
  size_t while_index = 0;
  /// SIZE_MAX when absent.
  size_t close_index = SIZE_MAX;
  size_t deallocate_index = SIZE_MAX;

  const SelectStmt& query() const { return *declare->query; }
  BlockStmt& body() const { return static_cast<BlockStmt&>(*loop->body); }
};

/// \brief Finds every cursor loop in `root`, innermost first. Loops whose
/// WHILE body is not a BEGIN..END block, or whose condition is not a
/// @@FETCH_STATUS test, are not matched.
std::vector<CursorLoopInfo> FindCursorLoops(BlockStmt* root);

/// True if `cond` is a test of @@FETCH_STATUS (e.g. `@@FETCH_STATUS = 0`).
bool IsFetchStatusCondition(const Expr& cond);

}  // namespace aggify
