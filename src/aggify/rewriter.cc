#include "aggify/rewriter.h"

#include <algorithm>
#include <functional>
#include <set>

#include "exec/eval.h"

namespace aggify {

namespace {

/// Removes the (single, trailing) FETCH on `cursor` from a cloned body.
void StripFetches(BlockStmt* body, const std::string& cursor) {
  auto& stmts = body->statements;
  stmts.erase(std::remove_if(stmts.begin(), stmts.end(),
                             [&](const StmtPtr& s) {
                               return s->kind == StmtKind::kFetch &&
                                      static_cast<const FetchStmt&>(*s)
                                              .cursor == cursor;
                             }),
              stmts.end());
}

/// Builds the Eq. 5 / Eq. 6 rewritten query:
///   SELECT Agg(q.c<j>..., @vars...) FROM (Q') q
/// where Q' is the cursor query with its select items aliased c0..cN so the
/// outer aggregate arguments can reference them unambiguously.
std::unique_ptr<SelectStmt> BuildRewrittenQuery(const CursorLoopInfo& loop,
                                                const LoopSets& sets,
                                                const std::string& agg_name,
                                                bool elide_sort) {
  auto derived = loop.query().Clone();
  for (size_t i = 0; i < derived->items.size(); ++i) {
    derived->items[i].alias = "c" + std::to_string(i);
  }
  // The fold classifier proved the body order-insensitive: the derived
  // query's ORDER BY (and with it Eq. 6's forced sort) is semantically inert
  // and dropped, freeing the planner to hash-aggregate and parallelize.
  if (elide_sort) derived->order_by.clear();

  // Map fetch variable -> projected column name (positional, like FETCH).
  auto column_for_fetch_var = [&](const std::string& var) -> std::string {
    for (size_t j = 0; j < loop.priming_fetch->into.size(); ++j) {
      if (loop.priming_fetch->into[j] == var) {
        return "q.c" + std::to_string(j);
      }
    }
    return "";  // unreachable: P_accum fetch vars come from FETCH INTO
  };

  std::vector<ExprPtr> args;
  std::set<std::string> fetch_set(sets.v_fetch.begin(), sets.v_fetch.end());
  for (const auto& v : sets.p_accum) {
    if (fetch_set.count(v) != 0) {
      args.push_back(MakeColumnRef(column_for_fetch_var(v)));
    } else {
      args.push_back(MakeVarRef(v));
    }
  }
  // Entry values for V_term fields Eq. 3 does not cover (soundness
  // extension; see LoopSets::v_extra_init).
  for (const auto& v : sets.v_extra_init) {
    args.push_back(MakeVarRef(v));
  }

  auto outer = std::make_unique<SelectStmt>();
  SelectItem item;
  item.expr = std::make_unique<AggregateCallExpr>(agg_name, std::move(args));
  item.alias = "aggval";
  outer->items.push_back(std::move(item));
  outer->from.push_back(TableRef::Derived(std::move(derived), "q"));
  // Eq. 6: ORDER BY in Q forces the streaming aggregate over the sorted
  // derived input so Accumulate sees rows in cursor order — unless the
  // order-insensitivity proof discharged the obligation.
  outer->force_stream_aggregate = sets.ordered && !elide_sort;
  return outer;
}

/// Builds the self-contained fallback block of a guarded rewrite: clones of
/// the original cursor-loop region (DECLARE CURSOR / OPEN / priming FETCH /
/// WHILE / CLOSE / DEALLOCATE), preceded by fresh NULL DECLAREs for every
/// loop-scratch variable whose original declaration §6.2 dead-declaration
/// removal may prune. Each such variable is written before read inside the
/// loop and dead after it (otherwise it would be referenced by the rewritten
/// query or be a V_term target and keep its declaration), so re-declaring it
/// to NULL is unobservable.
std::unique_ptr<BlockStmt> BuildFallbackBlock(const CursorLoopInfo& loop,
                                              const LoopSets& sets) {
  std::set<std::string> fetch_set(sets.v_fetch.begin(), sets.v_fetch.end());
  // Variables the rewritten statement still references as variables: their
  // declarations stay live, so the fallback must NOT reset them (they carry
  // the loop-entry values both paths start from).
  std::set<std::string> keep(sets.v_term.begin(), sets.v_term.end());
  for (const auto& v : sets.p_accum) {
    if (fetch_set.count(v) == 0) keep.insert(v);
  }
  for (const auto& v : sets.v_extra_init) keep.insert(v);

  std::set<std::string> local(sets.v_local.begin(), sets.v_local.end());
  std::set<std::string> redeclare(fetch_set);
  for (const auto& v : sets.v_delta) {
    if (local.count(v) == 0) redeclare.insert(v);
  }

  auto fallback = std::make_unique<BlockStmt>();
  for (const auto& v : redeclare) {
    if (keep.count(v) != 0 || v.rfind("@@", 0) == 0) continue;
    // The declared type is irrelevant: with no initializer the variable
    // starts NULL and takes the type of whatever the loop assigns.
    fallback->statements.push_back(
        std::make_unique<DeclareVarStmt>(v, DataType::Int(), nullptr));
  }
  fallback->statements.push_back(loop.declare->Clone());
  fallback->statements.push_back(loop.open->Clone());
  fallback->statements.push_back(loop.priming_fetch->Clone());
  fallback->statements.push_back(loop.loop->Clone());
  if (loop.close != nullptr) {
    fallback->statements.push_back(loop.close->Clone());
  }
  if (loop.deallocate != nullptr) {
    fallback->statements.push_back(loop.deallocate->Clone());
  }
  return fallback;
}

/// Requires the loop to advance via exactly one FETCH, as the last top-level
/// statement of the body (the canonical cursor-loop shape Definition 4.1's
/// "one row at a time" evaluation assumes).
Status CheckFetchShape(const CursorLoopInfo& loop) {
  int count = 0;
  std::function<void(const Stmt&)> count_fetches = [&](const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kFetch:
        if (static_cast<const FetchStmt&>(s).cursor == loop.cursor_name) {
          ++count;
        }
        break;
      case StmtKind::kBlock:
        for (const auto& c : static_cast<const BlockStmt&>(s).statements) {
          count_fetches(*c);
        }
        break;
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        count_fetches(*i.then_branch);
        if (i.else_branch != nullptr) count_fetches(*i.else_branch);
        break;
      }
      case StmtKind::kWhile:
        count_fetches(*static_cast<const WhileStmt&>(s).body);
        break;
      case StmtKind::kFor:
        count_fetches(*static_cast<const ForStmt&>(s).body);
        break;
      case StmtKind::kTryCatch: {
        const auto& tc = static_cast<const TryCatchStmt&>(s);
        count_fetches(*tc.try_block);
        count_fetches(*tc.catch_block);
        break;
      }
      default:
        break;
    }
  };
  count_fetches(loop.body());
  if (count != 1) {
    return NotApplicableDiag(
        DiagCode::kNonCanonicalFetch,
        "loop advances its cursor with " + std::to_string(count) +
            " FETCH statements; the canonical single trailing FETCH is "
            "required");
  }
  const auto& stmts = loop.body().statements;
  if (stmts.empty() || stmts.back()->kind != StmtKind::kFetch ||
      static_cast<const FetchStmt&>(*stmts.back()).cursor !=
          loop.cursor_name) {
    return NotApplicableDiag(
        DiagCode::kNonCanonicalFetch,
        "the cursor FETCH is not the last statement of the loop body");
  }
  return Status::OK();
}

}  // namespace

Result<bool> Aggify::RewriteOneLoop(BlockStmt* root,
                                    const std::vector<std::string>& params,
                                    const std::set<std::string>* observable_vars,
                                    std::set<const WhileStmt*>* skipped_loops,
                                    AggifyReport* report,
                                    const std::string& name_hint) {
  std::vector<CursorLoopInfo> loops = FindCursorLoops(root);
  for (CursorLoopInfo& loop : loops) {
    if (skipped_loops->count(loop.loop) != 0) continue;
    std::string loc = name_hint + ":" + loop.cursor_name;

    Status applicable = CheckApplicability(loop, &db_->catalog());
    if (applicable.ok()) applicable = CheckFetchShape(loop);
    if (!applicable.ok()) {
      if (!applicable.IsNotApplicable()) return applicable;
      skipped_loops->insert(loop.loop);
      report->skipped.push_back(DiagnosticFromStatus(applicable, loc));
      continue;
    }

    auto sets_result = ComputeLoopSets(*root, params, loop, observable_vars);
    if (!sets_result.ok()) {
      if (!sets_result.status().IsNotApplicable()) return sets_result.status();
      skipped_loops->insert(loop.loop);
      report->skipped.push_back(
          DiagnosticFromStatus(sets_result.status(), loc));
      continue;
    }
    LoopSets sets = std::move(sets_result).ValueOrDie();

    // Synthesize the aggregate from the FETCH-stripped body.
    std::string agg_name =
        name_hint + "_agg" + std::to_string(db_->NextObjectId());
    StmtPtr body_clone = loop.loop->body->Clone();
    auto* body_block = static_cast<BlockStmt*>(body_clone.release());
    StripFetches(body_block, loop.cursor_name);

    // Semantic analyses over the stripped body: order-sensitivity and
    // decomposability. Calls proven pure or read-only by the purity fixpoint
    // count as row-pure fold inputs.
    CallGraph call_graph =
        CallGraph::Build(db_->catalog(), IsScalarBuiltinName);
    auto pure_call = [&](const std::string& fn) {
      return IsScalarBuiltinName(fn) ||
             call_graph.EffectsOf(fn).level <= EffectLevel::kReadsDatabase;
    };
    std::set<std::string> field_set(sets.v_fields.begin(),
                                    sets.v_fields.end());
    std::set<std::string> fetch_var_set(sets.v_fetch.begin(),
                                        sets.v_fetch.end());
    BodyClassification classification =
        ClassifyLoopBody(*body_block, field_set, fetch_var_set, pure_call);
    if (!options_.synthesize_merge) classification.decomposable = false;
    bool elide_sort = sets.ordered && classification.order_insensitive &&
                      options_.elide_order_insensitive_sort;

    std::shared_ptr<const BlockStmt> shared_body(body_block);
    auto aggregate = std::make_shared<LoopAggregate>(agg_name, shared_body,
                                                     sets, classification);
    db_->catalog().RegisterAggregate(agg_name, aggregate);

    // Eq. 5/6 rewrite.
    auto query = BuildRewrittenQuery(loop, sets, agg_name, elide_sort);
    auto multi_assign =
        std::make_unique<MultiAssignStmt>(sets.v_term, std::move(query));

    // Guarded form: wrap the MultiAssign with a cloned copy of the original
    // loop region so runtime failures degrade to interpreted execution.
    StmtPtr replacement;
    if (options_.guard_rewrites || options_.verify_rewrite) {
      auto fallback = BuildFallbackBlock(loop, sets);
      std::set<std::string> state(sets.v_term.begin(), sets.v_term.end());
      state.insert(sets.v_fetch.begin(), sets.v_fetch.end());
      state.insert(sets.v_delta.begin(), sets.v_delta.end());
      state.insert("@@fetch_status");
      replacement = std::make_unique<GuardedRewriteStmt>(
          std::move(multi_assign), std::move(fallback),
          std::vector<std::string>(state.begin(), state.end()),
          options_.verify_rewrite, agg_name);
    } else {
      replacement = std::move(multi_assign);
    }

    LoopRewrite record;
    record.aggregate_name = agg_name;
    record.sets = sets;
    record.classification = classification;
    record.sort_elided = elide_sort;
    record.merge_supported = classification.decomposable;
    record.rewritten_statement = replacement->ToString(0);
    record.aggregate_source = aggregate->GenerateSource();
    report->rewrites.push_back(std::move(record));

    report->notes.push_back(MakeDiagnostic(
        DiagCode::kRewritten, loc,
        "cursor loop rewritten into aggregate " + agg_name));
    if (elide_sort) {
      report->notes.push_back(MakeDiagnostic(
          DiagCode::kSortElided, loc,
          "body proven order-insensitive (" + classification.reason +
              "); Eq. 6 sort elided"));
    } else if (sets.ordered) {
      report->notes.push_back(MakeDiagnostic(
          DiagCode::kOrderEnforced, loc,
          "ordered cursor kept its sort: " +
              (classification.order_insensitive
                   ? std::string("elision disabled by options")
                   : classification.reason)));
    }
    if (classification.decomposable) {
      report->notes.push_back(MakeDiagnostic(
          DiagCode::kMergeSynthesized, loc,
          "decomposability proof held; derived Merge attached"));
    }

    // Surgery on the container block: replace the WHILE with the rewritten
    // statement; delete DECLARE CURSOR / OPEN / priming FETCH / CLOSE /
    // DEALLOCATE.
    auto& stmts = loop.container->statements;
    stmts[loop.while_index] = std::move(replacement);
    std::vector<size_t> to_erase{loop.declare_index, loop.open_index,
                                 loop.fetch_index};
    if (loop.close_index != SIZE_MAX) to_erase.push_back(loop.close_index);
    if (loop.deallocate_index != SIZE_MAX) {
      to_erase.push_back(loop.deallocate_index);
    }
    std::sort(to_erase.rbegin(), to_erase.rend());
    for (size_t idx : to_erase) {
      stmts.erase(stmts.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ++report->loops_rewritten;
    return true;
  }
  return false;
}

Result<AggifyReport> Aggify::RewriteBlock(BlockStmt* block,
                                          const std::vector<std::string>& params) {
  AggifyReport report;
  if (options_.convert_for_loops) {
    RETURN_NOT_OK(ConvertForLoopsToCursorLoops(block, db_));
  }
  report.loops_found = static_cast<int>(FindCursorLoops(block).size());
  // Anonymous client programs have no RETURN: their top-level variables are
  // the observable outputs and must survive the rewrite.
  std::set<std::string> observable = TopLevelVariables(*block);
  for (const auto& p : params) observable.insert(p);
  std::set<const WhileStmt*> skipped;
  for (;;) {
    ASSIGN_OR_RETURN(bool rewrote, RewriteOneLoop(block, params, &observable,
                                                  &skipped, &report, "block"));
    if (!rewrote) break;
  }
  return report;
}

Result<AggifyReport> Aggify::RewriteFunction(const std::string& name) {
  ASSIGN_OR_RETURN(auto original, db_->catalog().GetFunction(name));
  std::shared_ptr<FunctionDef> def = original->Clone();

  AggifyReport report;
  if (options_.convert_for_loops) {
    RETURN_NOT_OK(ConvertForLoopsToCursorLoops(def->body.get(), db_));
  }
  report.loops_found =
      static_cast<int>(FindCursorLoops(def->body.get()).size());

  std::vector<std::string> params;
  for (const auto& p : def->params) params.push_back(p.name);

  std::set<const WhileStmt*> skipped;
  for (;;) {
    ASSIGN_OR_RETURN(bool rewrote,
                     RewriteOneLoop(def->body.get(), params,
                                    /*observable_vars=*/nullptr, &skipped,
                                    &report, name));
    if (!rewrote) break;
  }
  if (options_.remove_dead_declarations && report.loops_rewritten > 0) {
    RemoveDeadDeclarations(def->body.get());
  }
  db_->catalog().RegisterFunction(name, def);
  return report;
}

namespace {

void CollectLiveNames(const Stmt& stmt, std::set<std::string>* used,
                      std::set<std::string>* assigned) {
  std::vector<std::string> uses;
  StatementUses(stmt, &uses);
  used->insert(uses.begin(), uses.end());
  if (stmt.kind != StmtKind::kDeclareVar) {
    std::vector<std::string> defs;
    StatementDefs(stmt, &defs);
    assigned->insert(defs.begin(), defs.end());
  }
  switch (stmt.kind) {
    case StmtKind::kBlock:
      for (const auto& s : static_cast<const BlockStmt&>(stmt).statements) {
        CollectLiveNames(*s, used, assigned);
      }
      break;
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(stmt);
      CollectLiveNames(*i.then_branch, used, assigned);
      if (i.else_branch != nullptr) {
        CollectLiveNames(*i.else_branch, used, assigned);
      }
      break;
    }
    case StmtKind::kWhile:
      CollectLiveNames(*static_cast<const WhileStmt&>(stmt).body, used,
                       assigned);
      break;
    case StmtKind::kFor: {
      const auto& f = static_cast<const ForStmt&>(stmt);
      std::vector<std::string> vars;
      CollectVariableRefs(*f.init, &vars);
      CollectVariableRefs(*f.bound, &vars);
      if (f.step != nullptr) CollectVariableRefs(*f.step, &vars);
      used->insert(vars.begin(), vars.end());
      assigned->insert(f.var);
      CollectLiveNames(*f.body, used, assigned);
      break;
    }
    case StmtKind::kTryCatch: {
      const auto& tc = static_cast<const TryCatchStmt&>(stmt);
      CollectLiveNames(*tc.try_block, used, assigned);
      CollectLiveNames(*tc.catch_block, used, assigned);
      break;
    }
    default:
      break;
  }
}

int RemoveDeadDeclarationsIn(BlockStmt* block, const std::set<std::string>& used,
                             const std::set<std::string>& assigned) {
  int removed = 0;
  auto& stmts = block->statements;
  for (auto it = stmts.begin(); it != stmts.end();) {
    Stmt* s = it->get();
    if (s->kind == StmtKind::kDeclareVar) {
      const auto& d = static_cast<const DeclareVarStmt&>(*s);
      if (used.count(d.name) == 0 && assigned.count(d.name) == 0) {
        it = stmts.erase(it);
        ++removed;
        continue;
      }
    } else if (s->kind == StmtKind::kBlock) {
      removed += RemoveDeadDeclarationsIn(static_cast<BlockStmt*>(s), used,
                                          assigned);
    } else if (s->kind == StmtKind::kIf) {
      auto* i = static_cast<IfStmt*>(s);
      if (i->then_branch->kind == StmtKind::kBlock) {
        removed += RemoveDeadDeclarationsIn(
            static_cast<BlockStmt*>(i->then_branch.get()), used, assigned);
      }
      if (i->else_branch != nullptr &&
          i->else_branch->kind == StmtKind::kBlock) {
        removed += RemoveDeadDeclarationsIn(
            static_cast<BlockStmt*>(i->else_branch.get()), used, assigned);
      }
    } else if (s->kind == StmtKind::kWhile) {
      auto* w = static_cast<WhileStmt*>(s);
      if (w->body->kind == StmtKind::kBlock) {
        removed += RemoveDeadDeclarationsIn(
            static_cast<BlockStmt*>(w->body.get()), used, assigned);
      }
    }
    ++it;
  }
  return removed;
}

}  // namespace

int RemoveDeadDeclarations(BlockStmt* block) {
  std::set<std::string> used;
  std::set<std::string> assigned;
  CollectLiveNames(*block, &used, &assigned);
  return RemoveDeadDeclarationsIn(block, used, assigned);
}

Status ConvertForLoopsToCursorLoops(BlockStmt* block, Database* db) {
  for (auto& stmt : block->statements) {
    switch (stmt->kind) {
      case StmtKind::kBlock:
        RETURN_NOT_OK(ConvertForLoopsToCursorLoops(
            static_cast<BlockStmt*>(stmt.get()), db));
        break;
      case StmtKind::kIf: {
        auto* i = static_cast<IfStmt*>(stmt.get());
        if (i->then_branch->kind == StmtKind::kBlock) {
          RETURN_NOT_OK(ConvertForLoopsToCursorLoops(
              static_cast<BlockStmt*>(i->then_branch.get()), db));
        }
        if (i->else_branch != nullptr &&
            i->else_branch->kind == StmtKind::kBlock) {
          RETURN_NOT_OK(ConvertForLoopsToCursorLoops(
              static_cast<BlockStmt*>(i->else_branch.get()), db));
        }
        break;
      }
      case StmtKind::kWhile: {
        auto* w = static_cast<WhileStmt*>(stmt.get());
        if (w->body->kind == StmtKind::kBlock) {
          RETURN_NOT_OK(ConvertForLoopsToCursorLoops(
              static_cast<BlockStmt*>(w->body.get()), db));
        }
        break;
      }
      case StmtKind::kFor: {
        auto* f = static_cast<ForStmt*>(stmt.get());
        if (f->body->kind == StmtKind::kBlock) {
          RETURN_NOT_OK(ConvertForLoopsToCursorLoops(
              static_cast<BlockStmt*>(f->body.get()), db));
        }
        // Build: WITH iter (v) AS (SELECT init AS v UNION ALL
        //        SELECT v + step FROM iter WHERE v + step <= bound)
        //        SELECT v FROM iter
        std::string cursor = "__for_cur" + std::to_string(db->NextObjectId());
        ExprPtr step = f->step != nullptr ? f->step->Clone()
                                          : MakeLiteral(Value::Int(1));

        auto base = std::make_unique<SelectStmt>();
        base->items.push_back(SelectItem{f->init->Clone(), "v"});

        auto rec = std::make_unique<SelectStmt>();
        rec->items.push_back(SelectItem{
            MakeBinary(BinaryOp::kAdd, MakeColumnRef("v"), step->Clone()),
            "v"});
        rec->from.push_back(TableRef::Base("__iter" + cursor));
        rec->where = MakeBinary(
            BinaryOp::kLe,
            MakeBinary(BinaryOp::kAdd, MakeColumnRef("v"), step->Clone()),
            f->bound->Clone());
        base->union_all = std::move(rec);

        auto query = std::make_unique<SelectStmt>();
        CteDef cte;
        cte.name = "__iter" + cursor;
        cte.column_names = {"v"};
        cte.recursive = true;
        cte.query = std::move(base);
        query->ctes.push_back(std::move(cte));
        query->items.push_back(SelectItem{MakeColumnRef("v"), ""});
        query->from.push_back(TableRef::Base("__iter" + cursor));

        // Assemble the canonical cursor loop.
        auto region = std::make_unique<BlockStmt>();
        region->statements.push_back(std::make_unique<DeclareVarStmt>(
            f->var, DataType::Int(), nullptr));
        region->statements.push_back(
            std::make_unique<DeclareCursorStmt>(cursor, std::move(query)));
        region->statements.push_back(std::make_unique<OpenCursorStmt>(cursor));
        region->statements.push_back(std::make_unique<FetchStmt>(
            cursor, std::vector<std::string>{f->var}));
        StmtPtr new_body = f->body->Clone();
        if (new_body->kind != StmtKind::kBlock) {
          auto wrapper = std::make_unique<BlockStmt>();
          wrapper->statements.push_back(std::move(new_body));
          new_body = std::move(wrapper);
        }
        auto* body_block = static_cast<BlockStmt*>(new_body.get());
        body_block->statements.push_back(std::make_unique<FetchStmt>(
            cursor, std::vector<std::string>{f->var}));
        region->statements.push_back(std::make_unique<WhileStmt>(
            MakeBinary(BinaryOp::kEq, MakeVarRef("@@fetch_status"),
                       MakeLiteral(Value::Int(0))),
            std::move(new_body)));
        region->statements.push_back(
            std::make_unique<CloseCursorStmt>(cursor));
        region->statements.push_back(
            std::make_unique<DeallocateCursorStmt>(cursor));
        stmt = std::move(region);
        break;
      }
      case StmtKind::kTryCatch: {
        auto* tc = static_cast<TryCatchStmt*>(stmt.get());
        RETURN_NOT_OK(ConvertForLoopsToCursorLoops(
            static_cast<BlockStmt*>(tc->try_block.get()), db));
        RETURN_NOT_OK(ConvertForLoopsToCursorLoops(
            static_cast<BlockStmt*>(tc->catch_block.get()), db));
        break;
      }
      default:
        break;
    }
  }
  return Status::OK();
}

}  // namespace aggify
