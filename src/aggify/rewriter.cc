#include "aggify/rewriter.h"

#include <algorithm>
#include <functional>
#include <set>

#include "aggify/merge_certificate.h"
#include "analysis/absint.h"
#include "analysis/early_exit.h"
#include "analysis/merge_synthesis.h"
#include "analysis/table_effects.h"
#include "common/string_util.h"
#include "exec/eval.h"

namespace aggify {

namespace {

/// Removes the (single, trailing) FETCH on `cursor` from a cloned body.
void StripFetches(BlockStmt* body, const std::string& cursor) {
  auto& stmts = body->statements;
  stmts.erase(std::remove_if(stmts.begin(), stmts.end(),
                             [&](const StmtPtr& s) {
                               return s->kind == StmtKind::kFetch &&
                                      static_cast<const FetchStmt&>(*s)
                                              .cursor == cursor;
                             }),
              stmts.end());
}

/// Clones the cursor query with its select items aliased c0..cN (so the
/// outer aggregate arguments can reference them unambiguously), dropping
/// ORDER BY when the sort was proven elidable.
std::unique_ptr<SelectStmt> CloneDerivedAliased(const CursorLoopInfo& loop,
                                                bool elide_sort) {
  auto derived = loop.query().Clone();
  for (size_t i = 0; i < derived->items.size(); ++i) {
    derived->items[i].alias = "c" + std::to_string(i);
  }
  // The fold classifier proved the body order-insensitive: the derived
  // query's ORDER BY (and with it Eq. 6's forced sort) is semantically inert
  // and dropped, freeing the planner to hash-aggregate and parallelize.
  if (elide_sort) derived->order_by.clear();
  return derived;
}

/// Fetch-column pruning: drops select items whose fetch variable is never
/// used inside the loop (and trailing items FETCH INTO never binds at all).
/// Kept items retain their original positional alias c<j>, so downstream
/// fetch-var -> column mapping is unaffected. Returns the dropped aliases.
/// DISTINCT and UNION ALL projections are load-bearing and left intact.
std::vector<std::string> PruneDerivedColumns(
    SelectStmt* derived, const std::vector<std::string>& into,
    const std::set<std::string>& used_vars) {
  if (derived->distinct || derived->union_all != nullptr ||
      derived->select_star) {
    return {};
  }
  std::vector<bool> keep(derived->items.size(), false);
  for (size_t j = 0; j < derived->items.size(); ++j) {
    if (j < into.size() && used_vars.count(into[j]) != 0) keep[j] = true;
  }
  // A projection needs at least one column for the derived table (and the
  // aggregate's per-row cadence) to survive.
  if (std::none_of(keep.begin(), keep.end(), [](bool k) { return k; })) {
    keep[0] = true;
  }
  if (std::all_of(keep.begin(), keep.end(), [](bool k) { return k; })) {
    return {};
  }
  std::vector<std::string> dropped;
  std::vector<SelectItem> kept_items;
  for (size_t j = 0; j < derived->items.size(); ++j) {
    if (keep[j]) {
      kept_items.push_back(std::move(derived->items[j]));
    } else {
      dropped.push_back(derived->items[j].alias);
    }
  }
  derived->items = std::move(kept_items);
  return dropped;
}

/// Map fetch variable -> projected column name (positional, like FETCH).
std::string ColumnForFetchVar(const CursorLoopInfo& loop,
                              const std::string& var) {
  for (size_t j = 0; j < loop.priming_fetch->into.size(); ++j) {
    if (loop.priming_fetch->into[j] == var) {
      return "q.c" + std::to_string(j);
    }
  }
  return "";  // unreachable: P_accum fetch vars come from FETCH INTO
}

/// Δ proven to be exactly one built-in fold over one row expression, so the
/// rewrite can call the native aggregate instead of an interpreted Agg_Δ.
struct NativeFold {
  std::string builtin;             ///< "sum", "count", "min" or "max"
  BinaryOp op = BinaryOp::kAdd;    ///< sum/count channel: acc = acc op e
  const Expr* row_expr = nullptr;  ///< e (count channel: the Int literal)
  bool null_peeled = false;        ///< extremum guard had `acc IS NULL OR`
};

/// Row-expression eligibility for lowering: no subqueries or aggregate
/// calls, no reference to the accumulator itself, and every fetch variable
/// maps to a cursor column. (The single-statement body shape guarantees any
/// other variable is loop-invariant.)
bool RowExprEligible(const Expr& e, const std::string& acc,
                     const CursorLoopInfo& loop,
                     const std::set<std::string>& fetch_set) {
  bool ok = true;
  std::function<void(const Expr&)> visit = [&](const Expr& node) {
    switch (node.kind) {
      case ExprKind::kScalarSubquery:
      case ExprKind::kExists:
      case ExprKind::kAggregateCall:
      case ExprKind::kColumnRef:
        ok = false;
        return;
      case ExprKind::kInList:
        if (static_cast<const InListExpr&>(node).subquery != nullptr) {
          ok = false;
          return;
        }
        break;
      case ExprKind::kVarRef: {
        const auto& v = static_cast<const VarRefExpr&>(node);
        if (v.name == acc) ok = false;
        if (fetch_set.count(v.name) != 0 &&
            ColumnForFetchVar(loop, v.name).empty()) {
          ok = false;
        }
        return;
      }
      default:
        break;
    }
    for (const Expr* c : node.Children()) visit(*c);
  };
  visit(e);
  return ok;
}

/// Unwraps `{ s; }` single-statement blocks.
const Stmt* SoleStatement(const Stmt& s) {
  if (s.kind != StmtKind::kBlock) return &s;
  const auto& b = static_cast<const BlockStmt&>(s);
  return b.statements.size() == 1 ? b.statements[0].get() : nullptr;
}

/// Matches the FETCH-stripped body against the native-fold grammar. Returns
/// true (filling `out`) when Δ is exactly one sum / count / guarded-min /
/// guarded-max update of the loop's single live accumulator. The fold
/// classifier has already proven the matched kinds order-insensitive; this
/// re-match only extracts the pieces the lowered query needs.
bool DetectNativeFold(const BlockStmt& stripped, const CursorLoopInfo& loop,
                      const LoopSets& sets,
                      const BodyClassification& classification,
                      NativeFold* out) {
  if (sets.v_fields.size() != 1 || sets.v_term.size() != 1 ||
      sets.v_fields[0] != sets.v_term[0]) {
    return false;
  }
  const std::string& acc = sets.v_fields[0];
  std::set<std::string> fetch_set(sets.v_fetch.begin(), sets.v_fetch.end());

  // Widened by a certified merge plan: an unguarded unit-coefficient sum
  // whose normalized row term is query-expressible lowers to SUM / COUNT
  // even when the surface shape (affine arrangement, let-inlined scratch,
  // multi-statement body with dead scratch writes) defeats the strict
  // matcher below. The plan's row term already references original row
  // values (substitution captures definitions transitively).
  if (classification.merge_plan != nullptr &&
      classification.merge_plan->mergeable) {
    const FieldMergePlan* fp = classification.merge_plan->PlanFor(acc);
    if (fp != nullptr && fp->row_term != nullptr && !fp->guarded &&
        (fp->rule == MergeRuleKind::kAffineSum ||
         fp->rule == MergeRuleKind::kFoldAlgebra) &&
        RowExprEligible(*fp->row_term, acc, loop, fetch_set)) {
      const bool is_literal = fp->row_term->kind == ExprKind::kLiteral;
      const Value* lit =
          is_literal ? &static_cast<const LiteralExpr&>(*fp->row_term).value
                     : nullptr;
      if (lit == nullptr || !lit->is_null()) {
        out->op = BinaryOp::kAdd;  // subtraction is folded into the term
        out->row_expr = fp->row_term.get();
        out->builtin = lit != nullptr && lit->is_int() ? "count" : "sum";
        return true;
      }
    }
  }

  const FoldKind* kind = classification.FoldFor(acc);
  if (kind == nullptr) return false;
  if (stripped.statements.size() != 1) return false;
  const Stmt* s = SoleStatement(*stripped.statements[0]);
  if (s == nullptr) return false;

  auto is_acc_ref = [&](const Expr& e) {
    return e.kind == ExprKind::kVarRef &&
           static_cast<const VarRefExpr&>(e).name == acc;
  };

  if (*kind == FoldKind::kSum) {
    if (s->kind != StmtKind::kSet) return false;
    const auto& set = static_cast<const SetStmt&>(*s);
    if (set.name != acc || set.value->kind != ExprKind::kBinary) return false;
    const auto& bin = static_cast<const BinaryExpr&>(*set.value);
    const Expr* e = nullptr;
    if (bin.op == BinaryOp::kAdd && is_acc_ref(*bin.left)) {
      e = bin.right.get();
    } else if (bin.op == BinaryOp::kAdd && is_acc_ref(*bin.right)) {
      e = bin.left.get();
    } else if (bin.op == BinaryOp::kSub && is_acc_ref(*bin.left)) {
      e = bin.right.get();
    }
    if (e == nullptr || !RowExprEligible(*e, acc, loop, fetch_set)) {
      return false;
    }
    out->op = bin.op;
    out->row_expr = e;
    if (e->kind == ExprKind::kLiteral) {
      const Value& k = static_cast<const LiteralExpr&>(*e).value;
      if (k.is_null()) return false;  // acc goes NULL on row one; keep Agg_Δ
      // Integer step k: acc final = acc ± k·n, exactly COUNT(*) scaled.
      // Non-integer literals go through the sum channel (SUM performs the
      // same sequential additions the loop did; k·n multiplication would
      // not be bit-identical for doubles).
      out->builtin = k.is_int() ? "count" : "sum";
    } else {
      out->builtin = "sum";
    }
    return true;
  }

  if (*kind == FoldKind::kGuardedMin || *kind == FoldKind::kGuardedMax) {
    const bool is_min = *kind == FoldKind::kGuardedMin;
    if (s->kind != StmtKind::kIf) return false;
    const auto& iff = static_cast<const IfStmt&>(*s);
    if (iff.else_branch != nullptr) return false;
    const Stmt* then_s = SoleStatement(*iff.then_branch);
    if (then_s == nullptr || then_s->kind != StmtKind::kSet) return false;
    const auto& set = static_cast<const SetStmt&>(*then_s);
    if (set.name != acc) return false;

    // Optional `@acc IS NULL OR` peel in front of the comparison.
    const Expr* cond = iff.condition.get();
    bool peeled = false;
    if (cond->kind == ExprKind::kBinary &&
        static_cast<const BinaryExpr&>(*cond).op == BinaryOp::kOr) {
      const auto& orx = static_cast<const BinaryExpr&>(*cond);
      if (orx.left->kind == ExprKind::kIsNull) {
        const auto& isn = static_cast<const IsNullExpr&>(*orx.left);
        if (!isn.negated && is_acc_ref(*isn.operand)) {
          peeled = true;
          cond = orx.right.get();
        }
      }
    }
    if (cond->kind != ExprKind::kBinary) return false;
    const auto& cmp = static_cast<const BinaryExpr&>(*cond);
    // min accepts e < acc / e <= acc / acc > e / acc >= e; max mirrored.
    const Expr* e = nullptr;
    if (is_acc_ref(*cmp.right) &&
        (is_min ? (cmp.op == BinaryOp::kLt || cmp.op == BinaryOp::kLe)
                : (cmp.op == BinaryOp::kGt || cmp.op == BinaryOp::kGe))) {
      e = cmp.left.get();
    } else if (is_acc_ref(*cmp.left) &&
               (is_min
                    ? (cmp.op == BinaryOp::kGt || cmp.op == BinaryOp::kGe)
                    : (cmp.op == BinaryOp::kLt || cmp.op == BinaryOp::kLe))) {
      e = cmp.right.get();
    }
    if (e == nullptr) return false;
    // The assigned value must be the compared expression itself.
    if (set.value->ToString() != e->ToString()) return false;
    if (!RowExprEligible(*e, acc, loop, fetch_set)) return false;
    out->builtin = is_min ? "min" : "max";
    out->row_expr = e;
    out->null_peeled = peeled;
    return true;
  }
  return false;
}

/// Rewrites (in place) every fetch-variable reference in a cloned row
/// expression into the matching derived-table column `q.c<j>`; other
/// variables stay VarRefs (loop-invariant, evaluated once at statement
/// entry, exactly like the interpreted rewrite's non-fetch arguments).
void MapFetchVarsToColumns(ExprPtr* slot, const CursorLoopInfo& loop,
                           const std::set<std::string>& fetch_set) {
  Expr* e = slot->get();
  switch (e->kind) {
    case ExprKind::kVarRef: {
      auto* v = static_cast<VarRefExpr*>(e);
      if (fetch_set.count(v->name) != 0) {
        *slot = MakeColumnRef(ColumnForFetchVar(loop, v->name));
      }
      return;
    }
    case ExprKind::kUnary:
      MapFetchVarsToColumns(&static_cast<UnaryExpr*>(e)->operand, loop,
                            fetch_set);
      return;
    case ExprKind::kBinary: {
      auto* b = static_cast<BinaryExpr*>(e);
      MapFetchVarsToColumns(&b->left, loop, fetch_set);
      MapFetchVarsToColumns(&b->right, loop, fetch_set);
      return;
    }
    case ExprKind::kFunctionCall:
      for (auto& a : static_cast<FunctionCallExpr*>(e)->args) {
        MapFetchVarsToColumns(&a, loop, fetch_set);
      }
      return;
    case ExprKind::kIsNull:
      MapFetchVarsToColumns(&static_cast<IsNullExpr*>(e)->operand, loop,
                            fetch_set);
      return;
    case ExprKind::kCast:
      MapFetchVarsToColumns(&static_cast<CastExpr*>(e)->operand, loop,
                            fetch_set);
      return;
    case ExprKind::kCaseWhen: {
      auto* c = static_cast<CaseWhenExpr*>(e);
      for (auto& arm : c->arms) {
        MapFetchVarsToColumns(&arm.condition, loop, fetch_set);
        MapFetchVarsToColumns(&arm.result, loop, fetch_set);
      }
      if (c->else_result != nullptr) {
        MapFetchVarsToColumns(&c->else_result, loop, fetch_set);
      }
      return;
    }
    case ExprKind::kInList: {
      auto* in = static_cast<InListExpr*>(e);
      MapFetchVarsToColumns(&in->operand, loop, fetch_set);
      for (auto& x : in->list) MapFetchVarsToColumns(&x, loop, fetch_set);
      return;
    }
    default:
      return;
  }
}

/// Builds the lowered rewritten query, calling the native aggregate but
/// producing the exact scalar the interpreted Agg_Δ's Terminate would
/// produce (including the NULL "keep prior values" marker, §5.4):
///
///   count  SELECT @acc ± k·COUNT(*) FROM (Q') q
///   sum    SELECT CASE WHEN COUNT(e') < COUNT(*) THEN NULL
///                      ELSE @acc ± SUM(e') END ...      (a NULL e' row
///          poisons the interpreted accumulator permanently)
///   min    SELECT CASE [WHEN @acc IS NULL THEN MIN(e')]   -- iff peeled
///                      WHEN MIN(e') < @acc THEN MIN(e')
///                      ELSE @acc END ...                 (max mirrored)
std::unique_ptr<SelectStmt> BuildLoweredQuery(
    const CursorLoopInfo& loop, const LoopSets& sets, const NativeFold& fold,
    bool elide_sort, std::unique_ptr<SelectStmt> derived) {
  const std::string& acc = sets.v_term[0];
  std::set<std::string> fetch_set(sets.v_fetch.begin(), sets.v_fetch.end());
  auto row = [&]() {
    ExprPtr e = fold.row_expr->Clone();
    MapFetchVarsToColumns(&e, loop, fetch_set);
    return e;
  };
  auto agg_of_row = [&](const std::string& name) -> ExprPtr {
    std::vector<ExprPtr> args;
    args.push_back(row());
    return std::make_unique<AggregateCallExpr>(name, std::move(args));
  };
  auto count_star = []() -> ExprPtr {
    return std::make_unique<AggregateCallExpr>(
        "count", std::vector<ExprPtr>{}, /*star=*/true);
  };

  ExprPtr value;
  if (fold.builtin == "count") {
    int64_t k =
        static_cast<const LiteralExpr&>(*fold.row_expr).value.int_value();
    ExprPtr n = count_star();
    if (k != 1) {
      n = MakeBinary(BinaryOp::kMul, MakeLiteral(Value::Int(k)),
                     std::move(n));
    }
    value = MakeBinary(fold.op, MakeVarRef(acc), std::move(n));
  } else if (fold.builtin == "sum") {
    std::vector<CaseWhenExpr::Arm> arms;
    arms.push_back(CaseWhenExpr::Arm{
        MakeBinary(BinaryOp::kLt, agg_of_row("count"), count_star()),
        MakeLiteral(Value::Null())});
    value = std::make_unique<CaseWhenExpr>(
        std::move(arms),
        MakeBinary(fold.op, MakeVarRef(acc), agg_of_row("sum")));
  } else {
    const BinaryOp cmp =
        fold.builtin == "min" ? BinaryOp::kLt : BinaryOp::kGt;
    std::vector<CaseWhenExpr::Arm> arms;
    if (fold.null_peeled) {
      arms.push_back(CaseWhenExpr::Arm{
          std::make_unique<IsNullExpr>(MakeVarRef(acc), /*neg=*/false),
          agg_of_row(fold.builtin)});
    }
    arms.push_back(CaseWhenExpr::Arm{
        MakeBinary(cmp, agg_of_row(fold.builtin), MakeVarRef(acc)),
        agg_of_row(fold.builtin)});
    value =
        std::make_unique<CaseWhenExpr>(std::move(arms), MakeVarRef(acc));
  }

  auto outer = std::make_unique<SelectStmt>();
  SelectItem item;
  item.expr = std::move(value);
  item.alias = "aggval";
  outer->items.push_back(std::move(item));
  outer->from.push_back(TableRef::Derived(std::move(derived), "q"));
  outer->force_stream_aggregate = sets.ordered && !elide_sort;
  return outer;
}

/// Builds the Eq. 5 / Eq. 6 rewritten query:
///   SELECT Agg(q.c<j>..., @vars...) FROM (Q') q
std::unique_ptr<SelectStmt> BuildRewrittenQuery(
    const CursorLoopInfo& loop, const LoopSets& sets,
    const std::string& agg_name, bool elide_sort,
    std::unique_ptr<SelectStmt> derived) {
  auto column_for_fetch_var = [&](const std::string& var) {
    return ColumnForFetchVar(loop, var);
  };

  std::vector<ExprPtr> args;
  std::set<std::string> fetch_set(sets.v_fetch.begin(), sets.v_fetch.end());
  for (const auto& v : sets.p_accum) {
    if (fetch_set.count(v) != 0) {
      args.push_back(MakeColumnRef(column_for_fetch_var(v)));
    } else {
      args.push_back(MakeVarRef(v));
    }
  }
  // Entry values for V_term fields Eq. 3 does not cover (soundness
  // extension; see LoopSets::v_extra_init).
  for (const auto& v : sets.v_extra_init) {
    args.push_back(MakeVarRef(v));
  }

  auto outer = std::make_unique<SelectStmt>();
  SelectItem item;
  item.expr = std::make_unique<AggregateCallExpr>(agg_name, std::move(args));
  item.alias = "aggval";
  outer->items.push_back(std::move(item));
  outer->from.push_back(TableRef::Derived(std::move(derived), "q"));
  // Eq. 6: ORDER BY in Q forces the streaming aggregate over the sorted
  // derived input so Accumulate sees rows in cursor order — unless the
  // order-insensitivity proof discharged the obligation.
  outer->force_stream_aggregate = sets.ordered && !elide_sort;
  return outer;
}

/// Builds the self-contained fallback block of a guarded rewrite: clones of
/// the original cursor-loop region (DECLARE CURSOR / OPEN / priming FETCH /
/// WHILE / CLOSE / DEALLOCATE), preceded by fresh NULL DECLAREs for every
/// loop-scratch variable whose original declaration §6.2 dead-declaration
/// removal may prune. Each such variable is written before read inside the
/// loop and dead after it (otherwise it would be referenced by the rewritten
/// query or be a V_term target and keep its declaration), so re-declaring it
/// to NULL is unobservable.
std::unique_ptr<BlockStmt> BuildFallbackBlock(const CursorLoopInfo& loop,
                                              const LoopSets& sets) {
  std::set<std::string> fetch_set(sets.v_fetch.begin(), sets.v_fetch.end());
  // Variables the rewritten statement still references as variables: their
  // declarations stay live, so the fallback must NOT reset them (they carry
  // the loop-entry values both paths start from).
  std::set<std::string> keep(sets.v_term.begin(), sets.v_term.end());
  for (const auto& v : sets.p_accum) {
    if (fetch_set.count(v) == 0) keep.insert(v);
  }
  for (const auto& v : sets.v_extra_init) keep.insert(v);

  std::set<std::string> local(sets.v_local.begin(), sets.v_local.end());
  std::set<std::string> redeclare(fetch_set);
  for (const auto& v : sets.v_delta) {
    if (local.count(v) == 0) redeclare.insert(v);
  }

  auto fallback = std::make_unique<BlockStmt>();
  for (const auto& v : redeclare) {
    if (keep.count(v) != 0 || v.rfind("@@", 0) == 0) continue;
    // The declared type is irrelevant: with no initializer the variable
    // starts NULL and takes the type of whatever the loop assigns.
    fallback->statements.push_back(
        std::make_unique<DeclareVarStmt>(v, DataType::Int(), nullptr));
  }
  fallback->statements.push_back(loop.declare->Clone());
  fallback->statements.push_back(loop.open->Clone());
  fallback->statements.push_back(loop.priming_fetch->Clone());
  fallback->statements.push_back(loop.loop->Clone());
  if (loop.close != nullptr) {
    fallback->statements.push_back(loop.close->Clone());
  }
  if (loop.deallocate != nullptr) {
    fallback->statements.push_back(loop.deallocate->Clone());
  }
  return fallback;
}

/// Container surgery shared by every rewrite family: replace the WHILE with
/// `replacement` and delete the DECLARE CURSOR / OPEN / priming FETCH /
/// CLOSE / DEALLOCATE statements of the matched region.
void ReplaceLoopRegion(CursorLoopInfo& loop, StmtPtr replacement) {
  auto& stmts = loop.container->statements;
  stmts[loop.while_index] = std::move(replacement);
  std::vector<size_t> to_erase{loop.declare_index, loop.open_index,
                               loop.fetch_index};
  if (loop.close_index != SIZE_MAX) to_erase.push_back(loop.close_index);
  if (loop.deallocate_index != SIZE_MAX) {
    to_erase.push_back(loop.deallocate_index);
  }
  std::sort(to_erase.rbegin(), to_erase.rend());
  for (size_t idx : to_erase) {
    stmts.erase(stmts.begin() + static_cast<std::ptrdiff_t>(idx));
  }
}

/// Requires the loop to advance via exactly one FETCH, as the last top-level
/// statement of the body (the canonical cursor-loop shape Definition 4.1's
/// "one row at a time" evaluation assumes).
Status CheckFetchShape(const CursorLoopInfo& loop) {
  int count = 0;
  std::function<void(const Stmt&)> count_fetches = [&](const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kFetch:
        if (static_cast<const FetchStmt&>(s).cursor == loop.cursor_name) {
          ++count;
        }
        break;
      case StmtKind::kBlock:
        for (const auto& c : static_cast<const BlockStmt&>(s).statements) {
          count_fetches(*c);
        }
        break;
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        count_fetches(*i.then_branch);
        if (i.else_branch != nullptr) count_fetches(*i.else_branch);
        break;
      }
      case StmtKind::kWhile:
        count_fetches(*static_cast<const WhileStmt&>(s).body);
        break;
      case StmtKind::kFor:
        count_fetches(*static_cast<const ForStmt&>(s).body);
        break;
      case StmtKind::kTryCatch: {
        const auto& tc = static_cast<const TryCatchStmt&>(s);
        count_fetches(*tc.try_block);
        count_fetches(*tc.catch_block);
        break;
      }
      default:
        break;
    }
  };
  count_fetches(loop.body());
  if (count != 1) {
    return NotApplicableDiag(
        DiagCode::kNonCanonicalFetch,
        "loop advances its cursor with " + std::to_string(count) +
            " FETCH statements; the canonical single trailing FETCH is "
            "required");
  }
  const auto& stmts = loop.body().statements;
  if (stmts.empty() || stmts.back()->kind != StmtKind::kFetch ||
      static_cast<const FetchStmt&>(*stmts.back()).cursor !=
          loop.cursor_name) {
    return NotApplicableDiag(
        DiagCode::kNonCanonicalFetch,
        "the cursor FETCH is not the last statement of the loop body");
  }
  return Status::OK();
}

/// Every variable any statement in the subtree reads (including inside
/// nested queries). Drives fetch-column pruning: a fetch variable no loop
/// use reads does not need its cursor column.
void CollectUsedVars(const Stmt& stmt, std::set<std::string>* used) {
  std::vector<std::string> uses;
  StatementUses(stmt, &uses);
  used->insert(uses.begin(), uses.end());
  switch (stmt.kind) {
    case StmtKind::kBlock:
      for (const auto& s : static_cast<const BlockStmt&>(stmt).statements) {
        CollectUsedVars(*s, used);
      }
      break;
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(stmt);
      CollectUsedVars(*i.then_branch, used);
      if (i.else_branch != nullptr) CollectUsedVars(*i.else_branch, used);
      break;
    }
    case StmtKind::kWhile:
      CollectUsedVars(*static_cast<const WhileStmt&>(stmt).body, used);
      break;
    case StmtKind::kFor: {
      const auto& f = static_cast<const ForStmt&>(stmt);
      std::vector<std::string> vars;
      CollectVariableRefs(*f.init, &vars);
      CollectVariableRefs(*f.bound, &vars);
      if (f.step != nullptr) CollectVariableRefs(*f.step, &vars);
      used->insert(vars.begin(), vars.end());
      CollectUsedVars(*f.body, used);
      break;
    }
    case StmtKind::kTryCatch: {
      const auto& tc = static_cast<const TryCatchStmt&>(stmt);
      CollectUsedVars(*tc.try_block, used);
      CollectUsedVars(*tc.catch_block, used);
      break;
    }
    default:
      break;
  }
}

/// Variables a statement (transitively) assigns: SET/DECLARE targets, FETCH
/// INTO lists, MultiAssign targets, and a guarded rewrite's restorable
/// state. Used to tell observable loop *outputs* (which a DML-family
/// replacement cannot reproduce) from loop-invariant inputs that merely
/// appear in V_term because Eq. 1 counts every referenced variable.
void CollectAssignedVars(const Stmt& stmt, std::set<std::string>* out) {
  switch (stmt.kind) {
    case StmtKind::kSet:
      out->insert(ToLower(static_cast<const SetStmt&>(stmt).name));
      break;
    case StmtKind::kDeclareVar:
      out->insert(ToLower(static_cast<const DeclareVarStmt&>(stmt).name));
      break;
    case StmtKind::kFetch:
      for (const auto& v : static_cast<const FetchStmt&>(stmt).into) {
        out->insert(ToLower(v));
      }
      break;
    case StmtKind::kMultiAssign:
      for (const auto& v : static_cast<const MultiAssignStmt&>(stmt).targets) {
        out->insert(ToLower(v));
      }
      break;
    case StmtKind::kGuardedRewrite: {
      const auto& g = static_cast<const GuardedRewriteStmt&>(stmt);
      for (const auto& v : g.state_vars) out->insert(ToLower(v));
      if (g.rewritten != nullptr) CollectAssignedVars(*g.rewritten, out);
      break;
    }
    case StmtKind::kBlock:
      for (const auto& s : static_cast<const BlockStmt&>(stmt).statements) {
        CollectAssignedVars(*s, out);
      }
      break;
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(stmt);
      CollectAssignedVars(*i.then_branch, out);
      if (i.else_branch != nullptr) CollectAssignedVars(*i.else_branch, out);
      break;
    }
    case StmtKind::kWhile:
      CollectAssignedVars(*static_cast<const WhileStmt&>(stmt).body, out);
      break;
    case StmtKind::kFor: {
      const auto& f = static_cast<const ForStmt&>(stmt);
      out->insert(ToLower(f.var));
      CollectAssignedVars(*f.body, out);
      break;
    }
    case StmtKind::kTryCatch: {
      const auto& tc = static_cast<const TryCatchStmt&>(stmt);
      CollectAssignedVars(*tc.try_block, out);
      CollectAssignedVars(*tc.catch_block, out);
      break;
    }
    default:
      break;
  }
}

}  // namespace

Result<bool> Aggify::TryRewriteDmlLoop(
    BlockStmt* root, const std::vector<std::string>& params,
    const std::set<std::string>* observable_vars, CursorLoopInfo& loop,
    const std::string& loc, std::vector<Diagnostic>* detail,
    AggifyReport* report) {
  auto refuse = [&](const Status& st) {
    Diagnostic d = DiagnosticFromStatus(st, loc);
    d.offset = loop.loop->source_offset;
    detail->push_back(std::move(d));
    return false;
  };

  Status shape = CheckFetchShape(loop);
  if (!shape.ok()) {
    if (!shape.IsNotApplicable()) return shape;
    return refuse(shape);
  }
  auto sets_result = ComputeLoopSets(*root, params, loop, observable_vars);
  if (!sets_result.ok()) {
    if (!sets_result.status().IsNotApplicable()) return sets_result.status();
    return refuse(sets_result.status());
  }
  LoopSets sets = std::move(sets_result).ValueOrDie();
  // A DML-family replacement assigns no variables, so the loop must leave
  // no scalar state observable after it. Read-only V_term members (Eq. 1
  // counts every referenced variable, so loop-invariant inputs like an
  // outer loop's fetch variable land there too) keep their entry value on
  // both paths and are fine.
  {
    std::set<std::string> assigned;
    CollectAssignedVars(*loop.loop->body, &assigned);
    std::string vars;
    for (const auto& v : sets.v_term) {
      if (assigned.count(v) == 0) continue;
      if (!vars.empty()) vars += ", ";
      vars += v;
    }
    if (!vars.empty()) {
      return refuse(NotApplicableDiag(
          DiagCode::kDmlShapeUnsupported,
          "DML body leaves scalar state observable after the loop (" + vars +
              "); outside both rewrite families"));
    }
  }

  StmtPtr body_clone = loop.loop->body->Clone();
  auto* body_block = static_cast<BlockStmt*>(body_clone.get());
  StripFetches(body_block, loop.cursor_name);

  TableEffectAnalysis fx =
      TableEffectAnalysis::Build(&db_->catalog(), IsScalarBuiltinName);
  auto plan_result = ClassifyDmlBody(*body_block, loop.query(), sets.v_fetch,
                                     fx, &db_->catalog());
  if (!plan_result.ok()) {
    if (!plan_result.status().IsNotApplicable()) return plan_result.status();
    return refuse(plan_result.status());
  }
  DmlBodyPlan plan = std::move(plan_result).ValueOrDie();

  std::set<std::string> fetch_set(sets.v_fetch.begin(), sets.v_fetch.end());
  auto mapped = [&](const Expr& e) {
    ExprPtr clone = e.Clone();
    MapFetchVarsToColumns(&clone, loop, fetch_set);
    return clone;
  };

  StmtPtr dml;
  std::string query_sql;
  DiagCode note_code;
  std::string note_msg;
  if (plan.family == DmlFamily::kAppendInsert) {
    // Family (a): INSERT ... SELECT — one projected row per (guard-passing)
    // cursor row. Q' keeps its ORDER BY so rows land in the order the loop
    // inserted them (table contents are bit-identical, not just set-equal).
    auto select = std::make_unique<SelectStmt>();
    const auto& values = plan.insert->values_rows[0];
    for (size_t i = 0; i < values.size(); ++i) {
      SelectItem item;
      item.expr = mapped(*values[i]);
      item.alias = "v" + std::to_string(i);
      select->items.push_back(std::move(item));
    }
    select->from.push_back(
        TableRef::Derived(CloneDerivedAliased(loop, /*elide_sort=*/false),
                          "q"));
    if (plan.guard != nullptr) select->where = mapped(*plan.guard->condition);
    query_sql = select->ToString();
    auto ins = std::make_unique<InsertStmt>();
    ins->table = plan.insert->table;
    ins->columns = plan.insert->columns;
    ins->select = std::move(select);
    dml = std::move(ins);
    note_code = DiagCode::kDmlInsertRewritten;
    note_msg = "append-only INSERT body rewritten to INSERT ... SELECT into " +
               plan.table;
  } else {
    // Family (b): one set-oriented UPDATE. Per target row, the key-matched
    // cursor rows' deltas are summed (integer accumulator: sequential
    // additions and SUM are the same value), with the loop's NULL poisoning
    // reproduced — COUNT(delta') < COUNT(*) means some matched delta was
    // NULL, and the sequential `col ± NULL` would have gone (and stayed)
    // NULL. Rows with no matching cursor row are untouched via EXISTS.
    auto filtered_sub = [&](bool for_exists) {
      auto sub = std::make_unique<SelectStmt>();
      auto derived = CloneDerivedAliased(loop, /*elide_sort=*/false);
      // Integer SUM is order-insensitive; dropping the sort keeps the
      // per-row correlated scans cheap.
      derived->order_by.clear();
      sub->from.push_back(TableRef::Derived(std::move(derived), "q"));
      ExprPtr match = MakeBinary(BinaryOp::kEq, mapped(*plan.key_expr),
                                 MakeColumnRef(plan.key_column));
      if (plan.guard != nullptr) {
        match = MakeBinary(BinaryOp::kAnd, std::move(match),
                           mapped(*plan.guard->condition));
      }
      sub->where = std::move(match);
      SelectItem item;
      if (for_exists) {
        item.expr = MakeLiteral(Value::Int(1));
        item.alias = "one";
      } else {
        auto agg = [&](const std::string& name) -> ExprPtr {
          std::vector<ExprPtr> args;
          args.push_back(mapped(*plan.delta_expr));
          return std::make_unique<AggregateCallExpr>(name, std::move(args));
        };
        ExprPtr count_star = std::make_unique<AggregateCallExpr>(
            "count", std::vector<ExprPtr>{}, /*star=*/true);
        std::vector<CaseWhenExpr::Arm> arms;
        arms.push_back(CaseWhenExpr::Arm{
            MakeBinary(BinaryOp::kLt, agg("count"), std::move(count_star)),
            MakeLiteral(Value::Null())});
        item.expr =
            std::make_unique<CaseWhenExpr>(std::move(arms), agg("sum"));
        item.alias = "delta";
      }
      sub->items.push_back(std::move(item));
      return sub;
    };
    query_sql = filtered_sub(/*for_exists=*/false)->ToString();
    ExprPtr new_value = MakeBinary(
        plan.subtract ? BinaryOp::kSub : BinaryOp::kAdd,
        MakeColumnRef(plan.accum_column),
        std::make_unique<ScalarSubqueryExpr>(filtered_sub(false)));
    auto upd = std::make_unique<UpdateStmt>();
    upd->table = plan.update->table;
    upd->assignments.emplace_back(plan.accum_column, std::move(new_value));
    upd->where =
        std::make_unique<ExistsExpr>(filtered_sub(true), /*negated=*/false);
    dml = std::move(upd);
    note_code = DiagCode::kDmlUpdateRewritten;
    note_msg =
        "accumulating UPDATE body rewritten to one set-oriented UPDATE of " +
        plan.table;
  }

  StmtPtr replacement;
  if (options_.rewrite.guard_rewrites || options_.rewrite.verify_rewrite) {
    auto fallback = BuildFallbackBlock(loop, sets);
    std::set<std::string> state(sets.v_fetch.begin(), sets.v_fetch.end());
    state.insert(sets.v_delta.begin(), sets.v_delta.end());
    state.insert("@@fetch_status");
    replacement = std::make_unique<GuardedRewriteStmt>(
        std::move(dml), std::move(fallback),
        std::vector<std::string>(state.begin(), state.end()),
        options_.rewrite.verify_rewrite, /*agg=*/"");
  } else {
    replacement = std::move(dml);
  }

  LoopRewrite record;
  record.sets = std::move(sets);
  record.family = plan.family == DmlFamily::kAppendInsert
                      ? RewriteFamily::kDmlInsert
                      : RewriteFamily::kDmlUpdate;
  record.dml_table = plan.table;
  record.rewritten_statement = replacement->ToString(0);
  record.rewritten_query_sql = std::move(query_sql);
  report->rewrites.push_back(std::move(record));
  report->notes.push_back(MakeDiagnostic(note_code, loc, note_msg));

  ReplaceLoopRegion(loop, std::move(replacement));
  ++report->loops_rewritten;
  return true;
}

Result<bool> Aggify::RewriteOneLoop(BlockStmt* root,
                                    const std::vector<std::string>& params,
                                    const std::set<std::string>* observable_vars,
                                    std::set<const WhileStmt*>* skipped_loops,
                                    AggifyReport* report,
                                    const std::string& name_hint) {
  std::vector<CursorLoopInfo> loops = FindCursorLoops(root);
  for (CursorLoopInfo& loop : loops) {
    if (skipped_loops->count(loop.loop) != 0) continue;
    std::string loc = name_hint + ":" + loop.cursor_name;

    std::vector<Diagnostic> detail =
        ApplicabilityDiagnostics(loop, &db_->catalog());
    for (Diagnostic& d : detail) d.loc = loc;
    if (detail.empty()) {
      Status shape = CheckFetchShape(loop);
      if (!shape.ok()) {
        if (!shape.IsNotApplicable()) return shape;
        Diagnostic d = DiagnosticFromStatus(shape, loc);
        d.offset = loop.loop->source_offset;
        detail.push_back(std::move(d));
      }
    }
    if (!detail.empty()) {
      // DML-body recovery: when persistent DML is the ONLY blocker, the
      // table-effect rewrite families (analysis/table_effects.h) may still
      // replace the loop with one set-oriented statement.
      bool dml_only = true;
      for (const Diagnostic& d : detail) {
        if (d.code != DiagCode::kPersistentInsert &&
            d.code != DiagCode::kPersistentUpdate &&
            d.code != DiagCode::kPersistentDelete) {
          dml_only = false;
          break;
        }
      }
      if (dml_only && options_.rewrite.rewrite_dml_bodies) {
        ASSIGN_OR_RETURN(bool recovered,
                         TryRewriteDmlLoop(root, params, observable_vars,
                                           loop, loc, &detail, report));
        if (recovered) return true;
      }
      skipped_loops->insert(loop.loop);
      report->skipped.push_back(detail.front());
      report->skip_details.push_back(std::move(detail));
      continue;
    }

    auto sets_result = ComputeLoopSets(*root, params, loop, observable_vars);
    if (!sets_result.ok()) {
      if (!sets_result.status().IsNotApplicable()) return sets_result.status();
      skipped_loops->insert(loop.loop);
      report->skipped.push_back(
          DiagnosticFromStatus(sets_result.status(), loc));
      report->skip_details.push_back({report->skipped.back()});
      continue;
    }
    LoopSets sets = std::move(sets_result).ValueOrDie();

    // Synthesize the aggregate from the FETCH-stripped body.
    std::string agg_name =
        name_hint + "_agg" + std::to_string(db_->NextObjectId());
    std::shared_ptr<BlockStmt> shared_body(
        static_cast<BlockStmt*>(loop.loop->body->Clone().release()));
    BlockStmt* body_block = shared_body.get();
    StripFetches(body_block, loop.cursor_name);

    // Semantic analyses over the stripped body: order-sensitivity and
    // decomposability. Calls proven pure or read-only by the purity fixpoint
    // count as row-pure fold inputs.
    CallGraph call_graph =
        CallGraph::Build(db_->catalog(), IsScalarBuiltinName);
    auto pure_call = [&](const std::string& fn) {
      return IsScalarBuiltinName(fn) ||
             call_graph.EffectsOf(fn).level <= EffectLevel::kReadsDatabase;
    };
    std::set<std::string> field_set(sets.v_fields.begin(),
                                    sets.v_fields.end());
    std::set<std::string> fetch_var_set(sets.v_fetch.begin(),
                                        sets.v_fetch.end());
    BodyClassification classification =
        ClassifyLoopBody(*body_block, field_set, fetch_var_set, pure_call);
    if (!options_.rewrite.synthesize_merge) classification.decomposable = false;

    // Homomorphism-calculus merge synthesis (analysis/merge_synthesis.h):
    // where the fold algebra failed, try to *derive* a Merge. A plan ships
    // only after the shuffle-sweep certificate proves it bit-identical to
    // the serial fold under permutations, DOP 2/3/4 interleavings, and
    // random splits (DESIGN.md invariant 11).
    bool merge_synthesized = false;
    std::string merge_certificate;
    if (options_.rewrite.synthesize_merge && !classification.decomposable) {
      auto plan =
          SynthesizeMerge(*body_block, field_set, fetch_var_set, pure_call);
      if (plan->mergeable) {
        BodyClassification certified = classification;
        certified.merge_plan = plan;
        certified.decomposable = true;
        // Every rule the calculus emits is commutative (sums, products,
        // extremum) or a pure function of commutative bases (derived), so
        // the proof also covers order-insensitivity; the certificate's
        // permutation trials re-check this executably.
        certified.order_insensitive = true;
        LoopAggregate probe(agg_name, shared_body, sets, certified);
        if (!probe.ParallelSafe()) {
          classification.merge_reasons.push_back(
              "synthesized merge withheld: body is not parallel-safe");
        } else {
          auto cert = RunShuffleSweepCertificate(probe, db_);
          if (cert.ok()) {
            merge_synthesized = true;
            merge_certificate = *cert;
            if (!classification.order_insensitive) {
              certified.reasons = {
                  "merge synthesis derived a commutative homomorphism for "
                  "every accumulator"};
            }
            certified.merge_reasons.clear();
            classification = std::move(certified);
          } else {
            report->notes.push_back(MakeDiagnostic(
                DiagCode::kCertificateFailed, loc, cert.status().message()));
            classification.merge_reasons.push_back(
                "synthesized merge demoted: " + cert.status().message());
          }
        }
      } else {
        // Surface every typed blocker (AGG208–211) so lint shows all the
        // reasons in one pass.
        for (const auto& blocker : plan->blockers) {
          Diagnostic d = blocker;
          d.loc = loc;
          report->notes.push_back(std::move(d));
          classification.merge_reasons.push_back(blocker.message);
        }
      }
    }
    bool elide_sort = sets.ordered && classification.order_insensitive &&
                      options_.rewrite.elide_order_insensitive_sort;

    // Q': the aliased derived query, with cursor columns no loop use reads
    // pruned from its projection (AGG302).
    auto derived = CloneDerivedAliased(loop, elide_sort);
    std::vector<std::string> pruned;
    if (options_.rewrite.prune_fetch_columns) {
      std::set<std::string> used;
      CollectUsedVars(*body_block, &used);
      used.insert(sets.p_accum.begin(), sets.p_accum.end());
      pruned = PruneDerivedColumns(derived.get(), loop.priming_fetch->into,
                                   used);
    }

    // Early-exit prefix bound (AGG403/406): a BREAK body is rewritten
    // correctly regardless (the aggregate latches its exit and no-ops
    // later rows); a proven monotone counted exit additionally lets the
    // derived query stop producing rows past the static bound.
    EarlyExitInfo early = AnalyzeEarlyExit(*body_block, sets.v_fetch);
    const bool bound_exit = early.bounded && options_.rewrite.bound_early_exit;
    if (bound_exit) derived->top_n = BuildPrefixBoundExpr(early);

    // Native-fold lowering (AGG304): when Δ is exactly one proven built-in
    // fold of the single live accumulator, call the builtin directly — no
    // interpreted Agg_Δ is registered at all.
    NativeFold fold;
    const bool lowered =
        options_.rewrite.lower_native_folds &&
        DetectNativeFold(*body_block, loop, sets, classification, &fold);

    // Eq. 5/6 rewrite.
    std::unique_ptr<SelectStmt> query;
    std::string aggregate_source;
    bool agg_parallel_safe = false;
    if (lowered) {
      agg_name = fold.builtin;
      agg_parallel_safe = true;  // builtins are mergeable and thread-safe
      query = BuildLoweredQuery(loop, sets, fold, elide_sort,
                                std::move(derived));
    } else {
      auto aggregate = std::make_shared<LoopAggregate>(agg_name, shared_body,
                                                       sets, classification);
      agg_parallel_safe =
          aggregate->SupportsMerge() && aggregate->ParallelSafe();
      db_->catalog().RegisterAggregate(agg_name, aggregate);
      aggregate_source = aggregate->GenerateSource();
      query = BuildRewrittenQuery(loop, sets, agg_name, elide_sort,
                                  std::move(derived));
    }
    std::string query_sql = query->ToString();
    auto multi_assign =
        std::make_unique<MultiAssignStmt>(sets.v_term, std::move(query));

    // Guarded form: wrap the MultiAssign with a cloned copy of the original
    // loop region so runtime failures degrade to interpreted execution.
    StmtPtr replacement;
    if (options_.rewrite.guard_rewrites || options_.rewrite.verify_rewrite) {
      auto fallback = BuildFallbackBlock(loop, sets);
      std::set<std::string> state(sets.v_term.begin(), sets.v_term.end());
      state.insert(sets.v_fetch.begin(), sets.v_fetch.end());
      state.insert(sets.v_delta.begin(), sets.v_delta.end());
      state.insert("@@fetch_status");
      replacement = std::make_unique<GuardedRewriteStmt>(
          std::move(multi_assign), std::move(fallback),
          std::vector<std::string>(state.begin(), state.end()),
          options_.rewrite.verify_rewrite, agg_name);
    } else {
      replacement = std::move(multi_assign);
    }

    LoopRewrite record;
    record.aggregate_name = agg_name;
    record.sets = sets;
    record.classification = classification;
    record.sort_elided = elide_sort;
    record.merge_supported = classification.decomposable;
    record.rewritten_statement = replacement->ToString(0);
    record.aggregate_source = std::move(aggregate_source);
    record.lowered_to_builtin = lowered;
    record.rewritten_query_sql = std::move(query_sql);
    record.pruned_fetch_columns = pruned;
    // A TOP-bounded plan is a prefix computation: partial-aggregation
    // partitioning would not preserve which rows fall inside the prefix.
    record.parallel_eligible =
        (elide_sort || !sets.ordered) && agg_parallel_safe && !bound_exit;
    record.early_exit_bounded = bound_exit;
    record.merge_synthesized = merge_synthesized;
    record.merge_certificate = merge_certificate;
    if (classification.merge_plan != nullptr &&
        classification.merge_plan->mergeable) {
      record.merge_rules = classification.merge_plan->DescribeRules();
    }
    report->rewrites.push_back(std::move(record));

    report->notes.push_back(MakeDiagnostic(
        DiagCode::kRewritten, loc,
        "cursor loop rewritten into aggregate " + agg_name));
    if (bound_exit) {
      report->notes.push_back(MakeDiagnostic(
          DiagCode::kEarlyExitBounded, loc,
          "BREAK proven monotone on counter " + early.counter + " (limit " +
              std::to_string(early.limit) + ", step " +
              std::to_string(early.step) +
              "); TOP prefix bound attached to the derived query"));
    } else if (early.has_break && !early.bounded) {
      report->notes.push_back(MakeDiagnostic(
          DiagCode::kNonMonotoneExit, loc,
          "BREAK exit is not provably monotone (" + early.reason +
              "); the rewritten query stays unbounded — still correct via "
              "the aggregate's exit latch"));
    }
    if (!pruned.empty()) {
      std::string cols;
      for (size_t i = 0; i < pruned.size(); ++i) {
        if (i > 0) cols += ", ";
        cols += pruned[i];
      }
      report->notes.push_back(MakeDiagnostic(
          DiagCode::kUnusedFetchColumn, loc,
          "cursor column(s) " + cols +
              " are fetched but never used; pruned from the rewritten "
              "query's projection"));
    }
    if (lowered) {
      report->notes.push_back(MakeDiagnostic(
          DiagCode::kLoweredToBuiltin, loc,
          "loop body is a single " + agg_name +
              " fold; lowered to the native aggregate (no interpreted "
              "Agg_delta)"));
    }
    if (elide_sort) {
      report->notes.push_back(MakeDiagnostic(
          DiagCode::kSortElided, loc,
          "body proven order-insensitive (" + classification.reason() +
              "); Eq. 6 sort elided"));
    } else if (sets.ordered) {
      report->notes.push_back(MakeDiagnostic(
          DiagCode::kOrderEnforced, loc,
          "ordered cursor kept its sort: " +
              (classification.order_insensitive
                   ? std::string("elision disabled by options")
                   : classification.reason())));
    }
    if (classification.decomposable && !lowered) {
      report->notes.push_back(MakeDiagnostic(
          DiagCode::kMergeSynthesized, loc,
          merge_synthesized
              ? "homomorphism calculus derived a Merge; certified plan "
                "attached"
              : "decomposability proof held; derived Merge attached"));
    }
    if (merge_synthesized) {
      std::string rules;
      for (const auto& line : classification.merge_plan->DescribeRules()) {
        if (!rules.empty()) rules += "; ";
        rules += line;
      }
      report->notes.push_back(MakeDiagnostic(
          DiagCode::kMergeRule, loc, "synthesized merge rules: " + rules));
      report->notes.push_back(
          MakeDiagnostic(DiagCode::kMergeCertified, loc, merge_certificate));
    }
    if ((elide_sort || !sets.ordered) && agg_parallel_safe && !bound_exit) {
      report->notes.push_back(MakeDiagnostic(
          DiagCode::kParallelEligible, loc,
          "rewritten query is parallel-eligible: unordered plan with a "
          "mergeable, thread-safe aggregate"));
    }

    ReplaceLoopRegion(loop, std::move(replacement));
    ++report->loops_rewritten;
    return true;
  }
  return false;
}

Result<AggifyReport> Aggify::RewriteBlock(BlockStmt* block,
                                          const std::vector<std::string>& params) {
  AggifyReport report;
  // Anonymous client programs have no RETURN: their top-level variables are
  // the observable outputs and must survive the rewrite.
  std::set<std::string> observable = TopLevelVariables(*block);
  for (const auto& p : params) observable.insert(p);
  // Simplify before FOR conversion (folded bounds enable the static-trip
  // fast path) and before loop-set inference (DESIGN invariant 7).
  if (options_.rewrite.simplify) {
    ASSIGN_OR_RETURN(report.simplify,
                     SimplifyBlock(block, params, &observable, "block"));
    report.notes.insert(report.notes.end(),
                        report.simplify.diagnostics.begin(),
                        report.simplify.diagnostics.end());
  }
  if (options_.rewrite.convert_for_loops) {
    ForLoopConversionOptions for_opts;
    for_opts.static_trip_values = options_.rewrite.static_trip_values;
    for_opts.max_static_trips = options_.rewrite.max_static_trips;
    RETURN_NOT_OK(
        ConvertForLoopsToCursorLoops(block, db_, for_opts, &report.notes));
  }
  report.loops_found = static_cast<int>(FindCursorLoops(block).size());
  std::set<const WhileStmt*> skipped;
  for (;;) {
    ASSIGN_OR_RETURN(bool rewrote, RewriteOneLoop(block, params, &observable,
                                                  &skipped, &report, "block"));
    if (!rewrote) break;
  }
  return report;
}

Result<AggifyReport> Aggify::RewriteFunction(const std::string& name) {
  ASSIGN_OR_RETURN(auto original, db_->catalog().GetFunction(name));
  std::shared_ptr<FunctionDef> def = original->Clone();

  AggifyReport report;
  std::vector<std::string> params;
  for (const auto& p : def->params) params.push_back(p.name);

  if (options_.rewrite.simplify) {
    ASSIGN_OR_RETURN(report.simplify,
                     SimplifyBlock(def->body.get(), params,
                                   /*observable_vars=*/nullptr, name));
    report.notes.insert(report.notes.end(),
                        report.simplify.diagnostics.begin(),
                        report.simplify.diagnostics.end());
  }
  if (options_.rewrite.convert_for_loops) {
    ForLoopConversionOptions for_opts;
    for_opts.static_trip_values = options_.rewrite.static_trip_values;
    for_opts.max_static_trips = options_.rewrite.max_static_trips;
    RETURN_NOT_OK(ConvertForLoopsToCursorLoops(def->body.get(), db_, for_opts,
                                               &report.notes));
  }
  report.loops_found =
      static_cast<int>(FindCursorLoops(def->body.get()).size());

  std::set<const WhileStmt*> skipped;
  for (;;) {
    ASSIGN_OR_RETURN(bool rewrote,
                     RewriteOneLoop(def->body.get(), params,
                                    /*observable_vars=*/nullptr, &skipped,
                                    &report, name));
    if (!rewrote) break;
  }
  if (options_.rewrite.remove_dead_declarations && report.loops_rewritten > 0) {
    RemoveDeadDeclarations(def->body.get());
  }
  db_->catalog().RegisterFunction(name, def);
  return report;
}

namespace {

void CollectLiveNames(const Stmt& stmt, std::set<std::string>* used,
                      std::set<std::string>* assigned) {
  std::vector<std::string> uses;
  StatementUses(stmt, &uses);
  used->insert(uses.begin(), uses.end());
  if (stmt.kind != StmtKind::kDeclareVar) {
    std::vector<std::string> defs;
    StatementDefs(stmt, &defs);
    assigned->insert(defs.begin(), defs.end());
  }
  switch (stmt.kind) {
    case StmtKind::kBlock:
      for (const auto& s : static_cast<const BlockStmt&>(stmt).statements) {
        CollectLiveNames(*s, used, assigned);
      }
      break;
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(stmt);
      CollectLiveNames(*i.then_branch, used, assigned);
      if (i.else_branch != nullptr) {
        CollectLiveNames(*i.else_branch, used, assigned);
      }
      break;
    }
    case StmtKind::kWhile:
      CollectLiveNames(*static_cast<const WhileStmt&>(stmt).body, used,
                       assigned);
      break;
    case StmtKind::kFor: {
      const auto& f = static_cast<const ForStmt&>(stmt);
      std::vector<std::string> vars;
      CollectVariableRefs(*f.init, &vars);
      CollectVariableRefs(*f.bound, &vars);
      if (f.step != nullptr) CollectVariableRefs(*f.step, &vars);
      used->insert(vars.begin(), vars.end());
      assigned->insert(f.var);
      CollectLiveNames(*f.body, used, assigned);
      break;
    }
    case StmtKind::kTryCatch: {
      const auto& tc = static_cast<const TryCatchStmt&>(stmt);
      CollectLiveNames(*tc.try_block, used, assigned);
      CollectLiveNames(*tc.catch_block, used, assigned);
      break;
    }
    default:
      break;
  }
}

int RemoveDeadDeclarationsIn(BlockStmt* block, const std::set<std::string>& used,
                             const std::set<std::string>& assigned) {
  int removed = 0;
  auto& stmts = block->statements;
  for (auto it = stmts.begin(); it != stmts.end();) {
    Stmt* s = it->get();
    if (s->kind == StmtKind::kDeclareVar) {
      const auto& d = static_cast<const DeclareVarStmt&>(*s);
      if (used.count(d.name) == 0 && assigned.count(d.name) == 0) {
        it = stmts.erase(it);
        ++removed;
        continue;
      }
    } else if (s->kind == StmtKind::kBlock) {
      removed += RemoveDeadDeclarationsIn(static_cast<BlockStmt*>(s), used,
                                          assigned);
    } else if (s->kind == StmtKind::kIf) {
      auto* i = static_cast<IfStmt*>(s);
      if (i->then_branch->kind == StmtKind::kBlock) {
        removed += RemoveDeadDeclarationsIn(
            static_cast<BlockStmt*>(i->then_branch.get()), used, assigned);
      }
      if (i->else_branch != nullptr &&
          i->else_branch->kind == StmtKind::kBlock) {
        removed += RemoveDeadDeclarationsIn(
            static_cast<BlockStmt*>(i->else_branch.get()), used, assigned);
      }
    } else if (s->kind == StmtKind::kWhile) {
      auto* w = static_cast<WhileStmt*>(s);
      if (w->body->kind == StmtKind::kBlock) {
        removed += RemoveDeadDeclarationsIn(
            static_cast<BlockStmt*>(w->body.get()), used, assigned);
      }
    }
    ++it;
  }
  return removed;
}

}  // namespace

int RemoveDeadDeclarations(BlockStmt* block) {
  std::set<std::string> used;
  std::set<std::string> assigned;
  CollectLiveNames(*block, &used, &assigned);
  return RemoveDeadDeclarationsIn(block, used, assigned);
}

namespace {

/// §8.1 static-trip fast path: when init/bound/step abstractly evaluate to
/// integer constants with step > 0, init <= bound and at most
/// `max_static_trips` iterations, the iteration space is a UNION ALL chain
/// of literal rows — no recursive CTE, no per-row arithmetic at run time.
/// The chain is the cursor query itself (a UNION ALL *CTE* would be routed
/// through recursive semi-naive evaluation by the binder). Returns nullptr
/// when the fast path does not apply; constant zero-trip loops also decline
/// (they keep the general path unchanged).
std::unique_ptr<SelectStmt> BuildStaticTripChain(
    const ForStmt& f, const ForLoopConversionOptions& options,
    const std::string& cursor, std::vector<Diagnostic>* notes) {
  if (!options.static_trip_values) return nullptr;
  AbsEnv env;  // empty: only literal / constant-folded bounds qualify
  auto as_int = [&](const Expr* e, int64_t* out) {
    if (e == nullptr) {
      *out = 1;  // implicit STEP 1
      return true;
    }
    AbsValue v = EvalAbstract(*e, env);
    if (!v.IsConst() || !v.constant.is_int()) return false;
    *out = v.constant.int_value();
    return true;
  };
  int64_t init = 0, bound = 0, step = 0;
  if (!as_int(f.init.get(), &init) || !as_int(f.bound.get(), &bound) ||
      !as_int(f.step.get(), &step)) {
    return nullptr;
  }
  if (step <= 0 || init > bound) return nullptr;
  int64_t span = 0;
  if (__builtin_sub_overflow(bound, init, &span)) return nullptr;
  int64_t trips = span / step + 1;
  if (trips > options.max_static_trips) return nullptr;

  std::unique_ptr<SelectStmt> head;
  SelectStmt* tail = nullptr;
  for (int64_t i = 0; i < trips; ++i) {
    auto row = std::make_unique<SelectStmt>();
    row->items.push_back(
        SelectItem{MakeLiteral(Value::Int(init + i * step)), "v"});
    if (tail == nullptr) {
      tail = row.get();
      head = std::move(row);
    } else {
      tail->union_all = std::move(row);
      tail = tail->union_all.get();
    }
  }
  if (notes != nullptr) {
    notes->push_back(MakeDiagnostic(
        DiagCode::kStaticTripCount, cursor,
        "FOR bounds fold to constants [" + std::to_string(init) + ", " +
            std::to_string(bound) + "] step " + std::to_string(step) + " (" +
            std::to_string(trips) +
            " iterations); iteration space materialized as literal rows "
            "instead of a recursive CTE"));
  }
  return head;
}

}  // namespace

Status ConvertForLoopsToCursorLoops(BlockStmt* block, Database* db) {
  return ConvertForLoopsToCursorLoops(block, db, ForLoopConversionOptions{},
                                      nullptr);
}

Status ConvertForLoopsToCursorLoops(BlockStmt* block, Database* db,
                                    const ForLoopConversionOptions& options,
                                    std::vector<Diagnostic>* notes) {
  for (auto& stmt : block->statements) {
    switch (stmt->kind) {
      case StmtKind::kBlock:
        RETURN_NOT_OK(ConvertForLoopsToCursorLoops(
            static_cast<BlockStmt*>(stmt.get()), db, options, notes));
        break;
      case StmtKind::kIf: {
        auto* i = static_cast<IfStmt*>(stmt.get());
        if (i->then_branch->kind == StmtKind::kBlock) {
          RETURN_NOT_OK(ConvertForLoopsToCursorLoops(
              static_cast<BlockStmt*>(i->then_branch.get()), db, options,
              notes));
        }
        if (i->else_branch != nullptr &&
            i->else_branch->kind == StmtKind::kBlock) {
          RETURN_NOT_OK(ConvertForLoopsToCursorLoops(
              static_cast<BlockStmt*>(i->else_branch.get()), db, options,
              notes));
        }
        break;
      }
      case StmtKind::kWhile: {
        auto* w = static_cast<WhileStmt*>(stmt.get());
        if (w->body->kind == StmtKind::kBlock) {
          RETURN_NOT_OK(ConvertForLoopsToCursorLoops(
              static_cast<BlockStmt*>(w->body.get()), db, options, notes));
        }
        break;
      }
      case StmtKind::kFor: {
        auto* f = static_cast<ForStmt*>(stmt.get());
        if (f->body->kind == StmtKind::kBlock) {
          RETURN_NOT_OK(ConvertForLoopsToCursorLoops(
              static_cast<BlockStmt*>(f->body.get()), db, options, notes));
        }
        std::string cursor = "__for_cur" + std::to_string(db->NextObjectId());

        // Fast path: constant bounds become a literal-row chain (AGG306).
        std::unique_ptr<SelectStmt> query =
            BuildStaticTripChain(*f, options, cursor, notes);
        if (query == nullptr) {
          // General path:
          //   WITH iter (v) AS (SELECT init AS v UNION ALL
          //        SELECT v + step FROM iter WHERE v + step <= bound)
          //   SELECT v FROM iter
          ExprPtr step = f->step != nullptr ? f->step->Clone()
                                            : MakeLiteral(Value::Int(1));

          auto base = std::make_unique<SelectStmt>();
          base->items.push_back(SelectItem{f->init->Clone(), "v"});

          auto rec = std::make_unique<SelectStmt>();
          rec->items.push_back(SelectItem{
              MakeBinary(BinaryOp::kAdd, MakeColumnRef("v"), step->Clone()),
              "v"});
          rec->from.push_back(TableRef::Base("__iter" + cursor));
          rec->where = MakeBinary(
              BinaryOp::kLe,
              MakeBinary(BinaryOp::kAdd, MakeColumnRef("v"), step->Clone()),
              f->bound->Clone());
          base->union_all = std::move(rec);

          query = std::make_unique<SelectStmt>();
          CteDef cte;
          cte.name = "__iter" + cursor;
          cte.column_names = {"v"};
          cte.recursive = true;
          cte.query = std::move(base);
          query->ctes.push_back(std::move(cte));
          query->items.push_back(SelectItem{MakeColumnRef("v"), ""});
          query->from.push_back(TableRef::Base("__iter" + cursor));
        }

        // Assemble the canonical cursor loop.
        auto region = std::make_unique<BlockStmt>();
        region->statements.push_back(std::make_unique<DeclareVarStmt>(
            f->var, DataType::Int(), nullptr));
        region->statements.push_back(
            std::make_unique<DeclareCursorStmt>(cursor, std::move(query)));
        region->statements.push_back(std::make_unique<OpenCursorStmt>(cursor));
        region->statements.push_back(std::make_unique<FetchStmt>(
            cursor, std::vector<std::string>{f->var}));
        StmtPtr new_body = f->body->Clone();
        if (new_body->kind != StmtKind::kBlock) {
          auto wrapper = std::make_unique<BlockStmt>();
          wrapper->statements.push_back(std::move(new_body));
          new_body = std::move(wrapper);
        }
        auto* body_block = static_cast<BlockStmt*>(new_body.get());
        body_block->statements.push_back(std::make_unique<FetchStmt>(
            cursor, std::vector<std::string>{f->var}));
        region->statements.push_back(std::make_unique<WhileStmt>(
            MakeBinary(BinaryOp::kEq, MakeVarRef("@@fetch_status"),
                       MakeLiteral(Value::Int(0))),
            std::move(new_body)));
        region->statements.push_back(
            std::make_unique<CloseCursorStmt>(cursor));
        region->statements.push_back(
            std::make_unique<DeallocateCursorStmt>(cursor));
        stmt = std::move(region);
        break;
      }
      case StmtKind::kTryCatch: {
        auto* tc = static_cast<TryCatchStmt*>(stmt.get());
        RETURN_NOT_OK(ConvertForLoopsToCursorLoops(
            static_cast<BlockStmt*>(tc->try_block.get()), db, options,
            notes));
        RETURN_NOT_OK(ConvertForLoopsToCursorLoops(
            static_cast<BlockStmt*>(tc->catch_block.get()), db, options,
            notes));
        break;
      }
      default:
        break;
    }
  }
  return Status::OK();
}

}  // namespace aggify
