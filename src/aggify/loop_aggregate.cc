#include "aggify/loop_aggregate.h"

#include "common/failpoint.h"
#include "procedural/interpreter.h"

namespace aggify {

namespace {

struct LoopAggState : AggregateState {
  VariableEnv fields;
  /// Per-row scope reused across Accumulate calls (fetch variables are
  /// re-bound each row; Δ-local declarations are overwritten by Δ itself).
  VariableEnv row_env{&fields};
  bool initialized = false;
  bool done = false;  // BREAK executed; ignore further rows
};

}  // namespace

LoopAggregate::LoopAggregate(std::string name,
                             std::shared_ptr<const BlockStmt> body,
                             LoopSets sets)
    : name_(std::move(name)), body_(std::move(body)), sets_(std::move(sets)) {}

Result<std::unique_ptr<AggregateState>> LoopAggregate::Init() const {
  // Field initialization is deferred to the first Accumulate (§5.2).
  return std::make_unique<LoopAggState>();
}

Status LoopAggregate::Accumulate(AggregateState* state,
                                 const std::vector<Value>& args,
                                 ExecContext* ctx) const {
  AGGIFY_FAILPOINT("aggify.loop.accumulate");
  auto* s = static_cast<LoopAggState*>(state);
  if (s->done) return Status::OK();
  size_t expected = sets_.p_accum.size() + sets_.v_extra_init.size();
  if (args.size() != expected) {
    return Status::ExecutionError(
        "aggregate " + name_ + " expects " + std::to_string(expected) +
        " arguments, got " + std::to_string(args.size()));
  }
  if (!s->initialized) {
    // Declare all fields (NULL), then initialize V_init from the matching
    // arguments and the V_term soundness extras from the trailing ones —
    // the runtime values the variables held at loop entry.
    for (const auto& f : sets_.v_fields) s->fields.Declare(f, Value::Null());
    for (const auto& f : sets_.v_init) {
      for (size_t i = 0; i < sets_.p_accum.size(); ++i) {
        if (sets_.p_accum[i] == f) {
          s->fields.Declare(f, args[i]);
          break;
        }
      }
    }
    for (size_t j = 0; j < sets_.v_extra_init.size(); ++j) {
      s->fields.Declare(sets_.v_extra_init[j],
                        args[sets_.p_accum.size() + j]);
    }
    s->initialized = true;
  }
  // Per-row scope: fetch variables bound to their arguments (matched by
  // name — a fetch variable unused in Δ is absent from P_accum and simply
  // gets NULL; Δ never reads it).
  VariableEnv& row_env = s->row_env;
  for (const auto& fetch_var : sets_.v_fetch) {
    Value bound;
    for (size_t i = 0; i < sets_.p_accum.size(); ++i) {
      if (sets_.p_accum[i] == fetch_var) {
        bound = args[i];
        break;
      }
    }
    row_env.Declare(fetch_var, std::move(bound));
  }
  row_env.Declare("@@fetch_status", Value::Int(0));

  // Hot path: swap the correlation frame in place (Δ statements are not
  // correlated to query rows) rather than copying the context per row.
  const RowFrame* saved_frame = ctx->frame();
  ctx->set_frame(nullptr);
  Interpreter interp;  // engine-less: queries go via the context hook
  auto outcome = interp.ExecuteLoopBody(*body_, &row_env, *ctx);
  ctx->set_frame(saved_frame);
  RETURN_NOT_OK(outcome.status());
  if (*outcome == Interpreter::LoopBodyOutcome::kBreak) s->done = true;
  return Status::OK();
}

Result<Value> LoopAggregate::Terminate(AggregateState* state,
                                       ExecContext* ctx) const {
  AGGIFY_UNUSED(ctx);
  AGGIFY_FAILPOINT("aggify.loop.terminate");
  auto* s = static_cast<LoopAggState*>(state);
  if (!s->initialized) {
    // Zero iterations: NULL tells MultiAssign to keep prior values.
    return Value::Null();
  }
  // Single-attribute V_term returns the bare value (§5.4: "we avoid using a
  // tuple"); multi-attribute V_term returns the Record UDT. A single-target
  // MultiAssign thus sees a scalar — note the one semantic wrinkle: a loop
  // that ran and legitimately left its only live variable NULL is
  // indistinguishable from a zero-iteration loop, and the target keeps its
  // prior value (which for the reproduced workloads is the same NULL).
  if (sets_.v_term.size() == 1) {
    return s->fields.Get(sets_.v_term[0]);
  }
  std::vector<Value> out;
  out.reserve(sets_.v_term.size());
  for (const auto& f : sets_.v_term) {
    ASSIGN_OR_RETURN(Value v, s->fields.Get(f));
    out.push_back(std::move(v));
  }
  return Value::Record(std::move(out));
}

std::string LoopAggregate::GenerateSource() const {
  std::string out = "CREATE AGGREGATE " + name_ + " (";
  for (size_t i = 0; i < sets_.p_accum.size(); ++i) {
    if (i > 0) out += ", ";
    out += sets_.p_accum[i];
  }
  for (const auto& v : sets_.v_extra_init) {
    out += ", " + v + " /* entry value */";
  }
  out += ")\nAS BEGIN\n";
  out += "  -- fields (V_F)\n";
  out += "  DECLARE isInitialized BIT;\n";
  for (const auto& f : sets_.v_fields) {
    out += "  DECLARE " + f + ";\n";
  }
  out += "  Init() BEGIN\n    SET isInitialized = 0;\n  END\n";
  out += "  Accumulate(";
  for (size_t i = 0; i < sets_.p_accum.size(); ++i) {
    if (i > 0) out += ", ";
    out += sets_.p_accum[i];
  }
  out += ") BEGIN\n    IF (isInitialized = 0)\n    BEGIN\n";
  for (const auto& f : sets_.v_init) {
    out += "      SET " + f + " = " + f + "_arg;\n";
  }
  out += "      SET isInitialized = 1;\n    END\n";
  out += "    -- loop body Δ (FETCH removed)\n";
  out += body_->ToString(2);
  out += "  END\n";
  out += "  Terminate() BEGIN\n    RETURN (";
  for (size_t i = 0; i < sets_.v_term.size(); ++i) {
    if (i > 0) out += ", ";
    out += sets_.v_term[i];
  }
  out += ");\n  END\nEND\n";
  return out;
}

}  // namespace aggify
