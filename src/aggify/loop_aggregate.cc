#include "aggify/loop_aggregate.h"

#include <map>
#include <set>

#include "analysis/merge_synthesis.h"
#include "common/failpoint.h"
#include "exec/eval.h"
#include "procedural/interpreter.h"

namespace aggify {

namespace {

/// True when interpreting `stmt` on a worker thread can never re-enter the
/// engine: plain control flow and assignments over parallel-safe
/// expressions. Anything carrying a SELECT (cursor statements, DML,
/// MultiAssign) or that can hide one behind TRY/CATCH recovery is rejected
/// conservatively.
bool StmtIsParallelSafe(const Stmt& stmt) {
  auto expr_ok = [](const Expr* e) {
    return e == nullptr || ExprIsParallelSafe(*e);
  };
  switch (stmt.kind) {
    case StmtKind::kBlock: {
      const auto& block = static_cast<const BlockStmt&>(stmt);
      for (const auto& s : block.statements) {
        if (!StmtIsParallelSafe(*s)) return false;
      }
      return true;
    }
    case StmtKind::kDeclareVar:
      return expr_ok(static_cast<const DeclareVarStmt&>(stmt).initializer.get());
    case StmtKind::kSet:
      return expr_ok(static_cast<const SetStmt&>(stmt).value.get());
    case StmtKind::kIf: {
      const auto& s = static_cast<const IfStmt&>(stmt);
      return expr_ok(s.condition.get()) && StmtIsParallelSafe(*s.then_branch) &&
             (s.else_branch == nullptr || StmtIsParallelSafe(*s.else_branch));
    }
    case StmtKind::kWhile: {
      const auto& s = static_cast<const WhileStmt&>(stmt);
      return expr_ok(s.condition.get()) && StmtIsParallelSafe(*s.body);
    }
    case StmtKind::kBreak:
    case StmtKind::kContinue:
      return true;
    default:
      return false;
  }
}

struct LoopAggState : AggregateState {
  VariableEnv fields;
  /// Per-row scope reused across Accumulate calls (fetch variables are
  /// re-bound each row; Δ-local declarations are overwritten by Δ itself).
  VariableEnv row_env{&fields};
  /// Loop-entry values captured at first Accumulate (the V_init /
  /// V_extra_init arguments). Merge subtracts this shared baseline from sum
  /// folds so it is not counted once per partial state.
  std::map<std::string, Value> baseline;
  bool initialized = false;
  bool done = false;  // BREAK executed; ignore further rows
};

/// The homomorphism-calculus plan, when one was synthesized AND survived;
/// nullptr means the legacy fold-algebra switch governs Merge.
const MergePlan* PlanOf(const BodyClassification& c) {
  return c.merge_plan != nullptr && c.merge_plan->mergeable
             ? c.merge_plan.get()
             : nullptr;
}

/// Applies a product field's auxiliary-state updates after the body ran for
/// one row. ctx->vars() must already point at the row environment; factors
/// and guards only reference variables the body never writes, so evaluating
/// them post-body observes the values the update itself saw.
Status ApplyAuxUpdates(const MergePlan& plan, LoopAggState* s,
                       ExecContext* ctx) {
  for (const auto& fp : plan.fields) {
    for (const auto& aux : fp.aux) {
      bool fired = true;
      for (const auto& g : aux.guards) {
        ASSIGN_OR_RETURN(bool pass, EvalPredicate(*g.cond, *ctx));
        if (pass == g.negated) {  // ELSE terms fire on false OR NULL
          fired = false;
          break;
        }
      }
      if (!fired) continue;
      ASSIGN_OR_RETURN(Value m, EvalExpr(*aux.factor, *ctx));
      ASSIGN_OR_RETURN(Value cur, s->fields.Get(aux.name));
      if (aux.kind == AuxUpdate::Kind::kFactorImage) {
        // NULL factors poison the image exactly as they poison the serial
        // product.
        ASSIGN_OR_RETURN(Value next, Multiply(cur, m));
        s->fields.Declare(aux.name, std::move(next));
      } else {
        bool is_zero = false;
        if (!m.is_null()) {
          ASSIGN_OR_RETURN(Value cmp, Compare(m, Value::Int(0)));
          is_zero = cmp.int_value() == 0;
        }
        if (is_zero) {
          ASSIGN_OR_RETURN(Value next, Add(cur, Value::Int(1)));
          s->fields.Declare(aux.name, std::move(next));
        }
      }
    }
  }
  return Status::OK();
}

/// Merges `o` into `s` by evaluating each field's synthesized MergeFn over
/// the reserved names @l / @r / @c. Aux state combines first (images by
/// multiplication, zero counts by addition) so product merge expressions see
/// the combined image; derived fields recompute last, over the merged bases
/// (plan.fields is ordered bases-then-derived).
Status MergeWithPlan(const MergePlan& plan, LoopAggState* s, LoopAggState* o,
                     ExecContext* ctx) {
  std::set<std::string> merged_aux;
  for (const auto& fp : plan.fields) {
    for (const auto& aux : fp.aux) {
      if (!merged_aux.insert(aux.name).second) continue;
      ASSIGN_OR_RETURN(Value a, s->fields.Get(aux.name));
      ASSIGN_OR_RETURN(Value b, o->fields.Get(aux.name));
      Value next;
      if (aux.kind == AuxUpdate::Kind::kFactorImage) {
        ASSIGN_OR_RETURN(next, Multiply(a, b));
      } else {
        ASSIGN_OR_RETURN(next, Add(a, b));
      }
      s->fields.Declare(aux.name, std::move(next));
    }
  }
  VariableEnv* saved_vars = ctx->vars();
  for (const auto& fp : plan.fields) {
    switch (fp.rule) {
      case MergeRuleKind::kInvariant:
        break;  // both sides still hold the shared baseline
      case MergeRuleKind::kDerived: {
        ctx->set_vars(&s->fields);
        auto v = EvalExpr(*fp.recompute, *ctx);
        ctx->set_vars(saved_vars);
        RETURN_NOT_OK(v.status());
        s->fields.Declare(fp.field, std::move(*v));
        break;
      }
      default: {
        if (fp.merge_expr == nullptr) {
          return Status::Internal("merge plan for " + fp.field +
                                  " has no merge expression");
        }
        ASSIGN_OR_RETURN(Value a, s->fields.Get(fp.field));
        ASSIGN_OR_RETURN(Value b, o->fields.Get(fp.field));
        Value c = Value::Null();
        auto it = s->baseline.find(fp.field);
        if (it != s->baseline.end()) c = it->second;
        // Child env of the merged state so aux names (@__img<i>) resolve to
        // their just-combined values.
        VariableEnv merge_env(&s->fields);
        merge_env.Declare("@l", std::move(a));
        merge_env.Declare("@r", std::move(b));
        merge_env.Declare("@c", std::move(c));
        ctx->set_vars(&merge_env);
        auto v = EvalExpr(*fp.merge_expr, *ctx);
        ctx->set_vars(saved_vars);
        RETURN_NOT_OK(v.status());
        s->fields.Declare(fp.field, std::move(*v));
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace

LoopAggregate::LoopAggregate(std::string name,
                             std::shared_ptr<const BlockStmt> body,
                             LoopSets sets, BodyClassification classification)
    : name_(std::move(name)),
      body_(std::move(body)),
      sets_(std::move(sets)),
      classification_(std::move(classification)) {
  parallel_safe_ = body_ != nullptr && StmtIsParallelSafe(*body_);
}

Result<std::unique_ptr<AggregateState>> LoopAggregate::Init() const {
  // Field initialization is deferred to the first Accumulate (§5.2).
  return std::make_unique<LoopAggState>();
}

Status LoopAggregate::Accumulate(AggregateState* state,
                                 const std::vector<Value>& args,
                                 ExecContext* ctx) const {
  AGGIFY_FAILPOINT("aggify.loop.accumulate");
  auto* s = static_cast<LoopAggState*>(state);
  if (s->done) return Status::OK();
  size_t expected = sets_.p_accum.size() + sets_.v_extra_init.size();
  if (args.size() != expected) {
    return Status::ExecutionError(
        "aggregate " + name_ + " expects " + std::to_string(expected) +
        " arguments, got " + std::to_string(args.size()));
  }
  if (!s->initialized) {
    // Declare all fields (NULL), then initialize V_init from the matching
    // arguments and the V_term soundness extras from the trailing ones —
    // the runtime values the variables held at loop entry.
    for (const auto& f : sets_.v_fields) s->fields.Declare(f, Value::Null());
    for (const auto& f : sets_.v_init) {
      for (size_t i = 0; i < sets_.p_accum.size(); ++i) {
        if (sets_.p_accum[i] == f) {
          s->fields.Declare(f, args[i]);
          s->baseline[f] = args[i];
          break;
        }
      }
    }
    for (size_t j = 0; j < sets_.v_extra_init.size(); ++j) {
      s->fields.Declare(sets_.v_extra_init[j],
                        args[sets_.p_accum.size() + j]);
      s->baseline[sets_.v_extra_init[j]] = args[sets_.p_accum.size() + j];
    }
    // Auxiliary merge state (merge synthesis): factor images seed 1, zero
    // counts seed 0. Reserved @__ names never collide with script variables.
    if (const MergePlan* plan = PlanOf(classification_)) {
      for (const auto& fp : plan->fields) {
        for (const auto& aux : fp.aux) {
          if (!s->fields.Has(aux.name)) {
            s->fields.Declare(aux.name,
                              aux.kind == AuxUpdate::Kind::kFactorImage
                                  ? Value::Int(1)
                                  : Value::Int(0));
          }
        }
      }
    }
    s->initialized = true;
  }
  // Per-row scope: fetch variables bound to their arguments (matched by
  // name — a fetch variable unused in Δ is absent from P_accum and simply
  // gets NULL; Δ never reads it).
  VariableEnv& row_env = s->row_env;
  for (const auto& fetch_var : sets_.v_fetch) {
    Value bound;
    for (size_t i = 0; i < sets_.p_accum.size(); ++i) {
      if (sets_.p_accum[i] == fetch_var) {
        bound = args[i];
        break;
      }
    }
    row_env.Declare(fetch_var, std::move(bound));
  }
  row_env.Declare("@@fetch_status", Value::Int(0));

  // Hot path: swap the correlation frame in place (Δ statements are not
  // correlated to query rows) rather than copying the context per row.
  const RowFrame* saved_frame = ctx->frame();
  ctx->set_frame(nullptr);
  Interpreter interp;  // engine-less: queries go via the context hook
  auto outcome = interp.ExecuteLoopBody(*body_, &row_env, *ctx);
  ctx->set_frame(saved_frame);
  RETURN_NOT_OK(outcome.status());
  if (*outcome == Interpreter::LoopBodyOutcome::kBreak) s->done = true;
  if (const MergePlan* plan = PlanOf(classification_)) {
    VariableEnv* saved_vars = ctx->vars();
    ctx->set_vars(&row_env);
    Status aux_status = ApplyAuxUpdates(*plan, s, ctx);
    ctx->set_vars(saved_vars);
    RETURN_NOT_OK(aux_status);
  }
  return Status::OK();
}

Status LoopAggregate::Merge(AggregateState* state, AggregateState* other,
                            ExecContext* ctx) const {
  if (!classification_.decomposable) {
    // Fall back to the contract's NotSupported — callers must gate on
    // SupportsMerge().
    return AggregateFunction::Merge(state, other, ctx);
  }
  auto* s = static_cast<LoopAggState*>(state);
  auto* o = static_cast<LoopAggState*>(other);
  // BREAK bodies never pass the decomposability proof, so `done` cannot be
  // set on either side here.
  if (!o->initialized) return Status::OK();
  if (!s->initialized) {
    // Zero rows on this side: adopt the other partial state wholesale.
    for (const auto& n : o->fields.LocalNames()) {
      ASSIGN_OR_RETURN(Value v, o->fields.Get(n));
      s->fields.Declare(n, std::move(v));
    }
    s->baseline = o->baseline;
    s->initialized = true;
    return Status::OK();
  }
  if (const MergePlan* plan = PlanOf(classification_)) {
    return MergeWithPlan(*plan, s, o, ctx);
  }
  for (const auto& fold : classification_.folds) {
    ASSIGN_OR_RETURN(Value a, s->fields.Get(fold.field));
    ASSIGN_OR_RETURN(Value b, o->fields.Get(fold.field));
    switch (fold.kind) {
      case FoldKind::kSum: {
        // Both partials started from the same loop-entry baseline c (V_init
        // arguments are loop-invariant): merged = a + (b - c). NULLs
        // propagate exactly as in the serial fold.
        Value c = Value::Null();
        auto it = s->baseline.find(fold.field);
        if (it != s->baseline.end()) c = it->second;
        ASSIGN_OR_RETURN(Value delta, Subtract(b, c));
        ASSIGN_OR_RETURN(Value merged, Add(a, delta));
        s->fields.Declare(fold.field, std::move(merged));
        break;
      }
      case FoldKind::kGuardedMin:
      case FoldKind::kGuardedMax: {
        // Compare-and-keep is idempotent, so the shared baseline cancels. A
        // NULL side means that partial's guard never fired; keeping the
        // other side matches the serial loop (NULL comparisons never fire).
        if (b.is_null()) break;
        if (a.is_null()) {
          s->fields.Declare(fold.field, std::move(b));
          break;
        }
        ASSIGN_OR_RETURN(Value cmp, Compare(b, a));
        bool replace = fold.kind == FoldKind::kGuardedMin
                           ? cmp.int_value() < 0
                           : cmp.int_value() > 0;
        if (replace) s->fields.Declare(fold.field, std::move(b));
        break;
      }
      default:
        return Status::Internal("Merge invoked on non-mergeable fold " +
                                std::string(FoldKindName(fold.kind)) +
                                " of " + fold.field + " in " + name_);
    }
  }
  return Status::OK();
}

Result<Value> LoopAggregate::Terminate(AggregateState* state,
                                       ExecContext* ctx) const {
  AGGIFY_UNUSED(ctx);
  AGGIFY_FAILPOINT("aggify.loop.terminate");
  auto* s = static_cast<LoopAggState*>(state);
  if (!s->initialized) {
    // Zero iterations: NULL tells MultiAssign to keep prior values.
    return Value::Null();
  }
  // Single-attribute V_term returns the bare value (§5.4: "we avoid using a
  // tuple"); multi-attribute V_term returns the Record UDT. A single-target
  // MultiAssign thus sees a scalar — note the one semantic wrinkle: a loop
  // that ran and legitimately left its only live variable NULL is
  // indistinguishable from a zero-iteration loop, and the target keeps its
  // prior value (which for the reproduced workloads is the same NULL).
  if (sets_.v_term.size() == 1) {
    return s->fields.Get(sets_.v_term[0]);
  }
  std::vector<Value> out;
  out.reserve(sets_.v_term.size());
  for (const auto& f : sets_.v_term) {
    ASSIGN_OR_RETURN(Value v, s->fields.Get(f));
    out.push_back(std::move(v));
  }
  return Value::Record(std::move(out));
}

std::string LoopAggregate::GenerateSource() const {
  std::string out = "CREATE AGGREGATE " + name_ + " (";
  for (size_t i = 0; i < sets_.p_accum.size(); ++i) {
    if (i > 0) out += ", ";
    out += sets_.p_accum[i];
  }
  for (const auto& v : sets_.v_extra_init) {
    out += ", " + v + " /* entry value */";
  }
  out += ")\nAS BEGIN\n";
  out += "  -- fields (V_F)\n";
  out += "  DECLARE isInitialized BIT;\n";
  for (const auto& f : sets_.v_fields) {
    out += "  DECLARE " + f + ";\n";
  }
  out += "  Init() BEGIN\n    SET isInitialized = 0;\n  END\n";
  out += "  Accumulate(";
  for (size_t i = 0; i < sets_.p_accum.size(); ++i) {
    if (i > 0) out += ", ";
    out += sets_.p_accum[i];
  }
  out += ") BEGIN\n    IF (isInitialized = 0)\n    BEGIN\n";
  for (const auto& f : sets_.v_init) {
    out += "      SET " + f + " = " + f + "_arg;\n";
  }
  out += "      SET isInitialized = 1;\n    END\n";
  out += "    -- loop body Δ (FETCH removed)\n";
  out += body_->ToString(2);
  out += "  END\n";
  if (const MergePlan* plan = PlanOf(classification_)) {
    out += "  -- derived by the homomorphism-calculus merge synthesis;\n";
    out += "  -- @l = this partial, @r = other partial, @c = shared "
           "loop-entry baseline\n";
    out += "  Merge(other) BEGIN\n";
    std::set<std::string> rendered_aux;
    for (const auto& fp : plan->fields) {
      for (const auto& aux : fp.aux) {
        if (!rendered_aux.insert(aux.name).second) continue;
        if (aux.kind == AuxUpdate::Kind::kFactorImage) {
          out += "    SET " + aux.name + " = " + aux.name + " * other." +
                 aux.name + ";  -- factor image\n";
        } else {
          out += "    SET " + aux.name + " = " + aux.name + " + other." +
                 aux.name + ";  -- zero count\n";
        }
      }
    }
    for (const auto& fp : plan->fields) {
      switch (fp.rule) {
        case MergeRuleKind::kInvariant:
          break;
        case MergeRuleKind::kDerived:
          out += "    SET " + fp.field + " = " + fp.recompute->ToString() +
                 ";  -- derived: recomputed from merged bases\n";
          break;
        default:
          out += "    SET " + fp.field + " = " + fp.merge_expr->ToString() +
                 ";  -- " + MergeRuleKindName(fp.rule) + " (@l=" + fp.field +
                 ", @r=other." + fp.field + ", @c=init." + fp.field + ")\n";
          break;
      }
    }
    out += "  END\n";
  } else if (classification_.decomposable) {
    out += "  -- derived from the decomposability proof (fold classifier)\n";
    out += "  Merge(other) BEGIN\n";
    for (const auto& fold : classification_.folds) {
      const std::string& f = fold.field;
      switch (fold.kind) {
        case FoldKind::kSum:
          out += "    SET " + f + " = " + f + " + other." + f + " - init." +
                 f + ";\n";
          break;
        case FoldKind::kGuardedMin:
          out += "    IF (other." + f + " < " + f + ") SET " + f +
                 " = other." + f + ";\n";
          break;
        case FoldKind::kGuardedMax:
          out += "    IF (other." + f + " > " + f + ") SET " + f +
                 " = other." + f + ";\n";
          break;
        default:
          break;
      }
    }
    out += "  END\n";
  }
  out += "  Terminate() BEGIN\n    RETURN (";
  for (size_t i = 0; i < sets_.v_term.size(); ++i) {
    if (i > 0) out += ", ";
    out += sets_.v_term[i];
  }
  out += ");\n  END\nEND\n";
  return out;
}

}  // namespace aggify
