// LoopAggregate: the custom aggregate Aggify synthesizes from a cursor-loop
// body (§5, Figure 4 template).
//
//   fields   V_F (+ the implicit isInitialized flag)
//   Init     marks the state uninitialized — field initialization is
//            deferred to the first Accumulate because initial values are
//            runtime values, not compile-time constants (§5.2)
//   Accumulate(P_accum)  on first call initializes V_init fields from the
//            corresponding arguments, then executes the loop body Δ (with
//            FETCH statements stripped; fetch variables are bound to the
//            leading arguments, i.e. the cursor query's columns)
//   Terminate  returns the V_term tuple as a Record — or NULL when no row
//            was ever accumulated, signalling the rewrite to leave the
//            target variables untouched (zero-iteration loop semantics)
//   Merge    derived from the decomposability proof (analysis/
//            fold_classifier.h) when every accumulator is a mergeable
//            commutative fold; unsupported otherwise (§3.1 says Merge is
//            optional)
//
// The synthesized Merge leans on one invariant: V_init arguments are
// loop-invariant, so every partial state initialized itself from the same
// loop-entry baseline c. Sum folds then merge as a + b - c (the baseline
// would otherwise be counted twice) and guarded min/max folds merge by the
// same compare-and-keep guard (idempotent, so the shared baseline cancels).
//
// BREAK in Δ sets a `done` flag; subsequent Accumulate calls are no-ops,
// which is exactly the original loop's "stop processing further rows".
#pragma once

#include <memory>

#include "aggify/analysis_sets.h"
#include "aggregates/aggregate_function.h"
#include "analysis/fold_classifier.h"

namespace aggify {

class LoopAggregate : public AggregateFunction {
 public:
  /// \param body loop body Δ with FETCH statements on the loop's cursor
  /// removed; shared because the catalog-held aggregate outlives the rewrite.
  /// \param classification the fold classifier's verdict on `body`; defaults
  /// to the conservative "opaque" result (order-sensitive iff the cursor was
  /// ordered, no Merge).
  LoopAggregate(std::string name, std::shared_ptr<const BlockStmt> body,
                LoopSets sets, BodyClassification classification = {});

  const std::string& name() const override { return name_; }
  int arity() const override {
    return static_cast<int>(sets_.p_accum.size() + sets_.v_extra_init.size());
  }

  Result<std::unique_ptr<AggregateState>> Init() const override;
  Status Accumulate(AggregateState* state, const std::vector<Value>& args,
                    ExecContext* ctx) const override;
  Result<Value> Terminate(AggregateState* state,
                          ExecContext* ctx) const override;
  Status Merge(AggregateState* state, AggregateState* other,
               ExecContext* ctx) const override;
  bool SupportsMerge() const override { return classification_.decomposable; }
  bool IsOrderSensitive() const override {
    return sets_.ordered && !classification_.order_insensitive;
  }
  /// Workers may run Δ only when the body provably never re-enters the
  /// engine: plain control flow + assignments whose expressions pass
  /// ExprIsParallelSafe (no queries, no UDF calls). Computed once at
  /// construction.
  bool ParallelSafe() const override { return parallel_safe_; }

  const LoopSets& sets() const { return sets_; }
  const BlockStmt& body() const { return *body_; }
  const BodyClassification& classification() const { return classification_; }

  /// \brief Renders the aggregate definition in the paper's Figure 5/6
  /// style — what the generated C# / T-SQL artifact would look like. When
  /// the decomposability proof holds, the derived Merge is included.
  std::string GenerateSource() const;

 private:
  std::string name_;
  std::shared_ptr<const BlockStmt> body_;
  LoopSets sets_;
  BodyClassification classification_;
  bool parallel_safe_ = false;
};

}  // namespace aggify
