#include "aggify/merge_certificate.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "exec/exec_context.h"

namespace aggify {

namespace {

/// Deterministic xorshift64* — the sweep must not depend on platform RNG.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ULL) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }
  /// Uniform in [0, n).
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

 private:
  uint64_t state_;
};

/// A small integer domain (−5..5, 10% NULL): products stay far from
/// overflow across 10 rows while still exercising sign flips, zeros
/// (the zero-count augmentation), and NULL poisoning.
Value RandomCell(Rng* rng) {
  if (rng->Below(10) == 0) return Value::Null();
  return Value::Int(static_cast<int64_t>(rng->Below(11)) - 5);
}

struct Trial {
  /// One argument vector per row (p_accum + v_extra_init, fetch columns
  /// varying per row, everything else trial-constant).
  std::vector<std::vector<Value>> rows;
};

Result<Value> RunPartitioned(const LoopAggregate& agg, const Trial& trial,
                             const std::vector<int>& assignment, int dop,
                             ExecContext* ctx) {
  std::vector<std::unique_ptr<AggregateState>> states;
  states.reserve(dop);
  for (int d = 0; d < dop; ++d) {
    ASSIGN_OR_RETURN(auto st, agg.Init());
    states.push_back(std::move(st));
  }
  for (size_t i = 0; i < trial.rows.size(); ++i) {
    RETURN_NOT_OK(
        agg.Accumulate(states[assignment[i]].get(), trial.rows[i], ctx));
  }
  // Left-fold merge into partition 0, mirroring ParallelPartialAggOp's
  // coordinator join (zero-row partitions exercise the adopt path).
  for (int d = 1; d < dop; ++d) {
    RETURN_NOT_OK(agg.Merge(states[0].get(), states[d].get(), ctx));
  }
  return agg.Terminate(states[0].get(), ctx);
}

Result<Value> RunSerial(const LoopAggregate& agg, const Trial& trial,
                        const std::vector<size_t>& order, ExecContext* ctx) {
  ASSIGN_OR_RETURN(auto st, agg.Init());
  for (size_t i : order) {
    RETURN_NOT_OK(agg.Accumulate(st.get(), trial.rows[i], ctx));
  }
  return agg.Terminate(st.get(), ctx);
}

std::string ValueText(const Value& v) { return v.ToString(); }

}  // namespace

Result<std::string> RunShuffleSweepCertificate(const LoopAggregate& agg,
                                               Database* db, uint64_t seed) {
  if (!agg.ParallelSafe()) {
    return Status::NotApplicable(
        "shuffle sweep requires a parallel-safe body (engine-free "
        "execution)");
  }
  Rng rng(seed);
  ExecContext ctx(db);

  const LoopSets& sets = agg.sets();
  const size_t total_args = sets.p_accum.size() + sets.v_extra_init.size();
  auto is_fetch = [&](const std::string& name) {
    return std::find(sets.v_fetch.begin(), sets.v_fetch.end(), name) !=
           sets.v_fetch.end();
  };

  // Loop-entry baselines to sweep: zero and NULL are the adversarial ones
  // (NULL poisons sums; zero defeats the division-inverse product merge the
  // calculus deliberately avoids).
  const Value kBaselines[] = {Value::Int(0), Value::Null(), Value::Int(1),
                              Value::Int(3), Value::Int(-2)};
  constexpr int kTrials = 12;
  constexpr int kDops[] = {2, 3, 4};
  int executions = 0;
  int compared = 0;
  int skipped = 0;

  for (int t = 0; t < kTrials; ++t) {
    Trial trial;
    const size_t n = rng.Below(11);  // 0..10 rows; n==0 checks zero-row merge
    // Non-fetch arguments are loop-invariant: constant across the trial.
    std::vector<Value> invariants(total_args);
    for (size_t a = 0; a < total_args; ++a) {
      const Value& pick = kBaselines[(t + a) % (sizeof(kBaselines) /
                                                sizeof(kBaselines[0]))];
      invariants[a] = pick;
    }
    for (size_t i = 0; i < n; ++i) {
      std::vector<Value> args(total_args);
      for (size_t a = 0; a < sets.p_accum.size(); ++a) {
        args[a] = is_fetch(sets.p_accum[a]) ? RandomCell(&rng)
                                            : invariants[a];
      }
      for (size_t a = sets.p_accum.size(); a < total_args; ++a) {
        args[a] = invariants[a];
      }
      trial.rows.push_back(std::move(args));
    }

    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    Result<Value> expected_or = RunSerial(agg, trial, order, &ctx);
    if (!expected_or.ok()) {
      // The body itself errors under this baseline draw (e.g. a derived
      // division by a count that crosses zero). The serial rewrite
      // preserves that error; there is no defined value to compare a
      // partitioned run against, so the trial is skipped. The certificate
      // quantifies over executions where the serial fold is defined — see
      // the error-semantics caveat in docs/ANALYSIS.md.
      ++skipped;
      continue;
    }
    Value expected = std::move(expected_or).ValueOrDie();
    ++compared;

    auto check = [&](const Value& got, const std::string& what) -> Status {
      ++executions;
      if (!got.StructurallyEquals(expected)) {
        return Status::ExecutionError(
            "shuffle-sweep divergence (trial " + std::to_string(t) + ", " +
            what + "): serial=" + ValueText(expected) +
            " partitioned=" + ValueText(got));
      }
      return Status::OK();
    };

    // 1. Random permutation at DOP 1 (order-insensitivity).
    std::vector<size_t> shuffled = order;
    for (size_t i = n; i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.Below(i)]);
    }
    ASSIGN_OR_RETURN(Value permuted, RunSerial(agg, trial, shuffled, &ctx));
    RETURN_NOT_OK(check(permuted, "permutation"));

    // 2. Round-robin interleave — exactly ParallelPartialAggOp's morsel →
    //    partition i % dop assignment.
    for (int dop : kDops) {
      std::vector<int> assignment(n);
      for (size_t i = 0; i < n; ++i) {
        assignment[i] = static_cast<int>(i % dop);
      }
      ASSIGN_OR_RETURN(Value got,
                       RunPartitioned(agg, trial, assignment, dop, &ctx));
      RETURN_NOT_OK(check(got, "interleave dop " + std::to_string(dop)));
    }

    // 3. Random contiguous split (range partitioning).
    {
      const size_t k = rng.Below(n + 1);
      std::vector<int> assignment(n);
      for (size_t i = 0; i < n; ++i) assignment[i] = i < k ? 0 : 1;
      ASSIGN_OR_RETURN(Value got,
                       RunPartitioned(agg, trial, assignment, 2, &ctx));
      RETURN_NOT_OK(check(got, "split at " + std::to_string(k)));
    }
  }

  if (compared == 0) {
    return Status::NotApplicable(
        "shuffle sweep: the body errored on every trial baseline; no "
        "partitioned execution could be compared");
  }
  std::string cert = "shuffle-sweep certificate: " + std::to_string(compared) +
                     " trials x " + std::to_string(executions / compared) +
                     " partitionings (permutation, dop 2/3/4 interleave, "
                     "random split) == serial fold";
  if (skipped > 0) {
    cert += "; " + std::to_string(skipped) + " trials skipped (body error)";
  }
  return cert + "; seed=" + std::to_string(seed);
}

}  // namespace aggify
