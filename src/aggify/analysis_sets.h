// Algorithm 1's data-flow-derived sets (Eqs. 1–4, §5) and the §4
// applicability check.
#pragma once

#include "aggify/cursor_loop.h"
#include "analysis/dataflow.h"
#include "analysis/diagnostics.h"
#include "analysis/purity.h"
#include "storage/catalog.h"

namespace aggify {

/// \brief Every variable set Algorithm 1 computes for one cursor loop.
/// All names are lowercase with '@'. Orders are deterministic: V_fetch in
/// FETCH INTO order; the rest sorted.
struct LoopSets {
  std::vector<std::string> v_delta;  ///< vars referenced in Δ
  std::vector<std::string> v_fetch;  ///< vars assigned by FETCH
  std::vector<std::string> v_local;  ///< declared in Δ, dead at loop exit
  std::vector<std::string> v_fields; ///< Eq. 1 (minus implicit isInitialized)
  std::vector<std::string> p_accum;  ///< Eq. 3: V_fetch first, then the rest
  std::vector<std::string> v_init;   ///< Eq. 4
  std::vector<std::string> v_term;   ///< fields live at loop exit (§5.4)
  /// Soundness extension beyond the paper's equations: V_term fields not in
  /// V_init. Eq. 3 only parameterizes values some loop use can read, but a
  /// field the loop *conditionally never assigns* must still come back with
  /// its pre-loop value from Terminate. These are passed as extra trailing
  /// Accumulate arguments and initialized alongside V_init. (Found by the
  /// Theorem 4.2 property test; the paper's C#-defaults prototype returns
  /// wrong values for such loops.)
  std::vector<std::string> v_extra_init;
  bool ordered = false;              ///< cursor query has ORDER BY (Eq. 6)
};

/// \brief §4.2 applicability: rejects loops containing DML against
/// persistent tables, RETURN statements, transactions-like constructs, or a
/// SELECT * cursor query (positional fetch against an unknown shape).
///
/// UDF calls inside the body are vetted through the interprocedural purity
/// analysis over `catalog` (see analysis/purity.h): calls with proven
/// persistent-state DML — directly or transitively — are rejected, as are
/// calls the analysis cannot resolve; proven-pure / read-only / temp-writing
/// calls are accepted. With `catalog == nullptr` every non-built-in call is
/// conservatively rejected.
///
/// Returns OK when Aggify may rewrite; NotApplicable with a
/// diagnostic-coded reason (analysis/diagnostics.h) otherwise.
Status CheckApplicability(const CursorLoopInfo& loop,
                          const Catalog* catalog = nullptr);

/// \brief Non-short-circuiting variant of CheckApplicability: every
/// violation in the loop, in source order (query shape, then body
/// statements in traversal order, then calls). Empty means applicable.
/// CheckApplicability() returns exactly the first entry of this list, so
/// `skipped[i] == skip_details[i][0]` holds by construction in
/// AggifyReport. Each diagnostic carries the offending statement's byte
/// offset; `loc` is left empty for the caller to fill.
std::vector<Diagnostic> ApplicabilityDiagnostics(
    const CursorLoopInfo& loop, const Catalog* catalog = nullptr);

/// \brief Runs CFG construction + data-flow analyses on the whole enclosing
/// body and evaluates Eqs. 1–4 and V_term for `loop`.
/// \param program_body the function/block containing the loop
/// \param params parameter names of the enclosing function (defs at entry)
/// \param observable_vars additionally-live-at-exit variables. For
///   anonymous client programs (no RETURN), the environment itself is the
///   output, so the block's top-level variables are observable; for UDFs
///   pass nullptr and let liveness from RETURN decide. The loop's own fetch
///   variables are never added (they are not fields by Eq. 1).
Result<LoopSets> ComputeLoopSets(const BlockStmt& program_body,
                                 const std::vector<std::string>& params,
                                 const CursorLoopInfo& loop,
                                 const std::set<std::string>* observable_vars
                                 = nullptr);

/// \brief Variables declared at the top level of `block` (descending into
/// IF branches and plain nested blocks, but not into loop bodies): the
/// observable outputs of an anonymous client program.
std::set<std::string> TopLevelVariables(const BlockStmt& block);

}  // namespace aggify
