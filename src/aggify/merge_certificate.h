// The shuffle-sweep certificate: analysis-time property validation of a
// synthesized Merge (DESIGN.md invariant 11).
//
// A merge plan derived by the homomorphism calculus is only *syntactically*
// verified. Before the rewriter ships it — flipping `parallel_eligible` so
// the loop runs on ParallelPartialAggOp — the plan must also survive an
// executable property check: for randomized row sets, every partitioned
// execution (random row permutations, round-robin interleavings at DOP
// 2/3/4 matching the parallel operator's morsel assignment, and random
// contiguous splits) must Terminate bit-identically to the serial DOP 1
// fold. The sweep drives the AggregateFunction contract directly
// (Init / Accumulate / Merge / Terminate), exactly as the parallel operator
// does, including zero-row partitions (the adopt path) and NULL / zero
// loop-entry baselines.
#pragma once

#include <cstdint>
#include <string>

#include "aggify/loop_aggregate.h"

namespace aggify {

class Database;

/// Runs the sweep. Returns a one-line human-readable certificate on
/// success; a descriptive error Status on the first divergence (the caller
/// demotes the plan and records an AGG212 kCertificateFailed blocker).
/// Trials where the serial reference itself errors (the body is partial —
/// e.g. a derived division crossing zero under an adversarial baseline) are
/// skipped: the certificate quantifies over executions where the serial
/// fold is defined (error-semantics caveat, docs/ANALYSIS.md). NotApplicable
/// when every trial errors. Deterministic for a given seed. Requires
/// agg.ParallelSafe() (the sweep executes the body engine-free).
Result<std::string> RunShuffleSweepCertificate(const LoopAggregate& agg,
                                               Database* db,
                                               uint64_t seed = 0xA991F4);

}  // namespace aggify
