// The Aggify driver: Algorithm 1.
//
// Finds cursor loops, checks applicability, computes the Eq. 1–4 sets,
// synthesizes and registers the custom aggregate, and rewrites the loop into
// the Eq. 5 / Eq. 6 query. Nested loops are handled innermost-first
// (§6.3.1); FOR loops can first be converted to cursor loops over recursive
// CTE iteration spaces (§8.1).
#pragma once

#include <set>

#include "aggify/loop_aggregate.h"
#include "analysis/simplify.h"
#include "common/engine_options.h"
#include "storage/catalog.h"

namespace aggify {

/// \brief Which rewrite produced the replacement statement.
enum class RewriteFamily : uint8_t {
  /// Eq. 5/6: the loop became a (custom or native) aggregate call.
  kScalarAggregate,
  /// Append-only INSERT body became INSERT ... SELECT (AGG401).
  kDmlInsert,
  /// Key-equality accumulating UPDATE became one set-oriented UPDATE
  /// (AGG402).
  kDmlUpdate,
};

/// \brief What happened to one loop.
struct LoopRewrite {
  std::string aggregate_name;
  LoopSets sets;
  /// The fold classifier's verdict on the (FETCH-stripped) body.
  BodyClassification classification;
  /// The ordered cursor's Eq. 6 sort was provably unnecessary and dropped.
  bool sort_elided = false;
  /// The decomposability proof held: the aggregate carries a derived Merge.
  bool merge_supported = false;
  /// The Eq. 5/6 statement that replaced the loop, as dialect text.
  std::string rewritten_statement;
  /// The synthesized aggregate, rendered in the paper's Figure 5/6 style.
  std::string aggregate_source;
  /// Δ proved to be a single native fold: no interpreted Agg_Δ was
  /// registered and the rewritten query calls the built-in aggregate named
  /// by `aggregate_name` ("sum", "count", "min", "max").
  bool lowered_to_builtin = false;
  /// The rewritten SELECT alone (re-parsable; plan-shape tests EXPLAIN it).
  std::string rewritten_query_sql;
  /// The rewritten query may legally run as a parallel partial aggregation:
  /// no order enforcement survives (elided sort or unordered cursor) and the
  /// aggregate either lowered to a mergeable builtin or carries a proven
  /// Merge over an engine-free body. The planner still re-checks the plan
  /// shape; this flag records the rewriter-side proof (AGG205).
  bool parallel_eligible = false;
  /// Aliases (c<j>) of cursor columns pruned from Q's projection (AGG302).
  std::vector<std::string> pruned_fetch_columns;
  /// The Merge came from the homomorphism-calculus synthesis pass (not the
  /// fold classifier's algebra) and passed the shuffle-sweep certificate.
  bool merge_synthesized = false;
  /// Per-field "field: rule [merged = ...]" lines when a plan is attached.
  std::vector<std::string> merge_rules;
  /// The passing shuffle-sweep certificate text (AGG207); empty otherwise.
  std::string merge_certificate;
  /// Which rewrite family produced the replacement (table-effect recovery
  /// for the DML families; analysis/table_effects.h).
  RewriteFamily family = RewriteFamily::kScalarAggregate;
  /// The early-exit analysis proved the BREAK monotone and a TOP-N prefix
  /// bound was attached to the derived query (AGG403).
  bool early_exit_bounded = false;
  /// DML families: the persistent table the rewritten statement writes.
  std::string dml_table;
};

struct AggifyReport {
  int loops_found = 0;
  int loops_rewritten = 0;
  std::vector<LoopRewrite> rewrites;
  /// Why loops were left alone: one coded diagnostic per skipped loop.
  std::vector<Diagnostic> skipped;
  /// Parallel to `skipped`: the FULL ordered rejection list for each
  /// skipped loop — every applicability violation (not just the first) plus
  /// any typed DML-recovery refusal (AGG404/405/407) appended by the
  /// table-effect pass. Invariant: skip_details.size() == skipped.size()
  /// and skip_details[i].front() == skipped[i] (no diagnostic is dropped).
  std::vector<std::vector<Diagnostic>> skip_details;
  /// Facts proved about rewritten loops (sort elision, derived Merge, ...).
  std::vector<Diagnostic> notes;
  /// What the pre-inference simplification pipeline did (AGG301/303/305
  /// diagnostics are also appended to `notes`).
  SimplifyStats simplify;
};

class Aggify {
 public:
  explicit Aggify(Database* db, const EngineOptions& options = {})
      : db_(db), options_(options) {}

  /// \brief Rewrites every applicable cursor loop in the registered function
  /// `name`, registers the synthesized aggregates, and re-registers the
  /// rewritten function under the same name (the original definition is
  /// replaced). Errors: NotFound if the function is not registered.
  Result<AggifyReport> RewriteFunction(const std::string& name);

  /// \brief Rewrites every applicable cursor loop in an anonymous block
  /// (client program) in place. `params` are treated as defined at entry.
  Result<AggifyReport> RewriteBlock(BlockStmt* block,
                                    const std::vector<std::string>& params = {});

 private:
  /// Rewrites the first eligible loop; returns true if one was rewritten.
  Result<bool> RewriteOneLoop(BlockStmt* root,
                              const std::vector<std::string>& params,
                              const std::set<std::string>* observable_vars,
                              std::set<const WhileStmt*>* skipped_loops,
                              AggifyReport* report,
                              const std::string& name_hint);

  /// DML-body recovery (options_.rewrite.rewrite_dml_bodies): attempts the
  /// table-effect rewrite families on a loop whose applicability check
  /// refused it *only* for persistent DML. Returns true after replacing the
  /// loop (AGG401/402 note + LoopRewrite record); on a typed refusal
  /// appends the AGG4xx diagnostic to `detail` and returns false, leaving
  /// the primary skip in place.
  Result<bool> TryRewriteDmlLoop(BlockStmt* root,
                                 const std::vector<std::string>& params,
                                 const std::set<std::string>* observable_vars,
                                 CursorLoopInfo& loop, const std::string& loc,
                                 std::vector<Diagnostic>* detail,
                                 AggifyReport* report);

  Database* db_;
  EngineOptions options_;
};

/// \brief §8.1: rewrites every FOR loop in `block` into an equivalent cursor
/// loop over a recursive-CTE iteration space. `db` supplies unique cursor
/// names.
Status ConvertForLoopsToCursorLoops(BlockStmt* block, Database* db);

struct ForLoopConversionOptions {
  /// Materialize constant-bound iteration spaces as UNION ALL literal
  /// chains instead of recursive CTEs (interval-domain fast path, AGG306).
  bool static_trip_values = false;
  int max_static_trips = 256;
};

/// \brief As above, with the static-trip-count fast path: FOR loops whose
/// init/bound/step are integer literals with 1 <= trips <= max_static_trips
/// iterate a materialized literal chain. AGG306 notes (one per lowered
/// loop) are appended to `notes` when non-null.
Status ConvertForLoopsToCursorLoops(BlockStmt* block, Database* db,
                                    const ForLoopConversionOptions& options,
                                    std::vector<Diagnostic>* notes);

/// \brief §6.2 cleanup: removes DECLAREs of variables that are never read
/// and never assigned outside their declaration. Returns how many were
/// removed.
int RemoveDeadDeclarations(BlockStmt* block);

}  // namespace aggify
