// The Aggify driver: Algorithm 1.
//
// Finds cursor loops, checks applicability, computes the Eq. 1–4 sets,
// synthesizes and registers the custom aggregate, and rewrites the loop into
// the Eq. 5 / Eq. 6 query. Nested loops are handled innermost-first
// (§6.3.1); FOR loops can first be converted to cursor loops over recursive
// CTE iteration spaces (§8.1).
#pragma once

#include <set>

#include "aggify/loop_aggregate.h"
#include "analysis/simplify.h"
#include "storage/catalog.h"

namespace aggify {

struct AggifyOptions {
  /// §8.1: convert iterative FOR loops into cursor loops over recursive-CTE
  /// iteration spaces before looking for cursor loops.
  bool convert_for_loops = false;
  /// §6.2: after rewriting, remove declarations of variables the transform
  /// rendered dead (e.g. the fetch variables @pCost/@sName of Figure 1).
  /// Applied to rewritten functions only — anonymous client programs keep
  /// their declarations because the environment is their observable output.
  bool remove_dead_declarations = true;
  /// Emit GuardedRewriteStmt instead of a bare MultiAssignStmt: a runtime
  /// failure of the rewritten query restores the loop-entry state and
  /// re-executes the original cursor loop (slow-but-correct degradation).
  bool guard_rewrites = true;
  /// Opt-in verification: every guarded statement runs BOTH paths and counts
  /// result mismatches in RobustnessStats (the loop's results win). Implies
  /// guard_rewrites.
  bool verify_rewrite = false;
  /// Drop Eq. 6's forced Sort + StreamAggregate when the fold classifier
  /// proves the loop body order-insensitive, enabling HashAggregate (and,
  /// with a proven Merge, parallel partial aggregation). Ablation knob.
  bool elide_order_insensitive_sort = true;
  /// Attach the derived Merge when the decomposability proof holds.
  /// Ablation knob: disabling keeps the aggregate serial.
  bool synthesize_merge = true;
  /// Run the abstract-interpretation simplification pipeline
  /// (`analysis/simplify.h`: constant folding, constant-branch pruning,
  /// dead-store elimination) on the body *before* Eq. 1–4 set inference, so
  /// Agg_Δ never carries state the program provably does not need.
  bool simplify = true;
  /// Drop cursor columns that are fetched but never used in Δ from Q's
  /// projection (AGG302). Skipped for DISTINCT / UNION ALL cursor queries,
  /// where the projection is semantically load-bearing.
  bool prune_fetch_columns = true;
  /// When Δ is exactly one proven built-in fold (sum/count/min/max of a
  /// single row expression, no other live state at loop exit), emit the
  /// native aggregate instead of registering an interpreted Agg_Δ (AGG304).
  bool lower_native_folds = true;
  /// §8.1 fast path: FOR loops whose init/bound/step fold to integer
  /// literals iterate over a materialized UNION ALL literal chain instead
  /// of a recursive CTE (AGG306). Requires convert_for_loops.
  bool static_trip_values = true;
  /// Largest constant trip count materialized as a literal chain; larger
  /// (or non-constant) iteration spaces keep the recursive CTE.
  int max_static_trips = 256;
};

/// \brief What happened to one loop.
struct LoopRewrite {
  std::string aggregate_name;
  LoopSets sets;
  /// The fold classifier's verdict on the (FETCH-stripped) body.
  BodyClassification classification;
  /// The ordered cursor's Eq. 6 sort was provably unnecessary and dropped.
  bool sort_elided = false;
  /// The decomposability proof held: the aggregate carries a derived Merge.
  bool merge_supported = false;
  /// The Eq. 5/6 statement that replaced the loop, as dialect text.
  std::string rewritten_statement;
  /// The synthesized aggregate, rendered in the paper's Figure 5/6 style.
  std::string aggregate_source;
  /// Δ proved to be a single native fold: no interpreted Agg_Δ was
  /// registered and the rewritten query calls the built-in aggregate named
  /// by `aggregate_name` ("sum", "count", "min", "max").
  bool lowered_to_builtin = false;
  /// The rewritten SELECT alone (re-parsable; plan-shape tests EXPLAIN it).
  std::string rewritten_query_sql;
  /// Aliases (c<j>) of cursor columns pruned from Q's projection (AGG302).
  std::vector<std::string> pruned_fetch_columns;
};

struct AggifyReport {
  int loops_found = 0;
  int loops_rewritten = 0;
  std::vector<LoopRewrite> rewrites;
  /// Why loops were left alone: one coded diagnostic per skipped loop.
  std::vector<Diagnostic> skipped;
  /// Facts proved about rewritten loops (sort elision, derived Merge, ...).
  std::vector<Diagnostic> notes;
  /// What the pre-inference simplification pipeline did (AGG301/303/305
  /// diagnostics are also appended to `notes`).
  SimplifyStats simplify;
};

class Aggify {
 public:
  explicit Aggify(Database* db, AggifyOptions options = {})
      : db_(db), options_(options) {}

  /// \brief Rewrites every applicable cursor loop in the registered function
  /// `name`, registers the synthesized aggregates, and re-registers the
  /// rewritten function under the same name (the original definition is
  /// replaced). Errors: NotFound if the function is not registered.
  Result<AggifyReport> RewriteFunction(const std::string& name);

  /// \brief Rewrites every applicable cursor loop in an anonymous block
  /// (client program) in place. `params` are treated as defined at entry.
  Result<AggifyReport> RewriteBlock(BlockStmt* block,
                                    const std::vector<std::string>& params = {});

 private:
  /// Rewrites the first eligible loop; returns true if one was rewritten.
  Result<bool> RewriteOneLoop(BlockStmt* root,
                              const std::vector<std::string>& params,
                              const std::set<std::string>* observable_vars,
                              std::set<const WhileStmt*>* skipped_loops,
                              AggifyReport* report,
                              const std::string& name_hint);

  Database* db_;
  AggifyOptions options_;
};

/// \brief §8.1: rewrites every FOR loop in `block` into an equivalent cursor
/// loop over a recursive-CTE iteration space. `db` supplies unique cursor
/// names.
Status ConvertForLoopsToCursorLoops(BlockStmt* block, Database* db);

struct ForLoopConversionOptions {
  /// Materialize constant-bound iteration spaces as UNION ALL literal
  /// chains instead of recursive CTEs (interval-domain fast path, AGG306).
  bool static_trip_values = false;
  int max_static_trips = 256;
};

/// \brief As above, with the static-trip-count fast path: FOR loops whose
/// init/bound/step are integer literals with 1 <= trips <= max_static_trips
/// iterate a materialized literal chain. AGG306 notes (one per lowered
/// loop) are appended to `notes` when non-null.
Status ConvertForLoopsToCursorLoops(BlockStmt* block, Database* db,
                                    const ForLoopConversionOptions& options,
                                    std::vector<Diagnostic>* notes);

/// \brief §6.2 cleanup: removes DECLAREs of variables that are never read
/// and never assigned outside their declaration. Returns how many were
/// removed.
int RemoveDeadDeclarations(BlockStmt* block);

}  // namespace aggify
