// QueryContext: the per-query governance token — deadline, cooperative
// cancellation flag, and memory accountant — threaded through execution.
//
// One QueryContext spans one governed unit of work: QueryEngine::Execute
// installs one per root statement from EngineOptions::Limits, and
// Session::Call/Query/RunBlock install one around a whole procedural
// invocation so every statement and FETCH inside shares a single deadline.
// Operators never poll the clock on their own; they call
// ExecContext::CheckInterrupts() (which forwards to Check() here) at morsel,
// batch, and FETCH granularity and propagate the resulting non-OK Status up
// the Volcano tree like any other error.
//
// Check() outcomes:
//   kCancelled — Cancel() was called. Not retryable, not fallback-eligible:
//                the caller asked us to stop, so every path must stop.
//   kTimeout   — the deadline passed. Retryable by design so it composes
//                with RetryPolicy and the guarded-rewrite fallback — though
//                RunPlanWithRetry consults the context and skips pointless
//                retries when the *real* deadline (not an injected fault)
//                has expired.
//
// The first non-OK Check() per context bumps the matching RobustnessStats
// counter (cancellations / deadline_timeouts) exactly once, however many
// operators subsequently observe the same dead context.
//
// Thread safety: Cancel()/Check() are safe from any thread — parallel
// workers poll the same context the coordinator owns. The object itself is
// stack-allocated by the installer and outlives every worker (workers are
// joined before the installing frame returns).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "common/memory_accountant.h"
#include "common/robustness_stats.h"
#include "common/status.h"

namespace aggify {

class QueryContext {
 public:
  /// `timeout_ms` <= 0: no deadline. `memory_limit_bytes` <= 0: no
  /// accountant. `stats` may be nullptr (nothing is counted then).
  QueryContext(int64_t timeout_ms, int64_t memory_limit_bytes,
               RobustnessStats* stats = nullptr,
               MemoryAccountant* parent_accountant = nullptr)
      : stats_(stats) {
    if (timeout_ms > 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
      has_deadline_ = true;
    }
    if (memory_limit_bytes > 0 || parent_accountant != nullptr) {
      accountant_ = std::make_unique<MemoryAccountant>(memory_limit_bytes,
                                                       parent_accountant);
    }
  }

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Requests cooperative cancellation: the next Check() anywhere in the
  /// query returns kCancelled. Safe from any thread, idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// The interrupt poll. Cancellation wins over deadline expiry (a caller
  /// who cancelled should not see kTimeout race in first).
  Status Check() {
    if (cancelled_.load(std::memory_order_acquire)) {
      CountOnce(&RobustnessStats::cancellations);
      return Status::Cancelled("query cancelled");
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      CountOnce(&RobustnessStats::deadline_timeouts);
      return Status::Timeout("query deadline exceeded");
    }
    return Status::OK();
  }

  bool has_deadline() const { return has_deadline_; }

  /// Remaining time before the deadline; 0 if expired, INT64_MAX if none.
  int64_t remaining_ms() const {
    if (!has_deadline_) return INT64_MAX;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline_ - std::chrono::steady_clock::now());
    return left.count() > 0 ? left.count() : 0;
  }

  /// nullptr when no memory limit was configured.
  MemoryAccountant* accountant() const { return accountant_.get(); }

 private:
  void CountOnce(std::atomic<int64_t> RobustnessStats::*counter) {
    if (stats_ == nullptr) return;
    bool expected = false;
    if (reported_.compare_exchange_strong(expected, true,
                                          std::memory_order_relaxed)) {
      ++(stats_->*counter);
    }
  }

  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> reported_{false};
  std::unique_ptr<MemoryAccountant> accountant_;
  RobustnessStats* stats_ = nullptr;
};

}  // namespace aggify
