// Result<T>: value-or-Status, the return type of fallible producers.
//
// Mirrors arrow::Result. Use the RETURN_NOT_OK / ASSIGN_OR_RETURN macros in
// macros.h to propagate errors.
#pragma once

#include <cassert>
#include <type_traits>
#include <utility>
#include <variant>

#include "common/macros.h"
#include "common/status.h"

namespace aggify {

template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit by design, like arrow::Result).
  Result(T value)  // NOLINT(runtime/explicit)
      : repr_(std::in_place_index<1>, std::move(value)) {}

  /// Converting constructor, e.g. unique_ptr<Derived> -> Result<unique_ptr<Base>>.
  template <typename U,
            typename = std::enable_if_t<
                std::is_constructible_v<T, U&&> &&
                !std::is_same_v<std::decay_t<U>, T> &&
                !std::is_same_v<std::decay_t<U>, Result<T>> &&
                !std::is_same_v<std::decay_t<U>, Status>>>
  Result(U&& value)  // NOLINT(runtime/explicit)
      : repr_(std::in_place_index<1>, T(std::forward<U>(value))) {}

  /// Constructs from a non-OK status. Passing an OK status is a bug and is
  /// converted to an internal error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Precondition: ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace aggify
