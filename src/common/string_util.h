// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace aggify {

/// ASCII-lowercases a copy of `s`.
std::string ToLower(std::string_view s);

/// ASCII-uppercases a copy of `s`.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix` (case-insensitive).
bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix);

}  // namespace aggify
