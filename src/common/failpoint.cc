#include "common/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/macros.h"
#include "common/string_util.h"

namespace aggify {

namespace {

constexpr char kInjectedPrefix[] = "failpoint '";

Status MakeInjected(const char* site, StatusCode code) {
  std::string msg = std::string(kInjectedPrefix) + site + "' fired";
  return Status(code, std::move(msg));
}

Status ParseCode(std::string_view name, StatusCode* out) {
  if (name == "exec") {
    *out = StatusCode::kExecutionError;
  } else if (name == "timeout") {
    *out = StatusCode::kTimeout;
  } else if (name == "unavailable") {
    *out = StatusCode::kUnavailable;
  } else if (name == "notfound") {
    *out = StatusCode::kNotFound;
  } else if (name == "internal") {
    *out = StatusCode::kInternal;
  } else if (name == "invalid") {
    *out = StatusCode::kInvalidArgument;
  } else if (name == "exhausted") {
    *out = StatusCode::kResourceExhausted;
  } else {
    return Status::InvalidArgument("unknown failpoint status code '" +
                                   std::string(name) + "'");
  }
  return Status::OK();
}

/// Parses "policy" or "policy(args)" into spec policy fields.
Status ParsePolicy(const std::string& text, FailPointSpec* spec) {
  std::string name = text;
  std::string args;
  auto open = text.find('(');
  if (open != std::string::npos) {
    if (text.back() != ')') {
      return Status::InvalidArgument("malformed failpoint policy '" + text +
                                     "': missing ')'");
    }
    name = text.substr(0, open);
    args = text.substr(open + 1, text.size() - open - 2);
  }

  auto parse_int = [&](int64_t* out) -> Status {
    char* end = nullptr;
    long long v = std::strtoll(args.c_str(), &end, 10);
    if (args.empty() || end == nullptr || *end != '\0' || v < 1) {
      return Status::InvalidArgument("failpoint policy '" + name +
                                     "' needs a positive integer argument");
    }
    *out = v;
    return Status::OK();
  };

  if (name == "always") {
    spec->policy = FailPointPolicy::kAlways;
  } else if (name == "off") {
    spec->policy = FailPointPolicy::kOff;
  } else if (name == "every") {
    spec->policy = FailPointPolicy::kEveryNth;
    RETURN_NOT_OK(parse_int(&spec->n));
  } else if (name == "after") {
    spec->policy = FailPointPolicy::kAfterN;
    RETURN_NOT_OK(parse_int(&spec->n));
  } else if (name == "times") {
    spec->policy = FailPointPolicy::kFirstK;
    RETURN_NOT_OK(parse_int(&spec->n));
  } else if (name == "prob") {
    spec->policy = FailPointPolicy::kProbability;
    // args: "P" or "P,seed"
    std::string p_text = args;
    auto comma = args.find(',');
    if (comma != std::string::npos) {
      p_text = args.substr(0, comma);
      char* end = nullptr;
      unsigned long long seed =
          std::strtoull(args.c_str() + comma + 1, &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("malformed failpoint seed in '" + text +
                                       "'");
      }
      spec->seed = seed;
    }
    char* end = nullptr;
    double p = std::strtod(p_text.c_str(), &end);
    if (p_text.empty() || end == nullptr || *end != '\0' || p < 0.0 ||
        p > 1.0) {
      return Status::InvalidArgument(
          "failpoint probability must be in [0, 1], got '" + p_text + "'");
    }
    spec->probability = p;
  } else {
    return Status::InvalidArgument("unknown failpoint policy '" + name + "'");
  }
  return Status::OK();
}

/// Parses the ":suffix" position: either a status-code name or "sleep(MS)"
/// (the delay of a delay site, see AGGIFY_FAILPOINT_SLEEP).
Status ParseSuffix(std::string_view suffix, FailPointSpec* spec) {
  constexpr std::string_view kSleep = "sleep(";
  if (suffix.rfind(kSleep, 0) == 0 && suffix.back() == ')') {
    std::string ms_text(suffix.substr(kSleep.size(),
                                      suffix.size() - kSleep.size() - 1));
    char* end = nullptr;
    long long ms = std::strtoll(ms_text.c_str(), &end, 10);
    if (ms_text.empty() || end == nullptr || *end != '\0' || ms < 0) {
      return Status::InvalidArgument(
          "failpoint sleep() needs a non-negative integer, got '" + ms_text +
          "'");
    }
    spec->delay_ms = ms;
    return Status::OK();
  }
  return ParseCode(suffix, &spec->code);
}

/// Parses one "site[=policy[:code|:sleep(MS)]]" entry. A bare site name arms
/// policy `always` with defaults — AGGIFY_FAILPOINTS=exec.slow_operator is a
/// complete spec.
Status ParseEntry(const std::string& entry, std::string* site,
                  FailPointSpec* spec) {
  auto eq = entry.find('=');
  if (eq == std::string::npos) {
    *site = std::string(Trim(entry));
    return Status::OK();
  }
  if (eq == 0) {
    return Status::InvalidArgument("malformed failpoint spec '" + entry +
                                   "': expected site[=policy[:code]]");
  }
  *site = std::string(Trim(entry.substr(0, eq)));
  std::string rhs(Trim(entry.substr(eq + 1)));
  // The suffix is after the last ':' outside parentheses; policies never
  // contain ':' so a plain rfind is enough.
  auto colon = rhs.rfind(':');
  if (colon != std::string::npos) {
    RETURN_NOT_OK(ParseSuffix(Trim(rhs.substr(colon + 1)), spec));
    rhs = std::string(Trim(rhs.substr(0, colon)));
  }
  return ParsePolicy(rhs, spec);
}

/// Splits a spec list on ';' or ',' separators, but not inside parentheses —
/// "a=prob(0.5,42);b=always" is two entries, the seed comma is not a split.
std::vector<std::string> SplitEntries(std::string_view s) {
  std::vector<std::string> out;
  std::string piece;
  int depth = 0;
  for (char c : s) {
    if (c == '(') ++depth;
    if (c == ')' && depth > 0) --depth;
    if ((c == ';' || c == ',') && depth == 0) {
      if (!piece.empty()) out.push_back(std::move(piece));
      piece.clear();
    } else {
      piece.push_back(c);
    }
  }
  if (!piece.empty()) out.push_back(std::move(piece));
  return out;
}

}  // namespace

std::atomic<int64_t> FailPoints::armed_count_{0};

FailPoints& FailPoints::Instance() {
  static FailPoints* instance = new FailPoints();
  return *instance;
}

namespace {

/// Arms AGGIFY_FAILPOINTS at load time so any binary honors the variable.
/// A malformed value is reported (once) instead of silently ignored.
const bool arm_env_at_startup = [] {
  Status st = FailPoints::Instance().ArmFromEnv();
  if (!st.ok()) {
    std::fprintf(stderr, "AGGIFY_FAILPOINTS ignored: %s\n",
                 st.ToString().c_str());
  }
  return true;
}();

}  // namespace

Status FailPoints::Arm(const std::string& site, FailPointSpec spec) {
  if (site.empty()) {
    return Status::InvalidArgument("failpoint site name must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = sites_.try_emplace(site);
  it->second = ArmedSite{spec, 0, 0, Random(spec.seed)};
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FailPoints::ArmFromString(const std::string& spec_list) {
  // Parse everything first so a malformed list arms nothing.
  std::vector<std::pair<std::string, FailPointSpec>> parsed;
  for (const std::string& raw : SplitEntries(spec_list)) {
    std::string entry(Trim(raw));
    if (entry.empty()) continue;
    std::string site;
    FailPointSpec spec;
    RETURN_NOT_OK(ParseEntry(entry, &site, &spec));
    parsed.emplace_back(std::move(site), spec);
  }
  for (auto& [site, spec] : parsed) RETURN_NOT_OK(Arm(site, spec));
  return Status::OK();
}

Status FailPoints::ArmFromEnv(const char* env_var) {
  const char* value = std::getenv(env_var);
  if (value == nullptr || *value == '\0') return Status::OK();
  return ArmFromString(value);
}

void FailPoints::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sites_.erase(site) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPoints::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_count_.fetch_sub(static_cast<int64_t>(sites_.size()),
                         std::memory_order_relaxed);
  sites_.clear();
}

bool FailPoints::IsArmed(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_.count(site) > 0;
}

int64_t FailPoints::CheckCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.checks;
}

int64_t FailPoints::TriggerCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.triggers;
}

std::vector<std::string> FailPoints::ArmedSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [name, unused] : sites_) out.push_back(name);
  return out;
}

bool FailPoints::IsInjected(const Status& status) {
  return !status.ok() && status.message().rfind(kInjectedPrefix, 0) == 0;
}

bool FailPoints::EvaluatePolicy(ArmedSite& armed) {
  ++armed.checks;
  bool fire = false;
  switch (armed.spec.policy) {
    case FailPointPolicy::kOff:
      break;
    case FailPointPolicy::kAlways:
      fire = true;
      break;
    case FailPointPolicy::kEveryNth:
      fire = armed.checks % armed.spec.n == 0;
      break;
    case FailPointPolicy::kAfterN:
      fire = armed.checks > armed.spec.n;
      break;
    case FailPointPolicy::kFirstK:
      fire = armed.checks <= armed.spec.n;
      break;
    case FailPointPolicy::kProbability:
      fire = armed.rng.NextDouble() < armed.spec.probability;
      break;
  }
  if (fire) ++armed.triggers;
  return fire;
}

Status FailPoints::Fire(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return Status::OK();
  ArmedSite& armed = it->second;
  if (!EvaluatePolicy(armed)) return Status::OK();
  return MakeInjected(site, armed.spec.code);
}

int64_t FailPoints::SleepIfFired(const char* site) {
  int64_t delay_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return 0;
    ArmedSite& armed = it->second;
    if (!EvaluatePolicy(armed)) return 0;
    delay_ms = armed.spec.delay_ms;
  }
  // Sleep outside the mutex: a slow delay site must not serialize every
  // other failpoint check in the process.
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return delay_ms;
}

}  // namespace aggify
