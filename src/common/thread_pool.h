// A fixed-size worker pool for morsel-driven parallel execution.
//
// Tasks are `std::function<Status()>`; Submit returns a future resolving to
// the task's Status. Anything a task throws is captured and converted to an
// internal-error Status — exceptions never cross thread boundaries and never
// terminate a worker. Shutdown() drains every queued task before joining
// (queued work is finished, not dropped), after which Submit returns an
// already-failed future instead of crashing.
//
// The pool is deliberately dumb: no work stealing, no priorities. Morsel
// scheduling lives in the operators (see exec/operators_parallel.cc), which
// assign morsels to partitions statically so results do not depend on which
// worker runs first.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace aggify {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` and returns a future for its Status. Throwing tasks
  /// resolve to an internal error carrying the exception message. After
  /// Shutdown the future is immediately ready with an error.
  std::future<Status> Submit(std::function<Status()> task);

  /// Runs every already-queued task to completion, then joins the workers.
  /// Idempotent; also called by the destructor.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Process-wide pool shared by all parallel operators. Sized to the
  /// hardware (at least 2 workers, so DOP > 1 overlaps even on small
  /// machines); operators cap their fan-out with their own DOP setting.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<Status()>> queue_;
  std::vector<std::thread> workers_;
  bool shutting_down_ = false;  // guarded by mu_
};

}  // namespace aggify
