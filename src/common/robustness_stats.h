// RobustnessStats: counters for the degraded-but-correct paths — guarded
// rewrite fallbacks, verify-mode mismatches, transient plan retries, and the
// resource-governance outcomes (cancellation, deadline expiry, memory-budget
// degradation, admission control). One instance lives on Database (like
// IoStats) so every execution against the same database accumulates into it;
// tests reset it between scenarios.
//
// Fields are atomics because parallel workers and concurrently admitted
// queries bump them from many threads; plain `++stats.field` keeps working
// (each increment is atomic — the struct as a whole is not a snapshot).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace aggify {

struct RobustnessStats {
  /// Rewritten (aggregate) query executions that failed at runtime.
  std::atomic<int64_t> rewrite_exec_failures{0};
  /// Times the interpreter fell back to the original cursor loop.
  std::atomic<int64_t> fallbacks_taken{0};
  /// Fallback executions that completed successfully.
  std::atomic<int64_t> fallback_successes{0};
  /// Guarded statements executed in verify_rewrite mode.
  std::atomic<int64_t> verify_runs{0};
  /// Verify runs where the rewritten result disagreed with the loop.
  std::atomic<int64_t> verify_mismatches{0};
  /// Plan re-executions after a retryable (timeout/unavailable) failure.
  std::atomic<int64_t> transient_retries{0};
  /// Queries stopped because their QueryContext was cancelled (counted once
  /// per query, not once per operator that observed the token).
  std::atomic<int64_t> cancellations{0};
  /// Queries stopped because their deadline expired (once per query).
  std::atomic<int64_t> deadline_timeouts{0};
  /// Memory-budget degradations that disabled batch execution (ladder
  /// rung 1, docs/ROBUSTNESS.md).
  std::atomic<int64_t> degraded_batch_to_row{0};
  /// Memory-budget degradations that also forced DOP 1 (ladder rung 2).
  std::atomic<int64_t> degraded_parallel_to_serial{0};
  /// Queries that exhausted the degradation ladder and surfaced
  /// kResourceExhausted to the caller.
  std::atomic<int64_t> resource_exhausted_failures{0};
  /// Executions that had to wait at the admission gate before running.
  std::atomic<int64_t> admission_waits{0};
  /// Executions rejected because the gate stayed full past its deadline.
  std::atomic<int64_t> admission_rejections{0};

  void Reset() {
    rewrite_exec_failures = 0;
    fallbacks_taken = 0;
    fallback_successes = 0;
    verify_runs = 0;
    verify_mismatches = 0;
    transient_retries = 0;
    cancellations = 0;
    deadline_timeouts = 0;
    degraded_batch_to_row = 0;
    degraded_parallel_to_serial = 0;
    resource_exhausted_failures = 0;
    admission_waits = 0;
    admission_rejections = 0;
  }

  std::string ToString() const {
    auto s = [](const std::atomic<int64_t>& v) {
      return std::to_string(v.load());
    };
    return "rewrite_exec_failures=" + s(rewrite_exec_failures) +
           " fallbacks_taken=" + s(fallbacks_taken) +
           " fallback_successes=" + s(fallback_successes) +
           " verify_runs=" + s(verify_runs) +
           " verify_mismatches=" + s(verify_mismatches) +
           " transient_retries=" + s(transient_retries) +
           " cancellations=" + s(cancellations) +
           " deadline_timeouts=" + s(deadline_timeouts) +
           " degraded_batch_to_row=" + s(degraded_batch_to_row) +
           " degraded_parallel_to_serial=" + s(degraded_parallel_to_serial) +
           " resource_exhausted_failures=" + s(resource_exhausted_failures) +
           " admission_waits=" + s(admission_waits) +
           " admission_rejections=" + s(admission_rejections);
  }
};

}  // namespace aggify
