// RobustnessStats: counters for the degraded-but-correct paths — guarded
// rewrite fallbacks, verify-mode mismatches, and transient plan retries.
// One instance lives on Database (like IoStats) so every execution against
// the same database accumulates into it; tests reset it between scenarios.
#pragma once

#include <cstdint>
#include <string>

namespace aggify {

struct RobustnessStats {
  /// Rewritten (aggregate) query executions that failed at runtime.
  int64_t rewrite_exec_failures = 0;
  /// Times the interpreter fell back to the original cursor loop.
  int64_t fallbacks_taken = 0;
  /// Fallback executions that completed successfully.
  int64_t fallback_successes = 0;
  /// Guarded statements executed in verify_rewrite mode.
  int64_t verify_runs = 0;
  /// Verify runs where the rewritten result disagreed with the loop.
  int64_t verify_mismatches = 0;
  /// Plan re-executions after a retryable (timeout/unavailable) failure.
  int64_t transient_retries = 0;

  void Reset() { *this = RobustnessStats{}; }

  std::string ToString() const {
    return "rewrite_exec_failures=" + std::to_string(rewrite_exec_failures) +
           " fallbacks_taken=" + std::to_string(fallbacks_taken) +
           " fallback_successes=" + std::to_string(fallback_successes) +
           " verify_runs=" + std::to_string(verify_runs) +
           " verify_mismatches=" + std::to_string(verify_mismatches) +
           " transient_retries=" + std::to_string(transient_retries);
  }
};

}  // namespace aggify
