#include "common/string_util.h"

#include <algorithm>
#include <cctype>

namespace aggify {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         EqualsIgnoreCase(s.substr(0, prefix.size()), prefix);
}

}  // namespace aggify
