// Status: the error model used throughout the library.
//
// Follows the Arrow / RocksDB convention: fallible functions return a Status
// (or Result<T>, see result.h) instead of throwing. Statuses carry a coarse
// machine-readable code plus a human-readable message.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace aggify {

/// Coarse classification of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kParseError,        ///< SQL / procedural text failed to parse
  kBindError,         ///< name resolution / type checking failed
  kNotFound,          ///< catalog object missing
  kAlreadyExists,     ///< catalog object duplicated
  kTypeError,         ///< runtime value of unexpected type
  kNotSupported,      ///< valid input outside the supported language model
  kNotApplicable,     ///< Aggify precondition violated (e.g. persistent DML)
  kExecutionError,    ///< runtime failure while executing a plan / program
  kTimeout,           ///< operation exceeded its deadline (retryable)
  kUnavailable,       ///< transient resource / network failure (retryable)
  kCancelled,         ///< caller cancelled the operation (not retryable)
  kResourceExhausted, ///< memory budget / admission limit hit (not retryable)
  kInternal,          ///< invariant violation; indicates a library bug
};

/// \brief Returns the canonical lowercase name of a status code
/// (e.g. "parse error").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail.
///
/// Cheap to copy in the OK case (no allocation); error state is heap
/// allocated, matching the expectation that errors are rare.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status NotApplicable(std::string msg) {
    return Status(StatusCode::kNotApplicable, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsNotApplicable() const { return code() == StatusCode::kNotApplicable; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsTimeout() const { return code() == StatusCode::kTimeout; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// True for transient failures where retrying the same operation may
  /// succeed (timeouts, unavailability). Logic errors are never retryable,
  /// and neither are cancellation (the caller asked us to stop) or resource
  /// exhaustion (the same attempt would hit the same budget — the engine
  /// degrades to a cheaper mode instead, see docs/ROBUSTNESS.md).
  bool IsRetryable() const {
    return code() == StatusCode::kTimeout ||
           code() == StatusCode::kUnavailable;
  }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<State> state_;  // nullptr == OK
};

}  // namespace aggify
