// MemoryAccountant: a hierarchical, thread-safe byte budget for query
// execution.
//
// Stateful operators (hash aggregation group states, sort buffers, columnar
// scan batches, parallel partial states) charge their allocations here
// before making them. A charge that would push usage past the limit fails
// with kResourceExhausted, which QueryEngine turns into graceful
// degradation (batch → row → serial, docs/ROBUSTNESS.md) instead of an
// unbounded allocation.
//
// Accountants chain: a per-query accountant may point at a parent (e.g. an
// engine-wide budget), and every charge/release propagates up the chain, so
// a query both respects its own limit and contributes to the shared one.
// All counters are atomics — parallel workers charge the same per-query
// accountant concurrently.
//
// Charges are *estimates* (see EstimateRowBytes in exec/operators.h), kept
// deterministic across execution modes: the same query charges the same
// bytes for its group states whether it runs row-at-a-time, batched, or
// partitioned, so budget-driven degradation decisions are reproducible.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/status.h"

namespace aggify {

class MemoryAccountant {
 public:
  /// `limit_bytes` <= 0 means unlimited (the accountant still tracks usage
  /// and still honors the mem.charge_fail failpoint).
  explicit MemoryAccountant(int64_t limit_bytes = 0,
                            MemoryAccountant* parent = nullptr)
      : limit_(limit_bytes), parent_(parent) {}

  MemoryAccountant(const MemoryAccountant&) = delete;
  MemoryAccountant& operator=(const MemoryAccountant&) = delete;

  /// Reserves `bytes` against the budget (and every ancestor's). Errors:
  /// ResourceExhausted if the reservation would exceed any limit in the
  /// chain — usage is unchanged then. The mem.charge_fail failpoint injects
  /// the same failure deterministically regardless of the armed code.
  Status TryCharge(int64_t bytes) {
    if (bytes <= 0) return Status::OK();
    if (FailPoints::AnyArmed()) {
      Status fp = FailPoints::Instance().Fire("mem.charge_fail");
      if (!fp.ok()) {
        // Normalize: an allocation failure is kResourceExhausted whatever
        // code the spec armed, so `mem.charge_fail=always` drives the
        // degradation ladder without further spec ceremony.
        return Status::ResourceExhausted(fp.message());
      }
    }
    int64_t used = used_.load(std::memory_order_relaxed);
    for (;;) {
      if (limit_ > 0 && used + bytes > limit_) {
        return Status::ResourceExhausted(
            "memory budget exceeded: " + std::to_string(used) + " used + " +
            std::to_string(bytes) + " requested > " + std::to_string(limit_) +
            " limit");
      }
      if (used_.compare_exchange_weak(used, used + bytes,
                                      std::memory_order_relaxed)) {
        break;
      }
    }
    UpdatePeak(used + bytes);
    if (parent_ != nullptr) {
      Status st = parent_->TryCharge(bytes);
      if (!st.ok()) {
        used_.fetch_sub(bytes, std::memory_order_relaxed);
        return st;
      }
    }
    return Status::OK();
  }

  /// Returns `bytes` to the budget (and every ancestor's).
  void Release(int64_t bytes) {
    if (bytes <= 0) return;
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    if (parent_ != nullptr) parent_->Release(bytes);
  }

  /// Rolls usage back to `mark` (a prior used() reading). The attempt
  /// boundary in RunPlan uses this so a failed execution — whose operators
  /// may die without reaching Close — cannot poison the budget of the
  /// degraded retry. Only valid between attempts, when no operator of this
  /// query is live.
  void ReleaseTo(int64_t mark) {
    int64_t used = used_.load(std::memory_order_relaxed);
    if (used > mark) Release(used - mark);
  }

  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  int64_t limit() const { return limit_; }
  bool limited() const { return limit_ > 0; }

 private:
  void UpdatePeak(int64_t candidate) {
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (candidate > peak &&
           !peak_.compare_exchange_weak(peak, candidate,
                                        std::memory_order_relaxed)) {
    }
  }

  const int64_t limit_;
  MemoryAccountant* const parent_;
  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
};

/// \brief RAII charge: releases in the destructor. For transient
/// reservations with scope lifetime (e.g. one morsel's batch buffer).
class ScopedCharge {
 public:
  ScopedCharge() = default;
  ~ScopedCharge() { Reset(); }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  /// Charges `bytes` to `accountant` (releasing any prior holding first).
  /// On failure nothing is held.
  Status Charge(MemoryAccountant* accountant, int64_t bytes) {
    Reset();
    if (accountant == nullptr) return Status::OK();
    RETURN_NOT_OK(accountant->TryCharge(bytes));
    accountant_ = accountant;
    bytes_ = bytes;
    return Status::OK();
  }

  void Reset() {
    if (accountant_ != nullptr) accountant_->Release(bytes_);
    accountant_ = nullptr;
    bytes_ = 0;
  }

 private:
  MemoryAccountant* accountant_ = nullptr;
  int64_t bytes_ = 0;
};

}  // namespace aggify
