// EngineOptions: the unified configuration surface of the engine.
//
// One struct, nested by subsystem, replaces the previously fragmented knobs
// (the removed PlannerOptions, AggifyOptions, and kTransientRetries). Every
// entry point — QueryEngine, Planner, Session, ClientApp, Aggify — takes an
// EngineOptions (by const reference where the callee does not outlive the
// caller), so a single value describes the whole engine configuration and
// per-query overrides are one copy away.
//
//   EngineOptions opts;
//   opts.execution.degree_of_parallelism = 4;   // real threads, §3.1 Merge
//   opts.rewrite.verify_rewrite = true;
//   Session session(&db, opts);
//
// Per-query overrides: QueryEngine::Execute/Explain accept an optional
// override whose sections replace the engine's for that one statement. The
// plan cache keys on PlanFingerprint() alongside the statement text, so
// overridden executions cache and hit like any other — a dop=4 plan never
// serves a dop=1 configuration or vice versa.
#pragma once

#include <cstdint>
#include <string>

namespace aggify {

struct EngineOptions {
  // --- planner: plan-shape ablation toggles -------------------------------
  struct Planner {
    bool enable_index_seek = true;
    bool enable_hash_join = true;
    bool enable_predicate_pushdown = true;
  };

  // --- execution: the morsel-driven parallel path -------------------------
  struct Execution {
    /// Number of partitions a merge-eligible aggregation is split into.
    /// 1 = serial (the Merge method is never invoked, §3.1). Values > 1
    /// run ParallelPartialAgg workers on the shared thread pool; the
    /// planner falls back to serial when any aggregate lacks a proven
    /// Merge, the plan is order-enforced (Eq. 6), or the input pipeline is
    /// not morselizable.
    int degree_of_parallelism = 1;
    /// Rows per morsel handed to a worker. Morsel i is statically assigned
    /// to partition i % dop, which makes partition contents — and therefore
    /// results, including any floating-point fold — a deterministic
    /// function of (table, dop, morsel_rows), independent of thread
    /// scheduling. See docs/PARALLELISM.md for the size rationale.
    int64_t morsel_rows = 2048;
    /// Vectorized batch execution (docs/VECTORIZATION.md): eligible
    /// aggregation pipelines scan columnar batches and fold through
    /// type-specialized kernels instead of row-at-a-time Accumulate.
    /// Results are bit-identical; this is a pure performance knob (and the
    /// batch-vs-row equivalence test axis).
    bool enable_batch = true;
  };

  // --- retry: transient-failure handling ----------------------------------
  struct Retry {
    /// Transient (timeout/unavailable) plan failures are re-run up to this
    /// many extra times before surfacing; each re-run counts into
    /// RobustnessStats::transient_retries.
    int transient_retries = 2;
  };

  // --- limits: deadlines, memory budget, admission control ----------------
  struct Limits {
    /// Wall-clock deadline per governed unit of work (a root statement, or
    /// a whole Session::Call/Query/RunBlock invocation). 0 = none. Expiry
    /// surfaces as kTimeout, observed cooperatively at morsel/batch/FETCH
    /// granularity — see docs/ROBUSTNESS.md.
    int64_t timeout_ms = 0;
    /// Memory budget per governed unit of work, charged by stateful
    /// operators (hash-aggregate groups, sort buffers, scan batches,
    /// parallel partials). 0 = unlimited. Exceeding it triggers the
    /// degradation ladder (batch → row → serial) before surfacing
    /// kResourceExhausted.
    int64_t memory_limit_bytes = 0;
    /// Admission gate: at most this many root executions run concurrently
    /// in one QueryEngine. 0 = no gate. Excess arrivals wait up to
    /// admission_timeout_ms, then are rejected with kResourceExhausted.
    int max_concurrent_queries = 0;
    /// How long an arrival may queue at a full admission gate before
    /// rejection. 0 = reject immediately.
    int64_t admission_timeout_ms = 100;
    /// Byte budget for a whole ClientSession: every query and cursor of the
    /// session chains its per-invocation accountant to the session's, so
    /// concurrent cursors + queries of one client share one budget.
    /// 0 = track usage without a limit. (Like the rest of Limits, excluded
    /// from PlanFingerprint.)
    int64_t session_memory_limit_bytes = 0;
  };

  // --- rewrite: the Aggify driver (Algorithm 1) ---------------------------
  struct Rewrite {
    /// §8.1: convert iterative FOR loops into cursor loops over
    /// recursive-CTE iteration spaces before looking for cursor loops.
    bool convert_for_loops = false;
    /// §6.2: after rewriting, remove declarations of variables the
    /// transform rendered dead (e.g. the fetch variables @pCost/@sName of
    /// Figure 1). Applied to rewritten functions only — anonymous client
    /// programs keep their declarations because the environment is their
    /// observable output.
    bool remove_dead_declarations = true;
    /// Emit GuardedRewriteStmt instead of a bare MultiAssignStmt: a runtime
    /// failure of the rewritten query restores the loop-entry state and
    /// re-executes the original cursor loop (slow-but-correct degradation).
    bool guard_rewrites = true;
    /// Opt-in verification: every guarded statement runs BOTH paths and
    /// counts result mismatches in RobustnessStats (the loop's results
    /// win). Implies guard_rewrites.
    bool verify_rewrite = false;
    /// Drop Eq. 6's forced Sort + StreamAggregate when the fold classifier
    /// proves the loop body order-insensitive, enabling HashAggregate (and,
    /// with a proven Merge, parallel partial aggregation). Ablation knob.
    bool elide_order_insensitive_sort = true;
    /// Attach the derived Merge when the decomposability proof holds.
    /// Ablation knob: disabling keeps the aggregate serial.
    bool synthesize_merge = true;
    /// Run the abstract-interpretation simplification pipeline
    /// (`analysis/simplify.h`: constant folding, constant-branch pruning,
    /// dead-store elimination) on the body *before* Eq. 1–4 set inference,
    /// so Agg_Δ never carries state the program provably does not need.
    bool simplify = true;
    /// Drop cursor columns that are fetched but never used in Δ from Q's
    /// projection (AGG302). Skipped for DISTINCT / UNION ALL cursor
    /// queries, where the projection is semantically load-bearing.
    bool prune_fetch_columns = true;
    /// When Δ is exactly one proven built-in fold (sum/count/min/max of a
    /// single row expression, no other live state at loop exit), emit the
    /// native aggregate instead of registering an interpreted Agg_Δ
    /// (AGG304).
    bool lower_native_folds = true;
    /// §8.1 fast path: FOR loops whose init/bound/step fold to integer
    /// literals iterate over a materialized UNION ALL literal chain instead
    /// of a recursive CTE (AGG306). Requires convert_for_loops.
    bool static_trip_values = true;
    /// Largest constant trip count materialized as a literal chain; larger
    /// (or non-constant) iteration spaces keep the recursive CTE.
    int max_static_trips = 256;
    /// Recover loops the applicability check refused for persistent DML
    /// when the table-effect analysis proves read/write disjointness and
    /// the body matches a rewrite family: append-only INSERT bodies become
    /// INSERT ... SELECT, accumulating key-equality UPDATEs become one
    /// set-oriented UPDATE (AGG401/402; analysis/table_effects.h).
    bool rewrite_dml_bodies = true;
    /// Attach a TOP-N prefix bound to the rewritten query when the
    /// early-exit analysis proves the BREAK predicate monotone (AGG403;
    /// analysis/early_exit.h). Correctness never depends on this — the
    /// aggregate's own exit latch already no-ops rows past the BREAK.
    bool bound_early_exit = true;
  };

  Planner planner;
  Execution execution;
  Limits limits;
  Retry retry;
  Rewrite rewrite;

  /// Convenience: a default configuration at the given parallelism.
  static EngineOptions WithDop(int dop) {
    EngineOptions options;
    options.execution.degree_of_parallelism = dop;
    return options;
  }

  /// \brief A compact, stable encoding of every field that can change what a
  /// planned statement does. The plan cache prefixes its keys with this, so
  /// two executions of the same SQL under different configurations never
  /// share a plan. Keep in sync with the fields above: forgetting one here
  /// reintroduces the cross-configuration cache-poisoning bug this fixes.
  std::string PlanFingerprint() const {
    std::string fp = "v1:";
    auto b = [&fp](bool v) { fp += v ? '1' : '0'; };
    b(planner.enable_index_seek);
    b(planner.enable_hash_join);
    b(planner.enable_predicate_pushdown);
    fp += '|';
    fp += std::to_string(execution.degree_of_parallelism);
    fp += ',';
    fp += std::to_string(execution.morsel_rows);
    fp += ',';
    b(execution.enable_batch);
    fp += '|';
    fp += std::to_string(retry.transient_retries);
    fp += '|';
    b(rewrite.convert_for_loops);
    b(rewrite.remove_dead_declarations);
    b(rewrite.guard_rewrites);
    b(rewrite.verify_rewrite);
    b(rewrite.elide_order_insensitive_sort);
    b(rewrite.synthesize_merge);
    b(rewrite.simplify);
    b(rewrite.prune_fetch_columns);
    b(rewrite.lower_native_folds);
    b(rewrite.static_trip_values);
    b(rewrite.rewrite_dml_bodies);
    b(rewrite.bound_early_exit);
    fp += ',';
    fp += std::to_string(rewrite.max_static_trips);
    // Limits are deliberately excluded: deadlines, memory budgets, and
    // admission control govern *how long / how big* an execution may get,
    // not what plan is produced, so they must not fragment the plan cache.
    return fp;
  }
};

}  // namespace aggify
