// Error-propagation macros (Arrow/RocksDB idiom).
#pragma once

#define AGGIFY_CONCAT_IMPL(x, y) x##y
#define AGGIFY_CONCAT(x, y) AGGIFY_CONCAT_IMPL(x, y)

/// Evaluates a Status-returning expression; returns it from the enclosing
/// function if not OK.
#define RETURN_NOT_OK(expr)                 \
  do {                                      \
    ::aggify::Status _st = (expr);          \
    if (!_st.ok()) return _st;              \
  } while (0)

/// Evaluates a Result<T>-returning expression; on error returns its status,
/// otherwise moves the value into `lhs` (which may be a declaration).
#define ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                          \
  if (!tmp.ok()) return tmp.status();          \
  lhs = std::move(tmp).ValueOrDie();

#define ASSIGN_OR_RETURN(lhs, rexpr) \
  ASSIGN_OR_RETURN_IMPL(AGGIFY_CONCAT(_result_, __COUNTER__), lhs, rexpr)

/// Marks a value intentionally unused.
#define AGGIFY_UNUSED(x) (void)(x)
