// Deterministic PRNG used by the data generators and property tests.
//
// A fixed, seedable generator (xorshift128+) keeps benchmark datasets and
// property-test inputs reproducible across platforms, unlike std::mt19937
// distributions whose outputs are not standardized.
#pragma once

#include <cstdint>
#include <string>

namespace aggify {

class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    s0_ = seed ^ 0x9E3779B97F4A7C15ull;
    s1_ = seed * 0xBF58476D1CE4E5B9ull + 1;
    // Warm up so nearby seeds diverge.
    for (int i = 0; i < 8; ++i) Next64();
  }

  uint64_t Next64() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n) { return Next64() % n; }

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Random lowercase alpha string of length `len`.
  std::string AlphaString(size_t len) {
    std::string out(len, 'a');
    for (auto& c : out) c = static_cast<char>('a' + Uniform(26));
    return out;
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace aggify
