#include "common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace aggify {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

std::future<Status> ThreadPool::Submit(std::function<Status()> task) {
  // Wrap so a throwing task resolves the future to a Status instead of an
  // exception: callers uniformly check one error channel.
  std::packaged_task<Status()> wrapped(
      [task = std::move(task)]() -> Status {
        try {
          return task();
        } catch (const std::exception& e) {
          return Status::Internal(std::string("worker task threw: ") +
                                  e.what());
        } catch (...) {
          return Status::Internal("worker task threw a non-std exception");
        }
      });
  std::future<Status> result = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      // Resolve inline; the pool no longer accepts work.
      std::packaged_task<Status()> refusal(
          [] { return Status::Unavailable("thread pool is shut down"); });
      std::future<Status> refused = refusal.get_future();
      refusal();
      return refused;
    }
    queue_.push_back(std::move(wrapped));
  }
  cv_.notify_one();
  return result;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return;
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<Status()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      // Drain-on-shutdown: exit only once the queue is empty, so every
      // Submit that returned a live future gets its task executed.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Global() {
  // At least 2 workers so DOP > 1 genuinely overlaps on single-core
  // machines' CI runners; leaked intentionally (workers may outlive main's
  // static destruction order otherwise).
  static ThreadPool* pool = new ThreadPool(std::max(
      static_cast<int>(std::thread::hardware_concurrency()), 2));
  return *pool;
}

}  // namespace aggify
