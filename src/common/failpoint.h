// Failpoints: named fault-injection sites (RocksDB / folly style).
//
// Code that should be testable under induced failure places an
// AGGIFY_FAILPOINT("layer.site") check on its error path. When the site is
// armed — programmatically via FailPoints::Arm() / ScopedFailPoint, or from
// the AGGIFY_FAILPOINTS environment variable — the check returns an injected
// Status according to a deterministic trigger policy. When nothing is armed
// the check is a single relaxed atomic load, cheap enough for operator
// Next() paths.
//
// Spec grammar (also used by the env var, ';' or ',' separated):
//
//   site[=policy[:code | :sleep(MS)]]
//
//   policies: always          trigger on every check (the default when the
//                             entry is a bare site name)
//             off             registered but never triggers
//             every(N)        trigger on every Nth check (N >= 1)
//             after(N)        pass the first N checks, then always trigger
//             times(K)        trigger on the first K checks, then pass
//             prob(P[,seed])  trigger with probability P, seeded xorshift RNG
//   codes:    exec (default), timeout, unavailable, notfound, internal,
//             invalid, exhausted
//   sleep(MS) instead of a code sets the delay of a *delay site* — one
//             checked via AGGIFY_FAILPOINT_SLEEP, which sleeps MS
//             milliseconds when the policy fires instead of returning an
//             error (default 1 ms). Used to simulate slow operators for
//             deadline testing (e.g. exec.slow_operator).
//
// Example: AGGIFY_FAILPOINTS="exec.agg.accumulate=always;client.fetch=prob(0.1,42):timeout"
//          AGGIFY_FAILPOINTS="exec.slow_operator=always:sleep(5)"
//
// Site naming convention: <layer>.<component>.<operation>, all lowercase
// (see docs/ROBUSTNESS.md for the registry of instrumented sites).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace aggify {

/// Trigger policy of one armed failpoint.
enum class FailPointPolicy {
  kOff,          ///< armed but never triggers (useful as a CI smoke config)
  kAlways,       ///< triggers on every check
  kEveryNth,     ///< triggers on checks N, 2N, 3N, ...
  kAfterN,       ///< passes the first N checks, then always triggers
  kFirstK,       ///< triggers on the first K checks, then always passes
  kProbability,  ///< triggers with probability `probability` (seeded RNG)
};

/// Full arming description of one site.
struct FailPointSpec {
  FailPointPolicy policy = FailPointPolicy::kAlways;
  /// N for kEveryNth / kAfterN, K for kFirstK. Ignored otherwise.
  int64_t n = 1;
  /// Trigger probability in [0, 1] for kProbability.
  double probability = 0.0;
  /// Seed for the per-site RNG used by kProbability.
  uint64_t seed = 0;
  /// The code of the injected Status.
  StatusCode code = StatusCode::kExecutionError;
  /// Sleep duration for delay sites (AGGIFY_FAILPOINT_SLEEP checks).
  int64_t delay_ms = 1;
};

/// \brief Process-wide registry of named failpoints.
///
/// Thread-safe: arming/disarming and the triggered slow path take a mutex;
/// the disarmed fast path is a single relaxed atomic load.
class FailPoints {
 public:
  static FailPoints& Instance();

  /// True if any site is armed anywhere in the process. Lock-free.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Evaluates `site`: returns the injected error if the site is armed and
  /// its policy fires on this check, OK otherwise. Prefer the
  /// AGGIFY_FAILPOINT macro at instrumentation sites.
  static Status Check(const char* site) {
    if (!AnyArmed()) return Status::OK();
    return Instance().Fire(site);
  }

  /// Arms (or re-arms, resetting counters) `site` with `spec`.
  Status Arm(const std::string& site, FailPointSpec spec);

  /// Parses and arms a spec list ("a=always;b=prob(0.5,42):timeout").
  /// Errors: InvalidArgument on malformed specs (no sites are armed then).
  Status ArmFromString(const std::string& spec_list);

  /// Arms from the given environment variable if set and non-empty.
  /// Malformed values are reported, not silently ignored.
  Status ArmFromEnv(const char* env_var = "AGGIFY_FAILPOINTS");

  /// Disarms `site` (no-op if not armed).
  void Disarm(const std::string& site);

  /// Disarms every site and forgets all counters.
  void DisarmAll();

  bool IsArmed(const std::string& site) const;

  /// Number of times `site` was evaluated while armed.
  int64_t CheckCount(const std::string& site) const;

  /// Number of times `site` actually injected a failure.
  int64_t TriggerCount(const std::string& site) const;

  /// Names of all armed sites, sorted.
  std::vector<std::string> ArmedSites() const;

  /// True if `status` was produced by a failpoint (by message convention).
  static bool IsInjected(const Status& status);

  /// Slow path of Check(): policy evaluation under the registry mutex.
  Status Fire(const char* site);

  /// Delay-site variant: evaluates the same trigger policy, and when it
  /// fires sleeps spec.delay_ms *outside* the registry mutex (so slow sites
  /// never serialize unrelated failpoint checks). Returns the milliseconds
  /// slept (0 when not armed / not fired). Prefer AGGIFY_FAILPOINT_SLEEP.
  int64_t SleepIfFired(const char* site);

 private:
  FailPoints() = default;

  struct ArmedSite {
    FailPointSpec spec;
    int64_t checks = 0;
    int64_t triggers = 0;
    Random rng;
  };

  /// Bumps checks/triggers and applies the trigger policy. Caller holds mu_.
  static bool EvaluatePolicy(ArmedSite& armed);

  mutable std::mutex mu_;
  std::map<std::string, ArmedSite> sites_;
  static std::atomic<int64_t> armed_count_;
};

/// \brief RAII arming for tests: arms in the constructor, disarms in the
/// destructor so a failing test cannot leak an armed site into later tests.
class ScopedFailPoint {
 public:
  ScopedFailPoint(std::string site, FailPointSpec spec)
      : site_(std::move(site)) {
    FailPoints::Instance().Arm(site_, spec);
  }
  explicit ScopedFailPoint(std::string site)
      : ScopedFailPoint(std::move(site), FailPointSpec{}) {}
  ~ScopedFailPoint() { FailPoints::Instance().Disarm(site_); }

  ScopedFailPoint(const ScopedFailPoint&) = delete;
  ScopedFailPoint& operator=(const ScopedFailPoint&) = delete;

 private:
  std::string site_;
};

/// Returns the injected Status from the enclosing function when `site` fires.
/// Usable in functions returning Status or Result<T>.
#define AGGIFY_FAILPOINT(site)                                    \
  do {                                                            \
    if (::aggify::FailPoints::AnyArmed()) {                       \
      ::aggify::Status _fp_st = ::aggify::FailPoints::Instance().Fire(site); \
      if (!_fp_st.ok()) return _fp_st;                            \
    }                                                             \
  } while (false)

/// Delay-site check: sleeps spec.delay_ms when `site` fires, injecting
/// slowness (never an error) so deadline expiry is testable. Free when
/// nothing is armed.
#define AGGIFY_FAILPOINT_SLEEP(site)                              \
  do {                                                            \
    if (::aggify::FailPoints::AnyArmed()) {                       \
      ::aggify::FailPoints::Instance().SleepIfFired(site);        \
    }                                                             \
  } while (false)

}  // namespace aggify
