#include "common/status.h"

namespace aggify {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kBindError:
      return "bind error";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kTypeError:
      return "type error";
    case StatusCode::kNotSupported:
      return "not supported";
    case StatusCode::kNotApplicable:
      return "not applicable";
    case StatusCode::kExecutionError:
      return "execution error";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kInternal:
      return "internal error";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace aggify
