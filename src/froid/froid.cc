#include "froid/froid.h"

#include <functional>

#include "plan/planner.h"  // SplitConjuncts / CombineConjuncts

namespace aggify {

namespace {

using SubstMap = std::map<std::string, const Expr*>;

/// Applies `fn` to every owning expression slot reachable from `slot`
/// (pre-order). `fn` may replace the slot's node; recursion then continues
/// into the replacement's children. Does not descend into subquery bodies.
void VisitOwnedExprs(ExprPtr* slot, const std::function<void(ExprPtr*)>& fn) {
  if (*slot == nullptr) return;
  fn(slot);
  Expr* e = slot->get();
  switch (e->kind) {
    case ExprKind::kUnary:
      VisitOwnedExprs(&static_cast<UnaryExpr*>(e)->operand, fn);
      break;
    case ExprKind::kBinary: {
      auto* bin = static_cast<BinaryExpr*>(e);
      VisitOwnedExprs(&bin->left, fn);
      VisitOwnedExprs(&bin->right, fn);
      break;
    }
    case ExprKind::kFunctionCall: {
      auto* call = static_cast<FunctionCallExpr*>(e);
      for (auto& a : call->args) VisitOwnedExprs(&a, fn);
      break;
    }
    case ExprKind::kAggregateCall: {
      auto* agg = static_cast<AggregateCallExpr*>(e);
      for (auto& a : agg->args) VisitOwnedExprs(&a, fn);
      break;
    }
    case ExprKind::kInList: {
      auto* in = static_cast<InListExpr*>(e);
      VisitOwnedExprs(&in->operand, fn);
      for (auto& item : in->list) VisitOwnedExprs(&item, fn);
      break;
    }
    case ExprKind::kIsNull:
      VisitOwnedExprs(&static_cast<IsNullExpr*>(e)->operand, fn);
      break;
    case ExprKind::kCaseWhen: {
      auto* cw = static_cast<CaseWhenExpr*>(e);
      for (auto& arm : cw->arms) {
        VisitOwnedExprs(&arm.condition, fn);
        VisitOwnedExprs(&arm.result, fn);
      }
      if (cw->else_result != nullptr) VisitOwnedExprs(&cw->else_result, fn);
      break;
    }
    case ExprKind::kCast:
      VisitOwnedExprs(&static_cast<CastExpr*>(e)->operand, fn);
      break;
    default:
      break;
  }
}

void SubstInPlace(ExprPtr* slot, const SubstMap& subst);

void SubstSelectInPlace(SelectStmt* stmt, const SubstMap& subst) {
  for (auto& cte : stmt->ctes) SubstSelectInPlace(cte.query.get(), subst);
  if (stmt->top_n != nullptr) SubstInPlace(&stmt->top_n, subst);
  for (auto& item : stmt->items) SubstInPlace(&item.expr, subst);
  std::function<void(TableRef*)> fix_tref = [&](TableRef* t) {
    switch (t->kind) {
      case TableRef::Kind::kSubquery:
        SubstSelectInPlace(t->subquery.get(), subst);
        break;
      case TableRef::Kind::kJoin:
        fix_tref(t->left.get());
        fix_tref(t->right.get());
        if (t->join_condition != nullptr) {
          SubstInPlace(&t->join_condition, subst);
        }
        break;
      default:
        break;
    }
  };
  for (auto& t : stmt->from) fix_tref(t.get());
  if (stmt->where != nullptr) SubstInPlace(&stmt->where, subst);
  for (auto& g : stmt->group_by) SubstInPlace(&g, subst);
  if (stmt->having != nullptr) SubstInPlace(&stmt->having, subst);
  for (auto& o : stmt->order_by) SubstInPlace(&o.expr, subst);
  if (stmt->union_all != nullptr) {
    SubstSelectInPlace(stmt->union_all.get(), subst);
  }
}

// Single-pass substitution: a replaced VarRef is NOT re-visited, so mappings
// that mention their own variable (e.g. @lb -> CASE WHEN @lb=-1 ... ELSE @lb
// END, produced by conditional assignment) terminate.
void SubstInPlace(ExprPtr* slot, const SubstMap& subst) {
  Expr* e = slot->get();
  if (e == nullptr) return;
  if (e->kind == ExprKind::kVarRef) {
    const auto& var = static_cast<const VarRefExpr&>(*e);
    auto it = subst.find(var.name);
    if (it != subst.end()) *slot = it->second->Clone();
    return;
  }
  if (e->kind == ExprKind::kScalarSubquery) {
    SubstSelectInPlace(static_cast<ScalarSubqueryExpr*>(e)->query.get(),
                       subst);
    return;
  }
  if (e->kind == ExprKind::kExists) {
    SubstSelectInPlace(static_cast<ExistsExpr*>(e)->query.get(), subst);
    return;
  }
  switch (e->kind) {
    case ExprKind::kUnary:
      SubstInPlace(&static_cast<UnaryExpr*>(e)->operand, subst);
      break;
    case ExprKind::kBinary: {
      auto* bin = static_cast<BinaryExpr*>(e);
      SubstInPlace(&bin->left, subst);
      SubstInPlace(&bin->right, subst);
      break;
    }
    case ExprKind::kFunctionCall: {
      auto* call = static_cast<FunctionCallExpr*>(e);
      for (auto& a : call->args) SubstInPlace(&a, subst);
      break;
    }
    case ExprKind::kAggregateCall: {
      auto* agg = static_cast<AggregateCallExpr*>(e);
      for (auto& a : agg->args) SubstInPlace(&a, subst);
      break;
    }
    case ExprKind::kInList: {
      auto* in = static_cast<InListExpr*>(e);
      SubstInPlace(&in->operand, subst);
      for (auto& item : in->list) SubstInPlace(&item, subst);
      if (in->subquery != nullptr) {
        SubstSelectInPlace(in->subquery.get(), subst);
      }
      break;
    }
    case ExprKind::kIsNull:
      SubstInPlace(&static_cast<IsNullExpr*>(e)->operand, subst);
      break;
    case ExprKind::kCaseWhen: {
      auto* cw = static_cast<CaseWhenExpr*>(e);
      for (auto& arm : cw->arms) {
        SubstInPlace(&arm.condition, subst);
        SubstInPlace(&arm.result, subst);
      }
      if (cw->else_result != nullptr) SubstInPlace(&cw->else_result, subst);
      break;
    }
    case ExprKind::kCast:
      SubstInPlace(&static_cast<CastExpr*>(e)->operand, subst);
      break;
    default:
      break;
  }
}

}  // namespace

ExprPtr SubstituteVars(const Expr& e, const SubstMap& subst) {
  ExprPtr cloned = e.Clone();
  SubstInPlace(&cloned, subst);
  return cloned;
}

std::unique_ptr<SelectStmt> SubstituteVarsInSelect(const SelectStmt& stmt,
                                                   const SubstMap& subst) {
  auto cloned = stmt.Clone();
  SubstSelectInPlace(cloned.get(), subst);
  return cloned;
}

// ---------- symbolic execution of straight-line bodies ----------

namespace {

/// Variable -> the expression computing its current value.
using SymbolicEnv = std::map<std::string, ExprPtr>;

SubstMap ViewOf(const SymbolicEnv& env) {
  SubstMap view;
  for (const auto& [k, v] : env) view.emplace(k, v.get());
  return view;
}

Status ExecSymbolic(const Stmt& stmt, SymbolicEnv* env, ExprPtr* result);

Status ExecSymbolicBlock(const BlockStmt& block, SymbolicEnv* env,
                         ExprPtr* result) {
  for (const auto& s : block.statements) {
    RETURN_NOT_OK(ExecSymbolic(*s, env, result));
    if (*result != nullptr) return Status::OK();  // RETURN reached
  }
  return Status::OK();
}

Status ExecSymbolic(const Stmt& stmt, SymbolicEnv* env, ExprPtr* result) {
  switch (stmt.kind) {
    case StmtKind::kBlock:
      return ExecSymbolicBlock(static_cast<const BlockStmt&>(stmt), env,
                               result);

    case StmtKind::kDeclareVar: {
      const auto& d = static_cast<const DeclareVarStmt&>(stmt);
      if (d.initializer != nullptr) {
        (*env)[d.name] = SubstituteVars(*d.initializer, ViewOf(*env));
      } else {
        (*env)[d.name] = MakeLiteral(Value::Null());
      }
      return Status::OK();
    }

    case StmtKind::kSet: {
      const auto& s = static_cast<const SetStmt&>(stmt);
      (*env)[s.name] = SubstituteVars(*s.value, ViewOf(*env));
      return Status::OK();
    }

    case StmtKind::kMultiAssign: {
      const auto& ma = static_cast<const MultiAssignStmt&>(stmt);
      if (ma.targets.size() != 1) {
        return Status::NotApplicable(
            "multi-target aggregate assignment is not inlinable");
      }
      auto sub = std::make_unique<ScalarSubqueryExpr>(
          SubstituteVarsInSelect(*ma.query, ViewOf(*env)));
      // Keep-prior-on-NULL semantics: ISNULL((subquery), prior).
      auto it = env->find(ma.targets[0]);
      ExprPtr prior = it != env->end() ? it->second->Clone()
                                       : MakeLiteral(Value::Null());
      std::vector<ExprPtr> args;
      args.push_back(std::move(sub));
      args.push_back(std::move(prior));
      (*env)[ma.targets[0]] =
          std::make_unique<FunctionCallExpr>("isnull", std::move(args));
      return Status::OK();
    }

    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(stmt);
      ExprPtr cond = SubstituteVars(*i.condition, ViewOf(*env));
      // Execute both branches on copies; RETURN inside a branch is not
      // supported (would need path-condition tracking).
      SymbolicEnv then_env;
      SymbolicEnv else_env;
      for (const auto& [k, v] : *env) {
        then_env[k] = v->Clone();
        else_env[k] = v->Clone();
      }
      ExprPtr branch_result;
      RETURN_NOT_OK(ExecSymbolic(*i.then_branch, &then_env, &branch_result));
      if (branch_result != nullptr) {
        return Status::NotApplicable("RETURN inside IF is not inlinable");
      }
      if (i.else_branch != nullptr) {
        RETURN_NOT_OK(ExecSymbolic(*i.else_branch, &else_env, &branch_result));
        if (branch_result != nullptr) {
          return Status::NotApplicable("RETURN inside ELSE is not inlinable");
        }
      }
      // Merge: any variable whose expressions differ becomes CASE WHEN.
      for (auto& [name, then_val] : then_env) {
        ExprPtr& else_val = else_env[name];
        if (else_val == nullptr) else_val = MakeLiteral(Value::Null());
        if (then_val->ToString() == else_val->ToString()) {
          (*env)[name] = std::move(then_val);
          continue;
        }
        std::vector<CaseWhenExpr::Arm> arms;
        arms.push_back(CaseWhenExpr::Arm{cond->Clone(), std::move(then_val)});
        (*env)[name] = std::make_unique<CaseWhenExpr>(std::move(arms),
                                                      std::move(else_val));
      }
      // Variables introduced only in the ELSE branch.
      for (auto& [name, else_val] : else_env) {
        if (env->count(name) != 0 || then_env.count(name) != 0) continue;
        std::vector<CaseWhenExpr::Arm> arms;
        arms.push_back(
            CaseWhenExpr::Arm{cond->Clone(), MakeLiteral(Value::Null())});
        (*env)[name] = std::make_unique<CaseWhenExpr>(std::move(arms),
                                                      std::move(else_val));
      }
      return Status::OK();
    }

    case StmtKind::kGuardedRewrite: {
      // Semantically identical to its MultiAssign; the fallback is runtime
      // recovery machinery and does not affect the symbolic result. The DML
      // form has table effects, which Froid inlining cannot represent.
      const auto& g = static_cast<const GuardedRewriteStmt&>(stmt);
      if (g.rewritten_dml != nullptr) {
        return Status::NotApplicable("guarded DML rewrite in body");
      }
      return ExecSymbolic(*g.rewritten, env, result);
    }

    case StmtKind::kReturn: {
      const auto& r = static_cast<const ReturnStmt&>(stmt);
      if (r.value == nullptr) {
        return Status::NotApplicable("RETURN without a value");
      }
      *result = SubstituteVars(*r.value, ViewOf(*env));
      return Status::OK();
    }

    default:
      return Status::NotApplicable(
          "statement kind not inlinable by Froid: " + stmt.ToString(0));
  }
}

}  // namespace

Result<ExprPtr> Froid::BuildInlineTemplate(const FunctionDef& def) {
  if (def.is_procedure) {
    return Status::NotApplicable("procedures are not inlinable");
  }
  SymbolicEnv env;
  for (const auto& p : def.params) {
    env[p.name] = MakeVarRef(p.name);  // placeholder; call site substitutes
  }
  ExprPtr result;
  RETURN_NOT_OK(ExecSymbolicBlock(*def.body, &env, &result));
  if (result == nullptr) {
    return Status::NotApplicable("function body has no reachable RETURN");
  }
  return result;
}

Result<int> Froid::InlineUdfCalls(SelectStmt* stmt) {
  int inlined = 0;
  Status failure = Status::OK();

  auto try_inline = [&](ExprPtr* slot) {
    if (!failure.ok()) return;
    Expr* e = slot->get();
    if (e->kind != ExprKind::kFunctionCall) return;
    auto* call = static_cast<FunctionCallExpr*>(e);
    if (!db_->catalog().HasFunction(call->name)) return;
    auto def = db_->catalog().GetFunction(call->name);
    if (!def.ok()) return;
    auto tmpl = BuildInlineTemplate(**def);
    if (!tmpl.ok()) {
      if (!tmpl.status().IsNotApplicable()) failure = tmpl.status();
      return;  // leave the call in place
    }
    // Bind parameters: positional args, then declared defaults.
    const auto& params = (*def)->params;
    if (call->args.size() > params.size()) {
      failure = Status::BindError("too many arguments in call to " +
                                  call->name);
      return;
    }
    SubstMap subst;
    std::vector<ExprPtr> defaults;  // keepalive for default expressions
    for (size_t i = 0; i < params.size(); ++i) {
      if (i < call->args.size()) {
        subst.emplace(params[i].name, call->args[i].get());
      } else if (params[i].default_value != nullptr) {
        defaults.push_back(params[i].default_value->Clone());
        subst.emplace(params[i].name, defaults.back().get());
      } else {
        failure = Status::BindError("missing argument " + params[i].name +
                                    " in call to " + call->name);
        return;
      }
    }
    *slot = SubstituteVars(**tmpl, subst);
    ++inlined;
  };

  for (auto& item : stmt->items) VisitOwnedExprs(&item.expr, try_inline);
  if (stmt->where != nullptr) VisitOwnedExprs(&stmt->where, try_inline);
  if (stmt->having != nullptr) VisitOwnedExprs(&stmt->having, try_inline);
  for (auto& o : stmt->order_by) VisitOwnedExprs(&o.expr, try_inline);
  RETURN_NOT_OK(failure);
  return inlined;
}

// ---------- decorrelation ----------

namespace {

/// Resolvability of a column name against the FROM scope of `stmt`, using
/// base-table schemas from the catalog and derived-table output aliases.
class ScopeResolver {
 public:
  ScopeResolver(const SelectStmt& stmt, const Catalog& catalog) {
    for (const auto& t : stmt.from) AddTableRef(*t, catalog);
  }

  bool Resolves(const std::string& name) const {
    for (const auto& s : schemas_) {
      if (s.IndexOf(name).ok()) return true;
    }
    return false;
  }

  /// True if every column ref in `e` resolves in this scope.
  bool FullyLocal(const Expr& e) const {
    std::vector<std::string> cols;
    CollectColumnRefs(e, &cols);
    for (const auto& c : cols) {
      if (!Resolves(c)) return false;
    }
    return !cols.empty() || true;
  }

  bool complete() const { return complete_; }

 private:
  void AddTableRef(const TableRef& t, const Catalog& catalog) {
    switch (t.kind) {
      case TableRef::Kind::kBaseTable: {
        auto table = catalog.GetTable(t.table_name);
        if (!table.ok()) {
          complete_ = false;
          return;
        }
        schemas_.push_back(
            (*table)->schema().WithQualifier(t.EffectiveName()));
        break;
      }
      case TableRef::Kind::kSubquery: {
        Schema s;
        for (size_t i = 0; i < t.subquery->items.size(); ++i) {
          const auto& item = t.subquery->items[i];
          std::string n = item.alias;
          if (n.empty() && item.expr->kind == ExprKind::kColumnRef) {
            const std::string& c =
                static_cast<const ColumnRefExpr&>(*item.expr).name;
            auto dot = c.find('.');
            n = dot == std::string::npos ? c : c.substr(dot + 1);
          }
          if (n.empty()) n = "__col_" + std::to_string(i);
          s.AddColumn(Column(n, DataType(TypeId::kNull), t.alias));
        }
        if (t.subquery->select_star) complete_ = false;
        schemas_.push_back(std::move(s));
        break;
      }
      case TableRef::Kind::kJoin:
        AddTableRef(*t.left, catalog);
        AddTableRef(*t.right, catalog);
        break;
    }
  }

  std::vector<Schema> schemas_;
  bool complete_ = true;
};

struct CorrelationKey {
  ExprPtr inner_col;   // resolves inside Qd
  ExprPtr outer_expr;  // references the outer query
};

/// Splits Qd's WHERE into correlation keys and residual conjuncts.
/// A conjunct `a = b` is a correlation key when one side is fully local to
/// Qd and the other references at least one non-local column.
Status ExtractCorrelation(SelectStmt* qd, const Catalog& catalog,
                          std::vector<CorrelationKey>* keys) {
  if (qd->where == nullptr) return Status::OK();
  ScopeResolver scope(*qd, catalog);
  if (!scope.complete()) return Status::OK();

  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(*qd->where, &conjuncts);
  std::vector<ExprPtr> residual;
  for (auto& c : conjuncts) {
    bool is_key = false;
    if (c->kind == ExprKind::kBinary) {
      auto* bin = static_cast<BinaryExpr*>(c.get());
      if (bin->op == BinaryOp::kEq) {
        auto classify = [&](const Expr& e) {
          std::vector<std::string> cols;
          CollectColumnRefs(e, &cols);
          if (cols.empty()) return 0;  // constant / variable
          for (const auto& col : cols) {
            if (!scope.Resolves(col)) return 2;  // outer
          }
          return 1;  // local
        };
        int l = classify(*bin->left);
        int r = classify(*bin->right);
        if (l == 1 && r == 2) {
          keys->push_back(CorrelationKey{std::move(bin->left),
                                         std::move(bin->right)});
          is_key = true;
        } else if (l == 2 && r == 1) {
          keys->push_back(CorrelationKey{std::move(bin->right),
                                         std::move(bin->left)});
          is_key = true;
        }
      }
    }
    if (!is_key) residual.push_back(std::move(c));
  }
  qd->where = CombineConjuncts(std::move(residual));
  return Status::OK();
}

/// Replaces every subexpression of `*root` whose rendering equals
/// `pattern_repr` with a clone of `replacement`. Textual matching is how the
/// rewrite maps correlated references in the aggregate's arguments onto the
/// group key (within a group they are equal by the removed conjunct).
void ReplaceMatchingExprs(ExprPtr* root, const std::string& pattern_repr,
                          const Expr& replacement) {
  if (*root == nullptr) return;
  if ((*root)->ToString() == pattern_repr) {
    *root = replacement.Clone();
    return;
  }
  Expr* e = root->get();
  switch (e->kind) {
    case ExprKind::kUnary:
      ReplaceMatchingExprs(&static_cast<UnaryExpr*>(e)->operand, pattern_repr,
                           replacement);
      break;
    case ExprKind::kBinary: {
      auto* bin = static_cast<BinaryExpr*>(e);
      ReplaceMatchingExprs(&bin->left, pattern_repr, replacement);
      ReplaceMatchingExprs(&bin->right, pattern_repr, replacement);
      break;
    }
    case ExprKind::kFunctionCall:
      for (auto& a : static_cast<FunctionCallExpr*>(e)->args) {
        ReplaceMatchingExprs(&a, pattern_repr, replacement);
      }
      break;
    case ExprKind::kAggregateCall:
      for (auto& a : static_cast<AggregateCallExpr*>(e)->args) {
        ReplaceMatchingExprs(&a, pattern_repr, replacement);
      }
      break;
    case ExprKind::kCaseWhen: {
      auto* cw = static_cast<CaseWhenExpr*>(e);
      for (auto& arm : cw->arms) {
        ReplaceMatchingExprs(&arm.condition, pattern_repr, replacement);
        ReplaceMatchingExprs(&arm.result, pattern_repr, replacement);
      }
      if (cw->else_result != nullptr) {
        ReplaceMatchingExprs(&cw->else_result, pattern_repr, replacement);
      }
      break;
    }
    case ExprKind::kCast:
      ReplaceMatchingExprs(&static_cast<CastExpr*>(e)->operand, pattern_repr,
                           replacement);
      break;
    case ExprKind::kIsNull:
      ReplaceMatchingExprs(&static_cast<IsNullExpr*>(e)->operand, pattern_repr,
                           replacement);
      break;
    default:
      break;
  }
}

}  // namespace

Result<int> Froid::DecorrelateScalarSubqueries(SelectStmt* stmt) {
  if (stmt->from.size() != 1) return 0;  // single outer FROM entry only
  int count = 0;
  Status failure = Status::OK();

  auto try_decorrelate = [&](ExprPtr* slot) {
    if (!failure.ok()) return;
    if ((*slot)->kind != ExprKind::kScalarSubquery) return;
    auto* sub = static_cast<ScalarSubqueryExpr*>(slot->get());
    SelectStmt* inner = sub->query.get();

    // Shape: SELECT <agg expr> FROM <one entry> [WHERE ...], no grouping.
    if (inner->items.size() != 1 || inner->from.size() != 1 ||
        inner->HasGroupBy() || inner->having != nullptr ||
        inner->top_n != nullptr || inner->distinct ||
        inner->union_all != nullptr || !inner->ctes.empty()) {
      return;
    }
    if (!ContainsAggregateCall(*inner->items[0].expr)) return;
    // COUNT rewrites to NULL instead of 0 on empty groups; skip it.
    bool has_count = false;
    inner->items[0].expr->Walk([&](const Expr& e) {
      if (e.kind == ExprKind::kAggregateCall &&
          static_cast<const AggregateCallExpr&>(e).name == "count") {
        has_count = true;
      }
    });
    if (has_count) return;

    // Locate the correlated conjuncts: in the inner WHERE (plain shape) or
    // inside the derived table (the Aggify rewrite shape). All analysis runs
    // on clones; the statement is only mutated once the rewrite is complete.
    TableRef* inner_from = inner->from[0].get();
    bool aggify_shape;
    std::unique_ptr<SelectStmt> qd_work;
    if (inner_from->kind == TableRef::Kind::kSubquery) {
      aggify_shape = true;
      qd_work = inner_from->subquery->Clone();
    } else if (inner_from->kind == TableRef::Kind::kBaseTable &&
               inner->where != nullptr) {
      aggify_shape = false;
      qd_work = inner->Clone();
    } else {
      return;
    }

    std::vector<CorrelationKey> keys;
    Status st = ExtractCorrelation(qd_work.get(), db_->catalog(), &keys);
    if (!st.ok()) {
      failure = st;
      return;
    }
    if (keys.empty()) return;

    std::string dalias = "__dc" + std::to_string(db_->NextObjectId());
    auto dsel = std::make_unique<SelectStmt>();

    // The aggregate expression, with correlated references replaced by the
    // group key (they are equal within a group by the removed conjunct).
    ExprPtr agg_expr = inner->items[0].expr->Clone();

    if (aggify_shape) {
      // Extend Qd's projection with the key columns; group by them.
      std::string q_alias = inner_from->EffectiveName();
      for (size_t i = 0; i < keys.size(); ++i) {
        qd_work->items.push_back(SelectItem{keys[i].inner_col->Clone(),
                                            "__ck" + std::to_string(i)});
      }
      for (size_t i = 0; i < keys.size(); ++i) {
        std::string ck = q_alias + ".__ck" + std::to_string(i);
        ColumnRefExpr ck_ref(ck);
        ReplaceMatchingExprs(&agg_expr, keys[i].outer_expr->ToString(),
                             ck_ref);
        dsel->items.push_back(
            SelectItem{MakeColumnRef(ck), "ck" + std::to_string(i)});
        dsel->group_by.push_back(MakeColumnRef(ck));
      }
      // Every remaining column in the aggregate expression must resolve
      // against the derived table's projection; otherwise the subquery has
      // correlation this rewrite cannot remove.
      {
        Schema derived_schema;
        for (const auto& item : qd_work->items) {
          derived_schema.AddColumn(
              Column(item.alias, DataType(TypeId::kNull), q_alias));
        }
        std::vector<std::string> cols;
        CollectColumnRefs(*agg_expr, &cols);
        for (const auto& c : cols) {
          if (!derived_schema.IndexOf(c).ok()) return;  // bail: still correlated
        }
      }
      dsel->items.push_back(SelectItem{std::move(agg_expr), "aggval"});
      dsel->from.push_back(TableRef::Derived(std::move(qd_work), q_alias));
      if (inner->where != nullptr) dsel->where = inner->where->Clone();
      dsel->force_stream_aggregate = inner->force_stream_aggregate;
    } else {
      // Plain shape: group the (decorrelated) inner query by the keys.
      for (size_t i = 0; i < keys.size(); ++i) {
        ReplaceMatchingExprs(&agg_expr, keys[i].outer_expr->ToString(),
                             *keys[i].inner_col);
      }
      {
        ScopeResolver scope(*qd_work, db_->catalog());
        std::vector<std::string> cols;
        CollectColumnRefs(*agg_expr, &cols);
        for (const auto& c : cols) {
          if (!scope.Resolves(c)) return;  // bail: still correlated
        }
      }
      dsel = std::move(qd_work);
      std::vector<SelectItem> new_items;
      for (size_t i = 0; i < keys.size(); ++i) {
        new_items.push_back(SelectItem{keys[i].inner_col->Clone(),
                                       "ck" + std::to_string(i)});
        dsel->group_by.push_back(keys[i].inner_col->Clone());
      }
      new_items.push_back(SelectItem{std::move(agg_expr), "aggval"});
      dsel->items = std::move(new_items);
    }

    // LEFT JOIN the grouped derived table to the outer FROM entry.
    ExprPtr on;
    for (size_t i = 0; i < keys.size(); ++i) {
      ExprPtr eq = MakeBinary(
          BinaryOp::kEq, keys[i].outer_expr->Clone(),
          MakeColumnRef(dalias + ".ck" + std::to_string(i)));
      on = on == nullptr
               ? std::move(eq)
               : MakeBinary(BinaryOp::kAnd, std::move(on), std::move(eq));
    }
    stmt->from[0] = TableRef::Join(std::move(stmt->from[0]),
                                   TableRef::Derived(std::move(dsel), dalias),
                                   JoinType::kLeft, std::move(on));
    *slot = MakeColumnRef(dalias + ".aggval");
    ++count;
  };

  for (auto& item : stmt->items) VisitOwnedExprs(&item.expr, try_decorrelate);
  RETURN_NOT_OK(failure);
  return count;
}

Result<int> Froid::RewriteQuery(SelectStmt* stmt) {
  ASSIGN_OR_RETURN(int inlined, InlineUdfCalls(stmt));
  ASSIGN_OR_RETURN(int decorrelated, DecorrelateScalarSubqueries(stmt));
  return inlined + decorrelated;
}

}  // namespace aggify
