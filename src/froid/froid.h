// Froid-style scalar UDF inlining (§8.2 / §9, after Ramachandra et al.,
// "Froid: Optimization of Imperative Programs in a Relational Database").
//
// Froid cannot inline UDFs containing loops; Aggify removes the loops first,
// and Froid then turns the straight-line body into a single relational
// expression — the "Aggify+" configuration of the evaluation.
//
// Supported body shape (which is exactly what Aggify-rewritten UDFs are):
//   DECLARE @x t [= e]; SET @x = e; IF c <assignments> [ELSE <assignments>];
//   SET @x = (scalar subquery);  (Aggify's single-target rewrite)
//   RETURN e;                    (as the final statement)
// Anything else (cursors, DML, WHILE, multi-target assigns, early RETURN)
// makes the UDF non-inlinable and Froid reports NotApplicable.
//
// The inliner symbolically executes the body, mapping each variable to the
// expression that computes it (CASE WHEN for conditional assignment), then
// substitutes call arguments for parameters at each call site. A follow-up
// decorrelation pass converts the resulting correlated scalar subqueries
// into GROUP BY + LEFT JOIN form — the optimization that turns per-row
// re-execution into one set-oriented plan.
#pragma once

#include "parser/statement.h"
#include "storage/catalog.h"

namespace aggify {

class Froid {
 public:
  explicit Froid(Database* db) : db_(db) {}

  /// \brief Builds the inline template of a UDF: an expression over the
  /// function's parameters (left as VarRefs) that computes its RETURN value.
  /// Errors: NotApplicable if the body shape is unsupported.
  Result<ExprPtr> BuildInlineTemplate(const FunctionDef& def);

  /// \brief Inlines every call to inlinable catalog UDFs inside `stmt`
  /// (select items, WHERE, and nested expressions), substituting argument
  /// expressions for parameters. Non-inlinable UDFs are left as calls.
  /// Returns the number of calls inlined.
  Result<int> InlineUdfCalls(SelectStmt* stmt);

  /// \brief Decorrelates scalar subqueries in the SELECT list of the form
  ///
  ///   SELECT ..., (SELECT agg(...) FROM (Qd) q) FROM T ...
  ///
  /// where Qd contains an equi-conjunct `inner_col = <outer expr>` whose
  /// outer side references T. Rewrites to
  ///
  ///   SELECT ..., d.aggval FROM T ... LEFT JOIN
  ///     (SELECT inner_col AS ck, agg(...) AS aggval FROM (Qd') q
  ///      GROUP BY inner_col) d ON <outer expr> = d.ck
  ///
  /// Returns the number of subqueries decorrelated.
  Result<int> DecorrelateScalarSubqueries(SelectStmt* stmt);

  /// \brief The full Aggify+ query step: inline + decorrelate.
  Result<int> RewriteQuery(SelectStmt* stmt);

 private:
  Database* db_;
};

/// \brief Clones `e`, replacing every VarRef whose name appears in `subst`
/// with a clone of the mapped expression. Descends into subqueries.
ExprPtr SubstituteVars(const Expr& e,
                       const std::map<std::string, const Expr*>& subst);

/// \brief Same substitution applied to every expression of a SELECT.
std::unique_ptr<SelectStmt> SubstituteVarsInSelect(
    const SelectStmt& stmt, const std::map<std::string, const Expr*>& subst);

}  // namespace aggify
