// Volcano-style physical operator interface.
//
// Open/Next/Close lifecycle; operators are re-openable (Open after Close
// restarts the stream). Operators never mutate the ExecContext they receive:
// ctx.frame() is the correlation frame of the *enclosing* query, and
// operators that evaluate expressions build a local frame chained to it.
#pragma once

#include <memory>
#include <string>

#include "exec/exec_context.h"

namespace aggify {

struct Batch;  // exec/batch.h

class Operator {
 public:
  virtual ~Operator() = default;

  /// Output schema (valid before Open).
  virtual const Schema& schema() const = 0;

  virtual Status Open(ExecContext& ctx) = 0;

  /// Produces the next row into `out`. Returns false when exhausted.
  virtual Result<bool> Next(ExecContext& ctx, Row* out) = 0;

  /// Produces the next columnar batch into `out` (vectorized pipeline,
  /// docs/VECTORIZATION.md). Returns false when exhausted. Must be
  /// observationally identical to draining Next(): same rows in the same
  /// order, same IoStats. The base implementation adapts row-at-a-time
  /// operators by pulling Next() into a generic batch, so batch consumers
  /// compose over any subtree; scans/filters/projections override it.
  /// Do not interleave Next and NextBatch on one opened operator.
  virtual Result<bool> NextBatch(ExecContext& ctx, Batch* out);

  virtual Status Close(ExecContext& ctx) = 0;

  /// One-line physical-plan description, e.g. "HashJoin(ps_suppkey=s_suppkey)".
  virtual std::string Describe() const = 0;

  /// Multi-line plan tree (EXPLAIN).
  std::string ExplainTree(int indent = 0) const;

  /// Children for plan introspection (non-owning).
  virtual std::vector<const Operator*> children() const { return {}; }

  /// The base table a leaf scans, if any (plan-cache fencing).
  virtual const class Table* base_table() const { return nullptr; }
};

using OperatorPtr = std::unique_ptr<Operator>;

/// True if any leaf of the plan scans a temp worktable — such plans are
/// fenced by Catalog::temp_generation().
bool PlanTouchesWorktables(const Operator& root);

}  // namespace aggify
