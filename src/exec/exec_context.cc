#include "exec/exec_context.h"

namespace aggify {

Status VariableEnv::Set(const std::string& name, Value v) {
  for (VariableEnv* env = this; env != nullptr; env = env->parent_) {
    auto it = env->vars_.find(name);
    if (it != env->vars_.end()) {
      it->second = std::move(v);
      return Status::OK();
    }
  }
  return Status::NotFound("variable not declared: " + name);
}

Result<Value> VariableEnv::Get(const std::string& name) const {
  for (const VariableEnv* env = this; env != nullptr; env = env->parent_) {
    auto it = env->vars_.find(name);
    if (it != env->vars_.end()) return it->second;
  }
  return Status::NotFound("variable not declared: " + name);
}

bool VariableEnv::Has(const std::string& name) const {
  for (const VariableEnv* env = this; env != nullptr; env = env->parent_) {
    if (env->vars_.count(name) != 0) return true;
  }
  return false;
}

std::vector<std::string> VariableEnv::LocalNames() const {
  std::vector<std::string> names;
  for (const auto& [k, v] : vars_) names.push_back(k);
  return names;
}

Result<Value> QueryResult::ScalarValue() const {
  if (rows.empty()) return Value::Null();
  if (rows.size() > 1) {
    return Status::ExecutionError(
        "scalar subquery returned more than one row (" +
        std::to_string(rows.size()) + ")");
  }
  if (rows[0].empty()) {
    return Status::ExecutionError("scalar subquery returned zero columns");
  }
  return rows[0][0];
}

Result<QueryResult> ExecContext::ExecuteSubquery(const SelectStmt& stmt) {
  if (!subquery_exec_) {
    return Status::Internal("no subquery executor installed in ExecContext");
  }
  if (depth > kMaxDepth) {
    return Status::ExecutionError(
        "query nesting too deep (possible runaway recursion)");
  }
  return subquery_exec_(stmt, *this);
}

}  // namespace aggify
