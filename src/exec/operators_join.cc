// Join operators: HashJoin, NestedLoopJoin.
#include "common/failpoint.h"
#include "exec/eval.h"
#include "exec/operators.h"

namespace aggify {

namespace {

Row ConcatRows(const Row& left, const Row& right) {
  Row out = left;
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

Row NullRow(size_t n) { return Row(n, Value::Null()); }

/// Evaluates `pred` (may be null => true) against `row` under `schema`,
/// chaining to the enclosing correlation frame.
Result<bool> EvalRowPredicate(const Expr* pred, const Row& row,
                              const Schema& schema, ExecContext& ctx) {
  if (pred == nullptr) return true;
  RowFrame frame{&row, &schema, ctx.frame()};
  ExecContext::FrameScope scope(&ctx, &frame);
  return EvalPredicate(*pred, ctx);
}

}  // namespace

// ---- HashJoinOp ----

HashJoinOp::HashJoinOp(OperatorPtr left, OperatorPtr right,
                       std::vector<ExprPtr> left_keys,
                       std::vector<ExprPtr> right_keys, bool left_outer,
                       ExprPtr residual)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      left_outer_(left_outer),
      residual_(std::move(residual)),
      schema_(Schema::Concat(left_->schema(), right_->schema())) {}

Result<bool> HashJoinOp::EvalKeys(ExecContext& ctx,
                                  const std::vector<ExprPtr>& keys,
                                  const Row& row, const Schema& schema,
                                  Row* out_key) {
  out_key->clear();
  RowFrame frame{&row, &schema, ctx.frame()};
  ExecContext::FrameScope scope(&ctx, &frame);
  for (const auto& k : keys) {
    ASSIGN_OR_RETURN(Value v, EvalExpr(*k, ctx));
    if (v.is_null()) return false;  // NULL keys never join
    out_key->push_back(std::move(v));
  }
  return true;
}

Status HashJoinOp::Open(ExecContext& ctx) {
  build_.clear();
  left_valid_ = false;
  probe_matches_ = nullptr;
  probe_pos_ = 0;
  RETURN_NOT_OK(right_->Open(ctx));
  Row row;
  Row key;
  for (;;) {
    ASSIGN_OR_RETURN(bool more, right_->Next(ctx, &row));
    if (!more) break;
    ASSIGN_OR_RETURN(bool valid, EvalKeys(ctx, right_keys_, row,
                                          right_->schema(), &key));
    if (valid) build_[key].push_back(row);
  }
  RETURN_NOT_OK(right_->Close(ctx));
  return left_->Open(ctx);
}

Result<bool> HashJoinOp::Next(ExecContext& ctx, Row* out) {
  AGGIFY_FAILPOINT("exec.join.next");
  for (;;) {
    if (left_valid_ && probe_matches_ != nullptr &&
        probe_pos_ < probe_matches_->size()) {
      Row candidate =
          ConcatRows(current_left_, (*probe_matches_)[probe_pos_++]);
      ASSIGN_OR_RETURN(bool pass, EvalRowPredicate(residual_.get(), candidate,
                                                   schema_, ctx));
      if (!pass) continue;
      left_matched_ = true;
      *out = std::move(candidate);
      ++ctx.stats().rows_produced;
      return true;
    }
    // Current left row exhausted: emit outer row if needed, then advance.
    if (left_valid_ && left_outer_ && !left_matched_) {
      left_matched_ = true;  // emit once
      *out = ConcatRows(current_left_, NullRow(right_->schema().num_columns()));
      ++ctx.stats().rows_produced;
      return true;
    }
    ASSIGN_OR_RETURN(bool more, left_->Next(ctx, &current_left_));
    if (!more) return false;
    left_valid_ = true;
    left_matched_ = false;
    Row key;
    ASSIGN_OR_RETURN(bool valid, EvalKeys(ctx, left_keys_, current_left_,
                                          left_->schema(), &key));
    if (valid) {
      auto it = build_.find(key);
      probe_matches_ = it == build_.end() ? nullptr : &it->second;
    } else {
      probe_matches_ = nullptr;
    }
    probe_pos_ = 0;
  }
}

Status HashJoinOp::Close(ExecContext& ctx) {
  build_.clear();
  return left_->Close(ctx);
}

std::string HashJoinOp::Describe() const {
  std::string keys;
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    if (i > 0) keys += ", ";
    keys += left_keys_[i]->ToString() + " = " + right_keys_[i]->ToString();
  }
  return std::string(left_outer_ ? "HashLeftJoin(" : "HashJoin(") + keys + ")";
}

// ---- NestedLoopJoinOp ----

NestedLoopJoinOp::NestedLoopJoinOp(OperatorPtr left, OperatorPtr right,
                                   ExprPtr predicate, bool left_outer)
    : left_(std::move(left)),
      right_(std::move(right)),
      predicate_(std::move(predicate)),
      left_outer_(left_outer),
      schema_(Schema::Concat(left_->schema(), right_->schema())) {}

Status NestedLoopJoinOp::Open(ExecContext& ctx) {
  right_rows_.clear();
  left_valid_ = false;
  right_pos_ = 0;
  RETURN_NOT_OK(right_->Open(ctx));
  Row row;
  for (;;) {
    ASSIGN_OR_RETURN(bool more, right_->Next(ctx, &row));
    if (!more) break;
    right_rows_.push_back(std::move(row));
  }
  RETURN_NOT_OK(right_->Close(ctx));
  return left_->Open(ctx);
}

Result<bool> NestedLoopJoinOp::Next(ExecContext& ctx, Row* out) {
  AGGIFY_FAILPOINT("exec.join.next");
  for (;;) {
    while (left_valid_ && right_pos_ < right_rows_.size()) {
      Row candidate = ConcatRows(current_left_, right_rows_[right_pos_++]);
      ASSIGN_OR_RETURN(bool pass, EvalRowPredicate(predicate_.get(), candidate,
                                                   schema_, ctx));
      if (pass) {
        left_matched_ = true;
        *out = std::move(candidate);
        ++ctx.stats().rows_produced;
        return true;
      }
    }
    if (left_valid_ && left_outer_ && !left_matched_) {
      left_matched_ = true;
      *out = ConcatRows(current_left_, NullRow(right_->schema().num_columns()));
      ++ctx.stats().rows_produced;
      return true;
    }
    ASSIGN_OR_RETURN(bool more, left_->Next(ctx, &current_left_));
    if (!more) return false;
    left_valid_ = true;
    left_matched_ = false;
    right_pos_ = 0;
  }
}

Status NestedLoopJoinOp::Close(ExecContext& ctx) {
  right_rows_.clear();
  return left_->Close(ctx);
}

std::string NestedLoopJoinOp::Describe() const {
  std::string out = left_outer_ ? "NestedLoopLeftJoin" : "NestedLoopJoin";
  out += "(";
  if (predicate_ != nullptr) out += predicate_->ToString();
  return out + ")";
}

}  // namespace aggify
