// Scan operators: SeqScan, IndexSeek, RowsScan.
#include <algorithm>

#include "common/failpoint.h"
#include "exec/batch.h"
#include "exec/eval.h"
#include "exec/operators.h"
#include "storage/table.h"

namespace aggify {

bool PlanTouchesWorktables(const Operator& root) {
  const Table* table = root.base_table();
  if (table != nullptr && table->is_worktable()) return true;
  for (const Operator* child : root.children()) {
    if (child != nullptr && PlanTouchesWorktables(*child)) return true;
  }
  return false;
}

std::string Operator::ExplainTree(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Describe() + "\n";
  for (const Operator* c : children()) out += c->ExplainTree(indent + 1);
  return out;
}

// ---- SeqScanOp ----

SeqScanOp::SeqScanOp(const Table* table, std::string alias)
    : table_(table),
      schema_(table->schema().WithQualifier(
          alias.empty() ? table->name() : alias)) {}

Status SeqScanOp::Open(ExecContext& ctx) {
  AGGIFY_UNUSED(ctx);
  pos_ = 0;
  last_page_ = -1;
  // Forget (do not release) any charge a previous failed execution left
  // behind: RunPlan's attempt-boundary rollback already returned those
  // bytes, and the accountant they were charged to may no longer exist.
  batch_charged_ = 0;
  return Status::OK();
}

Result<bool> SeqScanOp::Next(ExecContext& ctx, Row* out) {
  // Strided interrupt poll: row reads are too hot for a per-row check, and
  // a 1024-row stride still bounds deadline/cancel latency to microseconds.
  if ((pos_ & 1023) == 0) {
    AGGIFY_FAILPOINT_SLEEP("exec.slow_operator");
    RETURN_NOT_OK(ctx.CheckInterrupts());
  }
  AGGIFY_FAILPOINT("exec.scan.next");
  if (pos_ >= table_->num_rows()) return false;
  *out = table_->ReadRow(pos_++, &last_page_, &ctx.stats());
  ++ctx.stats().rows_produced;
  return true;
}

Result<bool> SeqScanOp::NextBatch(ExecContext& ctx, Batch* out) {
  AGGIFY_FAILPOINT_SLEEP("exec.slow_operator");
  RETURN_NOT_OK(ctx.CheckInterrupts());
  AGGIFY_FAILPOINT("exec.scan.next");
  if (pos_ >= table_->num_rows()) return false;
  // Page-aligned window, like the parallel path's morsels: batch boundaries
  // never straddle a page, so ReadBatch charges exactly the pages a row
  // loop over the same range would.
  const int64_t rpp = std::max<int64_t>(1, table_->rows_per_page());
  const int64_t aligned = ((kDefaultBatchRows + rpp - 1) / rpp) * rpp;
  const int64_t n = std::min(aligned, table_->num_rows() - pos_);
  if (MemoryAccountant* acc = ctx.accountant()) {
    // The unboxed columnar buffer is the batch pipeline's extra footprint
    // over the row loop; re-charge it per batch so the budget always
    // reflects one live buffer. A failed charge surfaces as
    // kResourceExhausted and drives the batch→row degradation rung.
    acc->Release(batch_charged_);
    batch_charged_ = 0;
    const int64_t bytes = n * kEstimatedBatchBytesPerValue *
                          static_cast<int64_t>(schema_.num_columns());
    RETURN_NOT_OK(acc->TryCharge(bytes));
    batch_charged_ = bytes;
  }
  const Row* rows = table_->ReadBatch(pos_, n, &last_page_, &ctx.stats());
  const size_t ncols = schema_.num_columns();
  out->Reset(ncols);
  out->num_rows = n;
  out->base_row_id = pos_;
  for (size_t c = 0; c < ncols; ++c) {
    // Pruned columns (set_batch_columns) skip the unboxing copy entirely —
    // nothing above the scan reads them, by planner proof.
    if (!batch_columns_.empty() && !batch_columns_[c]) {
      out->columns.push_back(ColumnVector::NullColumn(n));
    } else {
      out->columns.push_back(ColumnVector::FromRows(rows, n, c));
    }
  }
  pos_ += n;
  ctx.stats().rows_produced += n;
  return true;
}

Status SeqScanOp::Close(ExecContext& ctx) {
  if (MemoryAccountant* acc = ctx.accountant()) acc->Release(batch_charged_);
  batch_charged_ = 0;
  return Status::OK();
}

std::string SeqScanOp::Describe() const {
  return "SeqScan(" + table_->name() + ")";
}

// ---- IndexSeekOp ----

IndexSeekOp::IndexSeekOp(const Table* table, std::string alias,
                         const HashIndex* index, ExprPtr key)
    : table_(table),
      schema_(table->schema().WithQualifier(
          alias.empty() ? table->name() : alias)),
      index_(index),
      key_(std::move(key)) {}

Status IndexSeekOp::Open(ExecContext& ctx) {
  pos_ = 0;
  last_page_ = -1;
  matches_ = nullptr;
  ASSIGN_OR_RETURN(Value key, EvalExpr(*key_, ctx));
  // One logical read for the index probe itself.
  ++ctx.stats().logical_reads;
  if (key.is_null()) return Status::OK();  // = NULL matches nothing
  matches_ = index_->Lookup(key);
  return Status::OK();
}

Result<bool> IndexSeekOp::Next(ExecContext& ctx, Row* out) {
  if ((pos_ & 1023) == 0) RETURN_NOT_OK(ctx.CheckInterrupts());
  AGGIFY_FAILPOINT("exec.scan.next");
  if (matches_ == nullptr || pos_ >= matches_->size()) return false;
  *out = table_->ReadRow((*matches_)[pos_++], &last_page_, &ctx.stats());
  ++ctx.stats().rows_produced;
  return true;
}

Status IndexSeekOp::Close(ExecContext& ctx) {
  AGGIFY_UNUSED(ctx);
  return Status::OK();
}

std::string IndexSeekOp::Describe() const {
  return "IndexSeek(" + table_->name() + "." +
         table_->schema().column(index_->column_index()).name + " = " +
         key_->ToString() + ")";
}

// ---- RowsScanOp ----

RowsScanOp::RowsScanOp(Schema schema,
                       std::shared_ptr<const std::vector<Row>> rows,
                       std::string label)
    : schema_(std::move(schema)), rows_(std::move(rows)), label_(std::move(label)) {}

Status RowsScanOp::Open(ExecContext& ctx) {
  AGGIFY_UNUSED(ctx);
  pos_ = 0;
  return Status::OK();
}

Result<bool> RowsScanOp::Next(ExecContext& ctx, Row* out) {
  if ((pos_ & 1023) == 0) RETURN_NOT_OK(ctx.CheckInterrupts());
  if (pos_ >= rows_->size()) return false;
  *out = (*rows_)[pos_++];
  ++ctx.stats().rows_produced;
  return true;
}

Status RowsScanOp::Close(ExecContext& ctx) {
  AGGIFY_UNUSED(ctx);
  return Status::OK();
}

std::string RowsScanOp::Describe() const {
  return "RowsScan(" + label_ + ", " + std::to_string(rows_->size()) +
         " rows)";
}

}  // namespace aggify
