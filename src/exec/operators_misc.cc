// Filter, Project, Sort, TopN, Distinct, UnionAll.
#include <algorithm>

#include "exec/eval.h"
#include "exec/operators.h"

namespace aggify {

// ---- memory accounting ----

namespace {
// Fixed footprint of one Value slot (variant storage + vector overhead
// amortized). Payload bytes (strings, nested records) are added on top.
constexpr int64_t kValueSlotBytes = 32;

int64_t EstimateValueBytes(const Value& v) {
  int64_t bytes = kValueSlotBytes;
  if (v.is_string()) {
    bytes += static_cast<int64_t>(v.string_value().size());
  } else if (v.is_record()) {
    for (const Value& f : v.record_value()) bytes += EstimateValueBytes(f);
  }
  return bytes;
}
}  // namespace

int64_t EstimateRowBytes(const Row& row) {
  int64_t bytes = 0;
  for (const Value& v : row) bytes += EstimateValueBytes(v);
  return bytes;
}

// ---- FilterOp ----

FilterOp::FilterOp(OperatorPtr child, ExprPtr predicate)
    : Operator(), child_(std::move(child)), predicate_(std::move(predicate)) {}

Status FilterOp::Open(ExecContext& ctx) {
  // Recompile per execution: compiled constants may reference variables.
  compiled_.reset();
  return child_->Open(ctx);
}

Result<bool> FilterOp::Next(ExecContext& ctx, Row* out) {
  Row row;
  for (;;) {
    ASSIGN_OR_RETURN(bool more, child_->Next(ctx, &row));
    if (!more) return false;
    RowFrame frame{&row, &child_->schema(), ctx.frame()};
    ExecContext::FrameScope scope(&ctx, &frame);
    ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, ctx));
    if (pass) {
      *out = std::move(row);
      return true;
    }
  }
}

Status FilterOp::Close(ExecContext& ctx) { return child_->Close(ctx); }

std::string FilterOp::Describe() const {
  return "Filter(" + predicate_->ToString() + ")";
}

// ---- ProjectOp ----

ProjectOp::ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs,
                     Schema out_schema)
    : child_(std::move(child)),
      exprs_(std::move(exprs)),
      schema_(std::move(out_schema)) {}

Status ProjectOp::Open(ExecContext& ctx) { return child_->Open(ctx); }

Result<bool> ProjectOp::Next(ExecContext& ctx, Row* out) {
  Row row;
  ASSIGN_OR_RETURN(bool more, child_->Next(ctx, &row));
  if (!more) return false;
  RowFrame frame{&row, &child_->schema(), ctx.frame()};
  ExecContext::FrameScope scope(&ctx, &frame);
  out->clear();
  out->reserve(exprs_.size());
  for (const auto& e : exprs_) {
    ASSIGN_OR_RETURN(Value v, EvalExpr(*e, ctx));
    out->push_back(std::move(v));
  }
  return true;
}

Status ProjectOp::Close(ExecContext& ctx) { return child_->Close(ctx); }

std::string ProjectOp::Describe() const {
  std::string out = "Project(";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString();
  }
  return out + ")";
}

// ---- SortOp ----

SortOp::SortOp(OperatorPtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {}

Status SortOp::Open(ExecContext& ctx) {
  rows_.clear();
  pos_ = 0;
  // Forget (not release) any stale charge from a failed prior execution:
  // the attempt-boundary rollback in RunPlan already returned those bytes.
  charged_ = 0;
  MemoryAccountant* acc = ctx.accountant();
  RETURN_NOT_OK(child_->Open(ctx));
  // Materialize rows alongside their evaluated sort keys.
  std::vector<std::pair<Row, Row>> keyed;  // (keys, row)
  Row row;
  for (;;) {
    ASSIGN_OR_RETURN(bool more, child_->Next(ctx, &row));
    if (!more) break;
    if (acc != nullptr) {
      // The sort buffer holds every input row until emission — the classic
      // unbounded-state operator the memory budget exists to bound.
      const int64_t bytes = EstimateRowBytes(row);
      RETURN_NOT_OK(acc->TryCharge(bytes));
      charged_ += bytes;
    }
    RowFrame frame{&row, &child_->schema(), ctx.frame()};
    ExecContext::FrameScope scope(&ctx, &frame);
    Row key;
    key.reserve(keys_.size());
    for (const auto& k : keys_) {
      ASSIGN_OR_RETURN(Value v, EvalExpr(*k.expr, ctx));
      key.push_back(std::move(v));
    }
    keyed.emplace_back(std::move(key), std::move(row));
  }
  RETURN_NOT_OK(child_->Close(ctx));
  std::stable_sort(keyed.begin(), keyed.end(),
                   [this](const auto& a, const auto& b) {
                     for (size_t i = 0; i < keys_.size(); ++i) {
                       int c = TotalOrderCompare(a.first[i], b.first[i]);
                       if (keys_[i].descending) c = -c;
                       if (c != 0) return c < 0;
                     }
                     return false;
                   });
  rows_.reserve(keyed.size());
  for (auto& [k, r] : keyed) rows_.push_back(std::move(r));
  return Status::OK();
}

Result<bool> SortOp::Next(ExecContext& ctx, Row* out) {
  AGGIFY_UNUSED(ctx);
  if (pos_ >= rows_.size()) return false;
  *out = std::move(rows_[pos_++]);
  return true;
}

Status SortOp::Close(ExecContext& ctx) {
  if (MemoryAccountant* acc = ctx.accountant()) acc->Release(charged_);
  charged_ = 0;
  rows_.clear();
  return Status::OK();
}

std::string SortOp::Describe() const {
  std::string out = "Sort(";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys_[i].expr->ToString();
    if (keys_[i].descending) out += " DESC";
  }
  return out + ")";
}

// ---- TopNOp ----

TopNOp::TopNOp(OperatorPtr child, ExprPtr count)
    : child_(std::move(child)), count_(std::move(count)) {}

Status TopNOp::Open(ExecContext& ctx) {
  ASSIGN_OR_RETURN(Value n, EvalExpr(*count_, ctx));
  if (n.is_null() || !n.is_numeric()) {
    return Status::ExecutionError("TOP count must be numeric, got " +
                                  n.ToString());
  }
  remaining_ = n.is_int() ? n.int_value() : static_cast<int64_t>(n.AsDouble());
  return child_->Open(ctx);
}

Result<bool> TopNOp::Next(ExecContext& ctx, Row* out) {
  if (remaining_ <= 0) return false;
  ASSIGN_OR_RETURN(bool more, child_->Next(ctx, out));
  if (!more) return false;
  --remaining_;
  return true;
}

Status TopNOp::Close(ExecContext& ctx) { return child_->Close(ctx); }

std::string TopNOp::Describe() const {
  return "Top(" + count_->ToString() + ")";
}

// ---- DistinctOp ----

DistinctOp::DistinctOp(OperatorPtr child) : child_(std::move(child)) {}

Status DistinctOp::Open(ExecContext& ctx) {
  seen_.clear();
  return child_->Open(ctx);
}

Result<bool> DistinctOp::Next(ExecContext& ctx, Row* out) {
  Row row;
  for (;;) {
    ASSIGN_OR_RETURN(bool more, child_->Next(ctx, &row));
    if (!more) return false;
    if (seen_.emplace(row, true).second) {
      *out = std::move(row);
      return true;
    }
  }
}

Status DistinctOp::Close(ExecContext& ctx) {
  seen_.clear();
  return child_->Close(ctx);
}

std::string DistinctOp::Describe() const { return "Distinct"; }

// ---- UnionAllOp ----

UnionAllOp::UnionAllOp(std::vector<OperatorPtr> children)
    : children_(std::move(children)) {}

Status UnionAllOp::Open(ExecContext& ctx) {
  current_ = 0;
  for (auto& c : children_) RETURN_NOT_OK(c->Open(ctx));
  return Status::OK();
}

Result<bool> UnionAllOp::Next(ExecContext& ctx, Row* out) {
  while (current_ < children_.size()) {
    ASSIGN_OR_RETURN(bool more, children_[current_]->Next(ctx, out));
    if (more) return true;
    ++current_;
  }
  return false;
}

Status UnionAllOp::Close(ExecContext& ctx) {
  for (auto& c : children_) RETURN_NOT_OK(c->Close(ctx));
  return Status::OK();
}

std::string UnionAllOp::Describe() const { return "UnionAll"; }

std::vector<const Operator*> UnionAllOp::children() const {
  std::vector<const Operator*> out;
  for (const auto& c : children_) out.push_back(c.get());
  return out;
}

}  // namespace aggify
